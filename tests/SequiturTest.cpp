//===- tests/SequiturTest.cpp - sequitur/ unit tests --------------------------------===//

#include "src/sequitur/Sequitur.h"
#include "src/support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace wootz;

namespace {

static Grammar buildGrammar(const std::vector<int> &Sequence) {
  Sequitur Builder;
  for (int Terminal : Sequence)
    Builder.append(Terminal);
  return Builder.grammar();
}

/// Both Sequitur invariants plus lossless reconstruction.
static void checkGrammar(const Grammar &G,
                         const std::vector<int> &Original) {
  // Lossless: rule 0 expands back to the input.
  EXPECT_EQ(G.expand(0), Original);

  // Rule utility: every rule other than the start is referenced >= 2
  // times across all bodies... (the canonical algorithm can leave a rule
  // at one reference only transiently; in final grammars it must hold).
  std::map<int, int> References;
  for (const GrammarRule &Rule : G.Rules)
    for (const GrammarSymbol &Symbol : Rule.Body)
      if (Symbol.IsRule)
        ++References[Symbol.Value];
  for (const GrammarRule &Rule : G.Rules) {
    if (Rule.Id == 0)
      continue;
    EXPECT_GE(References[Rule.Id], 2) << "rule utility violated for r"
                                      << Rule.Id;
    EXPECT_GE(Rule.Body.size(), 2u) << "degenerate rule r" << Rule.Id;
  }

  // Digram uniqueness: no adjacent symbol pair occurs twice anywhere.
  std::set<std::pair<std::pair<int, int>, std::pair<int, int>>> Digrams;
  for (const GrammarRule &Rule : G.Rules) {
    for (size_t I = 0; I + 1 < Rule.Body.size(); ++I) {
      const GrammarSymbol &A = Rule.Body[I];
      const GrammarSymbol &B = Rule.Body[I + 1];
      // Overlapping triples (aaa) legitimately repeat a digram once.
      if (I + 2 < Rule.Body.size() && A == B && Rule.Body[I + 2] == A)
        continue;
      const auto Key = std::make_pair(std::make_pair(A.IsRule, A.Value),
                                      std::make_pair(B.IsRule, B.Value));
      EXPECT_TRUE(Digrams.insert(Key).second)
          << "duplicate digram in grammar:\n"
          << G.str();
    }
  }
}

TEST(SequiturTest, NoRepetitionsMeansOneRule) {
  const std::vector<int> Input{1, 2, 3, 4, 5};
  const Grammar G = buildGrammar(Input);
  EXPECT_EQ(G.Rules.size(), 1u);
  checkGrammar(G, Input);
}

TEST(SequiturTest, ClassicAbcAbc) {
  const std::vector<int> Input{1, 2, 3, 1, 2, 3};
  const Grammar G = buildGrammar(Input);
  checkGrammar(G, Input);
  // One rule for "1 2 3" used twice (or nested equivalents).
  ASSERT_GE(G.Rules.size(), 2u);
  EXPECT_EQ(G.Rules[0].Body.size(), 2u);
}

TEST(SequiturTest, PaperExampleAbcdbc) {
  // From the Sequitur paper: "abcdbc" -> S = a A d A; A = b c.
  const std::vector<int> Input{'a', 'b', 'c', 'd', 'b', 'c'};
  const Grammar G = buildGrammar(Input);
  checkGrammar(G, Input);
  ASSERT_EQ(G.Rules.size(), 2u);
  EXPECT_EQ(G.Rules[0].Body.size(), 4u);
  EXPECT_EQ(G.Rules[1].Body.size(), 2u);
  EXPECT_EQ(G.Rules[1].Frequency, 2);
}

TEST(SequiturTest, NestedHierarchy) {
  // "abcabdabcabd" forms a hierarchy: E = C D; C = A c; D = A d; A = ab
  // (modulo naming). Check invariants and frequencies.
  const std::vector<int> Input{'a', 'b', 'c', 'a', 'b', 'd',
                               'a', 'b', 'c', 'a', 'b', 'd'};
  const Grammar G = buildGrammar(Input);
  checkGrammar(G, Input);
  // 'ab' occurs 4 times; some rule must have frequency 4.
  bool SawFreq4 = false;
  for (const GrammarRule &Rule : G.Rules)
    SawFreq4 = SawFreq4 || Rule.Frequency == 4;
  EXPECT_TRUE(SawFreq4) << G.str();
}

TEST(SequiturTest, OverlappingTriples) {
  // Strings of equal symbols stress the triple handling in join().
  for (int Length = 2; Length <= 12; ++Length) {
    std::vector<int> Input(Length, 7);
    const Grammar G = buildGrammar(Input);
    EXPECT_EQ(G.expand(0), Input) << "length " << Length;
  }
}

TEST(SequiturTest, MixedTripleContext) {
  // "abbbabcbb" is the reference implementation's triple testcase.
  const std::vector<int> Input{'a', 'b', 'b', 'b', 'a', 'b', 'c', 'b',
                               'b'};
  const Grammar G = buildGrammar(Input);
  EXPECT_EQ(G.expand(0), Input);
}

TEST(SequiturTest, RuleReuseAcrossOccurrences) {
  // Four copies of the same 5-symbol block: top rule should be compact.
  std::vector<int> Input;
  for (int Copy = 0; Copy < 4; ++Copy)
    for (int Symbol = 0; Symbol < 5; ++Symbol)
      Input.push_back(Symbol);
  const Grammar G = buildGrammar(Input);
  checkGrammar(G, Input);
  // The block rule appears with frequency 4.
  bool SawBlock = false;
  for (const GrammarRule &Rule : G.Rules)
    if (Rule.Frequency == 4 && G.expansionLength(Rule.Id) == 5)
      SawBlock = true;
  EXPECT_TRUE(SawBlock) << G.str();
}

TEST(SequiturTest, StartRuleFrequencyIsOne) {
  const Grammar G = buildGrammar({1, 2, 1, 2});
  EXPECT_EQ(G.Rules[0].Frequency, 1);
}

TEST(SequiturTest, ExpansionLengthMatchesExpand) {
  const Grammar G = buildGrammar({1, 2, 3, 1, 2, 3, 1, 2});
  for (const GrammarRule &Rule : G.Rules)
    EXPECT_EQ(G.expansionLength(Rule.Id),
              static_cast<int>(G.expand(Rule.Id).size()));
}

TEST(SequiturTest, StrRendersRules) {
  const Grammar G = buildGrammar({1, 2, 1, 2});
  const std::string Text = G.str({{1, "one"}, {2, "two"}});
  EXPECT_NE(Text.find("r0"), std::string::npos);
  EXPECT_NE(Text.find("one two"), std::string::npos);
}

// Property test: random strings over small alphabets must round-trip and
// keep both invariants, across many seeds and lengths.
class SequiturPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SequiturPropertyTest, InvariantsAndLosslessness) {
  const auto [Seed, Length, AlphabetSize] = GetParam();
  Rng Generator(static_cast<uint64_t>(Seed));
  std::vector<int> Input(Length);
  for (int &Symbol : Input)
    Symbol = static_cast<int>(Generator.nextBelow(AlphabetSize));
  const Grammar G = buildGrammar(Input);
  checkGrammar(G, Input);
}

INSTANTIATE_TEST_SUITE_P(
    RandomStrings, SequiturPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(10, 50, 200),
                       ::testing::Values(2, 3, 8)));

TEST(SequiturTest, LongRepetitiveInputStaysCompact) {
  // 60 copies of a 6-symbol motif: the grammar should be logarithmically
  // small relative to the input.
  std::vector<int> Input;
  for (int Copy = 0; Copy < 60; ++Copy)
    for (int Symbol = 0; Symbol < 6; ++Symbol)
      Input.push_back(Symbol + 10);
  const Grammar G = buildGrammar(Input);
  EXPECT_EQ(G.expand(0), Input);
  size_t TotalSymbols = 0;
  for (const GrammarRule &Rule : G.Rules)
    TotalSymbols += Rule.Body.size();
  EXPECT_LT(TotalSymbols, Input.size() / 3);
}

} // namespace
