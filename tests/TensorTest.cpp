//===- tests/TensorTest.cpp - tensor/ unit tests --------------------------------===//

#include "src/support/Rng.h"
#include "src/tensor/Kernels.h"
#include "src/tensor/Ops.h"
#include "src/tensor/Tensor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

using namespace wootz;

namespace {

TEST(ShapeTest, ElementCount) {
  EXPECT_EQ(Shape({2, 3, 4, 5}).elementCount(), 120u);
  EXPECT_EQ(Shape({7}).elementCount(), 7u);
  EXPECT_EQ(Shape().elementCount(), 0u);
}

TEST(ShapeTest, EqualityAndStr) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_EQ(Shape({1, 2}).str(), "[1, 2]");
}

TEST(TensorTest, ZeroInitialized) {
  Tensor T(Shape{2, 3});
  for (size_t I = 0; I < T.size(); ++I)
    EXPECT_EQ(T[I], 0.0f);
}

TEST(TensorTest, NchwIndexing) {
  Tensor T(Shape{2, 3, 4, 5});
  T.at(1, 2, 3, 4) = 9.0f;
  // Row-major NCHW: offset = ((n*C + c)*H + h)*W + w.
  EXPECT_EQ(T[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(TensorTest, MatrixIndexing) {
  Tensor T(Shape{3, 4});
  T.at(2, 1) = 5.0f;
  EXPECT_EQ(T[2 * 4 + 1], 5.0f);
}

TEST(TensorTest, FillSumMean) {
  Tensor T(Shape{4, 5});
  T.fill(0.5f);
  EXPECT_DOUBLE_EQ(T.sum(), 10.0);
  EXPECT_DOUBLE_EQ(T.mean(), 0.5);
  EXPECT_NEAR(T.rmsNorm(), 0.5, 1e-7);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor T(Shape{2, 6});
  T[7] = 3.0f;
  T.reshape(Shape{3, 4});
  EXPECT_EQ(T.shape(), Shape({3, 4}));
  EXPECT_EQ(T[7], 3.0f);
}

//===----------------------------------------------------------------------===//
// GEMM variants
//===----------------------------------------------------------------------===//

TEST(GemmTest, SmallKnownProduct) {
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]].
  const float A[] = {1, 2, 3, 4};
  const float B[] = {5, 6, 7, 8};
  float C[4];
  gemm(A, B, C, 2, 2, 2);
  EXPECT_FLOAT_EQ(C[0], 19);
  EXPECT_FLOAT_EQ(C[1], 22);
  EXPECT_FLOAT_EQ(C[2], 43);
  EXPECT_FLOAT_EQ(C[3], 50);
}

TEST(GemmTest, AccumulateAddsIntoC) {
  const float A[] = {1, 0, 0, 1};
  const float B[] = {1, 2, 3, 4};
  float C[] = {10, 10, 10, 10};
  gemm(A, B, C, 2, 2, 2, /*Accumulate=*/true);
  EXPECT_FLOAT_EQ(C[0], 11);
  EXPECT_FLOAT_EQ(C[3], 14);
}

/// Reference O(n^3) matmul used to cross-check all variants.
static std::vector<float> refGemm(const std::vector<float> &A,
                                  const std::vector<float> &B, int M, int K,
                                  int N) {
  std::vector<float> C(static_cast<size_t>(M) * N, 0.0f);
  for (int I = 0; I < M; ++I)
    for (int L = 0; L < K; ++L)
      for (int J = 0; J < N; ++J)
        C[I * N + J] += A[I * K + L] * B[L * N + J];
  return C;
}

TEST(GemmTest, TransposeVariantsAgreeWithReference) {
  Rng Generator(5);
  const int M = 4, K = 6, N = 3;
  std::vector<float> A(M * K), B(K * N);
  for (float &V : A)
    V = Generator.nextGaussian();
  for (float &V : B)
    V = Generator.nextGaussian();
  const std::vector<float> Expected = refGemm(A, B, M, K, N);

  std::vector<float> C(M * N);
  gemm(A.data(), B.data(), C.data(), M, K, N);
  for (int I = 0; I < M * N; ++I)
    EXPECT_NEAR(C[I], Expected[I], 1e-5) << "gemm at " << I;

  // A^T variant: At is KxM.
  std::vector<float> At(K * M);
  for (int I = 0; I < M; ++I)
    for (int L = 0; L < K; ++L)
      At[L * M + I] = A[I * K + L];
  gemmTransposeA(At.data(), B.data(), C.data(), M, K, N);
  for (int I = 0; I < M * N; ++I)
    EXPECT_NEAR(C[I], Expected[I], 1e-5) << "gemmTransposeA at " << I;

  // B^T variant: Bt is NxK.
  std::vector<float> Bt(N * K);
  for (int L = 0; L < K; ++L)
    for (int J = 0; J < N; ++J)
      Bt[J * K + L] = B[L * N + J];
  gemmTransposeB(A.data(), Bt.data(), C.data(), M, K, N);
  for (int I = 0; I < M * N; ++I)
    EXPECT_NEAR(C[I], Expected[I], 1e-5) << "gemmTransposeB at " << I;
}

//===----------------------------------------------------------------------===//
// im2col / col2im
//===----------------------------------------------------------------------===//

TEST(Im2ColTest, IdentityKernelCopiesImage) {
  // 1x1 kernel, stride 1, no pad: columns == image.
  const int C = 2, H = 3, W = 3;
  std::vector<float> Image(C * H * W);
  for (size_t I = 0; I < Image.size(); ++I)
    Image[I] = static_cast<float>(I);
  ConvGeometry Geometry{C, 1, 1, 1, 0};
  std::vector<float> Columns(C * H * W);
  im2col(Image.data(), C, H, W, Geometry, Columns.data());
  EXPECT_EQ(Columns, Image);
}

TEST(Im2ColTest, PaddingYieldsZeros) {
  const int C = 1, H = 2, W = 2;
  const std::vector<float> Image = {1, 2, 3, 4};
  ConvGeometry Geometry{C, 1, 3, 1, 1};
  // Output is 2x2; column rows = 9.
  std::vector<float> Columns(9 * 4);
  im2col(Image.data(), C, H, W, Geometry, Columns.data());
  // Top-left output's first kernel tap (KH=0,KW=0) reads (-1,-1): zero.
  EXPECT_EQ(Columns[0], 0.0f);
  // Center tap (KH=1,KW=1) at output (0,0) reads pixel (0,0) = 1.
  EXPECT_EQ(Columns[(1 * 3 + 1) * 4 + 0], 1.0f);
}

TEST(Im2ColTest, Col2ImIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> characterizes the adjoint and
  // validates both scatter/gather index computations at once.
  Rng Generator(21);
  const int C = 3, H = 5, W = 4;
  ConvGeometry Geometry{C, 1, 3, 2, 1};
  const int OutH = Geometry.outExtent(H);
  const int OutW = Geometry.outExtent(W);
  const size_t ColCount =
      static_cast<size_t>(C) * 9 * OutH * OutW;

  std::vector<float> X(static_cast<size_t>(C) * H * W);
  for (float &V : X)
    V = Generator.nextGaussian();
  std::vector<float> Y(ColCount);
  for (float &V : Y)
    V = Generator.nextGaussian();

  std::vector<float> Cols(ColCount);
  im2col(X.data(), C, H, W, Geometry, Cols.data());
  std::vector<float> Back(X.size(), 0.0f);
  col2im(Y.data(), C, H, W, Geometry, Back.data());

  double Lhs = 0.0, Rhs = 0.0;
  for (size_t I = 0; I < ColCount; ++I)
    Lhs += static_cast<double>(Cols[I]) * Y[I];
  for (size_t I = 0; I < X.size(); ++I)
    Rhs += static_cast<double>(X[I]) * Back[I];
  EXPECT_NEAR(Lhs, Rhs, 1e-3);
}

TEST(OpsTest, AxpyAndScale) {
  const float In[] = {1, 2, 3};
  float Out[] = {1, 1, 1};
  axpy(2.0f, In, Out, 3);
  EXPECT_FLOAT_EQ(Out[1], 5.0f);
  scale(0.5f, Out, 3);
  EXPECT_FLOAT_EQ(Out[1], 2.5f);
}

TEST(OpsTest, Argmax) {
  const float Values[] = {0.1f, 0.9f, 0.5f};
  EXPECT_EQ(argmax(Values, 3), 1);
  const float Ties[] = {1.0f, 1.0f};
  EXPECT_EQ(argmax(Ties, 2), 0); // First maximum wins.
}

} // namespace

//===----------------------------------------------------------------------===//
// GEMM algebraic properties (appended tests)
//===----------------------------------------------------------------------===//

namespace {

class GemmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GemmPropertyTest, IdentityIsNeutral) {
  const int N = 5;
  Rng Generator(GetParam());
  std::vector<float> A(N * N), Identity(N * N, 0.0f), C(N * N);
  for (float &V : A)
    V = Generator.nextGaussian();
  for (int I = 0; I < N; ++I)
    Identity[I * N + I] = 1.0f;
  gemm(A.data(), Identity.data(), C.data(), N, N, N);
  for (int I = 0; I < N * N; ++I)
    ASSERT_NEAR(C[I], A[I], 1e-6);
  gemm(Identity.data(), A.data(), C.data(), N, N, N);
  for (int I = 0; I < N * N; ++I)
    ASSERT_NEAR(C[I], A[I], 1e-6);
}

TEST_P(GemmPropertyTest, MatmulIsAssociative) {
  const int N = 4;
  Rng Generator(GetParam() + 100);
  std::vector<float> A(N * N), B(N * N), C(N * N);
  for (float &V : A)
    V = Generator.nextGaussian();
  for (float &V : B)
    V = Generator.nextGaussian();
  for (float &V : C)
    V = Generator.nextGaussian();
  std::vector<float> AB(N * N), ABthenC(N * N), BC(N * N), AthenBC(N * N);
  gemm(A.data(), B.data(), AB.data(), N, N, N);
  gemm(AB.data(), C.data(), ABthenC.data(), N, N, N);
  gemm(B.data(), C.data(), BC.data(), N, N, N);
  gemm(A.data(), BC.data(), AthenBC.data(), N, N, N);
  for (int I = 0; I < N * N; ++I)
    ASSERT_NEAR(ABthenC[I], AthenBC[I], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace

//===----------------------------------------------------------------------===//
// Blocked-kernel parity: the blocked engine against the reference loops
// over odd and edge shapes, and multi-threaded determinism.
//===----------------------------------------------------------------------===//

namespace {

std::vector<float> randomVector(size_t Count, Rng &Generator) {
  std::vector<float> Values(Count);
  for (float &V : Values)
    V = Generator.nextGaussian();
  return Values;
}

/// Independent oracle (plain i-k-j accumulation into C).
void oracleGemm(const std::vector<float> &A, const std::vector<float> &B,
                std::vector<float> &C, int M, int K, int N,
                bool Accumulate) {
  if (!Accumulate)
    std::fill(C.begin(), C.end(), 0.0f);
  for (int I = 0; I < M; ++I)
    for (int L = 0; L < K; ++L)
      for (int J = 0; J < N; ++J)
        C[static_cast<size_t>(I) * N + J] +=
            A[static_cast<size_t>(I) * K + L] *
            B[static_cast<size_t>(L) * N + J];
}

TEST(GemmParityTest, BlockedMatchesReferenceOverEdgeShapes) {
  const int Sizes[] = {1, 2, 7, 17, 63, 64, 65, 200};
  Rng Generator(0xab1e);
  for (int M : Sizes) {
    for (int K : Sizes) {
      for (int N : Sizes) {
        const std::vector<float> A =
            randomVector(static_cast<size_t>(M) * K, Generator);
        const std::vector<float> B =
            randomVector(static_cast<size_t>(K) * N, Generator);
        // Strided views of the same operands for the transpose variants.
        std::vector<float> At(static_cast<size_t>(K) * M);
        for (int I = 0; I < M; ++I)
          for (int L = 0; L < K; ++L)
            At[static_cast<size_t>(L) * M + I] =
                A[static_cast<size_t>(I) * K + L];
        std::vector<float> Bt(static_cast<size_t>(N) * K);
        for (int L = 0; L < K; ++L)
          for (int J = 0; J < N; ++J)
            Bt[static_cast<size_t>(J) * K + L] =
                B[static_cast<size_t>(L) * N + J];
        const std::vector<float> Seed =
            randomVector(static_cast<size_t>(M) * N, Generator);

        // Sums have K gaussian terms; scale the absolute tolerance with
        // the contraction depth (still tight: ~1e-4 at K=200).
        const float Tolerance = 1e-5f * static_cast<float>(K) + 1e-5f;
        for (bool Accumulate : {false, true}) {
          std::vector<float> Expected = Seed;
          oracleGemm(A, B, Expected, M, K, N, Accumulate);

          // The blocked engine, called directly so that shapes below the
          // public entry points' size threshold exercise it too.
          std::vector<float> Got = Seed;
          wootz::detail::blockedGemm(A.data(), K, 1, B.data(), N, 1,
                                     Got.data(), M, K, N, Accumulate,
                                     nullptr);
          for (size_t I = 0; I < Got.size(); ++I)
            ASSERT_NEAR(Got[I], Expected[I], Tolerance)
                << "blockedGemm M=" << M << " K=" << K << " N=" << N
                << " acc=" << Accumulate << " at " << I;

          // Public entry points (dispatching) against the references.
          Got = Seed;
          gemm(A.data(), B.data(), Got.data(), M, K, N, Accumulate);
          std::vector<float> Ref = Seed;
          gemmReference(A.data(), B.data(), Ref.data(), M, K, N,
                        Accumulate);
          for (size_t I = 0; I < Got.size(); ++I)
            ASSERT_NEAR(Got[I], Ref[I], Tolerance)
                << "gemm M=" << M << " K=" << K << " N=" << N << " at "
                << I;

          Got = Seed;
          gemmTransposeA(At.data(), B.data(), Got.data(), M, K, N,
                         Accumulate);
          for (size_t I = 0; I < Got.size(); ++I)
            ASSERT_NEAR(Got[I], Expected[I], Tolerance)
                << "gemmTransposeA M=" << M << " K=" << K << " N=" << N
                << " at " << I;

          Got = Seed;
          gemmTransposeB(A.data(), Bt.data(), Got.data(), M, K, N,
                         Accumulate);
          for (size_t I = 0; I < Got.size(); ++I)
            ASSERT_NEAR(Got[I], Expected[I], Tolerance)
                << "gemmTransposeB M=" << M << " K=" << K << " N=" << N
                << " at " << I;
        }

        // Fused bias epilogue (non-accumulating by contract).
        const std::vector<float> Bias =
            randomVector(static_cast<size_t>(M), Generator);
        std::vector<float> Expected(static_cast<size_t>(M) * N, 0.0f);
        oracleGemm(A, B, Expected, M, K, N, false);
        for (int I = 0; I < M; ++I)
          for (int J = 0; J < N; ++J)
            Expected[static_cast<size_t>(I) * N + J] += Bias[I];
        std::vector<float> Got(static_cast<size_t>(M) * N, -7.0f);
        gemmBias(A.data(), B.data(), Bias.data(), Got.data(), M, K, N);
        for (size_t I = 0; I < Got.size(); ++I)
          ASSERT_NEAR(Got[I], Expected[I], Tolerance)
              << "gemmBias M=" << M << " K=" << K << " N=" << N << " at "
              << I;
      }
    }
  }
}

/// Worker-count determinism: the kernels promise bit-identical results
/// for any setKernelWorkers() value. (Named Kernel* so the tsan preset's
/// test filter picks the threaded paths up.)
class KernelThreadsTest : public ::testing::Test {
protected:
  void TearDown() override { setKernelWorkers(1); }
};

TEST_F(KernelThreadsTest, GemmBitIdenticalAcrossWorkerCounts) {
  const int M = 301, K = 257, N = 190; // Several MC row panels + edges.
  Rng Generator(0x7eAd);
  const std::vector<float> A =
      randomVector(static_cast<size_t>(M) * K, Generator);
  const std::vector<float> B =
      randomVector(static_cast<size_t>(K) * N, Generator);

  setKernelWorkers(1);
  std::vector<float> Serial(static_cast<size_t>(M) * N);
  gemm(A.data(), B.data(), Serial.data(), M, K, N);

  for (unsigned Workers : {2u, 4u}) {
    setKernelWorkers(Workers);
    ASSERT_EQ(kernelWorkers(), Workers);
    std::vector<float> Threaded(static_cast<size_t>(M) * N);
    gemm(A.data(), B.data(), Threaded.data(), M, K, N);
    ASSERT_EQ(std::memcmp(Serial.data(), Threaded.data(),
                          Serial.size() * sizeof(float)),
              0)
        << "blocked GEMM output depends on the worker count (" << Workers
        << " workers)";
  }
}

TEST_F(KernelThreadsTest, NestedParallelForRunsInline) {
  setKernelWorkers(4);
  EXPECT_FALSE(inKernelParallelRegion());
  kernelParallelFor(8, 2, [](size_t, size_t) {
    EXPECT_TRUE(inKernelParallelRegion());
    // A nested loop must execute inline on this worker.
    kernelParallelFor(4, 1, [](size_t, size_t) {
      EXPECT_TRUE(inKernelParallelRegion());
    });
  });
  EXPECT_FALSE(inKernelParallelRegion());
}

TEST(KernelScratchTest, BuffersAlignedAndReused) {
  KernelScratch &Scratch = KernelScratch::forCurrentThread();
  float *First = Scratch.PackA.ensure(1024);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(First) % KernelAlignment, 0u);
  // A smaller request must reuse the same allocation.
  EXPECT_EQ(Scratch.PackA.ensure(512), First);
  EXPECT_GE(Scratch.PackA.capacity(), 1024u);
}

TEST(TensorTest, DataCacheLineAligned) {
  Tensor T(Shape{3, 5, 7, 2});
  EXPECT_EQ(reinterpret_cast<uintptr_t>(T.data()) % KernelAlignment, 0u);
}

} // namespace
