//===- tests/NnTest.cpp - nn/ unit tests -------------------------------------===//

#include "src/nn/Graph.h"
#include "src/nn/Layers.h"
#include "src/nn/Loss.h"
#include "src/nn/Optimizer.h"
#include "src/nn/Serialize.h"
#include "src/support/Rng.h"
#include "src/tensor/Kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

using namespace wootz;

namespace {

//===----------------------------------------------------------------------===//
// Layer shape inference
//===----------------------------------------------------------------------===//

TEST(LayerShapeTest, ConvSamePadding) {
  Conv2D Conv(ConvGeometry{3, 8, 3, 1, 1});
  EXPECT_EQ(Conv.outputShape({Shape{2, 3, 8, 8}}), Shape({2, 8, 8, 8}));
}

TEST(LayerShapeTest, ConvStrideTwo) {
  Conv2D Conv(ConvGeometry{3, 4, 3, 2, 1});
  EXPECT_EQ(Conv.outputShape({Shape{1, 3, 8, 8}}), Shape({1, 4, 4, 4}));
}

TEST(LayerShapeTest, PoolAndGlobalPool) {
  Pool2D Pool(Pool2D::Mode::Max, 2, 2);
  EXPECT_EQ(Pool.outputShape({Shape{1, 4, 8, 8}}), Shape({1, 4, 4, 4}));
  GlobalAvgPool Gap;
  EXPECT_EQ(Gap.outputShape({Shape{1, 4, 8, 8}}), Shape({1, 4, 1, 1}));
}

TEST(LayerShapeTest, ConcatSumsChannels) {
  Concat Cat;
  EXPECT_EQ(Cat.outputShape({Shape{1, 2, 4, 4}, Shape{1, 3, 4, 4}}),
            Shape({1, 5, 4, 4}));
}

TEST(LayerShapeTest, DenseFlattens) {
  Dense Fc(2 * 4 * 4, 10);
  EXPECT_EQ(Fc.outputShape({Shape{3, 2, 4, 4}}), Shape({3, 10}));
}

TEST(LayerTest, ParamCounts) {
  Conv2D Conv(ConvGeometry{3, 8, 3, 1, 1}, /*HasBias=*/true);
  EXPECT_EQ(Conv.paramCount(), 3u * 8 * 9 + 8);
  Conv2D NoBias(ConvGeometry{3, 8, 3, 1, 1}, /*HasBias=*/false);
  EXPECT_EQ(NoBias.paramCount(), 3u * 8 * 9);
  Dense Fc(12, 5);
  EXPECT_EQ(Fc.paramCount(), 12u * 5 + 5);
  BatchNorm2D Bn(6);
  EXPECT_EQ(Bn.paramCount(), 12u); // Gamma + beta; running stats excluded.
  EXPECT_EQ(Bn.state().size(), 4u);
}

//===----------------------------------------------------------------------===//
// Layer forward semantics
//===----------------------------------------------------------------------===//

TEST(LayerForwardTest, ReluClampsNegatives) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("relu", std::make_unique<ReLU>(), {"x"});
  Tensor In(Shape{1, 1, 1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  Network.setInput("x", In);
  Network.forward(false);
  const Tensor &Out = Network.activation("relu");
  EXPECT_FLOAT_EQ(Out[0], 0.0f);
  EXPECT_FLOAT_EQ(Out[2], 2.0f);
  EXPECT_FLOAT_EQ(Out[3], 0.0f);
}

TEST(LayerForwardTest, MaxPoolPicksMaximum) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("pool", std::make_unique<Pool2D>(Pool2D::Mode::Max, 2, 2),
                  {"x"});
  Tensor In(Shape{1, 1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
  Network.setInput("x", In);
  Network.forward(false);
  EXPECT_FLOAT_EQ(Network.activation("pool")[0], 5.0f);
}

TEST(LayerForwardTest, GlobalAvgPoolAverages) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("gap", std::make_unique<GlobalAvgPool>(), {"x"});
  Tensor In(Shape{1, 2, 1, 2}, {1.0f, 3.0f, 10.0f, 20.0f});
  Network.setInput("x", In);
  Network.forward(false);
  EXPECT_FLOAT_EQ(Network.activation("gap")[0], 2.0f);
  EXPECT_FLOAT_EQ(Network.activation("gap")[1], 15.0f);
}

TEST(LayerForwardTest, ConvIdentityKernel) {
  // 1x1 conv with identity weights reproduces the input.
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv",
                  std::make_unique<Conv2D>(ConvGeometry{2, 2, 1, 1, 0}),
                  {"x"});
  auto &Conv = static_cast<Conv2D &>(Network.layer("conv"));
  Conv.weight().Value.at(0, 0, 0, 0) = 1.0f;
  Conv.weight().Value.at(1, 1, 0, 0) = 1.0f;
  Tensor In(Shape{1, 2, 2, 2},
            {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f, 8.0f});
  Network.setInput("x", In);
  Network.forward(false);
  const Tensor &Out = Network.activation("conv");
  for (size_t I = 0; I < In.size(); ++I)
    EXPECT_FLOAT_EQ(Out[I], In[I]);
}

TEST(LayerForwardTest, BatchNormNormalizesInTraining) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("bn", std::make_unique<BatchNorm2D>(1), {"x"});
  Tensor In(Shape{1, 1, 2, 2}, {2.0f, 4.0f, 6.0f, 8.0f});
  Network.setInput("x", In);
  Network.forward(true);
  const Tensor &Out = Network.activation("bn");
  // Default gamma=1, beta=0: output has zero mean and unit variance.
  double Mean = 0.0;
  for (size_t I = 0; I < Out.size(); ++I)
    Mean += Out[I];
  EXPECT_NEAR(Mean / Out.size(), 0.0, 1e-5);
  double Var = 0.0;
  for (size_t I = 0; I < Out.size(); ++I)
    Var += Out[I] * Out[I];
  EXPECT_NEAR(Var / Out.size(), 1.0, 1e-3);
}

TEST(LayerForwardTest, BatchNormUsesRunningStatsInEval) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("bn", std::make_unique<BatchNorm2D>(1), {"x"});
  auto &Bn = static_cast<BatchNorm2D &>(Network.layer("bn"));
  Bn.runningMean().Value[0] = 1.0f;
  Bn.runningVar().Value[0] = 4.0f;
  Tensor In(Shape{1, 1, 1, 1}, {5.0f});
  Network.setInput("x", In);
  Network.forward(false);
  // (5 - 1) / sqrt(4 + eps) ~= 2.
  EXPECT_NEAR(Network.activation("bn")[0], 2.0f, 1e-3);
}

//===----------------------------------------------------------------------===//
// Graph mechanics
//===----------------------------------------------------------------------===//

static std::unique_ptr<Conv2D> tinyConv(int In, int Out) {
  return std::make_unique<Conv2D>(ConvGeometry{In, Out, 1, 1, 0});
}

TEST(GraphTest, TopologicalExecutionAndActivations) {
  Rng Generator(1);
  Graph Network;
  Network.addInput("x");
  Network.addNode("a", tinyConv(1, 2), {"x"});
  Network.addNode("b", tinyConv(2, 3), {"a"});
  Network.initParams(Generator);
  Network.setInput("x", Tensor(Shape{1, 1, 2, 2}));
  Network.forward(false);
  EXPECT_EQ(Network.activation("a").shape(), Shape({1, 2, 2, 2}));
  EXPECT_EQ(Network.activation("b").shape(), Shape({1, 3, 2, 2}));
}

TEST(GraphTest, NodeNamesInOrder) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("a", tinyConv(1, 1), {"x"});
  const std::vector<std::string> Names = Network.nodeNames();
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "x");
  EXPECT_EQ(Names[1], "a");
  EXPECT_TRUE(Network.hasNode("a"));
  EXPECT_FALSE(Network.hasNode("zzz"));
}

TEST(GraphTest, FrozenNodesExcludedFromTrainableParams) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("a", tinyConv(1, 2), {"x"});
  Network.addNode("b", tinyConv(2, 3), {"a"});
  EXPECT_EQ(Network.trainableParams().size(), 4u); // 2 convs x (W, b).
  Network.setTrainable("a", false);
  EXPECT_EQ(Network.trainableParams().size(), 2u);
  Network.setAllTrainable(false);
  EXPECT_TRUE(Network.trainableParams().empty());
}

TEST(GraphTest, BackwardStopsAtFrozenSubgraph) {
  // teacher (frozen) -> student; gradient seeded at the student must not
  // touch the teacher's gradients.
  Rng Generator(2);
  Graph Network;
  Network.addInput("x");
  Network.addNode("teacher", tinyConv(1, 2), {"x"});
  Network.addNode("student", tinyConv(2, 2), {"teacher"});
  Network.initParams(Generator);
  Network.setTrainable("teacher", false);

  Network.setInput("x", Tensor(Shape{1, 1, 2, 2}, {1, 2, 3, 4}));
  Network.forward(true);
  Network.zeroGrads();
  Tensor Seed(Network.activation("student").shape());
  Seed.fill(1.0f);
  Network.seedGradient("student", Seed);
  Network.backward();

  auto &Teacher = static_cast<Conv2D &>(Network.layer("teacher"));
  auto &Student = static_cast<Conv2D &>(Network.layer("student"));
  EXPECT_DOUBLE_EQ(Teacher.weight().Grad.sum(), 0.0);
  EXPECT_NE(Student.weight().Grad.sum(), 0.0);
}

TEST(GraphTest, GradientsAccumulateAcrossConsumers) {
  // A node consumed twice receives the sum of both consumers' grads.
  Rng Generator(3);
  Graph Network;
  Network.addInput("x");
  Network.addNode("a", tinyConv(1, 2), {"x"});
  Network.addNode("sum", std::make_unique<Add>(), {"a", "a"});
  Network.initParams(Generator);
  Network.setInput("x", Tensor(Shape{1, 1, 1, 1}, {1.0f}));
  Network.forward(true);
  Network.zeroGrads();
  Tensor Seed(Network.activation("sum").shape());
  Seed.fill(1.0f);
  Network.seedGradient("sum", Seed);
  Network.backward();
  auto &A = static_cast<Conv2D &>(Network.layer("a"));
  // dL/dbias = 2 (each output channel used twice with grad 1).
  EXPECT_FLOAT_EQ(A.bias()->Grad[0], 2.0f);
}

TEST(GraphTest, ParamCountSumsLayers) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("a", tinyConv(1, 2), {"x"}); // 1*2*1 + 2 = 4.
  Network.addNode("fc", std::make_unique<Dense>(2, 3), {"a"}); // 6+3.
  EXPECT_EQ(Network.paramCount(), 13u);
}

TEST(GraphTest, NamedStateUsesStableKeys) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("bn", std::make_unique<BatchNorm2D>(2), {"x"});
  const auto State = Network.namedState();
  EXPECT_EQ(State.size(), 4u);
  EXPECT_TRUE(State.count("bn/s0"));
  EXPECT_TRUE(State.count("bn/s3"));
}

//===----------------------------------------------------------------------===//
// Optimizer
//===----------------------------------------------------------------------===//

TEST(OptimizerTest, PlainSgdStep) {
  Param P(Shape{2});
  P.Value[0] = 1.0f;
  P.Grad[0] = 0.5f;
  SgdOptimizer Optimizer(0.1f, /*Momentum=*/0.0f);
  Optimizer.step({&P});
  EXPECT_NEAR(P.Value[0], 0.95f, 1e-6);
}

TEST(OptimizerTest, MomentumAccumulates) {
  Param P(Shape{1});
  P.Grad[0] = 1.0f;
  SgdOptimizer Optimizer(1.0f, /*Momentum=*/0.5f);
  Optimizer.step({&P}); // v=1, x=-1.
  Optimizer.step({&P}); // v=1.5, x=-2.5.
  EXPECT_NEAR(P.Value[0], -2.5f, 1e-6);
}

TEST(OptimizerTest, WeightDecayPullsTowardZero) {
  Param P(Shape{1});
  P.Value[0] = 10.0f;
  SgdOptimizer Optimizer(0.1f, /*Momentum=*/0.0f, /*WeightDecay=*/0.1f);
  Optimizer.step({&P}); // update = 0 + 0.1*10 = 1; x = 10 - 0.1.
  EXPECT_NEAR(P.Value[0], 9.9f, 1e-5);
}

TEST(OptimizerTest, ConvergesOnQuadratic) {
  // Minimize f(x) = 0.5*(x-3)^2 by hand-computed gradients.
  Param P(Shape{1});
  SgdOptimizer Optimizer(0.2f, 0.5f);
  for (int Step = 0; Step < 100; ++Step) {
    P.Grad[0] = P.Value[0] - 3.0f;
    Optimizer.step({&P});
  }
  EXPECT_NEAR(P.Value[0], 3.0f, 1e-3);
}

//===----------------------------------------------------------------------===//
// Loss helpers
//===----------------------------------------------------------------------===//

TEST(LossTest, CrossEntropyOfUniformLogits) {
  Tensor Logits(Shape{2, 4}); // All-zero logits: loss = ln(4).
  Tensor Grad;
  const double Loss = softmaxCrossEntropy(Logits, {0, 1}, Grad);
  EXPECT_NEAR(Loss, std::log(4.0), 1e-6);
}

TEST(LossTest, AccuracyFromLogits) {
  Tensor Logits(Shape{2, 3}, {0.1f, 0.9f, 0.0f, 0.8f, 0.1f, 0.1f});
  EXPECT_DOUBLE_EQ(accuracyFromLogits(Logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracyFromLogits(Logits, {0, 0}), 0.5);
}

TEST(LossTest, L2ReconstructionOfEqualTensorsIsZero) {
  Tensor A(Shape{3}, {1, 2, 3});
  Tensor Grad;
  EXPECT_DOUBLE_EQ(l2Reconstruction(A, A, Grad), 0.0);
  EXPECT_DOUBLE_EQ(Grad.sum(), 0.0);
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

TEST(SerializeTest, RoundTripInMemory) {
  TensorBundle Bundle;
  Bundle["a/w"] = Tensor(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Bundle["b"] = Tensor(Shape{1}, {-7.5f});
  const std::string Bytes = serializeTensors(Bundle);
  Result<TensorBundle> Loaded = deserializeTensors(Bytes);
  ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.message();
  EXPECT_EQ(Loaded->size(), 2u);
  EXPECT_EQ((*Loaded)["a/w"].shape(), Shape({2, 3}));
  EXPECT_FLOAT_EQ((*Loaded)["a/w"][5], 6.0f);
  EXPECT_FLOAT_EQ((*Loaded)["b"][0], -7.5f);
}

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_FALSE(static_cast<bool>(deserializeTensors("not a checkpoint")));
  EXPECT_FALSE(static_cast<bool>(deserializeTensors("")));
}

TEST(SerializeTest, RejectsTruncation) {
  TensorBundle Bundle;
  Bundle["x"] = Tensor(Shape{8}, std::vector<float>(8, 1.0f));
  std::string Bytes = serializeTensors(Bundle);
  Bytes.resize(Bytes.size() - 4);
  EXPECT_FALSE(static_cast<bool>(deserializeTensors(Bytes)));
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string Path =
      (std::filesystem::temp_directory_path() / "wootz_serialize_test.ckpt")
          .string();
  TensorBundle Bundle;
  Bundle["w"] = Tensor(Shape{2, 2}, {1, 2, 3, 4});
  Error SaveErr = saveTensors(Path, Bundle);
  ASSERT_FALSE(static_cast<bool>(SaveErr)) << SaveErr.message();
  Result<TensorBundle> Loaded = loadTensors(Path);
  ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.message();
  EXPECT_FLOAT_EQ((*Loaded)["w"][3], 4.0f);
  std::remove(Path.c_str());
}

} // namespace

//===----------------------------------------------------------------------===//
// Dropout (appended tests)
//===----------------------------------------------------------------------===//

namespace {

TEST(DropoutTest, EvalModeIsIdentity) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("drop", std::make_unique<Dropout>(0.5f), {"x"});
  Tensor In(Shape{1, 1, 2, 2}, {1.0f, -2.0f, 3.0f, 4.0f});
  Network.setInput("x", In);
  Network.forward(/*Training=*/false);
  const Tensor &Out = Network.activation("drop");
  for (size_t I = 0; I < In.size(); ++I)
    EXPECT_FLOAT_EQ(Out[I], In[I]);
}

TEST(DropoutTest, TrainingDropsRoughlyDropRate) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("drop", std::make_unique<Dropout>(0.3f, /*Seed=*/5),
                  {"x"});
  Tensor In(Shape{1, 1, 40, 40});
  In.fill(1.0f);
  Network.setInput("x", In);
  Network.forward(/*Training=*/true);
  const Tensor &Out = Network.activation("drop");
  int Zeros = 0;
  for (size_t I = 0; I < Out.size(); ++I) {
    if (Out[I] == 0.0f)
      ++Zeros;
    else
      EXPECT_NEAR(Out[I], 1.0f / 0.7f, 1e-5); // Inverted scaling.
  }
  const double ZeroFraction = static_cast<double>(Zeros) / Out.size();
  EXPECT_NEAR(ZeroFraction, 0.3, 0.05);
  // Expectation preserved: mean stays near 1.
  EXPECT_NEAR(Out.mean(), 1.0, 0.08);
}

TEST(DropoutTest, BackwardMasksSamePositions) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv", tinyConv(1, 1), {"x"});
  Network.addNode("drop", std::make_unique<Dropout>(0.5f, /*Seed=*/6),
                  {"conv"});
  auto &Conv = static_cast<Conv2D &>(Network.layer("conv"));
  Conv.weight().Value[0] = 1.0f; // Identity 1x1 conv.

  Tensor In(Shape{1, 1, 4, 4});
  In.fill(1.0f);
  Network.setInput("x", In);
  Network.forward(/*Training=*/true);
  const Tensor Out = Network.activation("drop");

  Network.zeroGrads();
  Tensor Seed(Out.shape());
  Seed.fill(1.0f);
  Network.seedGradient("drop", Seed);
  Network.backward();
  // dL/dbias of the conv sums the mask: equals the number of survivors
  // times the inverted scale.
  int Survivors = 0;
  for (size_t I = 0; I < Out.size(); ++I)
    Survivors += Out[I] != 0.0f;
  EXPECT_NEAR(Conv.bias()->Grad[0], Survivors * 2.0f, 1e-4);
}

TEST(DropoutTest, ZeroRateIsAlwaysIdentity) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("drop", std::make_unique<Dropout>(0.0f), {"x"});
  Tensor In(Shape{1, 1, 2, 2}, {5.0f, 6.0f, 7.0f, 8.0f});
  Network.setInput("x", In);
  Network.forward(/*Training=*/true);
  for (size_t I = 0; I < In.size(); ++I)
    EXPECT_FLOAT_EQ(Network.activation("drop")[I], In[I]);
}

} // namespace

//===----------------------------------------------------------------------===//
// Dot export (appended tests)
//===----------------------------------------------------------------------===//

namespace {

TEST(GraphDotTest, EmitsNodesEdgesAndFreezeStyle) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("a", tinyConv(1, 2), {"x"});
  Network.addNode("b", tinyConv(2, 1), {"a"});
  Network.setTrainable("a", false);
  const std::string Dot = Network.toDot("demo");
  EXPECT_NE(Dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(Dot.find("\"x\" -> \"a\""), std::string::npos);
  EXPECT_NE(Dot.find("\"a\" -> \"b\""), std::string::npos);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos); // Frozen a.
  EXPECT_NE(Dot.find("shape=ellipse"), std::string::npos); // Input x.
  // Conv "a": 1*2*1*1 weights + 2 bias = 4 params in the label.
  EXPECT_NE(Dot.find("conv (4)"), std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===//
// Kernel-threaded Conv2D (appended tests)
//===----------------------------------------------------------------------===//

namespace {

/// Batch-parallel Conv2D must stay bit-identical across kernel worker
/// counts and must not keep the full-batch im2col buffer outside
/// training. (Named Kernel* so the tsan preset's filter covers the
/// threaded paths.)
class KernelConvTest : public ::testing::Test {
protected:
  void TearDown() override { setKernelWorkers(1); }

  struct Run {
    Tensor Out;
    Tensor GradIn;
    std::vector<Tensor> ParamGrads;
  };

  /// Forward + backward at the given worker count, returning everything
  /// the layer produced.
  static Run runConv(Conv2D &Conv, const Tensor &In, unsigned Workers) {
    setKernelWorkers(Workers);
    Run Result;
    Result.Out = Tensor(Conv.outputShape({In.shape()}));
    Result.GradIn = Tensor(In.shape());
    LayerScratch Scratch;
    const std::vector<const Tensor *> Inputs{&In};
    Conv.forward(Inputs, Result.Out, Scratch, /*Training=*/true);

    Tensor GradOut(Result.Out.shape());
    Rng GradGen(99);
    for (size_t I = 0; I < GradOut.size(); ++I)
      GradOut[I] = GradGen.nextGaussian();
    for (Param *P : Conv.params())
      P->Grad.zero();
    std::vector<Tensor *> GradInputs{&Result.GradIn};
    Conv.backward(Inputs, Result.Out, GradOut, Scratch, GradInputs);
    for (Param *P : Conv.params())
      Result.ParamGrads.push_back(P->Grad);
    return Result;
  }

  static void expectBitIdentical(const Tensor &A, const Tensor &B,
                                 const char *What) {
    ASSERT_EQ(A.shape(), B.shape()) << What;
    ASSERT_EQ(std::memcmp(A.data(), B.data(), A.size() * sizeof(float)), 0)
        << What << " differs across kernel worker counts";
  }
};

TEST_F(KernelConvTest, ForwardBackwardBitIdenticalAcrossWorkers) {
  Conv2D Conv(ConvGeometry{3, 8, 3, 1, 1});
  Rng Generator(7);
  Conv.initParams(Generator);
  Tensor In(Shape{6, 3, 9, 9});
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = Generator.nextGaussian();

  const Run Serial = runConv(Conv, In, 1);
  for (unsigned Workers : {2u, 4u}) {
    const Run Threaded = runConv(Conv, In, Workers);
    expectBitIdentical(Serial.Out, Threaded.Out, "conv output");
    expectBitIdentical(Serial.GradIn, Threaded.GradIn, "conv input grad");
    ASSERT_EQ(Serial.ParamGrads.size(), Threaded.ParamGrads.size());
    for (size_t I = 0; I < Serial.ParamGrads.size(); ++I)
      expectBitIdentical(Serial.ParamGrads[I], Threaded.ParamGrads[I],
                         "conv param grad");
  }
}

TEST_F(KernelConvTest, EvalForwardMatchesTrainingAndReleasesScratch) {
  Conv2D Conv(ConvGeometry{2, 4, 3, 1, 1});
  Rng Generator(11);
  Conv.initParams(Generator);
  Tensor In(Shape{3, 2, 6, 6});
  for (size_t I = 0; I < In.size(); ++I)
    In[I] = Generator.nextGaussian();
  const std::vector<const Tensor *> Inputs{&In};
  Tensor Out(Conv.outputShape({In.shape()}));
  LayerScratch Scratch;

  // Training forward materializes the full-batch im2col buffer (needed
  // by backward)...
  Conv.forward(Inputs, Out, Scratch, /*Training=*/true);
  ASSERT_FALSE(Scratch.Buffers.empty());
  EXPECT_GT(Scratch.Buffers[0].size(), 0u);
  const Tensor TrainingOut = Out;

  // ...and an eval forward releases it again. Eval always runs the
  // fused blocked engine while a tiny training GEMM like this one uses
  // the reference loops, so the two agree to summation-order rounding,
  // not bit-for-bit.
  Conv.forward(Inputs, Out, Scratch, /*Training=*/false);
  ASSERT_FALSE(Scratch.Buffers.empty());
  EXPECT_EQ(Scratch.Buffers[0].size(), 0u)
      << "eval forward should drop the full-batch im2col buffer";
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_NEAR(Out[I], TrainingOut[I], 1e-5f);
}

} // namespace
