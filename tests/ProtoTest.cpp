//===- tests/ProtoTest.cpp - proto/ unit tests -----------------------------------===//

#include "src/proto/ModelSpec.h"
#include "src/proto/Prototxt.h"

#include <gtest/gtest.h>

using namespace wootz;

namespace {

//===----------------------------------------------------------------------===//
// Generic Prototxt parser
//===----------------------------------------------------------------------===//

TEST(PrototxtTest, ScalarsAndStrings) {
  Result<PrototxtMessage> Msg = parsePrototxt(
      "name: \"resnet\"\ncount: 42\nratio: 0.5\nflag: true\n");
  ASSERT_TRUE(static_cast<bool>(Msg)) << Msg.message();
  EXPECT_EQ(*Msg->scalarOr("name", ""), "resnet");
  EXPECT_EQ(*Msg->intOr("count", 0), 42);
  EXPECT_DOUBLE_EQ(*Msg->doubleOr("ratio", 0), 0.5);
  EXPECT_TRUE(*Msg->boolOr("flag", false));
  EXPECT_EQ(*Msg->intOr("missing", -1), -1);
}

TEST(PrototxtTest, NestedMessages) {
  Result<PrototxtMessage> Msg = parsePrototxt(
      "layer { name: \"a\" inner { x: 1 } }\nlayer { name: \"b\" }\n");
  ASSERT_TRUE(static_cast<bool>(Msg)) << Msg.message();
  const auto &Layers = Msg->values("layer");
  ASSERT_EQ(Layers.size(), 2u);
  EXPECT_EQ(*Layers[0].message().scalarOr("name", ""), "a");
  EXPECT_EQ(*Layers[0].message().values("inner")[0].message().intOr("x", 0),
            1);
  EXPECT_EQ(*Layers[1].message().scalarOr("name", ""), "b");
}

TEST(PrototxtTest, ColonBeforeBraceIsOptional) {
  Result<PrototxtMessage> A = parsePrototxt("block { x: 1 }");
  Result<PrototxtMessage> B = parsePrototxt("block: { x: 1 }");
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(*A->values("block")[0].message().intOr("x", 0),
            *B->values("block")[0].message().intOr("x", 0));
}

TEST(PrototxtTest, CommentsIgnored) {
  Result<PrototxtMessage> Msg =
      parsePrototxt("# header\nvalue: 3 # trailing\n# done\n");
  ASSERT_TRUE(static_cast<bool>(Msg));
  EXPECT_EQ(*Msg->intOr("value", 0), 3);
}

TEST(PrototxtTest, RepeatedFieldsKeepOrder) {
  Result<PrototxtMessage> Msg =
      parsePrototxt("dim: 1\ndim: 3\ndim: 8\ndim: 8\n");
  ASSERT_TRUE(static_cast<bool>(Msg));
  const auto &Dims = Msg->values("dim");
  ASSERT_EQ(Dims.size(), 4u);
  EXPECT_EQ(Dims[1].text(), "3");
}

TEST(PrototxtTest, NegativeAndScientificNumbers) {
  Result<PrototxtMessage> Msg = parsePrototxt("a: -3\nb: 1e-4\n");
  ASSERT_TRUE(static_cast<bool>(Msg));
  EXPECT_EQ(*Msg->intOr("a", 0), -3);
  EXPECT_DOUBLE_EQ(*Msg->doubleOr("b", 0), 1e-4);
}

TEST(PrototxtTest, ErrorsCarryLineNumbers) {
  Result<PrototxtMessage> Unterminated = parsePrototxt("a: \"oops\n");
  ASSERT_FALSE(static_cast<bool>(Unterminated));
  EXPECT_NE(Unterminated.message().find("line 1"), std::string::npos);

  Result<PrototxtMessage> Unmatched = parsePrototxt("a: 1\n}\n");
  ASSERT_FALSE(static_cast<bool>(Unmatched));
  EXPECT_NE(Unmatched.message().find("line 2"), std::string::npos);

  EXPECT_FALSE(static_cast<bool>(parsePrototxt("block { x: 1")));
  EXPECT_FALSE(static_cast<bool>(parsePrototxt("name value")));
}

//===----------------------------------------------------------------------===//
// ModelSpec
//===----------------------------------------------------------------------===//

/// A minimal valid two-module model used across the tests.
static const char *TinyModel = R"proto(
name: "tiny"
input: "data"
input_dim: 1
input_dim: 3
input_dim: 8
input_dim: 8
layer {
  name: "stem"
  type: "Convolution"
  bottom: "data"
  top: "stem"
  convolution_param { num_output: 6 kernel_size: 3 stride: 1 pad: 1 }
}
layer {
  name: "m1_conv1"
  type: "Convolution"
  bottom: "stem"
  top: "m1_conv1"
  module: "m1"
  convolution_param { num_output: 4 kernel_size: 1 stride: 1 pad: 0 }
}
layer {
  name: "m1_relu1"
  type: "ReLU"
  bottom: "m1_conv1"
  top: "m1_relu1"
  module: "m1"
}
layer {
  name: "m1_conv2"
  type: "Convolution"
  bottom: "m1_relu1"
  top: "m1_conv2"
  module: "m1"
  convolution_param { num_output: 6 kernel_size: 3 stride: 1 pad: 1 }
}
layer {
  name: "m2_conv1"
  type: "Convolution"
  bottom: "m1_conv2"
  top: "m2_conv1"
  module: "m2"
  convolution_param { num_output: 4 kernel_size: 1 stride: 1 pad: 0 }
}
layer {
  name: "m2_conv2"
  type: "Convolution"
  bottom: "m2_conv1"
  top: "m2_conv2"
  module: "m2"
  convolution_param { num_output: 6 kernel_size: 3 stride: 1 pad: 1 }
}
layer {
  name: "pool"
  type: "Pooling"
  bottom: "m2_conv2"
  top: "pool"
  pooling_param { pool: AVE global_pooling: true }
}
layer {
  name: "logits"
  type: "InnerProduct"
  bottom: "pool"
  top: "logits"
  inner_product_param { num_output: 5 }
}
)proto";

TEST(ModelSpecTest, ParsesTinyModel) {
  Result<ModelSpec> Spec = parseModelSpec(TinyModel);
  ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  EXPECT_EQ(Spec->Name, "tiny");
  EXPECT_EQ(Spec->InputChannels, 3);
  EXPECT_EQ(Spec->Layers.size(), 8u);
  EXPECT_EQ(Spec->moduleCount(), 2);
}

TEST(ModelSpecTest, ModuleBoundaries) {
  Result<ModelSpec> Spec = parseModelSpec(TinyModel);
  ASSERT_TRUE(static_cast<bool>(Spec));
  EXPECT_EQ(Spec->Modules[0].Name, "m1");
  EXPECT_EQ(Spec->Modules[0].ExternalInput, "stem");
  EXPECT_EQ(Spec->Modules[0].OutputLayer, "m1_conv2");
  EXPECT_EQ(Spec->Modules[1].ExternalInput, "m1_conv2");
  EXPECT_EQ(Spec->Modules[1].OutputLayer, "m2_conv2");
}

TEST(ModelSpecTest, PrunabilityFollowsPaperRule) {
  Result<ModelSpec> Spec = parseModelSpec(TinyModel);
  ASSERT_TRUE(static_cast<bool>(Spec));
  // Internal convs (followed by a conv in the same module) are prunable;
  // the top conv of each module and the stem are not.
  EXPECT_FALSE(Spec->Prunable[Spec->layerIndex("stem")]);
  EXPECT_TRUE(Spec->Prunable[Spec->layerIndex("m1_conv1")]);
  EXPECT_FALSE(Spec->Prunable[Spec->layerIndex("m1_conv2")]);
  EXPECT_TRUE(Spec->Prunable[Spec->layerIndex("m2_conv1")]);
  EXPECT_FALSE(Spec->Prunable[Spec->layerIndex("m2_conv2")]);
}

TEST(ModelSpecTest, LayerModuleMapping) {
  Result<ModelSpec> Spec = parseModelSpec(TinyModel);
  ASSERT_TRUE(static_cast<bool>(Spec));
  EXPECT_EQ(Spec->LayerModule[Spec->layerIndex("stem")], -1);
  EXPECT_EQ(Spec->LayerModule[Spec->layerIndex("m1_relu1")], 0);
  EXPECT_EQ(Spec->LayerModule[Spec->layerIndex("m2_conv1")], 1);
  EXPECT_EQ(Spec->LayerModule[Spec->layerIndex("logits")], -1);
}

TEST(ModelSpecTest, RoundTripsThroughPrinter) {
  Result<ModelSpec> Spec = parseModelSpec(TinyModel);
  ASSERT_TRUE(static_cast<bool>(Spec));
  const std::string Printed = printModelSpec(*Spec);
  Result<ModelSpec> Reparsed = parseModelSpec(Printed);
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  EXPECT_EQ(Reparsed->Layers.size(), Spec->Layers.size());
  EXPECT_EQ(Reparsed->moduleCount(), Spec->moduleCount());
  EXPECT_EQ(printModelSpec(*Reparsed), Printed);
}

TEST(ModelSpecTest, RejectsUndefinedBottom) {
  const std::string Bad = std::string(TinyModel) +
                          "layer { name: \"x\" type: \"ReLU\" "
                          "bottom: \"nonexistent\" top: \"x\" }\n";
  Result<ModelSpec> Spec = parseModelSpec(Bad);
  ASSERT_FALSE(static_cast<bool>(Spec));
  EXPECT_NE(Spec.message().find("undefined bottom"), std::string::npos);
}

TEST(ModelSpecTest, RejectsUnsupportedLayerType) {
  Result<ModelSpec> Spec = parseModelSpec(
      "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
      "input_dim: 8\ninput_dim: 8\n"
      "layer { name: \"a\" type: \"LSTM\" bottom: \"data\" top: \"a\" }\n");
  ASSERT_FALSE(static_cast<bool>(Spec));
  EXPECT_NE(Spec.message().find("unsupported layer type"),
            std::string::npos);
}

TEST(ModelSpecTest, RejectsMissingConvParam) {
  Result<ModelSpec> Spec = parseModelSpec(
      "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
      "input_dim: 8\ninput_dim: 8\n"
      "layer { name: \"a\" type: \"Convolution\" bottom: \"data\" "
      "top: \"a\" }\n");
  ASSERT_FALSE(static_cast<bool>(Spec));
}

TEST(ModelSpecTest, RejectsNonContiguousModule) {
  // m1 appears, then m2, then m1 again.
  std::string Bad = R"proto(
name: "bad"
input: "data"
input_dim: 1
input_dim: 3
input_dim: 8
input_dim: 8
layer { name: "a" type: "ReLU" bottom: "data" top: "a" module: "m1" }
layer { name: "b" type: "ReLU" bottom: "a" top: "b" module: "m2" }
layer { name: "c" type: "ReLU" bottom: "b" top: "c" module: "m1" }
)proto";
  Result<ModelSpec> Spec = parseModelSpec(Bad);
  ASSERT_FALSE(static_cast<bool>(Spec));
  EXPECT_NE(Spec.message().find("contiguous"), std::string::npos);
}

TEST(ModelSpecTest, RejectsDuplicateLayerNames) {
  std::string Bad = R"proto(
name: "bad"
input: "data"
input_dim: 1
input_dim: 3
input_dim: 8
input_dim: 8
layer { name: "a" type: "ReLU" bottom: "data" top: "a" }
layer { name: "a" type: "ReLU" bottom: "a" top: "a" }
)proto";
  // The duplicate's top equals its name, so it parses per-layer but the
  // analysis must reject the duplicate name.
  Result<ModelSpec> Spec = parseModelSpec(Bad);
  ASSERT_FALSE(static_cast<bool>(Spec));
  EXPECT_NE(Spec.message().find("duplicate layer name"), std::string::npos);
}

TEST(ModelSpecTest, RejectsWrongInputDims) {
  Result<ModelSpec> Spec = parseModelSpec(
      "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 3\n");
  ASSERT_FALSE(static_cast<bool>(Spec));
  EXPECT_NE(Spec.message().find("input_dim"), std::string::npos);
}

TEST(ModelSpecTest, LayerKindNames) {
  EXPECT_STREQ(layerKindName(LayerKind::Convolution), "Convolution");
  EXPECT_STREQ(layerKindName(LayerKind::Eltwise), "Eltwise");
}

} // namespace

//===----------------------------------------------------------------------===//
// Malformed-input corpus sweep (appended tests)
//===----------------------------------------------------------------------===//

namespace {

class MalformedPrototxt : public ::testing::TestWithParam<const char *> {};

TEST_P(MalformedPrototxt, IsRejectedWithoutCrashing) {
  Result<ModelSpec> Spec = parseModelSpec(GetParam());
  EXPECT_FALSE(static_cast<bool>(Spec));
  EXPECT_FALSE(Spec.message().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MalformedPrototxt,
    ::testing::Values(
        // Lexical breakage.
        "", "{", "}", "name \"x\"", "name: \"unterminated",
        "layer { name: }", "@@@", "layer { { } }",
        // Structural breakage.
        "name: \"x\"",                              // No input dims.
        "input_dim: 1\ninput_dim: 3\ninput_dim: 8", // Three dims.
        "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
        "input_dim: 8\ninput_dim: 8\n", // No layers.
        // Semantic breakage.
        "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
        "input_dim: 8\ninput_dim: 8\n"
        "layer { name: \"a\" type: \"ReLU\" bottom: \"ghost\" "
        "top: \"a\" }",
        "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
        "input_dim: 8\ninput_dim: 8\n"
        "layer { name: \"a\" type: \"Convolution\" bottom: \"data\" "
        "top: \"a\" convolution_param { num_output: 0 kernel_size: 3 } }",
        "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
        "input_dim: 8\ninput_dim: 8\n"
        "layer { name: \"a\" type: \"ReLU\" bottom: \"data\" "
        "top: \"mismatch\" }",
        "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
        "input_dim: 8\ninput_dim: 8\n"
        "layer { name: \"a\" type: \"Pooling\" bottom: \"data\" top: \"a\" "
        "pooling_param { pool: STOCHASTIC } }",
        // A module whose layers consume two external producers.
        "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: 3\n"
        "input_dim: 8\ninput_dim: 8\n"
        "layer { name: \"s1\" type: \"ReLU\" bottom: \"data\" top: \"s1\" }\n"
        "layer { name: \"s2\" type: \"ReLU\" bottom: \"data\" top: \"s2\" }\n"
        "layer { name: \"m1_a\" type: \"Eltwise\" bottom: \"s1\" "
        "bottom: \"s2\" top: \"m1_a\" module: \"m1\" "
        "eltwise_param { operation: SUM } }\n"
        "layer { name: \"out\" type: \"ReLU\" bottom: \"m1_a\" "
        "top: \"out\" }"));

} // namespace

//===----------------------------------------------------------------------===//
// Untrusted-input hardening (appended tests)
//===----------------------------------------------------------------------===//

#include "src/models/MiniModels.h"

namespace {

// Every truncation of a valid model — which cuts mid-token, mid-string,
// mid-message, and at every token boundary somewhere along the sweep —
// must yield either a parse or a diagnostic, never a crash. This is the
// regression net for the assert-based accessors the parser used to have
// (UB under NDEBUG on exactly these inputs).
TEST(PrototxtFuzzTest, EveryTruncationParsesOrDiagnoses) {
  const std::string Text = TinyModel;
  for (size_t Length = 0; Length < Text.size(); ++Length) {
    Result<ModelSpec> Spec = parseModelSpec(Text.substr(0, Length));
    if (!Spec)
      EXPECT_FALSE(Spec.message().empty()) << "prefix length " << Length;
  }
}

// Same sweep with a byte flipped at the cut point: exercises garbage in
// the middle rather than a clean cut.
TEST(PrototxtFuzzTest, EveryByteFlipParsesOrDiagnoses) {
  const std::string Text = TinyModel;
  for (size_t At = 0; At < Text.size(); At += 3) {
    std::string Mutated = Text;
    Mutated[At] = static_cast<char>(Mutated[At] ^ 0x20);
    Result<ModelSpec> Spec = parseModelSpec(Mutated);
    if (!Spec)
      EXPECT_FALSE(Spec.message().empty()) << "flip at " << At;
  }
}

TEST(PrototxtFuzzTest, RepeatedScalarFieldIsRejected) {
  Result<ModelSpec> Spec = parseModelSpec(
      "name: \"a\"\nname: \"b\"\ninput: \"data\"\ninput_dim: 1\n"
      "input_dim: 3\ninput_dim: 8\ninput_dim: 8\n"
      "layer { name: \"fc\" type: \"InnerProduct\" bottom: \"data\" "
      "top: \"fc\" inner_product_param { num_output: 2 } }");
  ASSERT_FALSE(static_cast<bool>(Spec));
  EXPECT_NE(Spec.message().find("name"), std::string::npos)
      << Spec.message();
}

class MalformedNumeric : public ::testing::TestWithParam<const char *> {};

// input_dim flows through parseInteger: locale artifacts, hex, doubled
// signs, and overflow must all be diagnosed (strtoll silently accepted
// some of these).
TEST_P(MalformedNumeric, IsRejectedAsDimension) {
  const std::string Text =
      "name: \"x\"\ninput: \"data\"\ninput_dim: 1\ninput_dim: " +
      std::string(GetParam()) +
      "\ninput_dim: 8\ninput_dim: 8\n"
      "layer { name: \"fc\" type: \"InnerProduct\" bottom: \"data\" "
      "top: \"fc\" inner_product_param { num_output: 2 } }";
  Result<ModelSpec> Spec = parseModelSpec(Text);
  EXPECT_FALSE(static_cast<bool>(Spec));
  EXPECT_FALSE(Spec.message().empty());
}

INSTANTIATE_TEST_SUITE_P(Corpus, MalformedNumeric,
                         ::testing::Values("1,000", "0x10", "++1", "--1",
                                           "+-1", "1e3", "nan",
                                           "99999999999999999999", "1.",
                                           "8 8"));

TEST(PrototxtEscapeTest, EscapedStringsDecodeAndRoundTrip) {
  Result<PrototxtMessage> Msg = parsePrototxt(
      "name: \"a\\\"b\\\\c\\nd\\te\"\n");
  ASSERT_TRUE(static_cast<bool>(Msg)) << Msg.message();
  const std::string Decoded = *Msg->scalarOr("name", "");
  EXPECT_EQ(Decoded, "a\"b\\c\nd\te");
  // prototxtEscape is the inverse: printing and reparsing is stable.
  Result<PrototxtMessage> Again =
      parsePrototxt("name: \"" + prototxtEscape(Decoded) + "\"\n");
  ASSERT_TRUE(static_cast<bool>(Again)) << Again.message();
  EXPECT_EQ(*Again->scalarOr("name", ""), Decoded);
}

TEST(PrototxtEscapeTest, UnsupportedEscapeIsDiagnosed) {
  Result<PrototxtMessage> Msg = parsePrototxt("name: \"a\\qb\"\n");
  ASSERT_FALSE(static_cast<bool>(Msg));
  EXPECT_NE(Msg.message().find("unsupported escape"), std::string::npos)
      << Msg.message();
}

TEST(PrototxtEscapeTest, TrailingBackslashIsUnterminated) {
  Result<PrototxtMessage> Msg = parsePrototxt("name: \"abc\\");
  ASSERT_FALSE(static_cast<bool>(Msg));
  EXPECT_NE(Msg.message().find("unterminated"), std::string::npos)
      << Msg.message();
}

TEST(PrototxtEscapeTest, SpecWithQuotedNameRoundTrips) {
  Result<ModelSpec> Spec = parseModelSpec(
      "name: \"ti\\\"ny\\\\model\"\ninput: \"data\"\ninput_dim: 1\n"
      "input_dim: 3\ninput_dim: 8\ninput_dim: 8\n"
      "layer { name: \"fc\" type: \"InnerProduct\" bottom: \"data\" "
      "top: \"fc\" inner_product_param { num_output: 2 } }");
  ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  EXPECT_EQ(Spec->Name, "ti\"ny\\model");
  Result<ModelSpec> Reparsed = parseModelSpec(printModelSpec(*Spec));
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  EXPECT_EQ(Reparsed->Name, Spec->Name);
  EXPECT_EQ(printModelSpec(*Reparsed), printModelSpec(*Spec));
}

// print ∘ parse is the identity on every built-in model: the printer is
// what uploads persist, so drift here would corrupt the store.
TEST(ModelSpecRoundTripTest, EveryStandardModelIsStable) {
  for (StandardModel Model : standardModels()) {
    const std::string Text = standardModelPrototxt(Model, 7);
    Result<ModelSpec> Spec = parseModelSpec(Text);
    ASSERT_TRUE(static_cast<bool>(Spec))
        << standardModelName(Model) << ": " << Spec.message();
    const std::string Printed = printModelSpec(*Spec);
    Result<ModelSpec> Reparsed = parseModelSpec(Printed);
    ASSERT_TRUE(static_cast<bool>(Reparsed))
        << standardModelName(Model) << ": " << Reparsed.message();
    EXPECT_EQ(printModelSpec(*Reparsed), Printed)
        << standardModelName(Model);
  }
}

} // namespace
