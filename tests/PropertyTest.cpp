//===- tests/PropertyTest.cpp - randomized whole-stack properties -----------------===//
//
// Property-based sweeps over randomly generated module-structured models
// (models/RandomModels.h): every generated model must parse, analyze,
// plan, build in all three multiplexing modes, run forward, and survive
// weight transfer exactly — for every seed. These parameterized suites
// are the broad-coverage counterpart of the hand-written unit tests.
//
//===----------------------------------------------------------------------===//

#include "src/compiler/Multiplexing.h"
#include "src/models/RandomModels.h"
#include "src/nn/Layers.h"
#include "src/pruning/Transfer.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wootz;

namespace {

//===----------------------------------------------------------------------===//
// Random-model structural properties
//===----------------------------------------------------------------------===//

class RandomModelProperty : public ::testing::TestWithParam<int> {
protected:
  ModelSpec makeModel() {
    Rng Generator(static_cast<uint64_t>(GetParam()) * 7919 + 13);
    Result<ModelSpec> Spec = makeRandomModel(
        "random-" + std::to_string(GetParam()), Generator);
    EXPECT_TRUE(static_cast<bool>(Spec)) << Spec.message();
    return Spec.take();
  }

  PruneConfig randomConfig(const ModelSpec &Spec) {
    Rng Generator(static_cast<uint64_t>(GetParam()) * 104729 + 7);
    PruneConfig Config(Spec.moduleCount());
    const std::vector<float> Rates = standardRates();
    for (float &Rate : Config)
      Rate = Generator.choice(Rates);
    return Config;
  }
};

TEST_P(RandomModelProperty, ParsesAndRoundTrips) {
  const ModelSpec Spec = makeModel();
  EXPECT_GE(Spec.moduleCount(), 2);
  // Printer -> parser round trip preserves the structure.
  Result<ModelSpec> Reparsed = parseModelSpec(printModelSpec(Spec));
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  EXPECT_EQ(Reparsed->Layers.size(), Spec.Layers.size());
  EXPECT_EQ(Reparsed->moduleCount(), Spec.moduleCount());
  EXPECT_EQ(Reparsed->Prunable, Spec.Prunable);
}

TEST_P(RandomModelProperty, ModulesHaveBoundariesAndPrunableConvs) {
  const ModelSpec Spec = makeModel();
  for (const ModuleSpec &M : Spec.Modules) {
    EXPECT_FALSE(M.ExternalInput.empty());
    EXPECT_FALSE(M.OutputLayer.empty());
    EXPECT_LE(M.FirstLayer, M.LastLayer);
    int PrunableInModule = 0;
    for (int I = M.FirstLayer; I <= M.LastLayer; ++I)
      PrunableInModule += Spec.Prunable[I];
    EXPECT_GE(PrunableInModule, 1) << "module " << M.Name;
  }
}

TEST_P(RandomModelProperty, PlansCleanlyAndShrinksMonotonically) {
  const ModelSpec Spec = makeModel();
  const size_t FullWeights = modelWeightCount(Spec, unprunedConfig(Spec));
  size_t Previous = FullWeights;
  for (float Rate : {0.3f, 0.5f, 0.7f}) {
    const PruneConfig Config(Spec.moduleCount(), Rate);
    Result<ChannelPlan> Plan = planChannels(Spec, Config);
    ASSERT_TRUE(static_cast<bool>(Plan)) << Plan.message();
    const size_t Weights = modelWeightCount(Spec, Config);
    // Non-strict: tiny layers can hit the keep-at-least-one floor at
    // two adjacent rates (e.g. 3 filters keep 2 at both 30% and 50%).
    EXPECT_LE(Weights, Previous) << "rate " << Rate;
    EXPECT_LT(Weights, FullWeights) << "rate " << Rate;
    Previous = Weights;
    // Module outputs stay full width (the composability invariant).
    for (const ModuleSpec &M : Spec.Modules) {
      const int Index = Spec.layerIndex(M.OutputLayer);
      Result<ChannelPlan> Full = planChannels(Spec, unprunedConfig(Spec));
      EXPECT_EQ(Plan->OutChannels[Index], Full->OutChannels[Index]);
    }
  }
}

TEST_P(RandomModelProperty, FullAndFineTuneModesForward) {
  const ModelSpec Spec = makeModel();
  const MultiplexingModel Model(Spec);
  Rng Generator(GetParam());

  Graph Full;
  Result<BuildResult> FullBuilt = Model.build(
      Full, BuildMode::FullModel, PruneInfo(), "full", Generator);
  ASSERT_TRUE(static_cast<bool>(FullBuilt)) << FullBuilt.message();

  PruneInfo Info;
  Info.Config = randomConfig(Spec);
  Graph Pruned;
  Result<BuildResult> PrunedBuilt =
      Model.build(Pruned, BuildMode::FineTune, Info, "net", Generator);
  ASSERT_TRUE(static_cast<bool>(PrunedBuilt)) << PrunedBuilt.message();

  Tensor Input(Shape{2, 3, Spec.InputHeight, Spec.InputWidth});
  for (size_t I = 0; I < Input.size(); ++I)
    Input[I] = Generator.nextGaussian();
  Full.setInput(Spec.InputName, Input);
  Full.forward(false);
  Pruned.setInput(Spec.InputName, Input);
  Pruned.forward(false);
  const int Classes = Spec.Layers.back().NumOutput;
  EXPECT_EQ(Full.activation(FullBuilt->LogitsNode).shape(),
            Shape({2, Classes}));
  EXPECT_EQ(Pruned.activation(PrunedBuilt->LogitsNode).shape(),
            Shape({2, Classes}));
  // The pruned model has fewer parameters whenever any module is pruned.
  bool AnyPruned = false;
  for (float Rate : Info.Config)
    AnyPruned = AnyPruned || Rate != 0.0f;
  if (AnyPruned)
    EXPECT_LT(Pruned.paramCount(), Full.paramCount());
}

TEST_P(RandomModelProperty, UnprunedTransferIsFunctionIdentity) {
  const ModelSpec Spec = makeModel();
  const MultiplexingModel Model(Spec);
  Rng Generator(GetParam() + 1000);

  Graph Full;
  Result<BuildResult> FullBuilt = Model.build(
      Full, BuildMode::FullModel, PruneInfo(), "full", Generator);
  ASSERT_TRUE(static_cast<bool>(FullBuilt));
  PruneInfo Info;
  Info.Config = unprunedConfig(Spec);
  Graph Copy;
  Result<BuildResult> CopyBuilt =
      Model.build(Copy, BuildMode::FineTune, Info, "net", Generator);
  ASSERT_TRUE(static_cast<bool>(CopyBuilt));
  transferWeights(Spec, FilterSelections(), Full, "full", Copy, "net");

  Tensor Input(Shape{1, 3, Spec.InputHeight, Spec.InputWidth});
  for (size_t I = 0; I < Input.size(); ++I)
    Input[I] = Generator.nextGaussian();
  Full.setInput(Spec.InputName, Input);
  Full.forward(false);
  Copy.setInput(Spec.InputName, Input);
  Copy.forward(false);
  const Tensor &A = Full.activation(FullBuilt->LogitsNode);
  const Tensor &B = Copy.activation(CopyBuilt->LogitsNode);
  ASSERT_EQ(A.shape(), B.shape());
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(A[I], B[I], 1e-5) << "logit " << I;
}

TEST_P(RandomModelProperty, PrunedTransferKeepsSelectedSlices) {
  const ModelSpec Spec = makeModel();
  const MultiplexingModel Model(Spec);
  Rng Generator(GetParam() + 2000);
  Graph Full;
  ASSERT_TRUE(static_cast<bool>(Model.build(
      Full, BuildMode::FullModel, PruneInfo(), "full", Generator)));

  const PruneConfig Config = randomConfig(Spec);
  const FilterSelections Selections =
      selectFiltersByL1(Spec, Config, Full, "full");
  PruneInfo Info;
  Info.Config = Config;
  Graph Pruned;
  ASSERT_TRUE(static_cast<bool>(
      Model.build(Pruned, BuildMode::FineTune, Info, "net", Generator)));
  transferWeights(Spec, Selections, Full, "full", Pruned, "net");
  // Forward must run; selections must be ascending subsets.
  Tensor Input(Shape{1, 3, Spec.InputHeight, Spec.InputWidth});
  Pruned.setInput(Spec.InputName, Input);
  Pruned.forward(false);
  for (const auto &[Name, Kept] : Selections) {
    ASSERT_FALSE(Kept.empty()) << Name;
    for (size_t I = 1; I < Kept.size(); ++I)
      ASSERT_LT(Kept[I - 1], Kept[I]) << Name;
  }
}

TEST_P(RandomModelProperty, PreTrainModeWiresEveryBlock) {
  const ModelSpec Spec = makeModel();
  const MultiplexingModel Model(Spec);
  Rng Generator(GetParam() + 3000);
  // One single-module block per module at a random pruned rate.
  PruneInfo Info;
  Rng RateGen(GetParam() + 4000);
  for (int M = 0; M < Spec.moduleCount(); ++M)
    Info.Blocks.push_back(TuningBlock{
        M, {RateGen.choice(std::vector<float>{0.3f, 0.5f, 0.7f})}});
  Graph Network;
  Result<BuildResult> Built = Model.build(Network, BuildMode::PreTrain,
                                          Info, "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  ASSERT_EQ(Built->Ports.size(), Info.Blocks.size());

  Tensor Input(Shape{1, 3, Spec.InputHeight, Spec.InputWidth});
  for (size_t I = 0; I < Input.size(); ++I)
    Input[I] = Generator.nextGaussian();
  Network.setInput(Spec.InputName, Input);
  Network.forward(true);
  for (const BlockPort &Port : Built->Ports)
    ASSERT_EQ(Network.activation(Port.StudentOut).shape(),
              Network.activation(Port.TeacherOut).shape())
        << Port.Block.id();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelProperty,
                         ::testing::Range(1, 17));

//===----------------------------------------------------------------------===//
// Conv2D gradient sweep across geometries
//===----------------------------------------------------------------------===//

class ConvGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvGeometrySweep, WeightGradientsMatchFiniteDifferences) {
  const auto [Kernel, Stride, Pad] = GetParam();
  if (Pad >= Kernel)
    GTEST_SKIP() << "padding must stay below the kernel size";
  Rng Generator(Kernel * 100 + Stride * 10 + Pad);
  Graph Network;
  Network.addInput("x");
  Network.addNode(
      "conv",
      std::make_unique<Conv2D>(ConvGeometry{2, 3, Kernel, Stride, Pad}),
      {"x"});
  Network.layer("conv").initParams(Generator);
  Tensor Input(Shape{2, 2, 7, 7});
  for (size_t I = 0; I < Input.size(); ++I)
    Input[I] = Generator.nextGaussian();

  auto loss = [&]() {
    Network.setInput("x", Input);
    Network.forward(true);
    const Tensor &Out = Network.activation("conv");
    double Total = 0.0;
    for (size_t I = 0; I < Out.size(); ++I)
      Total += 0.5 * static_cast<double>(Out[I]) * Out[I];
    return Total;
  };
  loss();
  Network.zeroGrads();
  const Tensor &Out = Network.activation("conv");
  Tensor Seed(Out.shape());
  for (size_t I = 0; I < Out.size(); ++I)
    Seed[I] = Out[I];
  Network.seedGradient("conv", Seed);
  Network.backward();

  Param &Weight = *Network.layer("conv").params()[0];
  std::vector<float> Analytic(Weight.Grad.data(),
                              Weight.Grad.data() + Weight.Grad.size());
  const size_t Stride2 = std::max<size_t>(1, Weight.Value.size() / 23);
  for (size_t I = 0; I < Weight.Value.size(); I += Stride2) {
    const float Saved = Weight.Value[I];
    const float Eps = 1e-3f;
    Weight.Value[I] = Saved + Eps;
    const double Plus = loss();
    Weight.Value[I] = Saved - Eps;
    const double Minus = loss();
    Weight.Value[I] = Saved;
    const double Numeric = (Plus - Minus) / (2.0 * Eps);
    EXPECT_NEAR(Analytic[I], Numeric, 2e-2 * (1.0 + std::fabs(Numeric)))
        << "k" << Kernel << " s" << Stride << " p" << Pad << " at " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGeometrySweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Values(0, 1, 2)));

} // namespace
