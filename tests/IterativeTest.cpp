//===- tests/IterativeTest.cpp - explore/Iterative tests --------------------------===//

#include "src/data/Synthetic.h"
#include "src/explore/Iterative.h"
#include "src/models/MiniModels.h"

#include <gtest/gtest.h>

using namespace wootz;

namespace {

class IterativeFixture : public ::testing::Test {
protected:
  void SetUp() override {
    SyntheticSpec DataSpec;
    DataSpec.Classes = 4;
    DataSpec.TrainPerClass = 20;
    DataSpec.TestPerClass = 10;
    DataSpec.Noise = 0.4f;
    DataSpec.Seed = 123;
    Data = generateSynthetic(DataSpec);
    Result<ModelSpec> Parsed = makeStandardModel(StandardModel::ResNetA, 4);
    ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
    Spec = Parsed.take();

    Meta.FullModelSteps = 120;
    Meta.PretrainSteps = 20;
    Meta.FinetuneSteps = 20;
    Meta.EvalEvery = 10;
  }

  Dataset Data;
  ModelSpec Spec;
  TrainMeta Meta;
};

TEST_F(IterativeFixture, RejectsBadRateAlphabets) {
  IterativeOptions Options;
  Rng Generator(1);
  Options.Rates = {0.3f, 0.5f}; // Missing the leading 0.
  EXPECT_FALSE(static_cast<bool>(
      runIterativeExploration(Spec, Data, Meta, Options, Generator)));
  Options.Rates = {0.0f, 0.5f, 0.3f}; // Not ascending.
  EXPECT_FALSE(static_cast<bool>(
      runIterativeExploration(Spec, Data, Meta, Options, Generator)));
  Options.Rates = {0.0f}; // No pruned rate.
  EXPECT_FALSE(static_cast<bool>(
      runIterativeExploration(Spec, Data, Meta, Options, Generator)));
}

TEST_F(IterativeFixture, GreedySearchShrinksTheModel) {
  IterativeOptions Options;
  Options.Rates = {0.0f, 0.5f};
  Options.MaxIterations = 3;
  Options.AccuracyThreshold = 0.0; // Accept everything: 3 commits.
  Rng Generator(2);
  Result<IterativeResult> Run =
      runIterativeExploration(Spec, Data, Meta, Options, Generator);
  ASSERT_TRUE(static_cast<bool>(Run)) << Run.message();
  ASSERT_EQ(Run->Trajectory.size(), 3u);
  // Weight counts shrink monotonically along the trajectory.
  size_t Previous = Run->FullWeightCount;
  for (const IterativeStep &Step : Run->Trajectory) {
    EXPECT_LT(Step.WeightCount, Previous);
    Previous = Step.WeightCount;
  }
  EXPECT_EQ(Run->BestWeightCount, Previous);
  // Each committed step bumps exactly one module.
  EXPECT_EQ(Run->Trajectory[0].Rate, 0.5f);
}

TEST_F(IterativeFixture, BlockReuseGrowsAcrossIterations) {
  IterativeOptions Options;
  Options.Rates = {0.0f, 0.5f};
  Options.MaxIterations = 3;
  Options.AccuracyThreshold = 0.0;
  Rng Generator(3);
  Result<IterativeResult> Run =
      runIterativeExploration(Spec, Data, Meta, Options, Generator);
  ASSERT_TRUE(static_cast<bool>(Run)) << Run.message();
  // Only one block per (module, rate) pair ever trains; every other
  // appearance is a cache hit — the harvested reuse.
  EXPECT_LE(Run->TotalBlocksTrained,
            Spec.moduleCount()); // 4 variants at rate 0.5.
  EXPECT_GT(Run->TotalBlockReuses, 0);
  // Iteration 1's candidates each train their own fresh block; by
  // iteration 2 the committed module's block is a guaranteed reuse.
  EXPECT_GT(Run->Trajectory[1].BlocksReused,
            Run->Trajectory[0].BlocksReused);
}

TEST_F(IterativeFixture, UnreachableThresholdStopsImmediately) {
  IterativeOptions Options;
  Options.Rates = {0.0f, 0.7f};
  Options.MaxIterations = 4;
  Options.AccuracyThreshold = 1.1; // Impossible.
  Rng Generator(4);
  Result<IterativeResult> Run =
      runIterativeExploration(Spec, Data, Meta, Options, Generator);
  ASSERT_TRUE(static_cast<bool>(Run)) << Run.message();
  EXPECT_TRUE(Run->Trajectory.empty());
  EXPECT_EQ(Run->BestConfig, unprunedConfig(Spec));
  EXPECT_EQ(Run->BestWeightCount, Run->FullWeightCount);
}

TEST_F(IterativeFixture, StopsAtRateAlphabetCeiling) {
  IterativeOptions Options;
  Options.Rates = {0.0f, 0.7f};
  Options.MaxIterations = 100; // More than modules * bumps available.
  Options.AccuracyThreshold = 0.0;
  Rng Generator(5);
  Result<IterativeResult> Run =
      runIterativeExploration(Spec, Data, Meta, Options, Generator);
  ASSERT_TRUE(static_cast<bool>(Run)) << Run.message();
  // Every module can be bumped exactly once.
  EXPECT_EQ(Run->Trajectory.size(),
            static_cast<size_t>(Spec.moduleCount()));
  for (float Rate : Run->BestConfig)
    EXPECT_FLOAT_EQ(Rate, 0.7f);
}

} // namespace
