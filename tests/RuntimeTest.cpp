//===- tests/RuntimeTest.cpp - TaskGraph scheduler and RunLog tests ---------===//
//
// Covers the runtime subsystem in isolation: dependency ordering,
// priorities, futures, cancellation cascades, fail-fast, multi-worker
// execution, and the telemetry/JSONL layer.
//
//===----------------------------------------------------------------------===//

#include "src/runtime/TaskGraph.h"

#include "src/support/File.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

using namespace wootz;

namespace {

Error ok() { return Error::success(); }

TEST(TaskGraphTest, InlineRunRespectsDependencies) {
  TaskGraph Graph;
  std::vector<std::string> Order;
  const TaskId A = Graph.add("task:a", {}, 0, [&] {
    Order.push_back("a");
    return ok();
  });
  const TaskId B = Graph.add("task:b", {A}, 100, [&] {
    Order.push_back("b");
    return ok();
  });
  Graph.add("task:c", {A, B}, 100, [&] {
    Order.push_back("c");
    return ok();
  });
  Error E = Graph.run(0);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], "a");
  EXPECT_EQ(Order[1], "b");
  EXPECT_EQ(Order[2], "c");
  EXPECT_EQ(Graph.state(A), TaskState::Done);
  EXPECT_EQ(Graph.taskCount(), 3u);
  EXPECT_EQ(Graph.cancelledCount(), 0u);
}

TEST(TaskGraphTest, InlineRunFollowsPriorities) {
  TaskGraph Graph;
  std::vector<int> Order;
  for (int Priority : {1, 5, 3, 5})
    Graph.add("task:p" + std::to_string(Priority), {}, Priority, [&, Priority] {
      Order.push_back(Priority);
      return ok();
    });
  Error E = Graph.run(0);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  // Highest priority first; insertion order breaks the 5-5 tie.
  EXPECT_EQ(Order, (std::vector<int>{5, 5, 3, 1}));
}

TEST(TaskGraphTest, TaskSlotCarriesProducedValues) {
  TaskGraph Graph;
  TaskSlot<int> Lhs, Rhs, Sum;
  const TaskId A = Graph.addProducing<int>(
      "produce:a", {}, 0, [] { return Result<int>(20); }, Lhs);
  const TaskId B = Graph.addProducing<int>(
      "produce:b", {}, 0, [] { return Result<int>(22); }, Rhs);
  Graph.addProducing<int>(
      "produce:sum", {A, B}, 0,
      [&] { return Result<int>(Lhs.get() + Rhs.get()); }, Sum);
  Error E = Graph.run(0);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  ASSERT_TRUE(Sum.ready());
  EXPECT_EQ(Sum.get(), 42);
  EXPECT_EQ(Sum.take(), 42);
  EXPECT_FALSE(Sum.ready());
}

TEST(TaskGraphTest, CancellationCascadesToDependents) {
  TaskGraph Graph;
  int Ran = 0;
  const TaskId A = Graph.add("task:a", {}, 0, [&] {
    ++Ran;
    return ok();
  });
  const TaskId B = Graph.add("task:b", {A}, 0, [&] {
    ++Ran;
    return ok();
  });
  const TaskId C = Graph.add("task:c", {B}, 0, [&] {
    ++Ran;
    return ok();
  });
  const TaskId D = Graph.add("task:d", {}, 0, [&] {
    ++Ran;
    return ok();
  });
  EXPECT_TRUE(Graph.cancel(A));
  EXPECT_FALSE(Graph.cancel(A)); // Already cancelled.
  Error E = Graph.run(0);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(Ran, 1); // Only D.
  EXPECT_EQ(Graph.state(A), TaskState::Cancelled);
  EXPECT_EQ(Graph.state(B), TaskState::Cancelled);
  EXPECT_EQ(Graph.state(C), TaskState::Cancelled);
  EXPECT_EQ(Graph.state(D), TaskState::Done);
  EXPECT_EQ(Graph.cancelledCount(), 3u);
}

TEST(TaskGraphTest, CancelFromInsideARunningTask) {
  TaskGraph Graph;
  int Ran = 0;
  // Low-priority victim: scheduled after the canceller on the inline
  // runner, so the cancel lands while it is still Ready.
  TaskId Victim = 0;
  Graph.add("task:canceller", {}, 10, [&] {
    ++Ran;
    EXPECT_TRUE(Graph.cancel(Victim));
    return ok();
  });
  Victim = Graph.add("task:victim", {}, 0, [&] {
    ++Ran;
    return ok();
  });
  Error E = Graph.run(0);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(Ran, 1);
  EXPECT_EQ(Graph.state(Victim), TaskState::Cancelled);
}

TEST(TaskGraphTest, FailureFailsFastAndCancelsTheRest) {
  TaskGraph Graph;
  int Ran = 0;
  const TaskId A = Graph.add("task:a", {}, 10, [&] {
    ++Ran;
    return Error::failure("task a exploded");
  });
  const TaskId B = Graph.add("task:b", {A}, 0, [&] {
    ++Ran;
    return ok();
  });
  const TaskId C = Graph.add("task:c", {}, 0, [&] {
    ++Ran;
    return ok();
  });
  Error E = Graph.run(0);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("task a exploded"), std::string::npos);
  EXPECT_EQ(Ran, 1);
  EXPECT_EQ(Graph.state(A), TaskState::Failed);
  EXPECT_EQ(Graph.state(B), TaskState::Cancelled);
  EXPECT_EQ(Graph.state(C), TaskState::Cancelled);
}

TEST(TaskGraphTest, MultiWorkerRunExecutesEveryTaskOnce) {
  RunLog Log;
  TaskGraph Graph(&Log);
  std::atomic<int> Sum{0};
  // A layered graph: 4 roots, each with a chain of 3 dependents.
  for (int Root = 0; Root < 4; ++Root) {
    TaskId Prev = Graph.add("root:" + std::to_string(Root), {}, 0, [&] {
      Sum += 1;
      return ok();
    });
    for (int Link = 0; Link < 3; ++Link)
      Prev = Graph.add("link:" + std::to_string(Root) + "." +
                           std::to_string(Link),
                       {Prev}, Link, [&] {
                         Sum += 10;
                         return ok();
                       });
  }
  Error E = Graph.run(3);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ(Sum.load(), 4 * 1 + 12 * 10);
  const RunTelemetry Telemetry = Log.snapshot();
  EXPECT_EQ(Telemetry.Spans.size(), 16u);
  EXPECT_EQ(Telemetry.counter("tasks_done"), 16);
  EXPECT_EQ(Telemetry.counter("tasks_cancelled"), 0);
  for (const SpanEvent &Span : Telemetry.Spans) {
    EXPECT_EQ(Span.Status, "done");
    EXPECT_GE(Span.queueSeconds(), 0.0) << Span.Name;
    EXPECT_GE(Span.runSeconds(), 0.0) << Span.Name;
    EXPECT_GE(Span.Worker, 0) << Span.Name;
    EXPECT_LT(Span.Worker, 3) << Span.Name;
  }
}

TEST(TaskGraphTest, MultiWorkerFailurePropagates) {
  TaskGraph Graph;
  for (int I = 0; I < 6; ++I)
    Graph.add("task:" + std::to_string(I), {}, 0, [I] {
      if (I == 2)
        return Error::failure("boom");
      return ok();
    });
  Error E = Graph.run(2);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("boom"), std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===//
// RunLog and telemetry
//===----------------------------------------------------------------------===//

namespace {

SpanEvent makeSpan(const std::string &Name, double Ready, double Start,
                   double End, const std::string &Status = "done") {
  SpanEvent Span;
  Span.Name = Name;
  Span.Kind = spanKindFromName(Name);
  Span.ReadyAt = Ready;
  Span.StartAt = Start;
  Span.EndAt = End;
  Span.Status = Status;
  return Span;
}

TEST(RunLogTest, SpanKindComesFromTheNamePrefix) {
  EXPECT_EQ(spanKindFromName("eval:3"), "eval");
  EXPECT_EQ(spanKindFromName("pretrain:g0"), "pretrain");
  EXPECT_EQ(spanKindFromName("no-colon"), "task");
  EXPECT_EQ(spanKindFromName(":odd"), "task");
}

TEST(RunLogTest, TelemetryAggregatesSkipCancelledSpans) {
  RunTelemetry Telemetry;
  Telemetry.Spans.push_back(makeSpan("pretrain:g0", 0.0, 0.0, 2.0));
  Telemetry.Spans.push_back(makeSpan("pretrain:g1", 0.0, 2.0, 5.0));
  Telemetry.Spans.push_back(makeSpan("eval:0", 2.0, 3.0, 4.0));
  Telemetry.Spans.push_back(makeSpan("eval:1", 4.0, 4.0, 4.0, "cancelled"));
  EXPECT_DOUBLE_EQ(Telemetry.makespan(), 5.0);
  EXPECT_DOUBLE_EQ(Telemetry.busySeconds("pretrain"), 5.0);
  EXPECT_DOUBLE_EQ(Telemetry.busySeconds("eval"), 1.0);
  EXPECT_DOUBLE_EQ(Telemetry.firstStart("eval"), 3.0);
  EXPECT_DOUBLE_EQ(Telemetry.lastEnd("pretrain"), 5.0);
  // The overlap witness: an eval started before the last pretrain ended.
  EXPECT_LT(Telemetry.firstStart("eval"), Telemetry.lastEnd("pretrain"));
}

TEST(RunLogTest, JsonlHasOneLinePerSpanPlusCounters) {
  RunLog Log;
  Log.record(makeSpan("eval:0", 0.0, 0.5, 1.5));
  Log.record(makeSpan("pretrain:g0", 0.0, 0.0, 2.0));
  Log.bump("tasks_done", 2);
  Log.bump("tasks_cancelled");

  const std::string Jsonl = Log.jsonl();
  std::istringstream Stream(Jsonl);
  std::string Line;
  std::vector<std::string> Lines;
  while (std::getline(Stream, Line))
    Lines.push_back(Line);
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_NE(Lines[0].find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(Lines[0].find("\"name\":\"eval:0\""), std::string::npos);
  EXPECT_NE(Lines[0].find("\"kind\":\"eval\""), std::string::npos);
  EXPECT_NE(Lines[0].find("\"queue_seconds\":0.5"), std::string::npos);
  EXPECT_NE(Lines[0].find("\"run_seconds\":1"), std::string::npos);
  EXPECT_NE(Lines[1].find("\"kind\":\"pretrain\""), std::string::npos);
  EXPECT_NE(Lines[2].find("\"type\":\"counters\""), std::string::npos);
  EXPECT_NE(Lines[2].find("\"tasks_done\":2"), std::string::npos);
  EXPECT_NE(Lines[2].find("\"tasks_cancelled\":1"), std::string::npos);
}

TEST(RunLogTest, WriteJsonlRoundTripsThroughAFile) {
  RunLog Log;
  Log.record(makeSpan("eval:0", 0.0, 0.0, 1.0));
  const std::string Path =
      ::testing::TempDir() + "wootz_runlog_test.jsonl";
  Error E = Log.writeJsonl(Path);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Contents;
  Contents << In.rdbuf();
  EXPECT_EQ(Contents.str(), Log.jsonl());
  std::remove(Path.c_str());
}

TEST(RunLogTest, GraphRecordsCancelledSpans) {
  RunLog Log;
  TaskGraph Graph(&Log);
  const TaskId A = Graph.add("task:a", {}, 0, [] { return ok(); });
  Graph.add("task:b", {A}, 0, [] { return ok(); });
  Graph.cancel(A);
  Error E = Graph.run(0);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  const RunTelemetry Telemetry = Log.snapshot();
  ASSERT_EQ(Telemetry.Spans.size(), 2u);
  for (const SpanEvent &Span : Telemetry.Spans) {
    EXPECT_EQ(Span.Status, "cancelled");
    EXPECT_DOUBLE_EQ(Span.runSeconds(), 0.0);
  }
  EXPECT_EQ(Telemetry.counter("tasks_cancelled"), 2);
}

TEST(RunLogTest, CountersReturnsAConsistentCopyUnderConcurrentBumps) {
  // counters() is the live-observer read path (the serve /metrics
  // endpoint samples running jobs through it); it must return a
  // self-consistent copy while writers are still bumping — no torn
  // reads, no crashes, and a final tally equal to the writes.
  RunLog Log;
  constexpr int Writers = 4;
  constexpr int BumpsPerWriter = 2000;
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Threads;
  for (int W = 0; W < Writers; ++W)
    Threads.emplace_back([&Log, W] {
      for (int I = 0; I < BumpsPerWriter; ++I) {
        Log.bump("shared");
        Log.bump("writer." + std::to_string(W));
      }
    });
  std::thread Reader([&] {
    while (!Stop.load()) {
      const std::map<std::string, int64_t> Copy = Log.counters();
      // A copy never goes backwards relative to itself: every
      // per-writer counter it contains is within the writer's range.
      for (const auto &[Name, Value] : Copy) {
        EXPECT_GE(Value, 0);
        EXPECT_LE(Value, static_cast<int64_t>(Writers) * BumpsPerWriter);
      }
    }
  });
  for (std::thread &T : Threads)
    T.join();
  Stop.store(true);
  Reader.join();

  const std::map<std::string, int64_t> Final = Log.counters();
  EXPECT_EQ(Final.at("shared"),
            static_cast<int64_t>(Writers) * BumpsPerWriter);
  for (int W = 0; W < Writers; ++W)
    EXPECT_EQ(Final.at("writer." + std::to_string(W)), BumpsPerWriter);
  // And the copy is detached from the log: mutating it doesn't change
  // what the log reports next.
  std::map<std::string, int64_t> Detached = Log.counters();
  Detached["shared"] = -1;
  EXPECT_EQ(Log.counters().at("shared"),
            static_cast<int64_t>(Writers) * BumpsPerWriter);
}

} // namespace
