//===- tests/SupportTest.cpp - support/ unit tests -----------------------------===//

#include "src/support/Error.h"
#include "src/support/Json.h"
#include "src/support/Rng.h"
#include "src/support/StringUtils.h"
#include "src/support/Table.h"
#include "src/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

using namespace wootz;

namespace {

//===----------------------------------------------------------------------===//
// Error / Result
//===----------------------------------------------------------------------===//

TEST(ErrorTest, SuccessIsFalsy) {
  Error E = Error::success();
  EXPECT_FALSE(static_cast<bool>(E));
}

TEST(ErrorTest, FailureCarriesMessage) {
  Error E = Error::failure("file not found");
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "file not found");
}

TEST(ErrorTest, MoveTransfersObligation) {
  Error E = Error::failure("boom");
  Error Moved = std::move(E);
  EXPECT_TRUE(static_cast<bool>(Moved));
}

static Result<int> parsePositive(int Value) {
  if (Value <= 0)
    return Error::failure("not positive");
  return Value;
}

TEST(ResultTest, SuccessHoldsValue) {
  Result<int> R = parsePositive(3);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(*R, 3);
  EXPECT_EQ(R.take(), 3);
}

TEST(ResultTest, FailureHoldsError) {
  Result<int> R = parsePositive(-1);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.message(), "not positive");
  Error E = R.takeError();
  EXPECT_TRUE(static_cast<bool>(E));
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> R(std::make_unique<int>(7));
  ASSERT_TRUE(static_cast<bool>(R));
  std::unique_ptr<int> Owned = R.take();
  EXPECT_EQ(*Owned, 7);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Equal = 0;
  for (int I = 0; I < 64; ++I)
    Equal += A.next() == B.next();
  EXPECT_LT(Equal, 4);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng Generator(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Generator.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng Generator(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(Generator.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng Generator(9);
  std::set<int64_t> Seen;
  for (int I = 0; I < 400; ++I) {
    const int64_t Value = Generator.nextInRange(-2, 2);
    EXPECT_GE(Value, -2);
    EXPECT_LE(Value, 2);
    Seen.insert(Value);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, FloatInUnitInterval) {
  Rng Generator(11);
  for (int I = 0; I < 1000; ++I) {
    const float Value = Generator.nextFloat();
    EXPECT_GE(Value, 0.0f);
    EXPECT_LT(Value, 1.0f);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng Generator(13);
  double Sum = 0.0, SumSq = 0.0;
  const int Count = 20000;
  for (int I = 0; I < Count; ++I) {
    const double Value = Generator.nextGaussian();
    Sum += Value;
    SumSq += Value * Value;
  }
  const double Mean = Sum / Count;
  const double Var = SumSq / Count - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng Generator(17);
  std::vector<int> Values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Shuffled = Values;
  Generator.shuffle(Shuffled);
  std::sort(Shuffled.begin(), Shuffled.end());
  EXPECT_EQ(Shuffled, Values);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng Parent(3);
  Rng Child = Parent.fork();
  EXPECT_NE(Parent.next(), Child.next());
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtilsTest, SplitKeepsEmptyPieces) {
  const std::vector<std::string> Pieces = split("a,,b", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[1], "");
}

TEST(StringUtilsTest, SplitLinesHandlesCrLf) {
  const std::vector<std::string> Lines = splitLines("a\r\nb\nc");
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_EQ(Lines[0], "a");
  EXPECT_EQ(Lines[1], "b");
}

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(startsWith("wootz.cpp", "wootz"));
  EXPECT_FALSE(startsWith("wo", "wootz"));
  EXPECT_TRUE(endsWith("wootz.cpp", ".cpp"));
  EXPECT_FALSE(endsWith("cpp", ".cpp"));
}

TEST(StringUtilsTest, ParseIntegerAcceptsSignedValues) {
  ASSERT_TRUE(static_cast<bool>(parseInteger(" -42 ")));
  EXPECT_EQ(*parseInteger("-42"), -42);
  EXPECT_FALSE(static_cast<bool>(parseInteger("12x")));
  EXPECT_FALSE(static_cast<bool>(parseInteger("")));
}

TEST(StringUtilsTest, ParseDoubleAcceptsScientific) {
  ASSERT_TRUE(static_cast<bool>(parseDouble("1e-3")));
  EXPECT_DOUBLE_EQ(*parseDouble("1e-3"), 1e-3);
  EXPECT_FALSE(static_cast<bool>(parseDouble("0.5.3")));
}

TEST(StringUtilsTest, JoinAndFormat) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(formatDouble(0.5, 2), "0.50");
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, AlignsColumns) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  const std::string Rendered = T.render();
  EXPECT_NE(Rendered.find("| name   | value |"), std::string::npos);
  EXPECT_NE(Rendered.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(T.rowCount(), 2u);
}

TEST(TableTest, SeparatorsDontCountAsRows) {
  Table T({"a"});
  T.addRow({"1"});
  T.addSeparator();
  T.addRow({"2"});
  EXPECT_EQ(T.rowCount(), 2u);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, InlinePoolRunsImmediately) {
  ThreadPool Pool(0);
  int Value = 0;
  Pool.enqueue([&] { Value = 42; });
  EXPECT_EQ(Value, 42);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool Pool(3);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.enqueue([&] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool Pool(2);
  std::vector<std::atomic<int>> Hits(50);
  Pool.parallelFor(50, [&](size_t I) { ++Hits[I]; });
  for (const auto &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelForWithZeroCountIsANoOp) {
  ThreadPool Pool(2);
  int Calls = 0;
  Pool.parallelFor(0, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  // The pool must still be usable afterwards.
  Pool.parallelFor(3, [&](size_t) { ++Calls; });
  Pool.wait();
  EXPECT_EQ(Calls, 3);
}

TEST(ThreadPoolTest, InlinePoolParallelForCoversRangeInOrder) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 0u);
  std::vector<size_t> Seen;
  Pool.parallelFor(5, [&](size_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<size_t>{0, 1, 2, 3, 4}));
  Pool.wait(); // wait() on an inline pool is a harmless no-op.
}

TEST(ThreadPoolTest, ChunkedParallelForCoversRangeDisjointly) {
  // Odd Count/Grain combinations, threaded and inline pools. Every index
  // must be hit exactly once, chunks must respect the grain, and the
  // dispatch must be per-chunk (ceil(Count/Grain) invocations), not
  // per-index.
  for (size_t Threads : {0u, 4u}) {
    ThreadPool Pool(Threads);
    for (auto [Count, Grain] : std::initializer_list<std::pair<size_t, size_t>>{
             {0, 3}, {1, 3}, {7, 3}, {9, 3}, {10, 1}, {5, 8}, {64, 16}}) {
      std::vector<std::atomic<int>> Hits(Count);
      std::atomic<size_t> Invocations{0};
      Pool.parallelFor(Count, Grain, [&](size_t Begin, size_t End) {
        ++Invocations;
        ASSERT_LT(Begin, End);
        ASSERT_LE(End, Count);
        ASSERT_LE(End - Begin, Grain);
        for (size_t I = Begin; I < End; ++I)
          ++Hits[I];
      });
      const size_t ExpectedChunks = (Count + Grain - 1) / Grain;
      EXPECT_EQ(Invocations.load(), ExpectedChunks)
          << "Threads=" << Threads << " Count=" << Count
          << " Grain=" << Grain;
      for (size_t I = 0; I < Count; ++I)
        EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
    }
  }
}

TEST(ThreadPoolTest, ChunkedParallelForZeroGrainBehavesAsGrainOne) {
  ThreadPool Pool(2);
  std::atomic<size_t> Invocations{0};
  std::atomic<size_t> Covered{0};
  Pool.parallelFor(6, 0, [&](size_t Begin, size_t End) {
    ++Invocations;
    Covered += End - Begin;
  });
  EXPECT_EQ(Invocations.load(), 6u);
  EXPECT_EQ(Covered.load(), 6u);
}

TEST(ThreadPoolTest, ChunkedParallelForInlineRunsInChunkOrder) {
  // The inline path must walk the exact same chunk decomposition as the
  // threaded one so per-chunk reductions are bit-identical either way.
  ThreadPool Pool(0);
  std::vector<std::pair<size_t, size_t>> Chunks;
  Pool.parallelFor(10, 4, [&](size_t Begin, size_t End) {
    Chunks.emplace_back(Begin, End);
  });
  EXPECT_EQ(Chunks, (std::vector<std::pair<size_t, size_t>>{
                        {0, 4}, {4, 8}, {8, 10}}));
}

TEST(ThreadPoolTest, TasksMayEnqueueMoreWork) {
  // A task enqueued from inside a running task must complete before
  // wait() returns (and before the destructor tears the pool down) —
  // the destructor drains the queue before signalling shutdown.
  std::atomic<int> Counter{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 8; ++I)
      Pool.enqueue([&, I] {
        ++Counter;
        if (I % 2 == 0)
          Pool.enqueue([&] { ++Counter; });
      });
    Pool.wait();
    EXPECT_EQ(Counter.load(), 12);
  }
  EXPECT_EQ(Counter.load(), 12);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  // Destroying the pool with work still queued must run every task, not
  // drop the tail of the queue: shutdown begins only once idle.
  std::atomic<int> Counter{0};
  {
    ThreadPool Pool(3);
    for (int I = 0; I < 64; ++I)
      Pool.enqueue([&] { ++Counter; });
    // No wait(): the destructor is responsible for the drain.
  }
  EXPECT_EQ(Counter.load(), 64);
}

TEST(ThreadPoolTest, RepeatedWaitCyclesAreStable) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  for (int Round = 0; Round < 20; ++Round) {
    for (int I = 0; I < 10; ++I)
      Pool.enqueue([&] { ++Counter; });
    Pool.wait();
    EXPECT_EQ(Counter.load(), (Round + 1) * 10);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// File I/O (appended tests)
//===----------------------------------------------------------------------===//

#include "src/support/File.h"

#include <filesystem>

namespace {

TEST(FileTest, RoundTripThroughNestedDirectories) {
  const std::string Dir =
      (std::filesystem::temp_directory_path() / "wootz_file_test").string();
  std::filesystem::remove_all(Dir);
  const std::string Path = Dir + "/a/b/contents.txt";
  const std::string Payload = "line1\nline2\0embedded";
  wootz::Error E = wootz::writeFile(Path, Payload);
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();
  wootz::Result<std::string> Read = wootz::readFile(Path);
  ASSERT_TRUE(static_cast<bool>(Read)) << Read.message();
  EXPECT_EQ(*Read, Payload);
  std::filesystem::remove_all(Dir);
}

TEST(FileTest, MissingFileErrors) {
  EXPECT_FALSE(
      static_cast<bool>(wootz::readFile("/nonexistent/wootz/file")));
}

TEST(FileTest, OverwriteTruncates) {
  const std::string Path =
      (std::filesystem::temp_directory_path() / "wootz_file_trunc.txt")
          .string();
  ASSERT_FALSE(static_cast<bool>(wootz::writeFile(Path, "long content")));
  ASSERT_FALSE(static_cast<bool>(wootz::writeFile(Path, "x")));
  EXPECT_EQ(*wootz::readFile(Path), "x");
  std::filesystem::remove(Path);
}

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(JsonTest, WriterRoundTripsThroughTheParser) {
  JsonObject Row;
  Row.field("name", "job-1")
      .field("seconds", 1.5, 3)
      .field("count", int64_t(42))
      .field("ok", true);
  Result<std::map<std::string, std::string>> Parsed =
      parseFlatJsonObject(Row.str());
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->at("name"), "job-1");
  EXPECT_EQ(Parsed->at("seconds"), "1.500");
  EXPECT_EQ(Parsed->at("count"), "42");
  EXPECT_EQ(Parsed->at("ok"), "true");
}

TEST(JsonTest, WriterEscapesControlCharactersAndQuotes) {
  JsonObject Row;
  Row.field("text", std::string("a\"b\\c\nd\te\x01") + "f");
  const std::string Text = Row.str();
  // Nothing below 0x20 survives unescaped; the specific escapes are the
  // two-character forms for the common cases and \u00XX otherwise.
  for (char C : Text)
    EXPECT_GE(static_cast<unsigned char>(C), 0x20u);
  EXPECT_NE(Text.find("\\\""), std::string::npos);
  EXPECT_NE(Text.find("\\\\"), std::string::npos);
  EXPECT_NE(Text.find("\\n"), std::string::npos);
  EXPECT_NE(Text.find("\\t"), std::string::npos);
  EXPECT_NE(Text.find("\\u0001"), std::string::npos);
  // And the escaped form parses back to the original bytes.
  Result<std::map<std::string, std::string>> Parsed =
      parseFlatJsonObject(Text);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->at("text"), std::string("a\"b\\c\nd\te\x01") + "f");
}

TEST(JsonTest, ParserRejectsTrailingGarbage) {
  Result<std::map<std::string, std::string>> Full =
      parseFlatJsonObject("{\"a\":\"b\"} extra");
  EXPECT_FALSE(static_cast<bool>(Full));
  EXPECT_NE(Full.message().find("trailing"), std::string::npos);

  // Same rule for the empty object.
  Result<std::map<std::string, std::string>> Empty =
      parseFlatJsonObject("{} {}");
  EXPECT_FALSE(static_cast<bool>(Empty));
  EXPECT_NE(Empty.message().find("trailing"), std::string::npos);

  // But surrounding whitespace is fine.
  EXPECT_TRUE(
      static_cast<bool>(parseFlatJsonObject("  {\"a\":\"b\"}  \n")));
}

TEST(JsonTest, ParserRejectsRawControlCharactersInStrings) {
  Result<std::map<std::string, std::string>> Newline =
      parseFlatJsonObject("{\"a\":\"line1\nline2\"}");
  EXPECT_FALSE(static_cast<bool>(Newline));
  // The escaped spelling of the same value is accepted.
  Result<std::map<std::string, std::string>> Escaped =
      parseFlatJsonObject("{\"a\":\"line1\\nline2\"}");
  ASSERT_TRUE(static_cast<bool>(Escaped)) << Escaped.message();
  EXPECT_EQ(Escaped->at("a"), "line1\nline2");
}

TEST(JsonTest, ParserRejectsDuplicateKeysAndNesting) {
  Result<std::map<std::string, std::string>> Duplicate =
      parseFlatJsonObject("{\"a\":1,\"a\":2}");
  EXPECT_FALSE(static_cast<bool>(Duplicate));
  EXPECT_NE(Duplicate.message().find("duplicate"), std::string::npos);

  Result<std::map<std::string, std::string>> Nested =
      parseFlatJsonObject("{\"a\":{\"b\":1}}");
  EXPECT_FALSE(static_cast<bool>(Nested));
  EXPECT_NE(Nested.message().find("nested"), std::string::npos);

  Result<std::map<std::string, std::string>> Array =
      parseFlatJsonObject("{\"a\":[1,2]}");
  EXPECT_FALSE(static_cast<bool>(Array));
}

TEST(JsonTest, ParserRejectsStructuralDamage) {
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("")));
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("not json")));
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("{\"a\":\"b\"")));
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("{\"a\"}")));
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("{\"a\":}")));
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("{a:1}")));
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("{\"a\":\"b")));
  EXPECT_FALSE(
      static_cast<bool>(parseFlatJsonObject("{\"a\":\"\\u12\"}")));
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("{\"a\":\"\\x\"}")));
}

//===----------------------------------------------------------------------===//
// Numeric parsing hardening (appended tests)
//===----------------------------------------------------------------------===//

// The parsers moved from strtoll/strtod (locale-sensitive, permissive)
// to std::from_chars; these pin the exact acceptance set.
TEST(StringUtilsTest, ParseIntegerIsLocaleIndependentAndStrict) {
  EXPECT_EQ(*parseInteger("+42"), 42);
  EXPECT_EQ(*parseInteger("0"), 0);
  EXPECT_FALSE(static_cast<bool>(parseInteger("1,000")));
  EXPECT_FALSE(static_cast<bool>(parseInteger("0x10")));
  EXPECT_FALSE(static_cast<bool>(parseInteger("++1")));
  EXPECT_FALSE(static_cast<bool>(parseInteger("+-1")));
  EXPECT_FALSE(static_cast<bool>(parseInteger("+")));
  EXPECT_FALSE(static_cast<bool>(parseInteger("1e3")));
  Result<long long> Overflow = parseInteger("99999999999999999999");
  ASSERT_FALSE(static_cast<bool>(Overflow));
  EXPECT_NE(Overflow.message().find("range"), std::string::npos)
      << Overflow.message();
}

TEST(StringUtilsTest, ParseDoubleIsLocaleIndependentAndStrict) {
  EXPECT_DOUBLE_EQ(*parseDouble("+0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*parseDouble("-1.25e2"), -125.0);
  EXPECT_FALSE(static_cast<bool>(parseDouble("1,5")));
  EXPECT_FALSE(static_cast<bool>(parseDouble("+-1.0")));
  EXPECT_FALSE(static_cast<bool>(parseDouble("1e999")));
  EXPECT_FALSE(static_cast<bool>(parseDouble("")));
}

//===----------------------------------------------------------------------===//
// Base64 (appended tests)
//===----------------------------------------------------------------------===//

TEST(Base64Test, EncodesRfc4648Vectors) {
  EXPECT_EQ(base64Encode(""), "");
  EXPECT_EQ(base64Encode("f"), "Zg==");
  EXPECT_EQ(base64Encode("fo"), "Zm8=");
  EXPECT_EQ(base64Encode("foo"), "Zm9v");
  EXPECT_EQ(base64Encode("foob"), "Zm9vYg==");
  EXPECT_EQ(base64Encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(base64Encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, RoundTripsEveryByteValue) {
  std::string Bytes;
  for (int Value = 0; Value < 256; ++Value)
    Bytes.push_back(static_cast<char>(Value));
  // Every residue mod 3, so every padding shape is exercised.
  for (size_t Length : {256u, 255u, 254u}) {
    const std::string Input = Bytes.substr(0, Length);
    Result<std::string> Decoded = base64Decode(base64Encode(Input));
    ASSERT_TRUE(static_cast<bool>(Decoded)) << Decoded.message();
    EXPECT_EQ(*Decoded, Input);
  }
}

TEST(Base64Test, RejectsMalformedText) {
  EXPECT_FALSE(static_cast<bool>(base64Decode("abc")));      // Length.
  EXPECT_FALSE(static_cast<bool>(base64Decode("a@bc")));     // Alphabet.
  EXPECT_FALSE(static_cast<bool>(base64Decode("ab=c")));     // Mid-pad.
  EXPECT_FALSE(static_cast<bool>(base64Decode("====")));
  EXPECT_FALSE(static_cast<bool>(base64Decode("Zg==Zg=="))); // Data after pad.
  EXPECT_FALSE(static_cast<bool>(base64Decode("Zm9v\nZm9v"))); // Raw newline.
  EXPECT_TRUE(static_cast<bool>(base64Decode("")));
}

} // namespace
