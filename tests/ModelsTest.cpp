//===- tests/ModelsTest.cpp - models/ unit tests ----------------------------------===//

#include "src/models/MiniModels.h"
#include "src/pruning/ChannelPlan.h"

#include <gtest/gtest.h>

using namespace wootz;

namespace {

TEST(MiniModelsTest, AllStandardModelsParse) {
  for (StandardModel Model : standardModels()) {
    Result<ModelSpec> Spec = makeStandardModel(Model, 6);
    ASSERT_TRUE(static_cast<bool>(Spec))
        << standardModelName(Model) << ": " << Spec.message();
    EXPECT_EQ(Spec->Name, standardModelName(Model));
  }
}

TEST(MiniModelsTest, ModuleCountsMatchFamilies) {
  EXPECT_EQ(makeStandardModel(StandardModel::ResNetA, 6)->moduleCount(), 4);
  EXPECT_EQ(makeStandardModel(StandardModel::ResNetB, 6)->moduleCount(), 6);
  EXPECT_EQ(makeStandardModel(StandardModel::InceptionA, 6)->moduleCount(),
            3);
  EXPECT_EQ(makeStandardModel(StandardModel::InceptionB, 6)->moduleCount(),
            4);
}

TEST(MiniModelsTest, ResNetModuleHasTwoPrunableConvs) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 6);
  ASSERT_TRUE(static_cast<bool>(Spec));
  int PrunableInM1 = 0;
  for (size_t I = 0; I < Spec->Layers.size(); ++I)
    if (Spec->LayerModule[I] == 0 && Spec->Prunable[I])
      ++PrunableInM1;
  EXPECT_EQ(PrunableInM1, 2); // conv1 and conv2; conv3 feeds the eltwise.
  EXPECT_TRUE(Spec->Prunable[Spec->layerIndex("m1_conv1")]);
  EXPECT_TRUE(Spec->Prunable[Spec->layerIndex("m1_conv2")]);
  EXPECT_FALSE(Spec->Prunable[Spec->layerIndex("m1_conv3")]);
}

TEST(MiniModelsTest, InceptionModuleHasFivePrunableConvs) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::InceptionA, 6);
  ASSERT_TRUE(static_cast<bool>(Spec));
  int PrunableInM1 = 0;
  for (size_t I = 0; I < Spec->Layers.size(); ++I)
    if (Spec->LayerModule[I] == 0 && Spec->Prunable[I])
      ++PrunableInM1;
  // b1_reduce/b1_conv, b2_reduce/b2_mid/b2_conv; the 1x1 projections
  // feed the concat and stay unpruned.
  EXPECT_EQ(PrunableInM1, 5);
  EXPECT_TRUE(Spec->Prunable[Spec->layerIndex("m1_b1_reduce")]);
  EXPECT_TRUE(Spec->Prunable[Spec->layerIndex("m1_b1_conv")]);
  EXPECT_TRUE(Spec->Prunable[Spec->layerIndex("m1_b2_mid")]);
  EXPECT_FALSE(Spec->Prunable[Spec->layerIndex("m1_b1_proj")]);
  EXPECT_FALSE(Spec->Prunable[Spec->layerIndex("m1_b3_proj")]);
}

TEST(MiniModelsTest, ModuleBoundariesChainThroughTheNetwork) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 6);
  ASSERT_TRUE(static_cast<bool>(Spec));
  EXPECT_EQ(Spec->Modules[0].ExternalInput, "stem_relu");
  for (int M = 1; M < Spec->moduleCount(); ++M)
    EXPECT_EQ(Spec->Modules[M].ExternalInput,
              Spec->Modules[M - 1].OutputLayer);
}

TEST(MiniModelsTest, ModuleOutputsKeepFullWidth) {
  // The dimension-compatibility invariant behind block composability:
  // pruning must not change any module's output channel count.
  for (StandardModel Model : standardModels()) {
    Result<ModelSpec> Spec = makeStandardModel(Model, 6);
    ASSERT_TRUE(static_cast<bool>(Spec));
    Result<ChannelPlan> Full = planChannels(*Spec, unprunedConfig(*Spec));
    PruneConfig Heavy(Spec->moduleCount(), 0.7f);
    Result<ChannelPlan> Pruned = planChannels(*Spec, Heavy);
    ASSERT_TRUE(static_cast<bool>(Full));
    ASSERT_TRUE(static_cast<bool>(Pruned));
    for (const ModuleSpec &M : Spec->Modules) {
      const int Index = Spec->layerIndex(M.OutputLayer);
      EXPECT_EQ(Full->OutChannels[Index], Pruned->OutChannels[Index])
          << standardModelName(Model) << " module " << M.Name;
    }
  }
}

TEST(MiniModelsTest, PruningShrinksWeights) {
  for (StandardModel Model : standardModels()) {
    Result<ModelSpec> Spec = makeStandardModel(Model, 6);
    ASSERT_TRUE(static_cast<bool>(Spec));
    const size_t Full = modelWeightCount(*Spec, unprunedConfig(*Spec));
    const size_t Pruned =
        modelWeightCount(*Spec, PruneConfig(Spec->moduleCount(), 0.7f));
    EXPECT_LT(Pruned, Full) << standardModelName(Model);
    // At 70% everywhere the model should lose a sizable share.
    EXPECT_LT(static_cast<double>(Pruned) / Full, 0.85);
  }
}

TEST(MiniModelsTest, ClassCountReachesLogits) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::InceptionB, 9);
  ASSERT_TRUE(static_cast<bool>(Spec));
  EXPECT_EQ(Spec->Layers.back().Name, "logits");
  EXPECT_EQ(Spec->Layers.back().NumOutput, 9);
}

TEST(MiniModelsTest, CustomDepthBuilder) {
  const std::string Text = miniResNetPrototxt("deep", 8, 12, 8, 5);
  Result<ModelSpec> Spec = parseModelSpec(Text);
  ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  EXPECT_EQ(Spec->moduleCount(), 8);
}

TEST(MiniModelsTest, PrototxtUsesModuleExtension) {
  const std::string Text =
      standardModelPrototxt(StandardModel::ResNetA, 6);
  EXPECT_NE(Text.find("module: \"m1\""), std::string::npos);
  EXPECT_NE(Text.find("eltwise_param"), std::string::npos);
}

} // namespace
