//===- tests/TrainTest.cpp - train/ unit tests --------------------------------------===//

#include "src/data/Synthetic.h"
#include "src/models/MiniModels.h"
#include "src/train/Assembly.h"
#include "src/train/ModelZoo.h"
#include "src/train/Pretrainer.h"
#include "src/train/Trainer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <filesystem>
#include <thread>

using namespace wootz;

namespace {

/// Small shared fixtures: an easy dataset and a ResNet-A model. Training
/// budgets are tiny; these tests check mechanics and directions of
/// change, not final quality.
class TrainFixture : public ::testing::Test {
protected:
  void SetUp() override {
    SyntheticSpec DataSpec;
    DataSpec.Classes = 4;
    DataSpec.TrainPerClass = 24;
    DataSpec.TestPerClass = 12;
    DataSpec.Noise = 0.25f;
    DataSpec.Seed = 55;
    Data = generateSynthetic(DataSpec);

    Result<ModelSpec> Parsed = makeStandardModel(StandardModel::ResNetA, 4);
    ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
    Spec = Parsed.take();
    Model = std::make_unique<MultiplexingModel>(Spec);

    Meta.FullModelSteps = 120;
    Meta.PretrainSteps = 40;
    Meta.FinetuneSteps = 40;
    Meta.BatchSize = 8;
    Meta.EvalEvery = 20;
  }

  Dataset Data;
  ModelSpec Spec;
  std::unique_ptr<MultiplexingModel> Model;
  TrainMeta Meta;
};

TEST_F(TrainFixture, TrainingImprovesFullModelAccuracy) {
  Rng Generator(61);
  Graph Network;
  Result<BuildResult> Built = Model->build(Network, BuildMode::FullModel,
                                           PruneInfo(), "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built));
  const TrainResult Trained =
      trainClassifier(Network, Built->InputNode, Built->LogitsNode, Data,
                      Meta, Meta.FullModelSteps,
                      Meta.FinetuneLearningRate, Generator);
  // Random init is near chance (0.25); training must clearly beat it.
  EXPECT_LT(Trained.InitialAccuracy, 0.55);
  EXPECT_GT(Trained.FinalAccuracy, 0.6);
  EXPECT_GE(Trained.Curve.size(), 3u);
  EXPECT_EQ(Trained.Curve.front().Step, 0);
}

TEST_F(TrainFixture, EvaluateAccuracyIsDeterministic) {
  Rng Generator(62);
  Graph Network;
  Result<BuildResult> Built = Model->build(Network, BuildMode::FullModel,
                                           PruneInfo(), "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built));
  const double A = evaluateAccuracy(Network, Built->InputNode,
                                    Built->LogitsNode, Data.Test);
  const double B = evaluateAccuracy(Network, Built->InputNode,
                                    Built->LogitsNode, Data.Test);
  EXPECT_DOUBLE_EQ(A, B);
  EXPECT_GE(A, 0.0);
  EXPECT_LE(A, 1.0);
}

TEST_F(TrainFixture, ShardedEvaluateAccuracyIsBitIdenticalToSerial) {
  Rng Generator(66);
  Graph Network;
  Result<BuildResult> Built = Model->build(Network, BuildMode::FullModel,
                                           PruneInfo(), "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built));
  // The sharded path keeps the serial loop's batch boundaries and sums
  // integer correct counts, so any thread count gives the same answer —
  // including 64, which asks for more shards than there are batches and
  // must clamp to the batch count.
  const double Serial = evaluateAccuracy(
      Network, Built->InputNode, Built->LogitsNode, Data.Test, 8, 1);
  for (int Threads : {2, 4, 7, 64})
    EXPECT_DOUBLE_EQ(Serial,
                     evaluateAccuracy(Network, Built->InputNode,
                                      Built->LogitsNode, Data.Test, 8,
                                      Threads))
        << "threads=" << Threads;
}

TEST_F(TrainFixture, EvaluateAccuracyBatchSizeInvariant) {
  Rng Generator(63);
  Graph Network;
  Result<BuildResult> Built = Model->build(Network, BuildMode::FullModel,
                                           PruneInfo(), "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built));
  EXPECT_DOUBLE_EQ(evaluateAccuracy(Network, Built->InputNode,
                                    Built->LogitsNode, Data.Test, 7),
                   evaluateAccuracy(Network, Built->InputNode,
                                    Built->LogitsNode, Data.Test, 64));
}

//===----------------------------------------------------------------------===//
// CheckpointStore
//===----------------------------------------------------------------------===//

TEST_F(TrainFixture, CheckpointCaptureRestoreRoundTrip) {
  Rng Generator(64);
  Graph A;
  ASSERT_TRUE(static_cast<bool>(Model->build(A, BuildMode::FullModel,
                                             PruneInfo(), "full",
                                             Generator)));
  Graph B;
  ASSERT_TRUE(static_cast<bool>(Model->build(B, BuildMode::FullModel,
                                             PruneInfo(), "net",
                                             Generator)));
  CheckpointStore Store;
  std::vector<std::string> Layers;
  for (const LayerSpec &L : Spec.Layers)
    Layers.push_back(L.Name);
  Store.capture("whole", A, "full", Layers);
  ASSERT_TRUE(Store.contains("whole"));
  Error E = Store.restore("whole", B, "net");
  ASSERT_FALSE(static_cast<bool>(E)) << E.message();

  // Same weights now: same outputs.
  Tensor Input(Shape{1, 3, 8, 8});
  Rng DataGen(65);
  for (size_t I = 0; I < Input.size(); ++I)
    Input[I] = DataGen.nextGaussian();
  A.setInput("data", Input);
  A.forward(false);
  B.setInput("data", Input);
  B.forward(false);
  const Tensor &OutA = A.activation("full/logits");
  const Tensor &OutB = B.activation("net/logits");
  for (size_t I = 0; I < OutA.size(); ++I)
    ASSERT_FLOAT_EQ(OutA[I], OutB[I]);
}

TEST_F(TrainFixture, CheckpointRejectsShapeMismatch) {
  Rng Generator(66);
  Graph Full;
  ASSERT_TRUE(static_cast<bool>(Model->build(Full, BuildMode::FullModel,
                                             PruneInfo(), "full",
                                             Generator)));
  Graph Pruned;
  PruneInfo Info;
  Info.Config = PruneConfig(Spec.moduleCount(), 0.7f);
  ASSERT_TRUE(static_cast<bool>(Model->build(Pruned, BuildMode::FineTune,
                                             Info, "net", Generator)));
  CheckpointStore Store;
  Store.capture("full-weights", Full, "full", {"m1_conv1"});
  Error E = Store.restore("full-weights", Pruned, "net");
  EXPECT_TRUE(static_cast<bool>(E)); // 8 filters vs 2 filters.
}

TEST(CheckpointStoreTest, MissingKeyErrors) {
  CheckpointStore Store;
  Graph Network;
  Error E = Store.restore("absent", Network, "net");
  EXPECT_TRUE(static_cast<bool>(E));
}

TEST(CheckpointStoreTest, SanitizeKeys) {
  const std::string Sanitized = sanitizeCheckpointKey("m2-m3@0.5,0.3");
  // Unsafe characters are replaced, and a short hash of the original
  // key is appended to keep distinct keys distinct on disk.
  EXPECT_EQ(Sanitized.substr(0, 13), "m2-m3_0.5_0.3");
  EXPECT_EQ(Sanitized, sanitizeCheckpointKey("m2-m3@0.5,0.3"));
  for (char C : Sanitized)
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
                C == '_' || C == '.')
        << "unsafe character '" << C << "' in " << Sanitized;
}

TEST(CheckpointStoreTest, SanitizeKeysNeverCollide) {
  // Regression: "b|a" and "b:a" both sanitized to "b_a" and silently
  // overwrote each other's .ckpt file in saveTo.
  EXPECT_NE(sanitizeCheckpointKey("b|a"), sanitizeCheckpointKey("b:a"));
  EXPECT_NE(checkpointFileName("m0@0.5,0.3"), checkpointFileName("m0@0.5@0.3"));
  EXPECT_NE(sanitizeCheckpointKey("a_b"), sanitizeCheckpointKey("a|b"));
}

TEST(CheckpointStoreTest, RestoreRejectsMalformedEntryNames) {
  // Bundles can come from disk, so malformed entry names must be clean
  // errors, not assert()s that compile out under NDEBUG.
  Result<ModelSpec> Parsed = makeStandardModel(StandardModel::ResNetA, 4);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  MultiplexingModel Model(Parsed.take());
  Rng Generator(80);
  Graph Network;
  ASSERT_TRUE(static_cast<bool>(Model.build(
      Network, BuildMode::FullModel, PruneInfo(), "net", Generator)));

  CheckpointStore NoSlash;
  TensorBundle Bad;
  Bad["nostateindex"] = Tensor(Shape{1}, {1.0f});
  NoSlash.insert("k", std::move(Bad));
  Error E1 = NoSlash.restore("k", Network, "net");
  EXPECT_TRUE(static_cast<bool>(E1));

  CheckpointStore BadIndex;
  TensorBundle Garbled;
  Garbled["m1_conv1/sXY"] = Tensor(Shape{1}, {1.0f});
  BadIndex.insert("k", std::move(Garbled));
  Error E2 = BadIndex.restore("k", Network, "net");
  EXPECT_TRUE(static_cast<bool>(E2));
}

TEST(CheckpointStoreTest, RestoreBoundsChecksStateIndex) {
  // A bundle captured from a layer with more state tensors than the
  // target was UB in release builds (unchecked state()[*StateIndex]).
  Result<ModelSpec> Parsed = makeStandardModel(StandardModel::ResNetA, 4);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  MultiplexingModel Model(Parsed.take());
  Rng Generator(81);
  Graph Network;
  ASSERT_TRUE(static_cast<bool>(Model.build(
      Network, BuildMode::FullModel, PruneInfo(), "net", Generator)));

  CheckpointStore Store;
  TensorBundle OutOfRange;
  OutOfRange["m1_conv1/s99"] = Tensor(Shape{1}, {1.0f});
  Store.insert("k", std::move(OutOfRange));
  Error E = Store.restore("k", Network, "net");
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("state tensor 99"), std::string::npos)
      << E.message();
}

TEST_F(TrainFixture, CheckpointStoreDiskRoundTrip) {
  Rng Generator(67);
  Graph A;
  ASSERT_TRUE(static_cast<bool>(Model->build(A, BuildMode::FullModel,
                                             PruneInfo(), "full",
                                             Generator)));
  CheckpointStore Store;
  Store.capture("m1@0.5", A, "full", {"m1_conv1", "m1_conv1_bn"});
  const std::string Dir =
      (std::filesystem::temp_directory_path() / "wootz_store_test")
          .string();
  Error SaveErr = Store.saveTo(Dir);
  ASSERT_FALSE(static_cast<bool>(SaveErr)) << SaveErr.message();

  CheckpointStore Loaded;
  Result<CheckpointLoadReport> Report = Loaded.loadFrom(Dir);
  ASSERT_TRUE(static_cast<bool>(Report)) << Report.message();
  EXPECT_EQ(Report->Loaded, 1);
  EXPECT_TRUE(Report->EntryErrors.empty());
  EXPECT_TRUE(Loaded.contains("m1@0.5"));
  EXPECT_EQ(Loaded.keys(), Store.keys());

  // Replace mode drops what was in memory; merge keeps it.
  Loaded.insert("stale", TensorBundle{});
  ASSERT_TRUE(static_cast<bool>(
      Loaded.loadFrom(Dir, CheckpointLoadMode::Merge)));
  EXPECT_TRUE(Loaded.contains("stale"));
  ASSERT_TRUE(static_cast<bool>(
      Loaded.loadFrom(Dir, CheckpointLoadMode::Replace)));
  EXPECT_FALSE(Loaded.contains("stale"));
  EXPECT_TRUE(Loaded.contains("m1@0.5"));
  std::filesystem::remove_all(Dir);
}

TEST_F(TrainFixture, CheckpointStoreConcurrentWritersAndReaders) {
  // The runtime scheduler pre-trains block groups on worker threads
  // that all capture into one shared store while fine-tune tasks poll
  // it. Two writer threads capture disjoint key ranges from their own
  // graphs while a reader hammers contains()/keys(); every capture must
  // land and restore cleanly afterwards.
  constexpr int PerWriter = 12;
  std::vector<std::string> Layers;
  for (const LayerSpec &L : Spec.Layers)
    Layers.push_back(L.Name);

  CheckpointStore Store;
  std::atomic<bool> Stop{false};
  auto Writer = [&](int Which, unsigned Seed) {
    Rng Generator(Seed);
    Graph Network;
    Result<BuildResult> Built = Model->build(
        Network, BuildMode::FullModel, PruneInfo(), "full", Generator);
    ASSERT_TRUE(static_cast<bool>(Built));
    for (int I = 0; I < PerWriter; ++I)
      Store.capture("w" + std::to_string(Which) + "_" + std::to_string(I),
                    Network, "full", Layers);
  };
  std::thread WriterA([&] { Writer(0, 71); });
  std::thread WriterB([&] { Writer(1, 72); });
  std::thread Reader([&] {
    size_t Snapshots = 0;
    while (!Stop.load()) {
      Store.contains("w0_0");
      Snapshots += Store.keys().size();
    }
    (void)Snapshots;
  });
  WriterA.join();
  WriterB.join();
  Stop = true;
  Reader.join();

  EXPECT_EQ(Store.keys().size(), static_cast<size_t>(2 * PerWriter));
  Rng Generator(73);
  Graph Target;
  ASSERT_TRUE(static_cast<bool>(Model->build(
      Target, BuildMode::FullModel, PruneInfo(), "net", Generator)));
  for (int Which = 0; Which < 2; ++Which)
    for (int I = 0; I < PerWriter; ++I) {
      Error E = Store.restore(
          "w" + std::to_string(Which) + "_" + std::to_string(I), Target,
          "net");
      ASSERT_FALSE(static_cast<bool>(E)) << E.message();
    }
}

//===----------------------------------------------------------------------===//
// Pre-training (Teacher-Student)
//===----------------------------------------------------------------------===//

TEST_F(TrainFixture, PretrainReducesReconstructionLoss) {
  Rng Generator(68);
  Result<FullModel> Full =
      prepareFullModel(*Model, Data, Meta, "", Generator);
  ASSERT_TRUE(static_cast<bool>(Full)) << Full.message();

  CheckpointStore Store;
  const std::vector<TuningBlock> Blocks{TuningBlock{0, {0.7f}},
                                        TuningBlock{2, {0.5f}}};
  Result<PretrainStats> Stats =
      pretrainBlocks(*Model, Full->Network, "full", Blocks, Data, Meta,
                     Store, Generator);
  ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.message();
  EXPECT_EQ(Stats->BlockCount, 2);
  EXPECT_EQ(Stats->GroupCount, 1); // Non-overlapping blocks share a group.
  EXPECT_TRUE(Store.contains("m0@0.7"));
  EXPECT_TRUE(Store.contains("m2@0.5"));
  // The Teacher-Student objective must actually decrease.
  EXPECT_LT(Stats->LastLoss, Stats->FirstLoss);
}

TEST_F(TrainFixture, PretrainSkipsStoredAndIdentityBlocks) {
  Rng Generator(69);
  Result<FullModel> Full =
      prepareFullModel(*Model, Data, Meta, "", Generator);
  ASSERT_TRUE(static_cast<bool>(Full));
  CheckpointStore Store;
  const std::vector<TuningBlock> Blocks{TuningBlock{0, {0.5f}},
                                        TuningBlock{1, {0.0f}}};
  Result<PretrainStats> First = pretrainBlocks(
      *Model, Full->Network, "full", Blocks, Data, Meta, Store, Generator);
  ASSERT_TRUE(static_cast<bool>(First));
  EXPECT_EQ(First->BlockCount, 1); // Identity block skipped.
  Result<PretrainStats> Second = pretrainBlocks(
      *Model, Full->Network, "full", Blocks, Data, Meta, Store, Generator);
  ASSERT_TRUE(static_cast<bool>(Second));
  EXPECT_EQ(Second->BlockCount, 0); // Already stored.
}

TEST_F(TrainFixture, OverlappingBlocksLandInSeparateGroups) {
  Rng Generator(70);
  Result<FullModel> Full =
      prepareFullModel(*Model, Data, Meta, "", Generator);
  ASSERT_TRUE(static_cast<bool>(Full));
  CheckpointStore Store;
  const std::vector<TuningBlock> Blocks{
      TuningBlock{0, {0.3f}}, TuningBlock{0, {0.5f}},
      TuningBlock{0, {0.7f}}};
  TrainMeta Short = Meta;
  Short.PretrainSteps = 5;
  Result<PretrainStats> Stats = pretrainBlocks(
      *Model, Full->Network, "full", Blocks, Data, Short, Store, Generator);
  ASSERT_TRUE(static_cast<bool>(Stats));
  EXPECT_EQ(Stats->GroupCount, 3);
  EXPECT_EQ(Stats->GroupSeconds.size(), 3u);
}

//===----------------------------------------------------------------------===//
// Assembly: block-trained vs default networks
//===----------------------------------------------------------------------===//

TEST_F(TrainFixture, BlockTrainedInitBeatsDefaultInit) {
  // The composability hypothesis at unit scale (§7.2): a block-trained
  // network must start at a much better accuracy than a default one.
  Rng Generator(71);
  Result<FullModel> Full =
      prepareFullModel(*Model, Data, Meta, "", Generator);
  ASSERT_TRUE(static_cast<bool>(Full));
  ASSERT_GT(Full->Accuracy, 0.5);

  const PruneConfig Config(Spec.moduleCount(), 0.7f);
  std::vector<TuningBlock> Blocks;
  for (int M = 0; M < Spec.moduleCount(); ++M)
    Blocks.push_back(TuningBlock{M, {0.7f}});
  CheckpointStore Store;
  Result<PretrainStats> Stats = pretrainBlocks(
      *Model, Full->Network, "full", Blocks, Data, Meta, Store, Generator);
  ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.message();

  Result<AssembledNetwork> Default = buildPrunedNetwork(
      *Model, Config, Full->Network, "full", nullptr, nullptr, Generator);
  ASSERT_TRUE(static_cast<bool>(Default)) << Default.message();
  Result<AssembledNetwork> BlockTrained =
      buildPrunedNetwork(*Model, Config, Full->Network, "full", &Store,
                         &Blocks, Generator);
  ASSERT_TRUE(static_cast<bool>(BlockTrained)) << BlockTrained.message();
  EXPECT_EQ(BlockTrained->BlocksUsed.size(), Blocks.size());

  const double DefaultInit =
      evaluateAccuracy(Default->Network, Default->InputNode,
                       Default->LogitsNode, Data.Test);
  const double BlockInit = evaluateAccuracy(
      BlockTrained->Network, BlockTrained->InputNode,
      BlockTrained->LogitsNode, Data.Test);
  EXPECT_GT(BlockInit, DefaultInit + 0.1)
      << "block-trained init " << BlockInit << " vs default "
      << DefaultInit;
}

TEST_F(TrainFixture, AssemblyRejectsMismatchedCompositeBlock) {
  Rng Generator(72);
  Result<FullModel> Full =
      prepareFullModel(*Model, Data, Meta, "", Generator);
  ASSERT_TRUE(static_cast<bool>(Full));
  CheckpointStore Store;
  const PruneConfig Config(Spec.moduleCount(), 0.5f);
  const std::vector<TuningBlock> Wrong{TuningBlock{0, {0.5f}}};
  // Block matches the config but was never pre-trained: restore fails.
  Result<AssembledNetwork> Assembled = buildPrunedNetwork(
      *Model, Config, Full->Network, "full", &Store, &Wrong, Generator);
  EXPECT_FALSE(static_cast<bool>(Assembled));
}

//===----------------------------------------------------------------------===//
// ModelZoo caching
//===----------------------------------------------------------------------===//

TEST_F(TrainFixture, FullModelCacheHitSkipsTraining) {
  const std::string Dir =
      (std::filesystem::temp_directory_path() / "wootz_zoo_test").string();
  std::filesystem::remove_all(Dir);
  Rng Generator(73);
  Result<FullModel> First =
      prepareFullModel(*Model, Data, Meta, Dir, Generator);
  ASSERT_TRUE(static_cast<bool>(First)) << First.message();
  EXPECT_FALSE(First->FromCache);

  Rng Generator2(74);
  Result<FullModel> Second =
      prepareFullModel(*Model, Data, Meta, Dir, Generator2);
  ASSERT_TRUE(static_cast<bool>(Second)) << Second.message();
  EXPECT_TRUE(Second->FromCache);
  EXPECT_NEAR(Second->Accuracy, First->Accuracy, 1e-9);
  std::filesystem::remove_all(Dir);
}

} // namespace

//===----------------------------------------------------------------------===//
// Learning-rate schedule and early stopping (appended tests)
//===----------------------------------------------------------------------===//

namespace {

TEST_F(TrainFixture, EarlyStoppingTruncatesTraining) {
  Rng Generator(75);
  Graph Network;
  Result<BuildResult> Built = Model->build(Network, BuildMode::FullModel,
                                           PruneInfo(), "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built));
  TrainMeta Patient = Meta;
  Patient.EvalEvery = 5;
  Patient.EarlyStopPatience = 1;
  const TrainResult Trained = trainClassifier(
      Network, Built->InputNode, Built->LogitsNode, Data, Patient,
      /*Steps=*/200, /*LearningRate=*/0.0f, Generator);
  // Zero learning rate: accuracy can never improve, so training stops
  // after the first patience window instead of running 200 steps.
  ASSERT_FALSE(Trained.Curve.empty());
  EXPECT_LE(Trained.Curve.back().Step, 15);
}

TEST(SolverScheduleTest, ParsesDecayAndPatienceKeys) {
  Result<TrainMeta> Meta = parseTrainMeta(
      "lr_decay_every: 20\nlr_decay_factor: 0.25\n"
      "early_stop_patience: 3\nfull_model_lr: 0.5\n");
  ASSERT_TRUE(static_cast<bool>(Meta)) << Meta.message();
  EXPECT_EQ(Meta->LrDecayEvery, 20);
  EXPECT_FLOAT_EQ(Meta->LrDecayFactor, 0.25f);
  EXPECT_EQ(Meta->EarlyStopPatience, 3);
  EXPECT_FLOAT_EQ(Meta->FullModelLearningRate, 0.5f);
  Result<TrainMeta> Reparsed = parseTrainMeta(printTrainMeta(*Meta));
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  EXPECT_EQ(Reparsed->LrDecayEvery, 20);
}

TEST_F(TrainFixture, LrDecayStillLearns) {
  Rng Generator(76);
  Graph Network;
  Result<BuildResult> Built = Model->build(Network, BuildMode::FullModel,
                                           PruneInfo(), "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built));
  TrainMeta Decayed = Meta;
  Decayed.LrDecayEvery = 40;
  Decayed.LrDecayFactor = 0.5f;
  const TrainResult Trained = trainClassifier(
      Network, Built->InputNode, Built->LogitsNode, Data, Decayed,
      Meta.FullModelSteps, 0.04f, Generator);
  EXPECT_GT(Trained.FinalAccuracy, Trained.InitialAccuracy + 0.2);
}

} // namespace
