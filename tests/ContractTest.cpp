//===- tests/ContractTest.cpp - programmatic-error contracts ----------------------===//
//
// The library's programmatic errors (API misuse, invariant violations)
// abort via assert, per the LLVM error-handling split between
// programmatic and recoverable errors. These death tests pin the most
// important contracts so silent misuse cannot creep in. (Asserts stay
// enabled in this project's Release builds; see the root CMakeLists.)
//
//===----------------------------------------------------------------------===//

#include "src/nn/Graph.h"
#include "src/nn/Layers.h"
#include "src/pruning/PruneConfig.h"
#include "src/support/Rng.h"
#include "src/tensor/Tensor.h"

#include <gtest/gtest.h>

using namespace wootz;

namespace {

TEST(ContractTest, TensorShapeMismatchAborts) {
  EXPECT_DEATH(Tensor(Shape{2, 2}, {1.0f, 2.0f, 3.0f}),
               "data size does not match");
}

TEST(ContractTest, TensorIndexOutOfRangeAborts) {
  Tensor T(Shape{2, 2});
  EXPECT_DEATH((void)T[4], "out of range");
}

TEST(ContractTest, ReshapeMustPreserveElementCount) {
  Tensor T(Shape{2, 3});
  EXPECT_DEATH(T.reshape(Shape{2, 2}), "preserve element count");
}

TEST(ContractTest, GraphDuplicateNodeNameAborts) {
  Graph Network;
  Network.addInput("x");
  EXPECT_DEATH(Network.addInput("x"), "duplicate node name");
}

TEST(ContractTest, GraphUndefinedInputAborts) {
  Graph Network;
  Network.addInput("x");
  EXPECT_DEATH(Network.addNode("a", std::make_unique<ReLU>(), {"ghost"}),
               "defined before use");
}

TEST(ContractTest, SetInputOnLayerNodeAborts) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("a", std::make_unique<ReLU>(), {"x"});
  EXPECT_DEATH(Network.setInput("a", Tensor(Shape{1})),
               "input placeholder");
}

TEST(ContractTest, ConvChannelMismatchAbortsAtForward) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv",
                  std::make_unique<Conv2D>(ConvGeometry{3, 4, 3, 1, 1}),
                  {"x"});
  Network.setInput("x", Tensor(Shape{1, 2, 8, 8})); // 2 != 3 channels.
  EXPECT_DEATH(Network.forward(false), "channel mismatch");
}

TEST(ContractTest, GradientSeedShapeMustMatchActivation) {
  Graph Network;
  Network.addInput("x");
  Network.addNode("relu", std::make_unique<ReLU>(), {"x"});
  Network.setInput("x", Tensor(Shape{1, 1, 2, 2}));
  Network.forward(true);
  EXPECT_DEATH(Network.seedGradient("relu", Tensor(Shape{1, 1, 3, 3})),
               "shape must match");
}

TEST(ContractTest, KeptFiltersRejectsRateOne) {
  EXPECT_DEATH(keptFilters(8, 1.0f), "out of");
}

TEST(ContractTest, RngChoiceOnEmptyVectorAborts) {
  Rng Generator(1);
  const std::vector<int> Empty;
  EXPECT_DEATH((void)Generator.choice(Empty), "empty");
}

} // namespace
