//===- tests/DataTest.cpp - data/ unit tests ------------------------------------===//

#include "src/data/Synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace wootz;

namespace {

TEST(SyntheticTest, ShapesAndCounts) {
  SyntheticSpec Spec;
  Spec.Classes = 4;
  Spec.TrainPerClass = 10;
  Spec.TestPerClass = 5;
  const Dataset Data = generateSynthetic(Spec);
  EXPECT_EQ(Data.Train.exampleCount(), 40);
  EXPECT_EQ(Data.Test.exampleCount(), 20);
  EXPECT_EQ(Data.Train.Images.shape(),
            Shape({40, 3, Spec.Height, Spec.Width}));
  EXPECT_EQ(Data.Classes, 4);
}

TEST(SyntheticTest, LabelsCoverAllClasses) {
  const Dataset Data = generateSynthetic(SyntheticSpec());
  std::set<int> Train(Data.Train.Labels.begin(), Data.Train.Labels.end());
  std::set<int> Test(Data.Test.Labels.begin(), Data.Test.Labels.end());
  EXPECT_EQ(static_cast<int>(Train.size()), Data.Classes);
  EXPECT_EQ(static_cast<int>(Test.size()), Data.Classes);
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticSpec Spec;
  Spec.Seed = 99;
  const Dataset A = generateSynthetic(Spec);
  const Dataset B = generateSynthetic(Spec);
  ASSERT_EQ(A.Train.Images.size(), B.Train.Images.size());
  for (size_t I = 0; I < A.Train.Images.size(); I += 97)
    EXPECT_EQ(A.Train.Images[I], B.Train.Images[I]);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticSpec Spec;
  Spec.Seed = 1;
  const Dataset A = generateSynthetic(Spec);
  Spec.Seed = 2;
  const Dataset B = generateSynthetic(Spec);
  int Different = 0;
  for (size_t I = 0; I < A.Train.Images.size(); I += 31)
    Different += A.Train.Images[I] != B.Train.Images[I];
  EXPECT_GT(Different, 0);
}

TEST(SyntheticTest, PixelValuesBoundedAndFinite) {
  const Dataset Data = generateSynthetic(SyntheticSpec());
  for (size_t I = 0; I < Data.Train.Images.size(); ++I) {
    ASSERT_TRUE(std::isfinite(Data.Train.Images[I]));
    ASSERT_LT(std::fabs(Data.Train.Images[I]), 10.0f);
  }
}

TEST(SyntheticTest, ClassesAreStatisticallySeparable) {
  // Per-class mean images must differ measurably (the class color
  // balance survives the random texture shifts); otherwise no CNN could
  // learn the dataset.
  SyntheticSpec Spec;
  Spec.Classes = 4;
  Spec.TrainPerClass = 40;
  Spec.Noise = 0.3f;
  const Dataset Data = generateSynthetic(Spec);
  const int Pixels = 3 * Spec.Height * Spec.Width;
  std::vector<std::vector<double>> Means(
      Spec.Classes, std::vector<double>(Pixels, 0.0));
  std::vector<int> Counts(Spec.Classes, 0);
  for (int N = 0; N < Data.Train.exampleCount(); ++N) {
    const int Label = Data.Train.Labels[N];
    ++Counts[Label];
    for (int P = 0; P < Pixels; ++P)
      Means[Label][P] +=
          Data.Train.Images[static_cast<size_t>(N) * Pixels + P];
  }
  double MinDistance = 1e9;
  for (int A = 0; A < Spec.Classes; ++A)
    for (int B = A + 1; B < Spec.Classes; ++B) {
      double Distance = 0.0;
      for (int P = 0; P < Pixels; ++P) {
        const double Diff =
            Means[A][P] / Counts[A] - Means[B][P] / Counts[B];
        Distance += Diff * Diff;
      }
      MinDistance = std::min(MinDistance, std::sqrt(Distance / Pixels));
    }
  EXPECT_GT(MinDistance, 0.01);
}

TEST(SyntheticTest, StandardSpecsMatchPaperOrdering) {
  const std::vector<SyntheticSpec> Specs = standardDatasetSpecs();
  ASSERT_EQ(Specs.size(), 4u);
  EXPECT_EQ(Specs[0].Name, "flowers102");
  EXPECT_EQ(Specs[1].Name, "cub200");
  EXPECT_EQ(Specs[2].Name, "cars");
  EXPECT_EQ(Specs[3].Name, "dogs");
  // Difficulty ordering mirrors Table 1: flowers easiest, cub hardest.
  EXPECT_LT(Specs[0].Noise, Specs[3].Noise);
  EXPECT_LT(Specs[3].Noise, Specs[2].Noise);
  EXPECT_LT(Specs[2].Noise, Specs[1].Noise);
}

TEST(SyntheticTest, ScaleShrinksDatasets) {
  const std::vector<SyntheticSpec> Small = standardDatasetSpecs(0.25);
  const std::vector<SyntheticSpec> Normal = standardDatasetSpecs(1.0);
  EXPECT_LT(Small[0].TrainPerClass, Normal[0].TrainPerClass);
  EXPECT_GE(Small[0].TrainPerClass, 4);
}

TEST(SplitTest, GatherCopiesRequestedExamples) {
  SyntheticSpec Spec;
  Spec.TrainPerClass = 5;
  const Dataset Data = generateSynthetic(Spec);
  const Batch Out = Data.Train.gather({0, 3, 7});
  EXPECT_EQ(Out.Images.shape()[0], 3);
  ASSERT_EQ(Out.Labels.size(), 3u);
  EXPECT_EQ(Out.Labels[0], Data.Train.Labels[0]);
  EXPECT_EQ(Out.Labels[2], Data.Train.Labels[7]);
  const size_t Sample = Out.Images.size() / 3;
  for (size_t I = 0; I < Sample; ++I)
    ASSERT_EQ(Out.Images[Sample * 2 + I],
              Data.Train.Images[Sample * 7 + I]);
}

TEST(BatchSamplerTest, BatchesHaveRequestedSize) {
  const Dataset Data = generateSynthetic(SyntheticSpec());
  BatchSampler Sampler(Data.Train, 7, Rng(5));
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Sampler.next().Labels.size(), 7u);
}

TEST(BatchSamplerTest, EpochCoversEveryExample) {
  SyntheticSpec Spec;
  Spec.Classes = 2;
  Spec.TrainPerClass = 8; // 16 examples total.
  const Dataset Data = generateSynthetic(Spec);
  BatchSampler Sampler(Data.Train, 4, Rng(6));
  std::multiset<int> SeenLabels;
  for (int B = 0; B < 4; ++B) { // Exactly one epoch.
    const Batch Mini = Sampler.next();
    SeenLabels.insert(Mini.Labels.begin(), Mini.Labels.end());
  }
  EXPECT_EQ(SeenLabels.count(0), 8u);
  EXPECT_EQ(SeenLabels.count(1), 8u);
}

TEST(BatchSamplerTest, DeterministicInSeed) {
  const Dataset Data = generateSynthetic(SyntheticSpec());
  BatchSampler A(Data.Train, 4, Rng(11));
  BatchSampler B(Data.Train, 4, Rng(11));
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(A.next().Labels, B.next().Labels);
}

TEST(DescribeDatasetTest, MentionsCounts) {
  const Dataset Data = generateSynthetic(SyntheticSpec());
  const std::string Text = describeDataset(Data);
  EXPECT_NE(Text.find("classes=6"), std::string::npos);
  EXPECT_NE(Text.find("train=360"), std::string::npos);
}

} // namespace
