//===- tests/JobQueueTest.cpp - multi-process serving tier tests -----------===//
//
// Covers the scaled-out serving pieces bottom-up: the file-based owner
// lease (acquire / renew / steal / release), the ArtifactStore layout
// with its process registry and rendezvous placement, the durable
// JobQueue (cross-queue visibility, exclusive claims, cancel markers,
// reclaim after lease expiry), worker-count validation on the facade,
// crash recovery with a warm block cache, and two full daemons sharing
// one artifact root end to end (upload-on-A/predict-on-B, submit-on-A/
// execute-on-B, and block reuse across jobs regardless of process).
//
//===----------------------------------------------------------------------===//

#include "src/serve/Server.h"

#include "src/models/MiniModels.h"
#include "src/pruning/PruneConfig.h"
#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/support/Lease.h"
#include "src/support/StringUtils.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>

using namespace wootz;
using namespace wootz::serve;

namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory that cleans up after itself.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path((fs::temp_directory_path() / Name).string()) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ignored;
    fs::remove_all(Path, Ignored);
  }
  const std::string &str() const { return Path; }

private:
  std::string Path;
};

/// Sends \p Raw to 127.0.0.1:\p Port and reads until the server closes.
Result<std::string> rawRequest(int Port, const std::string &Raw) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Error::failure("socket() failed");
  timeval Timeout{};
  Timeout.tv_sec = 30;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));
  sockaddr_in Address{};
  Address.sin_family = AF_INET;
  Address.sin_port = htons(static_cast<uint16_t>(Port));
  Address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Address),
                sizeof(Address)) != 0) {
    ::close(Fd);
    return Error::failure("connect() failed");
  }
  size_t Sent = 0;
  while (Sent < Raw.size()) {
    const ssize_t N = ::send(Fd, Raw.data() + Sent, Raw.size() - Sent, 0);
    if (N <= 0) {
      ::close(Fd);
      return Error::failure("send() failed");
    }
    Sent += static_cast<size_t>(N);
  }
  std::string Response;
  char Buffer[4096];
  while (true) {
    const ssize_t N = ::recv(Fd, Buffer, sizeof(Buffer), 0);
    if (N < 0) {
      if (!Response.empty())
        break;
      ::close(Fd);
      return Error::failure("recv() failed");
    }
    if (N == 0)
      break;
    Response.append(Buffer, static_cast<size_t>(N));
  }
  ::close(Fd);
  if (Response.empty())
    return Error::failure("empty response");
  return Response;
}

std::string makeRequest(const std::string &Method, const std::string &Target,
                        const std::string &Body) {
  return Method + " " + Target + " HTTP/1.1\r\nHost: test\r\n" +
         (Body.empty() ? std::string()
                       : "Content-Length: " + std::to_string(Body.size()) +
                             "\r\n") +
         "\r\n" + Body;
}

int statusOf(const std::string &Response) {
  if (Response.size() < 12 || Response.compare(0, 9, "HTTP/1.1 ") != 0)
    return -1;
  Result<long long> Code = parseInteger(Response.substr(9, 3));
  return Code ? static_cast<int>(*Code) : -1;
}

std::string bodyOf(const std::string &Response) {
  const size_t At = Response.find("\r\n\r\n");
  return At == std::string::npos ? std::string()
                                 : Response.substr(At + 4);
}

/// The raw text of "key": in \p Json up to the next comma/brace — used
/// to compare result summaries byte-for-byte across processes.
std::string jsonField(const std::string &Json, const std::string &Key) {
  const std::string Needle = "\"" + Key + "\":";
  const size_t At = Json.find(Needle);
  if (At == std::string::npos)
    return "";
  const size_t From = At + Needle.size();
  const size_t End = Json.find_first_of(",}", From);
  return Json.substr(From, End - From);
}

//===----------------------------------------------------------------------===//
// Shared tiny inputs (mirrors ServeTest's job fixture).
//===----------------------------------------------------------------------===//

std::string tinyModelText() {
  return standardModelPrototxt(StandardModel::ResNetA, 4);
}

std::string tinyMetaText() {
  TrainMeta Meta;
  Meta.FullModelSteps = 30;
  Meta.PretrainSteps = 12;
  Meta.FinetuneSteps = 8;
  Meta.EvalEvery = 8;
  Meta.BatchSize = 8;
  return printTrainMeta(Meta);
}

std::string tinySubspaceText() {
  Result<ModelSpec> Spec = parseModelSpec(tinyModelText());
  PruneConfig A(Spec->moduleCount(), 0.0f);
  A[0] = 0.5f;
  PruneConfig B(Spec->moduleCount(), 0.0f);
  B[0] = 0.3f;
  return printSubspaceSpec({A, B});
}

std::map<std::string, std::string> tinyJobBody() {
  return {{"model", tinyModelText()},
          {"subspace", tinySubspaceText()},
          {"meta", tinyMetaText()},
          {"objective", "min ModelSize\nconstraint Accuracy >= 0.0\n"},
          {"dataset_scale", "0.1"},
          {"workers", "2"},
          // Per-module blocks: guaranteed pre-training + cache traffic.
          {"identifier", "false"}};
}

std::string tinyJobJson(
    const std::map<std::string, std::string> &Extra = {}) {
  std::map<std::string, std::string> Merged = tinyJobBody();
  for (const auto &[Key, Value] : Extra)
    Merged[Key] = Value;
  JsonObject Body;
  for (const auto &[Key, Value] : Merged)
    Body.field(Key, Value);
  return Body.str();
}

/// Polls \p Manager until \p Id reaches a terminal state.
std::string waitForTerminal(JobManager &Manager, const std::string &Id,
                            int TimeoutSeconds = 180) {
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(TimeoutSeconds);
  while (std::chrono::steady_clock::now() < Deadline) {
    Result<std::string> Status = Manager.statusJson(Id);
    if (!Status)
      return "";
    for (const char *State : {"done", "failed", "cancelled"})
      if (Status->find("\"state\":\"" + std::string(State) + "\"") !=
          std::string::npos)
        return State;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return "timeout";
}

//===----------------------------------------------------------------------===//
// support/Lease
//===----------------------------------------------------------------------===//

TEST(LeaseTest, AcquireIsExclusiveUntilExpiry) {
  ScratchDir Scratch("wootz_lease");
  const std::string Path = Scratch.str() + "/job.lease";

  Result<bool> A = tryAcquireLease(Path, "alpha", 60'000);
  ASSERT_TRUE(static_cast<bool>(A)) << A.message();
  EXPECT_TRUE(*A);

  // A second owner bounces off the unexpired lease.
  Result<bool> B = tryAcquireLease(Path, "beta", 60'000);
  ASSERT_TRUE(static_cast<bool>(B)) << B.message();
  EXPECT_FALSE(*B);

  // The file names the holder and a future expiry.
  Result<LeaseInfo> Held = readLease(Path);
  ASSERT_TRUE(static_cast<bool>(Held)) << Held.message();
  EXPECT_EQ(Held->Owner, "alpha");
  EXPECT_FALSE(Held->expired(unixMillisNow()));

  // Renewal extends; a non-holder cannot renew.
  EXPECT_FALSE(static_cast<bool>(renewLease(Path, "alpha", 60'000)));
  EXPECT_TRUE(static_cast<bool>(renewLease(Path, "beta", 60'000)));

  // Releasing as a non-holder is a no-op; as the holder it removes.
  releaseLease(Path, "beta");
  EXPECT_TRUE(fs::exists(Path));
  releaseLease(Path, "alpha");
  EXPECT_FALSE(fs::exists(Path));
}

TEST(LeaseTest, ExpiredLeaseCanBeStolen) {
  ScratchDir Scratch("wootz_lease_steal");
  const std::string Path = Scratch.str() + "/job.lease";

  Result<bool> A = tryAcquireLease(Path, "dead", 1);
  ASSERT_TRUE(static_cast<bool>(A) && *A);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  Result<bool> B = tryAcquireLease(Path, "live", 60'000);
  ASSERT_TRUE(static_cast<bool>(B)) << B.message();
  EXPECT_TRUE(*B);
  Result<LeaseInfo> Held = readLease(Path);
  ASSERT_TRUE(static_cast<bool>(Held));
  EXPECT_EQ(Held->Owner, "live");
}

//===----------------------------------------------------------------------===//
// ArtifactStore
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, LayoutHeartbeatAndUsage) {
  ScratchDir Scratch("wootz_artifact_store");

  // Disabled store: every path empty, everything owned locally.
  ArtifactStore Disabled;
  EXPECT_FALSE(Disabled.enabled());
  EXPECT_EQ(Disabled.blockCacheDir(), "");
  EXPECT_TRUE(Disabled.ownsLocally("model/x"));

  ArtifactStoreOptions Options;
  Options.Root = Scratch.str();
  Options.ProcessName = "proc-a";
  ArtifactStore Store(Options);
  EXPECT_TRUE(Store.enabled());
  EXPECT_EQ(Store.blockCacheDir(), Scratch.str() + "/block_cache");
  EXPECT_EQ(Store.modelCacheDir(), Scratch.str() + "/cache");
  EXPECT_EQ(Store.jobsDir(), Scratch.str() + "/jobs");
  EXPECT_EQ(Store.artifactsDir(), Scratch.str() + "/artifacts");
  EXPECT_EQ(Store.modelsDir(), Scratch.str() + "/models");

  // Heartbeat registers the process.
  Error Beat = Store.heartbeat();
  ASSERT_FALSE(static_cast<bool>(Beat)) << Beat.message();
  const std::vector<std::string> Active = Store.activeProcesses();
  ASSERT_EQ(Active.size(), 1u);
  EXPECT_EQ(Active[0], "proc-a");

  // usage() counts regular files one level down.
  fs::create_directories(Store.modelCacheDir());
  ASSERT_FALSE(static_cast<bool>(
      writeFile(Store.modelCacheDir() + "/a.bin", "12345")));
  ASSERT_FALSE(static_cast<bool>(
      writeFile(Store.modelCacheDir() + "/b.bin", "123")));
  const ArtifactUsage Usage = ArtifactStore::usage(Store.modelCacheDir());
  EXPECT_EQ(Usage.Entries, 2u);
  EXPECT_EQ(Usage.Bytes, 8u);

  Store.unregisterProcess();
  EXPECT_TRUE(Store.activeProcesses().empty());
}

TEST(ArtifactStoreTest, RendezvousPlacementIsConsistentAndCovering) {
  ScratchDir Scratch("wootz_artifact_placement");
  ArtifactStoreOptions OptionsA;
  OptionsA.Root = Scratch.str();
  OptionsA.ProcessName = "proc-a";
  ArtifactStoreOptions OptionsB = OptionsA;
  OptionsB.ProcessName = "proc-b";

  ArtifactStore A(OptionsA), B(OptionsB);
  ASSERT_FALSE(static_cast<bool>(A.heartbeat()));
  ASSERT_FALSE(static_cast<bool>(B.heartbeat()));
  ASSERT_EQ(A.activeProcesses().size(), 2u);

  size_t OwnedByA = 0, OwnedByB = 0;
  for (int I = 0; I < 64; ++I) {
    const std::string Key = "model/model-" + std::to_string(I);
    // Every process computes the same owner from the registry alone.
    EXPECT_EQ(A.ownerOf(Key), B.ownerOf(Key));
    // Exactly one of the two processes does the eager work.
    EXPECT_NE(A.ownsLocally(Key), B.ownsLocally(Key)) << Key;
    OwnedByA += A.ownsLocally(Key);
    OwnedByB += B.ownsLocally(Key);
  }
  // Rendezvous hashing spreads keys over both processes.
  EXPECT_GT(OwnedByA, 0u);
  EXPECT_GT(OwnedByB, 0u);

  // A dead peer's keys move to the survivor.
  B.unregisterProcess();
  for (int I = 0; I < 64; ++I)
    EXPECT_TRUE(A.ownsLocally("model/model-" + std::to_string(I)));
}

//===----------------------------------------------------------------------===//
// Durable JobQueue
//===----------------------------------------------------------------------===//

JobQueueOptions queueOptions(const std::string &Dir,
                             const std::string &Owner,
                             double LeaseSeconds = 30.0) {
  JobQueueOptions Options;
  Options.Dir = Dir;
  Options.Owner = Owner;
  Options.LeaseSeconds = LeaseSeconds;
  return Options;
}

std::map<std::string, std::string> stubBody() {
  return {{"model", "stub"}, {"subspace", "stub"}};
}

TEST(JobQueueTest, DurableSubmitIsVisibleToAPeerQueue) {
  ScratchDir Scratch("wootz_jobqueue_visible");
  JobQueue A(queueOptions(Scratch.str(), "proc-a"));
  Result<std::string> Id =
      A.submit(stubBody(), "tiny", "fixed", "l1", 2);
  ASSERT_TRUE(static_cast<bool>(Id)) << Id.message();
  EXPECT_EQ(*Id, "proc-a-job-1");

  // A fresh queue on the same directory imports the journal.
  JobQueue B(queueOptions(Scratch.str(), "proc-b"));
  Result<JobRecord> Seen = B.get(*Id);
  ASSERT_TRUE(static_cast<bool>(Seen)) << Seen.message();
  EXPECT_EQ(Seen->State, JobState::Queued);
  EXPECT_EQ(Seen->ModelName, "tiny");
  EXPECT_EQ(Seen->StrategyName, "fixed");
  EXPECT_EQ(Seen->SubspaceConfigs, 2u);
  EXPECT_EQ(Seen->Body.at("model"), "stub");
  EXPECT_FALSE(Seen->Local);
  EXPECT_EQ(B.queuedCount(), 1u);
}

TEST(JobQueueTest, ClaimIsExclusiveAcrossQueues) {
  ScratchDir Scratch("wootz_jobqueue_exclusive");
  JobQueue A(queueOptions(Scratch.str(), "proc-a"));
  JobQueue B(queueOptions(Scratch.str(), "proc-b"));
  Result<std::string> Id = A.submit(stubBody(), "tiny", "fixed", "l1", 1);
  ASSERT_TRUE(static_cast<bool>(Id));
  B.poll();

  std::optional<JobRecord> ByA = A.claim();
  std::optional<JobRecord> ByB = B.claim();
  // Exactly one queue wins the lease.
  EXPECT_NE(ByA.has_value(), ByB.has_value());
  const JobRecord &Won = ByA ? *ByA : *ByB;
  EXPECT_EQ(Won.Id, *Id);
  EXPECT_EQ(Won.State, JobState::Running);
  EXPECT_EQ(Won.Owner, ByA ? "proc-a" : "proc-b");

  // The winner finishes; both queues converge on the terminal state.
  (ByA ? A : B).finish(Won, JobState::Done, "winner at position 0");
  A.poll();
  B.poll();
  EXPECT_EQ(A.get(*Id)->State, JobState::Done);
  EXPECT_EQ(B.get(*Id)->State, JobState::Done);
  EXPECT_TRUE(A.allSettled());
}

TEST(JobQueueTest, CancelMarkerReachesThePeer) {
  ScratchDir Scratch("wootz_jobqueue_cancel");
  JobQueue A(queueOptions(Scratch.str(), "proc-a"));
  JobQueue B(queueOptions(Scratch.str(), "proc-b"));

  // A queued job cancels immediately, on any process.
  Result<std::string> Queued =
      A.submit(stubBody(), "tiny", "fixed", "l1", 1);
  B.poll();
  Result<JobState> AfterQueued = B.requestCancel(*Queued);
  ASSERT_TRUE(static_cast<bool>(AfterQueued));
  EXPECT_EQ(*AfterQueued, JobState::Cancelled);
  A.poll();
  EXPECT_EQ(A.get(*Queued)->State, JobState::Cancelled);
  EXPECT_EQ(A.get(*Queued)->Message, "cancelled while queued");

  // A running job gets a durable marker its owner observes.
  Result<std::string> Running =
      A.submit(stubBody(), "tiny", "fixed", "l1", 1);
  std::optional<JobRecord> Claimed = A.claim();
  ASSERT_TRUE(Claimed.has_value());
  B.poll();
  Result<JobState> AfterRunning = B.requestCancel(*Running);
  ASSERT_TRUE(static_cast<bool>(AfterRunning));
  EXPECT_EQ(*AfterRunning, JobState::Running);
  EXPECT_TRUE(A.cancelRequested(*Running));

  // Unknown ids keep the old message shape.
  Result<JobState> Unknown = B.requestCancel("job-999");
  ASSERT_FALSE(static_cast<bool>(Unknown));
  EXPECT_EQ(Unknown.message(), "no such job 'job-999'");

  A.finish(*Claimed, JobState::Cancelled, "cancelled while running");
}

TEST(JobQueueTest, ExpiredLeaseIsReclaimedByALiveQueue) {
  ScratchDir Scratch("wootz_jobqueue_reclaim");
  std::string Id;
  {
    // The "crashing" owner: claims with a tiny TTL, never finishes.
    JobQueue Dead(queueOptions(Scratch.str(), "dead-proc", 0.05));
    Result<std::string> Submitted =
        Dead.submit(stubBody(), "tiny", "fixed", "l1", 1);
    ASSERT_TRUE(static_cast<bool>(Submitted));
    Id = *Submitted;
    ASSERT_TRUE(Dead.claim().has_value());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  RunLog Log;
  JobQueue Live(queueOptions(Scratch.str(), "live-proc"), &Log);
  // The constructor's poll already reclaimed; a second poll is stable.
  Result<JobRecord> Seen = Live.get(Id);
  ASSERT_TRUE(static_cast<bool>(Seen)) << Seen.message();
  EXPECT_EQ(Seen->State, JobState::Queued);
  EXPECT_EQ(Seen->Reclaims, 1);
  EXPECT_EQ(Seen->Message,
            "reclaimed after lease expiry (owner 'dead-proc')");
  EXPECT_EQ(Log.counters().at("serve.jobs.reclaimed"), 1);

  // And it is claimable here.
  std::optional<JobRecord> Claimed = Live.claim();
  ASSERT_TRUE(Claimed.has_value());
  EXPECT_EQ(Claimed->Owner, "live-proc");
  Live.finish(*Claimed, JobState::Done, "");
}

//===----------------------------------------------------------------------===//
// Facade options validation
//===----------------------------------------------------------------------===//

TEST(JobManagerOptionsTest, NegativeWorkersIsRejected) {
  JobManagerOptions Options;
  Options.Workers = -1;
  JobManager Manager(Options, nullptr, nullptr);
  EXPECT_EQ(Manager.optionsError(),
            "JobManagerOptions::Workers must be non-negative "
            "(0 means one worker per hardware thread)");

  // The server surfaces the error at start() instead of listening.
  ServerOptions Server;
  Server.Jobs.Workers = -2;
  WootzServer Daemon(Server);
  Error Started = Daemon.start();
  ASSERT_TRUE(static_cast<bool>(Started));
  EXPECT_NE(Started.message().find("must be non-negative"),
            std::string::npos);
}

TEST(JobManagerOptionsTest, ZeroWorkersMeansHardwareConcurrency) {
  JobManagerOptions Options;
  Options.Workers = 0;
  JobManager Manager(Options, nullptr, nullptr);
  EXPECT_TRUE(Manager.optionsError().empty());
}

//===----------------------------------------------------------------------===//
// Crash recovery with a warm block cache
//===----------------------------------------------------------------------===//

TEST(JobRecoveryTest, ReclaimedJobRerunsWarmAndMatchesTheColdResult) {
  ScratchDir Scratch("wootz_job_recovery");
  JobManagerOptions Shared;
  Shared.Workers = 1;
  Shared.QueueDir = Scratch.str() + "/jobs";
  Shared.BlockCacheDir = Scratch.str() + "/block_cache";
  Shared.CacheDir = Scratch.str() + "/cache";
  Shared.ArtifactDir = Scratch.str() + "/artifacts";
  Shared.PollSeconds = 0.05;

  // Cold run: executes normally, populating the shared block cache.
  std::string ColdId, ColdStatus;
  {
    JobManagerOptions Options = Shared;
    Options.Owner = "proc-cold";
    RunLog Log;
    JobManager Cold(Options, nullptr, &Log);
    const SubmitOutcome Submitted = Cold.submit(tinyJobBody());
    ASSERT_EQ(Submitted.Status, 202) << Submitted.Error;
    ColdId = Submitted.Id;
    ASSERT_EQ(waitForTerminal(Cold, ColdId), "done");
    const std::map<std::string, int64_t> Counters =
        Cold.executor().countersFor(ColdId);
    EXPECT_GT(Counters.at("cache.miss"), 0); // Trained its blocks cold.
    ColdStatus = *Cold.statusJson(ColdId);
    Cold.drain();
  }

  // Simulated crash: a raw queue claims an identical job with a tiny
  // lease TTL and dies without finishing — the journal says running,
  // the lease expires, nobody heartbeats.
  std::string CrashedId;
  {
    JobQueue Dead(queueOptions(Shared.QueueDir, "dead-proc", 0.05));
    Result<std::string> Submitted =
        Dead.submit(tinyJobBody(), "resnet_a", "fixed", "l1", 2);
    ASSERT_TRUE(static_cast<bool>(Submitted));
    CrashedId = *Submitted;
    ASSERT_TRUE(Dead.claim().has_value());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  // Restart: a fresh manager reclaims the orphan and reruns it. The
  // warm cache satisfies every block, and the result reproduces the
  // cold run bit-exactly (deterministic training + identical inputs).
  JobManagerOptions Options = Shared;
  Options.Owner = "proc-warm";
  RunLog Log;
  JobManager Warm(Options, nullptr, &Log);
  ASSERT_EQ(waitForTerminal(Warm, CrashedId), "done");
  EXPECT_GE(Log.counters().at("serve.jobs.reclaimed"), 1);
  Result<JobRecord> Reran = Warm.queue().get(CrashedId);
  ASSERT_TRUE(static_cast<bool>(Reran));
  EXPECT_EQ(Reran->Reclaims, 1);
  EXPECT_EQ(Reran->Owner, "proc-warm");

  const std::map<std::string, int64_t> Counters =
      Warm.executor().countersFor(CrashedId);
  EXPECT_GT(Counters.at("cache.hit"), 0);
  EXPECT_EQ(Counters.count("cache.miss"), 0u); // Pre-trained zero blocks.

  const std::string WarmStatus = *Warm.statusJson(CrashedId);
  for (const char *Field :
       {"winner_index", "winner_accuracy", "winner_size_fraction",
        "full_accuracy", "configs_evaluated"})
    EXPECT_EQ(jsonField(WarmStatus, Field), jsonField(ColdStatus, Field))
        << Field;
  Warm.drain();
}

//===----------------------------------------------------------------------===//
// Two daemons, one artifact store
//===----------------------------------------------------------------------===//

TEST(MultiProcessServeTest, TwoDaemonsShareModelsJobsAndBlockCache) {
  ScratchDir Scratch("wootz_two_daemons");

  // Daemon A submits and observes but never executes; daemon B has the
  // only executor — every job accepted by A must run on B.
  ServerOptions OptionsA;
  OptionsA.Artifacts.Root = Scratch.str();
  OptionsA.Artifacts.ProcessName = "proc-a";
  OptionsA.Jobs.ExecuteJobs = false;
  OptionsA.Jobs.PollSeconds = 0.05;
  ServerOptions OptionsB;
  OptionsB.Artifacts.Root = Scratch.str();
  OptionsB.Artifacts.ProcessName = "proc-b";
  OptionsB.Jobs.Workers = 1;
  OptionsB.Jobs.PollSeconds = 0.05;

  WootzServer A(OptionsA);
  ASSERT_FALSE(static_cast<bool>(A.start()));
  WootzServer B(OptionsB);
  ASSERT_FALSE(static_cast<bool>(B.start()));

  // Upload through A, predict through B: the model is persisted under
  // the shared root and lazily restored by the daemon that is asked.
  JsonObject Upload;
  Upload.field("id", "shared-model").field("model", tinyModelText());
  Result<std::string> Uploaded = rawRequest(
      A.port(), makeRequest("POST", "/v1/models", Upload.str()));
  ASSERT_TRUE(static_cast<bool>(Uploaded)) << Uploaded.message();
  ASSERT_EQ(statusOf(*Uploaded), 201) << *Uploaded;

  Result<ModelSpec> Spec = parseModelSpec(tinyModelText());
  std::string Input;
  const int Count =
      Spec->InputChannels * Spec->InputHeight * Spec->InputWidth;
  for (int I = 0; I < Count; ++I)
    Input += (I ? " " : "") + formatDouble(0.01 * (I % 11), 3);
  JsonObject PredictBody;
  PredictBody.field("input", Input);
  Result<std::string> Predicted = rawRequest(
      B.port(), makeRequest("POST", "/v1/models/shared-model/predict",
                            PredictBody.str()));
  ASSERT_TRUE(static_cast<bool>(Predicted)) << Predicted.message();
  ASSERT_EQ(statusOf(*Predicted), 200) << *Predicted;
  EXPECT_GE(B.log().counters().at("serve.models.restored"), 1);

  // Submit a strategy job to A — by uploaded-model id, which B resolves
  // from the shared store at claim time — and wait for B to finish it.
  const std::map<std::string, std::string> JobExtra = {
      {"model", "shared-model"},
      {"strategy", "greedy"},
      {"max_rounds", "2"}};
  Result<std::string> Accepted = rawRequest(
      A.port(), makeRequest("POST", "/v1/jobs", tinyJobJson(JobExtra)));
  ASSERT_TRUE(static_cast<bool>(Accepted)) << Accepted.message();
  ASSERT_EQ(statusOf(*Accepted), 202) << *Accepted;
  const std::string FirstId = jsonField(bodyOf(*Accepted), "id");
  ASSERT_FALSE(FirstId.empty());
  const std::string Id1 = FirstId.substr(1, FirstId.size() - 2); // Unquote.

  ASSERT_EQ(waitForTerminal(A.jobs(), Id1), "done");
  // A never ran it; B did.
  EXPECT_TRUE(A.jobs().executor().countersFor(Id1).empty());
  const std::map<std::string, int64_t> Cold =
      B.jobs().executor().countersFor(Id1);
  ASSERT_FALSE(Cold.empty());
  EXPECT_GT(Cold.at("cache.miss"), 0);
  EXPECT_EQ(B.jobs().queue().get(Id1)->Owner, "proc-b");

  // A second identical job pre-trains zero blocks: every tuning block
  // comes from the shared cache, no matter which process executes.
  Result<std::string> Accepted2 = rawRequest(
      A.port(), makeRequest("POST", "/v1/jobs", tinyJobJson(JobExtra)));
  ASSERT_TRUE(static_cast<bool>(Accepted2));
  ASSERT_EQ(statusOf(*Accepted2), 202) << *Accepted2;
  const std::string SecondId = jsonField(bodyOf(*Accepted2), "id");
  const std::string Id2 = SecondId.substr(1, SecondId.size() - 2);
  ASSERT_EQ(waitForTerminal(A.jobs(), Id2), "done");

  const std::map<std::string, int64_t> Hot =
      B.jobs().executor().countersFor(Id2);
  ASSERT_FALSE(Hot.empty());
  EXPECT_GT(Hot.at("cache.hit"), 0);
  EXPECT_EQ(Hot.count("cache.miss"), 0u);
  EXPECT_GT(Hot.at("strategy.blocks_reused"), 0);

  // Both daemons expose the shared tier on /metrics.
  Result<std::string> Metrics =
      rawRequest(A.port(), makeRequest("GET", "/metrics", ""));
  ASSERT_TRUE(static_cast<bool>(Metrics));
  const std::string Text = bodyOf(*Metrics);
  EXPECT_NE(Text.find("wootz_artifact_processes 2"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("wootz_artifact_entries{tier=\"models\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("wootz_counter{scope=\"contexts\","
                      "name=\"serve.contexts."),
            std::string::npos);

  B.drain();
  A.drain();
}

} // namespace
