# Runs wootz_cli into a scratch directory and byte-compiles every
# generated Python script: the compiler's emitted code must be valid
# Python, not just plausible-looking text.
if(NOT DEFINED CLI OR NOT DEFINED PY)
  message(FATAL_ERROR "usage: cmake -DCLI=<wootz_cli> -DPY=<python3> -P ...")
endif()
# Sample-input mode writes everything under ./wootz_run in the working
# directory.
file(REMOVE_RECURSE ${CMAKE_CURRENT_BINARY_DIR}/wootz_run)
execute_process(
  COMMAND ${CLI}
  WORKING_DIRECTORY ${CMAKE_CURRENT_BINARY_DIR}
  RESULT_VARIABLE RUN_RESULT
  OUTPUT_QUIET)
if(NOT RUN_RESULT EQUAL 0)
  message(FATAL_ERROR "wootz_cli failed with ${RUN_RESULT}")
endif()
file(GLOB SCRIPTS ${CMAKE_CURRENT_BINARY_DIR}/wootz_run/generated/*.py)
list(LENGTH SCRIPTS SCRIPT_COUNT)
if(SCRIPT_COUNT LESS 3)
  message(FATAL_ERROR "expected 3 generated scripts, found ${SCRIPT_COUNT}")
endif()
foreach(SCRIPT ${SCRIPTS})
  execute_process(COMMAND ${PY} -m py_compile ${SCRIPT}
                  RESULT_VARIABLE PY_RESULT)
  if(NOT PY_RESULT EQUAL 0)
    message(FATAL_ERROR "generated script does not compile: ${SCRIPT}")
  endif()
endforeach()
message(STATUS "all ${SCRIPT_COUNT} generated scripts byte-compile")
