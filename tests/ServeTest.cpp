//===- tests/ServeTest.cpp - pruning-as-a-service daemon tests -------------===//
//
// Covers the serve subsystem bottom-up: the HTTP parser against malformed
// and fuzzed input (every violation must be a definite 4xx/5xx, never a
// crash), the router, the Prometheus metrics pieces, the micro-batcher,
// the job manager (lifecycle, cancellation, backpressure, drain), and the
// assembled daemon end to end over real sockets — including a concurrent
// mixed-traffic soak and the graceful-drain guarantee that every accepted
// job reaches a terminal state.
//
//===----------------------------------------------------------------------===//

#include "src/serve/Server.h"

#include "src/compiler/GraphBuilder.h"
#include "src/compiler/Solver.h"
#include "src/data/Synthetic.h"
#include "src/models/MiniModels.h"
#include "src/nn/Serialize.h"
#include "src/pruning/PruneConfig.h"
#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/support/StringUtils.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <thread>

using namespace wootz;
using namespace wootz::serve;

namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory that cleans up after itself.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path((fs::temp_directory_path() / Name).string()) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ignored;
    fs::remove_all(Path, Ignored);
  }
  const std::string &str() const { return Path; }

private:
  std::string Path;
};

//===----------------------------------------------------------------------===//
// A minimal blocking HTTP client (tests only).
//===----------------------------------------------------------------------===//

/// Sends \p Raw to 127.0.0.1:\p Port and reads until the server closes.
Result<std::string> rawRequest(int Port, const std::string &Raw) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Error::failure("socket() failed");
  timeval Timeout{};
  Timeout.tv_sec = 30;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));
  sockaddr_in Address{};
  Address.sin_family = AF_INET;
  Address.sin_port = htons(static_cast<uint16_t>(Port));
  Address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Address),
                sizeof(Address)) != 0) {
    ::close(Fd);
    return Error::failure("connect() failed");
  }
  size_t Sent = 0;
  while (Sent < Raw.size()) {
    const ssize_t N = ::send(Fd, Raw.data() + Sent, Raw.size() - Sent, 0);
    if (N <= 0) {
      ::close(Fd);
      return Error::failure("send() failed");
    }
    Sent += static_cast<size_t>(N);
  }
  std::string Response;
  char Buffer[4096];
  while (true) {
    const ssize_t N = ::recv(Fd, Buffer, sizeof(Buffer), 0);
    if (N < 0) {
      // A server that answers without draining the request (e.g. the
      // early-503 paths) closes with unread data, which the kernel turns
      // into an RST; the response bytes still arrived first, so a reset
      // after data is a completed exchange, not a failure.
      if (!Response.empty())
        break;
      ::close(Fd);
      return Error::failure("recv() failed");
    }
    if (N == 0)
      break;
    Response.append(Buffer, static_cast<size_t>(N));
  }
  ::close(Fd);
  if (Response.empty())
    return Error::failure("empty response");
  return Response;
}

/// Builds a well-formed request with a body.
std::string makeRequest(const std::string &Method, const std::string &Target,
                        const std::string &Body) {
  return Method + " " + Target + " HTTP/1.1\r\nHost: test\r\n" +
         (Body.empty() ? std::string()
                       : "Content-Length: " + std::to_string(Body.size()) +
                             "\r\n") +
         "\r\n" + Body;
}

/// Status code of a serialized response.
int statusOf(const std::string &Response) {
  if (Response.size() < 12 || Response.compare(0, 9, "HTTP/1.1 ") != 0)
    return -1;
  Result<long long> Code = parseInteger(Response.substr(9, 3));
  return Code ? static_cast<int>(*Code) : -1;
}

/// Body (everything after the blank line) of a serialized response.
std::string bodyOf(const std::string &Response) {
  const size_t At = Response.find("\r\n\r\n");
  return At == std::string::npos ? std::string()
                                 : Response.substr(At + 4);
}

//===----------------------------------------------------------------------===//
// Shared tiny inputs for job tests.
//===----------------------------------------------------------------------===//

std::string tinyModelText() {
  return standardModelPrototxt(StandardModel::ResNetA, 4);
}

std::string tinyMetaText(int FullModelSteps = 30) {
  TrainMeta Meta;
  Meta.FullModelSteps = FullModelSteps;
  Meta.PretrainSteps = 12;
  Meta.FinetuneSteps = 8;
  Meta.EvalEvery = 8;
  Meta.BatchSize = 8;
  return printTrainMeta(Meta);
}

std::string tinySubspaceText() {
  Result<ModelSpec> Spec = parseModelSpec(tinyModelText());
  PruneConfig A(Spec->moduleCount(), 0.0f);
  A[0] = 0.5f;
  PruneConfig B(Spec->moduleCount(), 0.0f);
  B[0] = 0.3f;
  return printSubspaceSpec({A, B});
}

/// Always-satisfied objective: the smallest configuration wins, and under
/// the Overlap schedule everything after it is cascade-cancelled.
std::string easyObjectiveText() {
  return "min ModelSize\nconstraint Accuracy >= 0.0\n";
}

std::map<std::string, std::string> tinyJobBody(int FullModelSteps = 30) {
  return {{"model", tinyModelText()},
          {"subspace", tinySubspaceText()},
          {"meta", tinyMetaText(FullModelSteps)},
          {"objective", easyObjectiveText()},
          {"dataset_scale", "0.1"},
          {"workers", "2"},
          // Per-module blocks: the two-config subspace is too small for
          // the sequitur identifier to find a repeated pattern, and the
          // tests below want guaranteed pre-training + cache traffic.
          {"identifier", "false"}};
}

std::string tinyJobJson() {
  JsonObject Body;
  for (const auto &[Key, Value] : tinyJobBody())
    Body.field(Key, Value);
  return Body.str();
}

/// Polls \p Manager until \p Id reaches a terminal state.
std::string waitForTerminal(JobManager &Manager, const std::string &Id,
                            int TimeoutSeconds = 120) {
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(TimeoutSeconds);
  while (std::chrono::steady_clock::now() < Deadline) {
    Result<std::string> Status = Manager.statusJson(Id);
    if (!Status)
      return "";
    for (const char *State : {"done", "failed", "cancelled"})
      if (Status->find("\"state\":\"" + std::string(State) + "\"") !=
          std::string::npos)
        return State;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return "timeout";
}

//===----------------------------------------------------------------------===//
// HTTP parser
//===----------------------------------------------------------------------===//

TEST(ServeHttpParserTest, ParsesACompleteRequest) {
  Result<HttpRequest> Request = parseHttpRequest(
      "POST /v1/jobs?debug=1 HTTP/1.1\r\nHost: x\r\n"
      "Content-Type: application/json\r\nContent-Length: 4\r\n\r\nbody");
  ASSERT_TRUE(static_cast<bool>(Request)) << Request.message();
  EXPECT_EQ(Request->Method, "POST");
  EXPECT_EQ(Request->Target, "/v1/jobs?debug=1");
  EXPECT_EQ(Request->path(), "/v1/jobs");
  EXPECT_EQ(Request->Body, "body");
  // Header names are lowercased on the way in.
  EXPECT_EQ(Request->header("content-type"), "application/json");
  EXPECT_EQ(Request->header("host"), "x");
}

TEST(ServeHttpParserTest, ParsesIncrementallyByteByByte) {
  const std::string Raw =
      "GET /metrics HTTP/1.1\r\nHost: a\r\nX-Probe: yes\r\n\r\n";
  HttpRequestParser Parser;
  for (size_t I = 0; I + 1 < Raw.size(); ++I)
    ASSERT_NE(Parser.consume(Raw.substr(I, 1)),
              HttpRequestParser::State::Failed)
        << "byte " << I;
  ASSERT_EQ(Parser.consume(Raw.substr(Raw.size() - 1)),
            HttpRequestParser::State::Complete);
  EXPECT_EQ(Parser.take().header("x-probe"), "yes");
}

TEST(ServeHttpParserTest, RejectsGarbageRequestLine) {
  HttpRequestParser Parser;
  EXPECT_EQ(Parser.consume("complete garbage\r\n\r\n"),
            HttpRequestParser::State::Failed);
  EXPECT_GE(Parser.errorStatus(), 400);
  EXPECT_LT(Parser.errorStatus(), 600);
}

TEST(ServeHttpParserTest, RejectsUnsupportedVersion) {
  HttpRequestParser Parser;
  EXPECT_EQ(Parser.consume("GET / HTTP/2.0\r\n\r\n"),
            HttpRequestParser::State::Failed);
  EXPECT_EQ(Parser.errorStatus(), 505);
}

TEST(ServeHttpParserTest, RejectsOversizedHeaderBlock) {
  HttpLimits Limits;
  Limits.MaxHeaderBytes = 64;
  HttpRequestParser Parser(Limits);
  const std::string Big(128, 'a');
  EXPECT_EQ(Parser.consume("GET / HTTP/1.1\r\nX-Big: " + Big + "\r\n\r\n"),
            HttpRequestParser::State::Failed);
  EXPECT_EQ(Parser.errorStatus(), 431);
}

TEST(ServeHttpParserTest, RejectsTooManyHeaders) {
  HttpLimits Limits;
  Limits.MaxHeaderCount = 3;
  HttpRequestParser Parser(Limits);
  std::string Raw = "GET / HTTP/1.1\r\n";
  for (int I = 0; I < 5; ++I)
    Raw += "X-H" + std::to_string(I) + ": v\r\n";
  EXPECT_EQ(Parser.consume(Raw + "\r\n"),
            HttpRequestParser::State::Failed);
  EXPECT_EQ(Parser.errorStatus(), 431);
}

TEST(ServeHttpParserTest, RejectsMalformedContentLength) {
  HttpRequestParser Parser;
  EXPECT_EQ(
      Parser.consume("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
      HttpRequestParser::State::Failed);
  EXPECT_EQ(Parser.errorStatus(), 400);
}

TEST(ServeHttpParserTest, RejectsOversizedBody) {
  HttpLimits Limits;
  Limits.MaxBodyBytes = 16;
  HttpRequestParser Parser(Limits);
  EXPECT_EQ(
      Parser.consume("POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n"),
      HttpRequestParser::State::Failed);
  EXPECT_EQ(Parser.errorStatus(), 413);
}

TEST(ServeHttpParserTest, RejectsTransferEncoding) {
  HttpRequestParser Parser;
  EXPECT_EQ(Parser.consume("POST / HTTP/1.1\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n"),
            HttpRequestParser::State::Failed);
  EXPECT_EQ(Parser.errorStatus(), 501);
}

TEST(ServeHttpParserTest, RejectsBytesBeyondTheDeclaredBody) {
  HttpRequestParser Parser;
  EXPECT_EQ(Parser.consume("POST / HTTP/1.1\r\nContent-Length: 2\r\n"
                           "\r\nabEXTRA"),
            HttpRequestParser::State::Failed);
  EXPECT_EQ(Parser.errorStatus(), 400);
}

TEST(ServeHttpParserTest, FuzzedGarbageNeverEscapesTheStatusContract) {
  Rng Generator(0xF00D);
  const std::string Seed =
      "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
  for (int Round = 0; Round < 400; ++Round) {
    std::string Raw;
    if (Round % 2 == 0) {
      // Pure random bytes.
      const int Length = 1 + static_cast<int>(Generator.nextBelow(200));
      for (int I = 0; I < Length; ++I)
        Raw += static_cast<char>(Generator.nextBelow(256));
    } else {
      // A valid request with random corruptions.
      Raw = Seed;
      const int Edits = 1 + static_cast<int>(Generator.nextBelow(8));
      for (int I = 0; I < Edits; ++I)
        Raw[Generator.nextBelow(Raw.size())] =
            static_cast<char>(Generator.nextBelow(256));
    }
    HttpRequestParser Parser;
    // Feed in random-sized chunks; the parser must land in a defined
    // state and report a well-formed status when it fails.
    size_t At = 0;
    while (At < Raw.size() &&
           Parser.state() != HttpRequestParser::State::Failed &&
           Parser.state() != HttpRequestParser::State::Complete) {
      const size_t Chunk =
          std::min(Raw.size() - At, 1 + Generator.nextBelow(40));
      Parser.consume(std::string_view(Raw).substr(At, Chunk));
      At += Chunk;
    }
    if (Parser.state() == HttpRequestParser::State::Failed) {
      EXPECT_GE(Parser.errorStatus(), 400);
      EXPECT_LT(Parser.errorStatus(), 600);
    }
  }
}

//===----------------------------------------------------------------------===//
// Router
//===----------------------------------------------------------------------===//

TEST(ServeRouterTest, DispatchesLiteralAndParameterRoutes) {
  Router Routes;
  Routes.add("GET", "/v1/jobs",
             [](const HttpRequest &, const std::vector<std::string> &) {
               HttpResponse Out;
               Out.Body = "list";
               return Out;
             });
  Routes.add("POST", "/v1/models/:id/predict",
             [](const HttpRequest &,
                const std::vector<std::string> &Params) {
               HttpResponse Out;
               Out.Body = "predict:" + Params[0];
               return Out;
             });

  HttpRequest List;
  List.Method = "GET";
  List.Target = "/v1/jobs";
  EXPECT_EQ(Routes.dispatch(List).Body, "list");

  HttpRequest Predict;
  Predict.Method = "POST";
  Predict.Target = "/v1/models/job-7/predict?x=1";
  EXPECT_EQ(Routes.dispatch(Predict).Body, "predict:job-7");
}

TEST(ServeRouterTest, UnknownPathIs404) {
  Router Routes;
  Routes.add("GET", "/a",
             [](const HttpRequest &, const std::vector<std::string> &) {
               return HttpResponse();
             });
  HttpRequest Request;
  Request.Method = "GET";
  Request.Target = "/b";
  EXPECT_EQ(Routes.dispatch(Request).Status, 404);
}

TEST(ServeRouterTest, WrongMethodIs405WithAllow) {
  Router Routes;
  Routes.add("GET", "/thing",
             [](const HttpRequest &, const std::vector<std::string> &) {
               return HttpResponse();
             });
  Routes.add("DELETE", "/thing",
             [](const HttpRequest &, const std::vector<std::string> &) {
               return HttpResponse();
             });
  HttpRequest Request;
  Request.Method = "POST";
  Request.Target = "/thing";
  const HttpResponse Out = Routes.dispatch(Request);
  EXPECT_EQ(Out.Status, 405);
  bool SawAllow = false;
  for (const auto &[Name, Value] : Out.ExtraHeaders)
    if (Name == "Allow") {
      SawAllow = true;
      EXPECT_NE(Value.find("GET"), std::string::npos);
      EXPECT_NE(Value.find("DELETE"), std::string::npos);
    }
  EXPECT_TRUE(SawAllow);
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(ServeMetricsTest, HistogramCountsSumAndQuantiles) {
  LatencyHistogram Histogram;
  EXPECT_EQ(Histogram.quantile(0.5), 0.0);
  for (int I = 0; I < 90; ++I)
    Histogram.record(0.002); // (0.001, 0.0025] bucket.
  for (int I = 0; I < 10; ++I)
    Histogram.record(0.2); // (0.1, 0.25] bucket.
  EXPECT_EQ(Histogram.count(), 100);
  EXPECT_NEAR(Histogram.sum(), 90 * 0.002 + 10 * 0.2, 1e-9);
  const double P50 = Histogram.quantile(0.5);
  EXPECT_GT(P50, 0.001);
  EXPECT_LE(P50, 0.0025);
  const double P99 = Histogram.quantile(0.99);
  EXPECT_GT(P99, 0.1);
  EXPECT_LE(P99, 0.25);
}

TEST(ServeMetricsTest, HistogramRendersPrometheusShape) {
  LatencyHistogram Histogram;
  Histogram.record(0.002);
  const std::string Text =
      Histogram.prometheus("x_seconds", "path=\"p\"");
  EXPECT_NE(Text.find("# TYPE x_seconds histogram\n"), std::string::npos);
  EXPECT_NE(Text.find("x_seconds_bucket{path=\"p\",le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("x_seconds_count{path=\"p\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("x_seconds_sum{path=\"p\"} "), std::string::npos);
}

TEST(ServeMetricsTest, CounterMapEmitsOneTypeLineAndEscapesLabels) {
  bool TypeEmitted = false;
  const std::string Text = prometheusCounterMap(
      "wootz_counter", "with\"quote",
      {{"cache.hit", 3}, {"tasks_done", 7}}, TypeEmitted);
  EXPECT_EQ(Text.find("# TYPE wootz_counter counter\n"), 0u);
  // Only one TYPE line even across two samples.
  EXPECT_EQ(Text.rfind("# TYPE"), 0u);
  EXPECT_NE(Text.find("scope=\"with\\\"quote\",name=\"cache.hit\"} 3"),
            std::string::npos);
  EXPECT_NE(Text.find("name=\"tasks_done\"} 7"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// HttpServer (socket level)
//===----------------------------------------------------------------------===//

TEST(ServeHttpServerTest, ServesARequestOverARealSocket) {
  HttpServerOptions Options;
  Options.Workers = 2;
  HttpServer Server(
      Options,
      [](const HttpRequest &Request) {
        HttpResponse Out;
        Out.Body = "echo:" + Request.path();
        return Out;
      },
      nullptr);
  Error Started = Server.start();
  ASSERT_FALSE(static_cast<bool>(Started)) << Started.message();
  ASSERT_GT(Server.port(), 0);

  Result<std::string> Response =
      rawRequest(Server.port(), makeRequest("GET", "/ping", ""));
  ASSERT_TRUE(static_cast<bool>(Response)) << Response.message();
  EXPECT_EQ(statusOf(*Response), 200);
  EXPECT_EQ(bodyOf(*Response), "echo:/ping");
  Server.finishDrain();
}

TEST(ServeHttpServerTest, MalformedRequestsGet4xxNotACrash) {
  HttpServerOptions Options;
  Options.Workers = 2;
  HttpServer Server(
      Options, [](const HttpRequest &) { return HttpResponse(); },
      nullptr);
  ASSERT_FALSE(static_cast<bool>(Server.start()));
  for (const std::string &Raw :
       {std::string("junk\r\n\r\n"),
        std::string("GET / HTTP/3.0\r\n\r\n"),
        std::string("POST / HTTP/1.1\r\nContent-Length: zap\r\n\r\n"),
        std::string("POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcd"),
        std::string("\r\n\r\n")}) {
    Result<std::string> Response = rawRequest(Server.port(), Raw);
    ASSERT_TRUE(static_cast<bool>(Response)) << Response.message();
    EXPECT_GE(statusOf(*Response), 400) << Raw;
    EXPECT_LT(statusOf(*Response), 600) << Raw;
  }
  Server.finishDrain();
}

TEST(ServeHttpServerTest, OverloadIsAnswered503) {
  std::promise<void> Release;
  std::shared_future<void> Released = Release.get_future().share();
  HttpServerOptions Options;
  Options.Workers = 2;
  Options.MaxQueuedConnections = 1;
  HttpServer Server(
      Options,
      [Released](const HttpRequest &) {
        Released.wait();
        return HttpResponse();
      },
      nullptr);
  ASSERT_FALSE(static_cast<bool>(Server.start()));

  std::thread Blocked([&] {
    Result<std::string> Response =
        rawRequest(Server.port(), makeRequest("GET", "/slow", ""));
    EXPECT_TRUE(static_cast<bool>(Response));
  });
  // Wait until the slow request is admitted, then hit the gate.
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (Server.queueDepth() < 1 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_GE(Server.queueDepth(), 1u);

  Result<std::string> Overloaded =
      rawRequest(Server.port(), makeRequest("GET", "/fast", ""));

  // Join the helper before asserting so a failure can't return out of
  // the test body past a joinable thread (which would terminate()).
  Release.set_value();
  Blocked.join();

  ASSERT_TRUE(static_cast<bool>(Overloaded)) << Overloaded.message();
  EXPECT_EQ(statusOf(*Overloaded), 503);
  Server.finishDrain();
}

TEST(ServeHttpServerTest, DrainStopsAcceptingNewConnections) {
  HttpServerOptions Options;
  Options.Workers = 2;
  HttpServer Server(
      Options, [](const HttpRequest &) { return HttpResponse(); },
      nullptr);
  ASSERT_FALSE(static_cast<bool>(Server.start()));
  const int Port = Server.port();
  Server.beginDrain();
  // The listen socket is closed: a new connection is refused outright
  // (or, in the accept-race window, answered 503).
  Result<std::string> Response =
      rawRequest(Port, makeRequest("GET", "/late", ""));
  if (Response) {
    EXPECT_EQ(statusOf(*Response), 503);
  }
  Server.finishDrain();
  EXPECT_TRUE(Server.draining());
}

//===----------------------------------------------------------------------===//
// Batcher (needs a real trained network; built once, reused)
//===----------------------------------------------------------------------===//

struct BuiltModel {
  std::shared_ptr<AssembledNetwork> Network;
  int Channels = 3;
  int Height = 8;
  int Width = 8;
  int Classes = 4;
};

/// Trains one tiny pruned network through the pipeline (baseline mode,
/// KeepNetworks) exactly once for all batcher tests.
const BuiltModel &builtModel() {
  static const BuiltModel Model = [] {
    BuiltModel Out;
    Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 4);
    EXPECT_TRUE(static_cast<bool>(Spec)) << Spec.message();
    SyntheticSpec DataSpec;
    DataSpec.Classes = 4;
    DataSpec.TrainPerClass = 12;
    DataSpec.TestPerClass = 6;
    DataSpec.Seed = 29;
    const Dataset Data = generateSynthetic(DataSpec);
    TrainMeta Meta;
    Meta.FullModelSteps = 30;
    Meta.FinetuneSteps = 8;
    Meta.EvalEvery = 8;
    PruneConfig Config(Spec->moduleCount(), 0.0f);
    Config[0] = 0.5f;
    PipelineOptions Options;
    Options.KeepNetworks = true;
    Rng Generator(17);
    Result<PipelineResult> Run = runPruningPipeline(
        *Spec, Data, {Config}, Meta, Options, Generator);
    EXPECT_TRUE(static_cast<bool>(Run)) << Run.message();
    if (Run && !Run->Evaluations.empty())
      Out.Network = Run->Evaluations.front().Network;
    Out.Channels = Spec->InputChannels;
    Out.Height = Spec->InputHeight;
    Out.Width = Spec->InputWidth;
    return Out;
  }();
  return Model;
}

Tensor sampleInput(const BuiltModel &Model, float Fill) {
  Tensor Sample(
      Shape{1, Model.Channels, Model.Height, Model.Width});
  for (size_t I = 0; I < Sample.size(); ++I)
    Sample.data()[I] = Fill + 0.001f * static_cast<float>(I % 7);
  return Sample;
}

TEST(ServeBatcherTest, PredictsASingleSample) {
  const BuiltModel &Model = builtModel();
  ASSERT_TRUE(Model.Network);
  RunLog Log;
  Batcher Engine(Model.Network, BatcherOptions(), &Log, nullptr);
  const Tensor Sample = sampleInput(Model, 0.1f);
  Result<Prediction> Out = Engine.predict(Sample);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Logits.shape().rank(), 1);
  EXPECT_EQ(Out->Logits.shape()[0], Model.Classes);
  EXPECT_GE(Out->ArgMax, 0);
  EXPECT_LT(Out->ArgMax, Model.Classes);
  EXPECT_GE(Out->BatchSize, 1);
  Engine.stop();
  EXPECT_EQ(Log.counters().at("serve.predict.requests"), 1);
  EXPECT_EQ(Log.counters().at("serve.predict.batched_samples"), 1);
}

TEST(ServeBatcherTest, CoalescesConcurrentRequestsIntoSharedBatches) {
  const BuiltModel &Model = builtModel();
  ASSERT_TRUE(Model.Network);
  RunLog Log;
  LatencyHistogram Latency;
  BatcherOptions Options;
  Options.MaxBatch = 8;
  Options.MaxWaitMicros = 100000; // Generous: coalescing must win.
  Batcher Engine(Model.Network, Options, &Log, &Latency);

  constexpr int Threads = 6;
  std::vector<Tensor> Samples;
  for (int I = 0; I < Threads; ++I)
    Samples.push_back(sampleInput(Model, 0.05f * static_cast<float>(I)));
  std::atomic<int> MaxBatchSeen{0};
  std::vector<std::thread> Clients;
  for (int I = 0; I < Threads; ++I)
    Clients.emplace_back([&, I] {
      Result<Prediction> Out = Engine.predict(Samples[I]);
      ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
      int Seen = MaxBatchSeen.load();
      while (Out->BatchSize > Seen &&
             !MaxBatchSeen.compare_exchange_weak(Seen, Out->BatchSize)) {
      }
    });
  for (std::thread &Client : Clients)
    Client.join();
  Engine.stop();

  const std::map<std::string, int64_t> Counters = Log.counters();
  EXPECT_EQ(Counters.at("serve.predict.requests"), Threads);
  EXPECT_EQ(Counters.at("serve.predict.batched_samples"), Threads);
  // Every sample rode *some* batch; the latency histogram saw them all.
  EXPECT_EQ(Latency.count(), Threads);
  // Batches never exceed the cap, and at least one forward ran.
  EXPECT_LE(MaxBatchSeen.load(), Options.MaxBatch);
  EXPECT_GE(Counters.at("serve.predict.batches"), 1);
  EXPECT_LE(Counters.at("serve.predict.batches"),
            static_cast<int64_t>(Threads));
}

TEST(ServeBatcherTest, BatchedLogitsMatchSoloInference) {
  const BuiltModel &Model = builtModel();
  ASSERT_TRUE(Model.Network);
  const Tensor Sample = sampleInput(Model, 0.2f);

  Batcher Solo(Model.Network, BatcherOptions(), nullptr, nullptr);
  Result<Prediction> Alone = Solo.predict(Sample);
  ASSERT_TRUE(static_cast<bool>(Alone)) << Alone.message();
  Solo.stop();

  BatcherOptions Options;
  Options.MaxWaitMicros = 100000;
  Batcher Crowded(Model.Network, Options, nullptr, nullptr);
  const Tensor Other = sampleInput(Model, 0.9f);
  Result<Prediction> Together(Error::failure("unset"));
  std::thread Companion([&] {
    Result<Prediction> Ignored = Crowded.predict(Other);
    EXPECT_TRUE(static_cast<bool>(Ignored));
  });
  Together = Crowded.predict(Sample);
  Companion.join();
  Crowded.stop();
  ASSERT_TRUE(static_cast<bool>(Together)) << Together.message();

  // Riding a batch must not change the answer.
  ASSERT_EQ(Together->Logits.size(), Alone->Logits.size());
  for (size_t I = 0; I < Alone->Logits.size(); ++I)
    EXPECT_NEAR(Together->Logits.data()[I], Alone->Logits.data()[I],
                1e-4f)
        << "logit " << I;
  EXPECT_EQ(Together->ArgMax, Alone->ArgMax);
}

TEST(ServeBatcherTest, PlanBackedBatcherMatchesInterpreter) {
  const BuiltModel &Model = builtModel();
  ASSERT_TRUE(Model.Network);
  const Tensor Sample = sampleInput(Model, 0.3f);

  Batcher Interpreted(Model.Network, BatcherOptions(), nullptr, nullptr);
  Result<Prediction> Reference = Interpreted.predict(Sample);
  ASSERT_TRUE(static_cast<bool>(Reference)) << Reference.message();
  Interpreted.stop();

  Result<ExecPlan> Compiled = ExecPlan::compile(
      Model.Network->Network, Model.Network->InputNode,
      Model.Network->LogitsNode, Model.Channels, Model.Height,
      Model.Width);
  ASSERT_TRUE(static_cast<bool>(Compiled)) << Compiled.message();
  auto Plan = std::make_shared<const ExecPlan>(Compiled.take());

  RunLog Log;
  Batcher Planned(Model.Network, BatcherOptions(), &Log, nullptr, Plan);
  Result<Prediction> Out = Planned.predict(Sample);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  // A mismatched sample shape must fail that request cleanly, not abort
  // the worker or poison the plan context.
  Tensor Wrong(Shape{1, Model.Channels, Model.Height + 1, Model.Width});
  for (size_t I = 0; I < Wrong.size(); ++I)
    Wrong.data()[I] = 0.3f;
  Result<Prediction> Rejected = Planned.predict(Wrong);
  EXPECT_FALSE(static_cast<bool>(Rejected));
  EXPECT_NE(Rejected.message().find("compiled plan"), std::string::npos);
  Planned.stop();

  // Folding batch norms into convolutions reassociates float math, so
  // the engines agree to 1e-4 rather than bit-for-bit.
  ASSERT_EQ(Out->Logits.size(), Reference->Logits.size());
  for (size_t I = 0; I < Reference->Logits.size(); ++I)
    EXPECT_NEAR(Out->Logits.data()[I], Reference->Logits.data()[I], 1e-4f)
        << "logit " << I;
  EXPECT_EQ(Out->ArgMax, Reference->ArgMax);
  EXPECT_GE(Log.counters().at("serve.predict.plan_batches"), 1);
}

TEST(ServeBatcherTest, RegistryCompilesPlansWhenEnabled) {
  const BuiltModel &Model = builtModel();
  ASSERT_TRUE(Model.Network);
  RunLog Log;
  BatcherOptions Options;
  Options.UsePlans = true;
  ModelRegistry Registry(Options, &Log, nullptr);
  ASSERT_FALSE(static_cast<bool>(Registry.add(
      "frozen", Model.Network, Model.Channels, Model.Height, Model.Width,
      Model.Classes, "test")));

  ServableModel *Servable = Registry.find("frozen");
  ASSERT_NE(Servable, nullptr);
  EXPECT_NE(Servable->Plan, nullptr);
  EXPECT_EQ(Log.counters().at("serve.models.plans_compiled"), 1);

  const Tensor Sample = sampleInput(Model, 0.4f);
  Result<Prediction> Out = Servable->Engine->predict(Sample);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Logits.shape().rank(), 1);
  EXPECT_EQ(Out->Logits.shape()[0], Model.Classes);
  Registry.stopAll();
  EXPECT_GE(Log.counters().at("serve.predict.plan_batches"), 1);
}

TEST(ServeBatcherPoolTest, ConcurrentWorkersAreBitIdenticalToSolo) {
  const BuiltModel &Model = builtModel();
  ASSERT_TRUE(Model.Network);
  constexpr int Requests = 8;
  std::vector<Tensor> Samples;
  for (int I = 0; I < Requests; ++I)
    Samples.push_back(sampleInput(Model, 0.07f * static_cast<float>(I)));

  // Reference: one worker, batch-of-one — every sample forwards alone,
  // strictly serially.
  std::vector<Tensor> Reference(Requests);
  {
    BatcherOptions Solo;
    Solo.MaxBatch = 1;
    Solo.Workers = 1;
    Batcher Engine(Model.Network, Solo, nullptr, nullptr);
    for (int I = 0; I < Requests; ++I) {
      Result<Prediction> Out = Engine.predict(Samples[I]);
      ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
      Reference[I] = std::move(Out->Logits);
    }
    Engine.stop();
  }

  // Pool: four workers, still batch-of-one, every request in flight at
  // once. Concurrent forwards over the one shared Graph run through
  // private per-worker contexts, so each answer must reproduce the
  // serial logits bit for bit.
  BatcherOptions Pooled;
  Pooled.MaxBatch = 1;
  Pooled.Workers = 4;
  RunLog Log;
  Batcher Engine(Model.Network, Pooled, &Log, nullptr);
  std::vector<Tensor> Got(Requests);
  std::vector<std::string> Errors(Requests);
  std::vector<std::thread> Clients;
  for (int I = 0; I < Requests; ++I)
    Clients.emplace_back([&, I] {
      Result<Prediction> Out = Engine.predict(Samples[I]);
      if (!Out) {
        Errors[I] = Out.message();
        return;
      }
      Got[I] = std::move(Out->Logits);
    });
  for (std::thread &Client : Clients)
    Client.join();
  Engine.stop();

  for (int I = 0; I < Requests; ++I) {
    ASSERT_TRUE(Errors[I].empty()) << Errors[I];
    ASSERT_EQ(Got[I].size(), Reference[I].size());
    for (size_t K = 0; K < Reference[I].size(); ++K)
      EXPECT_EQ(Got[I].data()[K], Reference[I].data()[K])
          << "request " << I << " logit " << K;
  }
  EXPECT_EQ(Log.counters().at("serve.predict.batched_samples"), Requests);
}

TEST(ServeBatcherPoolTest, CoalescedPoolMatchesSoloInference) {
  const BuiltModel &Model = builtModel();
  ASSERT_TRUE(Model.Network);
  constexpr int Requests = 6;
  std::vector<Tensor> Samples;
  for (int I = 0; I < Requests; ++I)
    Samples.push_back(sampleInput(Model, 0.11f * static_cast<float>(I)));

  std::vector<Tensor> Reference(Requests);
  {
    BatcherOptions Solo;
    Solo.MaxBatch = 1;
    Solo.Workers = 1;
    Batcher Engine(Model.Network, Solo, nullptr, nullptr);
    for (int I = 0; I < Requests; ++I) {
      Result<Prediction> Out = Engine.predict(Samples[I]);
      ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
      Reference[I] = std::move(Out->Logits);
    }
    Engine.stop();
  }

  // Two workers with real coalescing: requests ride shared batches cut
  // by whichever worker wins the queue. Riding a batch through the pool
  // must not change any answer.
  BatcherOptions Pooled;
  Pooled.MaxBatch = 4;
  Pooled.Workers = 2;
  Pooled.MaxWaitMicros = 50000;
  Batcher Engine(Model.Network, Pooled, nullptr, nullptr);
  std::vector<Tensor> Got(Requests);
  std::vector<std::string> Errors(Requests);
  std::vector<std::thread> Clients;
  for (int I = 0; I < Requests; ++I)
    Clients.emplace_back([&, I] {
      Result<Prediction> Out = Engine.predict(Samples[I]);
      if (!Out) {
        Errors[I] = Out.message();
        return;
      }
      Got[I] = std::move(Out->Logits);
    });
  for (std::thread &Client : Clients)
    Client.join();
  Engine.stop();

  for (int I = 0; I < Requests; ++I) {
    ASSERT_TRUE(Errors[I].empty()) << Errors[I];
    ASSERT_EQ(Got[I].size(), Reference[I].size());
    for (size_t K = 0; K < Reference[I].size(); ++K)
      EXPECT_NEAR(Got[I].data()[K], Reference[I].data()[K], 1e-4f)
          << "request " << I << " logit " << K;
  }
}

TEST(ServeBatcherTest, StopFailsFurtherPredictions) {
  const BuiltModel &Model = builtModel();
  ASSERT_TRUE(Model.Network);
  Batcher Engine(Model.Network, BatcherOptions(), nullptr, nullptr);
  Engine.stop();
  const Tensor Sample = sampleInput(Model, 0.3f);
  Result<Prediction> Out = Engine.predict(Sample);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_NE(Out.message().find("draining"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JobManager
//===----------------------------------------------------------------------===//

TEST(ServeJobManagerTest, RejectsMalformedSubmissions) {
  JobManager Manager(JobManagerOptions(), nullptr, nullptr);

  auto Missing = tinyJobBody();
  Missing.erase("objective");
  EXPECT_EQ(Manager.submit(Missing).Status, 400);

  auto BadModel = tinyJobBody();
  BadModel["model"] = "layer { title garbage";
  EXPECT_EQ(Manager.submit(BadModel).Status, 400);

  auto BadSchedule = tinyJobBody();
  BadSchedule["schedule"] = "sometimes";
  EXPECT_EQ(Manager.submit(BadSchedule).Status, 400);

  auto BadWorkers = tinyJobBody();
  BadWorkers["workers"] = "-3";
  EXPECT_EQ(Manager.submit(BadWorkers).Status, 400);

  // Distillation composes with every schedule now (each fine-tune gives
  // the shared teacher a private execution context), so overlap +
  // distill_alpha is legal; only an out-of-range weight is malformed.
  auto BadAlpha = tinyJobBody();
  BadAlpha["distill_alpha"] = "1.5";
  EXPECT_EQ(Manager.submit(BadAlpha).Status, 400);

  auto WrongWidth = tinyJobBody();
  // Parses fine but has too few rates for the model's module count.
  WrongWidth["subspace"] = printSubspaceSpec({PruneConfig(2, 0.5f)});
  const SubmitOutcome Outcome = Manager.submit(WrongWidth);
  EXPECT_EQ(Outcome.Status, 400);
  EXPECT_NE(Outcome.Error.find("modules"), std::string::npos);
}

TEST(ServeJobManagerTest, RunsAJobToDoneAndRegistersTheWinner) {
  ScratchDir Scratch("wootz_serve_jobmanager");
  RunLog Log;
  ModelRegistry Registry(BatcherOptions(), &Log, nullptr);
  JobManagerOptions Options;
  Options.BlockCacheDir = Scratch.str() + "/blocks";
  Options.ArtifactDir = Scratch.str() + "/artifacts";
  JobManager Manager(Options, &Registry, &Log);

  const SubmitOutcome Submitted = Manager.submit(tinyJobBody());
  ASSERT_EQ(Submitted.Status, 202) << Submitted.Error;
  ASSERT_FALSE(Submitted.Id.empty());

  EXPECT_EQ(waitForTerminal(Manager, Submitted.Id), "done");
  Result<std::string> Status = Manager.statusJson(Submitted.Id);
  ASSERT_TRUE(static_cast<bool>(Status));
  // The status JSON carries the result block and live counters.
  EXPECT_NE(Status->find("\"winner_accuracy\""), std::string::npos);
  EXPECT_NE(Status->find("\"counters\":{"), std::string::npos);
  EXPECT_NE(Status->find("tasks_done"), std::string::npos);
  EXPECT_NE(Status->find("\"model\":\"" + Submitted.Id + "\""),
            std::string::npos);

  // The winner is servable.
  ServableModel *Model = Registry.find(Submitted.Id);
  ASSERT_NE(Model, nullptr);
  Tensor Sample(Shape{1, Model->Channels, Model->Height, Model->Width});
  for (size_t I = 0; I < Sample.size(); ++I)
    Sample.data()[I] = 0.1f;
  Result<Prediction> Out = Model->Engine->predict(Sample);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_LT(Out->ArgMax, Model->Classes);

  // Artifacts landed under the job's directory.
  EXPECT_TRUE(fs::exists(Options.ArtifactDir + "/" + Submitted.Id +
                         "/result.json"));
  EXPECT_TRUE(fs::exists(Options.ArtifactDir + "/" + Submitted.Id +
                         "/telemetry.jsonl"));

  // The submit/complete counters reached the server log.
  EXPECT_EQ(Log.counters().at("serve.jobs.submitted"), 1);
  EXPECT_EQ(Log.counters().at("serve.jobs.completed"), 1);

  Manager.drain();
  Registry.stopAll();
}

TEST(ServeJobManagerTest, QueueBackpressureAnswers429) {
  JobManagerOptions Options;
  Options.Workers = 1;
  Options.MaxQueuedJobs = 1;
  JobManager Manager(Options, nullptr, nullptr);

  // A: slow enough to hold the single worker while we probe the queue.
  const SubmitOutcome A = Manager.submit(tinyJobBody(300));
  ASSERT_EQ(A.Status, 202) << A.Error;
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (Manager.runningCount() < 1 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(Manager.runningCount(), 1u);

  const SubmitOutcome B = Manager.submit(tinyJobBody()); // Fills the queue.
  ASSERT_EQ(B.Status, 202) << B.Error;
  const SubmitOutcome C = Manager.submit(tinyJobBody()); // Over the cap.
  EXPECT_EQ(C.Status, 429);
  EXPECT_NE(C.Error.find("queue"), std::string::npos);

  // Cancel everything so teardown is quick; the queued job dies
  // immediately, the running one at its next task boundary.
  Result<std::string> CancelledB = Manager.cancel(B.Id);
  ASSERT_TRUE(static_cast<bool>(CancelledB));
  EXPECT_EQ(*CancelledB, "cancelled");
  Result<std::string> CancelledA = Manager.cancel(A.Id);
  ASSERT_TRUE(static_cast<bool>(CancelledA));
  EXPECT_EQ(waitForTerminal(Manager, A.Id), "cancelled");
  Manager.drain();
}

TEST(ServeJobManagerTest, DrainRunsEveryAcceptedJobToATerminalState) {
  JobManagerOptions Options;
  Options.Workers = 1;
  JobManager Manager(Options, nullptr, nullptr);
  const SubmitOutcome A = Manager.submit(tinyJobBody());
  const SubmitOutcome B = Manager.submit(tinyJobBody());
  ASSERT_EQ(A.Status, 202);
  ASSERT_EQ(B.Status, 202);

  Manager.drain();
  const std::map<std::string, int64_t> States = Manager.stateCounts();
  EXPECT_EQ(States.count("queued"), 0u);
  EXPECT_EQ(States.count("running"), 0u);
  int64_t Terminal = 0;
  for (const auto &[State, Count] : States)
    Terminal += Count;
  EXPECT_EQ(Terminal, 2);

  // Draining managers refuse new work with 503.
  EXPECT_EQ(Manager.submit(tinyJobBody()).Status, 503);
}

TEST(ServeJobManagerTest, CancellingAnUnknownJobErrors) {
  JobManager Manager(JobManagerOptions(), nullptr, nullptr);
  Result<std::string> Out = Manager.cancel("job-999");
  EXPECT_FALSE(static_cast<bool>(Out));
}

//===----------------------------------------------------------------------===//
// End-to-end daemon
//===----------------------------------------------------------------------===//

TEST(ServeEndToEndTest, JobSubmissionPredictionAndMetricsOverHttp) {
  ScratchDir Scratch("wootz_serve_e2e");
  ServerOptions Options;
  Options.Http.Workers = 4;
  Options.Jobs.BlockCacheDir = Scratch.str() + "/blocks";
  Options.Jobs.ArtifactDir = Scratch.str() + "/artifacts";
  WootzServer Server(Options);
  Error Started = Server.start();
  ASSERT_FALSE(static_cast<bool>(Started)) << Started.message();
  const int Port = Server.port();

  // Submit.
  Result<std::string> Accepted = rawRequest(
      Port, makeRequest("POST", "/v1/jobs", tinyJobJson()));
  ASSERT_TRUE(static_cast<bool>(Accepted)) << Accepted.message();
  ASSERT_EQ(statusOf(*Accepted), 202) << *Accepted;
  const std::string AcceptedBody = bodyOf(*Accepted);
  const size_t IdAt = AcceptedBody.find("\"id\":\"");
  ASSERT_NE(IdAt, std::string::npos);
  const std::string Id = AcceptedBody.substr(
      IdAt + 6, AcceptedBody.find('"', IdAt + 6) - (IdAt + 6));

  // Poll over HTTP until done.
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  std::string State;
  while (std::chrono::steady_clock::now() < Deadline) {
    Result<std::string> Status =
        rawRequest(Port, makeRequest("GET", "/v1/jobs/" + Id, ""));
    ASSERT_TRUE(static_cast<bool>(Status)) << Status.message();
    ASSERT_EQ(statusOf(*Status), 200);
    const std::string Body = bodyOf(*Status);
    const size_t StateAt = Body.find("\"state\":\"");
    ASSERT_NE(StateAt, std::string::npos);
    State = Body.substr(StateAt + 9,
                        Body.find('"', StateAt + 9) - (StateAt + 9));
    if (State == "done" || State == "failed" || State == "cancelled")
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_EQ(State, "done");

  // The winner is listed and servable.
  Result<std::string> Models =
      rawRequest(Port, makeRequest("GET", "/v1/models", ""));
  ASSERT_TRUE(static_cast<bool>(Models));
  EXPECT_NE(bodyOf(*Models).find("\"id\":\"" + Id + "\""),
            std::string::npos);

  Result<ModelSpec> Spec = parseModelSpec(tinyModelText());
  std::string Input;
  const int Count =
      Spec->InputChannels * Spec->InputHeight * Spec->InputWidth;
  for (int I = 0; I < Count; ++I)
    Input += (I ? " " : "") + formatDouble(0.01 * (I % 11), 3);
  JsonObject PredictBody;
  PredictBody.field("input", Input);
  Result<std::string> Predicted = rawRequest(
      Port, makeRequest("POST", "/v1/models/" + Id + "/predict",
                        PredictBody.str()));
  ASSERT_TRUE(static_cast<bool>(Predicted)) << Predicted.message();
  ASSERT_EQ(statusOf(*Predicted), 200) << *Predicted;
  EXPECT_NE(bodyOf(*Predicted).find("\"argmax\":"), std::string::npos);
  EXPECT_NE(bodyOf(*Predicted).find("\"logits\":["), std::string::npos);

  // Wrong-sized input is a 400, not a crash.
  JsonObject ShortBody;
  ShortBody.field("input", "0.5 0.5");
  Result<std::string> Rejected = rawRequest(
      Port, makeRequest("POST", "/v1/models/" + Id + "/predict",
                        ShortBody.str()));
  ASSERT_TRUE(static_cast<bool>(Rejected));
  EXPECT_EQ(statusOf(*Rejected), 400);

  // /metrics exposes the job's pipeline counters (cache.*, tasks_*),
  // the server gauges, and the latency series.
  Result<std::string> Metrics =
      rawRequest(Port, makeRequest("GET", "/metrics", ""));
  ASSERT_TRUE(static_cast<bool>(Metrics));
  const std::string Text = bodyOf(*Metrics);
  EXPECT_NE(Text.find("wootz_counter{scope=\"jobs\",name=\"cache."),
            std::string::npos);
  EXPECT_NE(Text.find("wootz_counter{scope=\"jobs\",name=\"tasks_done\""),
            std::string::npos);
  EXPECT_NE(Text.find("wootz_counter{scope=\"server\",name=\"http."),
            std::string::npos);
  EXPECT_NE(Text.find("wootz_jobs_state{state=\"done\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("wootz_request_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(Text.find("wootz_predict_latency_seconds_bucket{"
                      "path=\"predict\""),
            std::string::npos);
  EXPECT_NE(Text.find("wootz_latency_quantile_seconds{path=\"predict\","
                      "q=\"0.50\"}"),
            std::string::npos);

  Server.drain();
}

TEST(ServeEndToEndTest, ApiErrorsAreWellFormed) {
  WootzServer Server(ServerOptions{});
  ASSERT_FALSE(static_cast<bool>(Server.start()));
  const int Port = Server.port();

  struct Case {
    std::string Request;
    int Status;
  };
  const std::vector<Case> Cases = {
      {makeRequest("GET", "/nope", ""), 404},
      {makeRequest("PUT", "/v1/jobs", ""), 405},
      {makeRequest("GET", "/v1/jobs/job-42", ""), 404},
      {makeRequest("DELETE", "/v1/jobs/job-42", ""), 404},
      {makeRequest("POST", "/v1/models/ghost/predict", "{}"), 404},
      {makeRequest("POST", "/v1/jobs", "this is not json"), 400},
      {makeRequest("POST", "/v1/jobs", "{\"model\":\"x\"}"), 400},
      {"gibberish\r\n\r\n", 400},
  };
  for (const Case &C : Cases) {
    Result<std::string> Response = rawRequest(Port, C.Request);
    ASSERT_TRUE(static_cast<bool>(Response)) << Response.message();
    EXPECT_EQ(statusOf(*Response), C.Status) << C.Request;
    // Every error body is JSON with an "error" key.
    EXPECT_NE(bodyOf(*Response).find("\"error\":"), std::string::npos)
        << C.Request;
  }
  Server.drain();
}

TEST(ServeEndToEndTest, ConcurrentMixedClientSoak) {
  WootzServer Server(ServerOptions{});
  ASSERT_FALSE(static_cast<bool>(Server.start()));
  const int Port = Server.port();

  constexpr int Clients = 10;
  constexpr int RequestsPerClient = 6;
  std::atomic<int> Answered{0};
  std::atomic<int> Malformed{0};
  std::vector<std::thread> Threads;
  for (int Client = 0; Client < Clients; ++Client)
    Threads.emplace_back([&, Client] {
      for (int I = 0; I < RequestsPerClient; ++I) {
        std::string Raw;
        switch ((Client + I) % 5) {
        case 0:
          Raw = makeRequest("GET", "/healthz", "");
          break;
        case 1:
          Raw = makeRequest("GET", "/metrics", "");
          break;
        case 2:
          Raw = makeRequest("GET", "/v1/jobs", "");
          break;
        case 3:
          Raw = makeRequest("GET", "/definitely/not/там", "");
          break;
        default:
          Raw = "x43 GARBAGE !!\r\n\r\n";
        }
        Result<std::string> Response = rawRequest(Port, Raw);
        ASSERT_TRUE(static_cast<bool>(Response)) << Response.message();
        const int Status = statusOf(*Response);
        // Every connection gets a well-formed HTTP answer: success,
        // a definite client error, or explicit backpressure — never
        // a dropped connection or a mangled response.
        if (Status >= 200 && Status < 600)
          ++Answered;
        else
          ++Malformed;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Answered.load(), Clients * RequestsPerClient);
  EXPECT_EQ(Malformed.load(), 0);

  // The server survived: it still answers and counted the traffic.
  Result<std::string> Health =
      rawRequest(Port, makeRequest("GET", "/healthz", ""));
  ASSERT_TRUE(static_cast<bool>(Health));
  EXPECT_EQ(statusOf(*Health), 200);
  // http.accepted counts every admitted connection, parsed or not (the
  // garbage requests land in http.malformed rather than http.requests).
  EXPECT_GE(Server.log().counters().at("http.accepted"),
            static_cast<int64_t>(Clients * RequestsPerClient));
  Server.drain();
}

TEST(ServeEndToEndTest, GracefulDrainFinishesAcceptedJobs) {
  ServerOptions Options;
  WootzServer Server(Options);
  ASSERT_FALSE(static_cast<bool>(Server.start()));
  const int Port = Server.port();

  Result<std::string> Accepted = rawRequest(
      Port, makeRequest("POST", "/v1/jobs", tinyJobJson()));
  ASSERT_TRUE(static_cast<bool>(Accepted));
  ASSERT_EQ(statusOf(*Accepted), 202);

  // Drain immediately: the accepted job must still run to completion.
  Server.drain();
  const std::map<std::string, int64_t> States =
      Server.jobs().stateCounts();
  EXPECT_EQ(States.count("queued"), 0u);
  EXPECT_EQ(States.count("running"), 0u);
  ASSERT_NE(States.count("done"), 0u);
  EXPECT_EQ(States.at("done"), 1);

  // After drain the port no longer accepts work.
  Result<std::string> Refused =
      rawRequest(Port, makeRequest("GET", "/healthz", ""));
  if (Refused) {
    EXPECT_EQ(statusOf(*Refused), 503);
  }

  // Idempotent.
  Server.drain();
}

//===----------------------------------------------------------------------===//
// Model upload: ModelStore and the /v1/models ingestion API
//===----------------------------------------------------------------------===//

/// Registry + store pair over a scratch directory.
struct StoreHarness {
  RunLog Log;
  ModelRegistry Registry;
  ModelStore Store;

  explicit StoreHarness(const std::string &Dir,
                        ModelStoreOptions Options = ModelStoreOptions())
      : Registry(BatcherOptions(), &Log, nullptr),
        Store(
            [&] {
              Options.Dir = Dir;
              return Options;
            }(),
            &Registry, &Log) {}
  ~StoreHarness() { Registry.stopAll(); }

  int64_t counter(const std::string &Name) const {
    const auto Counters = Log.counters();
    const auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }
};

/// Deterministic input for the tiny model.
Tensor uploadSampleInput() {
  Result<ModelSpec> Spec = parseModelSpec(tinyModelText());
  Tensor Sample(Shape{1, Spec->InputChannels, Spec->InputHeight,
                      Spec->InputWidth});
  for (size_t I = 0; I < Sample.size(); ++I)
    Sample.data()[I] = 0.01f * static_cast<float>(I % 13) - 0.05f;
  return Sample;
}

/// Logits of registered model \p Id on \p Sample.
Tensor predictLogits(ModelRegistry &Registry, const std::string &Id,
                     const Tensor &Sample) {
  ServableModel *Model = Registry.find(Id);
  EXPECT_NE(Model, nullptr) << Id;
  if (!Model)
    return Tensor();
  Result<Prediction> Out = Model->Engine->predict(Sample);
  EXPECT_TRUE(static_cast<bool>(Out)) << Out.message();
  return Out ? Out->Logits : Tensor();
}

TEST(ServeModelStoreTest, UploadRegistersAndServes) {
  ScratchDir Scratch("wootz_store_basic");
  StoreHarness Harness(Scratch.str());
  const UploadOutcome Out = Harness.Store.upload(
      {{"model", tinyModelText()}, {"id", "demo"}});
  ASSERT_EQ(Out.Status, 201) << Out.Error;
  EXPECT_EQ(Out.Id, "demo");
  EXPECT_TRUE(Harness.Store.has("demo"));
  EXPECT_EQ(Harness.Store.count(), 1u);
  EXPECT_EQ(Harness.counter("serve.models.uploaded"), 1);

  ServableModel *Model = Harness.Registry.find("demo");
  ASSERT_NE(Model, nullptr);
  EXPECT_EQ(Model->Origin, "uploaded (random init)");
  const Tensor Logits =
      predictLogits(Harness.Registry, "demo", uploadSampleInput());
  ASSERT_EQ(Logits.shape().rank(), 1);
  Result<ModelSpec> Spec = parseModelSpec(tinyModelText());
  EXPECT_EQ(Logits.shape()[0], Spec->Layers.back().NumOutput);

  // The stored Prototxt round-trips for job targeting.
  Result<std::string> Stored = Harness.Store.prototxtFor("demo");
  ASSERT_TRUE(static_cast<bool>(Stored)) << Stored.message();
  EXPECT_EQ(*Stored, tinyModelText());
}

TEST(ServeModelStoreTest, ImportedWeightsReproduceSourceLogits) {
  ScratchDir Scratch("wootz_store_weights");
  StoreHarness Harness(Scratch.str());

  // A reference upload built with seed 123, and a weight bundle exported
  // from an identical local build.
  Result<ModelSpec> Spec = parseModelSpec(tinyModelText());
  ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  Result<BuiltNetwork> Source = buildFullNetwork(*Spec, 123);
  ASSERT_TRUE(static_cast<bool>(Source)) << Source.message();
  const std::string Bundle = serializeTensors(
      exportWeights(Source->Network, FullNetworkPrefix));

  ASSERT_EQ(Harness.Store
                .upload({{"model", tinyModelText()},
                         {"id", "reference"},
                         {"seed", "123"}})
                .Status,
            201);
  // The import path uses a different seed, so matching logits can only
  // come from the imported bundle, not from a lucky initialization.
  const UploadOutcome Imported = Harness.Store.upload(
      {{"model", tinyModelText()},
       {"id", "imported"},
       {"seed", "7"},
       {"weights_b64", base64Encode(Bundle)}});
  ASSERT_EQ(Imported.Status, 201) << Imported.Error;
  EXPECT_EQ(Harness.Registry.find("imported")->Origin,
            "uploaded (imported weights)");

  const Tensor Sample = uploadSampleInput();
  const Tensor Reference =
      predictLogits(Harness.Registry, "reference", Sample);
  const Tensor Actual = predictLogits(Harness.Registry, "imported", Sample);
  ASSERT_EQ(Actual.shape(), Reference.shape());
  for (size_t I = 0; I < Reference.size(); ++I)
    EXPECT_EQ(Actual.data()[I], Reference.data()[I]) << "logit " << I;
}

TEST(ServeModelStoreTest, RejectsTheWholeBadInputLadder) {
  ScratchDir Scratch("wootz_store_reject");
  ModelStoreOptions Small;
  Small.MaxModels = 2;
  StoreHarness Harness(Scratch.str(), Small);

  // Missing model text.
  EXPECT_EQ(Harness.Store.upload({{"id", "x"}}).Status, 400);
  // Unparsable Prototxt.
  EXPECT_EQ(Harness.Store.upload({{"model", "not a prototxt {"}}).Status,
            400);
  // Path-traversal id.
  EXPECT_EQ(
      Harness.Store.upload({{"model", tinyModelText()}, {"id", "../evil"}})
          .Status,
      400);
  // Malformed base64.
  EXPECT_EQ(Harness.Store
                .upload({{"model", tinyModelText()},
                         {"weights_b64", "!!!not base64!!!"}})
                .Status,
            400);
  // A structurally valid bundle whose shapes belong to a different
  // network (8 classes vs 5).
  Result<ModelSpec> Other = parseModelSpec(
      standardModelPrototxt(StandardModel::InceptionA, 8));
  ASSERT_TRUE(static_cast<bool>(Other)) << Other.message();
  Result<BuiltNetwork> OtherNet = buildFullNetwork(*Other, 3);
  ASSERT_TRUE(static_cast<bool>(OtherNet)) << OtherNet.message();
  const UploadOutcome WrongShapes = Harness.Store.upload(
      {{"model", tinyModelText()},
       {"weights_b64",
        base64Encode(serializeTensors(
            exportWeights(OtherNet->Network, FullNetworkPrefix)))}});
  EXPECT_EQ(WrongShapes.Status, 400);
  EXPECT_FALSE(WrongShapes.Error.empty());
  // Truncated bundle bytes.
  EXPECT_EQ(Harness.Store
                .upload({{"model", tinyModelText()},
                         {"weights_b64", base64Encode("WOOTZCK2????")}})
                .Status,
            400);

  // Nothing above registered anything.
  EXPECT_EQ(Harness.Store.count(), 0u);
  EXPECT_EQ(Harness.counter("serve.models.uploaded"), 0);
  EXPECT_GE(Harness.counter("serve.models.upload_rejected"), 6);

  // Duplicates and the store cap.
  ASSERT_EQ(Harness.Store.upload({{"model", tinyModelText()},
                                  {"id", "dup"}})
                .Status,
            201);
  EXPECT_EQ(Harness.Store.upload({{"model", tinyModelText()},
                                  {"id", "dup"}})
                .Status,
            409);
  ASSERT_EQ(Harness.Store.upload({{"model", tinyModelText()}}).Status,
            201);
  EXPECT_EQ(Harness.Store.upload({{"model", tinyModelText()}}).Status,
            429);
}

TEST(ServeModelStoreTest, OversizedFieldsAre413) {
  ScratchDir Scratch("wootz_store_oversize");
  ModelStoreOptions Tiny;
  Tiny.MaxPrototxtBytes = 64;
  Tiny.MaxWeightBytes = 16;
  StoreHarness Harness(Scratch.str(), Tiny);
  EXPECT_EQ(Harness.Store.upload({{"model", tinyModelText()}}).Status,
            413);
  EXPECT_EQ(Harness.Store
                .upload({{"model", "x"},
                         {"weights_b64",
                          base64Encode(std::string(1024, 'w'))}})
                .Status,
            413);
}

TEST(ServeModelStoreTest, RemoveForgetsRegistryStoreAndDisk) {
  ScratchDir Scratch("wootz_store_remove");
  StoreHarness Harness(Scratch.str());
  ASSERT_EQ(Harness.Store.upload({{"model", tinyModelText()},
                                  {"id", "gone"}})
                .Status,
            201);
  ASSERT_NE(Harness.Registry.find("gone"), nullptr);
  ASSERT_TRUE(fs::exists(Scratch.str() + "/gone/model.prototxt"));

  Error Removed = Harness.Store.remove("gone");
  ASSERT_FALSE(static_cast<bool>(Removed)) << Removed.message();
  EXPECT_FALSE(Harness.Store.has("gone"));
  EXPECT_EQ(Harness.Registry.find("gone"), nullptr);
  EXPECT_FALSE(fs::exists(Scratch.str() + "/gone"));

  Error Again = Harness.Store.remove("gone");
  EXPECT_TRUE(static_cast<bool>(Again));
}

TEST(ServeModelStoreTest, RestartRestoresBitIdentically) {
  ScratchDir Scratch("wootz_store_restart");
  const Tensor Sample = uploadSampleInput();
  Tensor Before;
  {
    StoreHarness First(Scratch.str());
    ASSERT_EQ(First.Store.upload({{"model", tinyModelText()},
                                  {"id", "persist1"},
                                  {"seed", "31"}})
                  .Status,
              201);
    Before = predictLogits(First.Registry, "persist1", Sample);
    ASSERT_GT(Before.size(), 0u);
  }

  StoreHarness Second(Scratch.str());
  EXPECT_EQ(Second.Store.loadFromDisk(), 1u);
  EXPECT_TRUE(Second.Store.has("persist1"));
  EXPECT_EQ(Second.counter("serve.models.restored"), 1);
  ServableModel *Model = Second.Registry.find("persist1");
  ASSERT_NE(Model, nullptr);
  EXPECT_EQ(Model->Origin, "restored upload");

  // Random-init uploads persist their materialized weights, so the
  // restored model is bit-identical, not merely same-architecture.
  const Tensor After = predictLogits(Second.Registry, "persist1", Sample);
  ASSERT_EQ(After.shape(), Before.shape());
  for (size_t I = 0; I < Before.size(); ++I)
    EXPECT_EQ(After.data()[I], Before.data()[I]) << "logit " << I;
}

TEST(ServeModelStoreTest, RestoreSkipsCorruptEntries) {
  ScratchDir Scratch("wootz_store_corrupt");
  {
    StoreHarness First(Scratch.str());
    ASSERT_EQ(First.Store.upload({{"model", tinyModelText()},
                                  {"id", "healthy"}})
                  .Status,
              201);
  }
  fs::create_directories(Scratch.str() + "/broken");
  ASSERT_FALSE(static_cast<bool>(writeFile(
      Scratch.str() + "/broken/model.prototxt", tinyModelText())));
  ASSERT_FALSE(static_cast<bool>(writeFile(
      Scratch.str() + "/broken/weights.ck", "not a checkpoint")));

  StoreHarness Second(Scratch.str());
  EXPECT_EQ(Second.Store.loadFromDisk(), 1u);
  EXPECT_TRUE(Second.Store.has("healthy"));
  EXPECT_FALSE(Second.Store.has("broken"));
  EXPECT_EQ(Second.counter("serve.models.restore_failed"), 1);
}

TEST(ServeEndToEndTest, UploadPruneAndPredictOverHttp) {
  ScratchDir Scratch("wootz_upload_e2e");
  ServerOptions Options;
  Options.Jobs.BlockCacheDir = Scratch.str() + "/blocks";
  Options.Uploads.Dir = Scratch.str() + "/models";
  WootzServer Server(Options);
  ASSERT_FALSE(static_cast<bool>(Server.start()));
  const int Port = Server.port();

  // Upload.
  JsonObject Upload;
  Upload.field("model", tinyModelText()).field("id", "uploaded-net");
  Result<std::string> Created = rawRequest(
      Port, makeRequest("POST", "/v1/models", Upload.str()));
  ASSERT_TRUE(static_cast<bool>(Created)) << Created.message();
  ASSERT_EQ(statusOf(*Created), 201) << *Created;
  EXPECT_NE(bodyOf(*Created).find(
                "\"predict_url\":\"/v1/models/uploaded-net/predict\""),
            std::string::npos);

  // Listed alongside any other servable model.
  Result<std::string> Models =
      rawRequest(Port, makeRequest("GET", "/v1/models", ""));
  ASSERT_TRUE(static_cast<bool>(Models));
  EXPECT_NE(bodyOf(*Models).find("\"id\":\"uploaded-net\""),
            std::string::npos);

  // Immediately predictable.
  Result<ModelSpec> Spec = parseModelSpec(tinyModelText());
  std::string Input;
  const int Count =
      Spec->InputChannels * Spec->InputHeight * Spec->InputWidth;
  for (int I = 0; I < Count; ++I)
    Input += (I ? " " : "") + formatDouble(0.02 * (I % 7), 3);
  JsonObject PredictBody;
  PredictBody.field("input", Input);
  Result<std::string> Predicted = rawRequest(
      Port, makeRequest("POST", "/v1/models/uploaded-net/predict",
                        PredictBody.str()));
  ASSERT_TRUE(static_cast<bool>(Predicted)) << Predicted.message();
  ASSERT_EQ(statusOf(*Predicted), 200) << *Predicted;

  // A pruning job can target the upload by id.
  JsonObject JobBody;
  for (const auto &[Key, Value] : tinyJobBody())
    JobBody.field(Key == "model" ? "model" : Key,
                  Key == "model" ? "uploaded-net" : Value);
  Result<std::string> Accepted = rawRequest(
      Port, makeRequest("POST", "/v1/jobs", JobBody.str()));
  ASSERT_TRUE(static_cast<bool>(Accepted)) << Accepted.message();
  ASSERT_EQ(statusOf(*Accepted), 202) << *Accepted;
  const std::string AcceptedBody = bodyOf(*Accepted);
  const size_t IdAt = AcceptedBody.find("\"id\":\"");
  ASSERT_NE(IdAt, std::string::npos);
  const std::string JobId = AcceptedBody.substr(
      IdAt + 6, AcceptedBody.find('"', IdAt + 6) - (IdAt + 6));
  EXPECT_EQ(waitForTerminal(Server.jobs(), JobId), "done");

  // Malformed uploads are clean 4xx.
  JsonObject Bad;
  Bad.field("model", "layer { garbage");
  Result<std::string> Rejected = rawRequest(
      Port, makeRequest("POST", "/v1/models", Bad.str()));
  ASSERT_TRUE(static_cast<bool>(Rejected));
  EXPECT_EQ(statusOf(*Rejected), 400);
  Result<std::string> Duplicate = rawRequest(
      Port, makeRequest("POST", "/v1/models", Upload.str()));
  ASSERT_TRUE(static_cast<bool>(Duplicate));
  EXPECT_EQ(statusOf(*Duplicate), 409);

  // The ingestion counters surface in /metrics.
  Result<std::string> Metrics =
      rawRequest(Port, makeRequest("GET", "/metrics", ""));
  ASSERT_TRUE(static_cast<bool>(Metrics));
  EXPECT_NE(bodyOf(*Metrics).find("name=\"serve.models.uploaded\"} 1"),
            std::string::npos);
  EXPECT_NE(bodyOf(*Metrics).find(
                "name=\"serve.models.upload_rejected\"} 2"),
            std::string::npos);

  // DELETE unregisters: predict then answers 404.
  Result<std::string> Deleted = rawRequest(
      Port, makeRequest("DELETE", "/v1/models/uploaded-net", ""));
  ASSERT_TRUE(static_cast<bool>(Deleted));
  EXPECT_EQ(statusOf(*Deleted), 200) << *Deleted;
  Result<std::string> Gone = rawRequest(
      Port, makeRequest("POST", "/v1/models/uploaded-net/predict",
                        PredictBody.str()));
  ASSERT_TRUE(static_cast<bool>(Gone));
  EXPECT_EQ(statusOf(*Gone), 404);
  Result<std::string> DeleteAgain = rawRequest(
      Port, makeRequest("DELETE", "/v1/models/uploaded-net", ""));
  ASSERT_TRUE(static_cast<bool>(DeleteAgain));
  EXPECT_EQ(statusOf(*DeleteAgain), 404);

  Server.drain();
}

} // namespace
