//===- tests/ContextTest.cpp - ExecContext / re-entrant execution tests ----===//
//
// The model/context split: a Graph is an immutable-after-build model
// (topology + parameters); every pass-local tensor lives in an
// ExecContext. These tests pin the contract: wrapper/context parity,
// checked accessors, move-in inputs, buffer reuse, and — the point of
// the refactor — N threads forwarding one shared Graph through private
// contexts with logits bit-identical to serial execution.
//
//===----------------------------------------------------------------------===//

#include "src/compiler/NetsFactory.h"
#include "src/compiler/Solver.h"
#include "src/models/MiniModels.h"
#include "src/nn/Graph.h"
#include "src/nn/Layers.h"
#include "src/nn/Loss.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace wootz;

namespace {

static ModelSpec tinySpec() {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 4);
  EXPECT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  return Spec.take();
}

/// Builds and randomly initializes a full tiny ResNet; returns the graph
/// by value, which also exercises the Graph move path (the embedded
/// default context must follow the model to its new address).
static Graph buildFullModel(std::string &LogitsNode, uint64_t Seed = 3) {
  const MultiplexingModel Model(tinySpec());
  Graph Network;
  Rng Generator(Seed);
  Result<BuildResult> Built = Model.build(Network, BuildMode::FullModel,
                                          PruneInfo(), "full", Generator);
  EXPECT_TRUE(static_cast<bool>(Built)) << Built.message();
  LogitsNode = Built->LogitsNode;
  Network.initParams(Generator);
  return Network;
}

static Tensor filledInput(int Batch, float Fill) {
  Tensor In(Shape{Batch, 3, 8, 8});
  for (size_t I = 0; I < In.size(); ++I)
    In.data()[I] = Fill + 0.01f * static_cast<float>(I % 11);
  return In;
}

//===----------------------------------------------------------------------===//
// ContextTest: the ExecContext surface
//===----------------------------------------------------------------------===//

TEST(ContextTest, WrapperAndExplicitContextAgreeBitForBit) {
  std::string Logits;
  Graph Network = buildFullModel(Logits);
  const Tensor In = filledInput(2, 0.3f);

  // Compatibility wrappers (the default context).
  Network.setInput("data", In);
  Network.forward(/*Training=*/false);
  const Tensor ViaWrapper = Network.activation(Logits);

  // Explicit private context over the same (unchanged) model.
  ExecContext Ctx(Network);
  Ctx.setInput("data", In);
  Ctx.forward(Network, /*Training=*/false);
  const Tensor &ViaContext = Ctx.activation(Logits);

  ASSERT_EQ(ViaWrapper.shape(), ViaContext.shape());
  for (size_t I = 0; I < ViaWrapper.size(); ++I)
    EXPECT_EQ(ViaWrapper.data()[I], ViaContext.data()[I]) << "logit " << I;
}

TEST(ContextTest, GraphMoveKeepsTheDefaultContextUsable) {
  std::string Logits;
  Graph Network = buildFullModel(Logits);
  Network.setInput("data", filledInput(1, 0.2f));
  Network.forward(/*Training=*/false);
  const Tensor Before = Network.activation(Logits);

  Graph Moved = std::move(Network);
  // The default context's activations must have followed the model.
  const Tensor &After = Moved.activation(Logits);
  ASSERT_EQ(Before.shape(), After.shape());
  for (size_t I = 0; I < Before.size(); ++I)
    EXPECT_EQ(Before.data()[I], After.data()[I]);
  // And the moved-to graph keeps executing through its own wrappers.
  Moved.setInput("data", filledInput(1, 0.7f));
  Moved.forward(/*Training=*/false);
  EXPECT_EQ(Moved.activation(Logits).shape(), Shape({1, 4}));
}

TEST(ContextTest, FindActivationTurnsBadLookupsIntoCleanErrors) {
  std::string Logits;
  Graph Network = buildFullModel(Logits);
  ExecContext Ctx(Network);

  // Unknown node: an Error naming the culprit, not an abort.
  Result<const Tensor *> Missing = Ctx.findActivation("no/such/node");
  ASSERT_FALSE(static_cast<bool>(Missing));
  EXPECT_NE(Missing.message().find("no/such/node"), std::string::npos);

  // Known node before any forward: a clean "run forward() first".
  Result<const Tensor *> TooEarly = Ctx.findActivation(Logits);
  ASSERT_FALSE(static_cast<bool>(TooEarly));
  EXPECT_NE(TooEarly.message().find("forward"), std::string::npos);

  Ctx.setInput("data", filledInput(1, 0.4f));
  Ctx.forward(Network, /*Training=*/false);
  Result<const Tensor *> Found = Ctx.findActivation(Logits);
  ASSERT_TRUE(static_cast<bool>(Found)) << Found.message();
  EXPECT_EQ((*Found)->shape(), Shape({1, 4}));

  // An unbound context fails every lookup gracefully.
  ExecContext Unbound;
  Result<const Tensor *> NoGraph = Unbound.findActivation(Logits);
  ASSERT_FALSE(static_cast<bool>(NoGraph));
  EXPECT_NE(NoGraph.message().find("not bound"), std::string::npos);
}

TEST(ContextTest, FindOutputGradientReportsUnknownAndUnseeded) {
  std::string Logits;
  Graph Network = buildFullModel(Logits);
  ExecContext Ctx(Network);
  Ctx.setInput("data", filledInput(1, 0.5f));
  Ctx.forward(Network, /*Training=*/true);

  Result<const Tensor *> Missing = Ctx.findOutputGradient("ghost");
  ASSERT_FALSE(static_cast<bool>(Missing));
  EXPECT_NE(Missing.message().find("ghost"), std::string::npos);

  // Known node, but nothing seeded/backpropagated this pass: success
  // carrying nullptr (mirrors outputGradient()).
  Result<const Tensor *> Unseeded = Ctx.findOutputGradient(Logits);
  ASSERT_TRUE(static_cast<bool>(Unseeded));
  EXPECT_EQ(*Unseeded, nullptr);

  Tensor Seed(Ctx.activation(Logits).shape());
  Seed.fill(1.0f);
  Ctx.seedGradient(Logits, Seed);
  Result<const Tensor *> Seeded = Ctx.findOutputGradient(Logits);
  ASSERT_TRUE(static_cast<bool>(Seeded));
  ASSERT_NE(*Seeded, nullptr);
  EXPECT_EQ((*Seeded)->shape(), Seed.shape());
}

TEST(ContextTest, MoveInInputAdoptsTheBufferWithoutCopying) {
  std::string Logits;
  Graph Network = buildFullModel(Logits);
  ExecContext Copying(Network);
  ExecContext Moving(Network);

  const Tensor In = filledInput(2, 0.6f);
  Tensor MoveMe = In; // Equal contents, separately owned buffer.
  const float *RawData = MoveMe.data();

  Copying.setInput("data", In);
  Moving.setInput("data", std::move(MoveMe));
  // The move-in path must adopt the same allocation, not copy it.
  EXPECT_EQ(Moving.activation("data").data(), RawData);

  Copying.forward(Network, /*Training=*/false);
  Moving.forward(Network, /*Training=*/false);
  const Tensor &A = Copying.activation(Logits);
  const Tensor &B = Moving.activation(Logits);
  ASSERT_EQ(A.shape(), B.shape());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A.data()[I], B.data()[I]);
}

TEST(ContextTest, ReusedContextKeepsItsBuffersAcrossBatches) {
  std::string Logits;
  Graph Network = buildFullModel(Logits);
  ExecContext Ctx(Network);

  Ctx.setInput("data", filledInput(2, 0.1f));
  Ctx.forward(Network, /*Training=*/false);
  const float *FirstPass = Ctx.activation(Logits).data();

  // Same batch shape again: every activation buffer must be reused, so
  // the steady-state allocation profile stays flat across batches.
  Ctx.setInput("data", filledInput(2, 0.8f));
  Ctx.forward(Network, /*Training=*/false);
  EXPECT_EQ(Ctx.activation(Logits).data(), FirstPass);

  // A different batch size is allowed to (and must) reallocate.
  Ctx.setInput("data", filledInput(3, 0.8f));
  Ctx.forward(Network, /*Training=*/false);
  EXPECT_EQ(Ctx.activation(Logits).shape(), Shape({3, 4}));
}

TEST(ContextTest, TrainingStepThroughContextMatchesWrapper) {
  std::string Logits;
  Graph Network = buildFullModel(Logits);
  const Tensor In = filledInput(2, 0.25f);
  const std::vector<int> Labels = {1, 3};

  // Step once through the wrappers, snapshot every parameter gradient.
  Network.setInput("data", In);
  Network.forward(/*Training=*/true);
  Network.zeroGrads();
  Tensor GradLogits;
  softmaxCrossEntropy(Network.activation(Logits), Labels, GradLogits);
  Network.seedGradient(Logits, GradLogits);
  Network.backward();
  std::vector<Tensor> Expected;
  for (Param *P : Network.trainableParams())
    Expected.push_back(P->Grad);

  // Repeat through an explicit context; gradients land in the same
  // shared parameters and must match bit for bit.
  Network.zeroGrads();
  ExecContext Ctx(Network);
  Ctx.setInput("data", In);
  Ctx.forward(Network, /*Training=*/true);
  softmaxCrossEntropy(Ctx.activation(Logits), Labels, GradLogits);
  Ctx.seedGradient(Logits, GradLogits);
  Ctx.backward(Network);

  const std::vector<Param *> Params = Network.trainableParams();
  ASSERT_EQ(Params.size(), Expected.size());
  for (size_t P = 0; P < Params.size(); ++P)
    for (size_t I = 0; I < Expected[P].size(); ++I)
      EXPECT_EQ(Params[P]->Grad.data()[I], Expected[P].data()[I])
          << "param " << P << " grad " << I;
}

//===----------------------------------------------------------------------===//
// GraphConcurrencyTest: shared model, private contexts
//===----------------------------------------------------------------------===//

TEST(GraphConcurrencyTest, ConcurrentEvalForwardsMatchSerialBitForBit) {
  std::string Logits;
  Graph Network = buildFullModel(Logits);
  constexpr int Threads = 8;

  std::vector<Tensor> Inputs;
  for (int T = 0; T < Threads; ++T)
    Inputs.push_back(filledInput(2, 0.05f * static_cast<float>(T)));

  // Serial reference through one private context.
  std::vector<Tensor> Reference;
  {
    ExecContext Ctx(Network);
    for (int T = 0; T < Threads; ++T) {
      Ctx.setInput("data", Inputs[T]);
      Ctx.forward(Network, /*Training=*/false);
      Reference.push_back(Ctx.activation(Logits));
    }
  }

  // All threads at once over the one shared (read-only) model.
  std::vector<Tensor> Got(Threads);
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      ExecContext Ctx(Network);
      Ctx.setInput("data", Inputs[T]);
      Ctx.forward(Network, /*Training=*/false);
      Got[T] = Ctx.activation(Logits);
    });
  for (std::thread &W : Workers)
    W.join();

  for (int T = 0; T < Threads; ++T) {
    ASSERT_EQ(Got[T].shape(), Reference[T].shape());
    for (size_t I = 0; I < Reference[T].size(); ++I)
      EXPECT_EQ(Got[T].data()[I], Reference[T].data()[I])
          << "thread " << T << " logit " << I;
  }
}

TEST(GraphConcurrencyTest, ConcurrentTrainingForwardsMatchSerialBitForBit) {
  std::string Logits;
  Graph Network = buildFullModel(Logits);
  constexpr int Threads = 8;

  std::vector<Tensor> Inputs;
  for (int T = 0; T < Threads; ++T)
    Inputs.push_back(filledInput(2, 0.03f * static_cast<float>(T + 1)));

  // Training-mode logits depend only on the batch statistics (never on
  // the running stats BatchNorm updates under its lock), so the serial
  // reference and the concurrent run must agree exactly.
  std::vector<Tensor> Reference;
  {
    ExecContext Ctx(Network);
    for (int T = 0; T < Threads; ++T) {
      Ctx.setInput("data", Inputs[T]);
      Ctx.forward(Network, /*Training=*/true);
      Reference.push_back(Ctx.activation(Logits));
    }
  }

  std::vector<Tensor> Got(Threads);
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      ExecContext Ctx(Network);
      Ctx.setInput("data", Inputs[T]);
      Ctx.forward(Network, /*Training=*/true);
      Got[T] = Ctx.activation(Logits);
    });
  for (std::thread &W : Workers)
    W.join();

  for (int T = 0; T < Threads; ++T) {
    ASSERT_EQ(Got[T].shape(), Reference[T].shape());
    for (size_t I = 0; I < Reference[T].size(); ++I)
      EXPECT_EQ(Got[T].data()[I], Reference[T].data()[I])
          << "thread " << T << " logit " << I;
  }
}

TEST(GraphConcurrencyTest, SharedDropoutLayerKeepsPerContextStreams) {
  // A stochastic layer on a shared model: each context must replay the
  // layer's deterministic mask stream independently (the stream lives
  // in context scratch, not in the layer).
  Graph Network;
  Network.addInput("x");
  Network.addNode("drop", std::make_unique<Dropout>(0.5f, 99), {"x"});

  Tensor In(Shape{1, 1, 4, 4});
  for (size_t I = 0; I < In.size(); ++I)
    In.data()[I] = 1.0f + static_cast<float>(I);

  ExecContext First(Network);
  First.setInput("x", In);
  First.forward(Network, /*Training=*/true);
  const Tensor Mask1 = First.activation("drop");

  // A second context starts the stream from the layer's seed again.
  ExecContext Second(Network);
  Second.setInput("x", In);
  Second.forward(Network, /*Training=*/true);
  const Tensor &Mask2 = Second.activation("drop");
  for (size_t I = 0; I < Mask1.size(); ++I)
    EXPECT_EQ(Mask1.data()[I], Mask2.data()[I]);

  // Within one context the stream advances (a second training forward
  // draws fresh Bernoulli samples), preserving pre-refactor semantics.
  First.setInput("x", In);
  First.forward(Network, /*Training=*/true);
  bool AnyDifference = false;
  const Tensor &Mask3 = First.activation("drop");
  for (size_t I = 0; I < Mask1.size(); ++I)
    AnyDifference = AnyDifference || Mask1.data()[I] != Mask3.data()[I];
  EXPECT_TRUE(AnyDifference);
}

} // namespace
