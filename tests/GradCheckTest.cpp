//===- tests/GradCheckTest.cpp - numeric gradient checks -------------------------===//
//
// Verifies every layer's backward pass against central finite
// differences, both for parameters and for input gradients, through a
// small Graph ending in a scalar loss. This is the correctness anchor of
// the whole nn substrate: if these pass, training dynamics are
// trustworthy.
//
//===----------------------------------------------------------------------===//

#include "src/nn/Graph.h"
#include "src/nn/Layers.h"
#include "src/nn/Loss.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

using namespace wootz;

namespace {

/// Harness: builds a graph with one input, runs forward to \p OutNode,
/// computes scalar loss L = 0.5*sum(out^2), backprops, and compares every
/// trainable parameter gradient against central differences.
class GradCheck {
public:
  GradCheck(Graph &Network, std::string InputNode, std::string OutNode,
            Tensor Input)
      : Network(Network), InputNode(std::move(InputNode)),
        OutNode(std::move(OutNode)), Input(std::move(Input)) {}

  /// L = 0.5 * sum(out_i^2); dL/dout = out.
  double loss(bool Training = true) {
    Network.setInput(InputNode, Input);
    Network.forward(Training);
    const Tensor &Out = Network.activation(OutNode);
    double Total = 0.0;
    for (size_t I = 0; I < Out.size(); ++I)
      Total += 0.5 * static_cast<double>(Out[I]) * Out[I];
    return Total;
  }

  void backprop() {
    const double Unused = loss();
    (void)Unused;
    Network.zeroGrads();
    const Tensor &Out = Network.activation(OutNode);
    Tensor Seed(Out.shape());
    for (size_t I = 0; I < Out.size(); ++I)
      Seed[I] = Out[I];
    Network.seedGradient(OutNode, Seed);
    Network.backward();
  }

  /// Checks all parameters of \p NodeName (sub-sampled for big tensors).
  void checkParams(const std::string &NodeName, double Tolerance = 2e-2) {
    backprop();
    for (Param *P : Network.layer(NodeName).params()) {
      // Snapshot analytic gradients before perturbing.
      std::vector<float> Analytic(P->Grad.data(),
                                  P->Grad.data() + P->Grad.size());
      const size_t Stride = P->Value.size() > 64 ? P->Value.size() / 37 : 1;
      for (size_t I = 0; I < P->Value.size(); I += Stride) {
        const float Saved = P->Value[I];
        const float Eps = 1e-3f;
        P->Value[I] = Saved + Eps;
        const double Plus = loss();
        P->Value[I] = Saved - Eps;
        const double Minus = loss();
        P->Value[I] = Saved;
        const double Numeric = (Plus - Minus) / (2.0 * Eps);
        EXPECT_NEAR(Analytic[I], Numeric,
                    Tolerance * (1.0 + std::fabs(Numeric)))
            << NodeName << " param grad at flat index " << I;
      }
    }
  }

private:
  Graph &Network;
  std::string InputNode;
  std::string OutNode;
  Tensor Input;
};

static Tensor randomTensor(Shape S, Rng &Generator) {
  Tensor T(std::move(S));
  for (size_t I = 0; I < T.size(); ++I)
    T[I] = Generator.nextGaussian();
  return T;
}

TEST(GradCheckTest, Conv2DWeightsAndBias) {
  Rng Generator(31);
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv",
                  std::make_unique<Conv2D>(ConvGeometry{3, 4, 3, 1, 1}),
                  {"x"});
  Network.layer("conv").initParams(Generator);
  GradCheck Check(Network, "x", "conv",
                  randomTensor(Shape{2, 3, 5, 5}, Generator));
  Check.checkParams("conv");
}

TEST(GradCheckTest, Conv2DStridedNoPad) {
  Rng Generator(32);
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv",
                  std::make_unique<Conv2D>(ConvGeometry{2, 3, 3, 2, 0}),
                  {"x"});
  Network.layer("conv").initParams(Generator);
  GradCheck Check(Network, "x", "conv",
                  randomTensor(Shape{2, 2, 7, 7}, Generator));
  Check.checkParams("conv");
}

TEST(GradCheckTest, ConvInputGradientThroughStack) {
  // Two convs back to back: checks the col2im input-gradient path by
  // perturbing the *first* conv's weights (its gradient depends on the
  // second conv's input gradient).
  Rng Generator(33);
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv1",
                  std::make_unique<Conv2D>(ConvGeometry{2, 3, 3, 1, 1}),
                  {"x"});
  Network.addNode("conv2",
                  std::make_unique<Conv2D>(ConvGeometry{3, 2, 3, 1, 1}),
                  {"conv1"});
  Network.layer("conv1").initParams(Generator);
  Network.layer("conv2").initParams(Generator);
  GradCheck Check(Network, "x", "conv2",
                  randomTensor(Shape{2, 2, 5, 5}, Generator));
  Check.checkParams("conv1");
}

TEST(GradCheckTest, DenseWeightsAndBias) {
  Rng Generator(34);
  Graph Network;
  Network.addInput("x");
  Network.addNode("fc", std::make_unique<Dense>(12, 5), {"x"});
  Network.layer("fc").initParams(Generator);
  GradCheck Check(Network, "x", "fc",
                  randomTensor(Shape{3, 12}, Generator));
  Check.checkParams("fc");
}

TEST(GradCheckTest, DenseFlattensConvOutput) {
  Rng Generator(35);
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv",
                  std::make_unique<Conv2D>(ConvGeometry{2, 3, 1, 1, 0}),
                  {"x"});
  Network.addNode("fc", std::make_unique<Dense>(3 * 4 * 4, 2), {"conv"});
  Network.layer("conv").initParams(Generator);
  Network.layer("fc").initParams(Generator);
  GradCheck Check(Network, "x", "fc",
                  randomTensor(Shape{2, 2, 4, 4}, Generator));
  Check.checkParams("conv");
}

TEST(GradCheckTest, BatchNormGammaBeta) {
  Rng Generator(36);
  Graph Network;
  Network.addInput("x");
  Network.addNode("bn", std::make_unique<BatchNorm2D>(3), {"x"});
  // Break the gamma=1/beta=0 symmetry so gradients are informative.
  Layer &Bn = Network.layer("bn");
  for (size_t I = 0; I < Bn.params()[0]->Value.size(); ++I)
    Bn.params()[0]->Value[I] = 0.5f + 0.3f * I;
  GradCheck Check(Network, "x", "bn",
                  randomTensor(Shape{4, 3, 3, 3}, Generator));
  Check.checkParams("bn");
}

TEST(GradCheckTest, BatchNormInputGradient) {
  // Conv below a batchnorm: the conv's weight gradients exercise the
  // batchnorm input-gradient formula (the hard part of BN backward).
  Rng Generator(37);
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv",
                  std::make_unique<Conv2D>(ConvGeometry{2, 3, 3, 1, 1}),
                  {"x"});
  Network.addNode("bn", std::make_unique<BatchNorm2D>(3), {"conv"});
  Network.layer("conv").initParams(Generator);
  GradCheck Check(Network, "x", "bn",
                  randomTensor(Shape{3, 2, 4, 4}, Generator));
  Check.checkParams("conv", /*Tolerance=*/5e-2);
}

TEST(GradCheckTest, ReluMaxPoolPath) {
  Rng Generator(38);
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv",
                  std::make_unique<Conv2D>(ConvGeometry{2, 3, 3, 1, 1}),
                  {"x"});
  Network.addNode("relu", std::make_unique<ReLU>(), {"conv"});
  Network.addNode("pool",
                  std::make_unique<Pool2D>(Pool2D::Mode::Max, 2, 2),
                  {"relu"});
  Network.layer("conv").initParams(Generator);
  GradCheck Check(Network, "x", "pool",
                  randomTensor(Shape{2, 2, 6, 6}, Generator));
  Check.checkParams("conv");
}

TEST(GradCheckTest, AvgPoolAndGlobalPoolPath) {
  Rng Generator(39);
  Graph Network;
  Network.addInput("x");
  Network.addNode("conv",
                  std::make_unique<Conv2D>(ConvGeometry{2, 3, 3, 1, 1}),
                  {"x"});
  Network.addNode("avg",
                  std::make_unique<Pool2D>(Pool2D::Mode::Average, 3, 1, 1),
                  {"conv"});
  Network.addNode("gap", std::make_unique<GlobalAvgPool>(), {"avg"});
  Network.layer("conv").initParams(Generator);
  GradCheck Check(Network, "x", "gap",
                  randomTensor(Shape{2, 2, 5, 5}, Generator));
  Check.checkParams("conv");
}

TEST(GradCheckTest, AddJoinsBothBranches) {
  Rng Generator(40);
  Graph Network;
  Network.addInput("x");
  Network.addNode("a", std::make_unique<Conv2D>(ConvGeometry{2, 2, 1, 1, 0}),
                  {"x"});
  Network.addNode("b", std::make_unique<Conv2D>(ConvGeometry{2, 2, 3, 1, 1}),
                  {"x"});
  Network.addNode("add", std::make_unique<Add>(), {"a", "b"});
  Network.layer("a").initParams(Generator);
  Network.layer("b").initParams(Generator);
  GradCheck Check(Network, "x", "add",
                  randomTensor(Shape{2, 2, 4, 4}, Generator));
  Check.checkParams("a");
  Check.checkParams("b");
}

TEST(GradCheckTest, ConcatSplitsGradientBySlot) {
  Rng Generator(41);
  Graph Network;
  Network.addInput("x");
  Network.addNode("a", std::make_unique<Conv2D>(ConvGeometry{2, 2, 1, 1, 0}),
                  {"x"});
  Network.addNode("b", std::make_unique<Conv2D>(ConvGeometry{2, 3, 1, 1, 0}),
                  {"x"});
  Network.addNode("cat", std::make_unique<Concat>(), {"a", "b"});
  Network.layer("a").initParams(Generator);
  Network.layer("b").initParams(Generator);
  GradCheck Check(Network, "x", "cat",
                  randomTensor(Shape{2, 2, 3, 3}, Generator));
  Check.checkParams("a");
  Check.checkParams("b");
}

//===----------------------------------------------------------------------===//
// Loss gradient checks
//===----------------------------------------------------------------------===//

TEST(GradCheckTest, SoftmaxCrossEntropyGradient) {
  Rng Generator(42);
  Tensor Logits(Shape{3, 4});
  for (size_t I = 0; I < Logits.size(); ++I)
    Logits[I] = Generator.nextGaussian();
  const std::vector<int> Labels{1, 3, 0};
  Tensor Grad;
  softmaxCrossEntropy(Logits, Labels, Grad);

  Tensor Unused;
  const float Eps = 1e-3f;
  for (size_t I = 0; I < Logits.size(); ++I) {
    const float Saved = Logits[I];
    Logits[I] = Saved + Eps;
    const double Plus = softmaxCrossEntropy(Logits, Labels, Unused);
    Logits[I] = Saved - Eps;
    const double Minus = softmaxCrossEntropy(Logits, Labels, Unused);
    Logits[I] = Saved;
    EXPECT_NEAR(Grad[I], (Plus - Minus) / (2 * Eps), 1e-4);
  }
}

TEST(GradCheckTest, L2ReconstructionGradient) {
  Rng Generator(43);
  Tensor Pred(Shape{2, 3});
  Tensor Target(Shape{2, 3});
  for (size_t I = 0; I < Pred.size(); ++I) {
    Pred[I] = Generator.nextGaussian();
    Target[I] = Generator.nextGaussian();
  }
  Tensor Grad;
  l2Reconstruction(Pred, Target, Grad);
  Tensor Unused;
  const float Eps = 1e-3f;
  for (size_t I = 0; I < Pred.size(); ++I) {
    const float Saved = Pred[I];
    Pred[I] = Saved + Eps;
    const double Plus = l2Reconstruction(Pred, Target, Unused);
    Pred[I] = Saved - Eps;
    const double Minus = l2Reconstruction(Pred, Target, Unused);
    Pred[I] = Saved;
    EXPECT_NEAR(Grad[I], (Plus - Minus) / (2 * Eps), 1e-4);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Distillation loss (appended tests)
//===----------------------------------------------------------------------===//

namespace {

TEST(GradCheckTest, DistillationLossGradient) {
  Rng Generator(44);
  Tensor Student(Shape{3, 5});
  Tensor Teacher(Shape{3, 5});
  for (size_t I = 0; I < Student.size(); ++I) {
    Student[I] = Generator.nextGaussian();
    Teacher[I] = Generator.nextGaussian();
  }
  for (float Temperature : {1.0f, 2.0f, 4.0f}) {
    Tensor Grad;
    distillationLoss(Student, Teacher, Temperature, Grad);
    Tensor Unused;
    const float Eps = 1e-3f;
    for (size_t I = 0; I < Student.size(); ++I) {
      const float Saved = Student[I];
      Student[I] = Saved + Eps;
      const double Plus =
          distillationLoss(Student, Teacher, Temperature, Unused);
      Student[I] = Saved - Eps;
      const double Minus =
          distillationLoss(Student, Teacher, Temperature, Unused);
      Student[I] = Saved;
      EXPECT_NEAR(Grad[I], (Plus - Minus) / (2 * Eps), 2e-4)
          << "T=" << Temperature << " index " << I;
    }
  }
}

TEST(GradCheckTest, DistillationLossZeroAtMatchingLogits) {
  Tensor Logits(Shape{2, 4}, {1, 2, 3, 4, -1, 0, 1, 2});
  Tensor Grad;
  EXPECT_NEAR(distillationLoss(Logits, Logits, 2.0f, Grad), 0.0, 1e-9);
  for (size_t I = 0; I < Grad.size(); ++I)
    EXPECT_NEAR(Grad[I], 0.0f, 1e-7);
}

} // namespace
