//===- tests/IdentifierTest.cpp - identifier/ unit tests ----------------------------===//

#include "src/identifier/Identifier.h"

#include <gtest/gtest.h>

#include <set>

using namespace wootz;

namespace {

//===----------------------------------------------------------------------===//
// TuningBlock
//===----------------------------------------------------------------------===//

TEST(TuningBlockTest, IdsAreCanonical) {
  TuningBlock Single{2, {0.5f}};
  EXPECT_EQ(Single.id(), "m2@0.5");
  TuningBlock Run{1, {0.3f, 0.0f, 0.7f}};
  EXPECT_EQ(Run.id(), "m1-m3@0.3,0,0.7");
}

TEST(TuningBlockTest, IdentityDetection) {
  EXPECT_TRUE((TuningBlock{0, {0.0f, 0.0f}}).isIdentity());
  EXPECT_FALSE((TuningBlock{0, {0.0f, 0.3f}}).isIdentity());
}

TEST(TuningBlockTest, OverlapSemantics) {
  TuningBlock A{0, {0.3f, 0.3f}}; // Modules 0-1.
  TuningBlock B{1, {0.5f}};       // Module 1.
  TuningBlock C{2, {0.5f, 0.7f}}; // Modules 2-3.
  EXPECT_TRUE(A.overlaps(B));
  EXPECT_TRUE(B.overlaps(A));
  EXPECT_FALSE(A.overlaps(C));
  // Same span, different rates still overlaps (same layers).
  TuningBlock A2{0, {0.5f, 0.5f}};
  EXPECT_TRUE(A.overlaps(A2));
}

TEST(TuningBlockTest, MatchesConfigAt) {
  TuningBlock Block{1, {0.5f, 0.7f}};
  EXPECT_TRUE(Block.matchesConfigAt({0.0f, 0.5f, 0.7f, 0.0f}));
  EXPECT_FALSE(Block.matchesConfigAt({0.0f, 0.5f, 0.5f, 0.0f}));
  EXPECT_FALSE(Block.matchesConfigAt({0.0f, 0.5f})); // Out of range.
}

TEST(TuningBlockTest, PerModuleBlocksCoverSubspaceVariants) {
  const std::vector<PruneConfig> Subspace{{0.3f, 0.0f, 0.5f},
                                          {0.3f, 0.7f, 0.5f}};
  const std::vector<TuningBlock> Blocks = perModuleBlocks(Subspace);
  // Variants: m0@0.3, m1@0.7, m2@0.5 (rate-0 modules omitted).
  ASSERT_EQ(Blocks.size(), 3u);
  std::set<std::string> Ids;
  for (const TuningBlock &Block : Blocks)
    Ids.insert(Block.id());
  EXPECT_TRUE(Ids.count("m0@0.3"));
  EXPECT_TRUE(Ids.count("m1@0.7"));
  EXPECT_TRUE(Ids.count("m2@0.5"));
}

TEST(TuningBlockTest, PartitionGroupsAreNonOverlapping) {
  std::vector<TuningBlock> Blocks{
      {0, {0.3f}}, {0, {0.5f}}, {1, {0.3f}}, {1, {0.5f}}, {2, {0.7f}},
  };
  const auto Groups = partitionIntoGroups(Blocks);
  // First-fit after sorting: {m0@.3, m1@.3, m2@.7} and {m0@.5, m1@.5}.
  ASSERT_EQ(Groups.size(), 2u);
  for (const auto &Group : Groups)
    for (size_t A = 0; A < Group.size(); ++A)
      for (size_t B = A + 1; B < Group.size(); ++B)
        EXPECT_FALSE(Group[A].overlaps(Group[B]));
  size_t Total = 0;
  for (const auto &Group : Groups)
    Total += Group.size();
  EXPECT_EQ(Total, Blocks.size());
}

TEST(TuningBlockTest, PartitionHandlesMultiModuleBlocks) {
  std::vector<TuningBlock> Blocks{
      {0, {0.3f, 0.3f}}, // Spans 0-1.
      {1, {0.5f}},
      {2, {0.5f}},
  };
  const auto Groups = partitionIntoGroups(Blocks);
  // The span blocks m1@0.5 from the first group but not m2@0.5.
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_EQ(Groups[0].size(), 2u);
  EXPECT_EQ(Groups[1].size(), 1u);
}

//===----------------------------------------------------------------------===//
// coverWithBlocks
//===----------------------------------------------------------------------===//

TEST(CoverTest, PrefersLongestMatch) {
  const std::vector<PruneConfig> Subspace{{0.3f, 0.3f, 0.5f}};
  const std::vector<TuningBlock> Blocks{
      {0, {0.3f}}, {0, {0.3f, 0.3f}}, {2, {0.5f}}};
  const auto Vectors = coverWithBlocks(Subspace, Blocks);
  ASSERT_EQ(Vectors.size(), 1u);
  // Longest match at module 0 is the two-module block (index 1).
  ASSERT_EQ(Vectors[0].size(), 2u);
  EXPECT_EQ(Vectors[0][0], 1);
  EXPECT_EQ(Vectors[0][1], 2);
}

TEST(CoverTest, UncoveredModulesAreSkipped) {
  const std::vector<PruneConfig> Subspace{{0.7f, 0.5f}};
  const std::vector<TuningBlock> Blocks{{1, {0.5f}}};
  const auto Vectors = coverWithBlocks(Subspace, Blocks);
  ASSERT_EQ(Vectors[0].size(), 1u);
  EXPECT_EQ(Vectors[0][0], 0);
}

TEST(CoverTest, CoverBlocksNeverOverlap) {
  Rng Generator(5);
  const std::vector<PruneConfig> Subspace =
      sampleSubspace(6, 20, standardRates(), Generator);
  const std::vector<TuningBlock> Blocks = perModuleBlocks(Subspace);
  const auto Vectors = coverWithBlocks(Subspace, Blocks);
  ASSERT_EQ(Vectors.size(), Subspace.size());
  for (size_t N = 0; N < Subspace.size(); ++N) {
    std::set<int> Modules;
    for (int Index : Vectors[N]) {
      const TuningBlock &Block = Blocks[Index];
      EXPECT_TRUE(Block.matchesConfigAt(Subspace[N]));
      for (int M = Block.FirstModule; M <= Block.lastModule(); ++M)
        EXPECT_TRUE(Modules.insert(M).second) << "overlapping cover";
    }
  }
}

//===----------------------------------------------------------------------===//
// identifyTuningBlocks
//===----------------------------------------------------------------------===//

TEST(IdentifierTest, Figure4StyleExample) {
  // Four 5-module networks sharing long common runs, in the spirit of
  // the paper's Figure 4 (rates 0 / 0.3 / 0.5).
  const std::vector<PruneConfig> Subspace{
      {0.3f, 0.3f, 0.3f, 0.5f, 0.5f},
      {0.3f, 0.3f, 0.5f, 0.5f, 0.5f},
      {0.5f, 0.3f, 0.3f, 0.5f, 0.5f},
      {0.0f, 0.3f, 0.5f, 0.5f, 0.5f},
  };
  const IdentifierResult Result =
      identifyTuningBlocks(5, Subspace, {0.0f, 0.3f, 0.5f});

  // Every identified block must appear in >= 2 networks (heuristic 1).
  for (const TuningBlock &Block : Result.Blocks) {
    int Matches = 0;
    for (const PruneConfig &Config : Subspace)
      Matches += Block.matchesConfigAt(Config);
    EXPECT_GE(Matches, 2) << Block.id();
  }
  EXPECT_FALSE(Result.Blocks.empty());
  EXPECT_EQ(Result.CompositeVectors.size(), Subspace.size());
  // The shared suffix "4(.5)" (and usually "3(.5) 4(.5)") is found.
  bool CoversTail = false;
  for (const TuningBlock &Block : Result.Blocks)
    CoversTail = CoversTail || Block.lastModule() == 4;
  EXPECT_TRUE(CoversTail);
}

TEST(IdentifierTest, BlocksAreConsecutiveInsideOneNetwork) {
  Rng Generator(9);
  const std::vector<PruneConfig> Subspace =
      sampleSubspace(6, 16, standardRates(), Generator);
  const IdentifierResult Result =
      identifyTuningBlocks(6, Subspace, standardRates());
  for (const TuningBlock &Block : Result.Blocks) {
    EXPECT_GE(Block.FirstModule, 0);
    EXPECT_LT(Block.lastModule(), 6);
    EXPECT_FALSE(Block.isIdentity());
  }
}

TEST(IdentifierTest, CompositeVectorsMatchTheirConfigs) {
  Rng Generator(10);
  const std::vector<PruneConfig> Subspace =
      sampleSubspace(5, 12, standardRates(), Generator);
  const IdentifierResult Result =
      identifyTuningBlocks(5, Subspace, standardRates());
  ASSERT_EQ(Result.CompositeVectors.size(), Subspace.size());
  for (size_t N = 0; N < Subspace.size(); ++N)
    for (int Index : Result.CompositeVectors[N])
      EXPECT_TRUE(
          Result.Blocks[Index].matchesConfigAt(Subspace[N]));
}

TEST(IdentifierTest, RateRunCollectionsYieldLongerBlocks) {
  // Collection-2-style subspaces (one rate per run of modules) should
  // give the identifier multi-module blocks, the effect Table 5 reports.
  Rng Generator(11);
  const std::vector<PruneConfig> Subspace =
      sampleRunSubspace(8, 8, 2, {0.3f, 0.5f, 0.7f}, Generator);
  const IdentifierResult Result =
      identifyTuningBlocks(8, Subspace, standardRates());
  int LongBlocks = 0;
  for (const TuningBlock &Block : Result.Blocks)
    LongBlocks += Block.moduleCount() > 1;
  EXPECT_GT(LongBlocks, 0);
}

TEST(IdentifierTest, IdenticalNetworksShareEverything) {
  // Two identical configs: the whole network body is one shared block.
  const std::vector<PruneConfig> Subspace{{0.5f, 0.5f, 0.5f},
                                          {0.5f, 0.5f, 0.5f}};
  const IdentifierResult Result =
      identifyTuningBlocks(3, Subspace, {0.0f, 0.5f});
  ASSERT_EQ(Result.Blocks.size(), 1u);
  EXPECT_EQ(Result.Blocks[0].moduleCount(), 3);
  EXPECT_EQ(Result.Blocks[0].id(), "m0-m2@0.5,0.5,0.5");
  for (const auto &Vector : Result.CompositeVectors)
    EXPECT_EQ(Vector.size(), 1u);
}

TEST(IdentifierTest, DisjointNetworksYieldNoBlocks) {
  // No module-rate pair repeats across these two networks.
  const std::vector<PruneConfig> Subspace{{0.3f, 0.5f},
                                          {0.5f, 0.3f}};
  const IdentifierResult Result =
      identifyTuningBlocks(2, Subspace, {0.0f, 0.3f, 0.5f});
  EXPECT_TRUE(Result.Blocks.empty());
}

TEST(IdentifierTest, TerminalNamesUseFigure4Notation) {
  const std::vector<PruneConfig> Subspace{{0.5f, 0.0f}, {0.5f, 0.3f}};
  const IdentifierResult Result =
      identifyTuningBlocks(2, Subspace, {0.0f, 0.3f, 0.5f});
  bool SawRateName = false;
  for (const auto &[Terminal, Name] : Result.TerminalNames)
    SawRateName = SawRateName || Name == "0(.5)";
  EXPECT_TRUE(SawRateName);
}

TEST(IdentifierTest, GrammarExpandsToConcatenatedNetworks) {
  const std::vector<PruneConfig> Subspace{{0.3f, 0.3f}, {0.3f, 0.3f}};
  const IdentifierResult Result =
      identifyTuningBlocks(2, Subspace, {0.0f, 0.3f});
  // Start rule expands to 2 networks x (2 modules + 1 end marker).
  EXPECT_EQ(Result.RuleGrammar.expand(0).size(), 6u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Exact block selection vs the heuristic (appended tests)
//===----------------------------------------------------------------------===//

#include "src/identifier/Optimal.h"

namespace {

TEST(OptimalBlocksTest, EmptySetCostIsPureFinetuning) {
  const std::vector<PruneConfig> Subspace{{0.5f, 0.5f}, {0.3f, 0.0f}};
  BlockCostModel Model;
  Model.FinetuneBaseCost = 4.0;
  EXPECT_DOUBLE_EQ(evaluateBlockSetCost(Subspace, {}, Model), 8.0);
}

TEST(OptimalBlocksTest, FullCoverHalvesFinetuneCost) {
  const std::vector<PruneConfig> Subspace{{0.5f, 0.5f}};
  const std::vector<TuningBlock> Blocks{TuningBlock{0, {0.5f, 0.5f}}};
  BlockCostModel Model; // Pretrain 1/module, base 4, saving 0.5.
  // Cost = 2 (pretrain) + 4 * (1 - 0.5 * 1.0) = 4.
  EXPECT_DOUBLE_EQ(evaluateBlockSetCost(Subspace, Blocks, Model), 4.0);
}

TEST(OptimalBlocksTest, CandidatesAreDistinctPrunedRuns) {
  const std::vector<PruneConfig> Subspace{{0.5f, 0.0f, 0.3f}};
  const std::vector<TuningBlock> Candidates =
      enumerateCandidateBlocks(Subspace);
  // m0@0.5 and m2@0.3 only: runs cannot cross the unpruned module.
  ASSERT_EQ(Candidates.size(), 2u);
  EXPECT_EQ(Candidates[0].id(), "m0@0.5");
  EXPECT_EQ(Candidates[1].id(), "m2@0.3");
}

TEST(OptimalBlocksTest, ExactSearchBeatsOrMatchesEveryBaseline) {
  Rng Generator(99);
  const std::vector<PruneConfig> Subspace =
      sampleSubspace(3, 4, {0.0f, 0.5f, 0.7f}, Generator);
  Result<OptimalBlocksResult> Optimal = solveOptimalBlocks(Subspace);
  ASSERT_TRUE(static_cast<bool>(Optimal)) << Optimal.message();
  // The optimum is no worse than: no blocks, per-module blocks, or the
  // Sequitur heuristic's choice.
  EXPECT_LE(Optimal->Cost, evaluateBlockSetCost(Subspace, {}));
  EXPECT_LE(Optimal->Cost,
            evaluateBlockSetCost(Subspace, perModuleBlocks(Subspace)));
  const IdentifierResult Heuristic =
      identifyTuningBlocks(3, Subspace, {0.0f, 0.5f, 0.7f});
  EXPECT_LE(Optimal->Cost,
            evaluateBlockSetCost(Subspace, Heuristic.Blocks) + 1e-9);
}

TEST(OptimalBlocksTest, SharedWholeNetworkPrefersOneLongBlock) {
  // Three identical fully-pruned networks: one whole-network block
  // covers everything for the pre-training price of a single block.
  const std::vector<PruneConfig> Subspace{
      {0.7f, 0.7f}, {0.7f, 0.7f}, {0.7f, 0.7f}};
  Result<OptimalBlocksResult> Optimal = solveOptimalBlocks(Subspace);
  ASSERT_TRUE(static_cast<bool>(Optimal));
  ASSERT_EQ(Optimal->Blocks.size(), 1u);
  EXPECT_EQ(Optimal->Blocks[0].id(), "m0-m1@0.7,0.7");
  // Cost: 2 pretrain + 3 * 4 * 0.5 = 8 (vs 12 with no blocks).
  EXPECT_DOUBLE_EQ(Optimal->Cost, 8.0);
}

TEST(OptimalBlocksTest, RefusesOversizedInstances) {
  Rng Generator(7);
  const std::vector<PruneConfig> Subspace =
      sampleSubspace(8, 24, standardRates(), Generator);
  Result<OptimalBlocksResult> Optimal =
      solveOptimalBlocks(Subspace, BlockCostModel(), /*MaxCandidates=*/10);
  ASSERT_FALSE(static_cast<bool>(Optimal));
  EXPECT_NE(Optimal.message().find("NP-hard"), std::string::npos);
}

TEST(OptimalBlocksTest, HeuristicStaysWithinFactorTwoOfOptimal) {
  // Random tiny instances: the Sequitur heuristic's block set must cost
  // at most twice the exact optimum under the default model (empirically
  // it is much closer; 2x guards the property without overfitting).
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Rng Generator(Seed);
    const std::vector<PruneConfig> Subspace =
        sampleSubspace(3, 3, {0.0f, 0.3f, 0.7f}, Generator);
    Result<OptimalBlocksResult> Optimal = solveOptimalBlocks(Subspace);
    ASSERT_TRUE(static_cast<bool>(Optimal)) << Optimal.message();
    const IdentifierResult Heuristic =
        identifyTuningBlocks(3, Subspace, {0.0f, 0.3f, 0.7f});
    const double HeuristicCost =
        evaluateBlockSetCost(Subspace, Heuristic.Blocks);
    EXPECT_LE(HeuristicCost, 2.0 * Optimal->Cost + 1e-9)
        << "seed " << Seed;
  }
}

} // namespace
