//===- tests/KernelFusedTest.cpp - Fused conv + packed weights tests -------===//
//
// Pins the two contracts ISSUE 7 introduced on the kernel layer:
//
//  * convForwardFused() is bit-identical to a blocked GEMM over a
//    materialized im2col matrix, for every split kind and every worker
//    count — the fused path changes where B panels come from, never
//    which floats are summed in which order.
//
//  * PackedWeightsCache re-validates its content fingerprint on every
//    lookup, so stale panels are never used after a weight mutation,
//    while unchanged weights always hit the cache.
//
// Plus the WOOTZ_KERNEL_WORKERS parser's rejection of garbage values.
//
//===----------------------------------------------------------------------===//

#include "src/compiler/Multiplexing.h"
#include "src/compiler/NetsFactory.h"
#include "src/models/MiniModels.h"
#include "src/nn/Graph.h"
#include "src/nn/Layers.h"
#include "src/tensor/Ops.h"
#include "src/tensor/PackedWeights.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace wootz;

namespace {

//===----------------------------------------------------------------------===//
// Fused im2col+pack vs. materialized im2col
//===----------------------------------------------------------------------===//

struct ConvProblem {
  ConvGeometry G;
  int Batch = 0;
  int Height = 0;
  int Width = 0;
};

/// The geometries under test: stride-1 padded (the memcpy fast path),
/// stride-2, a 5x5 kernel with wide padding, and a pointwise 1x1.
std::vector<ConvProblem> convProblems() {
  return {
      {{3, 8, 3, 1, 1}, 3, 8, 8},
      {{4, 6, 3, 2, 1}, 2, 9, 9},
      {{2, 5, 5, 1, 2}, 2, 7, 7},
      {{3, 4, 1, 1, 0}, 4, 6, 6},
  };
}

std::vector<float> fillDeterministic(size_t Count, float Scale) {
  std::vector<float> Out(Count);
  for (size_t I = 0; I < Count; ++I)
    Out[I] = Scale * static_cast<float>(static_cast<int>(I % 23) - 11);
  return Out;
}

/// The oracle: materialize each sample's im2col matrix and run the same
/// blocked GEMM engine over it, bias fused, exactly as the eval path did
/// before fusion.
std::vector<float> convViaMaterializedIm2col(const ConvProblem &P,
                                             const std::vector<float> &Images,
                                             const std::vector<float> &Weights,
                                             const std::vector<float> &Bias) {
  const int OutH = P.G.outExtent(P.Height);
  const int OutW = P.G.outExtent(P.Width);
  const int M = P.G.OutChannels;
  const int ColRows = P.G.InChannels * P.G.KernelSize * P.G.KernelSize;
  const int ColCols = OutH * OutW;
  const size_t InPlane =
      static_cast<size_t>(P.G.InChannels) * P.Height * P.Width;
  const size_t OutPlane = static_cast<size_t>(M) * ColCols;
  std::vector<float> Columns(static_cast<size_t>(ColRows) * ColCols);
  std::vector<float> Out(static_cast<size_t>(P.Batch) * OutPlane);
  for (int S = 0; S < P.Batch; ++S) {
    im2col(Images.data() + S * InPlane, P.G.InChannels, P.Height, P.Width,
           P.G, Columns.data());
    detail::blockedGemm(Weights.data(), static_cast<size_t>(ColRows), 1,
                        Columns.data(), static_cast<size_t>(ColCols), 1,
                        Out.data() + S * OutPlane, M, ColRows, ColCols,
                        /*Accumulate=*/false, Bias.data());
  }
  return Out;
}

std::vector<float> convViaFused(const ConvProblem &P,
                                const std::vector<float> &Images,
                                const std::vector<float> &Weights,
                                const std::vector<float> &Bias,
                                const PackedPanels *Pre,
                                const ConvSplit *Forced) {
  const int OutH = P.G.outExtent(P.Height);
  const int OutW = P.G.outExtent(P.Width);
  const size_t OutPlane =
      static_cast<size_t>(P.G.OutChannels) * OutH * OutW;
  std::vector<float> Out(static_cast<size_t>(P.Batch) * OutPlane);
  convForwardFused(Images.data(), P.Batch, P.Height, P.Width, P.G, Pre,
                   Weights.data(), Bias.data(), /*FuseReLU=*/false,
                   Out.data(), Forced);
  return Out;
}

void expectBitIdentical(const std::vector<float> &A,
                        const std::vector<float> &B, const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  EXPECT_EQ(0, std::memcmp(A.data(), B.data(), A.size() * sizeof(float)))
      << What << ": outputs differ in at least one bit";
}

TEST(KernelFusedTest, MatchesMaterializedIm2colBitForBit) {
  for (const ConvProblem &P : convProblems()) {
    const int ColRows = P.G.InChannels * P.G.KernelSize * P.G.KernelSize;
    const auto Images = fillDeterministic(
        static_cast<size_t>(P.Batch) * P.G.InChannels * P.Height * P.Width,
        0.125f);
    const auto Weights = fillDeterministic(
        static_cast<size_t>(P.G.OutChannels) * ColRows, 0.25f);
    const auto Bias =
        fillDeterministic(static_cast<size_t>(P.G.OutChannels), 0.5f);

    const auto Expected = convViaMaterializedIm2col(P, Images, Weights, Bias);
    const ConvSplit Serial; // defaults to Serial
    const auto Fused =
        convViaFused(P, Images, Weights, Bias, nullptr, &Serial);
    expectBitIdentical(Expected, Fused, "fused vs materialized");
  }
}

TEST(KernelFusedTest, EverySplitKindIsBitIdenticalToSerial) {
  setKernelWorkers(4);
  for (const ConvProblem &P : convProblems()) {
    const int OutH = P.G.outExtent(P.Height);
    const int OutW = P.G.outExtent(P.Width);
    const int ColRows = P.G.InChannels * P.G.KernelSize * P.G.KernelSize;
    const auto Images = fillDeterministic(
        static_cast<size_t>(P.Batch) * P.G.InChannels * P.Height * P.Width,
        0.0625f);
    const auto Weights = fillDeterministic(
        static_cast<size_t>(P.G.OutChannels) * ColRows, 0.25f);
    const auto Bias =
        fillDeterministic(static_cast<size_t>(P.G.OutChannels), 1.0f);

    const ConvSplit Serial;
    const auto Golden =
        convViaFused(P, Images, Weights, Bias, nullptr, &Serial);

    ConvSplit Inter;
    Inter.Kind = ConvSplitKind::InterOp;
    Inter.Tasks = static_cast<size_t>(P.Batch);
    expectBitIdentical(
        Golden, convViaFused(P, Images, Weights, Bias, nullptr, &Inter),
        "inter-op vs serial");

    // Intra-op with several chunk widths, including one that does not
    // divide the column count and one narrower than NR.
    for (int Chunk : {7, 16, 48, OutH * OutW}) {
      ConvSplit Intra;
      Intra.Kind = ConvSplitKind::IntraOp;
      Intra.ColumnChunk = Chunk;
      const int ColCols = OutH * OutW;
      Intra.Tasks = static_cast<size_t>(P.Batch) *
                    ((ColCols + Chunk - 1) / Chunk);
      expectBitIdentical(
          Golden, convViaFused(P, Images, Weights, Bias, nullptr, &Intra),
          "intra-op vs serial");
    }
  }
  setKernelWorkers(1);
}

TEST(KernelFusedTest, PrePackedWeightsMatchPerCallPacking) {
  for (const ConvProblem &P : convProblems()) {
    const int ColRows = P.G.InChannels * P.G.KernelSize * P.G.KernelSize;
    const auto Images = fillDeterministic(
        static_cast<size_t>(P.Batch) * P.G.InChannels * P.Height * P.Width,
        0.125f);
    const auto Weights = fillDeterministic(
        static_cast<size_t>(P.G.OutChannels) * ColRows, 0.375f);
    const auto Bias =
        fillDeterministic(static_cast<size_t>(P.G.OutChannels), 0.5f);

    const PackedPanels Pre =
        packGemmA(Weights.data(), static_cast<size_t>(ColRows), 1,
                  P.G.OutChannels, ColRows);
    const ConvSplit Serial;
    expectBitIdentical(
        convViaFused(P, Images, Weights, Bias, nullptr, &Serial),
        convViaFused(P, Images, Weights, Bias, &Pre, &Serial),
        "pre-packed vs per-call packed");
  }
}

//===----------------------------------------------------------------------===//
// Worker-count bit-identity of whole-model eval forwards
//===----------------------------------------------------------------------===//

Graph buildFullModel(StandardModel Which, std::string &LogitsNode) {
  Result<ModelSpec> Spec = makeStandardModel(Which, 4);
  EXPECT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  const MultiplexingModel Model(Spec.take());
  Graph Network;
  Rng Generator(7);
  Result<BuildResult> Built = Model.build(Network, BuildMode::FullModel,
                                          PruneInfo(), "full", Generator);
  EXPECT_TRUE(static_cast<bool>(Built)) << Built.message();
  LogitsNode = Built->LogitsNode;
  Network.initParams(Generator);
  return Network;
}

Tensor evalLogits(const Graph &Network, const std::string &LogitsNode) {
  Tensor In(Shape{3, 3, 8, 8});
  for (size_t I = 0; I < In.size(); ++I)
    In.data()[I] = 0.02f * static_cast<float>(static_cast<int>(I % 17) - 8);
  ExecContext Ctx(Network);
  Ctx.setInput("data", std::move(In));
  Ctx.forward(Network, /*Training=*/false);
  return Ctx.activation(LogitsNode);
}

TEST(KernelFusedTest, MiniModelEvalForwardIsBitIdenticalAcrossWorkers) {
  for (StandardModel Which : standardModels()) {
    std::string Logits;
    Graph Network = buildFullModel(Which, Logits);
    setKernelWorkers(1);
    const Tensor Golden = evalLogits(Network, Logits);
    for (unsigned Workers : {2u, 4u, 8u}) {
      setKernelWorkers(Workers);
      const Tensor Out = evalLogits(Network, Logits);
      ASSERT_EQ(Out.size(), Golden.size());
      EXPECT_EQ(0, std::memcmp(Out.data(), Golden.data(),
                               Golden.size() * sizeof(float)))
          << standardModelName(Which) << " diverges at " << Workers
          << " workers";
    }
    setKernelWorkers(1);
  }
}

//===----------------------------------------------------------------------===//
// PackedWeightsCache
//===----------------------------------------------------------------------===//

TEST(PackedWeightsTest, SecondLookupHitsWithoutRepacking) {
  PackedWeightsCache &Cache = PackedWeightsCache::instance();
  Cache.clear();
  const auto Weights = fillDeterministic(16 * 27, 0.25f);

  const auto First = Cache.convWeights(Weights.data(), 16, 27);
  ASSERT_TRUE(First);
  EXPECT_FALSE(First->empty());
  const auto Second = Cache.convWeights(Weights.data(), 16, 27);
  EXPECT_EQ(First.get(), Second.get()) << "hit must reuse the panels";

  const PackedWeightsCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Repacks, 0u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_GT(S.Bytes, 0u);
}

TEST(PackedWeightsTest, MutationForcesRepackAndStalePanelsAreNeverUsed) {
  PackedWeightsCache &Cache = PackedWeightsCache::instance();
  Cache.clear();
  auto Weights = fillDeterministic(8 * 18, 0.5f);

  const auto Before = Cache.convWeights(Weights.data(), 8, 18);
  ASSERT_TRUE(Before);

  // Mutate one element the way a training step would.
  Weights[5] += 1.0f;
  const auto After = Cache.convWeights(Weights.data(), 8, 18);
  ASSERT_TRUE(After);
  EXPECT_NE(Before.get(), After.get())
      << "stale panels must not be returned after a mutation";
  EXPECT_EQ(Cache.stats().Repacks, 1u);

  // The repacked panels are exactly a fresh pack of the mutated matrix;
  // the caller-held stale panels survive (shared_ptr) but a new pack of
  // the old bytes they hold no longer matches.
  const PackedPanels Fresh = packGemmA(Weights.data(), 18, 1, 8, 18);
  ASSERT_EQ(After->Data.size(), Fresh.Data.size());
  EXPECT_EQ(0, std::memcmp(After->Data.data(), Fresh.Data.data(),
                           Fresh.Data.size() * sizeof(float)));
  EXPECT_NE(0, std::memcmp(Before->Data.data(), Fresh.Data.data(),
                           Fresh.Data.size() * sizeof(float)));

  // Unchanged weights hit again: the fingerprint check is per-lookup,
  // not per-pointer-change.
  const auto Again = Cache.convWeights(Weights.data(), 8, 18);
  EXPECT_EQ(After.get(), Again.get());
  EXPECT_EQ(Cache.stats().Hits, 1u);
}

TEST(PackedWeightsTest, ConvAndDenseRolesAreSeparateEntries) {
  PackedWeightsCache &Cache = PackedWeightsCache::instance();
  Cache.clear();
  // A square matrix is valid as either operand; the role must still key
  // separately because the panel layouts differ.
  const auto Weights = fillDeterministic(32 * 32, 0.125f);
  const auto AsConv = Cache.convWeights(Weights.data(), 32, 32);
  const auto AsDense = Cache.denseWeights(Weights.data(), 32, 32);
  EXPECT_NE(AsConv.get(), AsDense.get());
  EXPECT_EQ(Cache.stats().Entries, 2u);

  Cache.invalidate(Weights.data());
  EXPECT_EQ(Cache.stats().Entries, 0u);
  EXPECT_EQ(Cache.stats().Bytes, 0u);
}

TEST(PackedWeightsTest, DensePanelsMatchDirectPackGemmB) {
  PackedWeightsCache &Cache = PackedWeightsCache::instance();
  Cache.clear();
  const int OutF = 24, InF = 40;
  const auto Weights =
      fillDeterministic(static_cast<size_t>(OutF) * InF, 0.25f);
  const auto Cached = Cache.denseWeights(Weights.data(), OutF, InF);
  // x * W^T: B(k, j) = Weights[j * InF + k].
  const PackedPanels Direct =
      packGemmB(Weights.data(), 1, static_cast<size_t>(InF), InF, OutF);
  ASSERT_EQ(Cached->Data.size(), Direct.Data.size());
  EXPECT_EQ(0, std::memcmp(Cached->Data.data(), Direct.Data.data(),
                           Direct.Data.size() * sizeof(float)));
}

//===----------------------------------------------------------------------===//
// WOOTZ_KERNEL_WORKERS parsing
//===----------------------------------------------------------------------===//

TEST(KernelWorkersEnvTest, AcceptsPlainCountsAndZeroForHardware) {
  std::string Warning;
  EXPECT_EQ(parseKernelWorkers("1", &Warning), 1u);
  EXPECT_TRUE(Warning.empty());
  EXPECT_EQ(parseKernelWorkers("4", &Warning), 4u);
  EXPECT_TRUE(Warning.empty());
  EXPECT_EQ(parseKernelWorkers("4 ", &Warning), 4u) << "trailing blanks ok";
  EXPECT_TRUE(Warning.empty());
  EXPECT_GE(parseKernelWorkers("0", &Warning), 1u)
      << "0 resolves to hardware concurrency, never stays 0";
  EXPECT_TRUE(Warning.empty());
}

TEST(KernelWorkersEnvTest, RejectsGarbageWithWarningInsteadOfWrapping) {
  const char *Bad[] = {"-2",   "-9999999999999999999",
                       "abc",  "4x",
                       "",     "4097",
                       " ",    "0x10"};
  for (const char *Text : Bad) {
    std::string Warning;
    EXPECT_EQ(parseKernelWorkers(Text, &Warning), 1u)
        << "'" << Text << "' must fall back to serial";
    EXPECT_FALSE(Warning.empty())
        << "'" << Text << "' must produce a warning";
  }
  EXPECT_EQ(parseKernelWorkers(nullptr, nullptr), 1u);
}

} // namespace
