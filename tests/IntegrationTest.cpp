//===- tests/IntegrationTest.cpp - end-to-end pipeline tests ----------------------===//
//
// Exercises the full Figure 2 flow — Prototxt in, best network out — and
// asserts the paper-shaped relationships between the baseline and the
// composability-based method at miniature scale.
//
//===----------------------------------------------------------------------===//

#include "src/wootz/wootz.h"

#include <gtest/gtest.h>

using namespace wootz;

namespace {

class PipelineFixture : public ::testing::Test {
protected:
  void SetUp() override {
    // A hard dataset (CUB200-analogue noise level): inheritance alone
    // must lose real accuracy or the baseline-vs-composability contrast
    // the paper reports cannot show.
    SyntheticSpec DataSpec;
    DataSpec.Classes = 6;
    DataSpec.TrainPerClass = 24;
    DataSpec.TestPerClass = 12;
    DataSpec.Noise = 0.9f;
    DataSpec.Seed = 77;
    Data = generateSynthetic(DataSpec);

    Result<ModelSpec> Parsed = makeStandardModel(StandardModel::ResNetA, 6);
    ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
    Spec = Parsed.take();

    Meta.FullModelSteps = 120;
    Meta.PretrainSteps = 30;
    Meta.FinetuneSteps = 36;
    Meta.BatchSize = 8;
    Meta.EvalEvery = 12;

    Rng SampleGen(5);
    Subspace = sampleSubspace(Spec.moduleCount(), 6, standardRates(),
                              SampleGen);
    ASSERT_EQ(Subspace.size(), 6u);
  }

  PipelineResult run(bool Composability, bool Identifier = false) {
    PipelineOptions Options;
    Options.UseComposability = Composability;
    Options.UseIdentifier = Identifier;
    Options.KeepCurves = true;
    Rng Generator(99);
    Result<PipelineResult> Run =
        runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator);
    EXPECT_TRUE(static_cast<bool>(Run)) << Run.message();
    return Run.take();
  }

  Dataset Data;
  ModelSpec Spec;
  TrainMeta Meta;
  std::vector<PruneConfig> Subspace;
};

TEST_F(PipelineFixture, BaselineEvaluatesWholeSubspace) {
  const PipelineResult Base = run(false);
  EXPECT_EQ(Base.Evaluations.size(), Subspace.size());
  EXPECT_TRUE(Base.Blocks.empty());
  EXPECT_EQ(Base.Pretrain.BlockCount, 0);
  EXPECT_GT(Base.FullAccuracy, 0.5);
  // Exploration order is ascending model size.
  for (size_t I = 1; I < Base.Evaluations.size(); ++I)
    EXPECT_LE(Base.Evaluations[I - 1].WeightCount,
              Base.Evaluations[I].WeightCount);
  // Every evaluated network is smaller than the full model.
  for (const EvaluatedConfig &E : Base.Evaluations) {
    EXPECT_LT(E.WeightCount, Base.FullWeightCount);
    EXPECT_GT(E.SizeFraction, 0.0);
    EXPECT_LT(E.SizeFraction, 1.0);
  }
}

TEST_F(PipelineFixture, ComposabilityImprovesInitAccuracy) {
  const PipelineResult Base = run(false);
  const PipelineResult Comp = run(true);
  ASSERT_EQ(Base.Evaluations.size(), Comp.Evaluations.size());
  EXPECT_FALSE(Comp.Blocks.empty());
  EXPECT_GT(Comp.Pretrain.BlockCount, 0);
  EXPECT_LT(Comp.Pretrain.LastLoss, Comp.Pretrain.FirstLoss);

  // §7.2's composability hypothesis: median init+ must clearly beat
  // median init (paper reports 50-90% gaps; we require a solid margin).
  double BaseInit = 0.0, CompInit = 0.0;
  for (size_t I = 0; I < Base.Evaluations.size(); ++I) {
    BaseInit += Base.Evaluations[I].InitAccuracy;
    CompInit += Comp.Evaluations[I].InitAccuracy;
  }
  BaseInit /= Base.Evaluations.size();
  CompInit /= Comp.Evaluations.size();
  EXPECT_GT(CompInit, BaseInit + 0.08)
      << "mean init " << BaseInit << " vs init+ " << CompInit;

  // Final accuracy must not degrade on average.
  double BaseFinal = 0.0, CompFinal = 0.0;
  for (size_t I = 0; I < Base.Evaluations.size(); ++I) {
    BaseFinal += Base.Evaluations[I].FinalAccuracy;
    CompFinal += Comp.Evaluations[I].FinalAccuracy;
  }
  EXPECT_GE(CompFinal, BaseFinal - 0.02 * Base.Evaluations.size());
}

TEST_F(PipelineFixture, SummaryFindsSmallerOrEqualWinnerSooner) {
  const PipelineResult Base = run(false);
  const PipelineResult Comp = run(true);
  // A mid-range threshold below the full accuracy.
  const PruningObjective Objective =
      smallestMeetingAccuracy(Comp.FullAccuracy - 0.1);
  const ExplorationSummary BaseSummary =
      summarizeExploration(Base, Objective, 1);
  const ExplorationSummary CompSummary =
      summarizeExploration(Comp, Objective, 1);
  if (CompSummary.WinnerIndex >= 0 && BaseSummary.WinnerIndex >= 0) {
    EXPECT_LE(CompSummary.WinnerIndex, BaseSummary.WinnerIndex);
    EXPECT_LE(CompSummary.WinnerSizeFraction,
              BaseSummary.WinnerSizeFraction + 1e-9);
  }
  // The composability run must at least find a winner when the baseline
  // does (block-trained networks dominate default ones).
  if (BaseSummary.WinnerIndex >= 0) {
    EXPECT_GE(CompSummary.WinnerIndex, 0);
  }
  EXPECT_GT(CompSummary.PretrainSeconds, 0.0);
  EXPECT_GT(CompSummary.OverheadFraction, 0.0);
  EXPECT_LE(CompSummary.OverheadFraction, 1.0);
}

TEST_F(PipelineFixture, MultiNodeSummaryIsConsistent) {
  const PipelineResult Comp = run(true);
  const PruningObjective Objective =
      smallestMeetingAccuracy(Comp.FullAccuracy - 0.1);
  const ExplorationSummary OneNode =
      summarizeExploration(Comp, Objective, 1);
  const ExplorationSummary FourNodes =
      summarizeExploration(Comp, Objective, 4);
  EXPECT_GE(FourNodes.ConfigsEvaluated, OneNode.ConfigsEvaluated);
  EXPECT_LE(FourNodes.Seconds, OneNode.Seconds + 1e-9);
}

TEST_F(PipelineFixture, IdentifierModeRuns) {
  const PipelineResult Comp = run(true, /*Identifier=*/true);
  EXPECT_EQ(Comp.Evaluations.size(), Subspace.size());
  // Identifier blocks satisfy heuristic 1 (appear in >= 2 networks).
  for (const TuningBlock &Block : Comp.Blocks) {
    int Matches = 0;
    for (const PruneConfig &Config : Subspace)
      Matches += Block.matchesConfigAt(Config);
    EXPECT_GE(Matches, 2) << Block.id();
  }
}

TEST_F(PipelineFixture, CurvesAreRecordedWhenRequested) {
  const PipelineResult Comp = run(true);
  for (const EvaluatedConfig &E : Comp.Evaluations) {
    ASSERT_GE(E.Curve.size(), 2u);
    EXPECT_EQ(E.Curve.front().Step, 0);
    EXPECT_DOUBLE_EQ(E.Curve.front().Accuracy, E.InitAccuracy);
  }
}

TEST_F(PipelineFixture, RejectsEmptySubspace) {
  PipelineOptions Options;
  Rng Generator(1);
  Result<PipelineResult> Run =
      runPruningPipeline(Spec, Data, {}, Meta, Options, Generator);
  EXPECT_FALSE(static_cast<bool>(Run));
}

} // namespace

//===----------------------------------------------------------------------===//
// Reports and parallel evaluation (appended tests)
//===----------------------------------------------------------------------===//

#include "src/explore/Report.h"

namespace {

TEST_F(PipelineFixture, CsvHasOneRowPerEvaluation) {
  const PipelineResult Comp = run(true);
  const std::string Csv = renderEvaluationsCsv(Comp);
  const std::vector<std::string> Lines = splitLines(Csv);
  // Header + one row per config (+ possible trailing empty line).
  size_t DataLines = 0;
  for (size_t I = 1; I < Lines.size(); ++I)
    DataLines += !trim(Lines[I]).empty();
  EXPECT_EQ(DataLines, Comp.Evaluations.size());
  EXPECT_NE(Lines[0].find("init_accuracy"), std::string::npos);
  // Config cells are quoted (they contain commas).
  EXPECT_NE(Csv.find("\"["), std::string::npos);
}

TEST_F(PipelineFixture, RunReportNamesTheWinner) {
  const PipelineResult Comp = run(true);
  const PruningObjective Objective =
      smallestMeetingAccuracy(Comp.FullAccuracy - 0.2);
  const std::string Report = renderRunReport(Comp, Objective, 2);
  EXPECT_NE(Report.find("# Wootz pruning run"), std::string::npos);
  EXPECT_NE(Report.find("tuning blocks pre-trained"), std::string::npos);
  const ExplorationSummary Summary =
      summarizeExploration(Comp, Objective, 2);
  if (Summary.WinnerIndex >= 0)
    EXPECT_NE(
        Report.find(formatConfig(
            Comp.Evaluations[Summary.WinnerIndex].Config)),
        std::string::npos);
  else
    EXPECT_NE(Report.find("No configuration met the objective"),
              std::string::npos);
}

TEST_F(PipelineFixture, ParallelWorkersMatchSerialResults) {
  PipelineOptions Serial;
  Serial.UseComposability = true;
  Rng G1(424);
  Result<PipelineResult> A =
      runPruningPipeline(Spec, Data, Subspace, Meta, Serial, G1);
  ASSERT_TRUE(static_cast<bool>(A)) << A.message();

  PipelineOptions Parallel = Serial;
  Parallel.Workers = 3;
  Rng G2(424);
  Result<PipelineResult> B =
      runPruningPipeline(Spec, Data, Subspace, Meta, Parallel, G2);
  ASSERT_TRUE(static_cast<bool>(B)) << B.message();

  ASSERT_EQ(A->Evaluations.size(), B->Evaluations.size());
  for (size_t I = 0; I < A->Evaluations.size(); ++I) {
    EXPECT_EQ(A->Evaluations[I].Config, B->Evaluations[I].Config);
    EXPECT_DOUBLE_EQ(A->Evaluations[I].InitAccuracy,
                     B->Evaluations[I].InitAccuracy);
    EXPECT_DOUBLE_EQ(A->Evaluations[I].FinalAccuracy,
                     B->Evaluations[I].FinalAccuracy);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Distilled fine-tuning (appended tests)
//===----------------------------------------------------------------------===//

namespace {

TEST_F(PipelineFixture, DistilledPipelineRunsAndStaysComparable) {
  PipelineOptions Options;
  Options.UseComposability = true;
  Options.DistillAlpha = 0.5f;
  Rng Generator(515);
  Result<PipelineResult> Run =
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator);
  ASSERT_TRUE(static_cast<bool>(Run)) << Run.message();
  ASSERT_EQ(Run->Evaluations.size(), Subspace.size());
  // Distillation must not collapse training: finals stay well above
  // chance on every configuration.
  for (const EvaluatedConfig &E : Run->Evaluations)
    EXPECT_GT(E.FinalAccuracy, 1.5 / Data.Classes)
        << formatConfig(E.Config);
}

} // namespace

//===----------------------------------------------------------------------===//
// Baseline report branch (appended tests)
//===----------------------------------------------------------------------===//

namespace {

TEST_F(PipelineFixture, BaselineReportSaysNoBlocks) {
  const PipelineResult Base = run(false);
  const PruningObjective Objective = smallestMeetingAccuracy(2.0);
  const std::string Report = renderRunReport(Base, Objective, 1);
  EXPECT_NE(Report.find("method: baseline (no tuning blocks)"),
            std::string::npos);
  EXPECT_NE(Report.find("No configuration met the objective"),
            std::string::npos);
}

} // namespace
