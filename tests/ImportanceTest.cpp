//===- tests/ImportanceTest.cpp - pruning/Importance unit tests -------------------===//

#include "src/compiler/Multiplexing.h"
#include "src/data/Synthetic.h"
#include "src/models/MiniModels.h"
#include "src/nn/Layers.h"
#include "src/pruning/Importance.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace wootz;

namespace {

TEST(ImportanceNameTest, RoundTrip) {
  for (ImportanceCriterion Criterion :
       {ImportanceCriterion::L1Norm, ImportanceCriterion::L2Norm,
        ImportanceCriterion::Taylor, ImportanceCriterion::TaylorExpansion,
        ImportanceCriterion::Apoz}) {
    Result<ImportanceCriterion> Parsed =
        parseImportanceCriterion(importanceCriterionName(Criterion));
    ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
    EXPECT_EQ(*Parsed, Criterion);
  }
  EXPECT_FALSE(static_cast<bool>(parseImportanceCriterion("magnitude")));
}

class ImportanceFixture : public ::testing::Test {
protected:
  void SetUp() override {
    SyntheticSpec DataSpec;
    DataSpec.Classes = 4;
    DataSpec.TrainPerClass = 16;
    DataSpec.TestPerClass = 8;
    DataSpec.Seed = 88;
    Data = generateSynthetic(DataSpec);

    Result<ModelSpec> Parsed = makeStandardModel(StandardModel::ResNetA, 4);
    ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
    Spec = Parsed.take();
    Model = std::make_unique<MultiplexingModel>(Spec);
    Rng Generator(91);
    Result<BuildResult> Built = Model->build(Full, BuildMode::FullModel,
                                             PruneInfo(), "full", Generator);
    ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  }

  Dataset Data;
  ModelSpec Spec;
  std::unique_ptr<MultiplexingModel> Model;
  Graph Full;
};

TEST_F(ImportanceFixture, L1SelectionsMatchLegacyPath) {
  PruneConfig Config = unprunedConfig(Spec);
  Config[0] = 0.5f;
  Config[2] = 0.7f;
  Result<FilterSelections> ByImportance = selectFiltersByImportance(
      Spec, Config, Full, "full", ImportanceCriterion::L1Norm);
  ASSERT_TRUE(static_cast<bool>(ByImportance)) << ByImportance.message();
  const FilterSelections Legacy =
      selectFiltersByL1(Spec, Config, Full, "full");
  EXPECT_EQ(*ByImportance, Legacy);
}

TEST_F(ImportanceFixture, WeightNormScoresOrderCraftedFilters) {
  auto &Conv = static_cast<Conv2D &>(Full.layer("full/m1_conv1"));
  Tensor &W = Conv.weight().Value;
  const int Filters = W.shape()[0];
  const size_t FilterSize = W.size() / Filters;
  // Filter i has constant magnitude i+1 but alternating sign: l1 and l2
  // must both rank by |i+1|.
  for (int O = 0; O < Filters; ++O)
    for (size_t J = 0; J < FilterSize; ++J)
      W[O * FilterSize + J] = (J % 2 ? -1.0f : 1.0f) * (O + 1);

  for (ImportanceCriterion Criterion :
       {ImportanceCriterion::L1Norm, ImportanceCriterion::L2Norm}) {
    Result<FilterScores> Scores =
        scoreFilters(Spec, Full, "full", Criterion);
    ASSERT_TRUE(static_cast<bool>(Scores)) << Scores.message();
    const std::vector<double> &M1 = Scores->at("m1_conv1");
    for (int O = 1; O < Filters; ++O)
      EXPECT_GT(M1[O], M1[O - 1])
          << importanceCriterionName(Criterion) << " filter " << O;
  }
}

TEST_F(ImportanceFixture, DataDrivenCriteriaNeedCalibration) {
  EXPECT_FALSE(static_cast<bool>(
      scoreFilters(Spec, Full, "full", ImportanceCriterion::Taylor)));
  EXPECT_FALSE(static_cast<bool>(scoreFilters(
      Spec, Full, "full", ImportanceCriterion::TaylorExpansion)));
  EXPECT_FALSE(static_cast<bool>(
      scoreFilters(Spec, Full, "full", ImportanceCriterion::Apoz)));
}

TEST_F(ImportanceFixture, TaylorExpansionScoresAreFiniteAndCoverAllConvs) {
  Result<FilterScores> Scores =
      scoreFilters(Spec, Full, "full", ImportanceCriterion::TaylorExpansion,
                   &Data, 2, 8);
  ASSERT_TRUE(static_cast<bool>(Scores)) << Scores.message();
  int ConvCount = 0;
  for (const LayerSpec &L : Spec.Layers)
    ConvCount += L.Kind == LayerKind::Convolution;
  EXPECT_EQ(static_cast<int>(Scores->size()), ConvCount);
  // Squared weight-gradient dot products: non-negative by construction,
  // and the trained-from-random network has no exactly-dead layer.
  for (const auto &[Name, LayerScores] : *Scores) {
    double Total = 0.0;
    for (double Score : LayerScores) {
      EXPECT_TRUE(std::isfinite(Score)) << Name;
      EXPECT_GE(Score, 0.0) << Name;
      Total += Score;
    }
    EXPECT_GT(Total, 0.0) << Name << ": all-zero TaylorExpansion scores";
  }
}

TEST_F(ImportanceFixture, TaylorExpansionDiffersFromActivationTaylor) {
  // The 2019 weight-gradient variant and the 2017 activation-gradient
  // variant measure different quantities; on a trained network their
  // score vectors must not coincide.
  Result<FilterScores> Weights =
      scoreFilters(Spec, Full, "full", ImportanceCriterion::TaylorExpansion,
                   &Data, 2, 8);
  Result<FilterScores> Activations = scoreFilters(
      Spec, Full, "full", ImportanceCriterion::Taylor, &Data, 2, 8);
  ASSERT_TRUE(static_cast<bool>(Weights)) << Weights.message();
  ASSERT_TRUE(static_cast<bool>(Activations)) << Activations.message();
  EXPECT_NE(*Weights, *Activations);
}

TEST_F(ImportanceFixture, TaylorScoresAreFiniteAndCoverAllConvs) {
  Result<FilterScores> Scores = scoreFilters(
      Spec, Full, "full", ImportanceCriterion::Taylor, &Data, 2, 8);
  ASSERT_TRUE(static_cast<bool>(Scores)) << Scores.message();
  int ConvCount = 0;
  for (const LayerSpec &L : Spec.Layers)
    ConvCount += L.Kind == LayerKind::Convolution;
  EXPECT_EQ(static_cast<int>(Scores->size()), ConvCount);
  for (const auto &[Name, LayerScores] : *Scores) {
    double Total = 0.0;
    for (double Score : LayerScores) {
      EXPECT_TRUE(std::isfinite(Score)) << Name;
      EXPECT_GE(Score, 0.0) << Name;
      Total += Score;
    }
    EXPECT_GT(Total, 0.0) << Name << ": all-zero Taylor scores";
  }
}

TEST_F(ImportanceFixture, TaylorLeavesTeacherStateUntouched) {
  const auto Before = Full.namedState();
  std::map<std::string, Tensor> Snapshot;
  for (const auto &[Name, State] : Before)
    Snapshot[Name] = State->Value;
  ASSERT_TRUE(static_cast<bool>(scoreFilters(
      Spec, Full, "full", ImportanceCriterion::Taylor, &Data, 2, 8)));
  for (auto &[Name, State] : Full.namedState()) {
    const Tensor &Old = Snapshot.at(Name);
    ASSERT_EQ(Old.size(), State->Value.size());
    for (size_t I = 0; I < Old.size(); ++I)
      ASSERT_EQ(Old[I], State->Value[I]) << Name << " drifted at " << I;
  }
}

TEST_F(ImportanceFixture, ApozScoresAreActiveFractions) {
  Result<FilterScores> Scores = scoreFilters(
      Spec, Full, "full", ImportanceCriterion::Apoz, &Data, 3, 8);
  ASSERT_TRUE(static_cast<bool>(Scores)) << Scores.message();
  for (const auto &[Name, LayerScores] : *Scores)
    for (double Score : LayerScores) {
      EXPECT_GE(Score, 0.0) << Name;
      EXPECT_LE(Score, 3.0 + 1e-9) << Name; // Batches accumulate.
    }
}

TEST_F(ImportanceFixture, SelectionsRespectKeptCounts) {
  Result<FilterScores> Scores = scoreFilters(
      Spec, Full, "full", ImportanceCriterion::Apoz, &Data, 2, 8);
  ASSERT_TRUE(static_cast<bool>(Scores));
  PruneConfig Config = unprunedConfig(Spec);
  Config[1] = 0.7f;
  const FilterSelections Selections =
      selectionsFromScores(Spec, Config, *Scores);
  EXPECT_EQ(Selections.at("m2_conv1").size(), 2u); // keep 2 of 8 at 70%.
  EXPECT_EQ(Selections.at("m1_conv1").size(), 8u); // Unpruned module.
  EXPECT_EQ(Selections.at("stem").size(), 12u);    // Never pruned.
  // Ascending order for slicing.
  const std::vector<int> &Kept = Selections.at("m2_conv1");
  EXPECT_LT(Kept[0], Kept[1]);
}

TEST_F(ImportanceFixture, DeterministicAcrossCalls) {
  Result<FilterScores> A = scoreFilters(
      Spec, Full, "full", ImportanceCriterion::Taylor, &Data, 2, 8);
  Result<FilterScores> B = scoreFilters(
      Spec, Full, "full", ImportanceCriterion::Taylor, &Data, 2, 8);
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  for (const auto &[Name, ScoresA] : *A) {
    const std::vector<double> &ScoresB = B->at(Name);
    for (size_t I = 0; I < ScoresA.size(); ++I)
      ASSERT_NEAR(ScoresA[I], ScoresB[I], 1e-12) << Name;
  }
}

} // namespace
