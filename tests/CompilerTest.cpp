//===- tests/CompilerTest.cpp - compiler/ unit tests ---------------------------------===//

#include "src/compiler/Codegen.h"
#include "src/compiler/GraphBuilder.h"
#include "src/compiler/NetsFactory.h"
#include "src/compiler/Solver.h"
#include "src/models/MiniModels.h"
#include "src/nn/Loss.h"
#include "src/nn/Serialize.h"

#include <gtest/gtest.h>

using namespace wootz;

namespace {

static ModelSpec resnetSpec() {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 6);
  EXPECT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  return Spec.take();
}

//===----------------------------------------------------------------------===//
// MultiplexingModel: FullModel mode
//===----------------------------------------------------------------------===//

TEST(MultiplexingTest, FullModelForwardShapes) {
  const MultiplexingModel Model(resnetSpec());
  Graph Network;
  Rng Generator(1);
  Result<BuildResult> Built = Model.build(Network, BuildMode::FullModel,
                                          PruneInfo(), "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  EXPECT_EQ(Built->LogitsNode, "full/logits");

  Network.setInput("data", Tensor(Shape{2, 3, 8, 8}));
  Network.forward(false);
  EXPECT_EQ(Network.activation("full/logits").shape(), Shape({2, 6}));
  EXPECT_EQ(Network.activation("full/m1_out").shape(),
            Shape({2, 12, 8, 8}));
}

TEST(MultiplexingTest, FineTuneModeShrinksChannels) {
  const ModelSpec Spec = resnetSpec();
  const MultiplexingModel Model(Spec);
  Graph Network;
  Rng Generator(2);
  PruneInfo Info;
  Info.Config = PruneConfig(Spec.moduleCount(), 0.7f);
  Result<BuildResult> Built = Model.build(Network, BuildMode::FineTune,
                                          Info, "net", Generator);
  ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  Network.setInput("data", Tensor(Shape{1, 3, 8, 8}));
  Network.forward(false);
  // 8 filters pruned at 70% leaves 2; module output stays at 12.
  EXPECT_EQ(Network.activation("net/m1_conv1").shape(),
            Shape({1, 2, 8, 8}));
  EXPECT_EQ(Network.activation("net/m1_out").shape(), Shape({1, 12, 8, 8}));
  EXPECT_EQ(Network.activation("net/logits").shape(), Shape({1, 6}));
}

TEST(MultiplexingTest, FineTuneRejectsBadConfig) {
  const MultiplexingModel Model(resnetSpec());
  Graph Network;
  Rng Generator(3);
  PruneInfo Info;
  Info.Config = {0.5f}; // Wrong module count.
  Result<BuildResult> Built = Model.build(Network, BuildMode::FineTune,
                                          Info, "net", Generator);
  EXPECT_FALSE(static_cast<bool>(Built));
}

//===----------------------------------------------------------------------===//
// MultiplexingModel: PreTrain mode (Teacher-Student)
//===----------------------------------------------------------------------===//

TEST(MultiplexingTest, PreTrainBuildsPortsPerBlock) {
  const ModelSpec Spec = resnetSpec();
  const MultiplexingModel Model(Spec);
  Graph Network;
  Rng Generator(4);
  PruneInfo Info;
  Info.Blocks = {TuningBlock{0, {0.5f}}, TuningBlock{2, {0.7f}}};
  Result<BuildResult> Built = Model.build(Network, BuildMode::PreTrain,
                                          Info, "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  ASSERT_EQ(Built->Ports.size(), 2u);
  EXPECT_EQ(Built->Ports[0].TeacherOut, "full/m1_out");
  EXPECT_EQ(Built->Ports[0].StudentOut, "full.b0/m1_out");
  EXPECT_EQ(Built->Ports[1].TeacherOut, "full/m3_out");

  Network.setInput("data", Tensor(Shape{2, 3, 8, 8}));
  Network.forward(true);
  // Student and teacher boundary activations agree in shape (the
  // composability dimension invariant).
  EXPECT_EQ(Network.activation(Built->Ports[0].StudentOut).shape(),
            Network.activation(Built->Ports[0].TeacherOut).shape());
}

TEST(MultiplexingTest, PreTrainFreezesTeacherOnly) {
  const ModelSpec Spec = resnetSpec();
  const MultiplexingModel Model(Spec);
  Graph Network;
  Rng Generator(5);
  PruneInfo Info;
  Info.Blocks = {TuningBlock{1, {0.5f}}};
  Result<BuildResult> Built = Model.build(Network, BuildMode::PreTrain,
                                          Info, "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built));
  // Trainable params all belong to the student prefix.
  const size_t StudentParams = Network.trainableParams().size();
  EXPECT_GT(StudentParams, 0u);
  Network.setTrainable("full.b0/m2_conv1", false);
  EXPECT_LT(Network.trainableParams().size(), StudentParams);
}

TEST(MultiplexingTest, PreTrainGradientsStayInStudent) {
  const ModelSpec Spec = resnetSpec();
  const MultiplexingModel Model(Spec);
  Graph Network;
  Rng Generator(6);
  PruneInfo Info;
  Info.Blocks = {TuningBlock{1, {0.5f}}};
  Result<BuildResult> Built = Model.build(Network, BuildMode::PreTrain,
                                          Info, "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built));

  Tensor Input(Shape{2, 3, 8, 8});
  Rng DataGen(7);
  for (size_t I = 0; I < Input.size(); ++I)
    Input[I] = DataGen.nextGaussian();
  Network.setInput("data", Input);
  Network.forward(true);
  Network.zeroGrads();
  Tensor Grad;
  const BlockPort &Port = Built->Ports[0];
  const double Loss =
      l2Reconstruction(Network.activation(Port.StudentOut),
                       Network.activation(Port.TeacherOut), Grad);
  EXPECT_GT(Loss, 0.0);
  Network.seedGradient(Port.StudentOut, Grad);
  Network.backward();

  // Teacher gradients are untouched; student gradients are live.
  EXPECT_DOUBLE_EQ(
      Network.layer("full/m2_conv1").params()[0]->Grad.sum(), 0.0);
  EXPECT_NE(Network.layer("full.b0/m2_conv1").params()[0]->Grad.sum(),
            0.0);
}

TEST(MultiplexingTest, MultiModuleBlockSpansBoundaries) {
  const ModelSpec Spec = resnetSpec();
  const MultiplexingModel Model(Spec);
  Graph Network;
  Rng Generator(8);
  PruneInfo Info;
  Info.Blocks = {TuningBlock{1, {0.5f, 0.7f}}}; // Modules m2-m3.
  Result<BuildResult> Built = Model.build(Network, BuildMode::PreTrain,
                                          Info, "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  EXPECT_EQ(Built->Ports[0].TeacherOut, "full/m3_out");
  EXPECT_EQ(Built->Ports[0].Layers.size(),
            Model.blockLayerNames(Info.Blocks[0]).size());
  Network.setInput("data", Tensor(Shape{1, 3, 8, 8}));
  Network.forward(true);
  EXPECT_EQ(Network.activation("full.b0/m3_out").shape(),
            Shape({1, 12, 8, 8}));
}

TEST(MultiplexingTest, PreTrainRejectsOutOfRangeBlock) {
  const MultiplexingModel Model(resnetSpec());
  Graph Network;
  Rng Generator(9);
  PruneInfo Info;
  Info.Blocks = {TuningBlock{3, {0.5f, 0.5f}}}; // m4-m5 of a 4-module net.
  Result<BuildResult> Built = Model.build(Network, BuildMode::PreTrain,
                                          Info, "full", Generator);
  EXPECT_FALSE(static_cast<bool>(Built));
}

TEST(MultiplexingTest, InceptionPreTrainWorks) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::InceptionA, 6);
  ASSERT_TRUE(static_cast<bool>(Spec));
  const MultiplexingModel Model(Spec.take());
  Graph Network;
  Rng Generator(10);
  PruneInfo Info;
  Info.Blocks = {TuningBlock{0, {0.7f}}, TuningBlock{2, {0.3f}}};
  Result<BuildResult> Built = Model.build(Network, BuildMode::PreTrain,
                                          Info, "full", Generator);
  ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  Network.setInput("data", Tensor(Shape{1, 3, 8, 8}));
  Network.forward(true);
  for (const BlockPort &Port : Built->Ports)
    EXPECT_EQ(Network.activation(Port.StudentOut).shape(),
              Network.activation(Port.TeacherOut).shape());
}

//===----------------------------------------------------------------------===//
// Code generation
//===----------------------------------------------------------------------===//

TEST(CodegenTest, EmitsMultiplexingFunction) {
  const std::string Script = emitMultiplexingScript(resnetSpec());
  EXPECT_NE(Script.find("def mini_resnet_a(inputs, mode_to_use='full', "
                        "prune_info=None"),
            std::string::npos);
  EXPECT_NE(Script.find("slim.conv2d"), std::string::npos);
  EXPECT_NE(Script.find("mode_to_use != 'pretrain'"), std::string::npos);
  EXPECT_NE(Script.find("for block in prune_info.blocks:"),
            std::string::npos);
}

TEST(CodegenTest, PrunableConvsReadDepthFromPruneInfo) {
  const std::string Script = emitMultiplexingScript(resnetSpec());
  // Prunable conv m1_conv1 uses the depth() helper; unpruned m1_conv3
  // has a literal depth.
  EXPECT_NE(Script.find("depth('m1', 8)"), std::string::npos);
  EXPECT_NE(Script.find("12, [1, 1], stride=1, padding='VALID', "
                        "activation_fn=None, normalizer_fn=None, "
                        "biases_initializer=None, scope='m1_conv3')"),
            std::string::npos);
}

TEST(CodegenTest, BlockSectionGuardsByCoverage) {
  const std::string Script = emitMultiplexingScript(resnetSpec());
  EXPECT_NE(Script.find("if block.covers('m1'):"), std::string::npos);
  EXPECT_NE(Script.find("if block.ends_at('m4'):"), std::string::npos);
  EXPECT_NE(Script.find("tf.losses.mean_squared_error"),
            std::string::npos);
  EXPECT_NE(Script.find("tf.stop_gradient"), std::string::npos);
}

TEST(CodegenTest, InceptionUsesConcat) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::InceptionA, 6);
  ASSERT_TRUE(static_cast<bool>(Spec));
  const std::string Script = emitMultiplexingScript(*Spec);
  EXPECT_NE(Script.find("tf.concat("), std::string::npos);
  EXPECT_NE(Script.find("slim.avg_pool2d"), std::string::npos);
}

TEST(CodegenTest, PythonIdentifier) {
  EXPECT_EQ(pythonIdentifier("mini-resnet-a"), "mini_resnet_a");
  EXPECT_EQ(pythonIdentifier("a.b c"), "a_b_c");
}

//===----------------------------------------------------------------------===//
// Solver meta data
//===----------------------------------------------------------------------===//

TEST(SolverTest, DefaultsSurviveEmptyInput) {
  Result<TrainMeta> Meta = parseTrainMeta("");
  ASSERT_TRUE(static_cast<bool>(Meta)) << Meta.message();
  EXPECT_EQ(Meta->BatchSize, 8);
  EXPECT_EQ(Meta->Nodes, 1);
}

TEST(SolverTest, ParsesAllKeys) {
  Result<TrainMeta> Meta = parseTrainMeta(
      "pretrain_steps: 33\nfinetune_lr: 0.01\nbatch_size: 16\n"
      "nodes: 4\nweight_decay: 1e-5\nmomentum: 0.8\nseed: 123\n"
      "full_model_steps: 99\nfinetune_steps: 44\npretrain_lr: 0.2\n"
      "eval_every: 10\n");
  ASSERT_TRUE(static_cast<bool>(Meta)) << Meta.message();
  EXPECT_EQ(Meta->PretrainSteps, 33);
  EXPECT_FLOAT_EQ(Meta->FinetuneLearningRate, 0.01f);
  EXPECT_EQ(Meta->BatchSize, 16);
  EXPECT_EQ(Meta->Nodes, 4);
  EXPECT_FLOAT_EQ(Meta->WeightDecay, 1e-5f);
  EXPECT_EQ(Meta->Seed, 123u);
  EXPECT_EQ(Meta->FullModelSteps, 99);
}

TEST(SolverTest, RejectsUnknownKeys) {
  Result<TrainMeta> Meta = parseTrainMeta("learning_rate_typo: 0.1\n");
  ASSERT_FALSE(static_cast<bool>(Meta));
  EXPECT_NE(Meta.message().find("unknown meta-data key"),
            std::string::npos);
}

TEST(SolverTest, RejectsNonPositiveBatch) {
  EXPECT_FALSE(static_cast<bool>(parseTrainMeta("batch_size: 0\n")));
}

TEST(SolverTest, RoundTripsThroughPrinter) {
  TrainMeta Meta;
  Meta.PretrainSteps = 77;
  Meta.Nodes = 3;
  Result<TrainMeta> Reparsed = parseTrainMeta(printTrainMeta(Meta));
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  EXPECT_EQ(Reparsed->PretrainSteps, 77);
  EXPECT_EQ(Reparsed->Nodes, 3);
}

//===----------------------------------------------------------------------===//
// NetsFactory
//===----------------------------------------------------------------------===//

TEST(NetsFactoryTest, RegisterAndLookup) {
  NetsFactory Factory;
  Result<std::string> Name = Factory.registerModel(
      standardModelPrototxt(StandardModel::ResNetA, 6));
  ASSERT_TRUE(static_cast<bool>(Name)) << Name.message();
  EXPECT_EQ(*Name, "mini-resnet-a");
  ASSERT_NE(Factory.lookup("mini-resnet-a"), nullptr);
  EXPECT_EQ(Factory.lookup("mini-resnet-a")->spec().moduleCount(), 4);
  EXPECT_EQ(Factory.lookup("unknown"), nullptr);
}

TEST(NetsFactoryTest, RejectsDuplicates) {
  NetsFactory Factory;
  ASSERT_TRUE(static_cast<bool>(Factory.registerModel(
      standardModelPrototxt(StandardModel::ResNetA, 6))));
  Result<std::string> Again = Factory.registerModel(
      standardModelPrototxt(StandardModel::ResNetA, 6));
  EXPECT_FALSE(static_cast<bool>(Again));
}

TEST(NetsFactoryTest, RejectsBadPrototxt) {
  NetsFactory Factory;
  EXPECT_FALSE(static_cast<bool>(Factory.registerModel("garbage {{")));
}

TEST(NetsFactoryTest, NamesInRegistrationOrder) {
  NetsFactory Factory;
  ASSERT_TRUE(static_cast<bool>(Factory.registerModel(
      standardModelPrototxt(StandardModel::ResNetA, 6))));
  ASSERT_TRUE(static_cast<bool>(Factory.registerModel(
      standardModelPrototxt(StandardModel::InceptionA, 6))));
  const std::vector<std::string> Names = Factory.names();
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "mini-resnet-a");
  EXPECT_EQ(Names[1], "mini-inception-a");
}

} // namespace

//===----------------------------------------------------------------------===//
// Wrapper-script generation (appended tests)
//===----------------------------------------------------------------------===//

namespace {

TEST(CodegenTest, PretrainWrapperEmbedsMetaData) {
  wootz::TrainMeta Meta;
  Meta.PretrainSteps = 123;
  Meta.PretrainLearningRate = 0.25f;
  Meta.Nodes = 4;
  const std::string Script =
      wootz::emitPretrainWrapper(resnetSpec(), Meta);
  EXPECT_NE(Script.find("MODEL_NAME = 'mini_resnet_a'"),
            std::string::npos);
  EXPECT_NE(Script.find("MAX_STEPS = 123"), std::string::npos);
  EXPECT_NE(Script.find("LEARNING_RATE = 0.2500"), std::string::npos);
  EXPECT_NE(Script.find("NODES = 4"), std::string::npos);
  EXPECT_NE(Script.find("partition_into_groups"), std::string::npos);
  EXPECT_NE(Script.find("if index % NODES != rank:"), std::string::npos);
  // The model/context split shows up in the generated code: one shared
  // teacher, per-group contexts, sharded evaluation.
  EXPECT_NE(Script.find("build_shared_teacher"), std::string::npos);
  EXPECT_NE(Script.find("eval_threads=EVAL_THREADS"), std::string::npos);
}

TEST(CodegenTest, ExplorationWrapperEmbedsObjective) {
  wootz::TrainMeta Meta;
  Meta.FinetuneSteps = 77;
  const std::string Script = wootz::emitExplorationWrapper(
      resnetSpec(), Meta, "min ModelSize\nconstraint Accuracy > 0.8\n");
  EXPECT_NE(Script.find("#   min ModelSize"), std::string::npos);
  EXPECT_NE(Script.find("#   constraint Accuracy > 0.8"),
            std::string::npos);
  EXPECT_NE(Script.find("MAX_STEPS = 77"), std::string::npos);
  EXPECT_NE(Script.find("ordered[rank::NODES]"), std::string::npos);
  EXPECT_NE(Script.find("order_by_model_size"), std::string::npos);
  // The winner is frozen into a static plan, and evaluation shards
  // across contexts — the generated flow mirrors the C++ pipeline.
  EXPECT_NE(Script.find("explore.freeze_plan(net, 'plan.json')"),
            std::string::npos);
  EXPECT_NE(Script.find("eval_threads=EVAL_THREADS"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// GraphBuilder: spec -> runnable network, weight export/import
//===----------------------------------------------------------------------===//

/// Deterministic pseudo-random input batch.
static Tensor randomInput(const ModelSpec &Spec, int Batch,
                          uint64_t Seed) {
  Tensor Input(Shape{Batch, Spec.InputChannels, Spec.InputHeight,
                     Spec.InputWidth});
  Rng Generator(Seed);
  for (size_t I = 0; I < Input.size(); ++I)
    Input.data()[I] = Generator.nextFloat() * 2.0f - 1.0f;
  return Input;
}

/// Logits of \p Built on \p Input.
static Tensor forwardLogits(BuiltNetwork &Built, const Tensor &Input) {
  Built.Network.setInput(Built.InputNode, Input);
  Built.Network.forward(false);
  return Built.Network.activation(Built.LogitsNode);
}

TEST(GraphBuilderTest, BuildsEveryStandardModel) {
  for (StandardModel Model : standardModels()) {
    Result<ModelSpec> Spec = makeStandardModel(Model, 5);
    ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.message();
    Result<BuiltNetwork> Built = buildFullNetwork(*Spec, 11);
    ASSERT_TRUE(static_cast<bool>(Built))
        << standardModelName(Model) << ": " << Built.message();
    EXPECT_EQ(Built->Classes, 5) << standardModelName(Model);
    const Tensor Logits = forwardLogits(*Built, randomInput(*Spec, 2, 3));
    EXPECT_EQ(Logits.shape(), Shape({2, 5})) << standardModelName(Model);
  }
}

TEST(GraphBuilderTest, ExportImportRoundTripsExactly) {
  const ModelSpec Spec = resnetSpec();
  Result<BuiltNetwork> Source = buildFullNetwork(Spec, 101);
  Result<BuiltNetwork> Target = buildFullNetwork(Spec, 202);
  ASSERT_TRUE(static_cast<bool>(Source)) << Source.message();
  ASSERT_TRUE(static_cast<bool>(Target)) << Target.message();

  const Tensor Input = randomInput(Spec, 2, 5);
  const Tensor Expected = forwardLogits(*Source, Input);
  const Tensor Before = forwardLogits(*Target, Input);
  // Different seeds genuinely diverge; otherwise the import below would
  // be vacuous.
  bool Differs = false;
  for (size_t I = 0; I < Expected.size(); ++I)
    Differs |= Expected.data()[I] != Before.data()[I];
  ASSERT_TRUE(Differs);

  // Serialize through the WOOTZCK2 container, as uploads do.
  Result<TensorBundle> Bundle = deserializeTensors(serializeTensors(
      exportWeights(Source->Network, FullNetworkPrefix)));
  ASSERT_TRUE(static_cast<bool>(Bundle)) << Bundle.message();
  Error Imported =
      importWeights(Target->Network, FullNetworkPrefix, *Bundle);
  ASSERT_FALSE(static_cast<bool>(Imported)) << Imported.message();

  const Tensor After = forwardLogits(*Target, Input);
  ASSERT_EQ(After.shape(), Expected.shape());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Expected.data()[I], After.data()[I]) << "logit " << I;
}

TEST(GraphBuilderTest, ImportRejectsMissingEntries) {
  const ModelSpec Spec = resnetSpec();
  Result<BuiltNetwork> Built = buildFullNetwork(Spec, 1);
  ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  TensorBundle Bundle = exportWeights(Built->Network, FullNetworkPrefix);
  ASSERT_FALSE(Bundle.empty());
  Bundle.erase(Bundle.begin());
  Error E = importWeights(Built->Network, FullNetworkPrefix, Bundle);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("missing"), std::string::npos)
      << E.message();
}

TEST(GraphBuilderTest, ImportRejectsShapeMismatch) {
  const ModelSpec Spec = resnetSpec();
  Result<BuiltNetwork> Built = buildFullNetwork(Spec, 1);
  ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  TensorBundle Bundle = exportWeights(Built->Network, FullNetworkPrefix);
  Bundle.begin()->second = Tensor(Shape{1, 2, 3});
  Error E = importWeights(Built->Network, FullNetworkPrefix, Bundle);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("[1, 2, 3]"), std::string::npos)
      << E.message();
}

TEST(GraphBuilderTest, ImportRejectsUnknownEntries) {
  const ModelSpec Spec = resnetSpec();
  Result<BuiltNetwork> Built = buildFullNetwork(Spec, 1);
  ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  TensorBundle Bundle = exportWeights(Built->Network, FullNetworkPrefix);
  Bundle["ghost_layer/s0"] = Tensor(Shape{1});
  Error E = importWeights(Built->Network, FullNetworkPrefix, Bundle);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("ghost_layer"), std::string::npos)
      << E.message();
}

TEST(GraphBuilderTest, RequiresAClassifierHead) {
  Result<ModelSpec> Spec = parseModelSpec(
      "name: \"headless\"\ninput: \"data\"\ninput_dim: 1\n"
      "input_dim: 3\ninput_dim: 8\ninput_dim: 8\n"
      "layer { name: \"a\" type: \"ReLU\" bottom: \"data\" top: \"a\" }");
  ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  Result<BuiltNetwork> Built = buildFullNetwork(*Spec, 1);
  ASSERT_FALSE(static_cast<bool>(Built));
  EXPECT_NE(Built.message().find("InnerProduct"), std::string::npos);
}

} // namespace
