//===- tests/StrategyTest.cpp - exploration-strategy tests ------------------===//
//
// Covers the explore/strategy/ subsystem: name parsing (unknown names
// list the valid ones), the behavior-preservation guarantee (driving
// FixedSubspaceStrategy reproduces runPruningPipeline bit-exactly), the
// determinism contract (replaying any strategy against the recorded
// observation sequence proposes identical configurations; EvalOnly runs
// are bit-identical for any Workers value), the adaptive explorer under
// the Overlap schedule (within-round cancellation; a warm BlockCache
// rerun pre-trains nothing yet reproduces the cold run bit-exactly),
// and the serve job API's strategy/criterion plumbing.
//
//===----------------------------------------------------------------------===//

#include "src/explore/strategy/Adaptive.h"
#include "src/explore/strategy/FixedSubspace.h"
#include "src/explore/strategy/GreedySensitivity.h"
#include "src/serve/JobManager.h"
#include "src/wootz/wootz.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

using namespace wootz;
using namespace wootz::serve;

namespace {

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Name parsing
//===----------------------------------------------------------------------===//

TEST(StrategyParseTest, RoundTripsEveryKind) {
  for (StrategyKind Kind :
       {StrategyKind::Fixed, StrategyKind::Greedy, StrategyKind::Adaptive}) {
    Result<StrategyKind> Parsed = parseStrategyKind(strategyKindName(Kind));
    ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
    EXPECT_EQ(*Parsed, Kind);
  }
}

TEST(StrategyParseTest, UnknownStrategyNameListsValidNames) {
  Result<StrategyKind> Parsed = parseStrategyKind("simulated-annealing");
  ASSERT_FALSE(static_cast<bool>(Parsed));
  const std::string Message = Parsed.message();
  EXPECT_NE(Message.find("simulated-annealing"), std::string::npos);
  for (const char *Name : {"fixed", "greedy", "adaptive"})
    EXPECT_NE(Message.find(Name), std::string::npos) << Name;
}

TEST(StrategyParseTest, UnknownCriterionNameListsValidNames) {
  Result<ImportanceCriterion> Parsed = parseImportanceCriterion("magnitude");
  ASSERT_FALSE(static_cast<bool>(Parsed));
  const std::string Message = Parsed.message();
  EXPECT_NE(Message.find("magnitude"), std::string::npos);
  for (const char *Name : {"l1", "l2", "taylor", "taylor_expansion", "apoz"})
    EXPECT_NE(Message.find(Name), std::string::npos) << Name;
}

TEST(StrategyParseTest, TaylorExpansionRoundTrips) {
  Result<ImportanceCriterion> Parsed =
      parseImportanceCriterion("taylor_expansion");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(*Parsed, ImportanceCriterion::TaylorExpansion);
  EXPECT_STREQ(importanceCriterionName(ImportanceCriterion::TaylorExpansion),
               "taylor_expansion");
}

//===----------------------------------------------------------------------===//
// Knob validation
//===----------------------------------------------------------------------===//

TEST(StrategyKnobsTest, RejectsDegenerateInputs) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 4);
  ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  const PruningObjective Objective = smallestMeetingAccuracy(0.5);

  // Fixed needs a subspace to enumerate.
  StrategyKnobs Knobs;
  Result<std::unique_ptr<ExplorationStrategy>> Empty =
      makeStrategy(StrategyKind::Fixed, *Spec, {}, Objective, Knobs);
  ASSERT_FALSE(static_cast<bool>(Empty));
  EXPECT_NE(Empty.message().find("subspace"), std::string::npos);

  // The on-the-fly strategies validate the rate alphabet and the round
  // budget with the iterative search's messages.
  const std::vector<PruneConfig> Subspace = {
      PruneConfig(static_cast<size_t>(Spec->moduleCount()), 0.5f)};
  for (StrategyKind Kind : {StrategyKind::Greedy, StrategyKind::Adaptive}) {
    StrategyKnobs Bad;
    Bad.Rates = {0.5f, 0.7f}; // Missing the unpruned 0.
    Result<std::unique_ptr<ExplorationStrategy>> NoZero =
        makeStrategy(Kind, *Spec, Subspace, Objective, Bad);
    ASSERT_FALSE(static_cast<bool>(NoZero));
    EXPECT_NE(NoZero.message().find("start at 0"), std::string::npos);

    Bad.Rates = {0.0f, 0.7f, 0.5f};
    Result<std::unique_ptr<ExplorationStrategy>> Unsorted =
        makeStrategy(Kind, *Spec, Subspace, Objective, Bad);
    ASSERT_FALSE(static_cast<bool>(Unsorted));
    EXPECT_NE(Unsorted.message().find("ascending"), std::string::npos);

    StrategyKnobs NoRounds;
    NoRounds.Rates = {0.0f, 0.5f};
    NoRounds.MaxRounds = 0;
    Result<std::unique_ptr<ExplorationStrategy>> Zero =
        makeStrategy(Kind, *Spec, Subspace, Objective, NoRounds);
    ASSERT_FALSE(static_cast<bool>(Zero));
    EXPECT_NE(Zero.message().find("MaxRounds"), std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Driver fixture
//===----------------------------------------------------------------------===//

class StrategyDriverFixture : public ::testing::Test {
protected:
  void SetUp() override {
    SyntheticSpec DataSpec;
    DataSpec.Classes = 4;
    DataSpec.TrainPerClass = 12;
    DataSpec.TestPerClass = 6;
    DataSpec.Noise = 0.5f;
    DataSpec.Seed = 13;
    Data = generateSynthetic(DataSpec);

    Result<ModelSpec> Parsed = makeStandardModel(StandardModel::ResNetA, 4);
    ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
    Spec = Parsed.take();
    ASSERT_GE(Spec.moduleCount(), 2);

    Meta.FullModelSteps = 40;
    Meta.PretrainSteps = 24;
    Meta.FinetuneSteps = 10;
    Meta.BatchSize = 8;
    Meta.EvalEvery = 10;

    auto Config = [&](float Rate0, float Rate1) {
      PruneConfig C(static_cast<size_t>(Spec.moduleCount()), 0.0f);
      C[0] = Rate0;
      C[1] = Rate1;
      return C;
    };
    Subspace = {Config(0.7f, 0.7f), Config(0.7f, 0.0f),
                Config(0.0f, 0.7f), Config(0.5f, 0.5f),
                Config(0.5f, 0.0f), Config(0.0f, 0.5f),
                Config(0.3f, 0.0f)};
    Objective = smallestMeetingAccuracy(0.0);
  }

  /// EvalOnly + per-module blocks: the deterministic baseline schedule.
  PipelineOptions evalOnlyOptions(int Workers = 1) const {
    PipelineOptions Options;
    Options.UseComposability = true;
    Options.UseIdentifier = false;
    Options.Schedule = PipelineSchedule::EvalOnly;
    Options.Workers = Workers;
    return Options;
  }

  std::unique_ptr<ExplorationStrategy> build(StrategyKind Kind,
                                             int MaxRounds = 4) const {
    StrategyKnobs Knobs;
    Knobs.Rates = subspaceRateAlphabet(Subspace);
    Knobs.MaxRounds = MaxRounds;
    Result<std::unique_ptr<ExplorationStrategy>> Built =
        makeStrategy(Kind, Spec, Subspace, Objective, Knobs);
    EXPECT_TRUE(static_cast<bool>(Built)) << Built.message();
    return Built ? Built.take() : nullptr;
  }

  Dataset Data;
  ModelSpec Spec;
  TrainMeta Meta;
  std::vector<PruneConfig> Subspace;
  PruningObjective Objective;
};

/// Bit-exact evaluation equality (determinism assertions compare raw
/// double bits, not approximate closeness).
void expectIdenticalEvaluations(const std::vector<EvaluatedConfig> &A,
                                const std::vector<EvaluatedConfig> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Config, B[I].Config) << "config " << I;
    EXPECT_EQ(A[I].WeightCount, B[I].WeightCount) << "config " << I;
    EXPECT_EQ(A[I].Cancelled, B[I].Cancelled) << "config " << I;
    EXPECT_EQ(A[I].InitAccuracy, B[I].InitAccuracy) << "config " << I;
    EXPECT_EQ(A[I].FinalAccuracy, B[I].FinalAccuracy) << "config " << I;
    EXPECT_EQ(A[I].BlocksUsed, B[I].BlocksUsed) << "config " << I;
  }
}

TEST_F(StrategyDriverFixture, FixedDriverMatchesClassicPipeline) {
  const PipelineOptions Options = evalOnlyOptions();

  Rng ClassicGen(17);
  Result<PipelineResult> Classic = runPruningPipeline(
      Spec, Data, Subspace, Meta, Options, ClassicGen);
  ASSERT_TRUE(static_cast<bool>(Classic)) << Classic.message();

  FixedSubspaceStrategy Strategy(Spec, Subspace, Objective);
  Rng DriverGen(17);
  Result<StrategyRunResult> Driven = runStrategyExploration(
      Spec, Data, Strategy, Meta, Options, Objective, DriverGen);
  ASSERT_TRUE(static_cast<bool>(Driven)) << Driven.message();

  // min-ModelSize explores ascending size — exactly the pipeline's
  // storage order — so the two runs align index by index, bit by bit.
  EXPECT_EQ(Driven->Run.FullAccuracy, Classic->FullAccuracy);
  EXPECT_EQ(Driven->Run.FullWeightCount, Classic->FullWeightCount);
  expectIdenticalEvaluations(Driven->Run.Evaluations, Classic->Evaluations);
  EXPECT_EQ(Driven->Rounds, 1);
  EXPECT_EQ(static_cast<size_t>(Driven->Proposals), Subspace.size());
  EXPECT_EQ(Driven->Run.Telemetry.counter("strategy.rounds"), 1);
  EXPECT_EQ(static_cast<size_t>(
                Driven->Run.Telemetry.counter("strategy.proposals")),
            Subspace.size());

  // Both pick the same winner (the driver reports proposal order, which
  // here IS the exploration order).
  const ExplorationSummary Summary =
      summarizeMeasuredRun(*Classic, Objective);
  EXPECT_EQ(Driven->WinnerIndex, Summary.WinnerIndex);
}

TEST_F(StrategyDriverFixture, ReplayProposesIdenticalConfigs) {
  // The determinism contract: a fresh strategy instance fed the recorded
  // observation sequence re-proposes every round verbatim and then ends.
  for (StrategyKind Kind :
       {StrategyKind::Fixed, StrategyKind::Greedy, StrategyKind::Adaptive}) {
    SCOPED_TRACE(strategyKindName(Kind));
    std::unique_ptr<ExplorationStrategy> Live = build(Kind, /*MaxRounds=*/2);
    ASSERT_NE(Live, nullptr);
    Rng Generator(23);
    Result<StrategyRunResult> Search = runStrategyExploration(
        Spec, Data, *Live, Meta, evalOnlyOptions(), Objective, Generator);
    ASSERT_TRUE(static_cast<bool>(Search)) << Search.message();
    ASSERT_GE(Search->Rounds, 1);

    std::unique_ptr<ExplorationStrategy> Replay =
        build(Kind, /*MaxRounds=*/2);
    ASSERT_NE(Replay, nullptr);
    for (const StrategyRoundInfo &Round : Search->RoundsInfo) {
      const ObservedResults Prefix(
          Search->Run.Evaluations.begin(),
          Search->Run.Evaluations.begin() +
              static_cast<long>(Round.FirstIndex));
      Result<std::vector<PruneConfig>> Proposed = Replay->propose(Prefix);
      ASSERT_TRUE(static_cast<bool>(Proposed)) << Proposed.message();
      ASSERT_EQ(Proposed->size(), static_cast<size_t>(Round.Proposals));
      for (size_t I = 0; I < Proposed->size(); ++I)
        EXPECT_EQ((*Proposed)[I],
                  Search->Run.Evaluations[Round.FirstIndex + I].Config)
            << "round proposal " << I;
    }
    Result<std::vector<PruneConfig>> Final =
        Replay->propose(Search->Run.Evaluations);
    ASSERT_TRUE(static_cast<bool>(Final)) << Final.message();
    EXPECT_TRUE(Final->empty());
  }
}

TEST_F(StrategyDriverFixture, AdaptiveIsBitIdenticalAcrossWorkers) {
  std::vector<StrategyRunResult> Runs;
  for (int Workers : {1, 4}) {
    std::unique_ptr<ExplorationStrategy> Strategy =
        build(StrategyKind::Adaptive);
    ASSERT_NE(Strategy, nullptr);
    Rng Generator(31);
    Result<StrategyRunResult> Search = runStrategyExploration(
        Spec, Data, *Strategy, Meta, evalOnlyOptions(Workers), Objective,
        Generator);
    ASSERT_TRUE(static_cast<bool>(Search)) << Search.message();
    Runs.push_back(std::move(Search.take()));
  }
  EXPECT_EQ(Runs[0].Rounds, Runs[1].Rounds);
  EXPECT_EQ(Runs[0].Proposals, Runs[1].Proposals);
  EXPECT_EQ(Runs[0].WinnerIndex, Runs[1].WinnerIndex);
  expectIdenticalEvaluations(Runs[0].Run.Evaluations,
                             Runs[1].Run.Evaluations);
}

TEST_F(StrategyDriverFixture, AdaptiveOverlapCancelsAndWarmCacheIsBitExact) {
  const std::string CacheDir =
      ::testing::TempDir() + "wootz_strategy_blockcache";
  fs::remove_all(CacheDir);

  PipelineOptions Options;
  Options.UseComposability = true;
  Options.UseIdentifier = false;
  Options.Schedule = PipelineSchedule::Overlap;
  Options.Workers = 1;
  Options.CancelObjective = &Objective;
  Options.BlockCacheConfig.Directory = CacheDir;

  std::vector<StrategyRunResult> Runs;
  for (int Pass = 0; Pass < 2; ++Pass) {
    std::unique_ptr<ExplorationStrategy> Strategy =
        build(StrategyKind::Adaptive);
    ASSERT_NE(Strategy, nullptr);
    Rng Generator(47);
    Result<StrategyRunResult> Search = runStrategyExploration(
        Spec, Data, *Strategy, Meta, Options, Objective, Generator);
    ASSERT_TRUE(static_cast<bool>(Search)) << Search.message();
    Runs.push_back(std::move(Search.take()));
  }
  const StrategyRunResult &Cold = Runs[0];
  const StrategyRunResult &Warm = Runs[1];

  // The always-satisfied min-ModelSize objective: the round's most
  // aggressive proposal (emitted first — adaptive rounds are
  // preference-ordered for smallest-first objectives) wins as soon as it
  // finishes, cancelling the rest of its round.
  ASSERT_GE(Cold.Proposals, 2);
  size_t CancelledCount = 0;
  for (const EvaluatedConfig &E : Cold.Run.Evaluations)
    CancelledCount += E.Cancelled;
  EXPECT_GE(CancelledCount, 1u);
  EXPECT_TRUE(Cold.ObjectiveMet);
  EXPECT_EQ(Cold.WinnerIndex, 0);

  // Cold pass pre-trained every block; the warm pass pre-trains zero
  // (all served from the cross-run BlockCache) yet reproduces the cold
  // pass bit-exactly — proposals, cancellations, and accuracies.
  EXPECT_GT(Cold.Run.Pretrain.BlockCount, 0);
  EXPECT_EQ(Warm.Run.Pretrain.BlockCount, 0);
  EXPECT_GT(Warm.Run.Telemetry.counter("cache.hit"), 0);
  EXPECT_EQ(Warm.Rounds, Cold.Rounds);
  EXPECT_EQ(Warm.Proposals, Cold.Proposals);
  EXPECT_EQ(Warm.WinnerIndex, Cold.WinnerIndex);
  expectIdenticalEvaluations(Warm.Run.Evaluations, Cold.Run.Evaluations);

  fs::remove_all(CacheDir);
}

TEST_F(StrategyDriverFixture, GreedyReportsCommitsAndReuse) {
  GreedySensitivityStrategy Strategy(Spec, Objective, [&] {
    StrategyKnobs Knobs;
    Knobs.Rates = {0.0f, 0.3f, 0.5f};
    Knobs.MaxRounds = 2;
    return Knobs;
  }());
  Rng Generator(11);
  Result<StrategyRunResult> Search = runStrategyExploration(
      Spec, Data, Strategy, Meta, evalOnlyOptions(), Objective, Generator);
  ASSERT_TRUE(static_cast<bool>(Search)) << Search.message();

  // The always-satisfied accuracy floor commits one bump per round up to
  // the budget; every round proposes one bump per module with headroom.
  ASSERT_EQ(Search->Rounds, 2);
  EXPECT_EQ(Strategy.commits().size(), 2u);
  EXPECT_EQ(Search->RoundsInfo[0].Proposals, Spec.moduleCount());
  // Round 1 re-proposes the other modules' bumps, whose (module, rate)
  // blocks were already pre-trained in round 0 — the composability
  // harvest shows up as reuse.
  EXPECT_GT(Search->RoundsInfo[1].BlocksReused, 0);
  EXPECT_EQ(Search->Run.Telemetry.counter("strategy.blocks_reused"),
            Search->BlocksReused);
}

//===----------------------------------------------------------------------===//
// Serve job API plumbing
//===----------------------------------------------------------------------===//

std::map<std::string, std::string> strategyJobBody() {
  Result<ModelSpec> Spec =
      parseModelSpec(standardModelPrototxt(StandardModel::ResNetA, 4));
  PruneConfig A(static_cast<size_t>(Spec->moduleCount()), 0.0f);
  A[0] = 0.5f;
  PruneConfig B(static_cast<size_t>(Spec->moduleCount()), 0.0f);
  B[0] = 0.3f;
  TrainMeta Meta;
  Meta.FullModelSteps = 30;
  Meta.PretrainSteps = 12;
  Meta.FinetuneSteps = 8;
  Meta.EvalEvery = 8;
  Meta.BatchSize = 8;
  return {{"model", standardModelPrototxt(StandardModel::ResNetA, 4)},
          {"subspace", printSubspaceSpec({A, B})},
          {"meta", printTrainMeta(Meta)},
          {"objective", "min ModelSize\nconstraint Accuracy >= 0.0\n"},
          {"dataset_scale", "0.1"},
          {"workers", "1"},
          {"schedule", "evalonly"},
          {"identifier", "false"}};
}

std::string waitForTerminal(JobManager &Manager, const std::string &Id,
                            int TimeoutSeconds = 120) {
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(TimeoutSeconds);
  while (std::chrono::steady_clock::now() < Deadline) {
    Result<std::string> Status = Manager.statusJson(Id);
    if (!Status)
      return "";
    for (const char *State : {"done", "failed", "cancelled"})
      if (Status->find("\"state\":\"" + std::string(State) + "\"") !=
          std::string::npos)
        return State;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return "timeout";
}

TEST(StrategyJobApiTest, UnknownNamesAndBadKnobsAre400s) {
  JobManager Manager(JobManagerOptions(), nullptr, nullptr);

  auto BadStrategy = strategyJobBody();
  BadStrategy["strategy"] = "annealing";
  SubmitOutcome Out = Manager.submit(BadStrategy);
  EXPECT_EQ(Out.Status, 400);
  EXPECT_NE(Out.Error.find("strategy:"), std::string::npos);
  for (const char *Name : {"fixed", "greedy", "adaptive"})
    EXPECT_NE(Out.Error.find(Name), std::string::npos) << Name;

  auto BadCriterion = strategyJobBody();
  BadCriterion["criterion"] = "magnitude";
  Out = Manager.submit(BadCriterion);
  EXPECT_EQ(Out.Status, 400);
  EXPECT_NE(Out.Error.find("criterion:"), std::string::npos);
  EXPECT_NE(Out.Error.find("taylor_expansion"), std::string::npos);

  auto BadRounds = strategyJobBody();
  BadRounds["max_rounds"] = "0";
  Out = Manager.submit(BadRounds);
  EXPECT_EQ(Out.Status, 400);
  EXPECT_NE(Out.Error.find("max_rounds"), std::string::npos);

  auto BadMargin = strategyJobBody();
  BadMargin["accuracy_margin"] = "0.9";
  Out = Manager.submit(BadMargin);
  EXPECT_EQ(Out.Status, 400);
  EXPECT_NE(Out.Error.find("accuracy_margin"), std::string::npos);

  Manager.drain();
}

TEST(StrategyJobApiTest, AdaptiveJobRunsToDoneWithRoundCounters) {
  JobManagerOptions Options;
  Options.Workers = 1;
  JobManager Manager(Options, nullptr, nullptr);

  auto Body = strategyJobBody();
  Body["strategy"] = "adaptive";
  Body["criterion"] = "l2";
  Body["max_rounds"] = "2";
  const SubmitOutcome Submitted = Manager.submit(Body);
  ASSERT_EQ(Submitted.Status, 202) << Submitted.Error;

  EXPECT_EQ(waitForTerminal(Manager, Submitted.Id), "done");
  Result<std::string> Status = Manager.statusJson(Submitted.Id);
  ASSERT_TRUE(static_cast<bool>(Status));
  EXPECT_NE(Status->find("\"strategy\":\"adaptive\""), std::string::npos);
  EXPECT_NE(Status->find("\"criterion\":\"l2\""), std::string::npos);
  EXPECT_NE(Status->find("\"rounds\":"), std::string::npos);
  EXPECT_NE(Status->find("\"proposals\":"), std::string::npos);
  EXPECT_NE(Status->find("strategy.rounds"), std::string::npos);
  Manager.drain();
}

} // namespace
