//===- tests/PersistenceTest.cpp - checkpoint persistence hardening ----------===//
//
// The crash-safety and corruption-tolerance contract of the persistence
// layer: a WOOTZCK2 checkpoint truncated at any offset or with any byte
// flipped parses to a clean Error (never a crash or a huge allocation),
// v1 files remain readable, saves are atomic under the final name, a
// corrupt store entry is skipped-and-reported rather than aborting the
// load, and the cross-run BlockCache turns all of it into hits, misses,
// quarantines, and LRU evictions.
//
//===----------------------------------------------------------------------===//

#include "src/support/File.h"
#include "src/support/Hash.h"
#include "src/support/Json.h"
#include "src/train/BlockCache.h"
#include "src/train/CheckpointStore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace wootz;

namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory that cleans up after itself.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Name)
      : Path((fs::temp_directory_path() / Name).string()) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code Ignored;
    fs::remove_all(Path, Ignored);
  }
  const std::string &str() const { return Path; }
  std::string file(const std::string &Name) const {
    return Path + "/" + Name;
  }

private:
  std::string Path;
};

TensorBundle smallBundle() {
  TensorBundle Bundle;
  Bundle["conv/s0"] = Tensor(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Bundle["conv/s1"] = Tensor(Shape{2}, {0.5f, -0.5f});
  Bundle["bn/s0"] = Tensor(Shape{1, 2, 1, 1}, {7.0f, 8.0f});
  return Bundle;
}

bool bundlesEqual(const TensorBundle &A, const TensorBundle &B) {
  if (A.size() != B.size())
    return false;
  for (const auto &[Name, Value] : A) {
    auto It = B.find(Name);
    if (It == B.end() || It->second.shape() != Value.shape())
      return false;
    for (size_t I = 0; I < Value.size(); ++I)
      if (Value[I] != It->second[I])
        return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// CheckpointFormat: fuzz-ish corruption corpus
//===----------------------------------------------------------------------===//

TEST(CheckpointFormatTest, V2RoundTrip) {
  const std::string Bytes = serializeTensors(smallBundle());
  ASSERT_EQ(Bytes.substr(0, 8), "WOOTZCK2");
  Result<TensorBundle> Loaded = deserializeTensors(Bytes);
  ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.message();
  EXPECT_TRUE(bundlesEqual(smallBundle(), *Loaded));
}

TEST(CheckpointFormatTest, TruncationAtEveryOffsetIsACleanError) {
  const std::string Bytes = serializeTensors(smallBundle());
  for (size_t Length = 0; Length < Bytes.size(); ++Length) {
    Result<TensorBundle> Loaded =
        deserializeTensors(Bytes.substr(0, Length));
    EXPECT_FALSE(static_cast<bool>(Loaded))
        << "truncation to " << Length << " of " << Bytes.size()
        << " bytes was accepted";
  }
}

TEST(CheckpointFormatTest, Everysingle_ByteFlipIsACleanError) {
  // The v2 CRC32 covers each whole entry record and the header carries
  // the total length, so no single-byte flip anywhere in the file may
  // survive: not in the magic, the counts, a name, a shape, or the
  // payload. (In v1 a payload flip was silently wrong weights.)
  const std::string Pristine = serializeTensors(smallBundle());
  for (size_t Offset = 0; Offset < Pristine.size(); ++Offset) {
    for (unsigned char Flip : {0x01, 0x80}) {
      std::string Mutated = Pristine;
      Mutated[Offset] = static_cast<char>(
          static_cast<unsigned char>(Mutated[Offset]) ^ Flip);
      Result<TensorBundle> Loaded = deserializeTensors(Mutated);
      EXPECT_FALSE(static_cast<bool>(Loaded))
          << "byte flip 0x" << std::hex << static_cast<int>(Flip)
          << " at offset " << std::dec << Offset << " was accepted";
    }
  }
}

TEST(CheckpointFormatTest, TrailingGarbageIsRejected) {
  std::string Bytes = serializeTensors(smallBundle());
  // Appending bytes breaks the header's total length...
  EXPECT_FALSE(static_cast<bool>(deserializeTensors(Bytes + "xyz")));
  // ...and a v1 file with trailing garbage is rejected by the
  // cursor-at-end check.
  std::string V1 = serializeTensors(smallBundle(), CheckpointFormat::V1);
  EXPECT_FALSE(static_cast<bool>(deserializeTensors(V1 + "x")));
}

TEST(CheckpointFormatTest, V1FilesRemainReadable) {
  const std::string V1 = serializeTensors(smallBundle(), CheckpointFormat::V1);
  ASSERT_EQ(V1.substr(0, 8), "WOOTZCK1");
  Result<TensorBundle> Loaded = deserializeTensors(V1);
  ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.message();
  EXPECT_TRUE(bundlesEqual(smallBundle(), *Loaded));
}

TEST(CheckpointFormatTest, HugeSizeFieldsDoNotAllocate) {
  // A corrupt 4-byte field must not trigger a multi-GB std::string or
  // Tensor allocation; both length fields are validated against the
  // bytes actually remaining first. Craft v1 records by hand (v1 has no
  // CRC, so the size fields themselves are reachable).
  auto appendU32 = [](std::string &Out, uint32_t Value) {
    for (int I = 0; I < 4; ++I)
      Out.push_back(static_cast<char>((Value >> (8 * I)) & 0xff));
  };
  auto appendU64 = [](std::string &Out, uint64_t Value) {
    for (int I = 0; I < 8; ++I)
      Out.push_back(static_cast<char>((Value >> (8 * I)) & 0xff));
  };

  // Name length 0xffffffff.
  std::string HugeName = "WOOTZCK1";
  appendU64(HugeName, 1);
  appendU32(HugeName, 0xffffffffu);
  HugeName += "ab";
  Result<TensorBundle> R1 = deserializeTensors(HugeName);
  ASSERT_FALSE(static_cast<bool>(R1));
  EXPECT_NE(R1.message().find("exceeds the remaining"), std::string::npos)
      << R1.message();

  // Rank-4 extents whose product overflows even uint64 bytes.
  std::string HugeDims = "WOOTZCK1";
  appendU64(HugeDims, 1);
  appendU32(HugeDims, 1);
  HugeDims += "x";
  appendU32(HugeDims, 4); // rank
  for (int Axis = 0; Axis < 4; ++Axis)
    appendU32(HugeDims, 0x7fffffffu);
  Result<TensorBundle> R2 = deserializeTensors(HugeDims);
  ASSERT_FALSE(static_cast<bool>(R2));
  EXPECT_NE(R2.message().find("overflow"), std::string::npos)
      << R2.message();

  // A large-but-not-overflowing product must still be rejected against
  // the remaining byte count, not allocated.
  std::string BigTensor = "WOOTZCK1";
  appendU64(BigTensor, 1);
  appendU32(BigTensor, 1);
  BigTensor += "y";
  appendU32(BigTensor, 2);
  appendU32(BigTensor, 65536);
  appendU32(BigTensor, 65536); // 16 GiB payload claimed, 0 bytes present.
  Result<TensorBundle> R3 = deserializeTensors(BigTensor);
  ASSERT_FALSE(static_cast<bool>(R3));
  EXPECT_NE(R3.message().find("claims"), std::string::npos) << R3.message();
}

//===----------------------------------------------------------------------===//
// Atomic save
//===----------------------------------------------------------------------===//

TEST(CheckpointAtomicSaveTest, NoPartialFileUnderTheFinalName) {
  // Writers save alternating bundles to one path while a reader loads it
  // in a loop. Every load must see a complete, valid checkpoint — one of
  // the two bundles — never a partial write (the temp+rename contract).
  ScratchDir Dir("wootz_atomic_save_test");
  const std::string Path = Dir.file("contested.ckpt");

  TensorBundle A = smallBundle();
  TensorBundle B;
  B["other/s0"] = Tensor(Shape{4}, {9, 9, 9, 9});
  ASSERT_FALSE(static_cast<bool>(saveTensors(Path, A)));

  std::atomic<bool> Stop{false};
  std::atomic<int> WriteCount{0};
  std::thread Writer([&] {
    for (int I = 0; I < 200; ++I) {
      Error E = saveTensors(Path, (I % 2 == 0) ? B : A);
      ASSERT_FALSE(static_cast<bool>(E)) << E.message();
      WriteCount.fetch_add(1);
    }
    Stop = true;
  });
  int Loads = 0;
  while (!Stop.load()) {
    Result<TensorBundle> Loaded = loadTensors(Path);
    ASSERT_TRUE(static_cast<bool>(Loaded))
        << "load " << Loads << " after " << WriteCount.load()
        << " writes: " << Loaded.message();
    EXPECT_TRUE(bundlesEqual(*Loaded, A) || bundlesEqual(*Loaded, B));
    ++Loads;
  }
  Writer.join();
  EXPECT_GT(Loads, 0);

  // No temporary litter outlives the writers.
  int Residue = 0;
  for (const auto &Entry : fs::directory_iterator(Dir.str()))
    if (Entry.path().filename().string().find(".tmp.") != std::string::npos)
      ++Residue;
  EXPECT_EQ(Residue, 0);
}

TEST(CheckpointAtomicSaveTest, FailedSaveLeavesOldFileIntact) {
  ScratchDir Dir("wootz_atomic_fail_test");
  const std::string Path = Dir.file("victim.ckpt");
  ASSERT_FALSE(static_cast<bool>(saveTensors(Path, smallBundle())));

  // Writing over a path whose parent is a *file* cannot succeed; the
  // original must survive untouched.
  const std::string Blocked = Dir.file("victim.ckpt/nested.ckpt");
  Error E = saveTensors(Blocked, smallBundle());
  EXPECT_TRUE(static_cast<bool>(E));
  Result<TensorBundle> Loaded = loadTensors(Path);
  ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.message();
  EXPECT_TRUE(bundlesEqual(*Loaded, smallBundle()));
}

//===----------------------------------------------------------------------===//
// CheckpointStore: manifest, corrupt entries, load modes, concurrency
//===----------------------------------------------------------------------===//

TEST(CheckpointStoreDiskTest, WritesVersionedJsonManifest) {
  ScratchDir Dir("wootz_manifest_test");
  CheckpointStore Store;
  Store.insert("a|b", smallBundle());
  Store.insert("a:b", smallBundle());
  ASSERT_FALSE(static_cast<bool>(Store.saveTo(Dir.str())));

  Result<std::string> Manifest = readFile(Dir.file("MANIFEST.json"));
  ASSERT_TRUE(static_cast<bool>(Manifest)) << Manifest.message();
  std::istringstream Lines(*Manifest);
  std::string Header;
  ASSERT_TRUE(std::getline(Lines, Header));
  Result<std::map<std::string, std::string>> Parsed =
      parseFlatJsonObject(Header);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ((*Parsed)["type"], "wootz-checkpoint-manifest");
  EXPECT_EQ((*Parsed)["version"], "2");
  EXPECT_EQ((*Parsed)["entries"], "2");

  // The colliding keys land in two distinct files, and both load back.
  CheckpointStore Loaded;
  Result<CheckpointLoadReport> Report = Loaded.loadFrom(Dir.str());
  ASSERT_TRUE(static_cast<bool>(Report)) << Report.message();
  EXPECT_EQ(Report->Loaded, 2);
  EXPECT_TRUE(Loaded.contains("a|b"));
  EXPECT_TRUE(Loaded.contains("a:b"));
}

TEST(CheckpointStoreDiskTest, LegacyTsvManifestRemainsReadable) {
  ScratchDir Dir("wootz_tsv_manifest_test");
  const std::string V1 = serializeTensors(smallBundle(), CheckpointFormat::V1);
  ASSERT_FALSE(static_cast<bool>(writeFile(Dir.file("legacy.ckpt"), V1)));
  ASSERT_FALSE(static_cast<bool>(
      writeFile(Dir.file("MANIFEST"), "old@key\tlegacy.ckpt\n")));

  CheckpointStore Store;
  Result<CheckpointLoadReport> Report = Store.loadFrom(Dir.str());
  ASSERT_TRUE(static_cast<bool>(Report)) << Report.message();
  EXPECT_EQ(Report->Loaded, 1);
  EXPECT_TRUE(Store.contains("old@key"));
}

TEST(CheckpointStoreDiskTest, CorruptEntryIsReportedNotFatal) {
  // One flipped byte in one file: the load must still deliver every
  // other entry and name the broken one, instead of stopping at the
  // first unreadable file.
  ScratchDir Dir("wootz_corrupt_entry_test");
  CheckpointStore Store;
  Store.insert("good1", smallBundle());
  Store.insert("bad", smallBundle());
  Store.insert("good2", smallBundle());
  ASSERT_FALSE(static_cast<bool>(Store.saveTo(Dir.str())));

  const std::string BadPath = Dir.file(checkpointFileName("bad"));
  Result<std::string> Bytes = readFile(BadPath);
  ASSERT_TRUE(static_cast<bool>(Bytes));
  std::string Mutated = *Bytes;
  Mutated[Mutated.size() / 2] ^= 0x40;
  ASSERT_FALSE(static_cast<bool>(writeFile(BadPath, Mutated)));

  CheckpointStore Loaded;
  Result<CheckpointLoadReport> Report = Loaded.loadFrom(Dir.str());
  ASSERT_TRUE(static_cast<bool>(Report)) << Report.message();
  EXPECT_EQ(Report->Loaded, 2);
  ASSERT_EQ(Report->EntryErrors.size(), 1u);
  EXPECT_EQ(Report->EntryErrors[0].substr(0, 4), "bad:");
  EXPECT_TRUE(Loaded.contains("good1"));
  EXPECT_TRUE(Loaded.contains("good2"));
  EXPECT_FALSE(Loaded.contains("bad"));
}

TEST(CheckpointStoreDiskTest, MissingManifestIsAnError) {
  ScratchDir Dir("wootz_no_manifest_test");
  CheckpointStore Store;
  Result<CheckpointLoadReport> Report = Store.loadFrom(Dir.str());
  EXPECT_FALSE(static_cast<bool>(Report));
}

TEST(CheckpointStoreConcurrencyTest, CaptureSaveLoadStress) {
  // Writers insert bundles while one thread repeatedly mirrors the store
  // to disk and another keeps loading the directory into a second store.
  // Every saveTo must be internally consistent (manifest entries all
  // loadable) at any interleaving.
  ScratchDir Dir("wootz_store_stress_test");
  CheckpointStore Store;
  Store.insert("seed", smallBundle());
  ASSERT_FALSE(static_cast<bool>(Store.saveTo(Dir.str())));

  std::atomic<bool> Stop{false};
  std::thread Inserter([&] {
    for (int I = 0; I < 64; ++I)
      Store.insert("blk" + std::to_string(I), smallBundle());
  });
  std::thread Saver([&] {
    for (int I = 0; I < 16; ++I) {
      Error E = Store.saveTo(Dir.str());
      ASSERT_FALSE(static_cast<bool>(E)) << E.message();
    }
    Stop = true;
  });
  std::thread Loader([&] {
    while (!Stop.load()) {
      CheckpointStore Mirror;
      Result<CheckpointLoadReport> Report =
          Mirror.loadFrom(Dir.str(), CheckpointLoadMode::Replace);
      ASSERT_TRUE(static_cast<bool>(Report)) << Report.message();
      EXPECT_TRUE(Report->EntryErrors.empty());
      EXPECT_GE(Report->Loaded, 1);
    }
  });
  Inserter.join();
  Saver.join();
  Loader.join();

  CheckpointStore Final;
  Result<CheckpointLoadReport> Report =
      Final.loadFrom(Dir.str(), CheckpointLoadMode::Replace);
  ASSERT_TRUE(static_cast<bool>(Report)) << Report.message();
  EXPECT_EQ(Report->Loaded, 65);
}

//===----------------------------------------------------------------------===//
// BlockCache
//===----------------------------------------------------------------------===//

class BlockCacheTest : public ::testing::Test {
protected:
  CacheConfig configFor(const std::string &Dir) {
    CacheConfig Config;
    Config.Directory = Dir;
    return Config;
  }
};

TEST_F(BlockCacheTest, MissThenPublishThenHit) {
  ScratchDir Dir("wootz_blockcache_basic");
  RunLog Log;
  BlockCache Cache(configFor(Dir.str()), &Log);
  Cache.bindContext(/*TeacherFingerprint=*/111, /*MetaHash=*/222);

  CheckpointStore Store;
  EXPECT_FALSE(Cache.fetch("m0@0.5", Store));
  Store.insert("m0@0.5", smallBundle());
  ASSERT_FALSE(static_cast<bool>(Cache.publish("m0@0.5", Store)));

  CheckpointStore Fresh;
  EXPECT_TRUE(Cache.fetch("m0@0.5", Fresh));
  EXPECT_TRUE(Fresh.contains("m0@0.5"));
  Result<TensorBundle> RoundTripped = Fresh.bundleCopy("m0@0.5");
  ASSERT_TRUE(static_cast<bool>(RoundTripped));
  EXPECT_TRUE(bundlesEqual(*RoundTripped, smallBundle()));

  const BlockCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 1);
  EXPECT_EQ(Stats.Misses, 1);
  const RunTelemetry Telemetry = Log.snapshot();
  EXPECT_EQ(Telemetry.counter("cache.hit"), 1);
  EXPECT_EQ(Telemetry.counter("cache.miss"), 1);
  int SaveSpans = 0, LoadSpans = 0;
  for (const SpanEvent &Span : Telemetry.Spans) {
    SaveSpans += Span.Kind == "cache.save";
    LoadSpans += Span.Kind == "cache.load";
  }
  EXPECT_EQ(SaveSpans, 1);
  EXPECT_EQ(LoadSpans, 1);
}

TEST_F(BlockCacheTest, ContextChangesAreMisses) {
  // Same block id under a different teacher or recipe must not hit: the
  // context is part of the entry address.
  ScratchDir Dir("wootz_blockcache_context");
  BlockCache Publisher(configFor(Dir.str()));
  Publisher.bindContext(111, 222);
  CheckpointStore Store;
  Store.insert("m0@0.5", smallBundle());
  ASSERT_FALSE(static_cast<bool>(Publisher.publish("m0@0.5", Store)));

  BlockCache OtherTeacher(configFor(Dir.str()));
  OtherTeacher.bindContext(999, 222);
  CheckpointStore S1;
  EXPECT_FALSE(OtherTeacher.fetch("m0@0.5", S1));

  BlockCache OtherMeta(configFor(Dir.str()));
  OtherMeta.bindContext(111, 999);
  CheckpointStore S2;
  EXPECT_FALSE(OtherMeta.fetch("m0@0.5", S2));

  BlockCache SameContext(configFor(Dir.str()));
  SameContext.bindContext(111, 222);
  CheckpointStore S3;
  EXPECT_TRUE(SameContext.fetch("m0@0.5", S3));
}

TEST_F(BlockCacheTest, CorruptEntryIsQuarantinedAndMisses) {
  ScratchDir Dir("wootz_blockcache_corrupt");
  RunLog Log;
  BlockCache Cache(configFor(Dir.str()), &Log);
  Cache.bindContext(1, 2);
  CheckpointStore Store;
  Store.insert("m1@0.3", smallBundle());
  ASSERT_FALSE(static_cast<bool>(Cache.publish("m1@0.3", Store)));

  const std::string Path = Cache.entryPath("m1@0.3");
  Result<std::string> Bytes = readFile(Path);
  ASSERT_TRUE(static_cast<bool>(Bytes));
  std::string Mutated = *Bytes;
  Mutated[Mutated.size() - 3] ^= 0x01;
  ASSERT_FALSE(static_cast<bool>(writeFile(Path, Mutated)));

  CheckpointStore Fresh;
  EXPECT_FALSE(Cache.fetch("m1@0.3", Fresh));
  EXPECT_FALSE(Fresh.contains("m1@0.3"));
  EXPECT_FALSE(fs::exists(Path));
  EXPECT_TRUE(fs::exists(Path + ".corrupt"));
  EXPECT_EQ(Cache.stats().Corrupt, 1);
  EXPECT_EQ(Log.snapshot().counter("cache.corrupt"), 1);

  // The quarantined slot is free again: re-publishing (the "re-train"
  // path) restores service.
  ASSERT_FALSE(static_cast<bool>(Cache.publish("m1@0.3", Store)));
  CheckpointStore Recovered;
  EXPECT_TRUE(Cache.fetch("m1@0.3", Recovered));
}

TEST_F(BlockCacheTest, LruEvictionRespectsSizeCap) {
  ScratchDir Dir("wootz_blockcache_lru");
  CheckpointStore Store;
  Store.insert("blk", smallBundle());
  const uint64_t EntryBytes = serializeTensors(smallBundle()).size();

  CacheConfig Config = configFor(Dir.str());
  Config.MaxBytes = EntryBytes * 2 + EntryBytes / 2; // Fits two entries.
  RunLog Log;
  BlockCache Cache(Config, &Log);
  Cache.bindContext(5, 6);

  auto publishAs = [&](const std::string &Id) {
    Store.insert(Id, smallBundle());
    ASSERT_FALSE(static_cast<bool>(Cache.publish(Id, Store)));
    // mtime granularity on some filesystems is one second; nudge the
    // clock order explicitly so LRU is deterministic.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  publishAs("m0@0.1");
  publishAs("m0@0.2");
  publishAs("m0@0.3"); // Evicts m0@0.1, the oldest.

  CheckpointStore Probe;
  EXPECT_FALSE(Cache.fetch("m0@0.1", Probe));
  EXPECT_TRUE(Cache.fetch("m0@0.2", Probe));
  EXPECT_TRUE(Cache.fetch("m0@0.3", Probe));
  EXPECT_GE(Cache.stats().Evicted, 1);
  EXPECT_GE(Log.snapshot().counter("cache.evicted"), 1);
}

TEST_F(BlockCacheTest, ReadOnlyModeNeverWrites) {
  ScratchDir Dir("wootz_blockcache_readonly");
  BlockCache Writer(configFor(Dir.str()));
  Writer.bindContext(7, 8);
  CheckpointStore Store;
  Store.insert("m2@0.5", smallBundle());
  ASSERT_FALSE(static_cast<bool>(Writer.publish("m2@0.5", Store)));

  CacheConfig ReadOnly = configFor(Dir.str());
  ReadOnly.ReadOnly = true;
  BlockCache Reader(ReadOnly);
  Reader.bindContext(7, 8);

  CheckpointStore Probe;
  EXPECT_TRUE(Reader.fetch("m2@0.5", Probe)); // Hits still served.
  Store.insert("m3@0.5", smallBundle());
  ASSERT_FALSE(static_cast<bool>(Reader.publish("m3@0.5", Store)));
  CheckpointStore Probe2;
  EXPECT_FALSE(Reader.fetch("m3@0.5", Probe2)); // Publish was dropped.

  // Corrupt entries are reported but not renamed in read-only mode.
  const std::string Path = Reader.entryPath("m2@0.5");
  ASSERT_FALSE(static_cast<bool>(writeFile(Path, "WOOTZCK2garbage")));
  CheckpointStore Probe3;
  EXPECT_FALSE(Reader.fetch("m2@0.5", Probe3));
  EXPECT_TRUE(fs::exists(Path));
  EXPECT_FALSE(fs::exists(Path + ".corrupt"));
}

TEST_F(BlockCacheTest, DisabledCacheIsInert) {
  BlockCache Disabled;
  CheckpointStore Store;
  Store.insert("m0@0.5", smallBundle());
  EXPECT_FALSE(Disabled.fetch("m0@0.5", Store));
  EXPECT_FALSE(static_cast<bool>(Disabled.publish("m0@0.5", Store)));
  const BlockCacheStats Stats = Disabled.stats();
  EXPECT_EQ(Stats.Hits + Stats.Misses + Stats.Corrupt + Stats.Evicted, 0);
}

TEST_F(BlockCacheTest, ConcurrentPublishersAndFetchers) {
  // The Overlap schedule publishes from concurrent group tasks while
  // other tasks fetch. All operations must stay clean under the race.
  ScratchDir Dir("wootz_blockcache_stress");
  RunLog Log;
  BlockCache Cache(configFor(Dir.str()), &Log);
  Cache.bindContext(3, 4);

  constexpr int PerThread = 16;
  auto Publisher = [&](int Which) {
    CheckpointStore Store;
    for (int I = 0; I < PerThread; ++I) {
      const std::string Id =
          "t" + std::to_string(Which) + "@" + std::to_string(I);
      Store.insert(Id, smallBundle());
      Error E = Cache.publish(Id, Store);
      ASSERT_FALSE(static_cast<bool>(E)) << E.message();
    }
  };
  std::atomic<bool> Stop{false};
  std::thread A([&] { Publisher(0); });
  std::thread B([&] { Publisher(1); });
  std::thread Fetcher([&] {
    while (!Stop.load()) {
      CheckpointStore Probe;
      Cache.fetch("t0@0", Probe);
      Cache.fetch("t1@" + std::to_string(PerThread - 1), Probe);
    }
  });
  A.join();
  B.join();
  Stop = true;
  Fetcher.join();

  CheckpointStore Probe;
  for (int Which = 0; Which < 2; ++Which)
    for (int I = 0; I < PerThread; ++I)
      EXPECT_TRUE(Cache.fetch(
          "t" + std::to_string(Which) + "@" + std::to_string(I), Probe));
  EXPECT_EQ(Cache.stats().Corrupt, 0);
}

//===----------------------------------------------------------------------===//
// Flat JSON parser (manifest dependency)
//===----------------------------------------------------------------------===//

TEST(CheckpointManifestJsonTest, ParsesWriterOutput) {
  JsonObject Row;
  Row.field("key", "a\tb\"c\\d").field("file", "x.ckpt").field("n", 3);
  Result<std::map<std::string, std::string>> Parsed =
      parseFlatJsonObject(Row.str());
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ((*Parsed)["key"], "a\tb\"c\\d");
  EXPECT_EQ((*Parsed)["file"], "x.ckpt");
  EXPECT_EQ((*Parsed)["n"], "3");
}

TEST(CheckpointManifestJsonTest, RejectsMalformedObjects) {
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("")));
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("{\"a\":1")));
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("{\"a\":{}}")));
  EXPECT_FALSE(static_cast<bool>(parseFlatJsonObject("{\"a\":1}x")));
  EXPECT_FALSE(
      static_cast<bool>(parseFlatJsonObject("{\"a\":1,\"a\":2}")));
  EXPECT_TRUE(static_cast<bool>(parseFlatJsonObject("{}")));
  EXPECT_TRUE(static_cast<bool>(
      parseFlatJsonObject(" { \"a\" : \"b\" , \"c\" : true } ")));
}

} // namespace
