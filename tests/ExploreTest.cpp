//===- tests/ExploreTest.cpp - explore/ unit tests ------------------------------------===//

#include "src/explore/Cluster.h"
#include "src/explore/Objective.h"
#include "src/support/Rng.h"

#include <gtest/gtest.h>

using namespace wootz;

namespace {

//===----------------------------------------------------------------------===//
// Objective parsing and semantics
//===----------------------------------------------------------------------===//

TEST(ObjectiveTest, ParsesFigure3bExample) {
  Result<PruningObjective> Objective =
      parseObjective("min ModelSize\nconstraint Accuracy > 0.8\n");
  ASSERT_TRUE(static_cast<bool>(Objective)) << Objective.message();
  EXPECT_TRUE(Objective->Minimize);
  EXPECT_EQ(Objective->Optimize, Metric::ModelSize);
  ASSERT_EQ(Objective->Constraints.size(), 1u);
  EXPECT_TRUE(Objective->satisfied(100, 0.9));
  EXPECT_FALSE(Objective->satisfied(100, 0.8)); // Strict >.
}

TEST(ObjectiveTest, ParsesAllOperators) {
  Result<PruningObjective> Objective = parseObjective(
      "max Accuracy\n"
      "constraint ModelSize <= 1000\n"
      "constraint ModelSize >= 10\n"
      "constraint Accuracy < 1.0\n");
  ASSERT_TRUE(static_cast<bool>(Objective)) << Objective.message();
  EXPECT_FALSE(Objective->Minimize);
  EXPECT_TRUE(Objective->satisfied(1000, 0.5));
  EXPECT_FALSE(Objective->satisfied(1001, 0.5));
  EXPECT_FALSE(Objective->satisfied(9, 0.5));
  EXPECT_FALSE(Objective->satisfied(100, 1.0));
}

TEST(ObjectiveTest, CommentsAndBlanksIgnored) {
  Result<PruningObjective> Objective = parseObjective(
      "# objective\n\nmin ModelSize # smallest\n"
      "constraint Accuracy >= 0.7\n");
  ASSERT_TRUE(static_cast<bool>(Objective)) << Objective.message();
}

TEST(ObjectiveTest, RejectsMalformedInput) {
  EXPECT_FALSE(static_cast<bool>(parseObjective("")));
  EXPECT_FALSE(static_cast<bool>(parseObjective("minimize ModelSize")));
  EXPECT_FALSE(static_cast<bool>(parseObjective("min Weight")));
  EXPECT_FALSE(
      static_cast<bool>(parseObjective("min ModelSize\nconstraint "
                                       "Accuracy == 0.8")));
  EXPECT_FALSE(static_cast<bool>(
      parseObjective("min ModelSize\nmin Accuracy")));
  EXPECT_FALSE(static_cast<bool>(parseObjective("constraint Accuracy > "
                                                "0.5")));
}

TEST(ObjectiveTest, ExplorationOrderFollowsObjective) {
  EXPECT_TRUE(smallestMeetingAccuracy(0.8).exploreSmallestFirst());
  Result<PruningObjective> MaxAcc =
      parseObjective("max Accuracy\nconstraint ModelSize <= 100\n");
  ASSERT_TRUE(static_cast<bool>(MaxAcc));
  EXPECT_FALSE(MaxAcc->exploreSmallestFirst());
}

TEST(ObjectiveTest, RoundTripsThroughPrinter) {
  const PruningObjective Objective = smallestMeetingAccuracy(0.8125);
  Result<PruningObjective> Reparsed =
      parseObjective(printObjective(Objective));
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  EXPECT_TRUE(Reparsed->satisfied(1, 0.9));
  EXPECT_FALSE(Reparsed->satisfied(1, 0.8));
}

//===----------------------------------------------------------------------===//
// Exploration schedule simulation
//===----------------------------------------------------------------------===//

TEST(ClusterTest, SingleNodeStopsAtWinner) {
  const std::vector<double> Seconds{1, 1, 1, 1, 1};
  const std::vector<bool> Satisfies{false, false, true, false, true};
  const ExplorationOutcome Outcome =
      simulateExploration(Seconds, Satisfies, 1);
  EXPECT_EQ(Outcome.WinnerIndex, 2);
  EXPECT_EQ(Outcome.ConfigsEvaluated, 3);
  EXPECT_DOUBLE_EQ(Outcome.Seconds, 3.0);
}

TEST(ClusterTest, NoWinnerEvaluatesEverything) {
  const std::vector<double> Seconds{2, 3, 4};
  const std::vector<bool> Satisfies{false, false, false};
  const ExplorationOutcome Outcome =
      simulateExploration(Seconds, Satisfies, 2);
  EXPECT_EQ(Outcome.WinnerIndex, -1);
  EXPECT_EQ(Outcome.ConfigsEvaluated, 3);
  // Node 0 runs configs 0 and 2 (6s); node 1 runs config 1 (3s).
  EXPECT_DOUBLE_EQ(Outcome.Seconds, 6.0);
}

TEST(ClusterTest, RoundsQuantizeEvaluatedCount) {
  // Winner at index 5 with 4 nodes: rounds 0-1 complete, 8 configs.
  const std::vector<double> Seconds(12, 1.0);
  std::vector<bool> Satisfies(12, false);
  Satisfies[5] = true;
  const ExplorationOutcome Outcome =
      simulateExploration(Seconds, Satisfies, 4);
  EXPECT_EQ(Outcome.ConfigsEvaluated, 8);
  EXPECT_DOUBLE_EQ(Outcome.Seconds, 2.0); // Two rounds of 1s each.
}

TEST(ClusterTest, MoreNodesNeverSlower) {
  Rng Generator(3);
  std::vector<double> Seconds(30);
  for (double &S : Seconds)
    S = 1.0 + Generator.nextDouble();
  std::vector<bool> Satisfies(30, false);
  Satisfies[17] = true;
  double Previous = 1e100;
  for (int Nodes : {1, 2, 4, 8, 16}) {
    const ExplorationOutcome Outcome =
        simulateExploration(Seconds, Satisfies, Nodes);
    EXPECT_LE(Outcome.Seconds, Previous + 1e-9) << Nodes << " nodes";
    Previous = Outcome.Seconds;
  }
}

TEST(ClusterTest, EvaluatedCountCappedAtTotal) {
  const std::vector<double> Seconds{1, 1};
  std::vector<bool> Satisfies{false, true};
  const ExplorationOutcome Outcome =
      simulateExploration(Seconds, Satisfies, 16);
  EXPECT_EQ(Outcome.ConfigsEvaluated, 2);
}

TEST(ClusterTest, PretrainMakespanRoundRobin) {
  const std::vector<double> Groups{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(pretrainMakespan(Groups, 1), 10.0);
  // Node 0: 4+2=6, node 1: 3+1=4.
  EXPECT_DOUBLE_EQ(pretrainMakespan(Groups, 2), 6.0);
  EXPECT_DOUBLE_EQ(pretrainMakespan(Groups, 4), 4.0);
  EXPECT_DOUBLE_EQ(pretrainMakespan({}, 4), 0.0);
}

TEST(ClusterTest, TaskAssignmentFileFormat) {
  const std::string Text = taskAssignmentFile(7, 3);
  EXPECT_NE(Text.find("node 0: 0 3 6"), std::string::npos);
  EXPECT_NE(Text.find("node 1: 1 4"), std::string::npos);
  EXPECT_NE(Text.find("node 2: 2 5"), std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===//
// Exploration order under a max-Accuracy objective (appended tests)
//===----------------------------------------------------------------------===//

#include "src/explore/Pipeline.h"

namespace {

/// Builds a synthetic PipelineResult with known per-config outcomes
/// (smallest-first storage, as runPruningPipeline produces).
static PipelineResult syntheticRun() {
  PipelineResult Run;
  Run.FullAccuracy = 0.9;
  Run.FullWeightCount = 1000;
  // Sizes ascending; accuracies mostly rising with size.
  const std::vector<std::pair<size_t, double>> Points{
      {300, 0.50}, {400, 0.70}, {500, 0.72}, {700, 0.85}, {900, 0.88}};
  for (const auto &[Weights, Accuracy] : Points) {
    EvaluatedConfig E;
    E.Config = {0.5f};
    E.WeightCount = Weights;
    E.SizeFraction = static_cast<double>(Weights) / 1000.0;
    E.FinalAccuracy = Accuracy;
    E.TrainSeconds = 1.0;
    Run.Evaluations.push_back(E);
  }
  return Run;
}

TEST(SummaryOrderTest, MinModelSizeWalksSmallestFirst) {
  const PipelineResult Run = syntheticRun();
  const PruningObjective Objective = smallestMeetingAccuracy(0.71);
  const ExplorationSummary Summary =
      summarizeExploration(Run, Objective, 1);
  // First satisfier in ascending-size order is index 2 (acc 0.72).
  EXPECT_EQ(Summary.WinnerIndex, 2);
  EXPECT_EQ(Summary.ConfigsEvaluated, 3);
  EXPECT_DOUBLE_EQ(Summary.WinnerSizeFraction, 0.5);
}

TEST(SummaryOrderTest, MaxAccuracyWalksLargestFirst) {
  const PipelineResult Run = syntheticRun();
  Result<PruningObjective> Objective = parseObjective(
      "max Accuracy\nconstraint ModelSize <= 750\n");
  ASSERT_TRUE(static_cast<bool>(Objective));
  const ExplorationSummary Summary =
      summarizeExploration(Run, *Objective, 1);
  // Largest-first order: 900 (violates the size cap), then 700
  // (satisfies) -> winner after two evaluations, size fraction 0.7.
  EXPECT_EQ(Summary.WinnerIndex, 1);
  EXPECT_EQ(Summary.ConfigsEvaluated, 2);
  EXPECT_DOUBLE_EQ(Summary.WinnerSizeFraction, 0.7);
}

TEST(SummaryOrderTest, NoWinnerReportsEverything) {
  const PipelineResult Run = syntheticRun();
  const PruningObjective Objective = smallestMeetingAccuracy(0.95);
  const ExplorationSummary Summary =
      summarizeExploration(Run, Objective, 2);
  EXPECT_EQ(Summary.WinnerIndex, -1);
  EXPECT_EQ(Summary.ConfigsEvaluated, 5);
  EXPECT_DOUBLE_EQ(Summary.WinnerSizeFraction, 0.0);
}

} // namespace
