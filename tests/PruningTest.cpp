//===- tests/PruningTest.cpp - pruning/ unit tests ---------------------------------===//

#include "src/compiler/Multiplexing.h"
#include "src/nn/Layers.h"
#include "src/models/MiniModels.h"
#include "src/pruning/Transfer.h"

#include <gtest/gtest.h>

#include <set>

using namespace wootz;

namespace {

//===----------------------------------------------------------------------===//
// PruneConfig helpers
//===----------------------------------------------------------------------===//

TEST(PruneConfigTest, KeptFiltersRounding) {
  EXPECT_EQ(keptFilters(8, 0.0f), 8);
  EXPECT_EQ(keptFilters(8, 0.3f), 6);  // 5.6 -> 6.
  EXPECT_EQ(keptFilters(8, 0.5f), 4);
  EXPECT_EQ(keptFilters(8, 0.7f), 2);  // 2.4 -> 2.
  EXPECT_EQ(keptFilters(1, 0.7f), 1);  // Never below one.
}

TEST(PruneConfigTest, StandardRates) {
  const std::vector<float> Rates = standardRates();
  ASSERT_EQ(Rates.size(), 4u);
  EXPECT_FLOAT_EQ(Rates[0], 0.0f);
  EXPECT_FLOAT_EQ(Rates[3], 0.7f);
}

TEST(PruneConfigTest, FormatConfig) {
  EXPECT_EQ(formatConfig({0.3f, 0.0f, 0.5f}), "[0.3, 0, 0.5]");
}

TEST(SubspaceTest, SamplesAreUniqueAndInAlphabet) {
  Rng Generator(1);
  const std::vector<float> Rates = standardRates();
  const std::vector<PruneConfig> Subspace =
      sampleSubspace(6, 40, Rates, Generator);
  EXPECT_EQ(Subspace.size(), 40u);
  std::set<PruneConfig> Unique(Subspace.begin(), Subspace.end());
  EXPECT_EQ(Unique.size(), Subspace.size());
  for (const PruneConfig &Config : Subspace) {
    EXPECT_EQ(Config.size(), 6u);
    for (float Rate : Config)
      EXPECT_TRUE(std::find(Rates.begin(), Rates.end(), Rate) !=
                  Rates.end());
  }
}

TEST(SubspaceTest, ExhaustsTinySpacesGracefully) {
  Rng Generator(2);
  // Only 2^2 = 4 configs exist; asking for 100 returns at most 4.
  const std::vector<PruneConfig> Subspace =
      sampleSubspace(2, 100, {0.0f, 0.5f}, Generator);
  EXPECT_LE(Subspace.size(), 4u);
  EXPECT_GE(Subspace.size(), 3u);
}

TEST(SubspaceTest, RunSamplingProducesRateRuns) {
  Rng Generator(3);
  const std::vector<PruneConfig> Subspace =
      sampleRunSubspace(8, 20, 2, standardRates(), Generator);
  EXPECT_FALSE(Subspace.empty());
  for (const PruneConfig &Config : Subspace) {
    // With at most 2 runs there is at most one rate change.
    int Changes = 0;
    for (size_t I = 1; I < Config.size(); ++I)
      Changes += Config[I] != Config[I - 1];
    EXPECT_LE(Changes, 1) << formatConfig(Config);
  }
}

TEST(SubspaceSpecTest, ParsesFigure3aFormat) {
  Result<std::vector<PruneConfig>> Configs = parseSubspaceSpec(
      "configs = [[0.3, 0, 0.3, 0], [0.5, 0, 0.3, 0]]");
  ASSERT_TRUE(static_cast<bool>(Configs)) << Configs.message();
  ASSERT_EQ(Configs->size(), 2u);
  EXPECT_FLOAT_EQ((*Configs)[0][0], 0.3f);
  EXPECT_FLOAT_EQ((*Configs)[1][0], 0.5f);
  EXPECT_FLOAT_EQ((*Configs)[0][1], 0.0f);
}

TEST(SubspaceSpecTest, PrefixOptionalAndCommentsAllowed) {
  Result<std::vector<PruneConfig>> Configs = parseSubspaceSpec(
      "# promising subspace\n[[0.7, 0.7]] # one config\n");
  ASSERT_TRUE(static_cast<bool>(Configs)) << Configs.message();
  EXPECT_EQ(Configs->size(), 1u);
}

TEST(SubspaceSpecTest, RejectsBadInput) {
  EXPECT_FALSE(static_cast<bool>(parseSubspaceSpec("")));
  EXPECT_FALSE(static_cast<bool>(parseSubspaceSpec("configs = [")));
  EXPECT_FALSE(static_cast<bool>(parseSubspaceSpec("[[0.3], [0.3, 0]]")));
  EXPECT_FALSE(static_cast<bool>(parseSubspaceSpec("[[1.5]]")));
  EXPECT_FALSE(static_cast<bool>(parseSubspaceSpec("stuff = [[0.3]]")));
}

TEST(SubspaceSpecTest, RoundTripsThroughPrinter) {
  Rng Generator(4);
  const std::vector<PruneConfig> Subspace =
      sampleSubspace(4, 10, standardRates(), Generator);
  Result<std::vector<PruneConfig>> Reparsed =
      parseSubspaceSpec(printSubspaceSpec(Subspace));
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  EXPECT_EQ(*Reparsed, Subspace);
}

//===----------------------------------------------------------------------===//
// ChannelPlan
//===----------------------------------------------------------------------===//

TEST(ChannelPlanTest, FullPlanMatchesSpecWidths) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 6);
  ASSERT_TRUE(static_cast<bool>(Spec));
  Result<ChannelPlan> Plan = planChannels(*Spec, unprunedConfig(*Spec));
  ASSERT_TRUE(static_cast<bool>(Plan)) << Plan.message();
  EXPECT_EQ(Plan->OutChannels[Spec->layerIndex("stem")], 12);
  EXPECT_EQ(Plan->OutChannels[Spec->layerIndex("m1_conv1")], 8);
  EXPECT_EQ(Plan->OutChannels[Spec->layerIndex("logits")], 6);
  // Global pool collapses spatial extents.
  const LayerExtents Pool = Plan->Extents[Spec->layerIndex("pool")];
  EXPECT_EQ(Pool.Height, 1);
  EXPECT_EQ(Pool.Width, 1);
}

TEST(ChannelPlanTest, PrunedPlanShrinksPrunableConvsOnly) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 6);
  ASSERT_TRUE(static_cast<bool>(Spec));
  PruneConfig Config = unprunedConfig(*Spec);
  Config[0] = 0.5f;
  Result<ChannelPlan> Plan = planChannels(*Spec, Config);
  ASSERT_TRUE(static_cast<bool>(Plan));
  EXPECT_EQ(Plan->OutChannels[Spec->layerIndex("m1_conv1")], 4);
  EXPECT_EQ(Plan->OutChannels[Spec->layerIndex("m1_conv2")], 4);
  EXPECT_EQ(Plan->OutChannels[Spec->layerIndex("m1_conv3")], 12);
  EXPECT_EQ(Plan->OutChannels[Spec->layerIndex("m2_conv1")], 8);
}

TEST(ChannelPlanTest, ConcatWidthsSum) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::InceptionA, 6);
  ASSERT_TRUE(static_cast<bool>(Spec));
  Result<ChannelPlan> Plan = planChannels(*Spec, unprunedConfig(*Spec));
  ASSERT_TRUE(static_cast<bool>(Plan));
  EXPECT_EQ(Plan->OutChannels[Spec->layerIndex("m1_out")], 12);
}

TEST(ChannelPlanTest, RejectsWrongRateCount) {
  Result<ModelSpec> Spec = makeStandardModel(StandardModel::ResNetA, 6);
  ASSERT_TRUE(static_cast<bool>(Spec));
  Result<ChannelPlan> Plan = planChannels(*Spec, PruneConfig{0.5f});
  ASSERT_FALSE(static_cast<bool>(Plan));
}

TEST(ChannelPlanTest, WeightCountMatchesHandComputation) {
  // tiny hand-checkable model: conv 3->4 (k3, bias) + dense 4->2.
  const std::string Text = R"proto(
name: "hand"
input: "data"
input_dim: 1
input_dim: 3
input_dim: 8
input_dim: 8
layer { name: "c" type: "Convolution" bottom: "data" top: "c"
  convolution_param { num_output: 4 kernel_size: 3 stride: 1 pad: 1 } }
layer { name: "p" type: "Pooling" bottom: "c" top: "p"
  pooling_param { pool: AVE global_pooling: true } }
layer { name: "logits" type: "InnerProduct" bottom: "p" top: "logits"
  inner_product_param { num_output: 2 } }
)proto";
  Result<ModelSpec> Spec = parseModelSpec(Text);
  ASSERT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  // conv: 4*3*9 + 4 = 112; dense: 2*4 + 2 = 10.
  EXPECT_EQ(modelWeightCount(*Spec, unprunedConfig(*Spec)), 122u);
}

//===----------------------------------------------------------------------===//
// Filter selection and weight transfer
//===----------------------------------------------------------------------===//

class TransferFixture : public ::testing::Test {
protected:
  void SetUp() override {
    Result<ModelSpec> Parsed = makeStandardModel(StandardModel::ResNetA, 6);
    ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
    Spec = Parsed.take();
    Model = std::make_unique<MultiplexingModel>(Spec);
    Rng Generator(17);
    Result<BuildResult> Built = Model->build(Full, BuildMode::FullModel,
                                             PruneInfo(), "full", Generator);
    ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  }

  ModelSpec Spec;
  std::unique_ptr<MultiplexingModel> Model;
  Graph Full;
};

TEST_F(TransferFixture, SelectionKeepsLargestL1Norms) {
  auto &Conv = static_cast<Conv2D &>(Full.layer("full/m1_conv1"));
  // Force known norms: filter i gets constant weight (i+1)/100.
  Tensor &W = Conv.weight().Value;
  const int Filters = W.shape()[0];
  const size_t FilterSize = W.size() / Filters;
  for (int O = 0; O < Filters; ++O)
    for (size_t J = 0; J < FilterSize; ++J)
      W[O * FilterSize + J] = static_cast<float>(O + 1) / 100.0f;

  PruneConfig Config = unprunedConfig(Spec);
  Config[0] = 0.5f; // Keep 4 of 8.
  const FilterSelections Selections =
      selectFiltersByL1(Spec, Config, Full, "full");
  const std::vector<int> &Kept = Selections.at("m1_conv1");
  EXPECT_EQ(Kept, (std::vector<int>{4, 5, 6, 7}));
}

TEST_F(TransferFixture, UnprunedLayersGetIdentitySelection) {
  const FilterSelections Selections =
      selectFiltersByL1(Spec, unprunedConfig(Spec), Full, "full");
  const std::vector<int> &Stem = Selections.at("stem");
  EXPECT_EQ(static_cast<int>(Stem.size()), 12);
  EXPECT_EQ(Stem[11], 11);
}

TEST_F(TransferFixture, OutputSelectionPropagatesThroughPassThrough) {
  PruneConfig Config = unprunedConfig(Spec);
  Config[0] = 0.7f;
  const FilterSelections Selections =
      selectFiltersByL1(Spec, Config, Full, "full");
  // The relu after m1_conv1 carries m1_conv1's selection.
  EXPECT_EQ(outputChannelSelection(Spec, Selections, "m1_conv1_relu"),
            Selections.at("m1_conv1"));
  // The module output (after the unpruned conv3 + eltwise) is full.
  EXPECT_EQ(
      outputChannelSelection(Spec, Selections, "m1_out").size(), 12u);
}

TEST_F(TransferFixture, TransferredWeightsMatchSlices) {
  PruneConfig Config = unprunedConfig(Spec);
  Config[0] = 0.5f;
  const FilterSelections Selections =
      selectFiltersByL1(Spec, Config, Full, "full");

  Graph Pruned;
  PruneInfo Info;
  Info.Config = Config;
  Rng Generator(23);
  Result<BuildResult> Built = Model->build(Pruned, BuildMode::FineTune,
                                           Info, "net", Generator);
  ASSERT_TRUE(static_cast<bool>(Built)) << Built.message();
  transferWeights(Spec, Selections, Full, "full", Pruned, "net");

  auto &FullConv = static_cast<Conv2D &>(Full.layer("full/m1_conv2"));
  auto &PrunedConv = static_cast<Conv2D &>(Pruned.layer("net/m1_conv2"));
  const std::vector<int> &OutSel = Selections.at("m1_conv2");
  const std::vector<int> &InSel = Selections.at("m1_conv1");
  ASSERT_EQ(PrunedConv.weight().Value.shape()[0],
            static_cast<int>(OutSel.size()));
  ASSERT_EQ(PrunedConv.weight().Value.shape()[1],
            static_cast<int>(InSel.size()));
  for (size_t O = 0; O < OutSel.size(); ++O)
    for (size_t I = 0; I < InSel.size(); ++I)
      for (int H = 0; H < 3; ++H)
        for (int W = 0; W < 3; ++W)
          ASSERT_EQ(PrunedConv.weight().Value.at(static_cast<int>(O),
                                                 static_cast<int>(I), H, W),
                    FullConv.weight().Value.at(OutSel[O], InSel[I], H, W));
}

TEST_F(TransferFixture, UnprunedTransferReproducesFullOutputs) {
  // Transferring with an all-zero config must make the pruned network
  // functionally identical to the full model.
  Graph Copy;
  PruneInfo Info;
  Info.Config = unprunedConfig(Spec);
  Rng Generator(29);
  Result<BuildResult> Built =
      Model->build(Copy, BuildMode::FineTune, Info, "net", Generator);
  ASSERT_TRUE(static_cast<bool>(Built));
  transferWeights(Spec, FilterSelections(), Full, "full", Copy, "net");

  Tensor Input(Shape{2, 3, 8, 8});
  Rng DataGen(31);
  for (size_t I = 0; I < Input.size(); ++I)
    Input[I] = DataGen.nextGaussian();
  Full.setInput("data", Input);
  Full.forward(false);
  Copy.setInput("data", Input);
  Copy.forward(false);
  const Tensor &A = Full.activation("full/logits");
  const Tensor &B = Copy.activation("net/logits");
  ASSERT_EQ(A.shape(), B.shape());
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(A[I], B[I], 1e-5);
}

TEST_F(TransferFixture, InceptionDenseSlicingRespectsConcatOffsets) {
  // Build an inception model, prune the last module, and check the
  // transfer runs and keeps shapes consistent (concat offsets exercise
  // outputChannelSelection's hardest path).
  Result<ModelSpec> ParsedInc =
      makeStandardModel(StandardModel::InceptionA, 6);
  ASSERT_TRUE(static_cast<bool>(ParsedInc));
  const ModelSpec IncSpec = ParsedInc.take();
  MultiplexingModel IncModel(IncSpec);
  Graph IncFull;
  Rng Generator(37);
  ASSERT_TRUE(static_cast<bool>(IncModel.build(
      IncFull, BuildMode::FullModel, PruneInfo(), "full", Generator)));

  PruneConfig Config = unprunedConfig(IncSpec);
  Config.back() = 0.7f;
  const FilterSelections Selections =
      selectFiltersByL1(IncSpec, Config, IncFull, "full");
  Graph Pruned;
  PruneInfo Info;
  Info.Config = Config;
  ASSERT_TRUE(static_cast<bool>(
      IncModel.build(Pruned, BuildMode::FineTune, Info, "net", Generator)));
  transferWeights(IncSpec, Selections, IncFull, "full", Pruned, "net");

  // Forward must run cleanly end to end on the pruned network.
  Tensor Input(Shape{1, 3, 8, 8});
  Pruned.setInput("data", Input);
  Pruned.forward(false);
  EXPECT_EQ(Pruned.activation("net/logits").shape(), Shape({1, 6}));
}

} // namespace
