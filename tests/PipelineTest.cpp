//===- tests/PipelineTest.cpp - runtime-scheduled pipeline tests ------------===//
//
// Exercises the pipeline on the runtime scheduler: Workers validation,
// telemetry capture, and the Overlap schedule's two headline properties —
// block-ready overlap (a fine-tune starts before the last block group
// finishes) and frontier cancellation (once a configuration provably
// satisfies the objective, later evaluations are cancelled).
//
//===----------------------------------------------------------------------===//

#include "src/wootz/wootz.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace wootz;

namespace {

class RuntimePipelineFixture : public ::testing::Test {
protected:
  void SetUp() override {
    SyntheticSpec DataSpec;
    DataSpec.Classes = 4;
    DataSpec.TrainPerClass = 12;
    DataSpec.TestPerClass = 6;
    DataSpec.Noise = 0.5f;
    DataSpec.Seed = 13;
    Data = generateSynthetic(DataSpec);

    Result<ModelSpec> Parsed = makeStandardModel(StandardModel::ResNetA, 4);
    ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
    Spec = Parsed.take();
    ASSERT_GE(Spec.moduleCount(), 2);

    Meta.FullModelSteps = 40;
    Meta.PretrainSteps = 24;
    Meta.FinetuneSteps = 10;
    Meta.BatchSize = 8;
    Meta.EvalEvery = 10;

    // A crafted subspace over modules 0 and 1. Its per-module blocks are
    // m0@{0.3,0.5,0.7} and m1@{0.5,0.7}, which partition into three
    // groups: g0 = {m0@0.3, m1@0.5}, g1 = {m0@0.5, m1@0.7},
    // g2 = {m0@0.7}. The smallest configuration [0.7, 0.7, 0...] (the
    // exploration's position 0) composes blocks from g1 and g2 only — a
    // strict subset — so under Overlap its fine-tune can start while the
    // (heaviest, least-pruned) group g0 is still pre-training.
    auto Config = [&](float Rate0, float Rate1) {
      PruneConfig C(Spec.moduleCount(), 0.0f);
      C[0] = Rate0;
      C[1] = Rate1;
      return C;
    };
    Subspace = {Config(0.7f, 0.7f), Config(0.7f, 0.0f),
                Config(0.0f, 0.7f), Config(0.5f, 0.5f),
                Config(0.5f, 0.0f), Config(0.0f, 0.5f),
                Config(0.3f, 0.0f)};
  }

  Dataset Data;
  ModelSpec Spec;
  TrainMeta Meta;
  std::vector<PruneConfig> Subspace;
};

TEST_F(RuntimePipelineFixture, NegativeWorkersAreRejected) {
  PipelineOptions Options;
  Options.Workers = -1;
  Rng Generator(7);
  Result<PipelineResult> Run =
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator);
  ASSERT_FALSE(static_cast<bool>(Run));
  EXPECT_NE(Run.message().find("Workers"), std::string::npos);
}

TEST_F(RuntimePipelineFixture, ZeroWorkersMeansHardwareConcurrency) {
  PipelineOptions Options;
  Options.Workers = 0;
  Rng Generator(7);
  const std::vector<PruneConfig> Small(Subspace.begin(),
                                       Subspace.begin() + 2);
  Result<PipelineResult> Run =
      runPruningPipeline(Spec, Data, Small, Meta, Options, Generator);
  ASSERT_TRUE(static_cast<bool>(Run)) << Run.message();
  EXPECT_EQ(Run->Evaluations.size(), 2u);
}

TEST_F(RuntimePipelineFixture, EvalOnlyRunRecordsTelemetry) {
  PipelineOptions Options;
  Options.UseComposability = true;
  const std::string Path =
      ::testing::TempDir() + "wootz_pipeline_evalonly.jsonl";
  Options.TelemetryPath = Path;
  Rng Generator(21);
  Result<PipelineResult> Run =
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator);
  ASSERT_TRUE(static_cast<bool>(Run)) << Run.message();

  EXPECT_TRUE(Run->Telemetry.Measured);
  // One span per evaluation plus one per pre-trained block group.
  size_t EvalSpans = 0, PretrainSpans = 0;
  for (const SpanEvent &Span : Run->Telemetry.Spans) {
    EvalSpans += Span.Kind == "eval";
    PretrainSpans += Span.Kind == "pretrain";
  }
  EXPECT_EQ(EvalSpans, Subspace.size());
  EXPECT_EQ(PretrainSpans,
            static_cast<size_t>(Run->Pretrain.GroupCount));
  // Serial schedule: pre-training strictly precedes every evaluation.
  EXPECT_GE(Run->Telemetry.firstStart("eval"),
            Run->Telemetry.lastEnd("pretrain"));

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Contents;
  Contents << In.rdbuf();
  EXPECT_NE(Contents.str().find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(Contents.str().find("\"type\":\"counters\""),
            std::string::npos);
  std::remove(Path.c_str());
}

TEST_F(RuntimePipelineFixture, OverlapScheduleOverlapsAndCancels) {
  const PruningObjective Objective = smallestMeetingAccuracy(0.0);
  PipelineOptions Options;
  Options.UseComposability = true;
  Options.Schedule = PipelineSchedule::Overlap;
  Options.Workers = 2;
  Options.CancelObjective = &Objective;
  const std::string Path =
      ::testing::TempDir() + "wootz_pipeline_overlap.jsonl";
  Options.TelemetryPath = Path;

  Rng Generator(99);
  Result<PipelineResult> Run =
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator);
  ASSERT_TRUE(static_cast<bool>(Run)) << Run.message();
  ASSERT_EQ(Run->Evaluations.size(), Subspace.size());

  // (a) Block-ready overlap: some fine-tune started before the last
  // block group finished, visible in the span log.
  const double FirstEval = Run->Telemetry.firstStart("eval");
  const double LastPretrain = Run->Telemetry.lastEnd("pretrain");
  EXPECT_GT(LastPretrain, 0.0);
  EXPECT_LT(FirstEval, LastPretrain)
      << "no evaluation overlapped pre-training";

  // (b) Frontier cancellation: the smallest configuration satisfies the
  // (always-satisfiable) objective, so at least one later evaluation
  // must have been cancelled before it started.
  EXPECT_GE(Run->Telemetry.counter("tasks_cancelled"), 1);
  size_t CancelledEvals = 0;
  for (const EvaluatedConfig &E : Run->Evaluations)
    CancelledEvals += E.Cancelled;
  EXPECT_GE(CancelledEvals, 1u);

  // The winner is the smallest configuration; it ran to completion.
  const ExplorationSummary Summary =
      summarizeMeasuredRun(*Run, Objective);
  EXPECT_TRUE(Summary.Measured);
  EXPECT_EQ(Summary.WinnerIndex, 0);
  EXPECT_FALSE(Run->Evaluations[0].Cancelled);
  EXPECT_EQ(Run->Evaluations[0].Config, Subspace[0]);
  EXPECT_GT(Run->Evaluations[0].FinalAccuracy, 0.0);
  EXPECT_LT(Summary.ConfigsEvaluated,
            static_cast<int>(Subspace.size()));
  EXPECT_GT(Summary.Seconds, 0.0);
  EXPECT_GT(Summary.PretrainSeconds, 0.0);
  EXPECT_GT(Summary.OverheadFraction, 0.0);
  EXPECT_LT(Summary.OverheadFraction, 1.0);

  // The JSONL log landed on disk with spans and counters.
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Contents;
  Contents << In.rdbuf();
  EXPECT_NE(Contents.str().find("\"name\":\"eval:0\""),
            std::string::npos);
  EXPECT_NE(Contents.str().find("\"status\":\"cancelled\""),
            std::string::npos);
  std::remove(Path.c_str());

  // The report carries the measured-runtime section and marks cancelled
  // rows.
  const std::string Report = renderRunReport(*Run, Objective, 1);
  EXPECT_NE(Report.find("## Runtime (measured)"), std::string::npos);
  EXPECT_NE(Report.find("cancelled"), std::string::npos);
}

TEST_F(RuntimePipelineFixture, OverlapWinnerIsDeterministic) {
  const PruningObjective Objective = smallestMeetingAccuracy(0.0);
  auto RunOnce = [&]() {
    PipelineOptions Options;
    Options.UseComposability = true;
    Options.Schedule = PipelineSchedule::Overlap;
    Options.Workers = 2;
    Options.CancelObjective = &Objective;
    Rng Generator(424);
    Result<PipelineResult> Run =
        runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator);
    EXPECT_TRUE(static_cast<bool>(Run)) << Run.message();
    return Run.take();
  };
  const PipelineResult A = RunOnce();
  const PipelineResult B = RunOnce();
  // Which later evaluations get cancelled can vary with timing, but the
  // winner — and every configuration ahead of it in the exploration
  // order — is exactly reproducible: seeds are pre-drawn per task.
  const ExplorationSummary SummaryA = summarizeMeasuredRun(A, Objective);
  const ExplorationSummary SummaryB = summarizeMeasuredRun(B, Objective);
  ASSERT_EQ(SummaryA.WinnerIndex, 0);
  ASSERT_EQ(SummaryB.WinnerIndex, 0);
  EXPECT_EQ(A.Evaluations[0].Config, B.Evaluations[0].Config);
  EXPECT_DOUBLE_EQ(A.Evaluations[0].InitAccuracy,
                   B.Evaluations[0].InitAccuracy);
  EXPECT_DOUBLE_EQ(A.Evaluations[0].FinalAccuracy,
                   B.Evaluations[0].FinalAccuracy);
}

TEST_F(RuntimePipelineFixture, WarmBlockCacheSkipsAllPretraining) {
  // Two identical composability runs against one block-cache directory:
  // the first pre-trains and publishes every block, the second must
  // fetch them all (zero pending blocks, 100% cache.hit) and reproduce
  // the first run's evaluations exactly.
  const std::string CacheDir =
      ::testing::TempDir() + "wootz_pipeline_block_cache";
  std::filesystem::remove_all(CacheDir);

  PipelineOptions Options;
  Options.UseComposability = true;
  Options.BlockCacheConfig.Directory = CacheDir;
  const std::vector<PruneConfig> Small(Subspace.begin(),
                                       Subspace.begin() + 3);

  Rng ColdGenerator(11);
  Result<PipelineResult> Cold =
      runPruningPipeline(Spec, Data, Small, Meta, Options, ColdGenerator);
  ASSERT_TRUE(static_cast<bool>(Cold)) << Cold.message();
  ASSERT_GT(Cold->Pretrain.BlockCount, 0);
  const RunTelemetry ColdLog = Cold->Telemetry;
  EXPECT_EQ(ColdLog.counter("cache.hit"), 0);
  EXPECT_EQ(ColdLog.counter("cache.miss"), Cold->Pretrain.BlockCount);

  Rng WarmGenerator(11);
  Result<PipelineResult> Warm =
      runPruningPipeline(Spec, Data, Small, Meta, Options, WarmGenerator);
  ASSERT_TRUE(static_cast<bool>(Warm)) << Warm.message();
  EXPECT_EQ(Warm->Pretrain.BlockCount, 0);
  EXPECT_EQ(Warm->Pretrain.GroupCount, 0);
  const RunTelemetry WarmLog = Warm->Telemetry;
  EXPECT_EQ(WarmLog.counter("cache.hit"), Cold->Pretrain.BlockCount);
  EXPECT_EQ(WarmLog.counter("cache.miss"), 0);
  EXPECT_EQ(WarmLog.counter("cache.corrupt"), 0);

  ASSERT_EQ(Warm->Evaluations.size(), Cold->Evaluations.size());
  for (size_t I = 0; I < Cold->Evaluations.size(); ++I) {
    EXPECT_DOUBLE_EQ(Warm->Evaluations[I].InitAccuracy,
                     Cold->Evaluations[I].InitAccuracy);
    EXPECT_DOUBLE_EQ(Warm->Evaluations[I].FinalAccuracy,
                     Cold->Evaluations[I].FinalAccuracy);
  }

  // A changed pre-training recipe addresses different cache entries:
  // everything misses, nothing wrong is reused.
  TrainMeta OtherMeta = Meta;
  OtherMeta.PretrainSteps += 4;
  Rng OtherGenerator(11);
  Result<PipelineResult> Other = runPruningPipeline(
      Spec, Data, Small, OtherMeta, Options, OtherGenerator);
  ASSERT_TRUE(static_cast<bool>(Other)) << Other.message();
  EXPECT_GT(Other->Pretrain.BlockCount, 0);
  EXPECT_EQ(Other->Telemetry.counter("cache.hit"), 0);

  std::filesystem::remove_all(CacheDir);
}

TEST_F(RuntimePipelineFixture, OverlapWarmBlockCacheSkipsAllPretraining) {
  // The same warm-run guarantee holds under the Overlap schedule, where
  // fetches happen while building the dependency graph and publishes
  // happen from concurrent group tasks.
  const std::string CacheDir =
      ::testing::TempDir() + "wootz_pipeline_block_cache_overlap";
  std::filesystem::remove_all(CacheDir);

  PipelineOptions Options;
  Options.UseComposability = true;
  Options.Schedule = PipelineSchedule::Overlap;
  Options.Workers = 2;
  Options.BlockCacheConfig.Directory = CacheDir;

  Rng ColdGenerator(11);
  Result<PipelineResult> Cold =
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, ColdGenerator);
  ASSERT_TRUE(static_cast<bool>(Cold)) << Cold.message();
  ASSERT_GT(Cold->Pretrain.BlockCount, 0);

  Rng WarmGenerator(11);
  Result<PipelineResult> Warm =
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, WarmGenerator);
  ASSERT_TRUE(static_cast<bool>(Warm)) << Warm.message();
  EXPECT_EQ(Warm->Pretrain.BlockCount, 0);
  EXPECT_EQ(Warm->Telemetry.counter("cache.hit"),
            Cold->Pretrain.BlockCount);
  EXPECT_EQ(Warm->Telemetry.counter("cache.miss"), 0);

  // Group seeds derive from block ids, not from which groups actually
  // trained, so the warm run reproduces the cold run's evaluations.
  ASSERT_EQ(Warm->Evaluations.size(), Cold->Evaluations.size());
  for (size_t I = 0; I < Cold->Evaluations.size(); ++I)
    EXPECT_DOUBLE_EQ(Warm->Evaluations[I].FinalAccuracy,
                     Cold->Evaluations[I].FinalAccuracy);

  std::filesystem::remove_all(CacheDir);
}

TEST_F(RuntimePipelineFixture, PreCancelledTokenStopsBeforeAnyWork) {
  PipelineOptions Options;
  CancelToken Token;
  Token.cancel();
  Options.Cancel = &Token;
  Rng Generator(7);
  Result<PipelineResult> Run =
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator);
  ASSERT_FALSE(static_cast<bool>(Run));
  EXPECT_EQ(Run.message(), "job cancelled before it started");
}

TEST_F(RuntimePipelineFixture, MidRunCancelCascadesThroughTheGraph) {
  // The serve layer's DELETE /v1/jobs/:id path: a watcher flips the
  // shared token while the Overlap graph is running, and the pipeline
  // must come back with the fixed "job cancelled" message (how callers
  // tell an intentional abort from a real failure). The watcher waits
  // for the first completed task before cancelling, so at that point at
  // least seven of the ten graph tasks have not started yet — they poll
  // the token and abort, deterministically.
  PipelineOptions Options;
  Options.UseComposability = true;
  Options.Workers = 2;
  Options.Schedule = PipelineSchedule::Overlap;
  RunLog Log;
  Options.Log = &Log;
  CancelToken Token;
  Options.Cancel = &Token;

  std::thread Watcher([&] {
    while (Log.counters()["tasks_done"] < 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Token.cancel();
  });
  Rng Generator(7);
  Result<PipelineResult> Run =
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator);
  Watcher.join();
  ASSERT_FALSE(static_cast<bool>(Run));
  EXPECT_EQ(Run.message(), "job cancelled");
  // The scheduler observed the abort: something finished, something
  // failed (the task that saw the token), and the cascade cancelled the
  // rest rather than running it.
  const std::map<std::string, int64_t> Counters = Log.counters();
  EXPECT_GE(Counters.count("tasks_done") ? Counters.at("tasks_done") : 0,
            1);
  EXPECT_GE(Counters.count("tasks_failed") ? Counters.at("tasks_failed")
                                           : 0,
            1);
}

TEST_F(RuntimePipelineFixture, OverlapRunsWithDistillation) {
  // Historically rejected: concurrent fine-tunes shared the teacher
  // graph's activation buffers. After the model/context split each
  // fine-tune forwards the shared teacher through a private
  // ExecContext, so Overlap + distillation is a supported combination.
  PipelineOptions Options;
  Options.UseComposability = true;
  Options.Schedule = PipelineSchedule::Overlap;
  Options.Workers = 2;
  Options.DistillAlpha = 0.5f;
  Rng Generator(5);
  Result<PipelineResult> Run =
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator);
  ASSERT_TRUE(static_cast<bool>(Run)) << Run.message();
  ASSERT_EQ(Run->Evaluations.size(), Subspace.size());
  for (const EvaluatedConfig &E : Run->Evaluations) {
    EXPECT_FALSE(E.Cancelled);
    EXPECT_GT(E.WeightCount, 0u);
    EXPECT_GE(E.FinalAccuracy, 0.0);
  }
}

} // namespace
