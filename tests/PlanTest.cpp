//===- tests/PlanTest.cpp - Static inference plan tests --------------------===//
//
// ExecPlan freezes a trained graph into a flat step list with an
// arena-allocated activation layout, folded BatchNorm, fused ReLU
// epilogues and pre-packed GEMM panels. These tests pin three things:
// the compiler's structural decisions (golden construction per built-in
// mini model plus a hand-computed arena layout), numerical agreement
// with the Graph interpreter (bit-for-bit when no folding reorders
// floats, 1e-4 relative otherwise), and re-entrancy (8 threads over one
// shared plan match serial execution bit for bit, the PlanContext
// mirror of GraphConcurrencyTest).
//
//===----------------------------------------------------------------------===//

#include "src/compiler/Multiplexing.h"
#include "src/compiler/NetsFactory.h"
#include "src/models/MiniModels.h"
#include "src/nn/Graph.h"
#include "src/nn/Layers.h"
#include "src/plan/Plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

using namespace wootz;

namespace {

/// Builds and randomly initializes one full built-in mini model.
static Graph buildFullModel(StandardModel Which, std::string &LogitsNode,
                            uint64_t Seed = 3) {
  Result<ModelSpec> Spec = makeStandardModel(Which, 4);
  EXPECT_TRUE(static_cast<bool>(Spec)) << Spec.message();
  const MultiplexingModel Model(Spec.take());
  Graph Network;
  Rng Generator(Seed);
  Result<BuildResult> Built = Model.build(Network, BuildMode::FullModel,
                                          PruneInfo(), "full", Generator);
  EXPECT_TRUE(static_cast<bool>(Built)) << Built.message();
  LogitsNode = Built->LogitsNode;
  Network.initParams(Generator);
  return Network;
}

static Tensor filledInput(int Batch, float Fill) {
  Tensor In(Shape{Batch, 3, 8, 8});
  for (size_t I = 0; I < In.size(); ++I)
    In.data()[I] = Fill + 0.01f * static_cast<float>(I % 11);
  return In;
}

static ExecPlan compilePlan(const Graph &Network,
                            const std::string &LogitsNode,
                            const PlanOptions &Options = {}) {
  Result<ExecPlan> Plan =
      ExecPlan::compile(Network, "data", LogitsNode, 3, 8, 8, Options);
  EXPECT_TRUE(static_cast<bool>(Plan)) << Plan.message();
  return Plan.take();
}

/// Max relative-difference check used by the interpreter-parity tests.
static void expectClose(const Tensor &A, const Tensor &B, float RelTol) {
  ASSERT_EQ(A.shape(), B.shape());
  for (size_t I = 0; I < A.size(); ++I) {
    const float X = A.data()[I], Y = B.data()[I];
    const float Scale = std::max({1.0f, std::abs(X), std::abs(Y)});
    EXPECT_NEAR(X, Y, RelTol * Scale) << "element " << I;
  }
}

//===----------------------------------------------------------------------===//
// Golden construction
//===----------------------------------------------------------------------===//

TEST(PlanTest, EveryMiniModelFoldsAllBatchNormAndFusesAllReLU) {
  // In all four built-in minis every BatchNorm trails a conv it solely
  // consumes and every ReLU trails a conv/add chain: the default options
  // must leave no standalone ScaleShift or ReLU step behind.
  for (StandardModel Which : standardModels()) {
    std::string Logits;
    Graph Network = buildFullModel(Which, Logits);
    const ExecPlan Plan = compilePlan(Network, Logits);
    ASSERT_FALSE(Plan.steps().empty());

    int Convs = 0, Denses = 0;
    for (const PlanStep &Step : Plan.steps()) {
      EXPECT_NE(Step.Kind, PlanStep::Op::ScaleShift)
          << standardModelName(Which) << " left standalone BN at "
          << Step.Node;
      EXPECT_NE(Step.Kind, PlanStep::Op::ReLU)
          << standardModelName(Which) << " left unfused ReLU at "
          << Step.Node;
      if (Step.Kind == PlanStep::Op::Conv) {
        ++Convs;
        EXPECT_TRUE(Step.FoldedBatchNorm)
            << standardModelName(Which) << " unfolded conv " << Step.Node;
        EXPECT_TRUE(Step.HasBias) << "folding must synthesize a bias";
        EXPECT_FALSE(Step.Packed.empty())
            << "conv panels must be pre-packed by default";
      }
      if (Step.Kind == PlanStep::Op::Dense)
        ++Denses;
    }
    EXPECT_GT(Convs, 0);
    EXPECT_EQ(Denses, 1) << "one logits head";
    // The head produces the plan output.
    EXPECT_EQ(Plan.steps().back().Output, Plan.outputBuffer());
  }
}

TEST(PlanTest, ResidualAddAndInceptionConcatLowerAsExpected) {
  std::string Logits;
  Graph ResNet = buildFullModel(StandardModel::ResNetA, Logits);
  const ExecPlan ResPlan = compilePlan(ResNet, Logits);
  int FusedAdds = 0;
  for (const PlanStep &Step : ResPlan.steps())
    if (Step.Kind == PlanStep::Op::Add) {
      EXPECT_EQ(Step.Inputs.size(), 2u);
      EXPECT_TRUE(Step.FusedReLU)
          << "module-output ReLU must ride the Add epilogue";
      ++FusedAdds;
    }
  EXPECT_GT(FusedAdds, 0) << "a ResNet plan without residual adds";

  Graph Inception = buildFullModel(StandardModel::InceptionA, Logits);
  const ExecPlan IncPlan = compilePlan(Inception, Logits);
  int Concats = 0, AvgPools = 0;
  for (const PlanStep &Step : IncPlan.steps()) {
    if (Step.Kind == PlanStep::Op::Concat) {
      EXPECT_GE(Step.Inputs.size(), 2u);
      ++Concats;
    }
    AvgPools += Step.Kind == PlanStep::Op::AvgPool;
  }
  EXPECT_GT(Concats, 0) << "an Inception plan without branch concats";
  EXPECT_GT(AvgPools, 0) << "the b3 pooling branch must survive";
}

TEST(PlanTest, CompilationIsDeterministic) {
  for (StandardModel Which : standardModels()) {
    std::string Logits;
    Graph Network = buildFullModel(Which, Logits);
    const ExecPlan First = compilePlan(Network, Logits);
    const ExecPlan Second = compilePlan(Network, Logits);
    EXPECT_EQ(First.describeJson(), Second.describeJson())
        << standardModelName(Which);
  }
}

TEST(PlanTest, ArenaReusesStorageWithoutOverlappingLiveRanges) {
  for (StandardModel Which : standardModels()) {
    std::string Logits;
    Graph Network = buildFullModel(Which, Logits);
    const ExecPlan Plan = compilePlan(Network, Logits);

    size_t Total = 0;
    for (const PlanBuffer &Buf : Plan.buffers()) {
      Total += Buf.PerSampleElems;
      EXPECT_LE(Buf.ArenaOffset + Buf.PerSampleElems,
                Plan.arenaPerSample());
    }
    // Lifetime-based reuse must actually shrink the arena: every mini
    // model has more live bytes than peak bytes.
    EXPECT_LT(Plan.arenaPerSample(), Total) << standardModelName(Which);

    // And reuse must never alias two buffers that are live at once.
    const std::vector<PlanBuffer> &Bufs = Plan.buffers();
    for (size_t A = 0; A < Bufs.size(); ++A)
      for (size_t B = A + 1; B < Bufs.size(); ++B) {
        const bool LiveTogether = Bufs[A].DefStep <= Bufs[B].LastUse &&
                                  Bufs[B].DefStep <= Bufs[A].LastUse;
        if (!LiveTogether)
          continue;
        const bool Disjoint =
            Bufs[A].ArenaOffset + Bufs[A].PerSampleElems <=
                Bufs[B].ArenaOffset ||
            Bufs[B].ArenaOffset + Bufs[B].PerSampleElems <=
                Bufs[A].ArenaOffset;
        EXPECT_TRUE(Disjoint)
            << standardModelName(Which) << ": buffers " << Bufs[A].Node
            << " and " << Bufs[B].Node << " overlap while both live";
      }
  }
}

TEST(PlanTest, HandComputedArenaLayoutMatches) {
  // conv(3->4, 3x3, pad 1) -> relu -> globalavgpool -> dense, with
  // fusion off so every node becomes its own step. Per-sample sizes:
  // input 3*8*8=192, conv 4*8*8=256, relu 256, pooled 4, logits 4.
  Graph Network;
  Network.addInput("data");
  ConvGeometry Geometry;
  Geometry.InChannels = 3;
  Geometry.OutChannels = 4;
  Geometry.KernelSize = 3;
  Geometry.Pad = 1;
  Network.addNode("conv", std::make_unique<Conv2D>(Geometry), {"data"});
  Network.addNode("relu", std::make_unique<ReLU>(), {"conv"});
  Network.addNode("pool", std::make_unique<GlobalAvgPool>(), {"relu"});
  Network.addNode("logits", std::make_unique<Dense>(4, 4), {"pool"});
  Rng Generator(7);
  Network.initParams(Generator);

  PlanOptions Options;
  Options.FuseReLU = false;
  const ExecPlan Plan = compilePlan(Network, "logits", Options);
  ASSERT_EQ(Plan.steps().size(), 4u);
  EXPECT_EQ(Plan.steps()[0].Kind, PlanStep::Op::Conv);
  EXPECT_EQ(Plan.steps()[1].Kind, PlanStep::Op::ReLU);
  EXPECT_EQ(Plan.steps()[2].Kind, PlanStep::Op::GlobalAvgPool);
  EXPECT_EQ(Plan.steps()[3].Kind, PlanStep::Op::Dense);

  // First-fit with live ranges [def, lastUse]:
  //   input  [-1,0] 192 floats -> offset 0
  //   conv   [0,1]  256        -> overlaps input  -> offset 192
  //   relu   [1,2]  256        -> overlaps conv only; the 0..192 gap is
  //                               too small         -> offset 448
  //   pooled [2,3]  4          -> overlaps relu only -> offset 0
  //   logits [3,4]  4          -> overlaps pooled    -> offset 4
  ASSERT_EQ(Plan.buffers().size(), 5u);
  const std::vector<PlanBuffer> &Bufs = Plan.buffers();
  EXPECT_EQ(Bufs[0].PerSampleElems, 192u);
  EXPECT_EQ(Bufs[0].ArenaOffset, 0u);
  EXPECT_EQ(Bufs[1].PerSampleElems, 256u);
  EXPECT_EQ(Bufs[1].ArenaOffset, 192u);
  EXPECT_EQ(Bufs[2].PerSampleElems, 256u);
  EXPECT_EQ(Bufs[2].ArenaOffset, 448u);
  EXPECT_EQ(Bufs[3].PerSampleElems, 4u);
  EXPECT_EQ(Bufs[3].ArenaOffset, 0u);
  EXPECT_EQ(Bufs[4].PerSampleElems, 4u);
  EXPECT_EQ(Bufs[4].ArenaOffset, 4u);
  EXPECT_EQ(Plan.arenaPerSample(), 704u);
}

TEST(PlanTest, OptionSwitchesDisableEachTransformation) {
  std::string Logits;
  Graph Network = buildFullModel(StandardModel::ResNetA, Logits);

  PlanOptions NoFold;
  NoFold.FoldBatchNorm = false;
  const ExecPlan Unfolded = compilePlan(Network, Logits, NoFold);
  int ScaleShifts = 0;
  for (const PlanStep &Step : Unfolded.steps()) {
    ScaleShifts += Step.Kind == PlanStep::Op::ScaleShift;
    EXPECT_FALSE(Step.FoldedBatchNorm);
  }
  EXPECT_GT(ScaleShifts, 0);

  PlanOptions NoFuse;
  NoFuse.FuseReLU = false;
  const ExecPlan Unfused = compilePlan(Network, Logits, NoFuse);
  int ReLUs = 0;
  for (const PlanStep &Step : Unfused.steps()) {
    ReLUs += Step.Kind == PlanStep::Op::ReLU;
    EXPECT_FALSE(Step.FusedReLU);
  }
  EXPECT_GT(ReLUs, 0);

  PlanOptions NoPack;
  NoPack.PrePackPanels = false;
  const ExecPlan Unpacked = compilePlan(Network, Logits, NoPack);
  for (const PlanStep &Step : Unpacked.steps())
    EXPECT_TRUE(Step.Packed.empty());
}

TEST(PlanTest, CompileFailsCleanlyOnBadNodes) {
  std::string Logits;
  Graph Network = buildFullModel(StandardModel::ResNetA, Logits);

  Result<ExecPlan> NoSuchOutput =
      ExecPlan::compile(Network, "data", "no/such/node", 3, 8, 8);
  ASSERT_FALSE(static_cast<bool>(NoSuchOutput));
  EXPECT_NE(NoSuchOutput.message().find("no/such/node"),
            std::string::npos);

  Result<ExecPlan> WrongInput =
      ExecPlan::compile(Network, "no/such/input", Logits, 3, 8, 8);
  ASSERT_FALSE(static_cast<bool>(WrongInput));

  // A cone that depends on a placeholder other than the declared input
  // cannot be frozen.
  Graph TwoInputs;
  TwoInputs.addInput("a");
  TwoInputs.addInput("b");
  TwoInputs.addNode("sum", std::make_unique<Add>(), {"a", "b"});
  Result<ExecPlan> Unbound =
      ExecPlan::compile(TwoInputs, "a", "sum", 3, 8, 8);
  ASSERT_FALSE(static_cast<bool>(Unbound));
  EXPECT_NE(Unbound.message().find("b"), std::string::npos);
}

TEST(PlanTest, DescribeJsonRecordsTheCompilersDecisions) {
  std::string Logits;
  Graph Network = buildFullModel(StandardModel::ResNetA, Logits);
  const std::string Json = compilePlan(Network, Logits).describeJson();
  for (const char *Key :
       {"\"steps\"", "\"buffers\"", "\"arenaPerSample\"",
        "\"foldedBatchNorm\":true", "\"fusedReLU\":true",
        "\"prePacked\":true", "\"op\":\"conv\"", "\"op\":\"dense\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key;
}

//===----------------------------------------------------------------------===//
// Numerical agreement with the interpreter
//===----------------------------------------------------------------------===//

TEST(PlanTest, LogitsMatchInterpreterWithinRelativeTolerance) {
  // BatchNorm folding legitimately reorders float operations, so the
  // contract across all four minis is 1e-4 relative, per the freeze
  // contract in plan/Plan.h.
  for (StandardModel Which : standardModels()) {
    std::string Logits;
    Graph Network = buildFullModel(Which, Logits);
    const Tensor In = filledInput(3, 0.3f);

    ExecContext Ctx(Network);
    Ctx.setInput("data", In);
    Ctx.forward(Network, /*Training=*/false);
    const Tensor &Reference = Ctx.activation(Logits);

    const ExecPlan Plan = compilePlan(Network, Logits);
    PlanContext PlanCtx(Plan);
    expectClose(Reference, PlanCtx.run(In), 1e-4f);
  }
}

TEST(PlanTest, BitIdenticalToInterpreterWithoutBatchNorm) {
  // No BatchNorm anywhere: folding has nothing to reorder, and the plan
  // replicates the interpreter's kernel dispatch exactly, so logits
  // must agree bit for bit — fusion and arena reuse included.
  Graph Network;
  Network.addInput("data");
  ConvGeometry Geometry;
  Geometry.InChannels = 3;
  Geometry.OutChannels = 8;
  Geometry.KernelSize = 3;
  Geometry.Pad = 1;
  Network.addNode("conv", std::make_unique<Conv2D>(Geometry), {"data"});
  Network.addNode("relu", std::make_unique<ReLU>(), {"conv"});
  Network.addNode("pool",
                  std::make_unique<Pool2D>(Pool2D::Mode::Max, 2, 2),
                  {"relu"});
  Network.addNode("gap", std::make_unique<GlobalAvgPool>(), {"pool"});
  Network.addNode("logits", std::make_unique<Dense>(8, 5), {"gap"});
  Rng Generator(11);
  Network.initParams(Generator);

  const Tensor In = filledInput(4, 0.2f);
  ExecContext Ctx(Network);
  Ctx.setInput("data", In);
  Ctx.forward(Network, /*Training=*/false);
  const Tensor &Reference = Ctx.activation("logits");

  const ExecPlan Plan = compilePlan(Network, "logits");
  PlanContext PlanCtx(Plan);
  const Tensor &Got = PlanCtx.run(In);
  ASSERT_EQ(Reference.shape(), Got.shape());
  for (size_t I = 0; I < Reference.size(); ++I)
    EXPECT_EQ(Reference.data()[I], Got.data()[I]) << "logit " << I;
}

TEST(PlanTest, DropoutCompilesToAZeroCostAlias) {
  Graph Network;
  Network.addInput("data");
  ConvGeometry Geometry;
  Geometry.InChannels = 3;
  Geometry.OutChannels = 4;
  Geometry.KernelSize = 1;
  Network.addNode("conv", std::make_unique<Conv2D>(Geometry), {"data"});
  Network.addNode("drop", std::make_unique<Dropout>(0.5f, 42), {"conv"});
  Network.addNode("gap", std::make_unique<GlobalAvgPool>(), {"drop"});
  Network.addNode("logits", std::make_unique<Dense>(4, 4), {"gap"});
  Rng Generator(13);
  Network.initParams(Generator);

  const ExecPlan Plan = compilePlan(Network, "logits");
  // Eval-mode dropout is the identity: no step, no buffer.
  for (const PlanStep &Step : Plan.steps())
    EXPECT_NE(Step.Node, "drop");

  const Tensor In = filledInput(2, 0.4f);
  ExecContext Ctx(Network);
  Ctx.setInput("data", In);
  Ctx.forward(Network, /*Training=*/false);
  PlanContext PlanCtx(Plan);
  expectClose(Ctx.activation("logits"), PlanCtx.run(In), 1e-4f);
}

//===----------------------------------------------------------------------===//
// Re-entrancy: one shared plan, many contexts
//===----------------------------------------------------------------------===//

TEST(PlanConcurrencyTest, EightWorkersOverOnePlanMatchSerialBitForBit) {
  std::string Logits;
  Graph Network = buildFullModel(StandardModel::ResNetA, Logits);
  const ExecPlan Plan = compilePlan(Network, Logits);
  constexpr int Threads = 8;

  std::vector<Tensor> Inputs;
  for (int T = 0; T < Threads; ++T)
    Inputs.push_back(filledInput(2, 0.05f * static_cast<float>(T)));

  // Serial reference through one context (also exercises arena reuse
  // across calls).
  std::vector<Tensor> Reference;
  {
    PlanContext Ctx(Plan);
    for (int T = 0; T < Threads; ++T)
      Reference.push_back(Ctx.run(Inputs[T]));
  }

  std::vector<Tensor> Got(Threads);
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] {
      PlanContext Ctx(Plan);
      Got[T] = Ctx.run(Inputs[T]);
    });
  for (std::thread &W : Workers)
    W.join();

  for (int T = 0; T < Threads; ++T) {
    ASSERT_EQ(Got[T].shape(), Reference[T].shape());
    for (size_t I = 0; I < Reference[T].size(); ++I)
      EXPECT_EQ(Got[T].data()[I], Reference[T].data()[I])
          << "thread " << T << " logit " << I;
  }
}

TEST(PlanConcurrencyTest, BatchingDoesNotChangePerSampleLogits) {
  // The batcher coalesces requests into one NCHW batch; for that to be
  // transparent, a sample's logits must not depend on its companions.
  // Plan conv steps run per-sample GEMMs and the mini-model dense head
  // stays on the same kernel path at these sizes, so the guarantee is
  // exact here.
  std::string Logits;
  Graph Network = buildFullModel(StandardModel::InceptionA, Logits);
  const ExecPlan Plan = compilePlan(Network, Logits);
  PlanContext Ctx(Plan);

  const Tensor Batch = filledInput(3, 0.15f);
  const Tensor Batched = Ctx.run(Batch);
  const size_t SampleElems = 3 * 8 * 8;
  for (int S = 0; S < 3; ++S) {
    Tensor One(Shape{1, 3, 8, 8});
    std::copy_n(Batch.data() + static_cast<size_t>(S) * SampleElems,
                SampleElems, One.data());
    const Tensor &Single = Ctx.run(One);
    ASSERT_EQ(Single.shape(), Shape({1, 4}));
    for (int C = 0; C < 4; ++C)
      EXPECT_EQ(Single.data()[C],
                Batched.data()[static_cast<size_t>(S) * 4 + C])
          << "sample " << S << " class " << C;
  }
}

} // namespace
