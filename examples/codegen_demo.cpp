//===- examples/codegen_demo.cpp - Wootz compiler artifacts ----------------------===//
//
// Shows the compiler half of Wootz: a Prototxt model goes in, and out
// come (a) the TF-Slim-style Python multiplexing model, (b) the solver
// meta data, and (c) the multi-node task assignment file the exploration
// scripts use. Nothing is trained; this is pure code generation.
//
//===----------------------------------------------------------------------===//

#include "src/wootz/wootz.h"

#include <cstdio>

using namespace wootz;

int main(int ArgCount, char **Args) {
  const bool Inception = ArgCount > 1 &&
                         std::string(Args[1]) == "--inception";
  const StandardModel Which =
      Inception ? StandardModel::InceptionA : StandardModel::ResNetA;

  const std::string Prototxt = standardModelPrototxt(Which, 6);
  std::printf("=== Input: Caffe Prototxt (with the `module` extension) "
              "===\n%s\n",
              Prototxt.substr(0, 600).c_str());
  std::printf("... (%zu bytes total)\n\n", Prototxt.size());

  Result<ModelSpec> Spec = parseModelSpec(Prototxt);
  if (!Spec) {
    std::fprintf(stderr, "parse error: %s\n", Spec.message().c_str());
    return 1;
  }

  std::printf("=== Structural analysis ===\n");
  for (const ModuleSpec &M : Spec->Modules)
    std::printf("module %-4s layers [%2d, %2d]  input=%s  output=%s\n",
                M.Name.c_str(), M.FirstLayer, M.LastLayer,
                M.ExternalInput.c_str(), M.OutputLayer.c_str());
  int PrunableCount = 0;
  for (bool Flag : Spec->Prunable)
    PrunableCount += Flag;
  std::printf("prunable convolutions: %d\n\n", PrunableCount);

  std::printf("=== Generated multiplexing model (TensorFlow-Slim) "
              "===\n%s\n",
              emitMultiplexingScript(*Spec).c_str());

  TrainMeta Meta;
  Meta.Nodes = 4;
  std::printf("=== Solver meta data ===\n%s\n",
              printTrainMeta(Meta).c_str());

  std::printf("=== Task assignment (16 configs over 4 nodes) ===\n%s",
              taskAssignmentFile(16, 4).c_str());
  return 0;
}
