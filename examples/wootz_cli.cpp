//===- examples/wootz_cli.cpp - file-driven Wootz tool ---------------------------===//
//
// A small command-line front end over the whole framework, driven
// entirely by the four Figure-2 input files:
//
//   wootz_cli [model.prototxt subspace.txt meta.txt objective.txt
//              [outdir [strategy]]]
//
// `strategy` is "fixed" (default: sweep the whole promising subspace),
// "greedy", or "adaptive" — the latter two propose configurations
// round by round from observed results (see DESIGN.md "Exploration
// strategies") and take their rate alphabet from the subspace file.
//
// With no arguments it writes a self-contained sample input set to
// ./wootz_run/inputs and runs on that. Outputs (in outdir, default
// ./wootz_run): report.md, evaluations.csv, the generated Python
// multiplexing model and wrapper scripts, the task-assignment file, and
// the pre-trained tuning block checkpoints.
//
// The `serve` subcommand instead runs the pruning-as-a-service daemon:
//
//   wootz_cli serve [port [state-dir]]
//
// which accepts exploration jobs over HTTP (see DESIGN.md "Serving" and
// the README quickstart) and drains gracefully on SIGTERM/SIGINT.
//
// The `weights` subcommand materializes an uploadable weight bundle for
// a Prototxt spec (seeded random initialization):
//
//   wootz_cli weights model.prototxt out.ck [seed]
//
// writing the WOOTZCK2 bundle to out.ck and its base64 to out.ck.b64,
// ready to paste into a POST /v1/models body as "weights_b64".
//
//===----------------------------------------------------------------------===//

#include "src/explore/Report.h"
#include "src/nn/Serialize.h"
#include "src/support/File.h"
#include "src/wootz/wootz.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

using namespace wootz;

namespace {
/// Exits with the error message when a result failed (tool code: fail
/// fast, like ExitOnError).
template <typename T> T orDie(Result<T> Value, const char *What) {
  if (!Value) {
    std::fprintf(stderr, "wootz_cli: %s: %s\n", What,
                 Value.message().c_str());
    std::exit(1);
  }
  return Value.take();
}

void orDie(Error E, const char *What) {
  if (E) {
    std::fprintf(stderr, "wootz_cli: %s: %s\n", What, E.message().c_str());
    std::exit(1);
  }
}

/// Writes the sample input files and returns their paths.
std::vector<std::string> writeSampleInputs(const std::string &Directory) {
  const std::string ModelPath = Directory + "/model.prototxt";
  const std::string SubspacePath = Directory + "/subspace.txt";
  const std::string MetaPath = Directory + "/meta.txt";
  const std::string ObjectivePath = Directory + "/objective.txt";
  orDie(writeFile(ModelPath, standardModelPrototxt(StandardModel::ResNetA,
                                                   14)),
        "writing sample model");
  Rng Generator(2718);
  orDie(writeFile(SubspacePath,
                  "# promising subspace (Figure 3a format)\n" +
                      printSubspaceSpec(sampleSubspace(
                          4, 10, standardRates(), Generator)) +
                      "\n"),
        "writing sample subspace");
  TrainMeta Meta;
  Meta.FullModelSteps = 600;
  Meta.FinetuneSteps = 50;
  Meta.EvalEvery = 10;
  Meta.EarlyStopPatience = 2;
  Meta.Nodes = 4;
  orDie(writeFile(MetaPath, printTrainMeta(Meta)), "writing sample meta");
  orDie(writeFile(ObjectivePath,
                  "# pruning objective (Figure 3b format)\n"
                  "min ModelSize\nconstraint Accuracy >= 0.78\n"),
        "writing sample objective");
  return {ModelPath, SubspacePath, MetaPath, ObjectivePath};
}

/// Set by the signal handler; the serve loop polls it.
std::atomic<int> PendingSignal{0};
void onShutdownSignal(int Signal) { PendingSignal.store(Signal); }

/// `wootz_cli serve [port [state-dir]] [--artifact-root DIR]
/// [--shard I/N]`: run the daemon until SIGTERM/SIGINT, then drain
/// gracefully (finish in-flight requests and every accepted job before
/// exiting).
///
/// With --artifact-root every daemon pointed at DIR shares one model
/// store, block cache, job queue and artifact tier: a job submitted to
/// any of them can execute on any of them, and tuning blocks trained by
/// one warm the others. --shard I/N (1-based I) gives the process the
/// stable identity "shard-I-of-N" so rendezvous placement survives
/// restarts; without it the identity is derived from the pid.
int runServe(int ArgCount, char **Args) {
  int Port = 8080;
  std::string StateDir = "wootz_serve";
  std::string ArtifactRoot;
  std::string ProcessName;
  std::vector<std::string> Positional;
  for (int I = 2; I < ArgCount; ++I) {
    const std::string Arg = Args[I];
    if (Arg == "--artifact-root" && I + 1 < ArgCount) {
      ArtifactRoot = Args[++I];
    } else if (Arg == "--shard" && I + 1 < ArgCount) {
      const std::string Spec = Args[++I];
      const size_t Slash = Spec.find('/');
      long long Index = 0, Total = 0;
      if (Slash != std::string::npos) {
        Index = orDie(parseInteger(Spec.substr(0, Slash)),
                      "parsing the shard index");
        Total = orDie(parseInteger(Spec.substr(Slash + 1)),
                      "parsing the shard count");
      }
      if (Slash == std::string::npos || Index < 1 || Total < 1 ||
          Index > Total) {
        std::fprintf(stderr, "serve: --shard wants I/N with 1 <= I <= N "
                             "(got '%s')\n",
                     Spec.c_str());
        std::exit(1);
      }
      ProcessName = "shard-" + std::to_string(Index) + "-of-" +
                    std::to_string(Total);
    } else {
      Positional.push_back(Arg);
    }
  }
  if (Positional.size() >= 1)
    Port = static_cast<int>(
        orDie(parseInteger(Positional[0]), "parsing the port"));
  if (Positional.size() >= 2)
    StateDir = Positional[1];
  if (!ProcessName.empty() && ArtifactRoot.empty()) {
    std::fprintf(stderr,
                 "serve: --shard only makes sense with --artifact-root\n");
    std::exit(1);
  }

  serve::ServerOptions Options;
  Options.Http.Port = Port;
  if (!ArtifactRoot.empty()) {
    // The shared tier supersedes the per-daemon state directory.
    Options.Artifacts.Root = ArtifactRoot;
    Options.Artifacts.ProcessName = ProcessName;
  } else {
    Options.Jobs.BlockCacheDir = StateDir + "/block_cache";
    Options.Jobs.CacheDir = StateDir + "/cache";
    Options.Jobs.ArtifactDir = StateDir + "/artifacts";
    Options.Uploads.Dir = StateDir + "/models";
  }

  serve::WootzServer Server(Options);
  orDie(Server.start(), "starting the server");
  std::signal(SIGTERM, onShutdownSignal);
  std::signal(SIGINT, onShutdownSignal);

  if (!ArtifactRoot.empty())
    std::printf("wootz serve: listening on http://127.0.0.1:%d "
                "(process '%s' on shared artifact root %s/)\n",
                Server.port(), Server.artifacts().processName().c_str(),
                ArtifactRoot.c_str());
  else
    std::printf("wootz serve: listening on http://127.0.0.1:%d "
                "(state under %s/)\n",
                Server.port(), StateDir.c_str());
  std::printf("  POST /v1/jobs, GET /v1/jobs/<id>, POST /v1/models, "
              "POST /v1/models/<id>/predict, GET /metrics\n");
  std::printf("  SIGTERM/Ctrl-C drains: accepted jobs finish first\n");

  while (PendingSignal.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

  std::printf("wootz serve: signal %d; draining (%zu queued, %zu "
              "running jobs)...\n",
              PendingSignal.load(), Server.jobs().queuedCount(),
              Server.jobs().runningCount());
  Server.drain();
  std::printf("wootz serve: drained; every accepted job finished\n");
  return 0;
}

/// `wootz_cli weights model.prototxt out.ck [seed]`: builds the network
/// and writes its (seeded random) weights as an uploadable bundle.
int runWeights(int ArgCount, char **Args) {
  if (ArgCount < 4) {
    std::fprintf(stderr,
                 "usage: wootz_cli weights model.prototxt out.ck [seed]\n");
    return 1;
  }
  const std::string OutPath = Args[3];
  uint64_t Seed = 7;
  if (ArgCount >= 5)
    Seed = static_cast<uint64_t>(
        orDie(parseInteger(Args[4]), "parsing the seed"));

  const ModelSpec Spec = orDie(
      parseModelSpec(orDie(readFile(Args[2]), "reading model")),
      "parsing model");
  BuiltNetwork Built =
      orDie(buildFullNetwork(Spec, Seed), "building the network");
  const std::string Bytes = serializeTensors(
      exportWeights(Built.Network, FullNetworkPrefix));
  orDie(writeFile(OutPath, Bytes), "writing the bundle");
  orDie(writeFile(OutPath + ".b64", base64Encode(Bytes) + "\n"),
        "writing the base64 bundle");
  std::printf("weights: %zu-byte bundle for %s (%d classes, seed %llu) "
              "-> %s and %s.b64\n",
              Bytes.size(), Spec.Name.c_str(), Built.Classes,
              static_cast<unsigned long long>(Seed), OutPath.c_str(),
              OutPath.c_str());
  return 0;
}
} // namespace

int main(int ArgCount, char **Args) {
  if (ArgCount >= 2 && std::strcmp(Args[1], "serve") == 0)
    return runServe(ArgCount, Args);
  if (ArgCount >= 2 && std::strcmp(Args[1], "weights") == 0)
    return runWeights(ArgCount, Args);

  std::string OutDir = "wootz_run";
  StrategyKind Strategy = StrategyKind::Fixed;
  std::vector<std::string> Inputs;
  if (ArgCount >= 5) {
    Inputs = {Args[1], Args[2], Args[3], Args[4]};
    if (ArgCount >= 6)
      OutDir = Args[5];
    if (ArgCount >= 7)
      Strategy = orDie(parseStrategyKind(Args[6]), "parsing strategy");
  } else {
    std::printf("no input files given; writing samples under %s/inputs\n",
                OutDir.c_str());
    Inputs = writeSampleInputs(OutDir + "/inputs");
  }

  // Parse the four inputs.
  const ModelSpec Spec = orDie(
      parseModelSpec(orDie(readFile(Inputs[0]), "reading model")),
      "parsing model");
  const std::vector<PruneConfig> Subspace = orDie(
      parseSubspaceSpec(orDie(readFile(Inputs[1]), "reading subspace")),
      "parsing subspace");
  const TrainMeta Meta = orDie(
      parseTrainMeta(orDie(readFile(Inputs[2]), "reading meta")),
      "parsing meta");
  const std::string ObjectiveText =
      orDie(readFile(Inputs[3]), "reading objective");
  const PruningObjective Objective =
      orDie(parseObjective(ObjectiveText), "parsing objective");

  std::printf("model %s: %d modules, %zu layers\n", Spec.Name.c_str(),
              Spec.moduleCount(), Spec.Layers.size());
  std::printf("subspace: %zu configurations; objective:\n%s",
              Subspace.size(), printObjective(Objective).c_str());

  // The dataset: the CUB200 analogue sized to the model's class count.
  const Dataset Data = generateSynthetic([&] {
    SyntheticSpec DataSpec = standardDatasetSpecs(0.5)[1];
    DataSpec.Classes = Spec.Layers.back().NumOutput;
    return DataSpec;
  }());

  // Emit the compiler artifacts.
  orDie(writeFile(OutDir + "/generated/" + pythonIdentifier(Spec.Name) +
                      ".py",
                  emitMultiplexingScript(Spec)),
        "writing multiplexing model");
  orDie(writeFile(OutDir + "/generated/pretrain_wrapper.py",
                  emitPretrainWrapper(Spec, Meta)),
        "writing pretrain wrapper");
  orDie(writeFile(OutDir + "/generated/explore_wrapper.py",
                  emitExplorationWrapper(Spec, Meta, ObjectiveText)),
        "writing exploration wrapper");
  orDie(writeFile(OutDir + "/generated/task_assignment.txt",
                  taskAssignmentFile(static_cast<int>(Subspace.size()),
                                     Meta.Nodes)),
        "writing task assignment");

  // Run composability-based pruning.
  PipelineOptions Options;
  Options.UseComposability = true;
  Options.UseIdentifier = true;
  Options.CacheDir = OutDir + "/cache";
  // Tuning blocks persist next to the full-model cache, so re-running
  // the CLI on the same spec resumes instead of re-pre-training: blocks
  // already on disk are fetched (and a crashed run's partial progress is
  // kept — entries are written atomically as each group finishes).
  Options.BlockCacheConfig.Directory = OutDir + "/block_cache";
  Rng Generator(Meta.Seed);

  if (Strategy != StrategyKind::Fixed) {
    // Strategy-driven exploration: proposal rounds instead of a fixed
    // sweep. The rate alphabet comes from the subspace file.
    StrategyKnobs Knobs;
    Knobs.Rates = subspaceRateAlphabet(Subspace);
    std::unique_ptr<ExplorationStrategy> Explorer =
        orDie(makeStrategy(Strategy, Spec, Subspace, Objective, Knobs),
              "building the strategy");
    Options.CancelObjective = &Objective;
    const StrategyRunResult Search =
        orDie(runStrategyExploration(Spec, Data, *Explorer, Meta, Options,
                                     Objective, Generator),
              "running the strategy exploration");
    orDie(writeFile(OutDir + "/evaluations.csv",
                    renderEvaluationsCsv(Search.Run)),
          "writing evaluations CSV");
    std::printf("\nstrategy %s: %d proposals over %d rounds, %d tuning "
                "block reuses\n",
                strategyKindName(Strategy), Search.Proposals,
                Search.Rounds, Search.BlocksReused);
    if (Search.WinnerIndex >= 0) {
      const EvaluatedConfig &Winner =
          Search.Run.Evaluations[static_cast<size_t>(Search.WinnerIndex)];
      std::printf("winner %s: size %.1f%%, accuracy %.3f\n",
                  formatConfig(Winner.Config).c_str(),
                  100.0 * Winner.SizeFraction, Winner.FinalAccuracy);
    } else {
      std::printf("no configuration met the objective\n");
    }
    std::printf("outputs written under %s/\n", OutDir.c_str());
    return 0;
  }

  const PipelineResult Run = orDie(
      runPruningPipeline(Spec, Data, Subspace, Meta, Options, Generator),
      "running the pipeline");

  orDie(writeFile(OutDir + "/evaluations.csv", renderEvaluationsCsv(Run)),
        "writing evaluations CSV");
  orDie(writeFile(OutDir + "/report.md",
                  renderRunReport(Run, Objective, Meta.Nodes)),
        "writing report");

  const ExplorationSummary Summary =
      summarizeExploration(Run, Objective, Meta.Nodes);
  if (Summary.WinnerIndex >= 0) {
    const EvaluatedConfig &Winner = Run.Evaluations[Summary.WinnerIndex];
    std::printf("\nwinner %s: size %.1f%%, accuracy %.3f "
                "(%d configs, %.1fs on %d nodes)\n",
                formatConfig(Winner.Config).c_str(),
                100.0 * Winner.SizeFraction, Winner.FinalAccuracy,
                Summary.ConfigsEvaluated, Summary.Seconds, Meta.Nodes);
  } else {
    std::printf("\nno configuration met the objective\n");
  }
  std::printf("block cache: %lld hits, %lld misses (rerun to resume "
              "pre-training from %s/block_cache)\n",
              static_cast<long long>(Run.Telemetry.counter("cache.hit")),
              static_cast<long long>(Run.Telemetry.counter("cache.miss")),
              OutDir.c_str());
  std::printf("outputs written under %s/\n", OutDir.c_str());
  return 0;
}
