//===- examples/resnet_pruning.cpp - Figure 2 flow on the ResNet analogue --------===//
//
// The full Wootz input surface, exactly as §4 describes it: the CNN in
// Prototxt, the promising subspace as a Figure 3(a) spec, the training
// meta data in the solver format, and the pruning objective as a Figure
// 3(b) spec. The program runs composability-based pruning and reports
// every evaluated configuration plus the chosen network under 1 and 4
// simulated machines.
//
//===----------------------------------------------------------------------===//

#include "src/support/Table.h"
#include "src/wootz/wootz.h"

#include <cstdio>

using namespace wootz;

int main() {
  // --- The four inputs of Figure 2. ---
  const std::string ModelPrototxt =
      standardModelPrototxt(StandardModel::ResNetB, 14);

  const std::string SubspaceSpec =
      "# Promising subspace: one pruning rate per convolution module.\n"
      "configs = [[0.7, 0.7, 0.7, 0.7, 0.7, 0.7],\n"
      "           [0.7, 0.7, 0.7, 0.5, 0.5, 0.5],\n"
      "           [0.5, 0.7, 0.7, 0.7, 0.5, 0.7],\n"
      "           [0.5, 0.5, 0.5, 0.5, 0.5, 0.5],\n"
      "           [0.3, 0.5, 0.5, 0.5, 0.3, 0.5],\n"
      "           [0.3, 0.3, 0.5, 0.5, 0.3, 0.3],\n"
      "           [0.3, 0.3, 0.3, 0.3, 0.3, 0.3],\n"
      "           [0, 0.3, 0.3, 0.3, 0, 0],\n"
      "           [0, 0, 0.3, 0.3, 0, 0]]";

  const std::string MetaSpec = "full_model_steps: 600\n"
                               "pretrain_steps: 40\n"
                               "finetune_steps: 60\n"
                               "batch_size: 8\n"
                               "eval_every: 20\n"
                               "nodes: 4\n";

  // --- Parse everything. ---
  Result<ModelSpec> Spec = parseModelSpec(ModelPrototxt);
  Result<std::vector<PruneConfig>> Subspace =
      parseSubspaceSpec(SubspaceSpec);
  Result<TrainMeta> Meta = parseTrainMeta(MetaSpec);
  if (!Spec || !Subspace || !Meta) {
    std::fprintf(stderr, "input error: %s%s%s\n", Spec.message().c_str(),
                 Subspace.message().c_str(), Meta.message().c_str());
    return 1;
  }

  // The CUB200-analogue dataset (14 classes, matching the model head).
  const Dataset Data = generateSynthetic(standardDatasetSpecs(0.5)[1]);
  std::printf("model: %s\ndataset: %s\n\n", Spec->Name.c_str(),
              describeDataset(Data).c_str());

  // --- Run the composability-based pipeline. ---
  PipelineOptions Options;
  Options.UseComposability = true;
  Options.KeepCurves = false;
  Rng Generator(2024);
  Result<PipelineResult> Run = runPruningPipeline(
      *Spec, Data, *Subspace, *Meta, Options, Generator);
  if (!Run) {
    std::fprintf(stderr, "pipeline error: %s\n", Run.message().c_str());
    return 1;
  }

  std::printf("full accuracy %.3f; pre-trained %d blocks in %d groups "
              "(%.1fs; reconstruction loss %.4f -> %.4f)\n\n",
              Run->FullAccuracy, Run->Pretrain.BlockCount,
              Run->Pretrain.GroupCount, Run->Pretrain.Seconds,
              Run->Pretrain.FirstLoss, Run->Pretrain.LastLoss);

  Table Evaluations({"config", "size%", "init+", "final+", "blocks"});
  for (const EvaluatedConfig &E : Run->Evaluations)
    Evaluations.addRow({formatConfig(E.Config),
                        formatDouble(100.0 * E.SizeFraction, 1),
                        formatDouble(E.InitAccuracy, 3),
                        formatDouble(E.FinalAccuracy, 3),
                        std::to_string(E.BlocksUsed.size())});
  std::printf("%s\n", Evaluations.render().c_str());

  // --- The objective (Figure 3b) and the exploration outcome. ---
  const std::string ObjectiveSpec =
      "min ModelSize\nconstraint Accuracy >= " +
      formatDouble(Run->FullAccuracy - 0.05, 4) + "\n";
  Result<PruningObjective> Objective = parseObjective(ObjectiveSpec);
  if (!Objective) {
    std::fprintf(stderr, "objective error: %s\n",
                 Objective.message().c_str());
    return 1;
  }
  std::printf("objective:\n%s\n", printObjective(*Objective).c_str());

  for (int Nodes : {1, Meta->Nodes}) {
    const ExplorationSummary Summary =
        summarizeExploration(*Run, *Objective, Nodes);
    if (Summary.WinnerIndex < 0) {
      std::printf("%d node(s): no winner (%d configs, %.1fs)\n", Nodes,
                  Summary.ConfigsEvaluated, Summary.Seconds);
      continue;
    }
    const EvaluatedConfig &Winner = Run->Evaluations[Summary.WinnerIndex];
    std::printf("%d node(s): winner %s size %.1f%% acc %.3f | %d configs, "
                "%.1fs, pre-train overhead %.0f%%\n",
                Nodes, formatConfig(Winner.Config).c_str(),
                100.0 * Winner.SizeFraction, Winner.FinalAccuracy,
                Summary.ConfigsEvaluated, Summary.Seconds,
                100.0 * Summary.OverheadFraction);
  }
  std::printf("\ntask assignment for %d nodes:\n%s", Meta->Nodes,
              taskAssignmentFile(static_cast<int>(Subspace->size()),
                                 Meta->Nodes)
                  .c_str());
  return 0;
}
