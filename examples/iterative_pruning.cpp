//===- examples/iterative_pruning.cpp - subspace-free pruning --------------------===//
//
// The paper's §4 future-work direction, implemented: prune without an
// explicit promising subspace. A greedy search bumps one module's rate
// per iteration, evaluating every candidate as a block-trained network;
// the tuning-block checkpoint store turns the many overlapping candidate
// evaluations into cache hits. The run prints the trajectory plus the
// block-reuse statistics that quantify the harvested savings.
//
//===----------------------------------------------------------------------===//

#include "src/explore/Iterative.h"
#include "src/support/Table.h"
#include "src/wootz/wootz.h"

#include <cstdio>

using namespace wootz;

int main() {
  const Dataset Data = generateSynthetic(standardDatasetSpecs(0.5)[1]);
  Result<ModelSpec> Spec =
      makeStandardModel(StandardModel::ResNetA, Data.Classes);
  if (!Spec) {
    std::fprintf(stderr, "model error: %s\n", Spec.message().c_str());
    return 1;
  }
  std::printf("model: %s\ndataset: %s\n\n", Spec->Name.c_str(),
              describeDataset(Data).c_str());

  TrainMeta Meta;
  Meta.FullModelSteps = 600;
  Meta.PretrainSteps = 60;
  Meta.FinetuneSteps = 40;
  Meta.EvalEvery = 10;
  Meta.EarlyStopPatience = 2;

  IterativeOptions Options;
  Options.Rates = {0.0f, 0.3f, 0.5f, 0.7f};
  Options.MaxIterations = 8;

  // First learn what the full model achieves, then demand at most a
  // 5-point drop from it while shrinking greedily.
  Rng Generator(1234);
  Options.AccuracyThreshold = 0.0; // Filled after the full model trains.
  {
    const MultiplexingModel Model(*Spec);
    Result<FullModel> Full =
        prepareFullModel(Model, Data, Meta, "", Generator);
    if (!Full) {
      std::fprintf(stderr, "full model error: %s\n",
                   Full.message().c_str());
      return 1;
    }
    Options.AccuracyThreshold = Full->Accuracy - 0.05;
    std::printf("full accuracy %.3f -> threshold %.3f\n\n", Full->Accuracy,
                Options.AccuracyThreshold);
  }

  Result<IterativeResult> Run = runIterativeExploration(
      *Spec, Data, Meta, Options, Generator);
  if (!Run) {
    std::fprintf(stderr, "search error: %s\n", Run.message().c_str());
    return 1;
  }

  Table Trajectory({"iter", "bumped", "config", "size %", "accuracy",
                    "candidates", "blocks trained", "blocks reused"});
  for (size_t I = 0; I < Run->Trajectory.size(); ++I) {
    const IterativeStep &Step = Run->Trajectory[I];
    Trajectory.addRow(
        {std::to_string(I + 1),
         "m" + std::to_string(Step.Module) + "@" +
             formatDouble(Step.Rate, 1),
         formatConfig(Step.Config),
         formatDouble(100.0 * Step.WeightCount / Run->FullWeightCount, 1),
         formatDouble(Step.Accuracy, 3),
         std::to_string(Step.CandidatesTried),
         std::to_string(Step.BlocksTrained),
         std::to_string(Step.BlocksReused)});
  }
  std::printf("%s\n", Trajectory.render().c_str());

  std::printf("best: %s (%.1f%% of the full model, accuracy %.3f)\n",
              formatConfig(Run->BestConfig).c_str(),
              100.0 * Run->BestWeightCount / Run->FullWeightCount,
              Run->BestAccuracy);
  std::printf("%d candidate evaluations; %d blocks pre-trained once, "
              "%d reuses from the store (%.1fx reuse) in %.1fs\n",
              Run->TotalCandidates, Run->TotalBlocksTrained,
              Run->TotalBlockReuses,
              Run->TotalBlocksTrained
                  ? static_cast<double>(Run->TotalBlockReuses) /
                        Run->TotalBlocksTrained
                  : 0.0,
              Run->Seconds);
  return 0;
}
