//===- examples/inception_pruning.cpp - identifier-driven Inception pruning ------===//
//
// Prunes the Inception analogue with the hierarchical tuning block
// identifier enabled (UseIdentifier), on a rate-run subspace like
// Table 5's "collection-2" — the setting where multi-module blocks pay
// off. Compares the identifier's block set against the per-module
// default and reports both pipelines' outcomes.
//
//===----------------------------------------------------------------------===//

#include "src/support/Table.h"
#include "src/wootz/wootz.h"

#include <cstdio>

using namespace wootz;

int main() {
  const Dataset Data = generateSynthetic(standardDatasetSpecs(0.5)[2]);
  Result<ModelSpec> Spec =
      makeStandardModel(StandardModel::InceptionB, Data.Classes);
  if (!Spec) {
    std::fprintf(stderr, "model error: %s\n", Spec.message().c_str());
    return 1;
  }
  std::printf("model: %s\ndataset: %s\n\n", Spec->Name.c_str(),
              describeDataset(Data).c_str());

  TrainMeta Meta;
  Meta.FullModelSteps = 600;
  Meta.PretrainSteps = 40;
  Meta.FinetuneSteps = 60;
  Meta.EvalEvery = 20;

  // Collection-2-style subspace: one rate per run of modules.
  Rng SampleGen(31);
  const std::vector<PruneConfig> Subspace = sampleRunSubspace(
      Spec->moduleCount(), 8, 2, {0.3f, 0.5f, 0.7f}, SampleGen);
  std::printf("rate-run subspace:\n%s\n\n",
              printSubspaceSpec(Subspace).c_str());

  // Show what the identifier chooses vs the per-module default.
  const IdentifierResult Identified = identifyTuningBlocks(
      Spec->moduleCount(), Subspace, standardRates());
  const std::vector<TuningBlock> PerModule = perModuleBlocks(Subspace);
  std::printf("per-module block set: %zu blocks\n", PerModule.size());
  std::printf("identifier block set: %zu blocks:", Identified.Blocks.size());
  for (const TuningBlock &Block : Identified.Blocks)
    std::printf(" %s", Block.id().c_str());
  std::printf("\n\n");

  auto runOnce = [&](bool UseIdentifier) {
    PipelineOptions Options;
    Options.UseComposability = true;
    Options.UseIdentifier = UseIdentifier;
    Rng Generator(77);
    Result<PipelineResult> Run = runPruningPipeline(
        *Spec, Data, Subspace, Meta, Options, Generator);
    if (!Run) {
      std::fprintf(stderr, "pipeline error: %s\n", Run.message().c_str());
      std::exit(1);
    }
    return Run.take();
  };
  const PipelineResult Default = runOnce(false);
  const PipelineResult WithIdentifier = runOnce(true);

  Table Comparison({"mode", "blocks", "groups", "pretrain s", "mean init+",
                    "mean final+"});
  auto addRow = [&](const char *Name, const PipelineResult &Run) {
    double Init = 0.0, Final = 0.0;
    for (const EvaluatedConfig &E : Run.Evaluations) {
      Init += E.InitAccuracy;
      Final += E.FinalAccuracy;
    }
    Init /= Run.Evaluations.size();
    Final /= Run.Evaluations.size();
    Comparison.addRow({Name, std::to_string(Run.Blocks.size()),
                       std::to_string(Run.Pretrain.GroupCount),
                       formatDouble(Run.Pretrain.Seconds, 2),
                       formatDouble(Init, 3), formatDouble(Final, 3)});
  };
  addRow("per-module", Default);
  addRow("identifier", WithIdentifier);
  std::printf("%s\n", Comparison.render().c_str());

  const PruningObjective Objective =
      smallestMeetingAccuracy(WithIdentifier.FullAccuracy - 0.05);
  for (const auto &[Name, Run] :
       {std::pair<const char *, const PipelineResult &>("per-module",
                                                        Default),
        std::pair<const char *, const PipelineResult &>("identifier",
                                                        WithIdentifier)}) {
    const ExplorationSummary Summary =
        summarizeExploration(Run, Objective, 1);
    std::printf("%-10s: %d configs, %.1fs total, overhead %.0f%%\n", Name,
                Summary.ConfigsEvaluated, Summary.Seconds,
                100.0 * Summary.OverheadFraction);
  }
  return 0;
}
