//===- examples/runtime_pruning.cpp - scheduler-driven pruning -------------------===//
//
// The pipeline on the wootz::runtime task scheduler. Pre-training and
// fine-tuning become nodes of a dependency DAG: each configuration's
// fine-tune depends only on the block groups its composite vector
// actually uses, so evaluations start as soon as *their* blocks are
// ready instead of after all pre-training. And because the exploration
// ascends by model size with a min-size objective, the first satisfying
// configuration proves every still-pending evaluation useless — the
// scheduler cancels them. The run prints the measured summary and drops
// the span-level telemetry as JSONL for inspection.
//
//===----------------------------------------------------------------------===//

#include "src/wootz/wootz.h"

#include <cstdio>
#include <cstdlib>

using namespace wootz;

int main() {
  const Dataset Data = generateSynthetic(standardDatasetSpecs(0.5)[0]);
  Result<ModelSpec> Spec =
      makeStandardModel(StandardModel::ResNetA, Data.Classes);
  if (!Spec) {
    std::fprintf(stderr, "model error: %s\n", Spec.message().c_str());
    return 1;
  }
  std::printf("model: %s\ndataset: %s\n\n", Spec->Name.c_str(),
              describeDataset(Data).c_str());

  TrainMeta Meta;
  Meta.FullModelSteps = 300;
  Meta.PretrainSteps = 60;
  Meta.FinetuneSteps = 40;
  Meta.EvalEvery = 10;

  Rng SampleGen(7);
  const std::vector<PruneConfig> Subspace =
      sampleSubspace(Spec->moduleCount(), 10, standardRates(), SampleGen);

  // Accept any configuration within 10 points of the full model; the
  // smallest one wins, so everything larger than the first satisfier is
  // cancelled mid-run.
  PipelineOptions Options;
  Options.UseComposability = true;
  Options.Schedule = PipelineSchedule::Overlap;
  Options.Workers = 2;
  Options.TelemetryPath = "runtime_pruning_spans.jsonl";
  // Opt into the cross-run tuning-block cache: rerunning this example
  // with WOOTZ_BLOCK_CACHE_DIR set skips all block pre-training on the
  // second run (watch the cache.hit counter below).
  if (const char *BlockCacheDir = std::getenv("WOOTZ_BLOCK_CACHE_DIR"))
    Options.BlockCacheConfig.Directory = BlockCacheDir;

  // Two passes share nothing here for simplicity: a cheap serial probe
  // to learn the full-model accuracy, then the scheduled run against
  // the real threshold.
  Rng Generator(2024);
  Result<PipelineResult> Probed = [&] {
    PipelineOptions ProbeOptions;
    ProbeOptions.UseComposability = true;
    Rng ProbeGen(2024);
    std::vector<PruneConfig> JustSmallest(Subspace.begin(),
                                          Subspace.begin() + 1);
    return runPruningPipeline(*Spec, Data, JustSmallest, Meta,
                              ProbeOptions, ProbeGen);
  }();
  if (!Probed) {
    std::fprintf(stderr, "probe error: %s\n", Probed.message().c_str());
    return 1;
  }
  const PruningObjective Objective =
      smallestMeetingAccuracy(Probed->FullAccuracy - 0.10);
  Options.CancelObjective = &Objective;

  Result<PipelineResult> Run =
      runPruningPipeline(*Spec, Data, Subspace, Meta, Options, Generator);
  if (!Run) {
    std::fprintf(stderr, "pipeline error: %s\n", Run.message().c_str());
    return 1;
  }

  std::printf("%s\n", renderRunReport(*Run, Objective, 1).c_str());

  const ExplorationSummary Measured =
      summarizeMeasuredRun(*Run, Objective);
  std::printf("measured: %d/%zu configurations evaluated, winner index "
              "%d, makespan %.2fs (pre-training share %.0f%%)\n",
              Measured.ConfigsEvaluated, Subspace.size(),
              Measured.WinnerIndex, Measured.Seconds,
              100.0 * Measured.OverheadFraction);
  std::printf("cancelled tasks: %lld\n",
              static_cast<long long>(
                  Run->Telemetry.counter("tasks_cancelled")));
  if (!Options.BlockCacheConfig.Directory.empty())
    std::printf("block cache (%s): %lld hits, %lld misses, %lld corrupt\n",
                Options.BlockCacheConfig.Directory.c_str(),
                static_cast<long long>(Run->Telemetry.counter("cache.hit")),
                static_cast<long long>(
                    Run->Telemetry.counter("cache.miss")),
                static_cast<long long>(
                    Run->Telemetry.counter("cache.corrupt")));
  std::printf("span log: %s\n", Options.TelemetryPath.c_str());
  return 0;
}
