//===- examples/quickstart.cpp - 60-second tour of the Wootz API ----------------===//
//
// Builds a miniature ResNet from Prototxt, samples a promising subspace,
// runs CNN pruning with and without composability, and prints the best
// network found under a "smallest model above an accuracy threshold"
// objective. Runs in well under a minute on one CPU core.
//
//===----------------------------------------------------------------------===//

#include "src/wootz/wootz.h"

#include <cstdio>

using namespace wootz;

int main() {
  // 1. A dataset (stand-in for CUB200 et al. — see data/Synthetic.h).
  const Dataset Data = generateSynthetic(standardDatasetSpecs(0.5)[1]);

  // 2. The to-be-pruned CNN model, in Caffe Prototxt with the `module`
  //    extension (Figure 2's first input). Any Prototxt source works;
  //    here we generate one of the standard miniature models, with as
  //    many output classes as the dataset has.
  const std::string Prototxt =
      standardModelPrototxt(StandardModel::ResNetA, Data.Classes);
  Result<ModelSpec> Spec = parseModelSpec(Prototxt);
  if (!Spec) {
    std::fprintf(stderr, "model error: %s\n", Spec.message().c_str());
    return 1;
  }
  std::printf("model: %s (%d conv modules, %zu layers)\n",
              Spec->Name.c_str(), Spec->moduleCount(), Spec->Layers.size());

  // 3. Training meta data in the Caffe-solver-like format.
  std::printf("dataset: %s\n", describeDataset(Data).c_str());
  Result<TrainMeta> Meta = parseTrainMeta("full_model_steps: 600\n"
                                          "pretrain_steps: 40\n"
                                          "finetune_steps: 60\n"
                                          "batch_size: 8\n"
                                          "eval_every: 20\n");
  if (!Meta) {
    std::fprintf(stderr, "meta error: %s\n", Meta.message().c_str());
    return 1;
  }

  // 4. The promising subspace (Figure 3a) — here sampled randomly.
  Rng Generator(42);
  const std::vector<PruneConfig> Subspace =
      sampleSubspace(Spec->moduleCount(), 8, standardRates(), Generator);
  std::printf("subspace: %zu configurations\n%s\n", Subspace.size(),
              printSubspaceSpec(Subspace).c_str());

  // 5. Run the pipeline twice: baseline vs composability-based.
  auto runOnce = [&](bool Composability) {
    PipelineOptions Options;
    Options.UseComposability = Composability;
    Rng PipelineGen(7);
    Result<PipelineResult> Run = runPruningPipeline(
        *Spec, Data, Subspace, *Meta, Options, PipelineGen);
    if (!Run) {
      std::fprintf(stderr, "pipeline error: %s\n", Run.message().c_str());
      std::exit(1);
    }
    return Run.take();
  };
  const PipelineResult Base = runOnce(false);
  const PipelineResult Comp = runOnce(true);
  std::printf("\nfull model accuracy: %.3f (%zu weights)\n",
              Base.FullAccuracy, Base.FullWeightCount);

  // 6. Pick the best network under the Figure 3(b) objective.
  Result<PruningObjective> Objective = parseObjective(
      "min ModelSize\nconstraint Accuracy >= " +
      formatDouble(Base.FullAccuracy - 0.05, 4) + "\n");
  if (!Objective) {
    std::fprintf(stderr, "objective error: %s\n",
                 Objective.message().c_str());
    return 1;
  }

  for (const auto &[Name, Run] :
       {std::pair<const char *, const PipelineResult &>("baseline", Base),
        std::pair<const char *, const PipelineResult &>("wootz", Comp)}) {
    const ExplorationSummary Summary =
        summarizeExploration(Run, *Objective, /*Nodes=*/1);
    if (Summary.WinnerIndex < 0) {
      std::printf("%-8s: no configuration met the objective "
                  "(%d evaluated, %.1fs)\n",
                  Name, Summary.ConfigsEvaluated, Summary.Seconds);
      continue;
    }
    const EvaluatedConfig &Winner = Run.Evaluations[Summary.WinnerIndex];
    std::printf("%-8s: best %s  size %.1f%%  accuracy %.3f  "
                "(%d configs explored, %.1fs, overhead %.0f%%)\n",
                Name, formatConfig(Winner.Config).c_str(),
                100.0 * Winner.SizeFraction, Winner.FinalAccuracy,
                Summary.ConfigsEvaluated, Summary.Seconds,
                100.0 * Summary.OverheadFraction);
  }
  return 0;
}
