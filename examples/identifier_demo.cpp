//===- examples/identifier_demo.cpp - Figure 4 walk-through ----------------------===//
//
// Reproduces the paper's Figure 4 end to end: four pruned networks are
// concatenated into a symbol string, Sequitur infers the CFG, and the
// hierarchical tuning block identifier walks the rule DAG with its two
// heuristics to pick the tuning-block set and per-network composite
// vectors.
//
//===----------------------------------------------------------------------===//

#include "src/wootz/wootz.h"

#include <cstdio>

using namespace wootz;

int main() {
  // Figure 4's setting: networks over 5 convolution modules pruned at
  // rates 0%, 30%, 50%. The four networks share most of their modules.
  const int ModuleCount = 5;
  const std::vector<float> Rates{0.0f, 0.3f, 0.5f};
  const std::vector<PruneConfig> Subspace{
      {0.3f, 0.3f, 0.3f, 0.5f, 0.5f},
      {0.3f, 0.3f, 0.5f, 0.5f, 0.5f},
      {0.5f, 0.3f, 0.3f, 0.5f, 0.5f},
      {0.0f, 0.3f, 0.5f, 0.5f, 0.5f},
  };

  std::printf("Promising subspace (%d modules, rates 0/.3/.5):\n",
              ModuleCount);
  for (size_t N = 0; N < Subspace.size(); ++N)
    std::printf("  network %zu: %s\n", N + 1,
                formatConfig(Subspace[N]).c_str());

  const IdentifierResult Result =
      identifyTuningBlocks(ModuleCount, Subspace, Rates);

  std::printf("\nSequitur grammar over the concatenated networks\n"
              "(notation as in Figure 4: N(d) = module N pruned at d, "
              "#k = network end marker):\n\n%s",
              Result.RuleGrammar.str(Result.TerminalNames).c_str());

  std::printf("\nChosen tuning blocks S "
              "(heuristics: freq > 1; parent only when it matches its "
              "most frequent descendant):\n");
  for (size_t I = 0; I < Result.Blocks.size(); ++I)
    std::printf("  B%zu = %s  (%d module%s)\n", I,
                Result.Blocks[I].id().c_str(),
                Result.Blocks[I].moduleCount(),
                Result.Blocks[I].moduleCount() == 1 ? "" : "s");

  std::printf("\nComposite vectors (blocks each network assembles "
              "from):\n");
  for (size_t N = 0; N < Subspace.size(); ++N) {
    std::printf("  network %zu:", N + 1);
    for (int Index : Result.CompositeVectors[N])
      std::printf(" %s", Result.Blocks[Index].id().c_str());
    std::printf("\n");
  }

  std::printf("\nPre-training groups (§6.2 partition algorithm, "
              "non-overlapping per group):\n");
  const auto Groups = partitionIntoGroups(Result.Blocks);
  for (size_t G = 0; G < Groups.size(); ++G) {
    std::printf("  group %zu:", G);
    for (const TuningBlock &Block : Groups[G])
      std::printf(" %s", Block.id().c_str());
    std::printf("\n");
  }
  return 0;
}
