//===- compiler/GraphBuilder.cpp -------------------------------------------===//

#include "src/compiler/GraphBuilder.h"

#include "src/compiler/Multiplexing.h"
#include "src/support/StringUtils.h"

#include <set>

using namespace wootz;

Result<BuiltNetwork> wootz::buildFullNetwork(const ModelSpec &Spec,
                                             uint64_t Seed) {
  if (Spec.Layers.empty())
    return Error::failure("model '" + Spec.Name + "' has no layers");
  const LayerSpec &Head = Spec.Layers.back();
  if (Head.Kind != LayerKind::InnerProduct)
    return Error::failure(
        "model '" + Spec.Name + "' must end with an InnerProduct classifier "
        "head, found " + layerKindName(Head.Kind) + " '" + Head.Name + "'");

  MultiplexingModel Model(Spec);
  BuiltNetwork Out;
  Rng Generator(Seed);
  Result<BuildResult> Built =
      Model.build(Out.Network, BuildMode::FullModel, PruneInfo{},
                  FullNetworkPrefix, Generator);
  if (!Built)
    return Built.takeError();
  Out.InputNode = Built->InputNode;
  Out.LogitsNode = Built->LogitsNode;
  Out.Classes = Head.NumOutput;
  return Out;
}

TensorBundle wootz::exportWeights(Graph &Network, const std::string &Prefix) {
  const std::string Scope = Prefix + "/";
  TensorBundle Bundle;
  for (const auto &[Name, State] : Network.namedState()) {
    if (!startsWith(Name, Scope))
      continue;
    Bundle.emplace(Name.substr(Scope.size()), State->Value);
  }
  return Bundle;
}

Error wootz::importWeights(Graph &Network, const std::string &Prefix,
                           const TensorBundle &Weights) {
  const std::string Scope = Prefix + "/";
  std::map<std::string, Param *> State = Network.namedState();

  // Validate everything up front so a bad bundle never leaves the network
  // half-imported.
  std::set<std::string> Expected;
  for (const auto &[Name, Target] : State) {
    if (!startsWith(Name, Scope))
      continue;
    const std::string Key = Name.substr(Scope.size());
    Expected.insert(Key);
    auto It = Weights.find(Key);
    if (It == Weights.end())
      return Error::failure("weight bundle is missing entry '" + Key +
                            "' (expected shape " +
                            Target->Value.shape().str() + ")");
    if (It->second.shape() != Target->Value.shape())
      return Error::failure("weight entry '" + Key + "': shape " +
                            It->second.shape().str() +
                            " does not match the model's " +
                            Target->Value.shape().str());
  }
  for (const auto &[Key, Value] : Weights)
    if (!Expected.count(Key))
      return Error::failure("weight entry '" + Key +
                            "' does not name a state tensor of the model");

  for (const auto &[Name, Target] : State) {
    if (!startsWith(Name, Scope))
      continue;
    Target->Value = Weights.at(Name.substr(Scope.size()));
  }
  return Error::success();
}
