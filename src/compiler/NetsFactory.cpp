//===- compiler/NetsFactory.cpp ------------------------------------------------===//

#include "src/compiler/NetsFactory.h"

using namespace wootz;

Result<std::string>
NetsFactory::registerModel(const std::string &PrototxtSource) {
  Result<ModelSpec> Spec = parseModelSpec(PrototxtSource);
  if (!Spec)
    return Spec.takeError();
  return registerModel(Spec.take());
}

Result<std::string> NetsFactory::registerModel(ModelSpec Spec) {
  const std::string Name = Spec.Name;
  if (Models.count(Name))
    return Error::failure("model '" + Name + "' is already registered");
  Models.emplace(Name,
                 std::make_unique<MultiplexingModel>(std::move(Spec)));
  Order.push_back(Name);
  return Name;
}

const MultiplexingModel *NetsFactory::lookup(const std::string &Name) const {
  auto It = Models.find(Name);
  return It == Models.end() ? nullptr : It->second.get();
}
