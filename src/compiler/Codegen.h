//===- compiler/Codegen.h - Multiplexing-model code emission ----------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the multiplexing model as TensorFlow-Slim-style Python source —
/// the textual artifact the paper's compiler generates from a Prototxt
/// model ("generates calls to TensorFlow-Slim API to add various CNN
/// layers based on the parsing results of the Prototxt specifications",
/// §6.2). The emitted function takes `inputs`, `mode_to_use` and
/// `prune_info`, mirrors the three build modes of MultiplexingModel, and
/// reads per-module filter depths from `prune_info` so one function
/// serves every pruning setting.
///
/// The in-process runtime never executes this code; it exists to
/// reproduce (and test, via golden checks) the code-generation half of
/// the Wootz compiler.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_COMPILER_CODEGEN_H
#define WOOTZ_COMPILER_CODEGEN_H

#include "src/compiler/Solver.h"
#include "src/proto/ModelSpec.h"

#include <string>

namespace wootz {

/// Emits the complete Python multiplexing-model source for \p Spec.
std::string emitMultiplexingScript(const ModelSpec &Spec);

/// Emits the pre-training wrapper (the paper's third component): the
/// generic pre-training entry point adapted to \p Spec and the training
/// meta data — it registers the model with the nets factory, partitions
/// the tuning blocks into non-overlapping groups, and trains one group
/// per invocation, storing checkpoints.
std::string emitPretrainWrapper(const ModelSpec &Spec,
                                const TrainMeta &Meta);

/// Emits the exploration wrapper (the paper's fourth component): it
/// orders the configurations by the objective's metric, assigns the
/// i + p*j-th model to node i, fine-tunes each block-trained network and
/// reports the best network found.
std::string emitExplorationWrapper(const ModelSpec &Spec,
                                   const TrainMeta &Meta,
                                   const std::string &ObjectiveSpec);

/// Python-identifier form of a model name ("mini-resnet-a" ->
/// "mini_resnet_a").
std::string pythonIdentifier(const std::string &Name);

} // namespace wootz

#endif // WOOTZ_COMPILER_CODEGEN_H
