//===- compiler/Multiplexing.cpp ---------------------------------------------===//

#include "src/compiler/Multiplexing.h"

#include "src/nn/Layers.h"

using namespace wootz;

/// Instantiates the runtime layer for \p L with input extents \p In and
/// planned output channels \p OutChannels.
static std::unique_ptr<Layer> makeLayer(const LayerSpec &L,
                                        const LayerExtents &In,
                                        int OutChannels) {
  switch (L.Kind) {
  case LayerKind::Convolution: {
    ConvGeometry Geometry;
    Geometry.InChannels = In.Channels;
    Geometry.OutChannels = OutChannels;
    Geometry.KernelSize = L.KernelSize;
    Geometry.Stride = L.Stride;
    Geometry.Pad = L.Pad;
    return std::make_unique<Conv2D>(Geometry, L.BiasTerm);
  }
  case LayerKind::BatchNorm:
    return std::make_unique<BatchNorm2D>(In.Channels);
  case LayerKind::ReLU:
    return std::make_unique<ReLU>();
  case LayerKind::Pooling:
    if (L.GlobalPooling)
      return std::make_unique<GlobalAvgPool>();
    return std::make_unique<Pool2D>(L.PoolMax ? Pool2D::Mode::Max
                                              : Pool2D::Mode::Average,
                                    L.KernelSize, L.Stride, L.Pad);
  case LayerKind::InnerProduct:
    return std::make_unique<Dense>(In.Channels * In.Height * In.Width,
                                   L.NumOutput);
  case LayerKind::Concat:
    return std::make_unique<Concat>();
  case LayerKind::Eltwise:
    return std::make_unique<Add>();
  }
  reportFatalError("unhandled layer kind in makeLayer");
}

Result<std::string> MultiplexingModel::buildRange(
    Graph &Target, const ChannelPlan &Plan, int FirstLayer, int LastLayer,
    const std::string &Prefix, const std::string &ExternalPrefix,
    Rng &Generator) const {
  std::string LastNode;
  for (int I = FirstLayer; I <= LastLayer; ++I) {
    const LayerSpec &L = Spec.Layers[I];
    std::vector<std::string> Inputs;
    for (const std::string &Bottom : L.Bottoms) {
      if (Bottom == Spec.InputName) {
        Inputs.push_back(Spec.InputName);
        continue;
      }
      const int BottomIndex = Spec.layerIndex(Bottom);
      const bool Internal = BottomIndex >= FirstLayer &&
                            BottomIndex <= LastLayer;
      Inputs.push_back((Internal ? Prefix : ExternalPrefix) + "/" + Bottom);
      if (!Target.hasNode(Inputs.back()))
        return Error::failure("node '" + Inputs.back() +
                              "' required by '" + L.Name +
                              "' does not exist");
    }
    // Input extents come from the producing layer's plan entry (the
    // external producer is always full-width at a module boundary, and
    // the plan's rates are zero outside the built range, so the plan is
    // valid for both).
    const int Bottom0 = Spec.layerIndex(L.Bottoms[0]);
    const LayerExtents In =
        Bottom0 < 0 ? LayerExtents{Spec.InputChannels, Spec.InputHeight,
                                   Spec.InputWidth}
                    : Plan.Extents[Bottom0];
    std::unique_ptr<Layer> NodeLayer =
        makeLayer(L, In, Plan.OutChannels[I]);
    NodeLayer->initParams(Generator);
    LastNode = Prefix + "/" + L.Name;
    Target.addNode(LastNode, std::move(NodeLayer), Inputs);
  }
  return LastNode;
}

std::vector<std::string>
MultiplexingModel::blockLayerNames(const TuningBlock &Block) const {
  assert(Block.FirstModule >= 0 &&
         Block.lastModule() < Spec.moduleCount() &&
         "block module range out of bounds");
  const int First = Spec.Modules[Block.FirstModule].FirstLayer;
  const int Last = Spec.Modules[Block.lastModule()].LastLayer;
  std::vector<std::string> Names;
  for (int I = First; I <= Last; ++I)
    Names.push_back(Spec.Layers[I].Name);
  return Names;
}

Result<BuildResult> MultiplexingModel::build(Graph &Target, BuildMode Mode,
                                             const PruneInfo &Info,
                                             const std::string &Prefix,
                                             Rng &Generator) const {
  if (!Target.hasNode(Spec.InputName))
    Target.addInput(Spec.InputName);
  BuildResult Out;
  Out.InputNode = Spec.InputName;

  const int LayerCount = static_cast<int>(Spec.Layers.size());
  switch (Mode) {
  case BuildMode::FullModel:
  case BuildMode::FineTune: {
    const PruneConfig Config = Mode == BuildMode::FullModel
                                   ? unprunedConfig(Spec)
                                   : Info.Config;
    Result<ChannelPlan> Plan = planChannels(Spec, Config);
    if (!Plan)
      return Plan.takeError();
    Result<std::string> LastNode = buildRange(
        Target, *Plan, 0, LayerCount - 1, Prefix, Prefix, Generator);
    if (!LastNode)
      return LastNode.takeError();
    Out.LogitsNode = *LastNode;
    return Out;
  }
  case BuildMode::PreTrain: {
    // Teacher: the frozen full model.
    Result<ChannelPlan> FullPlan = planChannels(Spec, unprunedConfig(Spec));
    if (!FullPlan)
      return FullPlan.takeError();
    Result<std::string> Teacher = buildRange(
        Target, *FullPlan, 0, LayerCount - 1, Prefix, Prefix, Generator);
    if (!Teacher)
      return Teacher.takeError();
    for (const LayerSpec &L : Spec.Layers)
      Target.setTrainable(Prefix + "/" + L.Name, false);

    // Students: one pruned block per entry of Info.Blocks, fed by and
    // targeting the teacher's activations at the block boundaries.
    for (size_t K = 0; K < Info.Blocks.size(); ++K) {
      const TuningBlock &Block = Info.Blocks[K];
      if (Block.lastModule() >= Spec.moduleCount())
        return Error::failure("tuning block '" + Block.id() +
                              "' exceeds the model's module count");
      assert(!Block.isIdentity() &&
             "identity blocks need no pre-training");
      PruneConfig BlockConfig = unprunedConfig(Spec);
      for (int M = 0; M < Block.moduleCount(); ++M)
        BlockConfig[Block.FirstModule + M] = Block.Rates[M];
      Result<ChannelPlan> Plan = planChannels(Spec, BlockConfig);
      if (!Plan)
        return Plan.takeError();

      BlockPort Port;
      Port.Block = Block;
      Port.Prefix = Prefix + ".b" + std::to_string(K);
      Port.Layers = blockLayerNames(Block);
      const ModuleSpec &FirstModule = Spec.Modules[Block.FirstModule];
      const ModuleSpec &LastModule = Spec.Modules[Block.lastModule()];
      Result<std::string> StudentOut = buildRange(
          Target, *Plan, FirstModule.FirstLayer, LastModule.LastLayer,
          Port.Prefix, Prefix, Generator);
      if (!StudentOut)
        return StudentOut.takeError();
      Port.StudentOut = Port.Prefix + "/" + LastModule.OutputLayer;
      Port.TeacherOut = Prefix + "/" + LastModule.OutputLayer;
      Out.Ports.push_back(std::move(Port));
    }
    return Out;
  }
  }
  reportFatalError("unhandled build mode");
}
