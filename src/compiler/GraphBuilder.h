//===- compiler/GraphBuilder.h - User-model materialization ----------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ingestion half of the compiler: turns a parsed, validated
/// ModelSpec into a runnable nn::Graph and moves pretrained weights in
/// and out of it as named tensor bundles (the WOOTZCK2 counterpart of a
/// .caffemodel). This is what lets the serve daemon accept arbitrary
/// user CNNs instead of only the built-in Mini models:
///
///   parseModelSpec(text) -> buildFullNetwork(spec) -> importWeights(...)
///
/// Bundle entries are keyed "<layer>/s<K>" where K is the layer's state
/// index — the same convention CheckpointStore uses for tuning blocks,
/// so a bundle saved from one Wootz process restores into any other.
/// Import is strict in both directions: a missing entry, an unknown
/// entry, or a shape mismatch is a clean per-entry Error and leaves the
/// network untouched.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_COMPILER_GRAPHBUILDER_H
#define WOOTZ_COMPILER_GRAPHBUILDER_H

#include "src/nn/Graph.h"
#include "src/nn/Serialize.h"
#include "src/proto/ModelSpec.h"

#include <string>

namespace wootz {

/// The node prefix buildFullNetwork() materializes under; shared with the
/// pipeline's full-model builds so checkpoints and bundles interchange.
inline const char *const FullNetworkPrefix = "net";

/// A full (unpruned) network materialized from a ModelSpec, ready for
/// weight import, evaluation, or serving.
struct BuiltNetwork {
  Graph Network;
  std::string InputNode;  ///< The dataset input placeholder.
  std::string LogitsNode; ///< The classifier head's output node.
  int Classes = 0;        ///< Output width of the classifier head.
};

/// Materializes the full network described by \p Spec under
/// FullNetworkPrefix with freshly initialized (seeded) parameters.
/// Requires the final layer to be an InnerProduct classifier head — the
/// shape every servable model needs. \p Spec must be analyzed (as
/// parseModelSpec() returns it).
Result<BuiltNetwork> buildFullNetwork(const ModelSpec &Spec, uint64_t Seed);

/// Exports every persistent tensor (weights, biases, batchnorm running
/// statistics) of the nodes under \p Prefix as a bundle keyed
/// "<layer>/s<K>".
TensorBundle exportWeights(Graph &Network, const std::string &Prefix);

/// Imports \p Weights into the nodes under \p Prefix, matched by layer
/// name. Validates every entry first — exact key coverage in both
/// directions and exact shape match — so a failed import reports the
/// offending entry and leaves \p Network's parameters unmodified.
Error importWeights(Graph &Network, const std::string &Prefix,
                    const TensorBundle &Weights);

} // namespace wootz

#endif // WOOTZ_COMPILER_GRAPHBUILDER_H
