//===- compiler/NetsFactory.h - Model registry --------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper registers each generated multiplexing model "at the nets
/// factory in Slim Model Library with its unique model name ... a
/// dictionary mapping a model name to its corresponding model function".
/// NetsFactory is that dictionary: compiled models are registered by
/// name and retrieved by the pre-training and exploration scripts.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_COMPILER_NETSFACTORY_H
#define WOOTZ_COMPILER_NETSFACTORY_H

#include "src/compiler/Multiplexing.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wootz {

/// A name -> MultiplexingModel registry.
class NetsFactory {
public:
  /// Compiles \p PrototxtSource and registers the model under its own
  /// name. Fails on parse errors or duplicate names.
  Result<std::string> registerModel(const std::string &PrototxtSource);

  /// Registers an already-built spec.
  Result<std::string> registerModel(ModelSpec Spec);

  /// Looks up a registered model; null when absent.
  const MultiplexingModel *lookup(const std::string &Name) const;

  /// Registered names in registration order.
  std::vector<std::string> names() const { return Order; }

private:
  std::map<std::string, std::unique_ptr<MultiplexingModel>> Models;
  std::vector<std::string> Order;
};

} // namespace wootz

#endif // WOOTZ_COMPILER_NETSFACTORY_H
