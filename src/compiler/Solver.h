//===- compiler/Solver.h - Training meta data --------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The training meta data Wootz takes alongside the model ("learning
/// rates, maximum training steps ... following the format used in Caffe
/// Solver Prototxt", §4). TrainMeta carries the knobs for both phases —
/// tuning-block pre-training and global fine-tuning — plus the node count
/// for distributed exploration. parseTrainMeta() reads the solver-style
/// text format; defaults are tuned for the miniature models.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_COMPILER_SOLVER_H
#define WOOTZ_COMPILER_SOLVER_H

#include "src/support/Error.h"

#include <string>

namespace wootz {

/// Training configuration for the whole pipeline.
struct TrainMeta {
  // Full-model preparation (the "trained on the dataset of interest"
  // precondition of CNN pruning).
  int FullModelSteps = 400;
  float FullModelLearningRate = 0.02f;

  // Tuning-block pre-training (paper: 10k steps for ResNets, 20k for
  // Inceptions, lr 0.2 / 0.08).
  int PretrainSteps = 80;
  float PretrainLearningRate = 0.08f;

  // Global fine-tuning / baseline training (paper: 30k steps max,
  // lr 0.001).
  int FinetuneSteps = 40;
  float FinetuneLearningRate = 0.01f;

  int BatchSize = 8;
  float Momentum = 0.9f;
  float WeightDecay = 1e-4f;

  /// Test-set evaluation cadence during fine-tuning, in steps.
  int EvalEvery = 15;

  /// Worker threads for each test-set evaluation: the test batches are
  /// sharded across this many private ExecContexts over the one shared
  /// network. The summed integer correct count keeps the accuracy
  /// bit-identical to a serial evaluation for any thread count.
  int EvalThreads = 1;

  /// Step learning-rate decay: multiply the rate by LrDecayFactor every
  /// LrDecayEvery steps (0 disables — the paper settled on fixed rates
  /// but "experimented with dynamic decay schemes", section 7.1).
  int LrDecayEvery = 0;
  float LrDecayFactor = 0.5f;

  /// Early stopping: end a training run once the best test accuracy has
  /// not improved for this many consecutive evaluations (0 disables).
  /// Gives block-trained networks their "reaches the final accuracy in
  /// fewer iterations" time advantage (paper section 7.2).
  int EarlyStopPatience = 0;

  /// Machines used for concurrent pre-training / exploration.
  int Nodes = 1;

  uint64_t Seed = 7;
};

/// Parses solver-style meta data, e.g.:
/// \code
///   pretrain_steps: 60
///   finetune_lr: 0.02
///   batch_size: 8
///   nodes: 4
/// \endcode
/// Unknown keys are rejected; omitted keys keep their defaults.
Result<TrainMeta> parseTrainMeta(const std::string &Source);

/// Prints \p Meta in the format parseTrainMeta() accepts.
std::string printTrainMeta(const TrainMeta &Meta);

} // namespace wootz

#endif // WOOTZ_COMPILER_SOLVER_H
