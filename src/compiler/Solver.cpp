//===- compiler/Solver.cpp ----------------------------------------------------===//

#include "src/compiler/Solver.h"

#include "src/proto/Prototxt.h"
#include "src/support/StringUtils.h"

using namespace wootz;

Result<TrainMeta> wootz::parseTrainMeta(const std::string &Source) {
  Result<PrototxtMessage> Parsed = parsePrototxt(Source);
  if (!Parsed)
    return Parsed.takeError();
  const PrototxtMessage &Msg = *Parsed;

  TrainMeta Meta;
  for (const std::string &Field : Msg.fieldOrder()) {
    // Meta text arrives via the serve job API, so accessor failures
    // (non-numeric text, repeated fields) surface as errors, not asserts.
    Error FieldError = Error::success();
    auto intField = [&](int &Target) {
      Result<long long> Value = Msg.intOr(Field, Target);
      if (!Value)
        FieldError = Value.takeError();
      else
        Target = static_cast<int>(*Value);
    };
    auto floatField = [&](float &Target) {
      Result<double> Value = Msg.doubleOr(Field, Target);
      if (!Value)
        FieldError = Value.takeError();
      else
        Target = static_cast<float>(*Value);
    };
    if (Field == "full_model_steps")
      intField(Meta.FullModelSteps);
    else if (Field == "full_model_lr")
      floatField(Meta.FullModelLearningRate);
    else if (Field == "early_stop_patience")
      intField(Meta.EarlyStopPatience);
    else if (Field == "lr_decay_every")
      intField(Meta.LrDecayEvery);
    else if (Field == "lr_decay_factor")
      floatField(Meta.LrDecayFactor);
    else if (Field == "pretrain_steps")
      intField(Meta.PretrainSteps);
    else if (Field == "pretrain_lr")
      floatField(Meta.PretrainLearningRate);
    else if (Field == "finetune_steps")
      intField(Meta.FinetuneSteps);
    else if (Field == "finetune_lr")
      floatField(Meta.FinetuneLearningRate);
    else if (Field == "batch_size")
      intField(Meta.BatchSize);
    else if (Field == "momentum")
      floatField(Meta.Momentum);
    else if (Field == "weight_decay")
      floatField(Meta.WeightDecay);
    else if (Field == "eval_every")
      intField(Meta.EvalEvery);
    else if (Field == "eval_threads")
      intField(Meta.EvalThreads);
    else if (Field == "nodes")
      intField(Meta.Nodes);
    else if (Field == "seed") {
      Result<long long> Seed = Msg.intOr(Field, 7);
      if (!Seed)
        FieldError = Seed.takeError();
      else
        Meta.Seed = static_cast<uint64_t>(*Seed);
    } else
      return Error::failure("unknown meta-data key '" + Field + "'");
    if (FieldError)
      return FieldError;
  }
  if (Meta.BatchSize <= 0 || Meta.Nodes <= 0 || Meta.EvalEvery <= 0 ||
      Meta.EvalThreads <= 0)
    return Error::failure("batch_size, nodes, eval_every and eval_threads "
                          "must be positive");
  return Meta;
}

std::string wootz::printTrainMeta(const TrainMeta &Meta) {
  std::string Out;
  Out += "full_model_steps: " + std::to_string(Meta.FullModelSteps) + "\n";
  Out += "full_model_lr: " + formatDouble(Meta.FullModelLearningRate, 4) +
         "\n";
  Out += "early_stop_patience: " + std::to_string(Meta.EarlyStopPatience) +
         "\n";
  Out += "lr_decay_every: " + std::to_string(Meta.LrDecayEvery) + "\n";
  Out += "lr_decay_factor: " + formatDouble(Meta.LrDecayFactor, 4) + "\n";
  Out += "pretrain_steps: " + std::to_string(Meta.PretrainSteps) + "\n";
  Out += "pretrain_lr: " + formatDouble(Meta.PretrainLearningRate, 4) + "\n";
  Out += "finetune_steps: " + std::to_string(Meta.FinetuneSteps) + "\n";
  Out += "finetune_lr: " + formatDouble(Meta.FinetuneLearningRate, 4) + "\n";
  Out += "batch_size: " + std::to_string(Meta.BatchSize) + "\n";
  Out += "momentum: " + formatDouble(Meta.Momentum, 4) + "\n";
  Out += "weight_decay: " + formatDouble(Meta.WeightDecay, 6) + "\n";
  Out += "eval_every: " + std::to_string(Meta.EvalEvery) + "\n";
  Out += "eval_threads: " + std::to_string(Meta.EvalThreads) + "\n";
  Out += "nodes: " + std::to_string(Meta.Nodes) + "\n";
  Out += "seed: " + std::to_string(Meta.Seed) + "\n";
  return Out;
}
