//===- compiler/Multiplexing.h - The multiplexing model ---------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime form of the paper's *multiplexing model* (§6.2): one
/// builder that, depending on `mode_to_use` and `prune_info`, materializes
///
///  * BuildMode::FullModel — the original network;
///  * BuildMode::FineTune  — a pruned network for a configuration; or
///  * BuildMode::PreTrain  — the Teacher-Student structure: the frozen
///    full model with the requested pruned tuning blocks attached side by
///    side, each fed by the full model's activation at the block's input
///    boundary and targeting its unpruned counterpart's output activation
///    (Figure 5 a/b).
///
/// Nodes are created as "<prefix>/<layer>"; the dataset input placeholder
/// is shared under the model's input name so teacher and students see the
/// same batch.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_COMPILER_MULTIPLEXING_H
#define WOOTZ_COMPILER_MULTIPLEXING_H

#include "src/identifier/TuningBlock.h"
#include "src/nn/Graph.h"
#include "src/pruning/ChannelPlan.h"

#include <string>
#include <vector>

namespace wootz {

/// The paper's mode_to_use argument.
enum class BuildMode { FullModel, PreTrain, FineTune };

/// The paper's prune_info argument: a configuration for FineTune builds,
/// a tuning-block set for PreTrain builds.
struct PruneInfo {
  PruneConfig Config;
  std::vector<TuningBlock> Blocks;
};

/// Where a pruned tuning block plugs into the teacher, for wiring the
/// reconstruction losses.
struct BlockPort {
  TuningBlock Block;
  std::string Prefix;     ///< Node prefix of the student block.
  std::string StudentOut; ///< Student output node (pruned activations).
  std::string TeacherOut; ///< Counterpart node in the full model.
  /// Layer names (spec-relative) the block instantiated.
  std::vector<std::string> Layers;
};

/// What a build produced.
struct BuildResult {
  std::string InputNode;
  /// Classifier output ("<prefix>/logits"); empty for PreTrain builds.
  std::string LogitsNode;
  /// One port per pruned block (PreTrain builds only).
  std::vector<BlockPort> Ports;
};

/// A compiled model: builds any of the three modes into a Graph.
class MultiplexingModel {
public:
  explicit MultiplexingModel(ModelSpec Spec) : Spec(std::move(Spec)) {}

  const ModelSpec &spec() const { return Spec; }

  /// Materializes \p Mode into \p Target under \p Prefix. For PreTrain
  /// the full model is built (frozen) under \p Prefix and each block of
  /// \p Info under "<Prefix>.bK". Parameters are freshly initialized
  /// from \p Generator; load real weights afterwards.
  Result<BuildResult> build(Graph &Target, BuildMode Mode,
                            const PruneInfo &Info,
                            const std::string &Prefix,
                            Rng &Generator) const;

  /// The layer names (spec-relative) belonging to the modules of
  /// \p Block.
  std::vector<std::string> blockLayerNames(const TuningBlock &Block) const;

private:
  /// Adds the layers [FirstLayer, LastLayer] (all layers when the range
  /// is the whole model) under \p Prefix, resolving any bottom outside
  /// the range via \p ExternalPrefix.
  Result<std::string> buildRange(Graph &Target, const ChannelPlan &Plan,
                                 int FirstLayer, int LastLayer,
                                 const std::string &Prefix,
                                 const std::string &ExternalPrefix,
                                 Rng &Generator) const;

  ModelSpec Spec;
};

} // namespace wootz

#endif // WOOTZ_COMPILER_MULTIPLEXING_H
