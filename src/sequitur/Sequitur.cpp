//===- sequitur/Sequitur.cpp ------------------------------------------------===//
//
// The builder follows the reference implementation structure from
// Nevill-Manning & Witten's paper and released code: a doubly linked list
// of symbols per rule (with a guard node), a digram index, and the two
// invariants restored eagerly on every append. The digram index is a
// std::map keyed on the symbol pair, which keeps behaviour fully
// deterministic across platforms.
//
//===----------------------------------------------------------------------===//

#include "src/sequitur/Sequitur.h"

#include <cassert>
#include <set>

using namespace wootz;

namespace {

struct SeqRule;

/// One list node: a guard, a terminal, or a nonterminal (rule reference).
struct SeqNode {
  SeqNode *Prev = nullptr;
  SeqNode *Next = nullptr;
  SeqRule *Owner = nullptr; ///< Non-null only on guard nodes.
  SeqRule *Ref = nullptr;   ///< Non-null only on nonterminal symbols.
  int Terminal = -1;

  bool isGuard() const { return Owner != nullptr; }
  bool isNonterminal() const { return Ref != nullptr; }
};

struct SeqRule {
  long Id = 0;
  int UseCount = 0;
  SeqNode Guard;

  SeqRule() {
    Guard.Owner = this;
    Guard.Prev = &Guard;
    Guard.Next = &Guard;
  }

  SeqNode *first() { return Guard.Next; }
  SeqNode *last() { return Guard.Prev; }
};

/// Digram key: (kind, value) per symbol, kind 1 for rules.
using SymbolKey = std::pair<int, long>;
using DigramKey = std::pair<SymbolKey, SymbolKey>;

SymbolKey symbolKey(const SeqNode *N) {
  if (N->isNonterminal())
    return {1, N->Ref->Id};
  return {0, N->Terminal};
}

bool sameSymbol(const SeqNode *A, const SeqNode *B) {
  return symbolKey(A) == symbolKey(B);
}

} // namespace

struct Sequitur::Impl {
  SeqRule *Start = nullptr;
  std::map<DigramKey, SeqNode *> Table;
  std::set<SeqRule *> Alive;
  long NextRuleId = 0;

  Impl() { Start = newRule(); }

  ~Impl() {
    for (SeqRule *R : Alive) {
      SeqNode *N = R->first();
      while (!N->isGuard()) {
        SeqNode *Next = N->Next;
        delete N;
        N = Next;
      }
      delete R;
    }
  }

  SeqRule *newRule() {
    auto *R = new SeqRule();
    R->Id = NextRuleId++;
    Alive.insert(R);
    return R;
  }

  DigramKey keyAt(const SeqNode *N) const {
    return {symbolKey(N), symbolKey(N->Next)};
  }

  /// Drops the index entry for the digram starting at \p N, if it is the
  /// recorded occurrence.
  void deleteDigram(SeqNode *N) {
    if (N->isGuard() || N->Next->isGuard())
      return;
    auto It = Table.find(keyAt(N));
    if (It != Table.end() && It->second == N)
      Table.erase(It);
  }

  /// Links \p Left -> \p Right, maintaining the digram index. Mirrors
  /// the reference implementation including its handling of overlapping
  /// triples (e.g. "...aaa...": only the later pair is indexed, so when
  /// relinking we must re-index the earlier one).
  void join(SeqNode *Left, SeqNode *Right) {
    if (Left->Next) {
      deleteDigram(Left);
      if (Right->Prev && Right->Next && sameSymbol(Right, Right->Prev) &&
          sameSymbol(Right, Right->Next))
        Table[keyAt(Right)] = Right;
      if (Left->Prev && Left->Next && sameSymbol(Left, Left->Next) &&
          sameSymbol(Left, Left->Prev))
        Table[keyAt(Left->Prev)] = Left->Prev;
    }
    Left->Next = Right;
    Right->Prev = Left;
  }

  void insertAfter(SeqNode *At, SeqNode *N) {
    join(N, At->Next);
    join(At, N);
  }

  /// Unlinks and frees \p N, releasing its digram and rule reference.
  void deleteNode(SeqNode *N) {
    assert(!N->isGuard() && "guards are owned by their rule");
    join(N->Prev, N->Next);
    deleteDigram(N);
    if (N->isNonterminal())
      --N->Ref->UseCount;
    delete N;
  }

  SeqNode *makeNonterminal(SeqRule *R) {
    auto *N = new SeqNode();
    N->Ref = R;
    ++R->UseCount;
    return N;
  }

  SeqNode *makeCopy(const SeqNode *Source) {
    if (Source->isNonterminal())
      return makeNonterminal(Source->Ref);
    auto *N = new SeqNode();
    N->Terminal = Source->Terminal;
    return N;
  }

  /// Checks the digram starting at \p N against the uniqueness
  /// invariant; returns true if the digram matched an existing one.
  bool check(SeqNode *N) {
    if (N->isGuard() || N->Next->isGuard())
      return false;
    auto It = Table.find(keyAt(N));
    if (It == Table.end()) {
      Table[keyAt(N)] = N;
      return false;
    }
    // Overlapping occurrences ("aaa") are left alone.
    if (It->second->Next != N)
      match(N, It->second);
    return true;
  }

  /// Restores digram uniqueness: \p New duplicates \p Found.
  void match(SeqNode *New, SeqNode *Found) {
    SeqRule *R;
    if (Found->Prev->isGuard() && Found->Next->Next->isGuard()) {
      // The found occurrence is a whole rule body: reuse that rule.
      R = Found->Prev->Owner;
      substitute(New, R);
    } else {
      R = newRule();
      insertAfter(R->last(), makeCopy(New));
      insertAfter(R->last(), makeCopy(New->Next));
      substitute(Found, R);
      substitute(New, R);
      Table[keyAt(R->first())] = R->first();
    }
    // Rule utility: inline a rule that is now used only once.
    if (R->first()->isNonterminal() && R->first()->Ref->UseCount == 1)
      expand(R->first());
  }

  /// Replaces the digram starting at \p D with a reference to \p R.
  void substitute(SeqNode *D, SeqRule *R) {
    SeqNode *Prev = D->Prev;
    deleteNode(D->Next);
    deleteNode(D);
    SeqNode *N = makeNonterminal(R);
    insertAfter(Prev, N);
    if (!check(Prev))
      check(N);
  }

  /// Inlines the once-used rule referenced by \p N in place.
  void expand(SeqNode *N) {
    assert(N->isNonterminal() && N->Ref->UseCount == 1 &&
           "expand requires a once-used rule reference");
    SeqRule *R = N->Ref;
    SeqNode *Left = N->Prev;
    SeqNode *Right = N->Next;
    SeqNode *First = R->first();
    SeqNode *Last = R->last();

    deleteDigram(N);
    delete N;
    Alive.erase(R);
    delete R;

    join(Left, First);
    join(Last, Right);
    Table[keyAt(Last)] = Last;
  }
};

Sequitur::Sequitur() : Implementation(new Impl()) {}

Sequitur::~Sequitur() { delete Implementation; }

void Sequitur::append(int Terminal) {
  assert(Terminal >= 0 && "terminals must be non-negative");
  Impl &I = *Implementation;
  auto *N = new SeqNode();
  N->Terminal = Terminal;
  I.insertAfter(I.Start->last(), N);
  if (I.Start->first() != N)
    I.check(N->Prev);
}

Grammar Sequitur::grammar() const {
  Impl &I = *Implementation;
  Grammar G;
  std::map<SeqRule *, int> Ids;

  // Depth-first discovery from the start rule; reverse post-order gives a
  // topological order (parents before children) for the frequency pass.
  std::vector<SeqRule *> Order;
  std::vector<SeqRule *> Stack{I.Start};
  std::set<SeqRule *> Seen{I.Start};
  while (!Stack.empty()) {
    SeqRule *R = Stack.back();
    Stack.pop_back();
    Order.push_back(R);
    for (SeqNode *N = R->first(); !N->isGuard(); N = N->Next)
      if (N->isNonterminal() && Seen.insert(N->Ref).second)
        Stack.push_back(N->Ref);
  }
  // Discovery order is already parents-before-first-reference; to get a
  // true topological order, sort by creation id (children are always
  // created after... not guaranteed after expansions) — instead compute
  // frequencies iteratively below, which is exact for DAGs.
  for (size_t Index = 0; Index < Order.size(); ++Index)
    Ids[Order[Index]] = static_cast<int>(Index);

  for (SeqRule *R : Order) {
    GrammarRule Rule;
    Rule.Id = Ids[R];
    for (SeqNode *N = R->first(); !N->isGuard(); N = N->Next) {
      GrammarSymbol Symbol;
      if (N->isNonterminal()) {
        Symbol.IsRule = true;
        Symbol.Value = Ids[N->Ref];
      } else {
        Symbol.Value = N->Terminal;
      }
      Rule.Body.push_back(Symbol);
    }
    G.Rules.push_back(std::move(Rule));
  }

  // Frequency propagation over the DAG: start rule occurs once; each
  // reference contributes the parent's frequency. Kahn-style pass over
  // reference counts guarantees each rule is finalized before its
  // children are charged.
  const size_t RuleCount = G.Rules.size();
  std::vector<int> PendingParents(RuleCount, 0);
  for (const GrammarRule &Rule : G.Rules)
    for (const GrammarSymbol &Symbol : Rule.Body)
      if (Symbol.IsRule)
        ++PendingParents[Symbol.Value];
  std::vector<long long> Frequency(RuleCount, 0);
  Frequency[0] = 1;
  std::vector<int> Ready{0};
  while (!Ready.empty()) {
    const int Current = Ready.back();
    Ready.pop_back();
    for (const GrammarSymbol &Symbol : G.Rules[Current].Body) {
      if (!Symbol.IsRule)
        continue;
      Frequency[Symbol.Value] += Frequency[Current];
      if (--PendingParents[Symbol.Value] == 0)
        Ready.push_back(Symbol.Value);
    }
  }
  for (size_t Index = 0; Index < RuleCount; ++Index)
    G.Rules[Index].Frequency = Frequency[Index];
  return G;
}

std::vector<int> Grammar::expand(int RuleId) const {
  assert(RuleId >= 0 && RuleId < static_cast<int>(Rules.size()) &&
         "rule id out of range");
  std::vector<int> Terminals;
  for (const GrammarSymbol &Symbol : Rules[RuleId].Body) {
    if (!Symbol.IsRule) {
      Terminals.push_back(Symbol.Value);
      continue;
    }
    const std::vector<int> Nested = expand(Symbol.Value);
    Terminals.insert(Terminals.end(), Nested.begin(), Nested.end());
  }
  return Terminals;
}

int Grammar::expansionLength(int RuleId) const {
  return static_cast<int>(expand(RuleId).size());
}

std::string
Grammar::str(const std::map<int, std::string> &TerminalNames) const {
  std::string Out;
  for (const GrammarRule &Rule : Rules) {
    Out += "r" + std::to_string(Rule.Id) + " (freq " +
           std::to_string(Rule.Frequency) + ") ->";
    for (const GrammarSymbol &Symbol : Rule.Body) {
      Out += ' ';
      if (Symbol.IsRule) {
        Out += "r" + std::to_string(Symbol.Value);
        continue;
      }
      auto It = TerminalNames.find(Symbol.Value);
      Out += It == TerminalNames.end() ? std::to_string(Symbol.Value)
                                       : It->second;
    }
    Out += '\n';
  }
  return Out;
}
