//===- sequitur/Sequitur.h - Linear-time grammar compression ----------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sequitur (Nevill-Manning & Witten, 1997): an online, linear-time
/// algorithm that infers a context-free grammar from a symbol sequence by
/// maintaining two invariants — *digram uniqueness* (no pair of adjacent
/// symbols appears twice) and *rule utility* (every rule is used at least
/// twice). Wootz's hierarchical tuning block identifier (§5) runs
/// Sequitur over the concatenated layer sequences of the promising
/// subspace and mines the resulting grammar for frequently shared layer
/// sequences.
///
/// Terminals are non-negative integers supplied by the caller; the
/// builder is incremental (append one symbol at a time) and the final
/// grammar is extracted as plain data with per-rule corpus frequencies.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SEQUITUR_SEQUITUR_H
#define WOOTZ_SEQUITUR_SEQUITUR_H

#include <map>
#include <string>
#include <vector>

namespace wootz {

/// One symbol of an extracted grammar body: either a terminal or a
/// reference to another rule.
struct GrammarSymbol {
  bool IsRule = false;
  /// Terminal value, or rule id when IsRule.
  int Value = 0;

  bool operator==(const GrammarSymbol &Other) const {
    return IsRule == Other.IsRule && Value == Other.Value;
  }
};

/// One extracted rule. Rule 0 is the start rule (the whole sequence).
struct GrammarRule {
  int Id = 0;
  std::vector<GrammarSymbol> Body;
  /// Number of times this rule's expansion occurs in the corpus: 1 for
  /// the start rule, and for every other rule the sum over its parents of
  /// parent frequency times occurrence count (Figure 4's "Freq" column).
  long long Frequency = 0;
};

/// The extracted grammar: rules indexed by id, rule 0 first.
struct Grammar {
  std::vector<GrammarRule> Rules;

  /// Fully expands \p RuleId back into terminals.
  std::vector<int> expand(int RuleId) const;

  /// Number of terminals in the expansion of \p RuleId.
  int expansionLength(int RuleId) const;

  /// Renders the grammar like Figure 4 ("r1 -> 2 r3 ...") with the given
  /// terminal formatter.
  std::string str(
      const std::map<int, std::string> &TerminalNames = {}) const;
};

/// Incremental Sequitur builder.
class Sequitur {
public:
  Sequitur();
  ~Sequitur();

  Sequitur(const Sequitur &) = delete;
  Sequitur &operator=(const Sequitur &) = delete;

  /// Appends one terminal (must be non-negative) to the sequence,
  /// restoring both invariants.
  void append(int Terminal);

  /// Extracts the grammar (with frequencies). The builder can keep
  /// appending afterwards; extraction is non-destructive.
  Grammar grammar() const;

private:
  struct Impl;
  Impl *Implementation;
};

} // namespace wootz

#endif // WOOTZ_SEQUITUR_SEQUITUR_H
