//===- tensor/Kernels.h - Blocked compute-kernel engine --------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The high-performance engine under the wootz::gemm entry points and the
/// Conv2D batch loops: cache-blocked, register-tiled GEMM with packed
/// panels, a fused im2col+pack convolution path, a process-wide kernel
/// worker pool, and per-thread reusable pack buffers.
///
/// Threading model. Kernels are threaded at two levels:
///  - inter-op: Conv2D::forward/backward parallelize over the batch
///    dimension via kernelParallelFor();
///  - intra-op: a large single GEMM parallelizes over its row-panel
///    (MC) blocks, and convForwardFused() over (sample, column-chunk)
///    tasks, also via kernelParallelFor().
/// Whether a call actually fans out is decided per problem by a
/// measured-cost heuristic (kernelCostModel() / chooseConvSplit()): the
/// pool-handoff latency and the achievable parallel speedup are
/// calibrated once per worker count at startup, and a call is only split
/// when the measured model predicts the split wins. kernelParallelFor()
/// never nests: a body that itself calls kernelParallelFor() (e.g. a
/// GEMM issued from inside the batch-parallel convolution) runs that
/// inner loop inline on the calling worker, which keeps the fixed-size
/// pool deadlock-free by construction.
///
/// Determinism guarantee. Work is split into chunks whose boundaries
/// depend only on the problem size, never on the worker count, and every
/// floating-point reduction is performed in chunk order. The K summation
/// order of every output element is fixed (KC slices in order, sequential
/// k within the micro-kernel) no matter how the M/N space is chunked.
/// Therefore the same inputs produce bit-identical outputs for any
/// setKernelWorkers() value and any split decision, including fully
/// serial execution.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TENSOR_KERNELS_H
#define WOOTZ_TENSOR_KERNELS_H

#include "src/support/Aligned.h"

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace wootz {

/// Parameters of a 2-D convolution (square kernel, same stride/pad in
/// both spatial dimensions). Lives with the kernels so the fused
/// im2col+pack path can do its stride arithmetic without depending on
/// the higher-level op layer.
struct ConvGeometry {
  int InChannels = 0;
  int OutChannels = 0;
  int KernelSize = 1;
  int Stride = 1;
  int Pad = 0;

  /// Output spatial extent for an input extent of \p In.
  int outExtent(int In) const {
    return (In + 2 * Pad - KernelSize) / Stride + 1;
  }
};

/// Sets the number of worker threads the compute kernels may use,
/// process-wide. 1 means serial execution (the default); 0 means one
/// worker per hardware thread (the same convention as PipelineOptions::
/// Workers). Not safe to call while kernels are executing on other
/// threads. The initial value can be overridden with the
/// WOOTZ_KERNEL_WORKERS environment variable.
void setKernelWorkers(unsigned Count);

/// The resolved kernel worker count (never 0: a hardware-concurrency
/// request is reported as the concrete thread count).
unsigned kernelWorkers();

/// Parses a WOOTZ_KERNEL_WORKERS value: a non-negative integer no larger
/// than 4096, where 0 requests one worker per hardware thread. Returns
/// the resolved worker count. Rejects negative, non-numeric, trailing-
/// garbage, and out-of-range input: \p Warning (if non-null) receives a
/// one-line description and the result falls back to 1 (serial), never
/// silently wrapping through unsigned. Exported for tests.
unsigned parseKernelWorkers(const char *Text, std::string *Warning);

/// True while the calling thread is executing inside a
/// kernelParallelFor() body; used by the kernels to run nested parallel
/// loops inline.
bool inKernelParallelRegion();

/// Runs \p Body(Begin, End) over [0, Count) in chunks of at most
/// \p Grain indices on the kernel worker pool and waits. Chunk
/// boundaries depend only on \p Count and \p Grain (see the determinism
/// guarantee above). Runs inline when the pool is serial, when there is
/// a single chunk, or when called from inside another
/// kernelParallelFor() body.
void kernelParallelFor(size_t Count, size_t Grain,
                       const std::function<void(size_t, size_t)> &Body);

//===----------------------------------------------------------------------===//
// Measured-cost threading heuristic
//===----------------------------------------------------------------------===//

/// What one startup calibration measured about the current worker
/// configuration. All figures are medians of repeated timings, so a
/// model is stable across calls; it is computed lazily once per worker
/// count and then cached.
struct KernelCostModel {
  /// Worker count this model was calibrated for.
  unsigned Workers = 1;
  /// Round-trip latency of one kernelParallelFor() handoff to the pool
  /// (enqueue + wake + join), in seconds. 0 when serial.
  double DispatchSeconds = 0.0;
  /// Single-thread throughput of the blocked GEMM engine, in seconds
  /// per floating-point operation.
  double SecondsPerFlop = 0.0;
  /// Measured wall-clock speedup of conv-sized GEMM tasks run on the
  /// pool versus inline. On an oversubscribed host (more workers than
  /// cores) this comes out below 1, which is exactly what makes the
  /// heuristic fall back to serial there.
  double ParallelSpeedup = 1.0;
};

/// The cached cost model for the current kernelWorkers() setting,
/// calibrating it first if this worker count has not been measured yet
/// (a few tens of milliseconds, once per process per worker count).
KernelCostModel kernelCostModel();

/// True when fanning \p Flops of blocked-GEMM work out to the pool is
/// predicted to beat running it inline, per the calibrated cost model:
/// the time saved by parallel execution must clear the dispatch latency
/// with margin. Always false for a serial pool; true inside an existing
/// parallel region (nested loops run inline anyway, so the call is
/// free either way).
bool parallelWorthwhile(double Flops);

/// How convForwardFused() distributes one batched convolution.
enum class ConvSplitKind {
  Serial,  ///< All tasks inline on the calling thread.
  InterOp, ///< One task per sample (batch parallelism).
  IntraOp, ///< Samples additionally split into column chunks.
};

/// A concrete split decision: tasks are (sample, column-chunk) pairs;
/// chunk boundaries depend only on the problem size, so any split of
/// the same problem produces bit-identical outputs.
struct ConvSplit {
  ConvSplitKind Kind = ConvSplitKind::Serial;
  /// Output columns per task, NR-aligned except for the trailing chunk;
  /// equal to the whole per-sample column count unless Kind is IntraOp.
  int ColumnChunk = 0;
  /// Total task count (Batch x chunks per sample).
  size_t Tasks = 1;
};

/// Picks the split for a batch of \p Batch conv GEMMs of M x K x
/// \p ColCols each, using the calibrated cost model: serial when the
/// problem cannot amortize a pool handoff (or the pool cannot beat
/// inline execution on this host), inter-op when the batch alone loads
/// the pool, intra-op column chunking when it does not.
ConvSplit chooseConvSplit(int Batch, int M, int K, int ColCols);

/// Number of names in the ConvSplitKind enum, and a printable name per
/// kind (bench reporting).
const char *convSplitKindName(ConvSplitKind Kind);

//===----------------------------------------------------------------------===//
// Scratch and packed operands
//===----------------------------------------------------------------------===//

/// A growable cache-line-aligned float buffer. ensure() never shrinks,
/// so steady-state kernel calls do not allocate.
class AlignedBuffer {
public:
  /// Returns a pointer to at least \p Count floats. Contents of newly
  /// grown storage are zero; previously handed-out contents survive
  /// until the next growth.
  float *ensure(size_t Count) {
    if (Storage.size() < Count)
      Storage.resize(Count);
    return Storage.data();
  }

  size_t capacity() const { return Storage.size(); }

private:
  std::vector<float, AlignedAllocator<float>> Storage;
};

/// The per-thread scratch pool of the kernel layer: GEMM pack panels and
/// the backward-path column gradients. Keyed by thread (thread_local),
/// so concurrent kernel workers never contend and repeated kernel calls
/// on one thread reuse the same allocations. The eval path needs no
/// column buffer at all: convForwardFused() packs panels straight from
/// the image.
struct KernelScratch {
  AlignedBuffer PackA;    ///< Packed MC x KC panel of A.
  AlignedBuffer PackB;    ///< Packed KC x NC panel of B.
  AlignedBuffer GradCols; ///< Per-sample column gradients (backward).

  /// The calling thread's scratch instance.
  static KernelScratch &forCurrentThread();
};

/// A whole GEMM operand pre-packed into the blocked engine's panel
/// layout. Packing normally happens per call into per-thread scratch;
/// a model that is frozen once and run many times (wootz::plan, and the
/// serve path through PackedWeightsCache) instead packs each weight
/// matrix once and hands the panels to every subsequent product, which
/// removes the per-request packing traffic entirely. The layout mirrors
/// the engine's block iteration order exactly, so a packed product
/// performs the same floating-point operations in the same order as a
/// scratch-packed one and the results are bit-identical.
struct PackedPanels {
  std::vector<float, AlignedAllocator<float>> Data;
  int Extent = 0; ///< Logical M (A operand) or N (B operand).
  int Depth = 0;  ///< Logical K.

  bool empty() const { return Data.empty(); }
};

/// Packs a full M x K A operand (addressed as A[i * RowStride +
/// k * ColStride]) into KC-slice-major, MC-block, MR-panel order.
PackedPanels packGemmA(const float *A, size_t RowStride, size_t ColStride,
                       int M, int K);

/// Packs a full K x N B operand (addressed as B[k * RowStride +
/// j * ColStride]) into NC-block-major, KC-slice, NR-panel order.
PackedPanels packGemmB(const float *B, size_t RowStride, size_t ColStride,
                       int K, int N);

//===----------------------------------------------------------------------===//
// Fused im2col+pack convolution forward
//===----------------------------------------------------------------------===//

/// Computes the eval-mode convolution forward for a whole NCHW batch:
/// for each sample, Out = Weights (OutChannels x ColRows) times the
/// sample's im2col matrix (ColRows x OutH*OutW) plus optional \p Bias —
/// without ever materializing the im2col matrix. B panels are packed
/// directly from \p Images with stride arithmetic over \p G, so the
/// only im2col-shaped traffic left is the packed panel itself (which
/// the GEMM needed anyway). The work is distributed per
/// chooseConvSplit() — or per \p ForcedSplit when non-null (tests,
/// bench) — and the output is bit-identical for every split and worker
/// count, and bit-identical to a blocked GEMM over a materialized
/// im2col matrix.
///
/// \p WeightsPre, when non-null, supplies the weight matrix pre-packed
/// by packGemmA (PackedWeightsCache / plan freeze); otherwise panels are
/// packed per task from \p Weights (row-major OutChannels x ColRows,
/// i.e. OIHW flattened). \p FuseReLU clamps each task's output region
/// to [0, inf) as an epilogue.
void convForwardFused(const float *Images, int Batch, int Height,
                      int Width, const ConvGeometry &G,
                      const PackedPanels *WeightsPre, const float *Weights,
                      const float *Bias, bool FuseReLU, float *Out,
                      const ConvSplit *ForcedSplit = nullptr);

namespace detail {

/// The blocked GEMM engine: C (MxN, row-major, leading dimension N)
/// gets A * B where the operands are addressed through explicit strides,
/// A(i, k) = A[i * ARowStride + k * AColStride] and B(k, j) =
/// B[k * BRowStride + j * BColStride]; the transpose entry points are
/// stride permutations of this one routine. When \p Accumulate is false
/// C is overwritten, and \p RowBias (if non-null, length M) is fused
/// into the first write of every element; with \p Accumulate true the
/// product is added to C and \p RowBias must be null.
void blockedGemm(const float *A, size_t ARowStride, size_t AColStride,
                 const float *B, size_t BRowStride, size_t BColStride,
                 float *C, int M, int K, int N, bool Accumulate,
                 const float *RowBias);

/// blockedGemm() with either operand optionally supplied pre-packed
/// (packGemmA / packGemmB). A null \p APre / \p BPre falls back to
/// packing that operand per call from the corresponding raw pointer; a
/// non-null one makes the raw pointer and strides of that operand
/// unused (pass null / 0).
void blockedGemmPacked(const PackedPanels *APre, const float *A,
                       size_t ARowStride, size_t AColStride,
                       const PackedPanels *BPre, const float *B,
                       size_t BRowStride, size_t BColStride, float *C,
                       int M, int K, int N, bool Accumulate,
                       const float *RowBias);

} // namespace detail

} // namespace wootz

#endif // WOOTZ_TENSOR_KERNELS_H
