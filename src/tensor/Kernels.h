//===- tensor/Kernels.h - Blocked compute-kernel engine --------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The high-performance engine under the wootz::gemm entry points and the
/// Conv2D batch loops: cache-blocked, register-tiled GEMM with packed
/// panels, a process-wide kernel worker pool, and per-thread reusable
/// pack buffers.
///
/// Threading model. Kernels are threaded at two levels:
///  - inter-op: Conv2D::forward/backward parallelize over the batch
///    dimension via kernelParallelFor();
///  - intra-op: a large single GEMM parallelizes over its row-panel
///    (MC) blocks, also via kernelParallelFor().
/// kernelParallelFor() never nests: a body that itself calls
/// kernelParallelFor() (e.g. a GEMM issued from inside the batch-parallel
/// convolution) runs that inner loop inline on the calling worker, which
/// keeps the fixed-size pool deadlock-free by construction.
///
/// Determinism guarantee. Work is split into chunks whose boundaries
/// depend only on the problem size, never on the worker count, and every
/// floating-point reduction is performed in chunk order. Therefore the
/// same inputs produce bit-identical outputs for any setKernelWorkers()
/// value, including fully serial execution.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TENSOR_KERNELS_H
#define WOOTZ_TENSOR_KERNELS_H

#include "src/support/Aligned.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace wootz {

/// Sets the number of worker threads the compute kernels may use,
/// process-wide. 1 means serial execution (the default); 0 means one
/// worker per hardware thread (the same convention as PipelineOptions::
/// Workers). Not safe to call while kernels are executing on other
/// threads. The initial value can be overridden with the
/// WOOTZ_KERNEL_WORKERS environment variable.
void setKernelWorkers(unsigned Count);

/// The resolved kernel worker count (never 0: a hardware-concurrency
/// request is reported as the concrete thread count).
unsigned kernelWorkers();

/// True while the calling thread is executing inside a
/// kernelParallelFor() body; used by the kernels to run nested parallel
/// loops inline.
bool inKernelParallelRegion();

/// Runs \p Body(Begin, End) over [0, Count) in chunks of at most
/// \p Grain indices on the kernel worker pool and waits. Chunk
/// boundaries depend only on \p Count and \p Grain (see the determinism
/// guarantee above). Runs inline when the pool is serial, when there is
/// a single chunk, or when called from inside another
/// kernelParallelFor() body.
void kernelParallelFor(size_t Count, size_t Grain,
                       const std::function<void(size_t, size_t)> &Body);

/// A growable cache-line-aligned float buffer. ensure() never shrinks,
/// so steady-state kernel calls do not allocate.
class AlignedBuffer {
public:
  /// Returns a pointer to at least \p Count floats. Contents of newly
  /// grown storage are zero; previously handed-out contents survive
  /// until the next growth.
  float *ensure(size_t Count) {
    if (Storage.size() < Count)
      Storage.resize(Count);
    return Storage.data();
  }

  size_t capacity() const { return Storage.size(); }

private:
  std::vector<float, AlignedAllocator<float>> Storage;
};

/// The per-thread scratch pool of the kernel layer: GEMM pack panels and
/// the convolution column buffers. Keyed by thread (thread_local), so
/// concurrent kernel workers never contend and repeated kernel calls on
/// one thread reuse the same allocations.
struct KernelScratch {
  AlignedBuffer PackA;    ///< Packed MC x KC panel of A.
  AlignedBuffer PackB;    ///< Packed KC x NC panel of B.
  AlignedBuffer Columns;  ///< Per-sample im2col expansion (inference).
  AlignedBuffer GradCols; ///< Per-sample column gradients (backward).

  /// The calling thread's scratch instance.
  static KernelScratch &forCurrentThread();
};

/// A whole GEMM operand pre-packed into the blocked engine's panel
/// layout. Packing normally happens per call into per-thread scratch;
/// a model that is frozen once and run many times (wootz::plan) instead
/// packs each weight matrix once at freeze time and hands the panels to
/// every subsequent product, which removes the per-request packing
/// traffic entirely. The layout mirrors the engine's block iteration
/// order exactly, so a packed product performs the same floating-point
/// operations in the same order as a scratch-packed one and the results
/// are bit-identical.
struct PackedPanels {
  std::vector<float, AlignedAllocator<float>> Data;
  int Extent = 0; ///< Logical M (A operand) or N (B operand).
  int Depth = 0;  ///< Logical K.

  bool empty() const { return Data.empty(); }
};

/// Packs a full M x K A operand (addressed as A[i * RowStride +
/// k * ColStride]) into KC-slice-major, MC-block, MR-panel order.
PackedPanels packGemmA(const float *A, size_t RowStride, size_t ColStride,
                       int M, int K);

/// Packs a full K x N B operand (addressed as B[k * RowStride +
/// j * ColStride]) into NC-block-major, KC-slice, NR-panel order.
PackedPanels packGemmB(const float *B, size_t RowStride, size_t ColStride,
                       int K, int N);

namespace detail {

/// The blocked GEMM engine: C (MxN, row-major, leading dimension N)
/// gets A * B where the operands are addressed through explicit strides,
/// A(i, k) = A[i * ARowStride + k * AColStride] and B(k, j) =
/// B[k * BRowStride + j * BColStride]; the transpose entry points are
/// stride permutations of this one routine. When \p Accumulate is false
/// C is overwritten, and \p RowBias (if non-null, length M) is fused
/// into the first write of every element; with \p Accumulate true the
/// product is added to C and \p RowBias must be null.
void blockedGemm(const float *A, size_t ARowStride, size_t AColStride,
                 const float *B, size_t BRowStride, size_t BColStride,
                 float *C, int M, int K, int N, bool Accumulate,
                 const float *RowBias);

/// blockedGemm() with either operand optionally supplied pre-packed
/// (packGemmA / packGemmB). A null \p APre / \p BPre falls back to
/// packing that operand per call from the corresponding raw pointer; a
/// non-null one makes the raw pointer and strides of that operand
/// unused (pass null / 0).
void blockedGemmPacked(const PackedPanels *APre, const float *A,
                       size_t ARowStride, size_t AColStride,
                       const PackedPanels *BPre, const float *B,
                       size_t BRowStride, size_t BColStride, float *C,
                       int M, int K, int N, bool Accumulate,
                       const float *RowBias);

} // namespace detail

} // namespace wootz

#endif // WOOTZ_TENSOR_KERNELS_H
