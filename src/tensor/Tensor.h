//===- tensor/Tensor.h - Dense float tensor --------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense row-major float tensor of rank 1-4. Convolutional data uses
/// the NCHW layout (batch, channels, height, width) throughout the
/// library; convolution filters use OIHW (out-channels, in-channels,
/// height, width).
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TENSOR_TENSOR_H
#define WOOTZ_TENSOR_TENSOR_H

#include "src/support/Aligned.h"

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace wootz {

/// Backing storage of a Tensor: cache-line aligned so the compute
/// kernels (tensor/Kernels.h) get aligned vector access.
using TensorStorage = std::vector<float, AlignedAllocator<float>>;

/// The shape of a tensor: between one and four extents.
class Shape {
public:
  Shape() = default;
  Shape(std::initializer_list<int> Dims) : Dims(Dims) { validate(); }
  explicit Shape(std::vector<int> Dims) : Dims(std::move(Dims)) {
    validate();
  }

  /// Number of dimensions.
  int rank() const { return static_cast<int>(Dims.size()); }

  /// Extent of dimension \p Axis.
  int operator[](int Axis) const {
    assert(Axis >= 0 && Axis < rank() && "shape axis out of range");
    return Dims[Axis];
  }

  /// Total element count (product of extents); 0 for an empty shape.
  size_t elementCount() const;

  bool operator==(const Shape &Other) const { return Dims == Other.Dims; }
  bool operator!=(const Shape &Other) const { return !(*this == Other); }

  /// Renders as "[N, C, H, W]" for diagnostics.
  std::string str() const;

private:
  void validate() const {
    assert(!Dims.empty() && Dims.size() <= 4 && "tensor rank must be 1-4");
    for (int Dim : Dims)
      assert(Dim > 0 && "tensor extents must be positive");
    (void)this;
  }

  std::vector<int> Dims;
};

/// A dense float tensor. Copyable; copies are deep.
class Tensor {
public:
  /// Creates an empty (rank-0 placeholder) tensor.
  Tensor() = default;

  /// Creates a zero-filled tensor of the given \p Shape.
  explicit Tensor(Shape Shape)
      : TensorShape(std::move(Shape)),
        Data(TensorShape.elementCount(), 0.0f) {}

  /// Creates a tensor with explicit contents (copied into the aligned
  /// storage); sizes must match.
  Tensor(Shape Shape, const std::vector<float> &Values);

  /// True if this tensor has never been given a shape.
  bool empty() const { return Data.empty(); }

  const Shape &shape() const { return TensorShape; }
  size_t size() const { return Data.size(); }

  float *data() { return Data.data(); }
  const float *data() const { return Data.data(); }

  float &operator[](size_t I) {
    assert(I < Data.size() && "tensor index out of range");
    return Data[I];
  }
  float operator[](size_t I) const {
    assert(I < Data.size() && "tensor index out of range");
    return Data[I];
  }

  /// Element access for rank-4 tensors (NCHW).
  float &at(int N, int C, int H, int W);
  float at(int N, int C, int H, int W) const;

  /// Element access for rank-2 tensors (rows x cols).
  float &at(int Row, int Col);
  float at(int Row, int Col) const;

  /// Sets every element to \p Value.
  void fill(float Value);

  /// Sets every element to zero.
  void zero() { fill(0.0f); }

  /// Reinterprets the tensor with a new shape of equal element count.
  void reshape(Shape NewShape);

  /// Sum of all elements.
  double sum() const;

  /// Mean of all elements; 0 for empty tensors.
  double mean() const;

  /// Square root of the mean squared element.
  double rmsNorm() const;

private:
  Shape TensorShape;
  TensorStorage Data;
};

} // namespace wootz

#endif // WOOTZ_TENSOR_TENSOR_H
