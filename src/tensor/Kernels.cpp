//===- tensor/Kernels.cpp --------------------------------------------------===//
//
// The blocked GEMM engine and the kernel threading substrate. The GEMM
// follows the classic GotoBLAS/BLIS decomposition: loop over NC-wide
// column blocks of C, KC-deep rank-k updates, and MC-tall row panels;
// the operand slices are packed into contiguous aligned panels so the
// innermost MR x NR micro-kernel runs on unit-stride data the compiler
// can keep in vector registers.
//
//===----------------------------------------------------------------------===//

#include "src/tensor/Kernels.h"

#include "src/support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

using namespace wootz;

//===----------------------------------------------------------------------===//
// Kernel worker pool
//===----------------------------------------------------------------------===//

namespace {

std::mutex ConfigMutex;
std::unique_ptr<ThreadPool> KernelPool; ///< Guarded by ConfigMutex.

/// Set while the calling thread executes a kernelParallelFor body;
/// nested kernel loops run inline on that thread.
thread_local bool InKernelRegion = false;

unsigned resolveWorkerRequest(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  const unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware != 0 ? Hardware : 1;
}

/// The configured worker count; initialized from WOOTZ_KERNEL_WORKERS
/// on first use, serial by default. Guarded by ConfigMutex.
unsigned &workerCountLocked() {
  static unsigned Count = [] {
    if (const char *Env = std::getenv("WOOTZ_KERNEL_WORKERS"))
      return resolveWorkerRequest(
          static_cast<unsigned>(std::strtoul(Env, nullptr, 10)));
    return 1u;
  }();
  return Count;
}

} // namespace

void wootz::setKernelWorkers(unsigned Count) {
  const unsigned Resolved = resolveWorkerRequest(Count);
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  unsigned &Current = workerCountLocked();
  if (Current == Resolved)
    return;
  KernelPool.reset(); // Drains; recreated lazily at the new size.
  Current = Resolved;
}

unsigned wootz::kernelWorkers() {
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  return workerCountLocked();
}

bool wootz::inKernelParallelRegion() { return InKernelRegion; }

void wootz::kernelParallelFor(
    size_t Count, size_t Grain,
    const std::function<void(size_t, size_t)> &Body) {
  if (Count == 0)
    return;
  if (Grain == 0)
    Grain = 1;
  const size_t Chunks = (Count + Grain - 1) / Grain;
  ThreadPool *Pool = nullptr;
  if (!InKernelRegion && Chunks > 1) {
    std::lock_guard<std::mutex> Lock(ConfigMutex);
    const unsigned Workers = workerCountLocked();
    if (Workers > 1) {
      if (!KernelPool)
        KernelPool = std::make_unique<ThreadPool>(Workers);
      Pool = KernelPool.get();
    }
  }
  if (!Pool) {
    // Inline, but over the identical chunk decomposition so per-chunk
    // reductions group the same way as in the parallel path.
    const bool Saved = InKernelRegion;
    InKernelRegion = true;
    for (size_t Begin = 0; Begin < Count; Begin += Grain)
      Body(Begin, std::min(Begin + Grain, Count));
    InKernelRegion = Saved;
    return;
  }
  Pool->parallelFor(Count, Grain, [&Body](size_t Begin, size_t End) {
    const bool Saved = InKernelRegion;
    InKernelRegion = true;
    Body(Begin, End);
    InKernelRegion = Saved;
  });
}

KernelScratch &KernelScratch::forCurrentThread() {
  static thread_local KernelScratch Instance;
  return Instance;
}

//===----------------------------------------------------------------------===//
// Blocked GEMM
//===----------------------------------------------------------------------===//

namespace {

// Register tile (micro-kernel) and cache-block extents. MR x NR = 6 x 16
// is the classic shape for 256-bit vectors: 12 accumulator registers
// (6 rows x 2 vectors) plus operand registers fit the 16-register file.
// KC x NR of packed B (~16 KB) lives in L1 across a row sweep; MC x KC
// of packed A (~72 KB) targets L2.
constexpr int MR = 6;
constexpr int NR = 16;
constexpr int MC = 72;
constexpr int KC = 256;
constexpr int NC = 1024;

size_t roundUpTo(int Value, int Multiple) {
  return static_cast<size_t>((Value + Multiple - 1) / Multiple) *
         static_cast<size_t>(Multiple);
}

/// Packs a Rows x Depth slice of A into MR-row panels, K-major within a
/// panel (panel element [k * MR + r]); rows past the edge pad with zeros
/// so the micro-kernel never needs a row-edge case.
void packAPanels(const float *A, size_t RowStride, size_t ColStride,
                 int Rows, int Depth, float *Out) {
  for (int Row0 = 0; Row0 < Rows; Row0 += MR) {
    const int Panel = std::min(MR, Rows - Row0);
    for (int K = 0; K < Depth; ++K) {
      const float *Src =
          A + static_cast<size_t>(Row0) * RowStride + K * ColStride;
      int R = 0;
      for (; R < Panel; ++R)
        Out[static_cast<size_t>(K) * MR + R] = Src[R * RowStride];
      for (; R < MR; ++R)
        Out[static_cast<size_t>(K) * MR + R] = 0.0f;
    }
    Out += static_cast<size_t>(Depth) * MR;
  }
}

/// Packs a Depth x Cols slice of B into NR-column panels, K-major within
/// a panel (panel element [k * NR + c]); columns past the edge pad with
/// zeros.
void packBPanels(const float *B, size_t RowStride, size_t ColStride,
                 int Depth, int Cols, float *Out) {
  for (int Col0 = 0; Col0 < Cols; Col0 += NR) {
    const int Panel = std::min(NR, Cols - Col0);
    for (int K = 0; K < Depth; ++K) {
      const float *Src =
          B + static_cast<size_t>(K) * RowStride + Col0 * ColStride;
      int C = 0;
      for (; C < Panel; ++C)
        Out[static_cast<size_t>(K) * NR + C] = Src[C * ColStride];
      for (; C < NR; ++C)
        Out[static_cast<size_t>(K) * NR + C] = 0.0f;
    }
    Out += static_cast<size_t>(Depth) * NR;
  }
}

// The macro-kernel is where all the flops happen, so it alone carries
// per-ISA clones: the binary stays portable (baseline x86-64) while the
// dynamic linker picks an AVX2/FMA or AVX-512 body on capable hosts.
// Microarchitecture *levels* (x86-64-v3/v4) rather than named CPUs: the
// resolver then dispatches on the feature bitset instead of an exact
// CPU-model match, which matters on virtualized hosts reporting generic
// model strings. Clones are disabled under sanitizers (ifunc resolvers
// run before the sanitizer runtime is ready) and on non-GCC/non-x86
// builds.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) &&        \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define WOOTZ_ARCH_CLONES                                                     \
  __attribute__((                                                             \
      target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define WOOTZ_ARCH_CLONES
#endif

/// 8-wide vector lane used to spell the micro-kernel accumulators
/// explicitly. GCC lowers operations on it to the best ISA of whichever
/// clone is being compiled (single ymm ops under v3/v4, xmm pairs under
/// the baseline), which is what finally keeps the MR x NR tile in
/// registers: the scalar triple loop version of the same tile spills to
/// the stack and runs ~20x slower.
typedef float VecLane
    __attribute__((vector_size(32), may_alias, aligned(4)));
constexpr int LanesPerRow = NR / 8;

/// Computes one MBlock x NBlock block of C from packed operand panels.
/// \p LeadingDim is C's row stride. With \p Add false the block is
/// overwritten (first KC slice of a non-accumulating product) and
/// \p RowBias, if non-null, is added once per row; with \p Add true the
/// contribution accumulates and \p RowBias must be null.
WOOTZ_ARCH_CLONES
void macroKernel(int MBlock, int NBlock, int KBlock, const float *APack,
                 const float *BPack, float *C, size_t LeadingDim, bool Add,
                 const float *RowBias) {
  for (int Col0 = 0; Col0 < NBlock; Col0 += NR) {
    const int NCount = std::min(NR, NBlock - Col0);
    const float *BPanel =
        BPack + static_cast<size_t>(Col0 / NR) * KBlock * NR;
    for (int Row0 = 0; Row0 < MBlock; Row0 += MR) {
      const int MCount = std::min(MR, MBlock - Row0);
      const float *APanel =
          APack + static_cast<size_t>(Row0 / MR) * KBlock * MR;
      // The full (zero-padded) MR x NR tile accumulates in MR *
      // LanesPerRow vector registers (12 ymm at the classic 6x16 shape:
      // exactly the register budget that leaves room for the A
      // broadcast and the two B loads); only the valid MCount x NCount
      // region is written back.
      VecLane Acc[MR][LanesPerRow] = {};
      for (int K = 0; K < KBlock; ++K) {
        const float *ARow = APanel + static_cast<size_t>(K) * MR;
        const VecLane *BRow = reinterpret_cast<const VecLane *>(
            BPanel + static_cast<size_t>(K) * NR);
        const VecLane B0 = BRow[0], B1 = BRow[1];
        for (int R = 0; R < MR; ++R) {
          Acc[R][0] += B0 * ARow[R]; // Scalar operand broadcasts.
          Acc[R][1] += B1 * ARow[R];
        }
      }
      float Tile[MR][NR];
      for (int R = 0; R < MR; ++R)
        for (int Lane = 0; Lane < LanesPerRow; ++Lane)
          *reinterpret_cast<VecLane *>(&Tile[R][Lane * 8]) = Acc[R][Lane];
      for (int R = 0; R < MCount; ++R) {
        float *CRow = C + static_cast<size_t>(Row0 + R) * LeadingDim + Col0;
        if (Add) {
          for (int C2 = 0; C2 < NCount; ++C2)
            CRow[C2] += Tile[R][C2];
        } else {
          const float Base = RowBias ? RowBias[Row0 + R] : 0.0f;
          for (int C2 = 0; C2 < NCount; ++C2)
            CRow[C2] = Tile[R][C2] + Base;
        }
      }
    }
  }
}

/// Total panel-padded row count of an M-row A operand: full MC blocks
/// keep their height (MC is a multiple of MR), the tail block rounds up
/// to whole MR panels.
size_t paddedARows(int M) {
  return static_cast<size_t>(M / MC) * MC + roundUpTo(M % MC, MR);
}

/// Total panel-padded column count of an N-column B operand.
size_t paddedBCols(int N) {
  return static_cast<size_t>(N / NC) * NC + roundUpTo(N % NC, NR);
}

} // namespace

PackedPanels wootz::packGemmA(const float *A, size_t RowStride,
                              size_t ColStride, int M, int K) {
  assert(M > 0 && K > 0 && "empty A operand");
  PackedPanels Out;
  Out.Extent = M;
  Out.Depth = K;
  Out.Data.resize(paddedARows(M) * static_cast<size_t>(K));
  // KC slices are outermost in the engine's loop nest; within a slice
  // the MC row blocks (and their MR panels) are laid out contiguously,
  // so a row block starts at PaddedM * Depth0 + Row0 * KBlock.
  for (int Depth0 = 0; Depth0 < K; Depth0 += KC) {
    const int KBlock = std::min(KC, K - Depth0);
    packAPanels(A + static_cast<size_t>(Depth0) * ColStride, RowStride,
                ColStride, M, KBlock,
                Out.Data.data() + paddedARows(M) * Depth0);
  }
  return Out;
}

PackedPanels wootz::packGemmB(const float *B, size_t RowStride,
                              size_t ColStride, int K, int N) {
  assert(K > 0 && N > 0 && "empty B operand");
  PackedPanels Out;
  Out.Extent = N;
  Out.Depth = K;
  Out.Data.resize(paddedBCols(N) * static_cast<size_t>(K));
  // NC column blocks are outermost for B; a block holds its KC slices
  // back to back, so slice (Col0, Depth0) starts at K * Col0 +
  // roundUp(NBlock) * Depth0.
  for (int Col0 = 0; Col0 < N; Col0 += NC) {
    const int NBlock = std::min(NC, N - Col0);
    for (int Depth0 = 0; Depth0 < K; Depth0 += KC) {
      const int KBlock = std::min(KC, K - Depth0);
      packBPanels(B + static_cast<size_t>(Depth0) * RowStride +
                      static_cast<size_t>(Col0) * ColStride,
                  RowStride, ColStride, KBlock, NBlock,
                  Out.Data.data() + static_cast<size_t>(K) * Col0 +
                      roundUpTo(NBlock, NR) * Depth0);
    }
  }
  return Out;
}

void detail::blockedGemmPacked(const PackedPanels *APre, const float *A,
                               size_t ARowStride, size_t AColStride,
                               const PackedPanels *BPre, const float *B,
                               size_t BRowStride, size_t BColStride,
                               float *C, int M, int K, int N,
                               bool Accumulate, const float *RowBias) {
  assert(M > 0 && K > 0 && N > 0 && "empty GEMM");
  assert(!(Accumulate && RowBias) &&
         "fused bias requires a non-accumulating product");
  assert((!APre || (APre->Extent == M && APre->Depth == K)) &&
         "packed A extents mismatch");
  assert((!BPre || (BPre->Extent == N && BPre->Depth == K)) &&
         "packed B extents mismatch");
  for (int Col0 = 0; Col0 < N; Col0 += NC) {
    const int NBlock = std::min(NC, N - Col0);
    for (int Depth0 = 0; Depth0 < K; Depth0 += KC) {
      const int KBlock = std::min(KC, K - Depth0);
      // Only the first KC slice of a fresh product overwrites C (and
      // carries the fused bias); later slices accumulate. Per C element
      // the K summation order is fixed, so results never depend on the
      // worker count.
      const bool Add = Accumulate || Depth0 > 0;
      const float *BlockBias = Add ? nullptr : RowBias;

      // B's panel is packed once by the calling thread and read by every
      // row-panel task; A's panels are packed per task into that
      // worker's own scratch. Pre-packed operands skip both steps.
      const float *BPack;
      if (BPre) {
        BPack = BPre->Data.data() + static_cast<size_t>(K) * Col0 +
                roundUpTo(NBlock, NR) * Depth0;
      } else {
        float *Scratch = KernelScratch::forCurrentThread().PackB.ensure(
            roundUpTo(NBlock, NR) * static_cast<size_t>(KBlock));
        packBPanels(B + static_cast<size_t>(Depth0) * BRowStride +
                        static_cast<size_t>(Col0) * BColStride,
                    BRowStride, BColStride, KBlock, NBlock, Scratch);
        BPack = Scratch;
      }

      const size_t RowBlocks = (static_cast<size_t>(M) + MC - 1) / MC;
      kernelParallelFor(RowBlocks, 1, [&](size_t Begin, size_t End) {
        KernelScratch &Local = KernelScratch::forCurrentThread();
        for (size_t Block = Begin; Block < End; ++Block) {
          const int Row0 = static_cast<int>(Block) * MC;
          const int MBlock = std::min(MC, M - Row0);
          const float *APack;
          if (APre) {
            APack = APre->Data.data() + paddedARows(M) * Depth0 +
                    static_cast<size_t>(Row0) * KBlock;
          } else {
            float *Scratch = Local.PackA.ensure(
                roundUpTo(MBlock, MR) * static_cast<size_t>(KBlock));
            packAPanels(A + static_cast<size_t>(Row0) * ARowStride +
                            static_cast<size_t>(Depth0) * AColStride,
                        ARowStride, AColStride, MBlock, KBlock, Scratch);
            APack = Scratch;
          }
          macroKernel(MBlock, NBlock, KBlock, APack, BPack,
                      C + static_cast<size_t>(Row0) * N + Col0,
                      static_cast<size_t>(N), Add,
                      BlockBias ? BlockBias + Row0 : nullptr);
        }
      });
    }
  }
}

void detail::blockedGemm(const float *A, size_t ARowStride, size_t AColStride,
                         const float *B, size_t BRowStride, size_t BColStride,
                         float *C, int M, int K, int N, bool Accumulate,
                         const float *RowBias) {
  blockedGemmPacked(nullptr, A, ARowStride, AColStride, nullptr, B,
                    BRowStride, BColStride, C, M, K, N, Accumulate, RowBias);
}
