//===- tensor/Kernels.cpp --------------------------------------------------===//
//
// The blocked GEMM engine and the kernel threading substrate. The GEMM
// follows the classic GotoBLAS/BLIS decomposition: loop over NC-wide
// column blocks of C, KC-deep rank-k updates, and MC-tall row panels;
// the operand slices are packed into contiguous aligned panels so the
// innermost MR x NR micro-kernel runs on unit-stride data the compiler
// can keep in vector registers.
//
// Convolution rides the same engine through convForwardFused(): the B
// operand (the im2col matrix) is never materialized — packConvColsB()
// computes each KC x NR panel directly from the image with stride
// arithmetic, so the only column-shaped traffic is the packed panel the
// GEMM needed anyway.
//
// Whether any of this fans out to the worker pool is decided by a
// measured cost model (kernelCostModel), calibrated once per worker
// count: pool dispatch latency, serial GEMM throughput, and the
// actually-achieved parallel speedup on this host. A split is chosen
// only when the model predicts it wins, which keeps oversubscribed
// single-core hosts at serial speed instead of paying handoff overhead
// for nothing.
//
//===----------------------------------------------------------------------===//

#include "src/tensor/Kernels.h"

#include "src/support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

using namespace wootz;

//===----------------------------------------------------------------------===//
// Kernel worker pool
//===----------------------------------------------------------------------===//

namespace {

std::mutex ConfigMutex;
std::unique_ptr<ThreadPool> KernelPool; ///< Guarded by ConfigMutex.

/// Set while the calling thread executes a kernelParallelFor body;
/// nested kernel loops run inline on that thread.
thread_local bool InKernelRegion = false;

unsigned resolveWorkerRequest(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  const unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware != 0 ? Hardware : 1;
}

/// The configured worker count; initialized from WOOTZ_KERNEL_WORKERS
/// on first use, serial by default. Guarded by ConfigMutex.
unsigned &workerCountLocked() {
  static unsigned Count = [] {
    const char *Env = std::getenv("WOOTZ_KERNEL_WORKERS");
    if (!Env)
      return 1u;
    std::string Warning;
    const unsigned Parsed = parseKernelWorkers(Env, &Warning);
    if (!Warning.empty())
      std::fprintf(stderr, "wootz: %s\n", Warning.c_str());
    return Parsed;
  }();
  return Count;
}

} // namespace

unsigned wootz::parseKernelWorkers(const char *Text, std::string *Warning) {
  const auto Fallback = [Warning](const std::string &Message) {
    if (Warning)
      *Warning = Message;
    return 1u;
  };
  if (!Text || !*Text)
    return Fallback("WOOTZ_KERNEL_WORKERS is empty; using 1 worker");
  errno = 0;
  char *End = nullptr;
  const long long Value = std::strtoll(Text, &End, 10);
  const bool Overflow = errno == ERANGE;
  const bool NoDigits = End == Text;
  while (End && (*End == ' ' || *End == '\t'))
    ++End;
  if (NoDigits || (End && *End != '\0'))
    return Fallback(std::string("WOOTZ_KERNEL_WORKERS='") + Text +
                    "' is not an integer; using 1 worker");
  if (Overflow || Value < 0 || Value > 4096)
    return Fallback(std::string("WOOTZ_KERNEL_WORKERS='") + Text +
                    "' is outside [0, 4096] (0 = one worker per hardware "
                    "thread); using 1 worker");
  return resolveWorkerRequest(static_cast<unsigned>(Value));
}

void wootz::setKernelWorkers(unsigned Count) {
  const unsigned Resolved = resolveWorkerRequest(Count);
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  unsigned &Current = workerCountLocked();
  if (Current == Resolved)
    return;
  KernelPool.reset(); // Drains; recreated lazily at the new size.
  Current = Resolved;
}

unsigned wootz::kernelWorkers() {
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  return workerCountLocked();
}

bool wootz::inKernelParallelRegion() { return InKernelRegion; }

void wootz::kernelParallelFor(
    size_t Count, size_t Grain,
    const std::function<void(size_t, size_t)> &Body) {
  if (Count == 0)
    return;
  if (Grain == 0)
    Grain = 1;
  const size_t Chunks = (Count + Grain - 1) / Grain;
  ThreadPool *Pool = nullptr;
  if (!InKernelRegion && Chunks > 1) {
    std::lock_guard<std::mutex> Lock(ConfigMutex);
    const unsigned Workers = workerCountLocked();
    if (Workers > 1) {
      if (!KernelPool)
        KernelPool = std::make_unique<ThreadPool>(Workers);
      Pool = KernelPool.get();
    }
  }
  if (!Pool) {
    // Inline, but over the identical chunk decomposition so per-chunk
    // reductions group the same way as in the parallel path.
    const bool Saved = InKernelRegion;
    InKernelRegion = true;
    for (size_t Begin = 0; Begin < Count; Begin += Grain)
      Body(Begin, std::min(Begin + Grain, Count));
    InKernelRegion = Saved;
    return;
  }
  Pool->parallelFor(Count, Grain, [&Body](size_t Begin, size_t End) {
    const bool Saved = InKernelRegion;
    InKernelRegion = true;
    Body(Begin, End);
    InKernelRegion = Saved;
  });
}

KernelScratch &KernelScratch::forCurrentThread() {
  static thread_local KernelScratch Instance;
  return Instance;
}

//===----------------------------------------------------------------------===//
// Blocked GEMM
//===----------------------------------------------------------------------===//

namespace {

// Register tile (micro-kernel) and cache-block extents. MR x NR = 6 x 16
// is the classic shape for 256-bit vectors: 12 accumulator registers
// (6 rows x 2 vectors) plus operand registers fit the 16-register file.
// KC x NR of packed B (~16 KB) lives in L1 across a row sweep; MC x KC
// of packed A (~72 KB) targets L2.
constexpr int MR = 6;
constexpr int NR = 16;
constexpr int MC = 72;
constexpr int KC = 256;
constexpr int NC = 1024;

size_t roundUpTo(int Value, int Multiple) {
  return static_cast<size_t>((Value + Multiple - 1) / Multiple) *
         static_cast<size_t>(Multiple);
}

/// Packs a Rows x Depth slice of A into MR-row panels, K-major within a
/// panel (panel element [k * MR + r]); rows past the edge pad with zeros
/// so the micro-kernel never needs a row-edge case.
void packAPanels(const float *A, size_t RowStride, size_t ColStride,
                 int Rows, int Depth, float *Out) {
  for (int Row0 = 0; Row0 < Rows; Row0 += MR) {
    const int Panel = std::min(MR, Rows - Row0);
    for (int K = 0; K < Depth; ++K) {
      const float *Src =
          A + static_cast<size_t>(Row0) * RowStride + K * ColStride;
      int R = 0;
      for (; R < Panel; ++R)
        Out[static_cast<size_t>(K) * MR + R] = Src[R * RowStride];
      for (; R < MR; ++R)
        Out[static_cast<size_t>(K) * MR + R] = 0.0f;
    }
    Out += static_cast<size_t>(Depth) * MR;
  }
}

/// Packs a Depth x Cols slice of B into NR-column panels, K-major within
/// a panel (panel element [k * NR + c]); columns past the edge pad with
/// zeros.
void packBPanels(const float *B, size_t RowStride, size_t ColStride,
                 int Depth, int Cols, float *Out) {
  for (int Col0 = 0; Col0 < Cols; Col0 += NR) {
    const int Panel = std::min(NR, Cols - Col0);
    for (int K = 0; K < Depth; ++K) {
      const float *Src =
          B + static_cast<size_t>(K) * RowStride + Col0 * ColStride;
      int C = 0;
      for (; C < Panel; ++C)
        Out[static_cast<size_t>(K) * NR + C] = Src[C * ColStride];
      for (; C < NR; ++C)
        Out[static_cast<size_t>(K) * NR + C] = 0.0f;
    }
    Out += static_cast<size_t>(Depth) * NR;
  }
}

// The macro-kernel is where all the flops happen, so it alone carries
// per-ISA clones: the binary stays portable (baseline x86-64) while the
// dynamic linker picks an AVX2/FMA or AVX-512 body on capable hosts.
// Microarchitecture *levels* (x86-64-v3/v4) rather than named CPUs: the
// resolver then dispatches on the feature bitset instead of an exact
// CPU-model match, which matters on virtualized hosts reporting generic
// model strings. Clones are disabled under sanitizers (ifunc resolvers
// run before the sanitizer runtime is ready) and on non-GCC/non-x86
// builds.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) &&        \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define WOOTZ_ARCH_CLONES                                                     \
  __attribute__((                                                             \
      target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#else
#define WOOTZ_ARCH_CLONES
#endif

/// 8-wide vector lane used to spell the micro-kernel accumulators
/// explicitly. GCC lowers operations on it to the best ISA of whichever
/// clone is being compiled (single ymm ops under v3/v4, xmm pairs under
/// the baseline), which is what finally keeps the MR x NR tile in
/// registers: the scalar triple loop version of the same tile spills to
/// the stack and runs ~20x slower.
typedef float VecLane
    __attribute__((vector_size(32), may_alias, aligned(4)));
constexpr int LanesPerRow = NR / 8;

/// Computes one MBlock x NBlock block of C from packed operand panels.
/// \p LeadingDim is C's row stride. With \p Add false the block is
/// overwritten (first KC slice of a non-accumulating product) and
/// \p RowBias, if non-null, is added once per row; with \p Add true the
/// contribution accumulates and \p RowBias must be null.
WOOTZ_ARCH_CLONES
void macroKernel(int MBlock, int NBlock, int KBlock, const float *APack,
                 const float *BPack, float *C, size_t LeadingDim, bool Add,
                 const float *RowBias) {
  for (int Col0 = 0; Col0 < NBlock; Col0 += NR) {
    const int NCount = std::min(NR, NBlock - Col0);
    const float *BPanel =
        BPack + static_cast<size_t>(Col0 / NR) * KBlock * NR;
    for (int Row0 = 0; Row0 < MBlock; Row0 += MR) {
      const int MCount = std::min(MR, MBlock - Row0);
      const float *APanel =
          APack + static_cast<size_t>(Row0 / MR) * KBlock * MR;
      // The full (zero-padded) MR x NR tile accumulates in MR *
      // LanesPerRow vector registers (12 ymm at the classic 6x16 shape:
      // exactly the register budget that leaves room for the A
      // broadcast and the two B loads); only the valid MCount x NCount
      // region is written back.
      VecLane Acc[MR][LanesPerRow] = {};
      for (int K = 0; K < KBlock; ++K) {
        const float *ARow = APanel + static_cast<size_t>(K) * MR;
        const VecLane *BRow = reinterpret_cast<const VecLane *>(
            BPanel + static_cast<size_t>(K) * NR);
        const VecLane B0 = BRow[0], B1 = BRow[1];
        for (int R = 0; R < MR; ++R) {
          Acc[R][0] += B0 * ARow[R]; // Scalar operand broadcasts.
          Acc[R][1] += B1 * ARow[R];
        }
      }
      float Tile[MR][NR];
      for (int R = 0; R < MR; ++R)
        for (int Lane = 0; Lane < LanesPerRow; ++Lane)
          *reinterpret_cast<VecLane *>(&Tile[R][Lane * 8]) = Acc[R][Lane];
      for (int R = 0; R < MCount; ++R) {
        float *CRow = C + static_cast<size_t>(Row0 + R) * LeadingDim + Col0;
        if (Add) {
          for (int C2 = 0; C2 < NCount; ++C2)
            CRow[C2] += Tile[R][C2];
        } else {
          const float Base = RowBias ? RowBias[Row0 + R] : 0.0f;
          for (int C2 = 0; C2 < NCount; ++C2)
            CRow[C2] = Tile[R][C2] + Base;
        }
      }
    }
  }
}

/// Total panel-padded row count of an M-row A operand: full MC blocks
/// keep their height (MC is a multiple of MR), the tail block rounds up
/// to whole MR panels.
size_t paddedARows(int M) {
  return static_cast<size_t>(M / MC) * MC + roundUpTo(M % MC, MR);
}

/// Total panel-padded column count of an N-column B operand.
size_t paddedBCols(int N) {
  return static_cast<size_t>(N / NC) * NC + roundUpTo(N % NC, NR);
}

} // namespace

PackedPanels wootz::packGemmA(const float *A, size_t RowStride,
                              size_t ColStride, int M, int K) {
  assert(M > 0 && K > 0 && "empty A operand");
  PackedPanels Out;
  Out.Extent = M;
  Out.Depth = K;
  Out.Data.resize(paddedARows(M) * static_cast<size_t>(K));
  // KC slices are outermost in the engine's loop nest; within a slice
  // the MC row blocks (and their MR panels) are laid out contiguously,
  // so a row block starts at PaddedM * Depth0 + Row0 * KBlock.
  for (int Depth0 = 0; Depth0 < K; Depth0 += KC) {
    const int KBlock = std::min(KC, K - Depth0);
    packAPanels(A + static_cast<size_t>(Depth0) * ColStride, RowStride,
                ColStride, M, KBlock,
                Out.Data.data() + paddedARows(M) * Depth0);
  }
  return Out;
}

PackedPanels wootz::packGemmB(const float *B, size_t RowStride,
                              size_t ColStride, int K, int N) {
  assert(K > 0 && N > 0 && "empty B operand");
  PackedPanels Out;
  Out.Extent = N;
  Out.Depth = K;
  Out.Data.resize(paddedBCols(N) * static_cast<size_t>(K));
  // NC column blocks are outermost for B; a block holds its KC slices
  // back to back, so slice (Col0, Depth0) starts at K * Col0 +
  // roundUp(NBlock) * Depth0.
  for (int Col0 = 0; Col0 < N; Col0 += NC) {
    const int NBlock = std::min(NC, N - Col0);
    for (int Depth0 = 0; Depth0 < K; Depth0 += KC) {
      const int KBlock = std::min(KC, K - Depth0);
      packBPanels(B + static_cast<size_t>(Depth0) * RowStride +
                      static_cast<size_t>(Col0) * ColStride,
                  RowStride, ColStride, KBlock, NBlock,
                  Out.Data.data() + static_cast<size_t>(K) * Col0 +
                      roundUpTo(NBlock, NR) * Depth0);
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Measured-cost threading heuristic
//===----------------------------------------------------------------------===//

namespace {

std::mutex CostMutex;
/// Calibrated models per worker count. Guarded by CostMutex.
std::map<unsigned, KernelCostModel> CostModels;

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

double medianOf(std::vector<double> Values) {
  std::sort(Values.begin(), Values.end());
  return Values[Values.size() / 2];
}

/// Measures the cost model for \p Workers. The probes are sized like the
/// conv GEMMs the model gates: big enough to be timeable, small enough
/// that the whole calibration stays in the tens of milliseconds.
KernelCostModel calibrate(unsigned Workers) {
  KernelCostModel Model;
  Model.Workers = Workers;

  // Serial GEMM throughput: one row block high (M <= MC), so the probe
  // runs inline regardless of the pool and never recurses into the
  // heuristic it is calibrating.
  constexpr int CalM = 64, CalK = 192, CalN = 192;
  std::vector<float, AlignedAllocator<float>> A(
      static_cast<size_t>(CalM) * CalK),
      B(static_cast<size_t>(CalK) * CalN),
      C(static_cast<size_t>(CalM) * CalN);
  for (size_t I = 0; I < A.size(); ++I)
    A[I] = static_cast<float>((I % 13) + 1) * 0.125f;
  for (size_t I = 0; I < B.size(); ++I)
    B[I] = static_cast<float>((I % 7) + 1) * 0.25f;
  const auto RunProbeGemm = [&] {
    detail::blockedGemm(A.data(), CalK, 1, B.data(), CalN, 1, C.data(),
                        CalM, CalK, CalN, /*Accumulate=*/false,
                        /*RowBias=*/nullptr);
  };
  RunProbeGemm(); // Warmup: pack scratch, page faults.
  std::vector<double> GemmTimes;
  for (int Rep = 0; Rep < 5; ++Rep) {
    const auto Start = std::chrono::steady_clock::now();
    RunProbeGemm();
    GemmTimes.push_back(secondsSince(Start));
  }
  const double ProbeFlops = 2.0 * CalM * CalK * CalN;
  Model.SecondsPerFlop = medianOf(GemmTimes) / ProbeFlops;

  if (Workers <= 1)
    return Model;

  // Pool dispatch latency: the round trip of a parallelFor whose chunks
  // do nothing, so all that is measured is enqueue + wake + join.
  kernelParallelFor(Workers, 1, [](size_t, size_t) {}); // Spin up.
  std::vector<double> DispatchTimes;
  for (int Rep = 0; Rep < 33; ++Rep) {
    const auto Start = std::chrono::steady_clock::now();
    kernelParallelFor(Workers, 1, [](size_t, size_t) {});
    DispatchTimes.push_back(secondsSince(Start));
  }
  Model.DispatchSeconds = medianOf(DispatchTimes);

  // Achieved parallel speedup: the same batch of conv-sized GEMM tasks
  // run inline and on the pool. On a host with fewer cores than workers
  // this comes out below 1 — the signal that fanning out loses.
  const size_t Tasks = 2 * static_cast<size_t>(Workers);
  std::vector<float, AlignedAllocator<float>> TaskC(
      static_cast<size_t>(CalM) * CalN * Tasks);
  const auto RunTask = [&](size_t Task) {
    detail::blockedGemm(A.data(), CalK, 1, B.data(), CalN, 1,
                        TaskC.data() +
                            Task * static_cast<size_t>(CalM) * CalN,
                        CalM, CalK, CalN, /*Accumulate=*/false,
                        /*RowBias=*/nullptr);
  };
  std::vector<double> SerialTimes, PooledTimes;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    for (size_t Task = 0; Task < Tasks; ++Task)
      RunTask(Task);
    SerialTimes.push_back(secondsSince(Start));
    Start = std::chrono::steady_clock::now();
    kernelParallelFor(Tasks, 1, [&](size_t Begin, size_t End) {
      for (size_t Task = Begin; Task < End; ++Task)
        RunTask(Task);
    });
    PooledTimes.push_back(secondsSince(Start));
  }
  const double Pooled = medianOf(PooledTimes);
  Model.ParallelSpeedup =
      Pooled > 0.0 ? medianOf(SerialTimes) / Pooled : 1.0;
  return Model;
}

/// The core go/no-go: fanning \p Flops out must save more wall clock
/// (per the measured speedup) than a few pool handoffs cost.
bool worthSplitting(const KernelCostModel &Model, double Flops) {
  if (Model.Workers <= 1 || Model.ParallelSpeedup < 1.15)
    return false;
  const double SerialSeconds = Flops * Model.SecondsPerFlop;
  const double Saved = SerialSeconds * (1.0 - 1.0 / Model.ParallelSpeedup);
  return Saved > 3.0 * Model.DispatchSeconds;
}

} // namespace

KernelCostModel wootz::kernelCostModel() {
  const unsigned Workers = kernelWorkers();
  {
    std::lock_guard<std::mutex> Lock(CostMutex);
    auto It = CostModels.find(Workers);
    if (It != CostModels.end())
      return It->second;
  }
  // Calibrate outside the lock (tens of milliseconds); a concurrent
  // first caller at the same count just measures twice and the first
  // insert wins.
  const KernelCostModel Model = calibrate(Workers);
  std::lock_guard<std::mutex> Lock(CostMutex);
  return CostModels.emplace(Workers, Model).first->second;
}

bool wootz::parallelWorthwhile(double Flops) {
  // Inside a parallel region a nested loop runs inline whatever we
  // answer, so say yes and let kernelParallelFor handle it.
  if (InKernelRegion)
    return true;
  return worthSplitting(kernelCostModel(), Flops);
}

const char *wootz::convSplitKindName(ConvSplitKind Kind) {
  switch (Kind) {
  case ConvSplitKind::Serial:
    return "serial";
  case ConvSplitKind::InterOp:
    return "inter_op";
  case ConvSplitKind::IntraOp:
    return "intra_op";
  }
  return "unknown";
}

ConvSplit wootz::chooseConvSplit(int Batch, int M, int K, int ColCols) {
  ConvSplit Split;
  Split.ColumnChunk = ColCols;
  Split.Tasks = static_cast<size_t>(Batch);
  if (InKernelRegion)
    return Split; // Would run inline anyway.
  const KernelCostModel Model = kernelCostModel();
  const double Flops =
      2.0 * Batch * M * static_cast<double>(K) * ColCols;
  if (!worthSplitting(Model, Flops))
    return Split;
  if (static_cast<unsigned>(Batch) >= Model.Workers) {
    // Samples alone keep every worker busy.
    Split.Kind = ConvSplitKind::InterOp;
    return Split;
  }
  // Small batch: additionally chunk the output columns so the task
  // count reaches ~two waves over the pool. Chunks are NR-aligned
  // (panel boundaries are unchanged, so outputs stay bit-identical)
  // and each chunk must still clearly out-work a pool handoff.
  const size_t TargetTasks = 2 * static_cast<size_t>(Model.Workers);
  const size_t PerSample =
      (TargetTasks + static_cast<size_t>(Batch) - 1) / Batch;
  size_t Chunk = roundUpTo(
      static_cast<int>((ColCols + PerSample - 1) / PerSample), NR);
  while (static_cast<int>(Chunk) < ColCols &&
         2.0 * M * static_cast<double>(K) * Chunk * Model.SecondsPerFlop <
             4.0 * Model.DispatchSeconds)
    Chunk *= 2;
  if (static_cast<int>(Chunk) >= ColCols) {
    Split.Kind =
        Batch > 1 ? ConvSplitKind::InterOp : ConvSplitKind::Serial;
    return Split;
  }
  Split.Kind = ConvSplitKind::IntraOp;
  Split.ColumnChunk = static_cast<int>(Chunk);
  Split.Tasks = static_cast<size_t>(Batch) *
                ((static_cast<size_t>(ColCols) + Chunk - 1) / Chunk);
  return Split;
}

//===----------------------------------------------------------------------===//
// Fused im2col+pack convolution
//===----------------------------------------------------------------------===//

namespace {

/// Packs rows [Depth0, Depth0 + KBlock) x columns [Col0, Col0 + NBlock)
/// of one sample's — never materialized — im2col matrix into NR-column
/// K-major panels, byte-identical to packBPanels() over the
/// materialized matrix. im2col row r maps to (channel, kh, kw) =
/// (r / Kernel^2, (r / Kernel) % Kernel, r % Kernel); column c maps to
/// output pixel (c / OutW, c % OutW); the source element is
/// Image[channel][oh * Stride - Pad + kh][ow * Stride - Pad + kw], zero
/// out of bounds.
void packConvColsB(const float *Image, int Height, int Width,
                   const ConvGeometry &G, int OutW, int Depth0, int KBlock,
                   int Col0, int NBlock, float *Out) {
  const int Kernel = G.KernelSize;
  // Decompose the KC slice's im2col rows once, incrementally: the panel
  // loop below touches every row per panel, and per-iteration div/mod
  // there costs as much as the micro-kernel math it feeds on small
  // GEMMs. Two divisions total, then counters.
  assert(KBlock <= KC && "one call packs at most one KC slice");
  int KWOf[KC], KHOf[KC];
  const float *PlaneOf[KC];
  {
    int KW = Depth0 % Kernel;
    int KH = (Depth0 / Kernel) % Kernel;
    int Channel = Depth0 / (Kernel * Kernel);
    for (int KOff = 0; KOff < KBlock; ++KOff) {
      KWOf[KOff] = KW;
      KHOf[KOff] = KH;
      PlaneOf[KOff] = Image + static_cast<size_t>(Channel) * Height * Width;
      if (++KW == Kernel) {
        KW = 0;
        if (++KH == Kernel) {
          KH = 0;
          ++Channel;
        }
      }
    }
  }
  for (int Panel0 = 0; Panel0 < NBlock; Panel0 += NR) {
    const int Panel = std::min(NR, NBlock - Panel0);
    int OutRow[NR], OutCol[NR];
    for (int C = 0; C < Panel; ++C) {
      const int Col = Col0 + Panel0 + C;
      OutRow[C] = Col / OutW;
      OutCol[C] = Col % OutW;
    }
    const bool OneRow = OutRow[0] == OutRow[Panel - 1];
    float *PanelOut =
        Out + static_cast<size_t>(Panel0 / NR) * KBlock * NR;
    for (int KOff = 0; KOff < KBlock; ++KOff) {
      const int KW = KWOf[KOff];
      const int KH = KHOf[KOff];
      const float *Plane = PlaneOf[KOff];
      float *Dst = PanelOut + static_cast<size_t>(KOff) * NR;
      // Fast path: at stride 1 a panel that stays on one output row
      // reads consecutive pixels; copy the in-bounds middle straight
      // through (plain loops so the compiler vectorizes them — a
      // variable-size memcpy here is a library call per K-row) and
      // zero-fill whatever padding clips at either end.
      if (G.Stride == 1 && OneRow) {
        const int IH = OutRow[0] - G.Pad + KH;
        const int IW0 = OutCol[0] - G.Pad + KW;
        int From = 0, To = 0;
        if (IH >= 0 && IH < Height) {
          From = std::max(0, -IW0);
          To = std::max(From, std::min(Panel, Width - IW0));
        }
        for (int J = 0; J < From; ++J)
          Dst[J] = 0.0f;
        if (To > From) {
          const float *Src = Plane + static_cast<size_t>(IH) * Width + IW0;
          for (int J = From; J < To; ++J)
            Dst[J] = Src[J];
        }
        for (int J = To; J < NR; ++J)
          Dst[J] = 0.0f;
        continue;
      }
      int J = 0;
      for (; J < Panel; ++J) {
        const int IH = OutRow[J] * G.Stride - G.Pad + KH;
        const int IW = OutCol[J] * G.Stride - G.Pad + KW;
        Dst[J] = (IH >= 0 && IH < Height && IW >= 0 && IW < Width)
                     ? Plane[static_cast<size_t>(IH) * Width + IW]
                     : 0.0f;
      }
      for (; J < NR; ++J)
        Dst[J] = 0.0f;
    }
  }
}

/// One fused conv task: all OutChannels rows of output columns
/// [Col0, Col0 + Cols) of one sample. Runs entirely on the calling
/// thread (tasks never nest parallel loops), using that thread's
/// scratch for the panels.
void convTask(const float *Image, int Height, int Width,
              const ConvGeometry &G, int OutW, int M, int K, int ColCols,
              const PackedPanels *APre, const float *Weights,
              const float *Bias, bool FuseReLU, int Col0, int Cols,
              float *OutSample) {
  KernelScratch &Local = KernelScratch::forCurrentThread();
  for (int CBlock = Col0; CBlock < Col0 + Cols; CBlock += NC) {
    const int NBlock = std::min(NC, Col0 + Cols - CBlock);
    for (int Depth0 = 0; Depth0 < K; Depth0 += KC) {
      const int KBlock = std::min(KC, K - Depth0);
      // Only the first KC slice overwrites C (and carries the fused
      // bias); later slices accumulate. Per C element the K summation
      // order is fixed, so results never depend on the split.
      const bool Add = Depth0 > 0;
      const float *BlockBias = Add ? nullptr : Bias;
      float *BPack = Local.PackB.ensure(roundUpTo(NBlock, NR) *
                                        static_cast<size_t>(KBlock));
      packConvColsB(Image, Height, Width, G, OutW, Depth0, KBlock, CBlock,
                    NBlock, BPack);
      for (int Row0 = 0; Row0 < M; Row0 += MC) {
        const int MBlock = std::min(MC, M - Row0);
        const float *APack;
        if (APre) {
          APack = APre->Data.data() + paddedARows(M) * Depth0 +
                  static_cast<size_t>(Row0) * KBlock;
        } else {
          float *Scratch = Local.PackA.ensure(
              roundUpTo(MBlock, MR) * static_cast<size_t>(KBlock));
          packAPanels(Weights + static_cast<size_t>(Row0) * K + Depth0,
                      static_cast<size_t>(K), 1, MBlock, KBlock, Scratch);
          APack = Scratch;
        }
        macroKernel(MBlock, NBlock, KBlock, APack, BPack,
                    OutSample + static_cast<size_t>(Row0) * ColCols +
                        CBlock,
                    static_cast<size_t>(ColCols), Add,
                    BlockBias ? BlockBias + Row0 : nullptr);
      }
    }
  }
  if (FuseReLU) {
    for (int Row = 0; Row < M; ++Row) {
      float *CRow = OutSample + static_cast<size_t>(Row) * ColCols + Col0;
      for (int J = 0; J < Cols; ++J)
        CRow[J] = CRow[J] > 0.0f ? CRow[J] : 0.0f;
    }
  }
}

} // namespace

void wootz::convForwardFused(const float *Images, int Batch, int Height,
                             int Width, const ConvGeometry &G,
                             const PackedPanels *WeightsPre,
                             const float *Weights, const float *Bias,
                             bool FuseReLU, float *Out,
                             const ConvSplit *ForcedSplit) {
  const int OutH = G.outExtent(Height);
  const int OutW = G.outExtent(Width);
  const int M = G.OutChannels;
  const int K = G.InChannels * G.KernelSize * G.KernelSize;
  const int ColCols = OutH * OutW;
  assert(Batch > 0 && M > 0 && K > 0 && ColCols > 0 &&
         "empty convolution");
  assert((!WeightsPre ||
          (WeightsPre->Extent == M && WeightsPre->Depth == K)) &&
         "packed conv weight extents mismatch");
  const size_t InPlane =
      static_cast<size_t>(G.InChannels) * Height * Width;
  const size_t OutPlane = static_cast<size_t>(M) * ColCols;

  const ConvSplit Split =
      ForcedSplit ? *ForcedSplit : chooseConvSplit(Batch, M, K, ColCols);
  int Chunk =
      Split.Kind == ConvSplitKind::IntraOp ? Split.ColumnChunk : ColCols;
  if (Chunk <= 0 || Chunk > ColCols)
    Chunk = ColCols;
  const size_t ChunksPerSample =
      (static_cast<size_t>(ColCols) + Chunk - 1) / Chunk;
  const size_t Tasks = ChunksPerSample * static_cast<size_t>(Batch);

  const auto RunTask = [&](size_t Task) {
    const size_t Sample = Task / ChunksPerSample;
    const int Col0 =
        static_cast<int>(Task % ChunksPerSample) * Chunk;
    const int Cols = std::min(Chunk, ColCols - Col0);
    convTask(Images + Sample * InPlane, Height, Width, G, OutW, M, K,
             ColCols, WeightsPre, Weights, Bias, FuseReLU, Col0, Cols,
             Out + Sample * OutPlane);
  };
  if (Split.Kind == ConvSplitKind::Serial || Tasks == 1) {
    for (size_t Task = 0; Task < Tasks; ++Task)
      RunTask(Task);
    return;
  }
  kernelParallelFor(Tasks, 1, [&](size_t Begin, size_t End) {
    for (size_t Task = Begin; Task < End; ++Task)
      RunTask(Task);
  });
}

//===----------------------------------------------------------------------===//
// Blocked GEMM driver
//===----------------------------------------------------------------------===//

void detail::blockedGemmPacked(const PackedPanels *APre, const float *A,
                               size_t ARowStride, size_t AColStride,
                               const PackedPanels *BPre, const float *B,
                               size_t BRowStride, size_t BColStride,
                               float *C, int M, int K, int N,
                               bool Accumulate, const float *RowBias) {
  assert(M > 0 && K > 0 && N > 0 && "empty GEMM");
  assert(!(Accumulate && RowBias) &&
         "fused bias requires a non-accumulating product");
  assert((!APre || (APre->Extent == M && APre->Depth == K)) &&
         "packed A extents mismatch");
  assert((!BPre || (BPre->Extent == N && BPre->Depth == K)) &&
         "packed B extents mismatch");
  // One adaptive decision per call: fan row blocks out only when the
  // work in one (NC, KC) region clears the measured handoff cost. A
  // serial decision keeps the identical chunk decomposition (grain =
  // all blocks), so outputs are unchanged either way.
  const size_t RowBlocksTotal = (static_cast<size_t>(M) + MC - 1) / MC;
  const bool UsePool =
      RowBlocksTotal > 1 &&
      parallelWorthwhile(2.0 * M * static_cast<double>(std::min(K, KC)) *
                         std::min(N, NC));
  for (int Col0 = 0; Col0 < N; Col0 += NC) {
    const int NBlock = std::min(NC, N - Col0);
    for (int Depth0 = 0; Depth0 < K; Depth0 += KC) {
      const int KBlock = std::min(KC, K - Depth0);
      // Only the first KC slice of a fresh product overwrites C (and
      // carries the fused bias); later slices accumulate. Per C element
      // the K summation order is fixed, so results never depend on the
      // worker count.
      const bool Add = Accumulate || Depth0 > 0;
      const float *BlockBias = Add ? nullptr : RowBias;

      // B's panel is packed once by the calling thread and read by every
      // row-panel task; A's panels are packed per task into that
      // worker's own scratch. Pre-packed operands skip both steps.
      const float *BPack;
      if (BPre) {
        BPack = BPre->Data.data() + static_cast<size_t>(K) * Col0 +
                roundUpTo(NBlock, NR) * Depth0;
      } else {
        float *Scratch = KernelScratch::forCurrentThread().PackB.ensure(
            roundUpTo(NBlock, NR) * static_cast<size_t>(KBlock));
        packBPanels(B + static_cast<size_t>(Depth0) * BRowStride +
                        static_cast<size_t>(Col0) * BColStride,
                    BRowStride, BColStride, KBlock, NBlock, Scratch);
        BPack = Scratch;
      }

      const size_t RowBlocks = (static_cast<size_t>(M) + MC - 1) / MC;
      kernelParallelFor(
          RowBlocks, UsePool ? 1 : RowBlocks,
          [&](size_t Begin, size_t End) {
            KernelScratch &Local = KernelScratch::forCurrentThread();
            for (size_t Block = Begin; Block < End; ++Block) {
              const int Row0 = static_cast<int>(Block) * MC;
              const int MBlock = std::min(MC, M - Row0);
              const float *APack;
              if (APre) {
                APack = APre->Data.data() + paddedARows(M) * Depth0 +
                        static_cast<size_t>(Row0) * KBlock;
              } else {
                float *Scratch = Local.PackA.ensure(
                    roundUpTo(MBlock, MR) * static_cast<size_t>(KBlock));
                packAPanels(A + static_cast<size_t>(Row0) * ARowStride +
                                static_cast<size_t>(Depth0) * AColStride,
                            ARowStride, AColStride, MBlock, KBlock,
                            Scratch);
                APack = Scratch;
              }
              macroKernel(MBlock, NBlock, KBlock, APack, BPack,
                          C + static_cast<size_t>(Row0) * N + Col0,
                          static_cast<size_t>(N), Add,
                          BlockBias ? BlockBias + Row0 : nullptr);
            }
          });
    }
  }
}

void detail::blockedGemm(const float *A, size_t ARowStride, size_t AColStride,
                         const float *B, size_t BRowStride, size_t BColStride,
                         float *C, int M, int K, int N, bool Accumulate,
                         const float *RowBias) {
  blockedGemmPacked(nullptr, A, ARowStride, AColStride, nullptr, B,
                    BRowStride, BColStride, C, M, K, N, Accumulate, RowBias);
}
