//===- tensor/PackedWeights.cpp --------------------------------------------===//

#include "src/tensor/PackedWeights.h"

#include "src/support/Hash.h"

#include <cstdlib>

using namespace wootz;

namespace {

/// Byte budget from WOOTZ_PACKED_WEIGHTS_MB; invalid or absent input
/// falls back to 256 MB.
size_t readBudget() {
  constexpr size_t DefaultBytes = 256u << 20;
  const char *Env = std::getenv("WOOTZ_PACKED_WEIGHTS_MB");
  if (!Env || !*Env)
    return DefaultBytes;
  char *End = nullptr;
  const unsigned long Mb = std::strtoul(Env, &End, 10);
  if (End == Env || *End != '\0' || Mb == 0 || Mb > (1ul << 20))
    return DefaultBytes;
  return static_cast<size_t>(Mb) << 20;
}

} // namespace

PackedWeightsCache::PackedWeightsCache() : Budget(readBudget()) {}

PackedWeightsCache &PackedWeightsCache::instance() {
  static PackedWeightsCache Cache;
  return Cache;
}

std::shared_ptr<const PackedPanels>
PackedWeightsCache::convWeights(const float *Weights, int OutChannels,
                                int ColRows) {
  Key K;
  K.Ptr = Weights;
  K.Kind = Role::ConvA;
  K.Extent = OutChannels;
  K.Depth = ColRows;
  return lookup(K, Weights, /*PackARole=*/true);
}

std::shared_ptr<const PackedPanels>
PackedWeightsCache::denseWeights(const float *Weights, int OutFeatures,
                                 int InFeatures) {
  Key K;
  K.Ptr = Weights;
  K.Kind = Role::DenseB;
  K.Extent = OutFeatures;
  K.Depth = InFeatures;
  return lookup(K, Weights, /*PackARole=*/false);
}

std::shared_ptr<const PackedPanels>
PackedWeightsCache::lookup(const Key &K, const float *Weights,
                           bool PackARole) {
  // The fingerprint is recomputed from the live weight bytes on every
  // lookup; a hit requires both the key and the content to match, so a
  // mutated weight can never be served stale panels.
  const size_t Count =
      static_cast<size_t>(K.Extent) * static_cast<size_t>(K.Depth);
  const uint64_t Fingerprint =
      hashBytes64(Weights, Count * sizeof(float));
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(K);
    if (It != Entries.end() && It->second.Fingerprint == Fingerprint) {
      ++Hits;
      It->second.LastUse = ++Clock;
      return It->second.Panels;
    }
  }

  // Pack outside the lock: two threads racing on the same fresh weight
  // both pack and the second insert simply replaces the first —
  // identical content, so either result is correct.
  auto Panels = std::make_shared<PackedPanels>(
      PackARole
          ? packGemmA(Weights, static_cast<size_t>(K.Depth), 1, K.Extent,
                      K.Depth)
          // Dense B operand of x * W^T: B(k, j) = W[j * InFeatures + k].
          : packGemmB(Weights, 1, static_cast<size_t>(K.Depth), K.Depth,
                      K.Extent));
  const size_t PanelBytes = Panels->Data.size() * sizeof(float);

  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(K);
  if (It != Entries.end()) {
    ++Repacks;
    Bytes -= It->second.Panels->Data.size() * sizeof(float);
  } else {
    ++Misses;
    It = Entries.emplace(K, Entry{}).first;
  }
  It->second.Fingerprint = Fingerprint;
  It->second.Panels = std::move(Panels);
  It->second.LastUse = ++Clock;
  Bytes += PanelBytes;
  std::shared_ptr<const PackedPanels> Result = It->second.Panels;
  evictLocked();
  return Result;
}

void PackedWeightsCache::evictLocked() {
  while (Bytes > Budget && Entries.size() > 1) {
    auto Victim = Entries.end();
    for (auto It = Entries.begin(); It != Entries.end(); ++It)
      if (It->second.LastUse != Clock &&
          (Victim == Entries.end() ||
           It->second.LastUse < Victim->second.LastUse))
        Victim = It;
    if (Victim == Entries.end())
      return; // Only the just-used entry remains over budget; keep it.
    Bytes -= Victim->second.Panels->Data.size() * sizeof(float);
    Entries.erase(Victim);
    ++Evictions;
  }
}

void PackedWeightsCache::invalidate(const float *Weights) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto It = Entries.begin(); It != Entries.end();) {
    if (It->first.Ptr == Weights) {
      Bytes -= It->second.Panels->Data.size() * sizeof(float);
      It = Entries.erase(It);
    } else {
      ++It;
    }
  }
}

void PackedWeightsCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
  Bytes = 0;
  Hits = Misses = Repacks = Evictions = 0;
}

PackedWeightsCache::Stats PackedWeightsCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats Out;
  Out.Hits = Hits;
  Out.Misses = Misses;
  Out.Repacks = Repacks;
  Out.Evictions = Evictions;
  Out.Entries = Entries.size();
  Out.Bytes = Bytes;
  return Out;
}
