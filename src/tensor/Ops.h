//===- tensor/Ops.h - Tensor kernels ---------------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The numeric kernels under the nn layer implementations: GEMM,
/// im2col/col2im for convolution, and the elementwise/axpy helpers.
/// The GEMM entry points dispatch to the cache-blocked, register-tiled
/// (and optionally multi-threaded) engine in tensor/Kernels.h once the
/// problem is big enough to amortize panel packing; tiny problems fall
/// back to the reference triple loops, which are also exported
/// (gemmReference and friends) as the oracle for parity tests and the
/// baseline for bench_kernels.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TENSOR_OPS_H
#define WOOTZ_TENSOR_OPS_H

#include "src/tensor/Kernels.h"
#include "src/tensor/Tensor.h"

namespace wootz {

/// True when an M x K x N product is big enough that the GEMM entry
/// points below dispatch to the blocked engine rather than the
/// reference loops. Exported so freeze-time callers (wootz::plan) can
/// pre-pack operand panels exactly for the products that will use them.
bool gemmUsesBlockedEngine(int M, int K, int N);

/// C = A * B with A: MxK, B: KxN, C: MxN. \p Accumulate adds into C
/// instead of overwriting it.
void gemm(const float *A, const float *B, float *C, int M, int K, int N,
          bool Accumulate = false);

/// C = A^T * B with A: KxM, B: KxN, C: MxN.
void gemmTransposeA(const float *A, const float *B, float *C, int M, int K,
                    int N, bool Accumulate = false);

/// C = A * B^T with A: MxK, B: NxK, C: MxN.
void gemmTransposeB(const float *A, const float *B, float *C, int M, int K,
                    int N, bool Accumulate = false);

/// C = A * B + broadcast of \p Bias along rows (Bias has M entries, one
/// per row of C): the Conv2D bias epilogue fused into the GEMM so the
/// output is written exactly once.
void gemmBias(const float *A, const float *B, const float *Bias, float *C,
              int M, int K, int N);

/// The reference (seed) triple-loop GEMM kernels. Semantically identical
/// to gemm()/gemmTransposeA()/gemmTransposeB(); kept as the tiny-size
/// fallback, the parity-test oracle, and the bench_kernels baseline.
void gemmReference(const float *A, const float *B, float *C, int M, int K,
                   int N, bool Accumulate = false);
void gemmTransposeAReference(const float *A, const float *B, float *C,
                             int M, int K, int N, bool Accumulate = false);
void gemmTransposeBReference(const float *A, const float *B, float *C,
                             int M, int K, int N, bool Accumulate = false);

/// Expands one image (CHW, \p Image pointing at C*H*W floats) into
/// columns: the result has (C*KH*KW) rows and (OutH*OutW) columns.
void im2col(const float *Image, int Channels, int Height, int Width,
            const ConvGeometry &Geometry, float *Columns);

/// Inverse of im2col: accumulates columns back into the (zeroed) image.
void col2im(const float *Columns, int Channels, int Height, int Width,
            const ConvGeometry &Geometry, float *Image);

/// Out[I] += Scale * In[I] over \p Count elements.
void axpy(float Scale, const float *In, float *Out, size_t Count);

/// Out[I] *= Scale over \p Count elements.
void scale(float Scale, float *Out, size_t Count);

/// Returns the index of the largest element in [Values, Values+Count).
int argmax(const float *Values, int Count);

} // namespace wootz

#endif // WOOTZ_TENSOR_OPS_H
