//===- tensor/Ops.cpp ------------------------------------------------------===//

#include "src/tensor/Ops.h"

#include "src/tensor/Kernels.h"

#include <cstring>

using namespace wootz;

/// Below this flop volume the blocked engine's panel packing costs more
/// than its micro-kernel saves; the reference loops win.
bool wootz::gemmUsesBlockedEngine(int M, int K, int N) {
  return static_cast<size_t>(M) * K * N >= 16384;
}

static bool useBlockedGemm(int M, int K, int N) {
  return gemmUsesBlockedEngine(M, K, N);
}

void wootz::gemmReference(const float *A, const float *B, float *C, int M,
                          int K, int N, bool Accumulate) {
  if (!Accumulate)
    std::memset(C, 0, sizeof(float) * static_cast<size_t>(M) * N);
  // i-k-j loop order: the inner loop streams over B and C rows, which
  // vectorizes well and avoids strided access.
  for (int I = 0; I < M; ++I) {
    const float *ARow = A + static_cast<size_t>(I) * K;
    float *CRow = C + static_cast<size_t>(I) * N;
    for (int L = 0; L < K; ++L) {
      const float AVal = ARow[L];
      if (AVal == 0.0f)
        continue;
      const float *BRow = B + static_cast<size_t>(L) * N;
      for (int J = 0; J < N; ++J)
        CRow[J] += AVal * BRow[J];
    }
  }
}

void wootz::gemmTransposeAReference(const float *A, const float *B, float *C,
                                    int M, int K, int N, bool Accumulate) {
  if (!Accumulate)
    std::memset(C, 0, sizeof(float) * static_cast<size_t>(M) * N);
  for (int L = 0; L < K; ++L) {
    const float *ARow = A + static_cast<size_t>(L) * M;
    const float *BRow = B + static_cast<size_t>(L) * N;
    for (int I = 0; I < M; ++I) {
      const float AVal = ARow[I];
      if (AVal == 0.0f)
        continue;
      float *CRow = C + static_cast<size_t>(I) * N;
      for (int J = 0; J < N; ++J)
        CRow[J] += AVal * BRow[J];
    }
  }
}

void wootz::gemmTransposeBReference(const float *A, const float *B, float *C,
                                    int M, int K, int N, bool Accumulate) {
  if (!Accumulate)
    std::memset(C, 0, sizeof(float) * static_cast<size_t>(M) * N);
  for (int I = 0; I < M; ++I) {
    const float *ARow = A + static_cast<size_t>(I) * K;
    float *CRow = C + static_cast<size_t>(I) * N;
    for (int J = 0; J < N; ++J) {
      const float *BRow = B + static_cast<size_t>(J) * K;
      float Total = 0.0f;
      for (int L = 0; L < K; ++L)
        Total += ARow[L] * BRow[L];
      CRow[J] += Total;
    }
  }
}

void wootz::gemm(const float *A, const float *B, float *C, int M, int K,
                 int N, bool Accumulate) {
  if (useBlockedGemm(M, K, N)) {
    detail::blockedGemm(A, static_cast<size_t>(K), 1, B,
                        static_cast<size_t>(N), 1, C, M, K, N, Accumulate,
                        /*RowBias=*/nullptr);
    return;
  }
  gemmReference(A, B, C, M, K, N, Accumulate);
}

void wootz::gemmTransposeA(const float *A, const float *B, float *C, int M,
                           int K, int N, bool Accumulate) {
  if (useBlockedGemm(M, K, N)) {
    // A is stored KxM: A^T(i, k) = A[k * M + i].
    detail::blockedGemm(A, 1, static_cast<size_t>(M), B,
                        static_cast<size_t>(N), 1, C, M, K, N, Accumulate,
                        /*RowBias=*/nullptr);
    return;
  }
  gemmTransposeAReference(A, B, C, M, K, N, Accumulate);
}

void wootz::gemmTransposeB(const float *A, const float *B, float *C, int M,
                           int K, int N, bool Accumulate) {
  if (useBlockedGemm(M, K, N)) {
    // B is stored NxK: B^T(k, j) = B[j * K + k].
    detail::blockedGemm(A, static_cast<size_t>(K), 1, B, 1,
                        static_cast<size_t>(K), C, M, K, N, Accumulate,
                        /*RowBias=*/nullptr);
    return;
  }
  gemmTransposeBReference(A, B, C, M, K, N, Accumulate);
}

void wootz::gemmBias(const float *A, const float *B, const float *Bias,
                     float *C, int M, int K, int N) {
  if (useBlockedGemm(M, K, N)) {
    detail::blockedGemm(A, static_cast<size_t>(K), 1, B,
                        static_cast<size_t>(N), 1, C, M, K, N,
                        /*Accumulate=*/false, Bias);
    return;
  }
  gemmReference(A, B, C, M, K, N, /*Accumulate=*/false);
  for (int I = 0; I < M; ++I) {
    float *CRow = C + static_cast<size_t>(I) * N;
    const float BiasVal = Bias[I];
    for (int J = 0; J < N; ++J)
      CRow[J] += BiasVal;
  }
}

void wootz::im2col(const float *Image, int Channels, int Height, int Width,
                   const ConvGeometry &Geometry, float *Columns) {
  const int OutH = Geometry.outExtent(Height);
  const int OutW = Geometry.outExtent(Width);
  const int Kernel = Geometry.KernelSize;
  float *Out = Columns;
  for (int C = 0; C < Channels; ++C) {
    const float *Plane = Image + static_cast<size_t>(C) * Height * Width;
    for (int KH = 0; KH < Kernel; ++KH) {
      for (int KW = 0; KW < Kernel; ++KW) {
        for (int OH = 0; OH < OutH; ++OH) {
          const int IH = OH * Geometry.Stride - Geometry.Pad + KH;
          if (IH < 0 || IH >= Height) {
            std::memset(Out, 0, sizeof(float) * OutW);
            Out += OutW;
            continue;
          }
          const float *Row = Plane + static_cast<size_t>(IH) * Width;
          for (int OW = 0; OW < OutW; ++OW) {
            const int IW = OW * Geometry.Stride - Geometry.Pad + KW;
            *Out++ = (IW >= 0 && IW < Width) ? Row[IW] : 0.0f;
          }
        }
      }
    }
  }
}

void wootz::col2im(const float *Columns, int Channels, int Height, int Width,
                   const ConvGeometry &Geometry, float *Image) {
  const int OutH = Geometry.outExtent(Height);
  const int OutW = Geometry.outExtent(Width);
  const int Kernel = Geometry.KernelSize;
  const float *In = Columns;
  for (int C = 0; C < Channels; ++C) {
    float *Plane = Image + static_cast<size_t>(C) * Height * Width;
    for (int KH = 0; KH < Kernel; ++KH) {
      for (int KW = 0; KW < Kernel; ++KW) {
        for (int OH = 0; OH < OutH; ++OH) {
          const int IH = OH * Geometry.Stride - Geometry.Pad + KH;
          if (IH < 0 || IH >= Height) {
            In += OutW;
            continue;
          }
          float *Row = Plane + static_cast<size_t>(IH) * Width;
          for (int OW = 0; OW < OutW; ++OW) {
            const int IW = OW * Geometry.Stride - Geometry.Pad + KW;
            if (IW >= 0 && IW < Width)
              Row[IW] += *In;
            ++In;
          }
        }
      }
    }
  }
}

void wootz::axpy(float Scale, const float *In, float *Out, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] += Scale * In[I];
}

void wootz::scale(float Scale, float *Out, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] *= Scale;
}

int wootz::argmax(const float *Values, int Count) {
  assert(Count > 0 && "argmax over an empty range");
  int Best = 0;
  for (int I = 1; I < Count; ++I)
    if (Values[I] > Values[Best])
      Best = I;
  return Best;
}
