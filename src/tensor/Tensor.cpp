//===- tensor/Tensor.cpp ---------------------------------------------------===//

#include "src/tensor/Tensor.h"

#include <algorithm>
#include <cmath>

using namespace wootz;

size_t Shape::elementCount() const {
  if (Dims.empty())
    return 0;
  size_t Count = 1;
  for (int Dim : Dims)
    Count *= static_cast<size_t>(Dim);
  return Count;
}

std::string Shape::str() const {
  std::string Out = "[";
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += std::to_string(Dims[I]);
  }
  return Out + "]";
}

Tensor::Tensor(Shape Shape, const std::vector<float> &Values)
    : TensorShape(std::move(Shape)), Data(Values.begin(), Values.end()) {
  assert(Data.size() == TensorShape.elementCount() &&
         "tensor data size does not match shape");
}

float &Tensor::at(int N, int C, int H, int W) {
  assert(TensorShape.rank() == 4 && "NCHW access requires rank 4");
  assert(N >= 0 && N < TensorShape[0] && C >= 0 && C < TensorShape[1] &&
         H >= 0 && H < TensorShape[2] && W >= 0 && W < TensorShape[3] &&
         "NCHW index out of range");
  const size_t Index =
      ((static_cast<size_t>(N) * TensorShape[1] + C) * TensorShape[2] + H) *
          TensorShape[3] +
      W;
  return Data[Index];
}

float Tensor::at(int N, int C, int H, int W) const {
  return const_cast<Tensor *>(this)->at(N, C, H, W);
}

float &Tensor::at(int Row, int Col) {
  assert(TensorShape.rank() == 2 && "matrix access requires rank 2");
  assert(Row >= 0 && Row < TensorShape[0] && Col >= 0 &&
         Col < TensorShape[1] && "matrix index out of range");
  return Data[static_cast<size_t>(Row) * TensorShape[1] + Col];
}

float Tensor::at(int Row, int Col) const {
  return const_cast<Tensor *>(this)->at(Row, Col);
}

void Tensor::fill(float Value) {
  std::fill(Data.begin(), Data.end(), Value);
}

void Tensor::reshape(Shape NewShape) {
  assert(NewShape.elementCount() == Data.size() &&
         "reshape must preserve element count");
  TensorShape = std::move(NewShape);
}

double Tensor::sum() const {
  double Total = 0.0;
  for (float Value : Data)
    Total += Value;
  return Total;
}

double Tensor::mean() const {
  return Data.empty() ? 0.0 : sum() / static_cast<double>(Data.size());
}

double Tensor::rmsNorm() const {
  if (Data.empty())
    return 0.0;
  double Total = 0.0;
  for (float Value : Data)
    Total += static_cast<double>(Value) * Value;
  return std::sqrt(Total / static_cast<double>(Data.size()));
}
