//===- tensor/PackedWeights.h - Persistent packed weight panels ------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide cache of weight matrices pre-packed into the blocked
/// GEMM engine's panel layout (tensor/Kernels.h). The serve path runs
/// one immutable Graph through N concurrent ExecContexts, and before
/// this cache every eval forward re-packed every conv and dense weight
/// per request; now each weight is packed once per process and every
/// subsequent forward reuses the panels.
///
/// Entries are keyed by (data pointer, operand role, extents) and carry
/// a fast content fingerprint (support/Hash.h hashBytes64) of the
/// weight bytes that is re-validated on EVERY lookup: a weight mutated
/// by training no longer matches, the entry is repacked in place, and
/// stale panels are never used. The fingerprint pass reads the weight
/// matrix once (O(M*K) bytes) — small next to the O(M*K*N) GEMM it
/// fronts — so correctness under mutation costs a few percent, not a
/// re-pack.
///
/// The cache is bounded: total panel bytes are capped (default 256 MB,
/// override with WOOTZ_PACKED_WEIGHTS_MB) with least-recently-used
/// eviction, so a long pruning run that materializes thousands of
/// candidate networks cannot grow it without limit. Returned panels are
/// shared_ptrs, so an entry evicted or repacked mid-use stays alive for
/// the caller that holds it.
///
/// All methods are thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_TENSOR_PACKEDWEIGHTS_H
#define WOOTZ_TENSOR_PACKEDWEIGHTS_H

#include "src/tensor/Kernels.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

namespace wootz {

/// The process-wide packed-weight-panel cache. See the file comment.
class PackedWeightsCache {
public:
  /// Cache-wide observability counters (serve exports them as
  /// /metrics gauges).
  struct Stats {
    uint64_t Hits = 0;      ///< Lookups served from a valid entry.
    uint64_t Misses = 0;    ///< Lookups that packed a new entry.
    uint64_t Repacks = 0;   ///< Lookups that found a stale fingerprint.
    uint64_t Evictions = 0; ///< Entries dropped by the byte cap.
    size_t Entries = 0;     ///< Live entries.
    size_t Bytes = 0;       ///< Live panel bytes.
  };

  /// The process-wide instance.
  static PackedWeightsCache &instance();

  /// Panels for a conv weight matrix used as the GEMM A operand:
  /// row-major \p OutChannels x \p ColRows (OIHW flattened). Packs on
  /// first sight or stale fingerprint, otherwise returns the cached
  /// panels.
  std::shared_ptr<const PackedPanels>
  convWeights(const float *Weights, int OutChannels, int ColRows);

  /// Panels for a dense weight matrix used as the GEMM B operand of
  /// x * W^T: \p Weights is row-major [\p OutFeatures, \p InFeatures],
  /// addressed as B(k, j) = Weights[j * InFeatures + k].
  std::shared_ptr<const PackedPanels>
  denseWeights(const float *Weights, int OutFeatures, int InFeatures);

  /// Drops every entry keyed by \p Weights (any role or extents). Not
  /// required for correctness — stale entries self-invalidate — but
  /// reclaims the bytes eagerly when a model is destroyed.
  void invalidate(const float *Weights);

  /// Drops every entry and zeroes the counters (tests).
  void clear();

  Stats stats() const;

  /// The eviction threshold in bytes.
  size_t byteBudget() const { return Budget; }

private:
  PackedWeightsCache();

  enum class Role : char { ConvA, DenseB };

  struct Key {
    const float *Ptr = nullptr;
    Role Kind = Role::ConvA;
    int Extent = 0;
    int Depth = 0;

    bool operator<(const Key &Other) const {
      if (Ptr != Other.Ptr)
        return Ptr < Other.Ptr;
      if (Kind != Other.Kind)
        return Kind < Other.Kind;
      if (Extent != Other.Extent)
        return Extent < Other.Extent;
      return Depth < Other.Depth;
    }
  };

  struct Entry {
    uint64_t Fingerprint = 0;
    std::shared_ptr<const PackedPanels> Panels;
    uint64_t LastUse = 0;
  };

  std::shared_ptr<const PackedPanels>
  lookup(const Key &K, const float *Weights, bool PackARole);

  /// Drops least-recently-used entries until the byte budget holds.
  /// Never drops the most recently used entry. Caller holds Mutex.
  void evictLocked();

  mutable std::mutex Mutex;
  std::map<Key, Entry> Entries;
  uint64_t Clock = 0;
  uint64_t Hits = 0, Misses = 0, Repacks = 0, Evictions = 0;
  size_t Bytes = 0;
  size_t Budget = 0;
};

} // namespace wootz

#endif // WOOTZ_TENSOR_PACKEDWEIGHTS_H
