//===- runtime/RunLog.cpp --------------------------------------------------===//

#include "src/runtime/RunLog.h"

#include "src/support/File.h"
#include "src/support/Json.h"

#include <algorithm>

using namespace wootz;

double RunTelemetry::makespan() const {
  double End = 0.0;
  for (const SpanEvent &Span : Spans)
    End = std::max(End, Span.EndAt);
  return End;
}

double RunTelemetry::busySeconds(const std::string &Kind) const {
  double Total = 0.0;
  for (const SpanEvent &Span : Spans)
    if (Span.Kind == Kind && Span.Status != "cancelled")
      Total += Span.runSeconds();
  return Total;
}

double RunTelemetry::lastEnd(const std::string &Kind) const {
  double End = 0.0;
  for (const SpanEvent &Span : Spans)
    if (Span.Kind == Kind && Span.Status == "done")
      End = std::max(End, Span.EndAt);
  return End;
}

double RunTelemetry::firstStart(const std::string &Kind) const {
  double Start = -1.0;
  for (const SpanEvent &Span : Spans)
    if (Span.Kind == Kind && Span.Status != "cancelled")
      Start = Start < 0.0 ? Span.StartAt : std::min(Start, Span.StartAt);
  return Start < 0.0 ? 0.0 : Start;
}

int64_t RunTelemetry::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

std::string wootz::spanKindFromName(const std::string &Name) {
  const size_t Colon = Name.find(':');
  if (Colon == std::string::npos || Colon == 0)
    return "task";
  return Name.substr(0, Colon);
}

void RunLog::record(SpanEvent Event) {
  if (Event.Kind.empty())
    Event.Kind = spanKindFromName(Event.Name);
  std::lock_guard<std::mutex> Lock(Mutex);
  Spans.push_back(std::move(Event));
}

void RunLog::bump(const std::string &Name, int64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Counters[Name] += Delta;
}

std::map<std::string, int64_t> RunLog::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

RunTelemetry RunLog::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  RunTelemetry Out;
  Out.Spans = Spans;
  Out.Counters = Counters;
  Out.Measured = true;
  return Out;
}

std::string wootz::telemetryJsonl(const RunTelemetry &Telemetry) {
  std::string Out;
  for (const SpanEvent &Span : Telemetry.Spans) {
    JsonObject Line;
    Line.field("type", "span")
        .field("name", Span.Name)
        .field("kind", Span.Kind)
        .field("worker", Span.Worker)
        .field("ready", Span.ReadyAt, 6)
        .field("start", Span.StartAt, 6)
        .field("end", Span.EndAt, 6)
        .field("queue_seconds", Span.queueSeconds(), 6)
        .field("run_seconds", Span.runSeconds(), 6)
        .field("status", Span.Status);
    if (!Span.Detail.empty())
      Line.field("detail", Span.Detail);
    Out += Line.str() + "\n";
  }
  JsonObject Tail;
  Tail.field("type", "counters");
  for (const auto &[Name, Value] : Telemetry.Counters)
    Tail.field(Name, Value);
  Out += Tail.str() + "\n";
  return Out;
}

std::string RunLog::jsonl() const { return telemetryJsonl(snapshot()); }

Error RunLog::writeJsonl(const std::string &Path) const {
  return writeFile(Path, jsonl());
}
