//===- runtime/TaskGraph.cpp -----------------------------------------------===//

#include "src/runtime/TaskGraph.h"

#include <algorithm>
#include <thread>

using namespace wootz;

namespace {

constexpr TaskId NoTask = static_cast<TaskId>(-1);
constexpr size_t NoPos = static_cast<size_t>(-1);

/// True when ready task (PriorityA, IdA) should run before (PriorityB,
/// IdB): higher priority first, insertion order among equals.
bool runsBefore(int PriorityA, TaskId IdA, int PriorityB, TaskId IdB) {
  if (PriorityA != PriorityB)
    return PriorityA > PriorityB;
  return IdA < IdB;
}

/// std::push_heap comparator placing the best-to-run entry on top.
bool heapLess(const std::pair<int, TaskId> &A,
              const std::pair<int, TaskId> &B) {
  return runsBefore(B.first, B.second, A.first, A.second);
}

} // namespace

TaskGraph::TaskGraph(RunLog *Log)
    : Log(Log), Origin(std::chrono::steady_clock::now()) {}

double TaskGraph::now() const {
  if (Log)
    return Log->now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Origin)
      .count();
}

TaskId TaskGraph::add(std::string Name, std::vector<TaskId> Deps,
                      int Priority, std::function<Error()> Body) {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(!Started && "adding a task after run() started");
  const TaskId Id = Tasks.size();
  std::sort(Deps.begin(), Deps.end());
  Deps.erase(std::unique(Deps.begin(), Deps.end()), Deps.end());

  Task Added;
  Added.Name = std::move(Name);
  Added.Body = std::move(Body);
  Added.Priority = Priority;
  Added.UnmetDeps = Deps.size();
  Tasks.push_back(std::move(Added));
  for (TaskId Dep : Deps) {
    assert(Dep < Id && "dependency on a not-yet-added task");
    Tasks[Dep].Dependents.push_back(Id);
  }
  return Id;
}

void TaskGraph::readyLocked(TaskId Id, int Worker) {
  Task &Readied = Tasks[Id];
  Readied.State = TaskState::Ready;
  Readied.ReadyAt = now();
  if (Worker >= 0 && static_cast<size_t>(Worker) < Local.size())
    Local[Worker].push_back(Id);
  else {
    Heap.emplace_back(Readied.Priority, Id);
    std::push_heap(Heap.begin(), Heap.end(), heapLess);
  }
}

TaskId TaskGraph::pickLocked(int Worker) {
  // Compacts stale (no longer Ready) entries out of a local list and
  // returns the position of its best runnable task.
  auto bestOf = [&](std::vector<TaskId> &List) -> size_t {
    size_t Keep = 0;
    size_t BestPos = NoPos;
    for (TaskId Id : List) {
      if (Tasks[Id].State != TaskState::Ready)
        continue;
      List[Keep] = Id;
      if (BestPos == NoPos ||
          runsBefore(Tasks[Id].Priority, Id, Tasks[List[BestPos]].Priority,
                     List[BestPos]))
        BestPos = Keep;
      ++Keep;
    }
    List.resize(Keep);
    return BestPos;
  };

  while (!Heap.empty() &&
         Tasks[Heap.front().second].State != TaskState::Ready) {
    std::pop_heap(Heap.begin(), Heap.end(), heapLess);
    Heap.pop_back();
  }
  const TaskId FromHeap = Heap.empty() ? NoTask : Heap.front().second;

  const size_t LocalPos = bestOf(Local[Worker]);
  const TaskId FromLocal =
      LocalPos == NoPos ? NoTask : Local[Worker][LocalPos];

  if (FromLocal != NoTask &&
      (FromHeap == NoTask ||
       runsBefore(Tasks[FromLocal].Priority, FromLocal,
                  Tasks[FromHeap].Priority, FromHeap))) {
    Local[Worker].erase(Local[Worker].begin() + LocalPos);
    return FromLocal;
  }
  if (FromHeap != NoTask) {
    std::pop_heap(Heap.begin(), Heap.end(), heapLess);
    Heap.pop_back();
    return FromHeap;
  }

  // Nothing of our own: steal the best runnable task from a peer.
  size_t VictimWorker = NoPos, VictimPos = NoPos;
  for (size_t Peer = 0; Peer < Local.size(); ++Peer) {
    if (Peer == static_cast<size_t>(Worker))
      continue;
    const size_t Pos = bestOf(Local[Peer]);
    if (Pos == NoPos)
      continue;
    const TaskId Candidate = Local[Peer][Pos];
    if (VictimWorker == NoPos ||
        runsBefore(Tasks[Candidate].Priority, Candidate,
                   Tasks[Local[VictimWorker][VictimPos]].Priority,
                   Local[VictimWorker][VictimPos])) {
      VictimWorker = Peer;
      VictimPos = Pos;
    }
  }
  if (VictimWorker == NoPos)
    return NoTask;
  const TaskId Stolen = Local[VictimWorker][VictimPos];
  Local[VictimWorker].erase(Local[VictimWorker].begin() + VictimPos);
  return Stolen;
}

void TaskGraph::recordTerminalLocked(const Task &Finished,
                                     const std::string &Status,
                                     const std::string &Detail) {
  if (!Log)
    return;
  SpanEvent Span;
  Span.Name = Finished.Name;
  Span.Worker = Finished.Worker;
  Span.ReadyAt = Finished.ReadyAt;
  Span.StartAt = Finished.StartAt;
  // A cancelled body never ran: its span is exactly zero-length.
  Span.EndAt = Status == "cancelled" ? Finished.StartAt : now();
  Span.Status = Status;
  Span.Detail = Detail;
  Log->record(std::move(Span));
}

bool TaskGraph::cancelLocked(TaskId Id) {
  Task &Target = Tasks[Id];
  if (Target.State != TaskState::Blocked &&
      Target.State != TaskState::Ready)
    return false;
  const double Now = now();
  if (Target.State == TaskState::Blocked)
    Target.ReadyAt = Now;
  Target.StartAt = Now; // Zero-length span: the body never ran.
  Target.State = TaskState::Cancelled;
  recordTerminalLocked(Target, "cancelled", "");
  if (Log)
    Log->bump("tasks_cancelled");
  ++Cancelled;
  if (Started) // Before run(), Remaining has not been counted yet.
    --Remaining;
  for (TaskId Dependent : Target.Dependents)
    cancelLocked(Dependent);
  return true;
}

bool TaskGraph::cancel(TaskId Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(Id < Tasks.size() && "cancelling an unknown task");
  const bool DidCancel = cancelLocked(Id);
  if (DidCancel)
    WorkAvailable.notify_all();
  return DidCancel;
}

void TaskGraph::completeLocked(TaskId Id, Error TaskError) {
  Task &Finished = Tasks[Id];
  const bool DidFail = static_cast<bool>(TaskError);
  Finished.State = DidFail ? TaskState::Failed : TaskState::Done;
  recordTerminalLocked(Finished, DidFail ? "failed" : "done",
                       DidFail ? TaskError.message() : std::string());
  if (Log)
    Log->bump(DidFail ? "tasks_failed" : "tasks_done");
  --Remaining;
  if (DidFail) {
    if (FirstError.empty())
      FirstError = TaskError.message();
    FailedFast = true;
    // Fail fast: nothing that has not started may start.
    for (TaskId Pending = 0; Pending < Tasks.size(); ++Pending)
      cancelLocked(Pending);
  } else {
    for (TaskId Dependent : Finished.Dependents) {
      Task &Blocked = Tasks[Dependent];
      if (Blocked.State == TaskState::Blocked && --Blocked.UnmetDeps == 0)
        readyLocked(Dependent, Finished.Worker);
    }
  }
  WorkAvailable.notify_all();
}

void TaskGraph::workerLoop(int Worker) {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    const TaskId Id = pickLocked(Worker);
    if (Id == NoTask) {
      if (Remaining == 0)
        return;
      WorkAvailable.wait(Lock);
      continue;
    }
    Task &Picked = Tasks[Id];
    Picked.State = TaskState::Running;
    Picked.StartAt = now();
    Picked.Worker = Worker;
    std::function<Error()> Body = std::move(Picked.Body);
    Lock.unlock();
    Error TaskError = Body();
    Lock.lock();
    completeLocked(Id, std::move(TaskError));
  }
}

Error TaskGraph::run(unsigned Workers) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!Started && "TaskGraph::run() may be called once");
    Started = true;
    Remaining = 0;
    Local.assign(std::max(1u, Workers), std::vector<TaskId>());
    for (TaskId Id = 0; Id < Tasks.size(); ++Id) {
      if (Tasks[Id].State != TaskState::Blocked)
        continue; // Cancelled before the run began.
      ++Remaining;
      if (Tasks[Id].UnmetDeps == 0)
        readyLocked(Id, /*Worker=*/-1);
    }
  }

  if (Workers == 0) {
    // Inline: the calling thread plays worker 0, so spans still carry
    // meaningful ready/start/end times and priorities still order work.
    std::unique_lock<std::mutex> Lock(Mutex);
    for (;;) {
      const TaskId Id = pickLocked(0);
      if (Id == NoTask)
        break;
      Task &Picked = Tasks[Id];
      Picked.State = TaskState::Running;
      Picked.StartAt = now();
      Picked.Worker = -1;
      std::function<Error()> Body = std::move(Picked.Body);
      Lock.unlock();
      Error TaskError = Body();
      Lock.lock();
      completeLocked(Id, std::move(TaskError));
    }
    assert(Remaining == 0 && "inline run left unreachable tasks");
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(Workers);
    for (unsigned Worker = 0; Worker < Workers; ++Worker)
      Threads.emplace_back([this, Worker] {
        workerLoop(static_cast<int>(Worker));
      });
    for (std::thread &Thread : Threads)
      Thread.join();
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  if (!FirstError.empty())
    return Error::failure(FirstError);
  return Error::success();
}

TaskState TaskGraph::state(TaskId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(Id < Tasks.size() && "querying an unknown task");
  return Tasks[Id].State;
}

const std::string &TaskGraph::name(TaskId Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(Id < Tasks.size() && "querying an unknown task");
  return Tasks[Id].Name;
}

size_t TaskGraph::taskCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Tasks.size();
}

size_t TaskGraph::cancelledCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Cancelled;
}
