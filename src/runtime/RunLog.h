//===- runtime/RunLog.h - Structured run telemetry -------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Telemetry for runtime-scheduled runs. A RunLog collects *span events*
/// (one per task: when it became ready, started, and finished, on which
/// worker, with what outcome) on a single monotonic clock, plus named
/// counters. Everything the scheduler measures flows through here, so a
/// run can be replayed from its log: overlap between block pre-training
/// and configuration fine-tuning, queue wait versus run time per task,
/// and how much exploration the cancellation rule saved.
///
/// The log serializes as JSONL — one `{"type":"span",...}` object per
/// task followed by a single `{"type":"counters",...}` object — so later
/// PRs (and external tooling) can diff run shapes without parsing tables.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_RUNTIME_RUNLOG_H
#define WOOTZ_RUNTIME_RUNLOG_H

#include "src/support/Error.h"

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace wootz {

/// One task's life on the run clock (seconds since the log was created).
struct SpanEvent {
  /// Task name, conventionally "<kind>:<detail>" (e.g. "eval:3").
  std::string Name;
  /// The part before ':' in Name ("eval", "pretrain"), or "task".
  std::string Kind;
  /// Worker index that ran the task; -1 for inline/none.
  int Worker = -1;
  /// When the task became runnable (dependencies satisfied).
  double ReadyAt = 0.0;
  /// When a worker began executing it (== ReadyAt for cancelled tasks).
  double StartAt = 0.0;
  /// When it reached a terminal state.
  double EndAt = 0.0;
  /// "done", "failed", or "cancelled".
  std::string Status = "done";
  /// Diagnostic detail (the error message for failed tasks).
  std::string Detail;

  double queueSeconds() const { return StartAt - ReadyAt; }
  double runSeconds() const { return EndAt - StartAt; }
};

/// An immutable snapshot of a run's telemetry, carried by results.
struct RunTelemetry {
  std::vector<SpanEvent> Spans;
  std::map<std::string, int64_t> Counters;
  /// True when the telemetry comes from a real (measured) runtime
  /// execution rather than being empty/simulated.
  bool Measured = false;

  /// Wall-clock extent of the run: max EndAt over all spans.
  double makespan() const;
  /// Sum of runSeconds() over spans whose Kind matches.
  double busySeconds(const std::string &Kind) const;
  /// Latest EndAt over spans of \p Kind with \p Status "done" (0 when
  /// none).
  double lastEnd(const std::string &Kind) const;
  /// Earliest StartAt over "done"/"failed" spans of \p Kind (+inf -> 0
  /// when none ran).
  double firstStart(const std::string &Kind) const;
  int64_t counter(const std::string &Name) const;
};

/// Thread-safe telemetry recorder on one monotonic clock.
class RunLog {
public:
  RunLog() : Origin(Clock::now()) {}

  RunLog(const RunLog &) = delete;
  RunLog &operator=(const RunLog &) = delete;

  /// Seconds elapsed on the log's clock.
  double now() const {
    return std::chrono::duration<double>(Clock::now() - Origin).count();
  }

  /// Appends a finished span.
  void record(SpanEvent Event);

  /// Adds \p Delta to counter \p Name (creating it at zero).
  void bump(const std::string &Name, int64_t Delta = 1);

  /// Copies the current state out.
  RunTelemetry snapshot() const;

  /// Copies just the counters out (under the log's lock), without the
  /// span vector. This is the cheap read path for live observers — the
  /// serve /metrics endpoint samples a running pipeline's counters this
  /// way without racing the scheduler or paying for a span copy.
  std::map<std::string, int64_t> counters() const;

  /// Renders the whole log as JSONL (spans in record order, then one
  /// counters object).
  std::string jsonl() const;

  /// Writes jsonl() to \p Path.
  Error writeJsonl(const std::string &Path) const;

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Origin;
  mutable std::mutex Mutex;
  std::vector<SpanEvent> Spans;
  std::map<std::string, int64_t> Counters;
};

/// Derives Kind ("eval" in "eval:3") from a task name; "task" when the
/// name has no ':' prefix.
std::string spanKindFromName(const std::string &Name);

/// Renders a telemetry snapshot as JSONL (same format as RunLog::jsonl).
std::string telemetryJsonl(const RunTelemetry &Telemetry);

} // namespace wootz

#endif // WOOTZ_RUNTIME_RUNLOG_H
