//===- runtime/TaskGraph.h - Dependency-DAG task scheduler -----------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution runtime behind measured-parallel pruning runs. A
/// TaskGraph holds tasks with explicit dependency edges and priorities;
/// run() executes them on a small work-stealing worker pool:
///
///  - each worker keeps a local ready list, fed by the dependents its own
///    completions unblock (locality: a config's fine-tune tends to run on
///    the worker that finished its last block group);
///  - tasks readied up front (or with no dependencies) sit in a shared
///    priority heap;
///  - a worker picks the highest-priority task visible to it (local list
///    or heap top) and, when both are empty, steals the best task from a
///    peer's local list.
///
/// Cancellation is first-class: a task that has not started can be
/// cancelled (its dependents cascade, since they can never run), which is
/// how the exploration pipeline stops paying for configurations that
/// provably cannot win. A task failure fail-fasts the graph: everything
/// not yet started is cancelled and run() returns the first error.
///
/// Every task's ready/start/end times, worker, and outcome are recorded
/// as SpanEvents on the attached RunLog (see RunLog.h), the telemetry
/// layer run reports summarize.
///
/// Dependencies must point at already-added tasks, which makes the graph
/// acyclic by construction. The scheduler trades lock granularity for
/// simplicity — one mutex guards all state — which is the right call at
/// this runtime's task granularity (block pre-training and network
/// fine-tuning, i.e. seconds, not microseconds).
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_RUNTIME_TASKGRAPH_H
#define WOOTZ_RUNTIME_TASKGRAPH_H

#include "src/runtime/RunLog.h"
#include "src/support/Error.h"

#include <cassert>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace wootz {

/// Identifies a task within its TaskGraph (the index of the add() call).
using TaskId = size_t;

/// Life-cycle of a task.
enum class TaskState {
  Blocked,   ///< Waiting on at least one dependency.
  Ready,     ///< Runnable, queued.
  Running,   ///< Executing on a worker.
  Done,      ///< Finished successfully.
  Failed,    ///< Body returned an Error.
  Cancelled, ///< Cancelled before it started.
};

/// A single-value future fulfilled by a task (see addProducing()). Reads
/// are safe from dependent tasks and after run() returns: the scheduler's
/// completion ordering provides the happens-before edge.
template <typename T> class TaskSlot {
public:
  bool ready() const { return HasValue; }
  void set(T Value) {
    Stored = std::move(Value);
    HasValue = true;
  }
  const T &get() const {
    assert(HasValue && "reading an unfulfilled TaskSlot");
    return Stored;
  }
  T take() {
    assert(HasValue && "taking an unfulfilled TaskSlot");
    HasValue = false;
    return std::move(Stored);
  }

private:
  T Stored{};
  bool HasValue = false;
};

/// A dependency DAG of fallible tasks plus its scheduler.
class TaskGraph {
public:
  /// Span events and counters go to \p Log when non-null.
  explicit TaskGraph(RunLog *Log = nullptr);
  ~TaskGraph() = default;

  TaskGraph(const TaskGraph &) = delete;
  TaskGraph &operator=(const TaskGraph &) = delete;

  /// Adds a task. \p Deps must name already-added tasks (this keeps the
  /// graph acyclic by construction); higher \p Priority runs first among
  /// ready tasks, ties broken by insertion order. Must not be called
  /// after run() has started.
  TaskId add(std::string Name, std::vector<TaskId> Deps, int Priority,
             std::function<Error()> Body);

  /// Adds a task whose value lands in \p Out on success. \p Out must
  /// outlive run().
  template <typename T>
  TaskId addProducing(std::string Name, std::vector<TaskId> Deps,
                      int Priority, std::function<Result<T>()> Body,
                      TaskSlot<T> &Out) {
    return add(std::move(Name), std::move(Deps), Priority,
               [Body = std::move(Body), &Out]() -> Error {
                 Result<T> Value = Body();
                 if (!Value)
                   return Value.takeError();
                 Out.set(Value.take());
                 return Error::success();
               });
  }

  /// Executes the whole graph on \p Workers threads (0: inline on the
  /// calling thread, still respecting dependencies and priorities).
  /// Returns the first task failure, after cancelling everything that had
  /// not started. May be called once.
  Error run(unsigned Workers);

  /// Cancels \p Id if it has not started, cascading to its dependents
  /// (they can never run once a dependency is cancelled). Safe to call
  /// from inside a running task — that is how the pipeline prunes the
  /// exploration frontier. Returns true when the task was cancelled by
  /// this call.
  bool cancel(TaskId Id);

  /// Current state of a task (thread-safe).
  TaskState state(TaskId Id) const;

  /// Name a task was added under.
  const std::string &name(TaskId Id) const;

  size_t taskCount() const;
  /// Tasks cancelled so far (direct and cascaded).
  size_t cancelledCount() const;

private:
  struct Task {
    std::string Name;
    std::function<Error()> Body;
    std::vector<TaskId> Dependents;
    int Priority = 0;
    size_t UnmetDeps = 0;
    TaskState State = TaskState::Blocked;
    double ReadyAt = 0.0;
    double StartAt = 0.0;
    int Worker = -1;
  };

  double now() const;
  /// All the *Locked helpers require Mutex to be held.
  void readyLocked(TaskId Id, int Worker);
  TaskId pickLocked(int Worker);
  bool cancelLocked(TaskId Id);
  void completeLocked(TaskId Id, Error TaskError);
  void recordTerminalLocked(const Task &Finished, const std::string &Status,
                            const std::string &Detail);
  void workerLoop(int Worker);

  RunLog *Log = nullptr;
  std::chrono::steady_clock::time_point Origin;

  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::vector<Task> Tasks;
  /// Shared ready heap: (priority, insertion id), lazily cleaned.
  std::vector<std::pair<int, TaskId>> Heap;
  /// Per-worker ready lists (index 0 doubles as the inline list).
  std::vector<std::vector<TaskId>> Local;
  size_t Remaining = 0;
  size_t Cancelled = 0;
  bool Started = false;
  bool FailedFast = false;
  std::string FirstError;
};

} // namespace wootz

#endif // WOOTZ_RUNTIME_TASKGRAPH_H
