//===- runtime/Cancel.h - Cooperative cancellation token -------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-way cancellation flag shared between the owner of a long-running
/// run (a serve job, a CLI signal handler) and the code doing the work.
/// The owner calls cancel(); workers poll cancelled() at task boundaries
/// and return an error, which the TaskGraph's fail-fast rule turns into a
/// cascade cancellation of everything not yet started. The token carries
/// no callback machinery on purpose: polling at task granularity (seconds
/// of training per task) is cheap and keeps the token trivially
/// thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_RUNTIME_CANCEL_H
#define WOOTZ_RUNTIME_CANCEL_H

#include <atomic>

namespace wootz {

/// A sticky, thread-safe cancellation flag. Once cancelled, always
/// cancelled; there is deliberately no reset.
class CancelToken {
public:
  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Requests cancellation. Idempotent; safe from any thread.
  void cancel() { Flag.store(true, std::memory_order_release); }

  /// True once cancel() has been called.
  bool cancelled() const { return Flag.load(std::memory_order_acquire); }

private:
  std::atomic<bool> Flag{false};
};

} // namespace wootz

#endif // WOOTZ_RUNTIME_CANCEL_H
