//===- proto/Prototxt.h - Generic Prototxt parsing --------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A standalone parser for the Caffe Prototxt text format, which Wootz
/// takes as its model-input format (§4: "Prototxt has a clean fixed
/// format. It is easy for programmers to write and simple for our
/// compiler to analyze."). The grammar handled here:
///
/// \code
///   message := (field)*
///   field   := IDENT ':' scalar | IDENT '{' message '}' | IDENT ':' '{' message '}'
///   scalar  := STRING | NUMBER | IDENT        (identifiers cover enums/bools)
/// \endcode
///
/// Comments run from '#' to end of line. Repeated fields accumulate in
/// declaration order.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_PROTO_PROTOTXT_H
#define WOOTZ_PROTO_PROTOTXT_H

#include "src/support/Error.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wootz {

/// One parsed field value: either a scalar (kept as its source text) or a
/// nested message.
class PrototxtValue;

/// A parsed Prototxt message: an ordered multimap field-name -> values.
class PrototxtMessage {
public:
  /// Appends a value under \p FieldName.
  void add(const std::string &FieldName, PrototxtValue Value);

  /// All values of \p FieldName in declaration order.
  const std::vector<PrototxtValue> &
  values(const std::string &FieldName) const;

  /// True if \p FieldName occurs at least once.
  bool has(const std::string &FieldName) const;

  /// The sole scalar value of \p FieldName, or \p Default when absent.
  /// A repeated or message-valued field is a recoverable Error — fields
  /// come from untrusted input, so none of these accessors assert.
  Result<std::string> scalarOr(const std::string &FieldName,
                               const std::string &Default) const;

  /// Integer convenience over scalarOr(); non-integer text is an Error.
  Result<long long> intOr(const std::string &FieldName,
                          long long Default) const;

  /// Double convenience over scalarOr(); non-numeric text is an Error.
  Result<double> doubleOr(const std::string &FieldName,
                          double Default) const;

  /// Boolean convenience: accepts exactly true/false/1/0; anything else
  /// ("True", "yes", ...) is an Error, never silently false.
  Result<bool> boolOr(const std::string &FieldName, bool Default) const;

  /// Field names in first-occurrence order.
  const std::vector<std::string> &fieldOrder() const { return Order; }

private:
  std::map<std::string, std::vector<PrototxtValue>> Fields;
  std::vector<std::string> Order;
};

class PrototxtValue {
public:
  /// Creates a scalar value from its source text (quotes stripped).
  static PrototxtValue scalar(std::string Text);

  /// Creates a message value.
  static PrototxtValue message(PrototxtMessage Msg);

  bool isScalar() const { return !Msg; }

  /// Scalar text; asserts on message values.
  const std::string &text() const;

  /// Nested message; asserts on scalar values.
  const PrototxtMessage &message() const;

private:
  std::string Text;
  std::shared_ptr<PrototxtMessage> Msg; ///< Shared to keep values copyable.
};

/// Parses \p Source into a top-level message. Errors carry a line number.
Result<PrototxtMessage> parsePrototxt(const std::string &Source);

/// Escapes \p Text for use inside a double-quoted Prototxt string
/// literal (backslash, quotes, newline, tab — the escapes the lexer
/// understands), so printed specs round-trip through parsePrototxt().
std::string prototxtEscape(const std::string &Text);

} // namespace wootz

#endif // WOOTZ_PROTO_PROTOTXT_H
