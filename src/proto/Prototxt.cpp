//===- proto/Prototxt.cpp --------------------------------------------------===//

#include "src/proto/Prototxt.h"

#include "src/support/StringUtils.h"

#include <cctype>

using namespace wootz;

//===----------------------------------------------------------------------===//
// PrototxtMessage / PrototxtValue
//===----------------------------------------------------------------------===//

void PrototxtMessage::add(const std::string &FieldName,
                          PrototxtValue Value) {
  auto [It, Inserted] = Fields.try_emplace(FieldName);
  if (Inserted)
    Order.push_back(FieldName);
  It->second.push_back(std::move(Value));
}

const std::vector<PrototxtValue> &
PrototxtMessage::values(const std::string &FieldName) const {
  static const std::vector<PrototxtValue> Empty;
  auto It = Fields.find(FieldName);
  return It == Fields.end() ? Empty : It->second;
}

bool PrototxtMessage::has(const std::string &FieldName) const {
  return Fields.count(FieldName) != 0;
}

Result<std::string>
PrototxtMessage::scalarOr(const std::string &FieldName,
                          const std::string &Default) const {
  const std::vector<PrototxtValue> &Values = values(FieldName);
  if (Values.empty())
    return Default;
  if (Values.size() != 1)
    return Error::failure("field '" + FieldName +
                          "' occurs " + std::to_string(Values.size()) +
                          " times, expected a single value");
  if (!Values[0].isScalar())
    return Error::failure("field '" + FieldName +
                          "' is a message, expected a scalar");
  return Values[0].text();
}

Result<long long> PrototxtMessage::intOr(const std::string &FieldName,
                                         long long Default) const {
  if (!has(FieldName))
    return Default;
  Result<std::string> Text = scalarOr(FieldName, "");
  if (!Text)
    return Text.takeError();
  Result<long long> Parsed = parseInteger(*Text);
  if (!Parsed)
    return Error::failure("field '" + FieldName + "': " +
                          Parsed.message());
  return *Parsed;
}

Result<double> PrototxtMessage::doubleOr(const std::string &FieldName,
                                         double Default) const {
  if (!has(FieldName))
    return Default;
  Result<std::string> Text = scalarOr(FieldName, "");
  if (!Text)
    return Text.takeError();
  Result<double> Parsed = parseDouble(*Text);
  if (!Parsed)
    return Error::failure("field '" + FieldName + "': " +
                          Parsed.message());
  return *Parsed;
}

Result<bool> PrototxtMessage::boolOr(const std::string &FieldName,
                                     bool Default) const {
  if (!has(FieldName))
    return Default;
  Result<std::string> Text = scalarOr(FieldName, "");
  if (!Text)
    return Text.takeError();
  if (*Text == "true" || *Text == "1")
    return true;
  if (*Text == "false" || *Text == "0")
    return false;
  return Error::failure("field '" + FieldName +
                        "' must be true or false, found '" + *Text + "'");
}

PrototxtValue PrototxtValue::scalar(std::string Text) {
  PrototxtValue V;
  V.Text = std::move(Text);
  return V;
}

PrototxtValue PrototxtValue::message(PrototxtMessage Msg) {
  PrototxtValue V;
  V.Msg = std::make_shared<PrototxtMessage>(std::move(Msg));
  return V;
}

const std::string &PrototxtValue::text() const {
  assert(isScalar() && "text() on a message value");
  return Text;
}

const PrototxtMessage &PrototxtValue::message() const {
  assert(!isScalar() && "message() on a scalar value");
  return *Msg;
}

//===----------------------------------------------------------------------===//
// Lexer and parser
//===----------------------------------------------------------------------===//

namespace {

enum class TokenKind { Ident, String, Number, Colon, LBrace, RBrace, End };

struct Token {
  TokenKind Kind;
  std::string Text;
  int Line;
};

/// Hand-rolled lexer over the Prototxt source.
class Lexer {
public:
  explicit Lexer(const std::string &Source) : Source(Source) {}

  /// Scans the next token; reports unterminated strings / bad characters.
  Result<Token> next() {
    skipTrivia();
    if (Position >= Source.size())
      return Token{TokenKind::End, "", Line};
    const char First = Source[Position];
    if (First == ':') {
      ++Position;
      return Token{TokenKind::Colon, ":", Line};
    }
    if (First == '{') {
      ++Position;
      return Token{TokenKind::LBrace, "{", Line};
    }
    if (First == '}') {
      ++Position;
      return Token{TokenKind::RBrace, "}", Line};
    }
    if (First == '"' || First == '\'')
      return lexString(First);
    if (std::isalpha(static_cast<unsigned char>(First)) || First == '_')
      return lexIdent();
    if (std::isdigit(static_cast<unsigned char>(First)) || First == '-' ||
        First == '+' || First == '.')
      return lexNumber();
    return Error::failure("line " + std::to_string(Line) +
                          ": unexpected character '" +
                          std::string(1, First) + "'");
  }

private:
  void skipTrivia() {
    while (Position < Source.size()) {
      const char C = Source[Position];
      if (C == '#') {
        while (Position < Source.size() && Source[Position] != '\n')
          ++Position;
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(C)))
        return;
      if (C == '\n')
        ++Line;
      ++Position;
    }
  }

  Result<Token> lexString(char Quote) {
    const int StartLine = Line;
    ++Position; // Opening quote.
    std::string Text;
    while (Position < Source.size() && Source[Position] != Quote) {
      const char C = Source[Position];
      if (C == '\n')
        return Error::failure("line " + std::to_string(StartLine) +
                              ": unterminated string literal");
      if (C == '\\') {
        // A trailing backslash leaves the literal unterminated; any other
        // backslash introduces one of the standard escapes.
        if (Position + 1 >= Source.size())
          return Error::failure("line " + std::to_string(StartLine) +
                                ": unterminated string literal");
        const char Escaped = Source[Position + 1];
        switch (Escaped) {
        case '"':
        case '\'':
        case '\\':
          Text += Escaped;
          break;
        case 'n':
          Text += '\n';
          break;
        case 't':
          Text += '\t';
          break;
        default:
          return Error::failure("line " + std::to_string(StartLine) +
                                ": unsupported escape '\\" +
                                std::string(1, Escaped) +
                                "' in string literal");
        }
        Position += 2;
        continue;
      }
      Text += C;
      ++Position;
    }
    if (Position >= Source.size())
      return Error::failure("line " + std::to_string(StartLine) +
                            ": unterminated string literal");
    ++Position; // Closing quote.
    return Token{TokenKind::String, Text, StartLine};
  }

  Result<Token> lexIdent() {
    std::string Text;
    while (Position < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(Source[Position])) ||
            Source[Position] == '_'))
      Text += Source[Position++];
    return Token{TokenKind::Ident, Text, Line};
  }

  Result<Token> lexNumber() {
    std::string Text;
    while (Position < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(Source[Position])) ||
            Source[Position] == '-' || Source[Position] == '+' ||
            Source[Position] == '.'))
      Text += Source[Position++];
    return Token{TokenKind::Number, Text, Line};
  }

  const std::string &Source;
  size_t Position = 0;
  int Line = 1;
};

/// Recursive-descent parser over the token stream.
class Parser {
public:
  explicit Parser(const std::string &Source) : Tokens(Source) {}

  Result<PrototxtMessage> parseTopLevel() {
    if (Error E = advance())
      return std::move(E);
    Result<PrototxtMessage> Msg = parseMessage(/*Nested=*/false);
    if (!Msg)
      return Msg;
    if (Current.Kind != TokenKind::End)
      return Error::failure("line " + std::to_string(Current.Line) +
                            ": expected end of input, found '" +
                            Current.Text + "'");
    return Msg;
  }

private:
  Error advance() {
    Result<Token> Next = Tokens.next();
    if (!Next)
      return Next.takeError();
    Current = *Next;
    return Error::success();
  }

  Result<PrototxtMessage> parseMessage(bool Nested) {
    PrototxtMessage Msg;
    for (;;) {
      if (Current.Kind == TokenKind::End) {
        if (Nested)
          return Error::failure("unexpected end of input inside a message");
        return Msg;
      }
      if (Current.Kind == TokenKind::RBrace) {
        if (!Nested)
          return Error::failure("line " + std::to_string(Current.Line) +
                                ": unmatched '}'");
        return Msg;
      }
      if (Current.Kind != TokenKind::Ident)
        return Error::failure("line " + std::to_string(Current.Line) +
                              ": expected a field name, found '" +
                              Current.Text + "'");
      const std::string FieldName = Current.Text;
      if (Error E = advance())
        return std::move(E);

      // Either "name { ... }", "name: { ... }", or "name: scalar".
      bool SawColon = false;
      if (Current.Kind == TokenKind::Colon) {
        SawColon = true;
        if (Error E = advance())
          return std::move(E);
      }
      if (Current.Kind == TokenKind::LBrace) {
        if (Error E = advance())
          return std::move(E);
        Result<PrototxtMessage> Nested = parseMessage(/*Nested=*/true);
        if (!Nested)
          return Nested;
        assert(Current.Kind == TokenKind::RBrace && "parser invariant");
        if (Error E = advance())
          return std::move(E);
        Msg.add(FieldName, PrototxtValue::message(Nested.take()));
        continue;
      }
      if (!SawColon)
        return Error::failure("line " + std::to_string(Current.Line) +
                              ": expected ':' or '{' after field '" +
                              FieldName + "'");
      if (Current.Kind != TokenKind::Ident &&
          Current.Kind != TokenKind::String &&
          Current.Kind != TokenKind::Number)
        return Error::failure("line " + std::to_string(Current.Line) +
                              ": expected a value for field '" + FieldName +
                              "'");
      Msg.add(FieldName, PrototxtValue::scalar(Current.Text));
      if (Error E = advance())
        return std::move(E);
    }
  }

  Lexer Tokens;
  Token Current{TokenKind::End, "", 0};
};

} // namespace

Result<PrototxtMessage> wootz::parsePrototxt(const std::string &Source) {
  Parser P(Source);
  return P.parseTopLevel();
}

std::string wootz::prototxtEscape(const std::string &Text) {
  std::string Escaped;
  Escaped.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Escaped += "\\\"";
      break;
    case '\\':
      Escaped += "\\\\";
      break;
    case '\n':
      Escaped += "\\n";
      break;
    case '\t':
      Escaped += "\\t";
      break;
    default:
      Escaped += C;
    }
  }
  return Escaped;
}
