//===- proto/ModelSpec.cpp -------------------------------------------------===//

#include "src/proto/ModelSpec.h"

#include "src/support/StringUtils.h"

#include <map>
#include <set>

using namespace wootz;

const char *wootz::layerKindName(LayerKind Kind) {
  switch (Kind) {
  case LayerKind::Convolution:
    return "Convolution";
  case LayerKind::BatchNorm:
    return "BatchNorm";
  case LayerKind::ReLU:
    return "ReLU";
  case LayerKind::Pooling:
    return "Pooling";
  case LayerKind::InnerProduct:
    return "InnerProduct";
  case LayerKind::Concat:
    return "Concat";
  case LayerKind::Eltwise:
    return "Eltwise";
  }
  return "Unknown";
}

int ModelSpec::layerIndex(const std::string &Name) const {
  for (size_t I = 0; I < Layers.size(); ++I)
    if (Layers[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

//===----------------------------------------------------------------------===//
// Structural analysis
//===----------------------------------------------------------------------===//

/// True for layers that preserve the channel count of their sole input.
static bool preservesChannels(LayerKind Kind) {
  return Kind == LayerKind::BatchNorm || Kind == LayerKind::ReLU ||
         Kind == LayerKind::Pooling;
}

Error ModelSpec::analyze() {
  // Pass 1: name uniqueness and defined-before-use bottoms.
  std::set<std::string> Defined{InputName};
  for (const LayerSpec &L : Layers) {
    if (L.Name.empty())
      return Error::failure("model '" + Name + "' has an unnamed layer");
    if (Defined.count(L.Name))
      return Error::failure("duplicate layer name '" + L.Name + "'");
    if (L.Bottoms.empty())
      return Error::failure("layer '" + L.Name + "' has no bottom");
    for (const std::string &Bottom : L.Bottoms)
      if (!Defined.count(Bottom))
        return Error::failure("layer '" + L.Name + "' uses undefined bottom '" +
                              Bottom + "'");
    Defined.insert(L.Name);
  }

  // Pass 2: contiguous module runs.
  Modules.clear();
  LayerModule.assign(Layers.size(), -1);
  std::set<std::string> ClosedModules;
  for (size_t I = 0; I < Layers.size(); ++I) {
    const std::string &Label = Layers[I].Module;
    if (Label.empty())
      continue;
    if (!Modules.empty() && Modules.back().Name == Label &&
        Modules.back().LastLayer == static_cast<int>(I) - 1) {
      Modules.back().LastLayer = static_cast<int>(I);
    } else {
      if (ClosedModules.count(Label))
        return Error::failure("module '" + Label +
                              "' is not a contiguous layer run");
      if (!Modules.empty())
        ClosedModules.insert(Modules.back().Name);
      Modules.push_back({Label, static_cast<int>(I), static_cast<int>(I)});
    }
    LayerModule[I] = static_cast<int>(Modules.size()) - 1;
  }

  // Pass 3: each module consumes exactly one external producer and is
  // consumed through exactly one of its layers (the block boundaries).
  for (ModuleSpec &M : Modules) {
    std::set<std::string> External;
    for (int I = M.FirstLayer; I <= M.LastLayer; ++I) {
      for (const std::string &Bottom : Layers[I].Bottoms) {
        const int BottomIndex = layerIndex(Bottom);
        const bool Internal = BottomIndex >= M.FirstLayer &&
                              BottomIndex <= M.LastLayer;
        if (!Internal)
          External.insert(Bottom);
      }
    }
    if (External.size() != 1)
      return Error::failure("module '" + M.Name + "' must have exactly one "
                            "external input, found " +
                            std::to_string(External.size()));
    M.ExternalInput = *External.begin();

    std::set<std::string> Outputs;
    for (size_t I = 0; I < Layers.size(); ++I) {
      const bool Internal = static_cast<int>(I) >= M.FirstLayer &&
                            static_cast<int>(I) <= M.LastLayer;
      if (Internal)
        continue;
      for (const std::string &Bottom : Layers[I].Bottoms) {
        const int BottomIndex = layerIndex(Bottom);
        if (BottomIndex >= M.FirstLayer && BottomIndex <= M.LastLayer)
          Outputs.insert(Bottom);
      }
    }
    if (Outputs.size() != 1)
      return Error::failure("module '" + M.Name + "' must be consumed "
                            "through exactly one layer, found " +
                            std::to_string(Outputs.size()));
    M.OutputLayer = *Outputs.begin();
  }

  // Pass 4: prunability. Build the consumer lists once.
  std::map<std::string, std::vector<int>> Consumers;
  for (size_t I = 0; I < Layers.size(); ++I)
    for (const std::string &Bottom : Layers[I].Bottoms)
      Consumers[Bottom].push_back(static_cast<int>(I));

  Prunable.assign(Layers.size(), false);
  for (size_t I = 0; I < Layers.size(); ++I) {
    if (Layers[I].Kind != LayerKind::Convolution || LayerModule[I] < 0)
      continue;
    const int Module = LayerModule[I];
    // Walk forward through shape-preserving layers; pruning this conv is
    // safe iff every path ends at another convolution of the same module.
    bool Safe = true;
    std::vector<int> Worklist{static_cast<int>(I)};
    std::set<int> Visited;
    while (Safe && !Worklist.empty()) {
      const int Current = Worklist.back();
      Worklist.pop_back();
      if (!Visited.insert(Current).second)
        continue;
      auto It = Consumers.find(Layers[Current].Name);
      if (It == Consumers.end() || It->second.empty()) {
        Safe = false; // Feeds the network output.
        break;
      }
      for (int Consumer : It->second) {
        if (LayerModule[Consumer] != Module) {
          Safe = false;
          break;
        }
        if (Layers[Consumer].Kind == LayerKind::Convolution)
          continue; // The consuming conv absorbs the channel change.
        if (preservesChannels(Layers[Consumer].Kind)) {
          Worklist.push_back(Consumer);
          continue;
        }
        Safe = false; // Concat/Eltwise/InnerProduct pin the channel count.
        break;
      }
    }
    Prunable[I] = Safe;
  }
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Prototxt binding
//===----------------------------------------------------------------------===//

static Result<LayerKind> layerKindFromName(const std::string &TypeName) {
  if (TypeName == "Convolution")
    return LayerKind::Convolution;
  if (TypeName == "BatchNorm")
    return LayerKind::BatchNorm;
  if (TypeName == "ReLU")
    return LayerKind::ReLU;
  if (TypeName == "Pooling")
    return LayerKind::Pooling;
  if (TypeName == "InnerProduct")
    return LayerKind::InnerProduct;
  if (TypeName == "Concat")
    return LayerKind::Concat;
  if (TypeName == "Eltwise")
    return LayerKind::Eltwise;
  return Error::failure("unsupported layer type '" + TypeName + "'");
}

static Result<LayerSpec> layerFromMessage(const PrototxtMessage &Msg) {
  LayerSpec L;
  L.Name = Msg.scalarOr("name", "");
  Result<LayerKind> Kind = layerKindFromName(Msg.scalarOr("type", ""));
  if (!Kind)
    return Error::failure("layer '" + L.Name + "': " + Kind.message());
  L.Kind = *Kind;
  for (const PrototxtValue &Bottom : Msg.values("bottom"))
    L.Bottoms.push_back(Bottom.text());
  // We require in-place-free graphs where each layer's top is its name;
  // this keeps the data-flow analysis trivial, matching the structure the
  // Wootz compiler emits.
  const std::string Top = Msg.scalarOr("top", L.Name);
  if (Top != L.Name)
    return Error::failure("layer '" + L.Name +
                          "': top must equal the layer name");
  L.Module = Msg.scalarOr("module", "");

  if (L.Kind == LayerKind::Convolution) {
    if (!Msg.has("convolution_param"))
      return Error::failure("layer '" + L.Name +
                            "': missing convolution_param");
    const PrototxtMessage &P = Msg.values("convolution_param")[0].message();
    L.NumOutput = static_cast<int>(P.intOr("num_output", 0));
    L.KernelSize = static_cast<int>(P.intOr("kernel_size", 1));
    L.Stride = static_cast<int>(P.intOr("stride", 1));
    L.Pad = static_cast<int>(P.intOr("pad", 0));
    L.BiasTerm = P.boolOr("bias_term", true);
    if (L.NumOutput <= 0)
      return Error::failure("layer '" + L.Name +
                            "': num_output must be positive");
  } else if (L.Kind == LayerKind::InnerProduct) {
    if (!Msg.has("inner_product_param"))
      return Error::failure("layer '" + L.Name +
                            "': missing inner_product_param");
    const PrototxtMessage &P =
        Msg.values("inner_product_param")[0].message();
    L.NumOutput = static_cast<int>(P.intOr("num_output", 0));
    if (L.NumOutput <= 0)
      return Error::failure("layer '" + L.Name +
                            "': num_output must be positive");
  } else if (L.Kind == LayerKind::Pooling) {
    if (Msg.has("pooling_param")) {
      const PrototxtMessage &P = Msg.values("pooling_param")[0].message();
      const std::string Pool = P.scalarOr("pool", "MAX");
      if (Pool != "MAX" && Pool != "AVE")
        return Error::failure("layer '" + L.Name +
                              "': unsupported pool method '" + Pool + "'");
      L.PoolMax = Pool == "MAX";
      L.KernelSize = static_cast<int>(P.intOr("kernel_size", 2));
      L.Stride = static_cast<int>(P.intOr("stride", L.KernelSize));
      L.Pad = static_cast<int>(P.intOr("pad", 0));
      L.GlobalPooling = P.boolOr("global_pooling", false);
    }
  } else if (L.Kind == LayerKind::Eltwise) {
    if (Msg.has("eltwise_param")) {
      const PrototxtMessage &P = Msg.values("eltwise_param")[0].message();
      const std::string Operation = P.scalarOr("operation", "SUM");
      if (Operation != "SUM")
        return Error::failure("layer '" + L.Name +
                              "': only SUM eltwise is supported");
    }
  }
  return L;
}

Result<ModelSpec> wootz::parseModelSpec(const std::string &PrototxtSource) {
  Result<PrototxtMessage> Parsed = parsePrototxt(PrototxtSource);
  if (!Parsed)
    return Parsed.takeError();
  const PrototxtMessage &Top = *Parsed;

  ModelSpec Spec;
  Spec.Name = Top.scalarOr("name", "model");
  if (Top.has("input"))
    Spec.InputName = Top.scalarOr("input", "data");
  const std::vector<PrototxtValue> &Dims = Top.values("input_dim");
  if (Dims.size() != 4)
    return Error::failure("expected 4 input_dim entries (N C H W), found " +
                          std::to_string(Dims.size()));
  // input_dim order is N, C, H, W; the batch extent is ignored (batches
  // are runtime-sized).
  auto dimAt = [&](int Index) -> Result<long long> {
    return parseInteger(Dims[Index].text());
  };
  Result<long long> C = dimAt(1);
  Result<long long> H = dimAt(2);
  Result<long long> W = dimAt(3);
  if (!C || !H || !W)
    return Error::failure("invalid input_dim value");
  Spec.InputChannels = static_cast<int>(*C);
  Spec.InputHeight = static_cast<int>(*H);
  Spec.InputWidth = static_cast<int>(*W);

  for (const PrototxtValue &LayerValue : Top.values("layer")) {
    if (LayerValue.isScalar())
      return Error::failure("'layer' must be a message");
    Result<LayerSpec> L = layerFromMessage(LayerValue.message());
    if (!L)
      return L.takeError();
    Spec.Layers.push_back(L.take());
  }
  if (Spec.Layers.empty())
    return Error::failure("model '" + Spec.Name + "' has no layers");
  if (Error E = Spec.analyze())
    return std::move(E);
  return Spec;
}

std::string wootz::printModelSpec(const ModelSpec &Spec) {
  std::string Out;
  Out += "name: \"" + Spec.Name + "\"\n";
  Out += "input: \"" + Spec.InputName + "\"\n";
  Out += "input_dim: 1\n";
  Out += "input_dim: " + std::to_string(Spec.InputChannels) + "\n";
  Out += "input_dim: " + std::to_string(Spec.InputHeight) + "\n";
  Out += "input_dim: " + std::to_string(Spec.InputWidth) + "\n";
  for (const LayerSpec &L : Spec.Layers) {
    Out += "layer {\n";
    Out += "  name: \"" + L.Name + "\"\n";
    Out += "  type: \"" + std::string(layerKindName(L.Kind)) + "\"\n";
    for (const std::string &Bottom : L.Bottoms)
      Out += "  bottom: \"" + Bottom + "\"\n";
    Out += "  top: \"" + L.Name + "\"\n";
    if (!L.Module.empty())
      Out += "  module: \"" + L.Module + "\"\n";
    if (L.Kind == LayerKind::Convolution) {
      Out += "  convolution_param {\n";
      Out += "    num_output: " + std::to_string(L.NumOutput) + "\n";
      Out += "    kernel_size: " + std::to_string(L.KernelSize) + "\n";
      Out += "    stride: " + std::to_string(L.Stride) + "\n";
      Out += "    pad: " + std::to_string(L.Pad) + "\n";
      Out += std::string("    bias_term: ") +
             (L.BiasTerm ? "true" : "false") + "\n";
      Out += "  }\n";
    } else if (L.Kind == LayerKind::InnerProduct) {
      Out += "  inner_product_param {\n";
      Out += "    num_output: " + std::to_string(L.NumOutput) + "\n";
      Out += "  }\n";
    } else if (L.Kind == LayerKind::Pooling) {
      Out += "  pooling_param {\n";
      Out += std::string("    pool: ") + (L.PoolMax ? "MAX" : "AVE") + "\n";
      if (L.GlobalPooling) {
        Out += "    global_pooling: true\n";
      } else {
        Out += "    kernel_size: " + std::to_string(L.KernelSize) + "\n";
        Out += "    stride: " + std::to_string(L.Stride) + "\n";
        Out += "    pad: " + std::to_string(L.Pad) + "\n";
      }
      Out += "  }\n";
    } else if (L.Kind == LayerKind::Eltwise) {
      Out += "  eltwise_param {\n    operation: SUM\n  }\n";
    }
    Out += "}\n";
  }
  return Out;
}
