//===- proto/ModelSpec.cpp -------------------------------------------------===//

#include "src/proto/ModelSpec.h"

#include "src/support/StringUtils.h"

#include <map>
#include <set>

using namespace wootz;

const char *wootz::layerKindName(LayerKind Kind) {
  switch (Kind) {
  case LayerKind::Convolution:
    return "Convolution";
  case LayerKind::BatchNorm:
    return "BatchNorm";
  case LayerKind::ReLU:
    return "ReLU";
  case LayerKind::Pooling:
    return "Pooling";
  case LayerKind::InnerProduct:
    return "InnerProduct";
  case LayerKind::Concat:
    return "Concat";
  case LayerKind::Eltwise:
    return "Eltwise";
  }
  return "Unknown";
}

int ModelSpec::layerIndex(const std::string &Name) const {
  for (size_t I = 0; I < Layers.size(); ++I)
    if (Layers[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

//===----------------------------------------------------------------------===//
// Structural analysis
//===----------------------------------------------------------------------===//

/// True for layers that preserve the channel count of their sole input.
static bool preservesChannels(LayerKind Kind) {
  return Kind == LayerKind::BatchNorm || Kind == LayerKind::ReLU ||
         Kind == LayerKind::Pooling;
}

Error ModelSpec::analyze() {
  // Pass 1: name uniqueness and defined-before-use bottoms.
  std::set<std::string> Defined{InputName};
  for (const LayerSpec &L : Layers) {
    if (L.Name.empty())
      return Error::failure("model '" + Name + "' has an unnamed layer");
    if (Defined.count(L.Name))
      return Error::failure("duplicate layer name '" + L.Name + "'");
    if (L.Bottoms.empty())
      return Error::failure("layer '" + L.Name + "' has no bottom");
    for (const std::string &Bottom : L.Bottoms)
      if (!Defined.count(Bottom))
        return Error::failure("layer '" + L.Name + "' uses undefined bottom '" +
                              Bottom + "'");
    Defined.insert(L.Name);
  }

  // Pass 2: contiguous module runs.
  Modules.clear();
  LayerModule.assign(Layers.size(), -1);
  std::set<std::string> ClosedModules;
  for (size_t I = 0; I < Layers.size(); ++I) {
    const std::string &Label = Layers[I].Module;
    if (Label.empty())
      continue;
    if (!Modules.empty() && Modules.back().Name == Label &&
        Modules.back().LastLayer == static_cast<int>(I) - 1) {
      Modules.back().LastLayer = static_cast<int>(I);
    } else {
      if (ClosedModules.count(Label))
        return Error::failure("module '" + Label +
                              "' is not a contiguous layer run");
      if (!Modules.empty())
        ClosedModules.insert(Modules.back().Name);
      Modules.push_back({Label, static_cast<int>(I), static_cast<int>(I)});
    }
    LayerModule[I] = static_cast<int>(Modules.size()) - 1;
  }

  // Pass 3: each module consumes exactly one external producer and is
  // consumed through exactly one of its layers (the block boundaries).
  for (ModuleSpec &M : Modules) {
    std::set<std::string> External;
    for (int I = M.FirstLayer; I <= M.LastLayer; ++I) {
      for (const std::string &Bottom : Layers[I].Bottoms) {
        const int BottomIndex = layerIndex(Bottom);
        const bool Internal = BottomIndex >= M.FirstLayer &&
                              BottomIndex <= M.LastLayer;
        if (!Internal)
          External.insert(Bottom);
      }
    }
    if (External.size() != 1)
      return Error::failure("module '" + M.Name + "' must have exactly one "
                            "external input, found " +
                            std::to_string(External.size()));
    M.ExternalInput = *External.begin();

    std::set<std::string> Outputs;
    for (size_t I = 0; I < Layers.size(); ++I) {
      const bool Internal = static_cast<int>(I) >= M.FirstLayer &&
                            static_cast<int>(I) <= M.LastLayer;
      if (Internal)
        continue;
      for (const std::string &Bottom : Layers[I].Bottoms) {
        const int BottomIndex = layerIndex(Bottom);
        if (BottomIndex >= M.FirstLayer && BottomIndex <= M.LastLayer)
          Outputs.insert(Bottom);
      }
    }
    if (Outputs.size() != 1)
      return Error::failure("module '" + M.Name + "' must be consumed "
                            "through exactly one layer, found " +
                            std::to_string(Outputs.size()));
    M.OutputLayer = *Outputs.begin();
  }

  // Pass 4: prunability. Build the consumer lists once.
  std::map<std::string, std::vector<int>> Consumers;
  for (size_t I = 0; I < Layers.size(); ++I)
    for (const std::string &Bottom : Layers[I].Bottoms)
      Consumers[Bottom].push_back(static_cast<int>(I));

  Prunable.assign(Layers.size(), false);
  for (size_t I = 0; I < Layers.size(); ++I) {
    if (Layers[I].Kind != LayerKind::Convolution || LayerModule[I] < 0)
      continue;
    const int Module = LayerModule[I];
    // Walk forward through shape-preserving layers; pruning this conv is
    // safe iff every path ends at another convolution of the same module.
    bool Safe = true;
    std::vector<int> Worklist{static_cast<int>(I)};
    std::set<int> Visited;
    while (Safe && !Worklist.empty()) {
      const int Current = Worklist.back();
      Worklist.pop_back();
      if (!Visited.insert(Current).second)
        continue;
      auto It = Consumers.find(Layers[Current].Name);
      if (It == Consumers.end() || It->second.empty()) {
        Safe = false; // Feeds the network output.
        break;
      }
      for (int Consumer : It->second) {
        if (LayerModule[Consumer] != Module) {
          Safe = false;
          break;
        }
        if (Layers[Consumer].Kind == LayerKind::Convolution)
          continue; // The consuming conv absorbs the channel change.
        if (preservesChannels(Layers[Consumer].Kind)) {
          Worklist.push_back(Consumer);
          continue;
        }
        Safe = false; // Concat/Eltwise/InnerProduct pin the channel count.
        break;
      }
    }
    Prunable[I] = Safe;
  }
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Prototxt binding
//===----------------------------------------------------------------------===//

static Result<LayerKind> layerKindFromName(const std::string &TypeName) {
  if (TypeName == "Convolution")
    return LayerKind::Convolution;
  if (TypeName == "BatchNorm")
    return LayerKind::BatchNorm;
  if (TypeName == "ReLU")
    return LayerKind::ReLU;
  if (TypeName == "Pooling")
    return LayerKind::Pooling;
  if (TypeName == "InnerProduct")
    return LayerKind::InnerProduct;
  if (TypeName == "Concat")
    return LayerKind::Concat;
  if (TypeName == "Eltwise")
    return LayerKind::Eltwise;
  return Error::failure("unsupported layer type '" + TypeName + "'");
}

/// Extent cap for parsed layer dimensions. Prototxt arrives over HTTP, so
/// a bound here keeps a hostile `num_output: 999999999` from turning into
/// a multi-gigabyte allocation downstream.
static constexpr long long MaxLayerExtent = 1 << 16;

/// The sole nested message under \p FieldName; errors (rather than
/// asserting) when the field is repeated or scalar-valued.
static Result<const PrototxtMessage *>
messageField(const PrototxtMessage &Msg, const std::string &LayerName,
             const std::string &FieldName) {
  const std::vector<PrototxtValue> &Values = Msg.values(FieldName);
  if (Values.size() != 1)
    return Error::failure("layer '" + LayerName + "': field '" + FieldName +
                          "' occurs " + std::to_string(Values.size()) +
                          " times, expected a single message");
  if (Values[0].isScalar())
    return Error::failure("layer '" + LayerName + "': field '" + FieldName +
                          "' is a scalar, expected a message");
  return &Values[0].message();
}

/// intOr() wrapper that prefixes errors with the layer name and bounds the
/// result to [Min, MaxLayerExtent].
static Result<int> intField(const PrototxtMessage &Msg,
                            const std::string &LayerName,
                            const std::string &FieldName, long long Default,
                            long long Min) {
  Result<long long> Value = Msg.intOr(FieldName, Default);
  if (!Value)
    return Error::failure("layer '" + LayerName + "': " + Value.message());
  if (*Value < Min || *Value > MaxLayerExtent)
    return Error::failure("layer '" + LayerName + "': field '" + FieldName +
                          "' value " + std::to_string(*Value) +
                          " is out of range [" + std::to_string(Min) + ", " +
                          std::to_string(MaxLayerExtent) + "]");
  return static_cast<int>(*Value);
}

static Result<LayerSpec> layerFromMessage(const PrototxtMessage &Msg) {
  LayerSpec L;
  Result<std::string> Name = Msg.scalarOr("name", "");
  if (!Name)
    return Error::failure("layer: " + Name.message());
  L.Name = Name.take();

  // Prefixes accessor errors with the layer name for actionable messages.
  auto scalar = [&](const std::string &FieldName,
                    const std::string &Default) -> Result<std::string> {
    Result<std::string> Value = Msg.scalarOr(FieldName, Default);
    if (!Value)
      return Error::failure("layer '" + L.Name + "': " + Value.message());
    return Value;
  };

  Result<std::string> TypeName = scalar("type", "");
  if (!TypeName)
    return TypeName.takeError();
  Result<LayerKind> Kind = layerKindFromName(*TypeName);
  if (!Kind)
    return Error::failure("layer '" + L.Name + "': " + Kind.message());
  L.Kind = *Kind;
  for (const PrototxtValue &Bottom : Msg.values("bottom")) {
    if (!Bottom.isScalar())
      return Error::failure("layer '" + L.Name +
                            "': 'bottom' must be a scalar");
    L.Bottoms.push_back(Bottom.text());
  }
  // We require in-place-free graphs where each layer's top is its name;
  // this keeps the data-flow analysis trivial, matching the structure the
  // Wootz compiler emits.
  Result<std::string> Top = scalar("top", L.Name);
  if (!Top)
    return Top.takeError();
  if (*Top != L.Name)
    return Error::failure("layer '" + L.Name +
                          "': top must equal the layer name");
  Result<std::string> Module = scalar("module", "");
  if (!Module)
    return Module.takeError();
  L.Module = Module.take();

  if (L.Kind == LayerKind::Convolution) {
    if (!Msg.has("convolution_param"))
      return Error::failure("layer '" + L.Name +
                            "': missing convolution_param");
    Result<const PrototxtMessage *> Param =
        messageField(Msg, L.Name, "convolution_param");
    if (!Param)
      return Param.takeError();
    const PrototxtMessage &P = **Param;
    Result<int> NumOutput = intField(P, L.Name, "num_output", 0, 1);
    Result<int> KernelSize = intField(P, L.Name, "kernel_size", 1, 1);
    Result<int> Stride = intField(P, L.Name, "stride", 1, 1);
    Result<int> Pad = intField(P, L.Name, "pad", 0, 0);
    if (!NumOutput || !KernelSize || !Stride || !Pad)
      return !NumOutput   ? NumOutput.takeError()
             : !KernelSize ? KernelSize.takeError()
             : !Stride     ? Stride.takeError()
                           : Pad.takeError();
    L.NumOutput = *NumOutput;
    L.KernelSize = *KernelSize;
    L.Stride = *Stride;
    L.Pad = *Pad;
    Result<bool> BiasTerm = P.boolOr("bias_term", true);
    if (!BiasTerm)
      return Error::failure("layer '" + L.Name + "': " +
                            BiasTerm.message());
    L.BiasTerm = *BiasTerm;
  } else if (L.Kind == LayerKind::InnerProduct) {
    if (!Msg.has("inner_product_param"))
      return Error::failure("layer '" + L.Name +
                            "': missing inner_product_param");
    Result<const PrototxtMessage *> Param =
        messageField(Msg, L.Name, "inner_product_param");
    if (!Param)
      return Param.takeError();
    Result<int> NumOutput = intField(**Param, L.Name, "num_output", 0, 1);
    if (!NumOutput)
      return NumOutput.takeError();
    L.NumOutput = *NumOutput;
  } else if (L.Kind == LayerKind::Pooling) {
    if (Msg.has("pooling_param")) {
      Result<const PrototxtMessage *> Param =
          messageField(Msg, L.Name, "pooling_param");
      if (!Param)
        return Param.takeError();
      const PrototxtMessage &P = **Param;
      Result<std::string> Pool = P.scalarOr("pool", "MAX");
      if (!Pool)
        return Error::failure("layer '" + L.Name + "': " + Pool.message());
      if (*Pool != "MAX" && *Pool != "AVE")
        return Error::failure("layer '" + L.Name +
                              "': unsupported pool method '" + *Pool + "'");
      L.PoolMax = *Pool == "MAX";
      Result<int> KernelSize = intField(P, L.Name, "kernel_size", 2, 1);
      if (!KernelSize)
        return KernelSize.takeError();
      L.KernelSize = *KernelSize;
      Result<int> Stride = intField(P, L.Name, "stride", L.KernelSize, 1);
      Result<int> Pad = intField(P, L.Name, "pad", 0, 0);
      if (!Stride || !Pad)
        return !Stride ? Stride.takeError() : Pad.takeError();
      L.Stride = *Stride;
      L.Pad = *Pad;
      Result<bool> GlobalPooling = P.boolOr("global_pooling", false);
      if (!GlobalPooling)
        return Error::failure("layer '" + L.Name + "': " +
                              GlobalPooling.message());
      L.GlobalPooling = *GlobalPooling;
    }
  } else if (L.Kind == LayerKind::Eltwise) {
    if (Msg.has("eltwise_param")) {
      Result<const PrototxtMessage *> Param =
          messageField(Msg, L.Name, "eltwise_param");
      if (!Param)
        return Param.takeError();
      Result<std::string> Operation = (*Param)->scalarOr("operation", "SUM");
      if (!Operation)
        return Error::failure("layer '" + L.Name + "': " +
                              Operation.message());
      if (*Operation != "SUM")
        return Error::failure("layer '" + L.Name +
                              "': only SUM eltwise is supported");
    }
  }
  return L;
}

Result<ModelSpec> wootz::parseModelSpec(const std::string &PrototxtSource) {
  Result<PrototxtMessage> Parsed = parsePrototxt(PrototxtSource);
  if (!Parsed)
    return Parsed.takeError();
  const PrototxtMessage &Top = *Parsed;

  ModelSpec Spec;
  Result<std::string> Name = Top.scalarOr("name", "model");
  if (!Name)
    return Name.takeError();
  Spec.Name = Name.take();
  if (Top.has("input")) {
    Result<std::string> Input = Top.scalarOr("input", "data");
    if (!Input)
      return Input.takeError();
    Spec.InputName = Input.take();
  }
  const std::vector<PrototxtValue> &Dims = Top.values("input_dim");
  if (Dims.size() != 4)
    return Error::failure("expected 4 input_dim entries (N C H W), found " +
                          std::to_string(Dims.size()));
  // input_dim order is N, C, H, W; the batch extent is ignored (batches
  // are runtime-sized).
  auto dimAt = [&](int Index) -> Result<long long> {
    if (!Dims[Index].isScalar())
      return Error::failure("input_dim must be a scalar");
    Result<long long> Value = parseInteger(Dims[Index].text());
    if (!Value)
      return Error::failure("invalid input_dim '" + Dims[Index].text() +
                            "': " + Value.message());
    if (Index > 0 && (*Value < 1 || *Value > MaxLayerExtent))
      return Error::failure("input_dim value " + std::to_string(*Value) +
                            " is out of range [1, " +
                            std::to_string(MaxLayerExtent) + "]");
    return Value;
  };
  Result<long long> C = dimAt(1);
  Result<long long> H = dimAt(2);
  Result<long long> W = dimAt(3);
  if (!C || !H || !W)
    return !C ? C.takeError() : !H ? H.takeError() : W.takeError();
  Spec.InputChannels = static_cast<int>(*C);
  Spec.InputHeight = static_cast<int>(*H);
  Spec.InputWidth = static_cast<int>(*W);

  for (const PrototxtValue &LayerValue : Top.values("layer")) {
    if (LayerValue.isScalar())
      return Error::failure("'layer' must be a message");
    Result<LayerSpec> L = layerFromMessage(LayerValue.message());
    if (!L)
      return L.takeError();
    Spec.Layers.push_back(L.take());
  }
  if (Spec.Layers.empty())
    return Error::failure("model '" + Spec.Name + "' has no layers");
  if (Error E = Spec.analyze())
    return std::move(E);
  return Spec;
}

std::string wootz::printModelSpec(const ModelSpec &Spec) {
  std::string Out;
  Out += "name: \"" + prototxtEscape(Spec.Name) + "\"\n";
  Out += "input: \"" + prototxtEscape(Spec.InputName) + "\"\n";
  Out += "input_dim: 1\n";
  Out += "input_dim: " + std::to_string(Spec.InputChannels) + "\n";
  Out += "input_dim: " + std::to_string(Spec.InputHeight) + "\n";
  Out += "input_dim: " + std::to_string(Spec.InputWidth) + "\n";
  for (const LayerSpec &L : Spec.Layers) {
    Out += "layer {\n";
    Out += "  name: \"" + prototxtEscape(L.Name) + "\"\n";
    Out += "  type: \"" + std::string(layerKindName(L.Kind)) + "\"\n";
    for (const std::string &Bottom : L.Bottoms)
      Out += "  bottom: \"" + prototxtEscape(Bottom) + "\"\n";
    Out += "  top: \"" + prototxtEscape(L.Name) + "\"\n";
    if (!L.Module.empty())
      Out += "  module: \"" + prototxtEscape(L.Module) + "\"\n";
    if (L.Kind == LayerKind::Convolution) {
      Out += "  convolution_param {\n";
      Out += "    num_output: " + std::to_string(L.NumOutput) + "\n";
      Out += "    kernel_size: " + std::to_string(L.KernelSize) + "\n";
      Out += "    stride: " + std::to_string(L.Stride) + "\n";
      Out += "    pad: " + std::to_string(L.Pad) + "\n";
      Out += std::string("    bias_term: ") +
             (L.BiasTerm ? "true" : "false") + "\n";
      Out += "  }\n";
    } else if (L.Kind == LayerKind::InnerProduct) {
      Out += "  inner_product_param {\n";
      Out += "    num_output: " + std::to_string(L.NumOutput) + "\n";
      Out += "  }\n";
    } else if (L.Kind == LayerKind::Pooling) {
      Out += "  pooling_param {\n";
      Out += std::string("    pool: ") + (L.PoolMax ? "MAX" : "AVE") + "\n";
      if (L.GlobalPooling) {
        Out += "    global_pooling: true\n";
      } else {
        Out += "    kernel_size: " + std::to_string(L.KernelSize) + "\n";
        Out += "    stride: " + std::to_string(L.Stride) + "\n";
        Out += "    pad: " + std::to_string(L.Pad) + "\n";
      }
      Out += "  }\n";
    } else if (L.Kind == LayerKind::Eltwise) {
      Out += "  eltwise_param {\n    operation: SUM\n  }\n";
    }
    Out += "}\n";
  }
  return Out;
}
