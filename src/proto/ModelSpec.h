//===- proto/ModelSpec.h - CNN model description ---------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed model description the Wootz compiler works on, produced from
/// Caffe Prototxt (with the paper's `module` extension marking the
/// boundaries of convolution modules). ModelSpec also carries the two
/// structural analyses the pruning machinery needs:
///
///  * the list of convolution modules (contiguous layer runs sharing a
///    `module` label), each with a single external input — the unit that
///    a pruning rate applies to and that tuning blocks are made of; and
///  * which convolution layers are prunable. Following the paper
///    (§7.1: "the top layer of a convolution module is kept unpruned; it
///    helps ensure the dimension compatibility of the module"), a conv is
///    prunable iff every consumer of its output, transitively through
///    shape-preserving layers, is another convolution in the same module.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_PROTO_MODELSPEC_H
#define WOOTZ_PROTO_MODELSPEC_H

#include "src/proto/Prototxt.h"
#include "src/support/Error.h"

#include <string>
#include <vector>

namespace wootz {

/// The layer types the Wootz compiler understands.
enum class LayerKind {
  Convolution,
  BatchNorm,
  ReLU,
  Pooling,
  InnerProduct,
  Concat,
  Eltwise, ///< Elementwise sum (ResNet shortcut join).
};

/// Returns the Caffe type string ("Convolution", ...) for \p Kind.
const char *layerKindName(LayerKind Kind);

/// One layer of the model description.
struct LayerSpec {
  LayerKind Kind = LayerKind::ReLU;
  std::string Name;
  /// Producer layer names ("bottom" in Caffe terms); the model input is
  /// referred to by the ModelSpec's InputName.
  std::vector<std::string> Bottoms;
  /// Convolution-module label (the paper's Prototxt extension); empty
  /// for layers outside any module (stem / classifier head).
  std::string Module;

  // Convolution / InnerProduct.
  int NumOutput = 0;
  int KernelSize = 1;
  int Stride = 1;
  int Pad = 0;
  bool BiasTerm = true;

  // Pooling.
  bool PoolMax = true; ///< MAX vs AVE.
  bool GlobalPooling = false;
};

/// A convolution module: a contiguous run of layers sharing a label.
struct ModuleSpec {
  std::string Name;
  int FirstLayer = 0; ///< Index into ModelSpec::Layers.
  int LastLayer = 0;  ///< Inclusive.
  /// The single producer outside the module that its layers consume —
  /// the module's (and any tuning block's) input boundary.
  std::string ExternalInput;
  /// The single layer inside the module consumed from outside — the
  /// module's output boundary (a Teacher-Student target).
  std::string OutputLayer;
};

/// The whole model plus derived structural information.
struct ModelSpec {
  std::string Name;
  std::string InputName = "data";
  int InputChannels = 3;
  int InputHeight = 8;
  int InputWidth = 8;

  std::vector<LayerSpec> Layers;

  /// Derived: convolution modules in layer order.
  std::vector<ModuleSpec> Modules;
  /// Derived: for each layer, the module index or -1.
  std::vector<int> LayerModule;
  /// Derived: for each layer, true if it is a prunable convolution.
  std::vector<bool> Prunable;

  /// Index of the layer named \p Name, or -1.
  int layerIndex(const std::string &Name) const;

  /// Number of convolution modules.
  int moduleCount() const { return static_cast<int>(Modules.size()); }

  /// Recomputes Modules / LayerModule / Prunable. Called by the parser;
  /// call again after editing Layers by hand.
  ///
  /// Fails if layers reference unknown bottoms, a module is
  /// non-contiguous, or a module's layers consume more than one external
  /// producer (tuning blocks need a single input boundary).
  Error analyze();
};

/// Builds a ModelSpec from Prototxt source text.
Result<ModelSpec> parseModelSpec(const std::string &PrototxtSource);

/// Pretty-prints \p Spec back to Prototxt (round-trips with
/// parseModelSpec).
std::string printModelSpec(const ModelSpec &Spec);

} // namespace wootz

#endif // WOOTZ_PROTO_MODELSPEC_H
