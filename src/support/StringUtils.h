//===- support/StringUtils.h - Small string helpers -----------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the Prototxt parser, the objective-spec
/// parser, and the subspace-spec parser.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_STRINGUTILS_H
#define WOOTZ_SUPPORT_STRINGUTILS_H

#include "src/support/Error.h"

#include <string>
#include <string_view>
#include <vector>

namespace wootz {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// Splits \p Text on \p Separator; empty pieces are kept.
std::vector<std::string> split(std::string_view Text, char Separator);

/// Splits \p Text into lines, accepting both \\n and \\r\\n endings.
std::vector<std::string> splitLines(std::string_view Text);

/// True if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// True if \p Text ends with \p Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

/// Parses a decimal integer; rejects trailing garbage.
Result<long long> parseInteger(std::string_view Text);

/// Parses a floating-point number; rejects trailing garbage.
Result<double> parseDouble(std::string_view Text);

/// Joins \p Pieces with \p Separator between them.
std::string join(const std::vector<std::string> &Pieces,
                 std::string_view Separator);

/// Formats \p Value with \p Digits digits after the decimal point.
std::string formatDouble(double Value, int Digits);

/// Encodes \p Bytes as standard base64 with '=' padding.
std::string base64Encode(std::string_view Bytes);

/// Decodes standard base64; rejects bad lengths, characters outside the
/// alphabet, and misplaced padding.
Result<std::string> base64Decode(std::string_view Text);

} // namespace wootz

#endif // WOOTZ_SUPPORT_STRINGUTILS_H
