//===- support/ThreadPool.cpp ----------------------------------------------===//

#include "src/support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace wootz;

ThreadPool::ThreadPool(unsigned ThreadCount) : ThreadCount(ThreadCount) {
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  // Drain first: a running task may enqueue follow-up work, and setting
  // ShuttingDown while such work is still being produced would let
  // workers exit with tasks left in the queue. After wait() returns no
  // task is running, so nothing can call enqueue() anymore and the
  // "enqueue after shutdown began" race is impossible by construction.
  wait();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  TaskAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  if (ThreadCount == 0) {
    Task();
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!ShuttingDown && "enqueue after ThreadPool shutdown began");
    Tasks.push(std::move(Task));
    ++InFlight;
  }
  TaskAvailable.notify_one();
}

void ThreadPool::wait() {
  if (ThreadCount == 0)
    return;
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::parallelFor(size_t Count,
                             const std::function<void(size_t)> &Body) {
  if (ThreadCount <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }
  for (size_t I = 0; I < Count; ++I)
    enqueue([&Body, I] { Body(I); });
  wait();
}

void ThreadPool::parallelFor(size_t Count, size_t Grain,
                             const std::function<void(size_t, size_t)> &Body) {
  if (Count == 0)
    return;
  if (Grain == 0)
    Grain = 1;
  const size_t Chunks = (Count + Grain - 1) / Grain;
  if (ThreadCount <= 1 || Chunks <= 1) {
    // Same chunk decomposition as the parallel path so per-chunk
    // reductions see identical groupings either way.
    for (size_t Begin = 0; Begin < Count; Begin += Grain)
      Body(Begin, std::min(Begin + Grain, Count));
    return;
  }
  for (size_t Begin = 0; Begin < Count; Begin += Grain) {
    const size_t End = std::min(Begin + Grain, Count);
    enqueue([&Body, Begin, End] { Body(Begin, End); });
  }
  wait();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Shutting down with an empty queue.
      Task = std::move(Tasks.front());
      Tasks.pop();
    }
    // Scope guard: InFlight must drop even if Task() exits abnormally,
    // or wait() (and the draining destructor) would hang forever.
    struct Completion {
      ThreadPool &Pool;
      ~Completion() {
        std::lock_guard<std::mutex> Lock(Pool.Mutex);
        if (--Pool.InFlight == 0)
          Pool.AllDone.notify_all();
      }
    } Finished{*this};
    Task();
  }
}
