//===- support/ThreadPool.cpp ----------------------------------------------===//

#include "src/support/ThreadPool.h"

#include <cassert>

using namespace wootz;

ThreadPool::ThreadPool(unsigned ThreadCount) : ThreadCount(ThreadCount) {
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  // Drain first: a running task may enqueue follow-up work, and setting
  // ShuttingDown while such work is still being produced would let
  // workers exit with tasks left in the queue. After wait() returns no
  // task is running, so nothing can call enqueue() anymore and the
  // "enqueue after shutdown began" race is impossible by construction.
  wait();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  TaskAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  if (ThreadCount == 0) {
    Task();
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!ShuttingDown && "enqueue after ThreadPool shutdown began");
    Tasks.push(std::move(Task));
    ++InFlight;
  }
  TaskAvailable.notify_one();
}

void ThreadPool::wait() {
  if (ThreadCount == 0)
    return;
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::parallelFor(size_t Count,
                             const std::function<void(size_t)> &Body) {
  if (ThreadCount <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }
  for (size_t I = 0; I < Count; ++I)
    enqueue([&Body, I] { Body(I); });
  wait();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Shutting down with an empty queue.
      Task = std::move(Tasks.front());
      Tasks.pop();
    }
    // Scope guard: InFlight must drop even if Task() exits abnormally,
    // or wait() (and the draining destructor) would hang forever.
    struct Completion {
      ThreadPool &Pool;
      ~Completion() {
        std::lock_guard<std::mutex> Lock(Pool.Mutex);
        if (--Pool.InFlight == 0)
          Pool.AllDone.notify_all();
      }
    } Finished{*this};
    Task();
  }
}
