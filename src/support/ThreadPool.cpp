//===- support/ThreadPool.cpp ----------------------------------------------===//

#include "src/support/ThreadPool.h"

using namespace wootz;

ThreadPool::ThreadPool(unsigned ThreadCount) : ThreadCount(ThreadCount) {
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  TaskAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  if (ThreadCount == 0) {
    Task();
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Tasks.push(std::move(Task));
    ++InFlight;
  }
  TaskAvailable.notify_one();
}

void ThreadPool::wait() {
  if (ThreadCount == 0)
    return;
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::parallelFor(size_t Count,
                             const std::function<void(size_t)> &Body) {
  if (ThreadCount <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }
  for (size_t I = 0; I < Count; ++I)
    enqueue([&Body, I] { Body(I); });
  wait();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Shutting down with an empty queue.
      Task = std::move(Tasks.front());
      Tasks.pop();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--InFlight == 0)
        AllDone.notify_all();
    }
  }
}
