//===- support/Rng.h - Deterministic random number generation ------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, seedable PRNG (xoshiro256**) plus the distributions the
/// library needs. All randomness in the library flows through Rng so that
/// experiments are reproducible bit-for-bit from a seed; std::mt19937 is
/// avoided because its streams differ across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_RNG_H
#define WOOTZ_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wootz {

/// Deterministic PRNG with convenience distributions.
class Rng {
public:
  /// Seeds the generator; equal seeds yield equal streams on every
  /// platform.
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-seeds the generator via SplitMix64 state expansion.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniform float in [0, 1).
  float nextFloat();

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns a standard-normal sample (Box-Muller).
  float nextGaussian();

  /// Returns true with probability \p P.
  bool nextBernoulli(double P) { return nextDouble() < P; }

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[nextBelow(I)]);
  }

  /// Picks a uniformly random element of \p Values.
  template <typename T> const T &choice(const std::vector<T> &Values) {
    assert(!Values.empty() && "choice() on empty vector");
    return Values[nextBelow(Values.size())];
  }

  /// Derives an independent child generator; useful for giving each
  /// parallel task its own deterministic stream.
  Rng fork();

  /// Captures the complete generator state — stream position included —
  /// so a checkpoint can resume the exact stream later. The encoding is
  /// opaque; feed it back through restoreState().
  std::vector<uint64_t> saveState() const;

  /// Restores a state captured by saveState(). Returns false (leaving
  /// the generator untouched) if \p Words is not a valid capture.
  bool restoreState(const std::vector<uint64_t> &Words);

private:
  uint64_t State[4];
  bool HasSpareGaussian = false;
  float SpareGaussian = 0.0f;
};

} // namespace wootz

#endif // WOOTZ_SUPPORT_RNG_H
