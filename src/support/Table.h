//===- support/Table.h - ASCII table printer ------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned ASCII table used by the bench harnesses to print
/// the rows of the paper's tables. Cells are strings; alignment is derived
/// from content width.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_TABLE_H
#define WOOTZ_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace wootz {

/// Accumulates rows and renders them with aligned columns.
class Table {
public:
  /// Creates a table with the given column \p Headers.
  explicit Table(std::vector<std::string> Headers);

  /// Appends one row; the cell count must match the header count.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the whole table, trailing newline included.
  std::string render() const;

  /// Number of data rows added so far (separators excluded).
  size_t rowCount() const;

private:
  std::vector<std::string> Headers;
  // A separator is represented by an empty row vector.
  std::vector<std::vector<std::string>> Rows;
};

} // namespace wootz

#endif // WOOTZ_SUPPORT_TABLE_H
