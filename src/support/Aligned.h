//===- support/Aligned.h - Aligned allocation ------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal over-aligned STL allocator. Tensor data and the GEMM pack
/// buffers are allocated on cache-line (64-byte) boundaries so that the
/// compute kernels get aligned vector loads and panels never straddle
/// lines unnecessarily.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_ALIGNED_H
#define WOOTZ_SUPPORT_ALIGNED_H

#include <cstddef>
#include <new>

namespace wootz {

/// The alignment used for all kernel-visible buffers. One x86 cache line
/// and exactly one AVX-512 vector.
inline constexpr std::size_t KernelAlignment = 64;

/// STL allocator handing out \p Alignment-aligned storage.
template <typename T, std::size_t Alignment = KernelAlignment>
class AlignedAllocator {
public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment below the type's natural alignment");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept {}

  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T *allocate(std::size_t Count) {
    return static_cast<T *>(
        ::operator new(Count * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T *Ptr, std::size_t) noexcept {
    ::operator delete(Ptr, std::align_val_t(Alignment));
  }
};

template <typename T, typename U, std::size_t Alignment>
bool operator==(const AlignedAllocator<T, Alignment> &,
                const AlignedAllocator<U, Alignment> &) {
  return true;
}

template <typename T, typename U, std::size_t Alignment>
bool operator!=(const AlignedAllocator<T, Alignment> &,
                const AlignedAllocator<U, Alignment> &) {
  return false;
}

} // namespace wootz

#endif // WOOTZ_SUPPORT_ALIGNED_H
