//===- support/Lease.cpp ---------------------------------------------------===//

#include "src/support/Lease.h"

#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/support/StringUtils.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>

#include <unistd.h>

using namespace wootz;

int64_t wootz::unixMillisNow() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

namespace {

std::string renderLease(const std::string &Owner, int64_t ExpiresUnixMs) {
  JsonObject Out;
  Out.field("owner", Owner)
      .field("expires_unix_ms", static_cast<int64_t>(ExpiresUnixMs));
  return Out.str() + "\n";
}

/// A temp name unique across processes (pid) and within one (counter).
std::string leaseTempPath(const std::string &Path) {
  static std::atomic<uint64_t> Serial{0};
  return Path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(Serial.fetch_add(1));
}

} // namespace

Result<LeaseInfo> wootz::readLease(const std::string &Path) {
  Result<std::string> Text = readFile(Path);
  if (!Text)
    return Error::failure("lease: " + Text.message());
  Result<std::map<std::string, std::string>> Fields =
      parseFlatJsonObject(trim(*Text));
  if (!Fields)
    return Error::failure("lease '" + Path + "': " + Fields.message());
  auto OwnerIt = Fields->find("owner");
  auto ExpiresIt = Fields->find("expires_unix_ms");
  if (OwnerIt == Fields->end() || ExpiresIt == Fields->end())
    return Error::failure("lease '" + Path +
                          "': missing owner or expiry field");
  Result<long long> Expires = parseInteger(ExpiresIt->second);
  if (!Expires)
    return Error::failure("lease '" + Path + "': " + Expires.message());
  LeaseInfo Out;
  Out.Owner = OwnerIt->second;
  Out.ExpiresUnixMs = static_cast<int64_t>(*Expires);
  return Out;
}

Result<bool> wootz::tryAcquireLease(const std::string &Path,
                                    const std::string &Owner,
                                    int64_t TtlMillis) {
  const std::filesystem::path Target(Path);
  if (Target.has_parent_path()) {
    std::error_code FsError;
    std::filesystem::create_directories(Target.parent_path(), FsError);
    if (FsError)
      return Error::failure("cannot create directories for lease '" +
                            Path + "'");
  }
  // Up to three rounds: a fresh attempt, one after stealing an expired
  // lease, and one more in case a concurrent stealer won the race and
  // its lease immediately expired (degenerate TTLs in tests).
  for (int Attempt = 0; Attempt < 3; ++Attempt) {
    const std::string Temp = leaseTempPath(Path);
    if (Error E = writeFile(Temp, renderLease(Owner, unixMillisNow() +
                                                         TtlMillis)))
      return E;
    const int Linked = ::link(Temp.c_str(), Path.c_str());
    const int LinkErrno = errno;
    std::error_code Ignored;
    std::filesystem::remove(Temp, Ignored);
    if (Linked == 0) {
      // link(2) is exclusive: we created the lease file. Verify by
      // read-back anyway — it also covers filesystems where link()
      // spuriously reports success after a retry.
      Result<LeaseInfo> Mine = readLease(Path);
      return static_cast<bool>(Mine) && Mine->Owner == Owner;
    }
    if (LinkErrno != EEXIST)
      return Error::failure("cannot create lease '" + Path + "'");
    Result<LeaseInfo> Held = readLease(Path);
    if (Held && !Held->expired(unixMillisNow()))
      return false; // Live owner.
    // Expired (or vanished between link and read): remove and retry.
    // Two concurrent stealers may both unlink; the link() above then
    // picks exactly one winner, and the read-back tells each which.
    std::filesystem::remove(Path, Ignored);
  }
  return false;
}

Error wootz::renewLease(const std::string &Path, const std::string &Owner,
                        int64_t TtlMillis) {
  Result<LeaseInfo> Held = readLease(Path);
  if (!Held)
    return Error::failure("renew: " + Held.message());
  if (Held->Owner != Owner)
    return Error::failure("lease '" + Path + "' is held by '" +
                          Held->Owner + "', not '" + Owner + "'");
  // Atomic rename: a reader sees the old expiry or the new one, never a
  // torn file. Only the owner renews, so this cannot clobber a peer
  // (stealing is gated on expiry, which renewal keeps pushing out).
  return writeFileAtomic(Path, renderLease(Owner, unixMillisNow() +
                                                      TtlMillis));
}

void wootz::releaseLease(const std::string &Path,
                         const std::string &Owner) {
  Result<LeaseInfo> Held = readLease(Path);
  if (!Held || Held->Owner != Owner)
    return;
  std::error_code Ignored;
  std::filesystem::remove(Path, Ignored);
}
