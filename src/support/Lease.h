//===- support/Lease.h - Expiring file-based ownership leases --------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small cross-process mutual-exclusion primitive for directory-backed
/// queues: an *owner lease* is a file whose presence means "this resource
/// is claimed", whose contents name the owner and an absolute expiry
/// time, and whose creation is exclusive (link(2) of a unique temporary,
/// which fails with EEXIST instead of overwriting). A live owner renews
/// the lease well before expiry (heartbeat); a crashed owner simply stops
/// renewing, and once the expiry passes any other process may steal the
/// lease and take over the resource.
///
/// The protocol is safe under the heartbeat invariant: renewals happen at
/// a period much shorter than the TTL, so a lease is only ever stolen
/// from an owner that has been dead (or wedged) for a full TTL. Stealing
/// verifies ownership by reading the file back after acquisition, which
/// closes the unlink/link race between two concurrent stealers: exactly
/// one sees its own name in the file.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_LEASE_H
#define WOOTZ_SUPPORT_LEASE_H

#include "src/support/Error.h"

#include <cstdint>
#include <string>

namespace wootz {

/// Milliseconds since the Unix epoch (system clock — the one clock
/// concurrent processes on a machine share).
int64_t unixMillisNow();

/// What a lease file says.
struct LeaseInfo {
  std::string Owner;
  int64_t ExpiresUnixMs = 0;

  bool expired(int64_t NowMs) const { return NowMs >= ExpiresUnixMs; }
};

/// Reads and parses the lease at \p Path. A missing or unparseable file
/// is an error (a torn write cannot occur: leases are created via
/// link(2) of a fully written temporary and renewed via atomic rename).
Result<LeaseInfo> readLease(const std::string &Path);

/// Tries to acquire the lease at \p Path for \p Owner, valid for
/// \p TtlMillis from now. Returns true when acquired (including by
/// stealing an expired lease), false when another owner holds an
/// unexpired lease. Errors only on I/O failure.
Result<bool> tryAcquireLease(const std::string &Path,
                             const std::string &Owner, int64_t TtlMillis);

/// Extends the lease at \p Path by \p TtlMillis from now. Fails when the
/// lease is missing or held by someone else (the caller lost it — it
/// must stop touching the resource).
Error renewLease(const std::string &Path, const std::string &Owner,
                 int64_t TtlMillis);

/// Releases the lease at \p Path if (and only if) \p Owner holds it.
/// Releasing a lease someone else stole is a silent no-op.
void releaseLease(const std::string &Path, const std::string &Owner);

} // namespace wootz

#endif // WOOTZ_SUPPORT_LEASE_H
