//===- support/File.h - Whole-file I/O helpers -----------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-file read/write helpers used by the tools and examples that take
/// their Figure-2 inputs (Prototxt model, subspace spec, solver meta,
/// objective spec) from disk.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_FILE_H
#define WOOTZ_SUPPORT_FILE_H

#include "src/support/Error.h"

#include <string>

namespace wootz {

/// Reads the whole file at \p Path.
Result<std::string> readFile(const std::string &Path);

/// Writes (truncating) \p Contents to \p Path, creating parent
/// directories as needed.
Error writeFile(const std::string &Path, const std::string &Contents);

/// Crash-safe variant of writeFile(): writes \p Contents to a unique
/// temporary file next to \p Path and renames it over \p Path, so a
/// reader (or a crash at any point) observes either the old file or the
/// complete new one under the final name — never a partial write. The
/// temporary is removed on failure.
Error writeFileAtomic(const std::string &Path,
                      const std::string &Contents);

} // namespace wootz

#endif // WOOTZ_SUPPORT_FILE_H
