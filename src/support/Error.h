//===- support/Error.h - Error handling without exceptions ---------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight error handling for library code. The library does not use
/// exceptions (see DESIGN.md §7); fallible operations return Result<T>,
/// which carries either a value or an Error with a human-readable message.
/// Errors must be checked before destruction in asserts-enabled builds.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_ERROR_H
#define WOOTZ_SUPPORT_ERROR_H

#include <cassert>
#include <cstdlib>
#include <string>
#include <utility>

namespace wootz {

/// A recoverable error with a diagnostic message.
///
/// Follows the LLVM style of diagnostics: lowercase first word, no
/// trailing period. An Error is "checked" once its boolean conversion has
/// been evaluated; destroying an unchecked failure aborts in asserts
/// builds, which catches silently dropped errors early.
class Error {
public:
  /// Creates a success value (no error).
  Error() = default;

  /// Creates a failure carrying \p Message.
  static Error failure(std::string Message) {
    Error E;
    E.Failed = true;
    E.Message = std::move(Message);
    return E;
  }

  /// Creates a success value explicitly.
  static Error success() { return Error(); }

  Error(const Error &) = delete;
  Error &operator=(const Error &) = delete;

  Error(Error &&Other) noexcept { moveFrom(std::move(Other)); }

  Error &operator=(Error &&Other) noexcept {
    assertChecked();
    moveFrom(std::move(Other));
    return *this;
  }

  ~Error() { assertChecked(); }

  /// True if this is a failure. Evaluating this marks the error checked.
  explicit operator bool() {
    Checked = true;
    return Failed;
  }

  /// The diagnostic message; empty for success values.
  const std::string &message() const { return Message; }

private:
  void moveFrom(Error &&Other) {
    Failed = Other.Failed;
    Checked = Other.Checked;
    Message = std::move(Other.Message);
    // The moved-from error no longer owns the obligation to be checked.
    Other.Failed = false;
    Other.Checked = true;
  }

  void assertChecked() const {
    assert((Checked || !Failed) && "unchecked wootz::Error dropped");
  }

  bool Failed = false;
  bool Checked = false;
  std::string Message;
};

/// Either a value of type \p T or an Error.
///
/// \p T must be default-constructible and movable (the failure state
/// holds a default-constructed T; all library value types qualify).
///
/// Usage:
/// \code
///   Result<int> R = parseCount(Text);
///   if (!R)
///     return R.takeError();
///   use(*R);
/// \endcode
template <typename T> class Result {
public:
  /// Constructs a success result holding \p Value.
  Result(T Value) : HasValue(true), Value(std::move(Value)) {}

  /// Constructs a failure result from \p E; \p E must be a failure.
  Result(Error E) : HasValue(false) {
    assert(E && "constructing Result from a success Error");
    ErrMessage = E.message();
  }

  /// True if this result holds a value.
  explicit operator bool() const { return HasValue; }

  /// Accesses the contained value. Asserts on failure results.
  T &operator*() {
    assert(HasValue && "dereferencing a failed Result");
    return Value;
  }
  const T &operator*() const {
    assert(HasValue && "dereferencing a failed Result");
    return Value;
  }
  T *operator->() { return &operator*(); }
  const T *operator->() const { return &operator*(); }

  /// Moves the contained value out. Asserts on failure results.
  T take() {
    assert(HasValue && "taking value of a failed Result");
    return std::move(Value);
  }

  /// Extracts the error. Asserts on success results.
  Error takeError() {
    assert(!HasValue && "taking error of a successful Result");
    return Error::failure(ErrMessage);
  }

  /// The diagnostic message; empty for success results.
  const std::string &message() const { return ErrMessage; }

private:
  bool HasValue;
  T Value{};
  std::string ErrMessage;
};

/// Aborts the process with \p Message. Used for invariant violations that
/// cannot be expressed as recoverable errors (mirrors report_fatal_error).
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace wootz

#endif // WOOTZ_SUPPORT_ERROR_H
