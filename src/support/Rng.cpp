//===- support/Rng.cpp -----------------------------------------------------===//

#include "src/support/Rng.h"

#include <cmath>
#include <cstring>

using namespace wootz;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
  HasSpareGaussian = false;
}

uint64_t Rng::next() {
  // xoshiro256** by Blackman & Vigna (public domain).
  const uint64_t Out = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Out;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound > 0 && "nextBelow bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "nextInRange bounds reversed");
  return Lo + static_cast<int64_t>(
                  nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
}

float Rng::nextFloat() {
  return static_cast<float>(next() >> 40) * 0x1.0p-24f;
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float Rng::nextGaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  // Box-Muller on two uniforms; regenerate until the radius is nonzero.
  float U1 = nextFloat();
  while (U1 <= 1e-12f)
    U1 = nextFloat();
  const float U2 = nextFloat();
  const float Radius = std::sqrt(-2.0f * std::log(U1));
  const float Angle = 6.283185307179586f * U2;
  SpareGaussian = Radius * std::sin(Angle);
  HasSpareGaussian = true;
  return Radius * std::cos(Angle);
}

Rng Rng::fork() { return Rng(next()); }

std::vector<uint64_t> Rng::saveState() const {
  uint32_t SpareBits;
  static_assert(sizeof(SpareBits) == sizeof(SpareGaussian));
  std::memcpy(&SpareBits, &SpareGaussian, sizeof(SpareBits));
  return {State[0], State[1], State[2], State[3],
          HasSpareGaussian ? 1ull : 0ull, SpareBits};
}

bool Rng::restoreState(const std::vector<uint64_t> &Words) {
  if (Words.size() != 6 || Words[4] > 1 ||
      Words[5] > 0xffffffffull)
    return false;
  for (size_t I = 0; I < 4; ++I)
    State[I] = Words[I];
  HasSpareGaussian = Words[4] == 1;
  const uint32_t SpareBits = static_cast<uint32_t>(Words[5]);
  std::memcpy(&SpareGaussian, &SpareBits, sizeof(SpareGaussian));
  return true;
}
