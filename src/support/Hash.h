//===- support/Hash.h - Checksums and content fingerprints -----------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two hashes the persistence layer is built on: CRC32 (IEEE,
/// reflected 0xEDB88320) for on-disk corruption detection in the
/// WOOTZCK2 checkpoint format, and FNV-1a 64 for content fingerprints —
/// collision-resistant-enough file-name suffixes and the (teacher,
/// hyperparameter) context keys of the cross-run block cache. Neither is
/// cryptographic; they defend against bit rot and accidents, not
/// adversaries.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_HASH_H
#define WOOTZ_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace wootz {

/// CRC32 (IEEE 802.3) of \p Size bytes at \p Data, optionally continuing
/// from a previous checksum \p Seed (pass the prior return value).
uint32_t crc32(const void *Data, size_t Size, uint32_t Seed = 0);

inline uint32_t crc32(std::string_view Bytes, uint32_t Seed = 0) {
  return crc32(Bytes.data(), Bytes.size(), Seed);
}

/// Incremental FNV-1a 64-bit hasher. Deterministic across platforms and
/// runs (unlike std::hash), so values can live in file names and be
/// compared between processes.
class Fnv1a {
public:
  Fnv1a &mixBytes(const void *Data, size_t Size);

  Fnv1a &mix(std::string_view Text) {
    return mixBytes(Text.data(), Text.size());
  }

  Fnv1a &mix(uint64_t Value) { return mixBytes(&Value, sizeof(Value)); }

  Fnv1a &mix(int64_t Value) { return mixBytes(&Value, sizeof(Value)); }

  Fnv1a &mix(int Value) {
    return mix(static_cast<int64_t>(Value));
  }

  Fnv1a &mix(float Value) { return mixBytes(&Value, sizeof(Value)); }

  Fnv1a &mix(double Value) { return mixBytes(&Value, sizeof(Value)); }

  uint64_t digest() const { return State; }

private:
  uint64_t State = 0xcbf29ce484222325ull;
};

/// FNV-1a 64 of \p Text in one call.
uint64_t fnv1a(std::string_view Text);

/// Fast 64-bit content fingerprint of \p Size bytes: a word-at-a-time
/// multiply-xor mix, roughly 8x the throughput of the byte-wise FNV-1a
/// above, which is what makes it usable for per-call validation of
/// multi-megabyte weight tensors (PackedWeightsCache). Deterministic
/// across runs and across processes on same-endian platforms. Not
/// cryptographic.
uint64_t hashBytes64(const void *Data, size_t Size);

/// Lower-case hex rendering of the low \p Digits nibbles of \p Value
/// (most significant first). Digits must be in [1, 16].
std::string toHex(uint64_t Value, int Digits = 16);

} // namespace wootz

#endif // WOOTZ_SUPPORT_HASH_H
