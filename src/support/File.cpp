//===- support/File.cpp ------------------------------------------------------===//

#include "src/support/File.h"

#include <atomic>
#include <filesystem>
#include <fstream>

using namespace wootz;

Result<std::string> wootz::readFile(const std::string &Path) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream)
    return Error::failure("cannot open '" + Path + "' for reading");
  std::string Contents((std::istreambuf_iterator<char>(Stream)),
                       std::istreambuf_iterator<char>());
  if (Stream.bad())
    return Error::failure("read from '" + Path + "' failed");
  return Contents;
}

Error wootz::writeFile(const std::string &Path,
                       const std::string &Contents) {
  const std::filesystem::path Target(Path);
  if (Target.has_parent_path()) {
    std::error_code FsError;
    std::filesystem::create_directories(Target.parent_path(), FsError);
    if (FsError)
      return Error::failure("cannot create directories for '" + Path +
                            "'");
  }
  std::ofstream Stream(Path, std::ios::binary | std::ios::trunc);
  if (!Stream)
    return Error::failure("cannot open '" + Path + "' for writing");
  Stream.write(Contents.data(),
               static_cast<std::streamsize>(Contents.size()));
  if (!Stream)
    return Error::failure("write to '" + Path + "' failed");
  return Error::success();
}

Error wootz::writeFileAtomic(const std::string &Path,
                             const std::string &Contents) {
  // The temporary must live in the same directory as the target:
  // rename(2) is only atomic within one filesystem, and keeping it next
  // to the target guarantees that. The counter disambiguates concurrent
  // writers of the same path within a process; the rename then decides
  // the winner atomically.
  static std::atomic<uint64_t> Serial{0};
  const std::string TempPath =
      Path + ".tmp." + std::to_string(Serial.fetch_add(1));
  if (Error E = writeFile(TempPath, Contents))
    return E;
  std::error_code FsError;
  std::filesystem::rename(TempPath, Path, FsError);
  if (FsError) {
    std::filesystem::remove(TempPath, FsError);
    return Error::failure("cannot rename '" + TempPath + "' over '" +
                          Path + "'");
  }
  return Error::success();
}
