//===- support/Table.cpp ---------------------------------------------------===//

#include "src/support/Table.h"

#include <algorithm>
#include <cassert>

using namespace wootz;

Table::Table(std::vector<std::string> Headers) : Headers(std::move(Headers)) {
  assert(!this->Headers.empty() && "a table needs at least one column");
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row width != header width");
  Rows.push_back(std::move(Cells));
}

void Table::addSeparator() { Rows.emplace_back(); }

size_t Table::rowCount() const {
  size_t Count = 0;
  for (const auto &Row : Rows)
    if (!Row.empty())
      ++Count;
  return Count;
}

std::string Table::render() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto renderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line = "|";
    for (size_t I = 0; I < Cells.size(); ++I) {
      Line += ' ';
      Line += Cells[I];
      Line.append(Widths[I] - Cells[I].size(), ' ');
      Line += " |";
    }
    Line += '\n';
    return Line;
  };

  std::string Separator = "+";
  for (size_t Width : Widths) {
    Separator.append(Width + 2, '-');
    Separator += '+';
  }
  Separator += '\n';

  std::string Out = Separator + renderRow(Headers) + Separator;
  for (const auto &Row : Rows)
    Out += Row.empty() ? Separator : renderRow(Row);
  Out += Separator;
  return Out;
}
