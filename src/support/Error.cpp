//===- support/Error.cpp --------------------------------------------------===//

#include "src/support/Error.h"

#include <cstdio>

using namespace wootz;

void wootz::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "wootz fatal error: %s\n", Message.c_str());
  std::abort();
}
