//===- support/Hash.cpp ----------------------------------------------------===//

#include "src/support/Hash.h"

#include <array>
#include <cstring>

using namespace wootz;

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t Byte = 0; Byte < 256; ++Byte) {
    uint32_t Crc = Byte;
    for (int Bit = 0; Bit < 8; ++Bit)
      Crc = (Crc >> 1) ^ ((Crc & 1u) ? 0xedb88320u : 0u);
    Table[Byte] = Crc;
  }
  return Table;
}

} // namespace

uint32_t wootz::crc32(const void *Data, size_t Size, uint32_t Seed) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint32_t Crc = ~Seed;
  for (size_t I = 0; I < Size; ++I)
    Crc = (Crc >> 8) ^ Table[(Crc ^ Bytes[I]) & 0xffu];
  return ~Crc;
}

Fnv1a &Fnv1a::mixBytes(const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I) {
    State ^= Bytes[I];
    State *= 0x100000001b3ull;
  }
  return *this;
}

uint64_t wootz::fnv1a(std::string_view Text) {
  return Fnv1a().mix(Text).digest();
}

uint64_t wootz::hashBytes64(const void *Data, size_t Size) {
  constexpr uint64_t Mul = 0x9e3779b97f4a7c15ull;
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  // Seeding with the length separates buffers that differ only by a
  // zero-padded tail.
  uint64_t State = 0x84222325cbf29ce4ull ^ (Size * Mul);
  size_t Remaining = Size;
  while (Remaining >= 8) {
    uint64_t Word;
    std::memcpy(&Word, Bytes, 8);
    State = (State ^ Word) * Mul;
    State ^= State >> 29;
    Bytes += 8;
    Remaining -= 8;
  }
  if (Remaining > 0) {
    uint64_t Word = 0;
    std::memcpy(&Word, Bytes, Remaining);
    State = (State ^ Word) * Mul;
    State ^= State >> 29;
  }
  State *= Mul;
  State ^= State >> 32;
  return State;
}

std::string wootz::toHex(uint64_t Value, int Digits) {
  static const char Alphabet[] = "0123456789abcdef";
  std::string Out(static_cast<size_t>(Digits), '0');
  for (int I = Digits - 1; I >= 0; --I) {
    Out[I] = Alphabet[Value & 0xf];
    Value >>= 4;
  }
  return Out;
}
