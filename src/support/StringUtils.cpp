//===- support/StringUtils.cpp ---------------------------------------------===//

#include "src/support/StringUtils.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>

using namespace wootz;

std::string_view wootz::trim(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::vector<std::string> wootz::split(std::string_view Text, char Separator) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Separator) {
      Pieces.emplace_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Pieces;
}

std::vector<std::string> wootz::splitLines(std::string_view Text) {
  std::vector<std::string> Lines = split(Text, '\n');
  for (std::string &Line : Lines)
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
  return Lines;
}

bool wootz::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

bool wootz::endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

/// Drops an explicit leading '+', which std::from_chars (unlike strtoll /
/// strtod) rejects. Only a '+' directly before a digit or '.' is eaten, so
/// garbage like "+-3" still fails in from_chars.
static std::string_view dropLeadingPlus(std::string_view Text) {
  if (Text.size() >= 2 && Text[0] == '+' &&
      (std::isdigit(static_cast<unsigned char>(Text[1])) || Text[1] == '.'))
    return Text.substr(1);
  return Text;
}

Result<long long> wootz::parseInteger(std::string_view Text) {
  // std::from_chars is locale-independent, unlike strtoll, whose grouping
  // behavior can vary under a non-"C" locale.
  const std::string_view Trimmed = dropLeadingPlus(trim(Text));
  if (Trimmed.empty())
    return Error::failure("expected an integer, found empty text");
  long long Value = 0;
  const auto [Ptr, Ec] =
      std::from_chars(Trimmed.data(), Trimmed.data() + Trimmed.size(), Value);
  if (Ec == std::errc::result_out_of_range)
    return Error::failure("integer '" + std::string(Trimmed) +
                          "' is out of range");
  if (Ec != std::errc() || Ptr != Trimmed.data() + Trimmed.size())
    return Error::failure("invalid integer '" + std::string(Trimmed) + "'");
  return Value;
}

Result<double> wootz::parseDouble(std::string_view Text) {
  // std::from_chars always parses with the classic "C" locale, so "1.5"
  // parses the same under e.g. de_DE (where strtod expects "1,5").
  const std::string_view Trimmed = dropLeadingPlus(trim(Text));
  if (Trimmed.empty())
    return Error::failure("expected a number, found empty text");
  double Value = 0;
  const auto [Ptr, Ec] =
      std::from_chars(Trimmed.data(), Trimmed.data() + Trimmed.size(), Value);
  if (Ec == std::errc::result_out_of_range)
    return Error::failure("number '" + std::string(Trimmed) +
                          "' is out of range");
  if (Ec != std::errc() || Ptr != Trimmed.data() + Trimmed.size())
    return Error::failure("invalid number '" + std::string(Trimmed) + "'");
  return Value;
}

std::string wootz::join(const std::vector<std::string> &Pieces,
                        std::string_view Separator) {
  std::string Out;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I != 0)
      Out += Separator;
    Out += Pieces[I];
  }
  return Out;
}

std::string wootz::formatDouble(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}

//===----------------------------------------------------------------------===//
// Base64 (standard alphabet, '=' padding) — used to carry binary weight
// bundles inside JSON request bodies.
//===----------------------------------------------------------------------===//

static constexpr char Base64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::string wootz::base64Encode(std::string_view Bytes) {
  std::string Out;
  Out.reserve((Bytes.size() + 2) / 3 * 4);
  size_t I = 0;
  for (; I + 3 <= Bytes.size(); I += 3) {
    const unsigned Chunk = (static_cast<unsigned char>(Bytes[I]) << 16) |
                           (static_cast<unsigned char>(Bytes[I + 1]) << 8) |
                           static_cast<unsigned char>(Bytes[I + 2]);
    Out += Base64Alphabet[(Chunk >> 18) & 63];
    Out += Base64Alphabet[(Chunk >> 12) & 63];
    Out += Base64Alphabet[(Chunk >> 6) & 63];
    Out += Base64Alphabet[Chunk & 63];
  }
  const size_t Rest = Bytes.size() - I;
  if (Rest == 1) {
    const unsigned Chunk = static_cast<unsigned char>(Bytes[I]) << 16;
    Out += Base64Alphabet[(Chunk >> 18) & 63];
    Out += Base64Alphabet[(Chunk >> 12) & 63];
    Out += "==";
  } else if (Rest == 2) {
    const unsigned Chunk = (static_cast<unsigned char>(Bytes[I]) << 16) |
                           (static_cast<unsigned char>(Bytes[I + 1]) << 8);
    Out += Base64Alphabet[(Chunk >> 18) & 63];
    Out += Base64Alphabet[(Chunk >> 12) & 63];
    Out += Base64Alphabet[(Chunk >> 6) & 63];
    Out += '=';
  }
  return Out;
}

Result<std::string> wootz::base64Decode(std::string_view Text) {
  std::array<signed char, 256> Reverse;
  Reverse.fill(-1);
  for (int I = 0; I < 64; ++I)
    Reverse[static_cast<unsigned char>(Base64Alphabet[I])] =
        static_cast<signed char>(I);

  if (Text.size() % 4 != 0)
    return Error::failure("base64 length " + std::to_string(Text.size()) +
                          " is not a multiple of 4");
  std::string Out;
  Out.reserve(Text.size() / 4 * 3);
  for (size_t I = 0; I < Text.size(); I += 4) {
    const bool LastQuad = I + 4 == Text.size();
    int Values[4];
    int Padding = 0;
    for (int J = 0; J < 4; ++J) {
      const char C = Text[I + J];
      if (C == '=') {
        // Padding is only legal in the final one or two positions.
        if (!LastQuad || J < 2)
          return Error::failure("unexpected '=' at base64 offset " +
                                std::to_string(I + J));
        ++Padding;
        Values[J] = 0;
        continue;
      }
      if (Padding > 0)
        return Error::failure("base64 data after '=' padding");
      const signed char Decoded = Reverse[static_cast<unsigned char>(C)];
      if (Decoded < 0)
        return Error::failure("invalid base64 character at offset " +
                              std::to_string(I + J));
      Values[J] = Decoded;
    }
    const unsigned Chunk = (Values[0] << 18) | (Values[1] << 12) |
                           (Values[2] << 6) | Values[3];
    Out += static_cast<char>((Chunk >> 16) & 0xff);
    if (Padding < 2)
      Out += static_cast<char>((Chunk >> 8) & 0xff);
    if (Padding < 1)
      Out += static_cast<char>(Chunk & 0xff);
  }
  return Out;
}
