//===- support/StringUtils.cpp ---------------------------------------------===//

#include "src/support/StringUtils.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace wootz;

std::string_view wootz::trim(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::vector<std::string> wootz::split(std::string_view Text, char Separator) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Separator) {
      Pieces.emplace_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Pieces;
}

std::vector<std::string> wootz::splitLines(std::string_view Text) {
  std::vector<std::string> Lines = split(Text, '\n');
  for (std::string &Line : Lines)
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
  return Lines;
}

bool wootz::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

bool wootz::endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

Result<long long> wootz::parseInteger(std::string_view Text) {
  const std::string Owned(trim(Text));
  if (Owned.empty())
    return Error::failure("expected an integer, found empty text");
  char *End = nullptr;
  const long long Value = std::strtoll(Owned.c_str(), &End, 10);
  if (End != Owned.c_str() + Owned.size())
    return Error::failure("invalid integer '" + Owned + "'");
  return Value;
}

Result<double> wootz::parseDouble(std::string_view Text) {
  const std::string Owned(trim(Text));
  if (Owned.empty())
    return Error::failure("expected a number, found empty text");
  char *End = nullptr;
  const double Value = std::strtod(Owned.c_str(), &End);
  if (End != Owned.c_str() + Owned.size())
    return Error::failure("invalid number '" + Owned + "'");
  return Value;
}

std::string wootz::join(const std::vector<std::string> &Pieces,
                        std::string_view Separator) {
  std::string Out;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I != 0)
      Out += Separator;
    Out += Pieces[I];
  }
  return Out;
}

std::string wootz::formatDouble(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}
