//===- support/Json.cpp ----------------------------------------------------===//

#include "src/support/Json.h"

#include "src/support/StringUtils.h"

#include <cstdio>

using namespace wootz;

std::string wootz::jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buffer;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonObject::key(const std::string &Key) {
  if (!First)
    Body += ",";
  First = false;
  Body += "\"" + jsonEscape(Key) + "\":";
}

JsonObject &JsonObject::field(const std::string &Key,
                              const std::string &Value) {
  key(Key);
  Body += "\"" + jsonEscape(Value) + "\"";
  return *this;
}

JsonObject &JsonObject::field(const std::string &Key, double Value,
                              int Digits) {
  key(Key);
  Body += formatDouble(Value, Digits);
  return *this;
}

JsonObject &JsonObject::field(const std::string &Key, int64_t Value) {
  key(Key);
  Body += std::to_string(Value);
  return *this;
}

JsonObject &JsonObject::field(const std::string &Key, bool Value) {
  key(Key);
  Body += Value ? "true" : "false";
  return *this;
}

JsonObject &JsonObject::fieldRaw(const std::string &Key,
                                 const std::string &Raw) {
  key(Key);
  Body += Raw;
  return *this;
}
