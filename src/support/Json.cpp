//===- support/Json.cpp ----------------------------------------------------===//

#include "src/support/Json.h"

#include "src/support/StringUtils.h"

#include <cstdio>

using namespace wootz;

std::string wootz::jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buffer;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

namespace {

/// Character cursor over a manifest line with whitespace skipping.
class FlatParser {
public:
  explicit FlatParser(std::string_view Text) : Text(Text) {}

  void skipSpace() {
    while (Offset < Text.size() &&
           (Text[Offset] == ' ' || Text[Offset] == '\t' ||
            Text[Offset] == '\n' || Text[Offset] == '\r'))
      ++Offset;
  }

  bool atEnd() {
    skipSpace();
    return Offset >= Text.size();
  }

  bool consume(char C) {
    skipSpace();
    if (Offset < Text.size() && Text[Offset] == C) {
      ++Offset;
      return true;
    }
    return false;
  }

  char peek() {
    skipSpace();
    return Offset < Text.size() ? Text[Offset] : '\0';
  }

  /// Parses a quoted string (the opening quote already consumed by the
  /// caller via consume('"')), handling the escapes jsonEscape() emits.
  bool parseStringBody(std::string &Out) {
    while (Offset < Text.size()) {
      char C = Text[Offset++];
      if (C == '"')
        return true;
      // Raw control characters are never valid inside a JSON string —
      // jsonEscape() always \u-escapes them — and with HTTP bodies now
      // reaching this parser, accepting them would let a client smuggle
      // newlines into values that later land in line-oriented formats
      // (JSONL telemetry, manifest lines).
      if (static_cast<unsigned char>(C) < 0x20)
        return false;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Offset >= Text.size())
        return false;
      char Escape = Text[Offset++];
      switch (Escape) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Offset + 4 > Text.size())
          return false;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Offset++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return false;
        }
        // Only the control-character range jsonEscape() produces;
        // anything beyond Latin-1 would need UTF-8 encoding.
        if (Code > 0xff)
          return false;
        Out += static_cast<char>(Code);
        break;
      }
      default:
        return false;
      }
    }
    return false;
  }

  /// Parses a bare token (number / true / false / null) as raw text.
  bool parseBareToken(std::string &Out) {
    skipSpace();
    const size_t Start = Offset;
    while (Offset < Text.size()) {
      char C = Text[Offset];
      const bool TokenChar = (C >= '0' && C <= '9') ||
                             (C >= 'a' && C <= 'z') || C == '-' ||
                             C == '+' || C == '.' || C == 'E';
      if (!TokenChar)
        break;
      ++Offset;
    }
    Out = std::string(Text.substr(Start, Offset - Start));
    return !Out.empty();
  }

private:
  std::string_view Text;
  size_t Offset = 0;
};

} // namespace

Result<std::map<std::string, std::string>>
wootz::parseFlatJsonObject(std::string_view Text) {
  FlatParser Cursor(Text);
  if (!Cursor.consume('{'))
    return Error::failure("expected '{' at the start of a JSON object");
  std::map<std::string, std::string> Out;
  if (Cursor.consume('}')) {
    if (!Cursor.atEnd())
      return Error::failure("trailing characters after JSON object");
    return Out;
  }
  do {
    if (!Cursor.consume('"'))
      return Error::failure("expected a quoted key in JSON object");
    std::string Key;
    if (!Cursor.parseStringBody(Key))
      return Error::failure("unterminated key in JSON object");
    if (!Cursor.consume(':'))
      return Error::failure("expected ':' after key '" + Key + "'");
    std::string Value;
    if (Cursor.consume('"')) {
      if (!Cursor.parseStringBody(Value))
        return Error::failure("unterminated value for key '" + Key + "'");
    } else {
      char Next = Cursor.peek();
      if (Next == '{' || Next == '[')
        return Error::failure("nested JSON values are not supported");
      if (!Cursor.parseBareToken(Value))
        return Error::failure("malformed value for key '" + Key + "'");
    }
    if (!Out.emplace(std::move(Key), std::move(Value)).second)
      return Error::failure("duplicate key in JSON object");
  } while (Cursor.consume(','));
  if (!Cursor.consume('}'))
    return Error::failure("expected '}' at the end of a JSON object");
  if (!Cursor.atEnd())
    return Error::failure("trailing characters after JSON object");
  return Out;
}

void JsonObject::key(const std::string &Key) {
  if (!First)
    Body += ",";
  First = false;
  Body += "\"" + jsonEscape(Key) + "\":";
}

JsonObject &JsonObject::field(const std::string &Key,
                              const std::string &Value) {
  key(Key);
  Body += "\"" + jsonEscape(Value) + "\"";
  return *this;
}

JsonObject &JsonObject::field(const std::string &Key, double Value,
                              int Digits) {
  key(Key);
  Body += formatDouble(Value, Digits);
  return *this;
}

JsonObject &JsonObject::field(const std::string &Key, int64_t Value) {
  key(Key);
  Body += std::to_string(Value);
  return *this;
}

JsonObject &JsonObject::field(const std::string &Key, bool Value) {
  key(Key);
  Body += Value ? "true" : "false";
  return *this;
}

JsonObject &JsonObject::fieldRaw(const std::string &Key,
                                 const std::string &Raw) {
  key(Key);
  Body += Raw;
  return *this;
}
