//===- support/Json.h - Minimal JSON emission ------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny JSON *writer* — just enough for the machine-readable artifacts
/// the repo emits (runtime span logs as JSONL, bench result files) —
/// plus a deliberately minimal *flat-object* parser for the one JSON
/// input the library consumes: checkpoint manifest lines. The parser
/// accepts a single non-nested object (string / number / bool / null
/// values) and nothing more; the no-dependency rule rules out a real
/// one.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_JSON_H
#define WOOTZ_SUPPORT_JSON_H

#include "src/support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace wootz {

/// Escapes \p Text for use inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(const std::string &Text);

/// Parses one flat (non-nested) JSON object like the ones JsonObject
/// emits: `{"key":"value","n":3,"flag":true}`. String values are
/// unescaped; numbers, booleans, and null are returned as their raw
/// token text. Nested objects/arrays, duplicate keys, raw (unescaped)
/// control characters inside strings, and trailing garbage after the
/// closing brace are errors — this parses checkpoint manifest lines and
/// untrusted serve request bodies, not general JSON.
Result<std::map<std::string, std::string>>
parseFlatJsonObject(std::string_view Text);

/// Builds one JSON object left to right. Values are emitted immediately;
/// keys are not checked for uniqueness.
///
/// \code
///   JsonObject Row;
///   Row.field("name", Name).field("seconds", Seconds, 3);
///   Out += Row.str() + "\n";
/// \endcode
class JsonObject {
public:
  JsonObject &field(const std::string &Key, const std::string &Value);
  JsonObject &field(const std::string &Key, const char *Value) {
    return field(Key, std::string(Value));
  }
  JsonObject &field(const std::string &Key, double Value, int Digits = 6);
  JsonObject &field(const std::string &Key, int64_t Value);
  JsonObject &field(const std::string &Key, int Value) {
    return field(Key, static_cast<int64_t>(Value));
  }
  JsonObject &field(const std::string &Key, size_t Value) {
    return field(Key, static_cast<int64_t>(Value));
  }
  JsonObject &field(const std::string &Key, bool Value);
  /// Emits \p Raw verbatim — for nested objects/arrays built separately.
  JsonObject &fieldRaw(const std::string &Key, const std::string &Raw);

  /// The completed object, braces included.
  std::string str() const { return Body + "}"; }

private:
  void key(const std::string &Key);

  std::string Body = "{";
  bool First = true;
};

} // namespace wootz

#endif // WOOTZ_SUPPORT_JSON_H
