//===- support/Json.h - Minimal JSON emission ------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny JSON *writer* — just enough for the machine-readable artifacts
/// the repo emits (runtime span logs as JSONL, bench result files). There
/// is deliberately no parser: nothing in the library consumes JSON, and
/// the no-dependency rule rules out a real one.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_JSON_H
#define WOOTZ_SUPPORT_JSON_H

#include <cstdint>
#include <string>

namespace wootz {

/// Escapes \p Text for use inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(const std::string &Text);

/// Builds one JSON object left to right. Values are emitted immediately;
/// keys are not checked for uniqueness.
///
/// \code
///   JsonObject Row;
///   Row.field("name", Name).field("seconds", Seconds, 3);
///   Out += Row.str() + "\n";
/// \endcode
class JsonObject {
public:
  JsonObject &field(const std::string &Key, const std::string &Value);
  JsonObject &field(const std::string &Key, const char *Value) {
    return field(Key, std::string(Value));
  }
  JsonObject &field(const std::string &Key, double Value, int Digits = 6);
  JsonObject &field(const std::string &Key, int64_t Value);
  JsonObject &field(const std::string &Key, int Value) {
    return field(Key, static_cast<int64_t>(Value));
  }
  JsonObject &field(const std::string &Key, size_t Value) {
    return field(Key, static_cast<int64_t>(Value));
  }
  JsonObject &field(const std::string &Key, bool Value);
  /// Emits \p Raw verbatim — for nested objects/arrays built separately.
  JsonObject &fieldRaw(const std::string &Key, const std::string &Raw);

  /// The completed object, braces included.
  std::string str() const { return Body + "}"; }

private:
  void key(const std::string &Key);

  std::string Body = "{";
  bool First = true;
};

} // namespace wootz

#endif // WOOTZ_SUPPORT_JSON_H
