//===- support/Stopwatch.h - Wall-clock timing -----------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock stopwatch used to measure per-configuration training costs,
/// which feed the simulated multi-node scheduler (see explore/Cluster.h).
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_STOPWATCH_H
#define WOOTZ_SUPPORT_STOPWATCH_H

#include <chrono>

namespace wootz {

/// Measures elapsed wall-clock time in seconds.
class Stopwatch {
public:
  Stopwatch() { restart(); }

  /// Resets the start point to now.
  void restart() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace wootz

#endif // WOOTZ_SUPPORT_STOPWATCH_H
