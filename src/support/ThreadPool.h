//===- support/ThreadPool.h - Fixed-size worker pool -----------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool. The paper distributes pre-training and
/// exploration over machines via MPI; this pool is the in-process
/// substitute used when real (rather than simulated) parallelism is
/// requested. With ThreadCount == 1 the pool degrades to inline execution.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SUPPORT_THREADPOOL_H
#define WOOTZ_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wootz {

/// Runs enqueued tasks on a fixed set of worker threads.
class ThreadPool {
public:
  /// Creates \p ThreadCount workers; 0 means inline (caller-thread)
  /// execution.
  explicit ThreadPool(unsigned ThreadCount);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task; inline pools run it immediately.
  void enqueue(std::function<void()> Task);

  /// Blocks until every enqueued task has finished.
  void wait();

  /// Number of worker threads (0 for an inline pool).
  unsigned threadCount() const { return ThreadCount; }

  /// Runs \p Body(I) for I in [0, Count) across the pool and waits.
  /// Dispatches one task per index; use the chunked overload for loops
  /// whose per-index work is small.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body);

  /// Chunked overload: runs \p Body(Begin, End) over [0, Count) split
  /// into chunks of at most \p Grain indices, one task per chunk, and
  /// waits. Chunk boundaries depend only on \p Count and \p Grain (never
  /// on the worker count), so callers that accumulate per-chunk state and
  /// reduce it in chunk order get results that are bit-identical across
  /// pool sizes. \p Grain == 0 is treated as 1.
  void parallelFor(size_t Count, size_t Grain,
                   const std::function<void(size_t, size_t)> &Body);

private:
  void workerLoop();

  unsigned ThreadCount;
  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable AllDone;
  size_t InFlight = 0;
  bool ShuttingDown = false;
};

} // namespace wootz

#endif // WOOTZ_SUPPORT_THREADPOOL_H
