//===- plan/Plan.cpp - Plan compilation ------------------------------------===//
//
// Freeze-time compilation of a Graph subgraph into an ExecPlan: cone
// extraction, shape inference, BatchNorm folding, ReLU fusion, arena
// layout with lifetime-based reuse, and GEMM panel pre-packing.
//
//===----------------------------------------------------------------------===//

#include "src/plan/Plan.h"

#include "src/support/Json.h"
#include "src/tensor/Ops.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

using namespace wootz;

namespace {

const char *opName(PlanStep::Op Kind) {
  switch (Kind) {
  case PlanStep::Op::Conv:
    return "conv";
  case PlanStep::Op::ScaleShift:
    return "scaleshift";
  case PlanStep::Op::ReLU:
    return "relu";
  case PlanStep::Op::MaxPool:
    return "maxpool";
  case PlanStep::Op::AvgPool:
    return "avgpool";
  case PlanStep::Op::GlobalAvgPool:
    return "globalavgpool";
  case PlanStep::Op::Dense:
    return "dense";
  case PlanStep::Op::Concat:
    return "concat";
  case PlanStep::Op::Add:
    return "add";
  }
  return "?";
}

/// Per-sample extents of a buffer, as a batch-1 NCHW shape.
Shape sampleShape(const PlanBuffer &B) {
  return Shape{1, B.Channels, B.Height, B.Width};
}

/// True when a fused ReLU epilogue is implemented for \p Kind.
bool supportsReluEpilogue(PlanStep::Op Kind) {
  switch (Kind) {
  case PlanStep::Op::Conv:
  case PlanStep::Op::ScaleShift:
  case PlanStep::Op::Dense:
  case PlanStep::Op::Add:
    return true;
  default:
    return false;
  }
}

/// Folds eval-mode BatchNorm statistics into per-channel scale/shift:
/// y = x * Scale[c] + Shift[c] where Scale = gamma / sqrt(var + eps)
/// and Shift = beta - mean * Scale. Uses the same float inverse-sqrt
/// the interpreter's eval path computes.
void batchNormScaleShift(const BatchNorm2D &Bn, Tensor &Scale,
                         Tensor &Shift) {
  const int C = Bn.channels();
  Scale = Tensor(Shape{C});
  Shift = Tensor(Shape{C});
  for (int I = 0; I < C; ++I) {
    const float InvStd = 1.0f / std::sqrt(Bn.runningVar().Value[I] +
                                          Bn.epsilon());
    Scale[I] = Bn.gamma().Value[I] * InvStd;
    Shift[I] = Bn.beta().Value[I] - Bn.runningMean().Value[I] * Scale[I];
  }
}

} // namespace

Result<ExecPlan> ExecPlan::compile(const Graph &G,
                                   const std::string &InputNode,
                                   const std::string &OutputNode,
                                   int Channels, int Height, int Width,
                                   const PlanOptions &Options) {
  if (!G.hasNode(InputNode))
    return Error::failure("plan input node '" + InputNode +
                          "' does not exist");
  if (!G.hasNode(OutputNode))
    return Error::failure("plan output node '" + OutputNode +
                          "' does not exist");
  if (Channels <= 0 || Height <= 0 || Width <= 0)
    return Error::failure("plan input extents must be positive");

  // The cone: every node OutputNode transitively depends on. Nodes
  // outside it (other tuning blocks sharing the graph) never execute.
  std::set<std::string> Cone;
  std::vector<std::string> Work{OutputNode};
  while (!Work.empty()) {
    const std::string Node = Work.back();
    Work.pop_back();
    if (!Cone.insert(Node).second)
      continue;
    if (!G.findLayer(Node)) {
      if (Node != InputNode)
        return Error::failure(
            "plan output depends on input placeholder '" + Node +
            "', not the declared input '" + InputNode + "'");
      continue;
    }
    for (const std::string &In : G.nodeInputs(Node))
      Work.push_back(In);
  }
  if (!Cone.count(InputNode))
    return Error::failure("plan output '" + OutputNode +
                          "' does not depend on input '" + InputNode +
                          "'");

  // Topological order over the cone (Graph insertion order is one) and
  // the in-cone consumer lists that drive fold/fuse legality.
  std::vector<std::string> Order;
  for (const std::string &Name : G.nodeNames())
    if (Cone.count(Name))
      Order.push_back(Name);
  std::map<std::string, std::vector<std::string>> Consumers;
  for (const std::string &Name : Order)
    if (G.findLayer(Name))
      for (const std::string &In : G.nodeInputs(Name))
        Consumers[In].push_back(Name);

  auto soleConsumer = [&](const std::string &Node) -> const std::string * {
    auto It = Consumers.find(Node);
    if (It == Consumers.end() || It->second.size() != 1)
      return nullptr;
    // A node that is also the plan output stays externally visible even
    // with one in-cone consumer; its activation must survive as-is.
    if (Node == OutputNode)
      return nullptr;
    return &It->second[0];
  };

  // BatchNorm folding decisions: Bn -> producing Conv when the Conv
  // feeds nothing else (otherwise folding would corrupt the second
  // consumer's view of the Conv activation).
  std::map<std::string, std::string> FoldBnOf; // conv -> bn
  if (Options.FoldBatchNorm) {
    for (const std::string &Name : Order) {
      const Layer *L = G.findLayer(Name);
      if (!L || L->kind() != "batchnorm")
        continue;
      const std::vector<std::string> Ins = G.nodeInputs(Name);
      const Layer *Producer = G.findLayer(Ins[0]);
      if (!Producer || Producer->kind() != "conv")
        continue;
      const std::string *Sole = soleConsumer(Ins[0]);
      if (Sole && *Sole == Name)
        FoldBnOf[Ins[0]] = Name;
    }
  }

  ExecPlan Plan;
  Plan.Input = InputNode;
  Plan.Output = OutputNode;
  Plan.InChannels = Channels;
  Plan.InHeight = Height;
  Plan.InWidth = Width;
  Plan.Opts = Options;

  // Node -> buffer index; fused/folded/aliased nodes share their
  // producer's buffer.
  std::map<std::string, int> BufOf;
  Plan.Buffers.push_back(PlanBuffer{InputNode, Channels, Height, Width,
                                    static_cast<size_t>(Channels) * Height *
                                        Width,
                                    0, -1, -1});
  BufOf[InputNode] = 0;

  auto newBuffer = [&](const std::string &Node, const Shape &S) {
    PlanBuffer B;
    B.Node = Node;
    if (S.rank() == 4) {
      B.Channels = S[1];
      B.Height = S[2];
      B.Width = S[3];
    } else {
      assert(S.rank() == 2 && "plan buffers are NCHW or NC");
      B.Channels = S[1];
      B.Height = 1;
      B.Width = 1;
    }
    B.PerSampleElems = static_cast<size_t>(B.Channels) * B.Height * B.Width;
    B.DefStep = static_cast<int>(Plan.Steps.size());
    Plan.Buffers.push_back(B);
    return static_cast<int>(Plan.Buffers.size()) - 1;
  };

  // Fuses the single-consumer ReLU downstream of \p Tail (if legal)
  // into \p Step; returns the name of the node whose activation the
  // step finally carries.
  auto maybeFuseRelu = [&](PlanStep &Step,
                           const std::string &Tail) -> std::string {
    if (!Options.FuseReLU || !supportsReluEpilogue(Step.Kind))
      return Tail;
    const std::string *Next = soleConsumer(Tail);
    if (!Next)
      return Tail;
    const Layer *L = G.findLayer(*Next);
    if (!L || L->kind() != "relu")
      return Tail;
    Step.FusedReLU = true;
    return *Next;
  };

  for (const std::string &Name : Order) {
    const Layer *L = G.findLayer(Name);
    if (!L)
      continue; // The input placeholder already has buffer 0.
    if (BufOf.count(Name))
      continue; // Folded or fused into an earlier step.
    const std::string Kind = L->kind();

    const std::vector<std::string> InNames = G.nodeInputs(Name);
    std::vector<int> InBufs;
    std::vector<Shape> InShapes;
    for (const std::string &In : InNames) {
      const int Buf = BufOf.at(In);
      InBufs.push_back(Buf);
      InShapes.push_back(sampleShape(Plan.Buffers[Buf]));
    }

    PlanStep Step;
    Step.Inputs = InBufs;
    std::string Tail = Name;

    if (Kind == "conv") {
      const auto &Conv = static_cast<const Conv2D &>(*L);
      Step.Kind = PlanStep::Op::Conv;
      Step.Geometry = Conv.geometry();
      Step.Weight = Conv.weight().Value;
      Step.HasBias = Conv.bias() != nullptr;
      Step.Bias = Step.HasBias ? Conv.bias()->Value
                               : Tensor(Shape{Conv.geometry().OutChannels});
      auto It = FoldBnOf.find(Name);
      if (It != FoldBnOf.end()) {
        const auto &Bn =
            static_cast<const BatchNorm2D &>(*G.findLayer(It->second));
        Tensor Scale, Shift;
        batchNormScaleShift(Bn, Scale, Shift);
        // W'[o,...] = W * Scale[o]; b'[o] = b[o] * Scale[o] + Shift[o]
        // (with b = 0 for bias-free convolutions).
        const size_t PerFilter =
            Step.Weight.size() /
            static_cast<size_t>(Step.Geometry.OutChannels);
        for (int O = 0; O < Step.Geometry.OutChannels; ++O) {
          float *Filter = Step.Weight.data() + O * PerFilter;
          for (size_t I = 0; I < PerFilter; ++I)
            Filter[I] *= Scale[O];
          Step.Bias[O] = (Step.HasBias ? Step.Bias[O] : 0.0f) * Scale[O] +
                         Shift[O];
        }
        Step.HasBias = true;
        Step.FoldedBatchNorm = true;
        Tail = It->second;
      }
      Tail = maybeFuseRelu(Step, Tail);
      if (Options.PrePackPanels) {
        const int ColRows = Step.Geometry.InChannels *
                            Step.Geometry.KernelSize *
                            Step.Geometry.KernelSize;
        Step.Packed = packGemmA(Step.Weight.data(),
                                static_cast<size_t>(ColRows), 1,
                                Step.Geometry.OutChannels, ColRows);
      }
    } else if (Kind == "batchnorm") {
      const auto &Bn = static_cast<const BatchNorm2D &>(*L);
      Step.Kind = PlanStep::Op::ScaleShift;
      batchNormScaleShift(Bn, Step.Weight, Step.Bias);
      Tail = maybeFuseRelu(Step, Tail);
    } else if (Kind == "relu") {
      Step.Kind = PlanStep::Op::ReLU;
    } else if (Kind == "maxpool" || Kind == "avgpool") {
      const auto &Pool = static_cast<const Pool2D &>(*L);
      Step.Kind = Pool.mode() == Pool2D::Mode::Max ? PlanStep::Op::MaxPool
                                                   : PlanStep::Op::AvgPool;
      Step.PoolMode = Pool.mode();
      Step.Window = Pool.window();
      Step.Stride = Pool.stride();
      Step.Pad = Pool.pad();
    } else if (Kind == "globalavgpool") {
      Step.Kind = PlanStep::Op::GlobalAvgPool;
    } else if (Kind == "dense") {
      const auto &Fc = static_cast<const Dense &>(*L);
      Step.Kind = PlanStep::Op::Dense;
      Step.Weight = Fc.weight().Value;
      Step.Bias = Fc.bias().Value;
      Step.HasBias = true;
      Step.InFeatures = Fc.inFeatures();
      Step.OutFeatures = Fc.outFeatures();
      Tail = maybeFuseRelu(Step, Tail);
      if (Options.PrePackPanels)
        // Dense weights are the transposed B operand: B^T(k, j) =
        // W[j * K + k], i.e. strides (1, K).
        Step.Packed = packGemmB(Step.Weight.data(), 1,
                                static_cast<size_t>(Step.InFeatures),
                                Step.InFeatures, Step.OutFeatures);
    } else if (Kind == "concat") {
      Step.Kind = PlanStep::Op::Concat;
    } else if (Kind == "add") {
      Step.Kind = PlanStep::Op::Add;
      Tail = maybeFuseRelu(Step, Tail);
    } else if (Kind == "dropout") {
      // Eval-mode dropout is the identity: alias, no step.
      BufOf[Name] = InBufs[0];
      continue;
    } else {
      return Error::failure("layer kind '" + Kind +
                            "' has no plan lowering (node '" + Name +
                            "')");
    }

    // The step's output shape is the shape of the node whose activation
    // the buffer finally carries; BN and ReLU preserve shapes, so the
    // head node's outputShape() is it.
    const Shape Out = L->outputShape(InShapes);
    Step.Node = Tail;
    Step.Output = newBuffer(Tail, Out);
    Plan.Steps.push_back(std::move(Step));

    // Map every node of the fused chain onto the one buffer.
    const int Buf = Plan.Steps.back().Output;
    BufOf[Name] = Buf;
    std::string Chain = Name;
    while (Chain != Tail) {
      Chain = Consumers.at(Chain)[0];
      BufOf[Chain] = Buf;
    }
  }

  Plan.OutputBuf = BufOf.at(OutputNode);

  // Live ranges: a buffer is born at its defining step and dies after
  // its last reader; the plan output survives to the end.
  for (size_t S = 0; S < Plan.Steps.size(); ++S)
    for (int In : Plan.Steps[S].Inputs)
      Plan.Buffers[In].LastUse =
          std::max(Plan.Buffers[In].LastUse, static_cast<int>(S));
  Plan.Buffers[Plan.OutputBuf].LastUse =
      static_cast<int>(Plan.Steps.size());

  // Arena layout: deterministic first-fit in buffer order. A buffer may
  // take any offset whose extent avoids every already-placed buffer
  // with an overlapping live range.
  for (size_t I = 0; I < Plan.Buffers.size(); ++I) {
    PlanBuffer &B = Plan.Buffers[I];
    if (B.LastUse < B.DefStep) {
      // Dead store (possible only for graphs with unused interior
      // outputs, which the cone excludes) — still give it room.
      B.LastUse = B.DefStep;
    }
    std::vector<std::pair<size_t, size_t>> Taken; // offset, end
    for (size_t J = 0; J < I; ++J) {
      const PlanBuffer &Other = Plan.Buffers[J];
      const bool Overlaps =
          B.DefStep <= Other.LastUse && Other.DefStep <= B.LastUse;
      if (Overlaps)
        Taken.emplace_back(Other.ArenaOffset,
                           Other.ArenaOffset + Other.PerSampleElems);
    }
    std::sort(Taken.begin(), Taken.end());
    size_t Offset = 0;
    for (const auto &[Begin, End] : Taken) {
      if (Offset + B.PerSampleElems <= Begin)
        break;
      Offset = std::max(Offset, End);
    }
    B.ArenaOffset = Offset;
    Plan.ArenaPerSample =
        std::max(Plan.ArenaPerSample, Offset + B.PerSampleElems);
  }

  return Plan;
}

std::string ExecPlan::describeJson() const {
  std::string Steps;
  for (size_t S = 0; S < this->Steps.size(); ++S) {
    const PlanStep &Step = this->Steps[S];
    std::string Inputs;
    for (int In : Step.Inputs)
      Inputs += (Inputs.empty() ? "" : ", ") + std::to_string(In);
    JsonObject Row;
    Row.field("op", opName(Step.Kind))
        .field("node", Step.Node)
        .fieldRaw("inputs", "[" + Inputs + "]")
        .field("output", Step.Output)
        .field("foldedBatchNorm", Step.FoldedBatchNorm)
        .field("fusedReLU", Step.FusedReLU)
        .field("prePacked", !Step.Packed.empty());
    Steps += (S ? ",\n    " : "    ") + Row.str();
  }
  std::string Bufs;
  for (size_t I = 0; I < Buffers.size(); ++I) {
    const PlanBuffer &B = Buffers[I];
    JsonObject Row;
    Row.field("node", B.Node)
        .field("channels", B.Channels)
        .field("height", B.Height)
        .field("width", B.Width)
        .field("perSampleElems", B.PerSampleElems)
        .field("arenaOffset", B.ArenaOffset)
        .field("defStep", B.DefStep)
        .field("lastUse", B.LastUse);
    Bufs += (I ? ",\n    " : "    ") + Row.str();
  }
  JsonObject Meta;
  Meta.field("input", Input)
      .field("output", Output)
      .field("channels", InChannels)
      .field("height", InHeight)
      .field("width", InWidth)
      .field("arenaPerSample", ArenaPerSample)
      .field("outputBuffer", OutputBuf)
      .field("foldBatchNorm", Opts.FoldBatchNorm)
      .field("fuseReLU", Opts.FuseReLU)
      .field("prePackPanels", Opts.PrePackPanels);
  std::string Out = Meta.str();
  Out.pop_back(); // Reopen the object to append the arrays.
  Out += ",\n  \"steps\": [\n" + Steps + "\n  ],\n  \"buffers\": [\n" +
         Bufs + "\n  ]\n}";
  return Out;
}
