//===- plan/Plan.h - Static inference plans --------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shape-specialized static inference plans for frozen pruned graphs.
///
/// The pipeline emits one winning pruned network that then serves many
/// predictions, yet the generic Graph interpreter re-derives shapes,
/// re-allocates activations, and re-packs GEMM panels on every forward.
/// ExecPlan::compile() pays all of that once, at freeze time:
///
///  - the topological node walk collapses to a flat step list with
///    pre-resolved buffer indices (no name lookups, no shape inference);
///  - every activation lives in one arena at a pre-computed offset, with
///    lifetime-based reuse so disjoint activations share storage;
///  - eval-mode BatchNorm folds into the preceding convolution's weights
///    and bias (or becomes a per-channel scale/shift when standalone);
///  - single-consumer ReLUs fuse into their producer step's epilogue;
///  - Conv/Dense weight matrices are pre-packed into the blocked GEMM
///    engine's panel layout (tensor/Kernels.h), once per model rather
///    than once per request.
///
/// Freeze contract: compile() copies every parameter it needs (folded or
/// not) into plan-owned storage, so the plan stays valid if the source
/// Graph is mutated or destroyed afterwards; conversely, later training
/// of the graph does NOT update an already-compiled plan — recompile
/// after the weights settle. A plan is specialized to the per-sample
/// input extents given at compile time; the batch dimension stays free
/// (arena offsets scale with the batch).
///
/// Execution state lives in PlanContext, the plan analog of ExecContext:
/// one context per thread over a shared immutable plan, so N batcher
/// workers run one plan re-entrantly. Plan execution in eval mode is
/// bit-identical across context counts and kernel worker counts (the
/// determinism guarantee of tensor/Kernels.h carries over); relative to
/// the interpreter, logits match bit-for-bit except where BatchNorm
/// folding legitimately reorders float operations.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_PLAN_PLAN_H
#define WOOTZ_PLAN_PLAN_H

#include "src/nn/Graph.h"
#include "src/nn/Layers.h"
#include "src/support/Error.h"
#include "src/tensor/Kernels.h"

#include <string>
#include <vector>

namespace wootz {

/// Freeze-time specialization knobs. The defaults give the fastest
/// plans; the switches exist for A/B measurement (bench_plan) and for
/// golden tests that pin each transformation down in isolation.
struct PlanOptions {
  /// Fold eval-mode BatchNorm into the preceding convolution when it is
  /// that convolution's only consumer; standalone BatchNorm becomes a
  /// precomputed per-channel scale/shift step either way.
  bool FoldBatchNorm = true;
  /// Fuse a single-consumer ReLU into its producer step's epilogue.
  bool FuseReLU = true;
  /// Pre-pack Conv (A operand) and Dense (B operand) weight panels for
  /// the blocked GEMM engine.
  bool PrePackPanels = true;
};

/// One executable step of a plan. Inputs/Output index ExecPlan's buffer
/// table; parameter tensors are plan-owned copies.
struct PlanStep {
  enum class Op {
    Conv,          ///< im2col + GEMM; optional folded BN, fused ReLU.
    ScaleShift,    ///< Standalone eval BatchNorm: x * Scale + Shift.
    ReLU,          ///< Unfused rectifier.
    MaxPool,
    AvgPool,
    GlobalAvgPool,
    Dense,
    Concat,
    Add,
  };

  Op Kind;
  /// Name of the graph node whose activation this step's output buffer
  /// carries (the last node of a fused chain).
  std::string Node;
  std::vector<int> Inputs;
  int Output = -1;
  bool FoldedBatchNorm = false;
  bool FusedReLU = false;

  // Operator parameters; which fields are live depends on Kind.
  ConvGeometry Geometry;              ///< Conv.
  Tensor Weight;                      ///< Conv OIHW / Dense [Out, In] /
                                      ///< ScaleShift per-channel scale.
  Tensor Bias;                        ///< Conv/Dense bias [Out] /
                                      ///< ScaleShift per-channel shift.
  bool HasBias = false;               ///< Conv: bias term present.
  PackedPanels Packed;                ///< Pre-packed GEMM panels.
  Pool2D::Mode PoolMode = Pool2D::Mode::Max;
  int Window = 0, Stride = 0, Pad = 0; ///< MaxPool/AvgPool.
  int InFeatures = 0, OutFeatures = 0; ///< Dense.
};

/// One logical activation buffer: per-sample extents plus its arena
/// placement. Offsets and sizes are in per-sample float counts; the
/// byte placement for a batch of N scales every figure by N.
struct PlanBuffer {
  /// Producing node (for the input buffer: the input placeholder).
  std::string Node;
  int Channels = 0, Height = 0, Width = 0;
  size_t PerSampleElems = 0;
  size_t ArenaOffset = 0;
  /// Step index that writes the buffer (-1: the plan input) and the last
  /// step index that reads it (the plan output lives to the end).
  int DefStep = -1;
  int LastUse = -1;
};

/// A compiled, immutable, self-contained inference program for one
/// (graph, input node, output node, input shape) combination. Compile
/// once, then execute from any number of PlanContexts concurrently.
class ExecPlan {
public:
  /// An empty plan (Result<ExecPlan> requires default construction);
  /// only compile() produces runnable plans.
  ExecPlan() = default;

  /// Compiles the subgraph of \p G that \p OutputNode depends on,
  /// specialized to per-sample input extents \p Channels x \p Height x
  /// \p Width on \p InputNode. Eval-mode Dropout compiles to a
  /// zero-cost buffer alias. Fails cleanly on unknown nodes, on a
  /// dependence on any input placeholder other than \p InputNode, and
  /// on layer kinds with no eval-mode plan lowering.
  static Result<ExecPlan> compile(const Graph &G,
                                  const std::string &InputNode,
                                  const std::string &OutputNode,
                                  int Channels, int Height, int Width,
                                  const PlanOptions &Options = {});

  const std::vector<PlanStep> &steps() const { return Steps; }
  const std::vector<PlanBuffer> &buffers() const { return Buffers; }

  /// Arena size for a batch of one, in floats; a batch of N needs
  /// N times this.
  size_t arenaPerSample() const { return ArenaPerSample; }

  const std::string &inputNode() const { return Input; }
  const std::string &outputNode() const { return Output; }
  int inputChannels() const { return InChannels; }
  int inputHeight() const { return InHeight; }
  int inputWidth() const { return InWidth; }
  /// Index of the buffer holding the plan output.
  int outputBuffer() const { return OutputBuf; }
  const PlanOptions &options() const { return Opts; }

  /// The plan as JSON (steps, fusion decisions, buffer offsets, arena
  /// size): the artifact JobManager freezes next to result.json, and a
  /// human-readable record of what the compiler decided.
  std::string describeJson() const;

private:
  std::vector<PlanStep> Steps;
  std::vector<PlanBuffer> Buffers;
  size_t ArenaPerSample = 0;
  std::string Input;
  std::string Output;
  int InChannels = 0, InHeight = 0, InWidth = 0;
  int OutputBuf = -1;
  PlanOptions Opts;
};

/// Per-caller execution state for one ExecPlan: the activation arena and
/// the output tensor. Create one per thread (or per in-flight request)
/// over a shared plan; a context reuses its arena across calls and
/// reallocates only when the batch grows. Do not use one PlanContext
/// from two threads at once.
class PlanContext {
public:
  PlanContext() = default;
  explicit PlanContext(const ExecPlan &P) : Bound(&P) {}

  /// Attaches this context to \p P (resets nothing but the binding; the
  /// arena is re-sized on the next run).
  void bind(const ExecPlan &P) { Bound = &P; }

  const ExecPlan *plan() const { return Bound; }

  /// Runs the plan on \p Input (shape [N, C, H, W] matching the plan's
  /// input extents) and returns the output activation ([N, classes] for
  /// a logits output). The reference stays valid until the next run().
  const Tensor &run(const Tensor &Input);

private:
  const ExecPlan *Bound = nullptr;
  AlignedBuffer Arena;
  Tensor OutputTensor;
};

} // namespace wootz

#endif // WOOTZ_PLAN_PLAN_H
