//===- plan/Execute.cpp - Plan execution -----------------------------------===//
//
// The PlanContext interpreter-free execution loop: every step reads and
// writes raw arena storage at pre-computed offsets, batch-parallel where
// the Graph interpreter is (convolution), and serial elsewhere. The
// per-step math mirrors the eval-mode Layer implementations operation
// for operation, so a plan without BatchNorm folding reproduces the
// interpreter's logits bit for bit.
//
//===----------------------------------------------------------------------===//

#include "src/plan/Plan.h"

#include "src/tensor/Ops.h"

#include <cassert>
#include <cstring>

using namespace wootz;

namespace {

/// Arena base of \p Buf for a batch of \p N samples. Buffers are laid
/// out [N, C, H, W]; per-sample offsets scale with the batch.
float *bufferBase(float *Arena, const PlanBuffer &Buf, int N) {
  return Arena + Buf.ArenaOffset * static_cast<size_t>(N);
}

void reluInPlace(float *Values, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    Values[I] = Values[I] > 0.0f ? Values[I] : 0.0f;
}

void execConv(const PlanStep &Step, const PlanBuffer &In,
              const PlanBuffer &Out, float *Arena, int N) {
  const float *InBase = bufferBase(Arena, In, N);
  float *OutBase = bufferBase(Arena, Out, N);
  const float *BiasPtr = Step.HasBias ? Step.Bias.data() : nullptr;
  const PackedPanels *Packed = Step.Packed.empty() ? nullptr : &Step.Packed;

  // The whole batched conv GEMM goes through the fused im2col+pack
  // engine: B panels come straight from the activation image, A panels
  // are the step's freeze-time pre-packed weights, the split across
  // samples/columns is chosen by the measured cost model, and the
  // fused-ReLU epilogue rides each task. This is the same code path as
  // the interpreter's eval forward, so plan and interpreter logits stay
  // bit-identical (modulo BatchNorm folding).
  convForwardFused(InBase, N, In.Height, In.Width, Step.Geometry, Packed,
                   Step.Weight.data(), BiasPtr, Step.FusedReLU, OutBase);
}

void execScaleShift(const PlanStep &Step, const PlanBuffer &In,
                    const PlanBuffer &Out, float *Arena, int N) {
  const int Spatial = In.Height * In.Width;
  const float *InBase = bufferBase(Arena, In, N);
  float *OutBase = bufferBase(Arena, Out, N);
  for (int S = 0; S < N; ++S) {
    for (int C = 0; C < In.Channels; ++C) {
      const size_t Offset = S * In.PerSampleElems +
                            static_cast<size_t>(C) * Spatial;
      const float Scale = Step.Weight[C];
      const float Shift = Step.Bias[C];
      const float *InPlane = InBase + Offset;
      float *OutPlane = OutBase + S * Out.PerSampleElems +
                        static_cast<size_t>(C) * Spatial;
      for (int I = 0; I < Spatial; ++I) {
        const float V = InPlane[I] * Scale + Shift;
        OutPlane[I] = Step.FusedReLU && V < 0.0f ? 0.0f : V;
      }
    }
  }
}

void execPool(const PlanStep &Step, const PlanBuffer &In,
              const PlanBuffer &Out, float *Arena, int N) {
  const float *InBase = bufferBase(Arena, In, N);
  float *OutBase = bufferBase(Arena, Out, N);
  const bool Max = Step.Kind == PlanStep::Op::MaxPool;
  size_t OutIndex = 0;
  for (int S = 0; S < N; ++S) {
    for (int C = 0; C < In.Channels; ++C) {
      const float *Plane =
          InBase + S * In.PerSampleElems +
          static_cast<size_t>(C) * In.Height * In.Width;
      for (int OH = 0; OH < Out.Height; ++OH) {
        for (int OW = 0; OW < Out.Width; ++OW, ++OutIndex) {
          const int H0 = OH * Step.Stride - Step.Pad;
          const int W0 = OW * Step.Stride - Step.Pad;
          if (Max) {
            float Best = -3.4e38f;
            for (int KH = 0; KH < Step.Window; ++KH) {
              const int IH = H0 + KH;
              if (IH < 0 || IH >= In.Height)
                continue;
              for (int KW = 0; KW < Step.Window; ++KW) {
                const int IW = W0 + KW;
                if (IW < 0 || IW >= In.Width)
                  continue;
                Best = std::max(Best, Plane[IH * In.Width + IW]);
              }
            }
            OutBase[OutIndex] = Best;
          } else {
            float Total = 0.0f;
            for (int KH = 0; KH < Step.Window; ++KH) {
              const int IH = H0 + KH;
              if (IH < 0 || IH >= In.Height)
                continue;
              for (int KW = 0; KW < Step.Window; ++KW) {
                const int IW = W0 + KW;
                if (IW >= 0 && IW < In.Width)
                  Total += Plane[IH * In.Width + IW];
              }
            }
            OutBase[OutIndex] =
                Total / static_cast<float>(Step.Window * Step.Window);
          }
        }
      }
    }
  }
}

void execGlobalAvgPool(const PlanBuffer &In, const PlanBuffer &Out,
                       float *Arena, int N) {
  const int Spatial = In.Height * In.Width;
  const float *InBase = bufferBase(Arena, In, N);
  float *OutBase = bufferBase(Arena, Out, N);
  const size_t Planes = static_cast<size_t>(N) * In.Channels;
  for (size_t P = 0; P < Planes; ++P) {
    const float *Plane = InBase + P * Spatial;
    float Total = 0.0f;
    for (int I = 0; I < Spatial; ++I)
      Total += Plane[I];
    OutBase[P] = Total / static_cast<float>(Spatial);
  }
}

void execDense(const PlanStep &Step, const PlanBuffer &In,
               const PlanBuffer &Out, float *Arena, int N) {
  const float *InBase = bufferBase(Arena, In, N);
  float *OutBase = bufferBase(Arena, Out, N);
  const int K = Step.InFeatures;
  const int F = Step.OutFeatures;
  if (gemmUsesBlockedEngine(N, K, F)) {
    const PackedPanels *Packed =
        Step.Packed.empty() ? nullptr : &Step.Packed;
    detail::blockedGemmPacked(nullptr, InBase, static_cast<size_t>(K), 1,
                              Packed, Step.Weight.data(), 1,
                              static_cast<size_t>(K), OutBase, N, K, F,
                              /*Accumulate=*/false, /*RowBias=*/nullptr);
  } else {
    gemmTransposeBReference(InBase, Step.Weight.data(), OutBase, N, K, F,
                            /*Accumulate=*/false);
  }
  for (int S = 0; S < N; ++S)
    axpy(1.0f, Step.Bias.data(), OutBase + static_cast<size_t>(S) * F, F);
  if (Step.FusedReLU)
    reluInPlace(OutBase, static_cast<size_t>(N) * F);
}

} // namespace

const Tensor &PlanContext::run(const Tensor &Input) {
  assert(Bound && "PlanContext is not bound to a plan");
  const ExecPlan &P = *Bound;
  assert(Input.shape().rank() == 4 && "plan input must be NCHW");
  assert(Input.shape()[1] == P.inputChannels() &&
         Input.shape()[2] == P.inputHeight() &&
         Input.shape()[3] == P.inputWidth() &&
         "input shape does not match the plan's specialization");
  const int N = Input.shape()[0];

  float *ArenaBase = Arena.ensure(P.arenaPerSample() * N);
  const std::vector<PlanBuffer> &Bufs = P.buffers();
  std::memcpy(bufferBase(ArenaBase, Bufs[0], N), Input.data(),
              sizeof(float) * Input.size());

  for (const PlanStep &Step : P.steps()) {
    const PlanBuffer &Out = Bufs[Step.Output];
    switch (Step.Kind) {
    case PlanStep::Op::Conv:
      execConv(Step, Bufs[Step.Inputs[0]], Out, ArenaBase, N);
      break;
    case PlanStep::Op::ScaleShift:
      execScaleShift(Step, Bufs[Step.Inputs[0]], Out, ArenaBase, N);
      break;
    case PlanStep::Op::ReLU: {
      const PlanBuffer &In = Bufs[Step.Inputs[0]];
      const float *Src = bufferBase(ArenaBase, In, N);
      float *Dst = bufferBase(ArenaBase, Out, N);
      const size_t Count = In.PerSampleElems * static_cast<size_t>(N);
      for (size_t I = 0; I < Count; ++I)
        Dst[I] = Src[I] > 0.0f ? Src[I] : 0.0f;
      break;
    }
    case PlanStep::Op::MaxPool:
    case PlanStep::Op::AvgPool:
      execPool(Step, Bufs[Step.Inputs[0]], Out, ArenaBase, N);
      break;
    case PlanStep::Op::GlobalAvgPool:
      execGlobalAvgPool(Bufs[Step.Inputs[0]], Out, ArenaBase, N);
      break;
    case PlanStep::Op::Dense:
      execDense(Step, Bufs[Step.Inputs[0]], Out, ArenaBase, N);
      break;
    case PlanStep::Op::Concat: {
      float *OutBase = bufferBase(ArenaBase, Out, N);
      for (int S = 0; S < N; ++S) {
        size_t Offset = 0;
        for (int InIdx : Step.Inputs) {
          const PlanBuffer &In = Bufs[InIdx];
          std::memcpy(OutBase + S * Out.PerSampleElems + Offset,
                      bufferBase(ArenaBase, In, N) + S * In.PerSampleElems,
                      sizeof(float) * In.PerSampleElems);
          Offset += In.PerSampleElems;
        }
      }
      break;
    }
    case PlanStep::Op::Add: {
      float *OutBase = bufferBase(ArenaBase, Out, N);
      const size_t Count = Out.PerSampleElems * static_cast<size_t>(N);
      std::memcpy(OutBase,
                  bufferBase(ArenaBase, Bufs[Step.Inputs[0]], N),
                  sizeof(float) * Count);
      for (size_t Slot = 1; Slot < Step.Inputs.size(); ++Slot)
        axpy(1.0f, bufferBase(ArenaBase, Bufs[Step.Inputs[Slot]], N),
             OutBase, Count);
      if (Step.FusedReLU)
        reluInPlace(OutBase, Count);
      break;
    }
    }
  }

  // Materialize the output activation. Dense outputs are rank-2
  // [N, features], everything else NCHW, matching the interpreter.
  const PlanBuffer &OutBuf = Bufs[P.outputBuffer()];
  const bool Rank2 =
      OutBuf.DefStep >= 0 &&
      P.steps()[OutBuf.DefStep].Kind == PlanStep::Op::Dense;
  const Shape OutShape =
      Rank2 ? Shape{N, OutBuf.Channels}
            : Shape{N, OutBuf.Channels, OutBuf.Height, OutBuf.Width};
  if (OutputTensor.shape() != OutShape)
    OutputTensor = Tensor(OutShape);
  std::memcpy(OutputTensor.data(), bufferBase(ArenaBase, OutBuf, N),
              sizeof(float) * OutputTensor.size());
  return OutputTensor;
}
