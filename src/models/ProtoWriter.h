//===- models/ProtoWriter.h - Internal Prototxt emitter ---------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helper shared by the model builders in this directory: an
/// incremental Prototxt emitter. Private to models/ — include only from
/// its .cpp files.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_MODELS_PROTOWRITER_H
#define WOOTZ_MODELS_PROTOWRITER_H

#include <string>
#include <vector>

namespace wootz {
namespace models_detail {

/// Incremental Prototxt emitter shared by the two families.
class ProtoWriter {
public:
  ProtoWriter(const std::string &Name, int Channels, int Height, int Width) {
    Out += "name: \"" + Name + "\"\n";
    Out += "input: \"data\"\n";
    Out += "input_dim: 1\n";
    Out += "input_dim: " + std::to_string(Channels) + "\n";
    Out += "input_dim: " + std::to_string(Height) + "\n";
    Out += "input_dim: " + std::to_string(Width) + "\n";
  }

  void conv(const std::string &Name, const std::string &Bottom,
            const std::string &Module, int NumOutput, int Kernel, int Pad) {
    open(Name, "Convolution", {Bottom}, Module);
    Out += "  convolution_param {\n";
    Out += "    num_output: " + std::to_string(NumOutput) + "\n";
    Out += "    kernel_size: " + std::to_string(Kernel) + "\n";
    Out += "    stride: 1\n";
    Out += "    pad: " + std::to_string(Pad) + "\n";
    Out += "    bias_term: false\n";
    Out += "  }\n}\n";
  }

  void batchNorm(const std::string &Name, const std::string &Bottom,
                 const std::string &Module) {
    open(Name, "BatchNorm", {Bottom}, Module);
    Out += "}\n";
  }

  void relu(const std::string &Name, const std::string &Bottom,
            const std::string &Module) {
    open(Name, "ReLU", {Bottom}, Module);
    Out += "}\n";
  }

  void avePool(const std::string &Name, const std::string &Bottom,
               const std::string &Module, int Kernel, int Stride, int Pad) {
    open(Name, "Pooling", {Bottom}, Module);
    Out += "  pooling_param {\n    pool: AVE\n";
    Out += "    kernel_size: " + std::to_string(Kernel) + "\n";
    Out += "    stride: " + std::to_string(Stride) + "\n";
    Out += "    pad: " + std::to_string(Pad) + "\n  }\n}\n";
  }

  void globalPool(const std::string &Name, const std::string &Bottom) {
    open(Name, "Pooling", {Bottom}, "");
    Out += "  pooling_param {\n    pool: AVE\n    global_pooling: true\n"
           "  }\n}\n";
  }

  void eltwiseSum(const std::string &Name,
                  const std::vector<std::string> &Bottoms,
                  const std::string &Module) {
    open(Name, "Eltwise", Bottoms, Module);
    Out += "  eltwise_param {\n    operation: SUM\n  }\n}\n";
  }

  void concat(const std::string &Name,
              const std::vector<std::string> &Bottoms,
              const std::string &Module) {
    open(Name, "Concat", Bottoms, Module);
    Out += "}\n";
  }

  void dense(const std::string &Name, const std::string &Bottom,
             int NumOutput) {
    open(Name, "InnerProduct", {Bottom}, "");
    Out += "  inner_product_param {\n";
    Out += "    num_output: " + std::to_string(NumOutput) + "\n  }\n}\n";
  }

  /// Emits a conv -> batchnorm -> relu stack; returns the relu name.
  std::string convBnRelu(const std::string &Prefix,
                         const std::string &Bottom,
                         const std::string &Module, int NumOutput,
                         int Kernel, int Pad) {
    conv(Prefix, Bottom, Module, NumOutput, Kernel, Pad);
    batchNorm(Prefix + "_bn", Prefix, Module);
    relu(Prefix + "_relu", Prefix + "_bn", Module);
    return Prefix + "_relu";
  }

  std::string take() { return std::move(Out); }

private:
  void open(const std::string &Name, const std::string &Type,
            const std::vector<std::string> &Bottoms,
            const std::string &Module) {
    Out += "layer {\n";
    Out += "  name: \"" + Name + "\"\n";
    Out += "  type: \"" + Type + "\"\n";
    for (const std::string &Bottom : Bottoms)
      Out += "  bottom: \"" + Bottom + "\"\n";
    Out += "  top: \"" + Name + "\"\n";
    if (!Module.empty())
      Out += "  module: \"" + Module + "\"\n";
  }

  std::string Out;
};

} // namespace models_detail
} // namespace wootz

#endif // WOOTZ_MODELS_PROTOWRITER_H
