//===- models/RandomModels.cpp -----------------------------------------------===//

#include "src/models/RandomModels.h"

#include "src/models/ProtoWriter.h"

using namespace wootz;
using wootz::models_detail::ProtoWriter;

/// Emits one residual bottleneck module; returns the output layer name.
static std::string emitResidualModule(ProtoWriter &Writer,
                                      const std::string &Module,
                                      const std::string &Input, int Width,
                                      Rng &Generator) {
  const std::string P = Module + "_";
  const int Bottleneck =
      static_cast<int>(Generator.nextInRange(3, std::max(3, Width - 2)));
  // Randomize the middle kernel (1x1 or 3x3) and an optional extra stage.
  const int MidKernel = Generator.nextBernoulli(0.7) ? 3 : 1;
  std::string Branch =
      Writer.convBnRelu(P + "conv1", Input, Module, Bottleneck, 1, 0);
  Branch = Writer.convBnRelu(P + "conv2", Branch, Module, Bottleneck,
                             MidKernel, MidKernel / 2);
  if (Generator.nextBernoulli(0.35))
    Branch = Writer.convBnRelu(P + "conv2b", Branch, Module, Bottleneck, 3,
                               1);
  Writer.conv(P + "conv3", Branch, Module, Width, 1, 0);
  Writer.batchNorm(P + "conv3_bn", P + "conv3", Module);
  Writer.eltwiseSum(P + "add", {Input, P + "conv3_bn"}, Module);
  Writer.relu(P + "out", P + "add", Module);
  return P + "out";
}

/// Emits one three-branch concat module; returns the output layer name.
static std::string emitConcatModule(ProtoWriter &Writer,
                                    const std::string &Module,
                                    const std::string &Input, int Width,
                                    Rng &Generator) {
  const std::string P = Module + "_";
  const int BranchOut = Width / 3;
  const int Reduce =
      static_cast<int>(Generator.nextInRange(3, std::max(3, Width / 2)));
  std::string B1 =
      Writer.convBnRelu(P + "b1_reduce", Input, Module, Reduce, 1, 0);
  B1 = Writer.convBnRelu(P + "b1_conv", B1, Module, Reduce, 3, 1);
  B1 = Writer.convBnRelu(P + "b1_proj", B1, Module, BranchOut, 1, 0);
  std::string B2 =
      Writer.convBnRelu(P + "b2_reduce", Input, Module, Reduce, 1, 0);
  if (Generator.nextBernoulli(0.5))
    B2 = Writer.convBnRelu(P + "b2_mid", B2, Module, Reduce, 3, 1);
  B2 = Writer.convBnRelu(P + "b2_proj", B2, Module, BranchOut, 1, 0);
  // Spatial-preserving pooled branch (3x3 / stride 1 / pad 1) so the
  // concat inputs agree on extents.
  Writer.avePool(P + "b3_pool", Input, Module, 3, 1, 1);
  const std::string B3 = Writer.convBnRelu(
      P + "b3_proj", P + "b3_pool", Module, Width - 2 * BranchOut, 1, 0);
  Writer.concat(P + "out", {B1, B2, B3}, Module);
  return P + "out";
}

std::string wootz::randomModelPrototxt(const std::string &Name,
                                       Rng &Generator,
                                       const RandomModelOptions &Options) {
  assert(Options.MinModules >= 1 &&
         Options.MaxModules >= Options.MinModules &&
         Options.MinWidth >= 6 && Options.MaxWidth >= Options.MinWidth &&
         "invalid random-model bounds");
  const int ModuleCount = static_cast<int>(
      Generator.nextInRange(Options.MinModules, Options.MaxModules));
  int Width = static_cast<int>(
      Generator.nextInRange(Options.MinWidth, Options.MaxWidth));
  Width -= Width % 3; // Concat modules split the width into 3 branches.
  const int Classes = static_cast<int>(
      Generator.nextInRange(Options.MinClasses, Options.MaxClasses));

  ProtoWriter Writer(Name, 3, Options.ImageSize, Options.ImageSize);
  std::string Previous = Writer.convBnRelu(
      "stem", "data", "", Width, Generator.nextBernoulli(0.5) ? 3 : 1,
      Generator.nextBernoulli(0.5) ? 1 : 0);
  for (int M = 1; M <= ModuleCount; ++M) {
    const std::string Module = "m" + std::to_string(M);
    Previous = Generator.nextBernoulli(0.5)
                   ? emitResidualModule(Writer, Module, Previous, Width,
                                        Generator)
                   : emitConcatModule(Writer, Module, Previous, Width,
                                      Generator);
  }
  Writer.globalPool("pool", Previous);
  Writer.dense("logits", "pool", Classes);
  return Writer.take();
}

Result<ModelSpec> wootz::makeRandomModel(const std::string &Name,
                                         Rng &Generator,
                                         const RandomModelOptions &Options) {
  return parseModelSpec(randomModelPrototxt(Name, Generator, Options));
}
