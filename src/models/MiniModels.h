//===- models/MiniModels.h - Miniature ResNet/Inception models -------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the four standard models of the evaluation — miniature
/// analogues of ResNet-50/101 and Inception-V2/V3 (DESIGN.md §2). Both
/// families follow the paper's structural trend: "several layers are
/// encapsulated into a generic module of a fixed structure — which we
/// call convolution module — and a network is built by stacking many such
/// modules together". The builders emit Prototxt (with the `module`
/// extension) so the Wootz compiler consumes the same input format as in
/// the paper; parse the text with parseModelSpec().
///
/// Residual module (bottleneck, identity shortcut):
///   in -> conv1 1x1 (prunable) -> conv2 3x3 (prunable) -> conv3 1x1 -> (+in)
/// Inception module (three branches joined by channel concat):
///   b1: 1x1 reduce (prunable) -> 3x3
///   b2: 1x1 reduce (prunable) -> 3x3 (prunable) -> 3x3
///   b3: 3x3 average pool -> 1x1 projection
/// Module outputs keep the full channel width, so pruned modules remain
/// dimension-compatible — the property tuning-block composability relies
/// on.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_MODELS_MINIMODELS_H
#define WOOTZ_MODELS_MINIMODELS_H

#include "src/proto/ModelSpec.h"

#include <string>
#include <vector>

namespace wootz {

/// The four standard evaluation models.
enum class StandardModel {
  ResNetA,    ///< ResNet-50 analogue (4 residual modules).
  ResNetB,    ///< ResNet-101 analogue (6 residual modules).
  InceptionA, ///< Inception-V2 analogue (3 inception modules).
  InceptionB, ///< Inception-V3 analogue (4 inception modules).
};

/// All four standard models in the paper's order.
std::vector<StandardModel> standardModels();

/// Human-readable name ("mini-resnet-a", ...).
const char *standardModelName(StandardModel Model);

/// Emits Prototxt for a residual network with \p ModuleCount bottleneck
/// modules, stem width \p StemChannels, bottleneck width \p Bottleneck
/// and \p Classes output classes.
std::string miniResNetPrototxt(const std::string &Name, int ModuleCount,
                               int StemChannels, int Bottleneck,
                               int Classes);

/// Emits Prototxt for an inception-style network with \p ModuleCount
/// modules of three branches each; the module width is \p StemChannels
/// (must be divisible by 3) and reduce layers use \p ReduceChannels.
std::string miniInceptionPrototxt(const std::string &Name, int ModuleCount,
                                  int StemChannels, int ReduceChannels,
                                  int Classes);

/// Emits Prototxt for \p Model with \p Classes output classes.
std::string standardModelPrototxt(StandardModel Model, int Classes);

/// Builds and analyzes the ModelSpec of \p Model (parses the Prototxt).
Result<ModelSpec> makeStandardModel(StandardModel Model, int Classes);

} // namespace wootz

#endif // WOOTZ_MODELS_MINIMODELS_H
