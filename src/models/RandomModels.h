//===- models/RandomModels.h - Random module-structured models --------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generator of random module-structured CNNs for property-based
/// testing. Every generated model follows the structural contract the
/// Wootz machinery relies on — contiguous convolution modules with a
/// single input boundary, a single output boundary, and full-width module
/// outputs — while randomizing everything else: module family (residual
/// bottleneck or multi-branch concat), depth, widths, kernel sizes, and
/// the stem/head shape. The generator emits Prototxt, so it doubles as a
/// fuzzer for the parser and the structural analyses.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_MODELS_RANDOMMODELS_H
#define WOOTZ_MODELS_RANDOMMODELS_H

#include "src/proto/ModelSpec.h"
#include "src/support/Rng.h"

namespace wootz {

/// Bounds for the random generator.
struct RandomModelOptions {
  int MinModules = 2;
  int MaxModules = 5;
  int MinWidth = 6;   ///< Module (stem) width; rounded to a multiple of 3.
  int MaxWidth = 15;
  int MinClasses = 2;
  int MaxClasses = 8;
  int ImageSize = 8;
};

/// Emits the Prototxt of a random model named \p Name.
std::string randomModelPrototxt(const std::string &Name, Rng &Generator,
                                const RandomModelOptions &Options = {});

/// Generates and parses a random model (asserts the generator only
/// produces parseable models — the property under test).
Result<ModelSpec> makeRandomModel(const std::string &Name, Rng &Generator,
                                  const RandomModelOptions &Options = {});

} // namespace wootz

#endif // WOOTZ_MODELS_RANDOMMODELS_H
