//===- models/MiniModels.cpp -----------------------------------------------===//

#include "src/models/MiniModels.h"

#include "src/models/ProtoWriter.h"

using namespace wootz;

std::vector<StandardModel> wootz::standardModels() {
  return {StandardModel::ResNetA, StandardModel::ResNetB,
          StandardModel::InceptionA, StandardModel::InceptionB};
}

const char *wootz::standardModelName(StandardModel Model) {
  switch (Model) {
  case StandardModel::ResNetA:
    return "mini-resnet-a";
  case StandardModel::ResNetB:
    return "mini-resnet-b";
  case StandardModel::InceptionA:
    return "mini-inception-a";
  case StandardModel::InceptionB:
    return "mini-inception-b";
  }
  return "unknown";
}

using wootz::models_detail::ProtoWriter;

std::string wootz::miniResNetPrototxt(const std::string &Name,
                                      int ModuleCount, int StemChannels,
                                      int Bottleneck, int Classes) {
  ProtoWriter Writer(Name, 3, 8, 8);
  std::string Previous =
      Writer.convBnRelu("stem", "data", "", StemChannels, 3, 1);
  for (int M = 1; M <= ModuleCount; ++M) {
    const std::string Module = "m" + std::to_string(M);
    const std::string P = Module + "_";
    // Bottleneck: 1x1 reduce, 3x3, 1x1 expand, identity shortcut.
    std::string Branch =
        Writer.convBnRelu(P + "conv1", Previous, Module, Bottleneck, 1, 0);
    Branch =
        Writer.convBnRelu(P + "conv2", Branch, Module, Bottleneck, 3, 1);
    Writer.conv(P + "conv3", Branch, Module, StemChannels, 1, 0);
    Writer.batchNorm(P + "conv3_bn", P + "conv3", Module);
    Writer.eltwiseSum(P + "add", {Previous, P + "conv3_bn"}, Module);
    Writer.relu(P + "out", P + "add", Module);
    Previous = P + "out";
  }
  Writer.globalPool("pool", Previous);
  Writer.dense("logits", "pool", Classes);
  return Writer.take();
}

std::string wootz::miniInceptionPrototxt(const std::string &Name,
                                         int ModuleCount, int StemChannels,
                                         int ReduceChannels, int Classes) {
  assert(StemChannels % 3 == 0 &&
         "inception module width must split into three branches");
  const int BranchOut = StemChannels / 3;
  ProtoWriter Writer(Name, 3, 8, 8);
  std::string Previous =
      Writer.convBnRelu("stem", "data", "", StemChannels, 3, 1);
  for (int M = 1; M <= ModuleCount; ++M) {
    const std::string Module = "m" + std::to_string(M);
    const std::string P = Module + "_";
    // Branches carry their capacity in prunable 1x1/3x3 stacks and end
    // in a thin 1x1 projection that pins the concat width (the module's
    // unpruned top layers, mirroring Inception's projection-heavy
    // design).
    // Branch 1: 1x1 reduce -> 3x3 -> 1x1 projection.
    std::string B1 = Writer.convBnRelu(P + "b1_reduce", Previous, Module,
                                       ReduceChannels, 1, 0);
    B1 = Writer.convBnRelu(P + "b1_conv", B1, Module, ReduceChannels, 3, 1);
    B1 = Writer.convBnRelu(P + "b1_proj", B1, Module, BranchOut, 1, 0);
    // Branch 2: 1x1 reduce -> 3x3 -> 3x3 -> 1x1 projection.
    std::string B2 = Writer.convBnRelu(P + "b2_reduce", Previous, Module,
                                       ReduceChannels, 1, 0);
    B2 = Writer.convBnRelu(P + "b2_mid", B2, Module, ReduceChannels, 3, 1);
    B2 = Writer.convBnRelu(P + "b2_conv", B2, Module, ReduceChannels, 3, 1);
    B2 = Writer.convBnRelu(P + "b2_proj", B2, Module, BranchOut, 1, 0);
    // Branch 3: average pool -> 1x1 projection.
    Writer.avePool(P + "b3_pool", Previous, Module, 3, 1, 1);
    const std::string B3 = Writer.convBnRelu(P + "b3_proj", P + "b3_pool",
                                             Module, BranchOut, 1, 0);
    Writer.concat(P + "out", {B1, B2, B3}, Module);
    Previous = P + "out";
  }
  Writer.globalPool("pool", Previous);
  Writer.dense("logits", "pool", Classes);
  return Writer.take();
}

std::string wootz::standardModelPrototxt(StandardModel Model, int Classes) {
  switch (Model) {
  case StandardModel::ResNetA:
    return miniResNetPrototxt("mini-resnet-a", 4, 12, 8, Classes);
  case StandardModel::ResNetB:
    return miniResNetPrototxt("mini-resnet-b", 6, 12, 8, Classes);
  case StandardModel::InceptionA:
    return miniInceptionPrototxt("mini-inception-a", 3, 12, 6, Classes);
  case StandardModel::InceptionB:
    return miniInceptionPrototxt("mini-inception-b", 4, 12, 6, Classes);
  }
  reportFatalError("unknown standard model");
}

Result<ModelSpec> wootz::makeStandardModel(StandardModel Model,
                                           int Classes) {
  return parseModelSpec(standardModelPrototxt(Model, Classes));
}
