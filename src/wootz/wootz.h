//===- wootz/wootz.h - Public facade ------------------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header for the Wootz library. Downstream users normally need
/// only this include; see README.md for a quickstart and examples/ for
/// runnable programs.
///
/// The typical flow mirrors the paper's Figure 2:
///   1. parseModelSpec() a Prototxt model (or build one via models/).
///   2. parseSubspaceSpec() / sampleSubspace() the promising subspace.
///   3. parseTrainMeta() the solver-style meta data and parseObjective()
///      the pruning objective.
///   4. runPruningPipeline() with UseComposability on or off, then
///      summarizeExploration() to pick the best network.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_WOOTZ_H
#define WOOTZ_WOOTZ_H

#include "src/compiler/Codegen.h"
#include "src/compiler/GraphBuilder.h"
#include "src/compiler/Multiplexing.h"
#include "src/compiler/NetsFactory.h"
#include "src/compiler/Solver.h"
#include "src/data/Synthetic.h"
#include "src/explore/Iterative.h"
#include "src/explore/Pipeline.h"
#include "src/explore/Report.h"
#include "src/explore/strategy/Driver.h"
#include "src/explore/strategy/Strategy.h"
#include "src/identifier/Identifier.h"
#include "src/identifier/Optimal.h"
#include "src/models/MiniModels.h"
#include "src/plan/Plan.h"
#include "src/pruning/Importance.h"
#include "src/pruning/PruneConfig.h"
#include "src/pruning/Transfer.h"
#include "src/runtime/RunLog.h"
#include "src/runtime/TaskGraph.h"
#include "src/sequitur/Sequitur.h"
#include "src/serve/Server.h"
#include "src/support/StringUtils.h"
#include "src/support/Table.h"
#include "src/tensor/Kernels.h"
#include "src/train/BlockCache.h"
#include "src/train/Trainer.h"

#endif // WOOTZ_WOOTZ_H
