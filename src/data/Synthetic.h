//===- data/Synthetic.h - Procedural dataset generation --------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Procedurally generated image-classification datasets substituting the
/// paper's fine-grained recognition datasets (see DESIGN.md §2). Each
/// class is a distinct oriented-sinusoid texture with a class-specific
/// color balance; a per-dataset noise level controls difficulty, mirroring
/// how the four real datasets differ in hardness (Flowers102 easiest,
/// CUB200 hardest in the paper's Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_DATA_SYNTHETIC_H
#define WOOTZ_DATA_SYNTHETIC_H

#include "src/data/Dataset.h"

namespace wootz {

/// Parameters of one synthetic dataset.
struct SyntheticSpec {
  std::string Name = "synthetic";
  int Classes = 6;
  int TrainPerClass = 60;
  int TestPerClass = 30;
  int Height = 8;
  int Width = 8;
  /// Standard deviation of the additive Gaussian pixel noise; the main
  /// difficulty knob.
  float Noise = 0.35f;
  /// Scales the texture amplitude relative to the noise.
  float PatternAmplitude = 1.0f;
  uint64_t Seed = 1;
};

/// Generates a dataset from \p Spec. Deterministic in the seed.
Dataset generateSynthetic(const SyntheticSpec &Spec);

/// The four standard dataset analogues used throughout the evaluation,
/// ordered as in the paper: Flowers102, CUB200, Cars, Dogs. \p Scale
/// multiplies the per-class example counts (1.0 = the default sizes).
std::vector<SyntheticSpec> standardDatasetSpecs(double Scale = 1.0);

/// Renders "name: total/train/test/classes" rows (Table 1 left half).
std::string describeDataset(const Dataset &Data);

} // namespace wootz

#endif // WOOTZ_DATA_SYNTHETIC_H
