//===- data/Synthetic.cpp --------------------------------------------------===//

#include "src/data/Synthetic.h"

#include <cmath>

using namespace wootz;

namespace {
/// The generative parameters of one class's texture.
struct ClassPattern {
  float FreqH;
  float FreqW;
  float Phase;
  float ColorBalance[3];
};
} // namespace

static ClassPattern makeClassPattern(Rng &Generator, int ClassIndex,
                                     int ClassCount) {
  ClassPattern Pattern;
  // Spread orientations/frequencies evenly with a random perturbation so
  // that classes are separable but not trivially so.
  const float BaseAngle =
      6.2831853f * static_cast<float>(ClassIndex) / ClassCount;
  const float Frequency = 1.0f + 0.5f * Generator.nextFloat() +
                          0.35f * static_cast<float>(ClassIndex % 3);
  Pattern.FreqH = Frequency * std::sin(BaseAngle);
  Pattern.FreqW = Frequency * std::cos(BaseAngle);
  Pattern.Phase = 6.2831853f * Generator.nextFloat();
  for (float &Channel : Pattern.ColorBalance)
    Channel = 0.6f * (Generator.nextFloat() - 0.5f);
  return Pattern;
}

static void fillSplit(Split &Out, const SyntheticSpec &Spec,
                      const std::vector<ClassPattern> &Patterns,
                      int PerClass, Rng &Generator) {
  const int Total = PerClass * Spec.Classes;
  Out.Images = Tensor(Shape{Total, 3, Spec.Height, Spec.Width});
  Out.Labels.resize(Total);
  int Example = 0;
  for (int Class = 0; Class < Spec.Classes; ++Class) {
    const ClassPattern &Pattern = Patterns[Class];
    for (int Sample = 0; Sample < PerClass; ++Sample, ++Example) {
      Out.Labels[Example] = Class;
      // Random spatial shift makes each example unique even at zero noise.
      const float ShiftH =
          static_cast<float>(Generator.nextBelow(Spec.Height));
      const float ShiftW =
          static_cast<float>(Generator.nextBelow(Spec.Width));
      for (int C = 0; C < 3; ++C) {
        for (int H = 0; H < Spec.Height; ++H) {
          for (int W = 0; W < Spec.Width; ++W) {
            const float Angle =
                Pattern.FreqH * (H + ShiftH) + Pattern.FreqW * (W + ShiftW) +
                Pattern.Phase + 0.9f * C;
            float Value = Spec.PatternAmplitude *
                              (std::sin(Angle) * 0.5f +
                               Pattern.ColorBalance[C]) +
                          Spec.Noise * Generator.nextGaussian();
            Out.Images.at(Example, C, H, W) = Value;
          }
        }
      }
    }
  }
}

Dataset wootz::generateSynthetic(const SyntheticSpec &Spec) {
  assert(Spec.Classes > 1 && Spec.TrainPerClass > 0 &&
         Spec.TestPerClass > 0 && "invalid synthetic dataset spec");
  Rng Generator(Spec.Seed);
  std::vector<ClassPattern> Patterns;
  Patterns.reserve(Spec.Classes);
  for (int Class = 0; Class < Spec.Classes; ++Class)
    Patterns.push_back(makeClassPattern(Generator, Class, Spec.Classes));

  Dataset Data;
  Data.Name = Spec.Name;
  Data.Classes = Spec.Classes;
  fillSplit(Data.Train, Spec, Patterns, Spec.TrainPerClass, Generator);
  fillSplit(Data.Test, Spec, Patterns, Spec.TestPerClass, Generator);
  return Data;
}

std::vector<SyntheticSpec> wootz::standardDatasetSpecs(double Scale) {
  auto scaled = [Scale](int Count) {
    const int Value = static_cast<int>(Count * Scale);
    return Value < 4 ? 4 : Value;
  };
  // Difficulty ordering mirrors the paper's Table 1: Flowers102 is the
  // easiest (accuracies ~0.97), CUB200 the hardest (~0.76).
  SyntheticSpec Flowers;
  Flowers.Name = "flowers102";
  Flowers.Classes = 10;
  Flowers.Noise = 0.55f;
  Flowers.TrainPerClass = scaled(38);
  Flowers.TestPerClass = scaled(16);
  Flowers.Seed = 101;

  SyntheticSpec Birds;
  Birds.Name = "cub200";
  Birds.Classes = 14;
  Birds.Noise = 0.85f;
  Birds.TrainPerClass = scaled(30);
  Birds.TestPerClass = scaled(16);
  Birds.Seed = 202;

  SyntheticSpec Cars;
  Cars.Name = "cars";
  Cars.Classes = 12;
  Cars.Noise = 0.75f;
  Cars.TrainPerClass = scaled(32);
  Cars.TestPerClass = scaled(16);
  Cars.Seed = 303;

  SyntheticSpec Dogs;
  Dogs.Name = "dogs";
  Dogs.Classes = 10;
  Dogs.Noise = 0.70f;
  Dogs.TrainPerClass = scaled(36);
  Dogs.TestPerClass = scaled(16);
  Dogs.Seed = 404;

  return {Flowers, Birds, Cars, Dogs};
}

std::string wootz::describeDataset(const Dataset &Data) {
  const int TrainCount = Data.Train.exampleCount();
  const int TestCount = Data.Test.exampleCount();
  return Data.Name + ": total=" + std::to_string(TrainCount + TestCount) +
         " train=" + std::to_string(TrainCount) +
         " test=" + std::to_string(TestCount) +
         " classes=" + std::to_string(Data.Classes);
}
