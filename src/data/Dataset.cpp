//===- data/Dataset.cpp ----------------------------------------------------===//

#include "src/data/Dataset.h"

#include <cassert>
#include <cstring>
#include <numeric>

using namespace wootz;

Batch Split::gather(const std::vector<int> &Indices) const {
  assert(!Images.empty() && "gather from an empty split");
  const Shape &Full = Images.shape();
  const size_t Sample =
      static_cast<size_t>(Full[1]) * Full[2] * Full[3];
  Batch Out;
  Out.Images = Tensor(
      Shape{static_cast<int>(Indices.size()), Full[1], Full[2], Full[3]});
  Out.Labels.reserve(Indices.size());
  for (size_t I = 0; I < Indices.size(); ++I) {
    const int Index = Indices[I];
    assert(Index >= 0 && Index < exampleCount() && "gather index range");
    std::memcpy(Out.Images.data() + I * Sample,
                Images.data() + static_cast<size_t>(Index) * Sample,
                sizeof(float) * Sample);
    Out.Labels.push_back(Labels[Index]);
  }
  return Out;
}

BatchSampler::BatchSampler(const Split &Source, int BatchSize, Rng Generator)
    : Source(Source), BatchSize(BatchSize), Generator(Generator) {
  assert(BatchSize > 0 && "batch size must be positive");
  assert(Source.exampleCount() > 0 && "cannot sample an empty split");
  reshuffle();
}

void BatchSampler::reshuffle() {
  Order.resize(Source.exampleCount());
  std::iota(Order.begin(), Order.end(), 0);
  Generator.shuffle(Order);
  Cursor = 0;
}

Batch BatchSampler::next() {
  std::vector<int> Indices;
  Indices.reserve(BatchSize);
  while (static_cast<int>(Indices.size()) < BatchSize) {
    if (Cursor == Order.size())
      reshuffle();
    Indices.push_back(Order[Cursor++]);
  }
  return Source.gather(Indices);
}
