//===- data/Dataset.h - In-memory classification dataset -------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory image-classification dataset with train/test splits and a
/// deterministic mini-batch sampler. Stands in for the fine-grained
/// recognition datasets (Flowers102, CUB200, Cars, Dogs) of the paper's
/// Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_DATA_DATASET_H
#define WOOTZ_DATA_DATASET_H

#include "src/support/Rng.h"
#include "src/tensor/Tensor.h"

#include <string>
#include <vector>

namespace wootz {

/// One labeled mini-batch.
struct Batch {
  Tensor Images; ///< NCHW.
  std::vector<int> Labels;
};

/// A dataset split: images plus labels.
struct Split {
  Tensor Images; ///< NCHW over the whole split.
  std::vector<int> Labels;

  /// Number of examples in the split.
  int exampleCount() const {
    return Images.empty() ? 0 : Images.shape()[0];
  }

  /// Copies the examples at \p Indices into a batch.
  Batch gather(const std::vector<int> &Indices) const;
};

/// A named dataset with train and test splits.
struct Dataset {
  std::string Name;
  int Classes = 0;
  Split Train;
  Split Test;
};

/// Draws shuffled mini-batches, reshuffling at each epoch boundary.
class BatchSampler {
public:
  /// Samples from \p Source (kept by reference) with the given batch size.
  BatchSampler(const Split &Source, int BatchSize, Rng Generator);

  /// Returns the next mini-batch (always exactly BatchSize examples;
  /// the tail of an epoch wraps into the next one).
  Batch next();

private:
  void reshuffle();

  const Split &Source;
  int BatchSize;
  Rng Generator;
  std::vector<int> Order;
  size_t Cursor = 0;
};

} // namespace wootz

#endif // WOOTZ_DATA_DATASET_H
