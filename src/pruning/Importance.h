//===- pruning/Importance.h - Filter importance criteria --------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pluggable filter-importance criteria. The paper follows Li et al.'s
/// l1-norm ranking ("The importance of a filter is determined by its l1
/// norm", §7.1) but surveys the alternatives in its related work; since
/// the criterion is orthogonal to composability, Wootz can use any of
/// them. Implemented here:
///
///  * L1Norm / L2Norm — weight-magnitude criteria (Li et al.);
///  * Taylor — |activation x gradient| averaged over calibration batches
///    (Molchanov et al. 2017), a first-order estimate of the loss change
///    from removing the filter;
///  * TaylorExpansion — the weight-gradient variant (Molchanov et al.
///    2019): per filter, the squared first-order expansion
///    (sum_j w_j * g_j)^2 accumulated over calibration batches. Needs no
///    activation maps, only the weight gradients of a backward pass;
///  * Apoz — Average Percentage of Zeros of the filter's post-ReLU
///    activations (Hu et al.); filters that are mostly inactive go first.
///
/// Data-driven criteria (Taylor, TaylorExpansion, Apoz) run a few
/// calibration batches through the trained full model.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_PRUNING_IMPORTANCE_H
#define WOOTZ_PRUNING_IMPORTANCE_H

#include "src/data/Dataset.h"
#include "src/pruning/Transfer.h"

namespace wootz {

/// The supported filter-importance criteria.
enum class ImportanceCriterion {
  L1Norm,
  L2Norm,
  Taylor,
  TaylorExpansion,
  Apoz,
};

/// Name for specs and diagnostics ("l1", "l2", "taylor",
/// "taylor_expansion", "apoz").
const char *importanceCriterionName(ImportanceCriterion Criterion);

/// Parses a criterion name. Unknown names fail with an error that lists
/// every valid name (the serve API surfaces it verbatim as a 400).
Result<ImportanceCriterion>
parseImportanceCriterion(const std::string &Name);

/// Per-convolution filter scores (higher = more important), indexed by
/// layer name then filter.
using FilterScores = std::map<std::string, std::vector<double>>;

/// Scores every convolution's filters in \p FullGraph (nodes
/// "<FullPrefix>/<layer>") under \p Criterion. \p Calibration supplies
/// data for the data-driven criteria (required for Taylor/Apoz;
/// ignored by L1/L2); \p CalibrationBatches and \p BatchSize bound its
/// cost.
Result<FilterScores> scoreFilters(const ModelSpec &Spec, Graph &FullGraph,
                                  const std::string &FullPrefix,
                                  ImportanceCriterion Criterion,
                                  const Dataset *Calibration = nullptr,
                                  int CalibrationBatches = 4,
                                  int BatchSize = 16);

/// Turns scores into kept-filter selections for \p Config (keeps the
/// highest-scoring keptFilters() per pruned convolution, indices
/// ascending).
FilterSelections selectionsFromScores(const ModelSpec &Spec,
                                      const PruneConfig &Config,
                                      const FilterScores &Scores);

/// One-call convenience: score with \p Criterion and select for
/// \p Config.
Result<FilterSelections>
selectFiltersByImportance(const ModelSpec &Spec, const PruneConfig &Config,
                          Graph &FullGraph, const std::string &FullPrefix,
                          ImportanceCriterion Criterion,
                          const Dataset *Calibration = nullptr);

} // namespace wootz

#endif // WOOTZ_PRUNING_IMPORTANCE_H
