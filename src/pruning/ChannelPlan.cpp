//===- pruning/ChannelPlan.cpp -----------------------------------------------===//

#include "src/pruning/ChannelPlan.h"

using namespace wootz;

PruneConfig wootz::unprunedConfig(const ModelSpec &Spec) {
  return PruneConfig(Spec.moduleCount(), 0.0f);
}

Result<ChannelPlan> wootz::planChannels(const ModelSpec &Spec,
                                        const PruneConfig &Config) {
  if (static_cast<int>(Config.size()) != Spec.moduleCount())
    return Error::failure(
        "configuration has " + std::to_string(Config.size()) +
        " rates but model '" + Spec.Name + "' has " +
        std::to_string(Spec.moduleCount()) + " modules");

  ChannelPlan Plan;
  Plan.Extents.resize(Spec.Layers.size());
  Plan.OutChannels.resize(Spec.Layers.size());

  auto extentsOfBottom =
      [&](const std::string &Bottom) -> LayerExtents {
    if (Bottom == Spec.InputName)
      return {Spec.InputChannels, Spec.InputHeight, Spec.InputWidth};
    const int Index = Spec.layerIndex(Bottom);
    assert(Index >= 0 && "analyze() guarantees bottoms exist");
    return Plan.Extents[Index];
  };

  for (size_t I = 0; I < Spec.Layers.size(); ++I) {
    const LayerSpec &L = Spec.Layers[I];
    const LayerExtents In = extentsOfBottom(L.Bottoms[0]);
    LayerExtents Out = In;
    switch (L.Kind) {
    case LayerKind::Convolution: {
      int Channels = L.NumOutput;
      if (Spec.Prunable[I]) {
        const float Rate = Config[Spec.LayerModule[I]];
        Channels = keptFilters(L.NumOutput, Rate);
      }
      Out.Channels = Channels;
      Out.Height = (In.Height + 2 * L.Pad - L.KernelSize) / L.Stride + 1;
      Out.Width = (In.Width + 2 * L.Pad - L.KernelSize) / L.Stride + 1;
      if (Out.Height <= 0 || Out.Width <= 0)
        return Error::failure("layer '" + L.Name +
                              "' shrinks the input to nothing");
      break;
    }
    case LayerKind::BatchNorm:
    case LayerKind::ReLU:
      break;
    case LayerKind::Pooling:
      if (L.GlobalPooling) {
        Out.Height = 1;
        Out.Width = 1;
      } else {
        Out.Height = (In.Height + 2 * L.Pad - L.KernelSize) / L.Stride + 1;
        Out.Width = (In.Width + 2 * L.Pad - L.KernelSize) / L.Stride + 1;
        if (Out.Height <= 0 || Out.Width <= 0)
          return Error::failure("layer '" + L.Name +
                                "' pools the input to nothing");
      }
      break;
    case LayerKind::InnerProduct:
      Out.Channels = L.NumOutput;
      Out.Height = 1;
      Out.Width = 1;
      break;
    case LayerKind::Concat: {
      int Channels = 0;
      for (const std::string &Bottom : L.Bottoms) {
        const LayerExtents BottomExtents = extentsOfBottom(Bottom);
        if (BottomExtents.Height != In.Height ||
            BottomExtents.Width != In.Width)
          return Error::failure("concat '" + L.Name +
                                "' inputs disagree on spatial extents");
        Channels += BottomExtents.Channels;
      }
      Out.Channels = Channels;
      break;
    }
    case LayerKind::Eltwise:
      for (const std::string &Bottom : L.Bottoms) {
        const LayerExtents BottomExtents = extentsOfBottom(Bottom);
        if (BottomExtents.Channels != In.Channels ||
            BottomExtents.Height != In.Height ||
            BottomExtents.Width != In.Width)
          return Error::failure("eltwise '" + L.Name +
                                "' inputs disagree on extents");
      }
      break;
    }
    Plan.Extents[I] = Out;
    Plan.OutChannels[I] = Out.Channels;
  }
  return Plan;
}

size_t wootz::modelWeightCount(const ModelSpec &Spec,
                               const ChannelPlan &Plan) {
  size_t Count = 0;
  auto channelsOfBottom = [&](const std::string &Bottom) {
    if (Bottom == Spec.InputName)
      return Spec.InputChannels;
    return Plan.OutChannels[Spec.layerIndex(Bottom)];
  };
  auto extentsOfBottom = [&](const std::string &Bottom) -> LayerExtents {
    if (Bottom == Spec.InputName)
      return {Spec.InputChannels, Spec.InputHeight, Spec.InputWidth};
    return Plan.Extents[Spec.layerIndex(Bottom)];
  };
  for (size_t I = 0; I < Spec.Layers.size(); ++I) {
    const LayerSpec &L = Spec.Layers[I];
    switch (L.Kind) {
    case LayerKind::Convolution: {
      const int In = channelsOfBottom(L.Bottoms[0]);
      const int Out = Plan.OutChannels[I];
      Count += static_cast<size_t>(Out) * In * L.KernelSize * L.KernelSize;
      if (L.BiasTerm)
        Count += static_cast<size_t>(Out);
      break;
    }
    case LayerKind::BatchNorm:
      Count += 2 * static_cast<size_t>(Plan.OutChannels[I]);
      break;
    case LayerKind::InnerProduct: {
      const LayerExtents In = extentsOfBottom(L.Bottoms[0]);
      Count += static_cast<size_t>(L.NumOutput) * In.Channels * In.Height *
               In.Width;
      Count += static_cast<size_t>(L.NumOutput); // Bias.
      break;
    }
    case LayerKind::ReLU:
    case LayerKind::Pooling:
    case LayerKind::Concat:
    case LayerKind::Eltwise:
      break;
    }
  }
  return Count;
}

size_t wootz::modelWeightCount(const ModelSpec &Spec,
                               const PruneConfig &Config) {
  Result<ChannelPlan> Plan = planChannels(Spec, Config);
  assert(Plan && "modelWeightCount on an invalid configuration");
  return modelWeightCount(Spec, *Plan);
}
