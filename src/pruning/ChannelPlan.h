//===- pruning/ChannelPlan.h - Shape/channel inference ----------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static shape inference over a ModelSpec under a pruning configuration.
/// The plan records, per layer, the output channel count and spatial
/// extents once the per-module pruning rates are applied to the prunable
/// convolutions. It is the shared backbone of model-size accounting, of
/// the multiplexing model builder in compiler/, and of weight transfer.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_PRUNING_CHANNELPLAN_H
#define WOOTZ_PRUNING_CHANNELPLAN_H

#include "src/proto/ModelSpec.h"
#include "src/pruning/PruneConfig.h"

namespace wootz {

/// Per-layer output extents under a pruning configuration.
struct LayerExtents {
  int Channels = 0;
  int Height = 0;
  int Width = 0;
};

/// The result of channel/shape planning.
struct ChannelPlan {
  /// Indexed like ModelSpec::Layers.
  std::vector<LayerExtents> Extents;
  /// Per layer: output channels actually built (kept filters for pruned
  /// convolutions, NumOutput otherwise; pass-through layers inherit).
  std::vector<int> OutChannels;

  const LayerExtents &extentsOf(int LayerIndex) const {
    return Extents[LayerIndex];
  }
};

/// Computes the plan for \p Spec pruned per \p Config. \p Config must
/// have one rate per module of \p Spec; pass an all-zero config (or use
/// unprunedConfig()) for the full model.
Result<ChannelPlan> planChannels(const ModelSpec &Spec,
                                 const PruneConfig &Config);

/// An all-zero configuration for \p Spec.
PruneConfig unprunedConfig(const ModelSpec &Spec);

/// Counts the trainable weights of the planned network: convolution and
/// inner-product weights plus biases plus batchnorm scale/shift. This is
/// the paper's "model size" metric.
size_t modelWeightCount(const ModelSpec &Spec, const ChannelPlan &Plan);

/// Convenience: weight count of \p Spec under \p Config.
size_t modelWeightCount(const ModelSpec &Spec, const PruneConfig &Config);

} // namespace wootz

#endif // WOOTZ_PRUNING_CHANNELPLAN_H
