//===- pruning/Transfer.h - Filter selection and weight inheritance ---------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Filter-importance ranking and weight inheritance. The paper follows
/// Li et al.'s l1-norm criterion: "The importance of a filter is
/// determined by its l1 norm" (§7.1), and the baseline creates a pruned
/// model that "inherits the remaining parameters of the affected layers
/// and the unaffected layers in the full model" (§7.1). These utilities
/// implement both:
///
///  * selectFiltersByL1() ranks the trained full model's filters per
///    prunable convolution and picks the kept subset for a configuration;
///  * transferWeights() copies (slicing where pruned) every layer's state
///    from a source graph into a target graph built for the pruned
///    configuration.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_PRUNING_TRANSFER_H
#define WOOTZ_PRUNING_TRANSFER_H

#include "src/nn/Graph.h"
#include "src/pruning/ChannelPlan.h"

#include <map>
#include <string>
#include <vector>

namespace wootz {

/// Kept-filter indices (ascending, in full-model channel space) per
/// convolution layer name. Unpruned convolutions map to the identity.
using FilterSelections = std::map<std::string, std::vector<int>>;

/// Ranks filters of every convolution by the l1 norm of its weights in
/// \p FullGraph (whose nodes are named "<FullPrefix>/<layer>") and keeps
/// the most important ones per \p Config.
FilterSelections selectFiltersByL1(const ModelSpec &Spec,
                                   const PruneConfig &Config,
                                   Graph &FullGraph,
                                   const std::string &FullPrefix);

/// The kept channel indices of \p ProducerName's output (a layer name or
/// the model input), derived by propagating conv selections through
/// pass-through and concat layers.
std::vector<int> outputChannelSelection(const ModelSpec &Spec,
                                        const FilterSelections &Selections,
                                        const std::string &ProducerName);

/// Copies all layer state from \p Source into \p Target, slicing channel
/// dimensions per \p Selections. When \p OnlyLayers is non-null only the
/// named layers are transferred (used to initialize a tuning block inside
/// a pre-training graph). Source nodes must hold full-model shapes;
/// target nodes must match the pruned shapes implied by \p Selections.
void transferWeights(const ModelSpec &Spec,
                     const FilterSelections &Selections, Graph &Source,
                     const std::string &SourcePrefix, Graph &Target,
                     const std::string &TargetPrefix,
                     const std::vector<std::string> *OnlyLayers = nullptr);

} // namespace wootz

#endif // WOOTZ_PRUNING_TRANSFER_H
