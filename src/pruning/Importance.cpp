//===- pruning/Importance.cpp -------------------------------------------------===//

#include "src/pruning/Importance.h"

#include "src/nn/Layers.h"
#include "src/nn/Loss.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace wootz;

const char *wootz::importanceCriterionName(ImportanceCriterion Criterion) {
  switch (Criterion) {
  case ImportanceCriterion::L1Norm:
    return "l1";
  case ImportanceCriterion::L2Norm:
    return "l2";
  case ImportanceCriterion::Taylor:
    return "taylor";
  case ImportanceCriterion::TaylorExpansion:
    return "taylor_expansion";
  case ImportanceCriterion::Apoz:
    return "apoz";
  }
  return "unknown";
}

Result<ImportanceCriterion>
wootz::parseImportanceCriterion(const std::string &Name) {
  if (Name == "l1")
    return ImportanceCriterion::L1Norm;
  if (Name == "l2")
    return ImportanceCriterion::L2Norm;
  if (Name == "taylor")
    return ImportanceCriterion::Taylor;
  if (Name == "taylor_expansion")
    return ImportanceCriterion::TaylorExpansion;
  if (Name == "apoz")
    return ImportanceCriterion::Apoz;
  return Error::failure("unknown importance criterion '" + Name +
                        "' (expected l1, l2, taylor, taylor_expansion or "
                        "apoz)");
}

/// Weight-magnitude scores: per-filter lp norm of the convolution weight.
static void scoreByWeightNorm(const ModelSpec &Spec, Graph &FullGraph,
                              const std::string &FullPrefix, int Power,
                              FilterScores &Scores) {
  for (const LayerSpec &L : Spec.Layers) {
    if (L.Kind != LayerKind::Convolution)
      continue;
    Layer &Node = FullGraph.layer(FullPrefix + "/" + L.Name);
    const Tensor &Weight = Node.state()[0]->Value;
    const int Filters = Weight.shape()[0];
    const size_t FilterSize = Weight.size() / Filters;
    std::vector<double> &LayerScores = Scores[L.Name];
    LayerScores.assign(Filters, 0.0);
    for (int O = 0; O < Filters; ++O) {
      const float *Filter = Weight.data() + O * FilterSize;
      double Total = 0.0;
      for (size_t J = 0; J < FilterSize; ++J)
        Total += Power == 1 ? std::fabs(Filter[J])
                            : static_cast<double>(Filter[J]) * Filter[J];
      LayerScores[O] = Power == 1 ? Total : std::sqrt(Total);
    }
  }
}

/// The node whose activation represents a conv's post-nonlinearity
/// output: the first ReLU reachable through pass-through layers, or the
/// conv itself.
static std::string postActivationNode(const ModelSpec &Spec,
                                      const std::string &ConvName) {
  std::string Current = ConvName;
  for (int Hops = 0; Hops < 4; ++Hops) {
    // Find a consumer of Current that is BatchNorm or ReLU.
    bool Advanced = false;
    for (const LayerSpec &L : Spec.Layers) {
      if (std::find(L.Bottoms.begin(), L.Bottoms.end(), Current) ==
          L.Bottoms.end())
        continue;
      if (L.Kind == LayerKind::ReLU)
        return L.Name;
      if (L.Kind == LayerKind::BatchNorm) {
        Current = L.Name;
        Advanced = true;
        break;
      }
    }
    if (!Advanced)
      break;
  }
  return ConvName;
}

/// Data-driven scores over calibration batches.
static Result<int> scoreByData(const ModelSpec &Spec, Graph &FullGraph,
                               const std::string &FullPrefix,
                               ImportanceCriterion Criterion,
                               const Dataset &Calibration,
                               int CalibrationBatches, int BatchSize,
                               FilterScores &Scores) {
  const bool Taylor = Criterion == ImportanceCriterion::Taylor;
  const bool TaylorExpansion =
      Criterion == ImportanceCriterion::TaylorExpansion;
  // Both Taylor variants need a backward pass over training-mode
  // forwards.
  const bool NeedsGradients = Taylor || TaylorExpansion;

  // Conv layer -> node carrying its post-activation map (Apoz).
  std::map<std::string, std::string> ActivationNode;
  for (const LayerSpec &L : Spec.Layers) {
    if (L.Kind != LayerKind::Convolution)
      continue;
    Scores[L.Name].assign(L.NumOutput, 0.0);
    ActivationNode[L.Name] = postActivationNode(Spec, L.Name);
  }

  // Taylor scoring runs training-mode forwards (so batchnorm backward is
  // exact); snapshot the running statistics to leave the teacher
  // untouched.
  std::map<std::string, Tensor> Snapshot;
  if (NeedsGradients)
    for (auto &[Name, State] : FullGraph.namedState())
      Snapshot[Name] = State->Value;

  const std::string LogitsNode =
      FullPrefix + "/" + Spec.Layers.back().Name;
  BatchSampler Sampler(Calibration.Train, BatchSize, Rng(0xca11b));
  // Calibration runs through a private context: the teacher's own
  // execution state (and any concurrent reader's) is never disturbed,
  // and the gradient reads below come from this pass's bookkeeping.
  ExecContext Ctx(FullGraph);
  Tensor GradLogits;
  for (int BatchIndex = 0; BatchIndex < CalibrationBatches; ++BatchIndex) {
    Batch Mini = Sampler.next();
    Ctx.setInput(Spec.InputName, std::move(Mini.Images));
    Ctx.forward(FullGraph, /*Training=*/NeedsGradients);
    if (NeedsGradients) {
      FullGraph.zeroGrads();
      softmaxCrossEntropy(Ctx.activation(LogitsNode), Mini.Labels,
                          GradLogits);
      Ctx.seedGradient(LogitsNode, GradLogits);
      Ctx.backward(FullGraph);
    }
    for (const LayerSpec &L : Spec.Layers) {
      if (L.Kind != LayerKind::Convolution)
        continue;
      std::vector<double> &LayerScores = Scores[L.Name];
      const int Channels = static_cast<int>(LayerScores.size());
      if (Taylor) {
        const std::string NodeName = FullPrefix + "/" + L.Name;
        const Tensor &Activation = Ctx.activation(NodeName);
        const Tensor *Grad = Ctx.outputGradient(NodeName);
        if (!Grad)
          return Error::failure("no gradient reached '" + NodeName +
                                "' during Taylor calibration");
        const int Batch = Activation.shape()[0];
        const int Spatial = Activation.shape()[2] * Activation.shape()[3];
        for (int C = 0; C < Channels; ++C) {
          double Sum = 0.0;
          for (int N = 0; N < Batch; ++N) {
            const size_t Offset =
                (static_cast<size_t>(N) * Channels + C) * Spatial;
            for (int I = 0; I < Spatial; ++I)
              Sum += static_cast<double>(Activation[Offset + I]) *
                     (*Grad)[Offset + I];
          }
          LayerScores[C] += std::fabs(Sum);
        }
      } else if (TaylorExpansion) {
        // Weight-gradient variant: squared first-order loss change from
        // zeroing the whole filter, (sum_j w_j * g_j)^2 per batch. The
        // backward pass above accumulated this batch's weight gradients
        // into the graph parameters (zeroGrads() reset them first).
        Layer &Node = FullGraph.layer(FullPrefix + "/" + L.Name);
        const Tensor &Weight = Node.state()[0]->Value;
        const Tensor &Grad = Node.state()[0]->Grad;
        const size_t FilterSize = Weight.size() / Channels;
        for (int C = 0; C < Channels; ++C) {
          const float *W = Weight.data() + C * FilterSize;
          const float *G = Grad.data() + C * FilterSize;
          double Sum = 0.0;
          for (size_t J = 0; J < FilterSize; ++J)
            Sum += static_cast<double>(W[J]) * G[J];
          LayerScores[C] += Sum * Sum;
        }
      } else {
        // Apoz: score = fraction of *active* (nonzero) outputs.
        const Tensor &Activation =
            Ctx.activation(FullPrefix + "/" + ActivationNode[L.Name]);
        const int Batch = Activation.shape()[0];
        const int Spatial = Activation.shape()[2] * Activation.shape()[3];
        for (int C = 0; C < Channels; ++C) {
          int Active = 0;
          for (int N = 0; N < Batch; ++N) {
            const size_t Offset =
                (static_cast<size_t>(N) * Channels + C) * Spatial;
            for (int I = 0; I < Spatial; ++I)
              Active += Activation[Offset + I] > 0.0f;
          }
          LayerScores[C] +=
              static_cast<double>(Active) / (Batch * Spatial);
        }
      }
    }
  }

  if (Taylor)
    for (auto &[Name, State] : FullGraph.namedState())
      State->Value = Snapshot[Name];
  return CalibrationBatches;
}

Result<FilterScores> wootz::scoreFilters(const ModelSpec &Spec,
                                         Graph &FullGraph,
                                         const std::string &FullPrefix,
                                         ImportanceCriterion Criterion,
                                         const Dataset *Calibration,
                                         int CalibrationBatches,
                                         int BatchSize) {
  FilterScores Scores;
  switch (Criterion) {
  case ImportanceCriterion::L1Norm:
    scoreByWeightNorm(Spec, FullGraph, FullPrefix, 1, Scores);
    return Scores;
  case ImportanceCriterion::L2Norm:
    scoreByWeightNorm(Spec, FullGraph, FullPrefix, 2, Scores);
    return Scores;
  case ImportanceCriterion::Taylor:
  case ImportanceCriterion::TaylorExpansion:
  case ImportanceCriterion::Apoz: {
    if (!Calibration)
      return Error::failure(
          std::string("criterion '") + importanceCriterionName(Criterion) +
          "' needs calibration data");
    Result<int> Ran =
        scoreByData(Spec, FullGraph, FullPrefix, Criterion, *Calibration,
                    CalibrationBatches, BatchSize, Scores);
    if (!Ran)
      return Ran.takeError();
    return Scores;
  }
  }
  reportFatalError("unhandled importance criterion");
}

FilterSelections
wootz::selectionsFromScores(const ModelSpec &Spec,
                            const PruneConfig &Config,
                            const FilterScores &Scores) {
  assert(static_cast<int>(Config.size()) == Spec.moduleCount() &&
         "config/module count mismatch");
  FilterSelections Selections;
  for (size_t I = 0; I < Spec.Layers.size(); ++I) {
    const LayerSpec &L = Spec.Layers[I];
    if (L.Kind != LayerKind::Convolution)
      continue;
    std::vector<int> Kept(L.NumOutput);
    std::iota(Kept.begin(), Kept.end(), 0);
    if (Spec.Prunable[I] && Config[Spec.LayerModule[I]] != 0.0f) {
      const std::vector<double> &LayerScores = Scores.at(L.Name);
      assert(static_cast<int>(LayerScores.size()) == L.NumOutput &&
             "score vector width mismatch");
      std::stable_sort(Kept.begin(), Kept.end(), [&](int A, int B) {
        return LayerScores[A] > LayerScores[B];
      });
      Kept.resize(keptFilters(L.NumOutput, Config[Spec.LayerModule[I]]));
      std::sort(Kept.begin(), Kept.end());
    }
    Selections[L.Name] = std::move(Kept);
  }
  return Selections;
}

Result<FilterSelections> wootz::selectFiltersByImportance(
    const ModelSpec &Spec, const PruneConfig &Config, Graph &FullGraph,
    const std::string &FullPrefix, ImportanceCriterion Criterion,
    const Dataset *Calibration) {
  Result<FilterScores> Scores =
      scoreFilters(Spec, FullGraph, FullPrefix, Criterion, Calibration);
  if (!Scores)
    return Scores.takeError();
  return selectionsFromScores(Spec, Config, *Scores);
}
