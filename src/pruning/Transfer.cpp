//===- pruning/Transfer.cpp --------------------------------------------------===//

#include "src/pruning/Transfer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace wootz;

static std::vector<int> identitySelection(int Count) {
  std::vector<int> Indices(Count);
  std::iota(Indices.begin(), Indices.end(), 0);
  return Indices;
}

FilterSelections wootz::selectFiltersByL1(const ModelSpec &Spec,
                                          const PruneConfig &Config,
                                          Graph &FullGraph,
                                          const std::string &FullPrefix) {
  assert(static_cast<int>(Config.size()) == Spec.moduleCount() &&
         "config/module count mismatch");
  FilterSelections Selections;
  for (size_t I = 0; I < Spec.Layers.size(); ++I) {
    const LayerSpec &L = Spec.Layers[I];
    if (L.Kind != LayerKind::Convolution)
      continue;
    if (!Spec.Prunable[I] || Config[Spec.LayerModule[I]] == 0.0f) {
      Selections[L.Name] = identitySelection(L.NumOutput);
      continue;
    }
    Layer &Node = FullGraph.layer(FullPrefix + "/" + L.Name);
    assert(Node.kind() == "conv" && "layer naming mismatch");
    const Tensor &Weight = Node.state()[0]->Value;
    assert(Weight.shape()[0] == L.NumOutput && "unexpected filter count");
    const size_t FilterSize = Weight.size() / L.NumOutput;

    std::vector<float> Norms(L.NumOutput, 0.0f);
    for (int O = 0; O < L.NumOutput; ++O) {
      const float *Filter = Weight.data() + O * FilterSize;
      for (size_t J = 0; J < FilterSize; ++J)
        Norms[O] += std::fabs(Filter[J]);
    }
    const int Kept =
        keptFilters(L.NumOutput, Config[Spec.LayerModule[I]]);
    std::vector<int> Order = identitySelection(L.NumOutput);
    // Most important (largest l1 norm) first; ties broken by index so the
    // selection is deterministic.
    std::stable_sort(Order.begin(), Order.end(), [&](int A, int B) {
      return Norms[A] > Norms[B];
    });
    Order.resize(Kept);
    std::sort(Order.begin(), Order.end());
    Selections[L.Name] = std::move(Order);
  }
  return Selections;
}

std::vector<int>
wootz::outputChannelSelection(const ModelSpec &Spec,
                              const FilterSelections &Selections,
                              const std::string &ProducerName) {
  if (ProducerName == Spec.InputName)
    return identitySelection(Spec.InputChannels);
  const int Index = Spec.layerIndex(ProducerName);
  assert(Index >= 0 && "unknown producer layer");
  const LayerSpec &L = Spec.Layers[Index];
  switch (L.Kind) {
  case LayerKind::Convolution: {
    auto It = Selections.find(L.Name);
    if (It != Selections.end())
      return It->second;
    return identitySelection(L.NumOutput);
  }
  case LayerKind::BatchNorm:
  case LayerKind::ReLU:
  case LayerKind::Pooling:
  case LayerKind::Eltwise:
    return outputChannelSelection(Spec, Selections, L.Bottoms[0]);
  case LayerKind::Concat: {
    // Offsets are in the *full* model's channel space.
    std::vector<int> Combined;
    int Offset = 0;
    for (const std::string &Bottom : L.Bottoms) {
      std::vector<int> Part =
          outputChannelSelection(Spec, Selections, Bottom);
      // Full width of this input: derived from the spec, not the
      // selection (the selection may be pruned).
      int FullWidth;
      if (Bottom == Spec.InputName) {
        FullWidth = Spec.InputChannels;
      } else {
        // Walk to the producing conv/concat to learn the full width.
        const std::vector<int> FullPart =
            outputChannelSelection(Spec, FilterSelections(), Bottom);
        FullWidth = static_cast<int>(FullPart.size());
      }
      for (int Channel : Part)
        Combined.push_back(Offset + Channel);
      Offset += FullWidth;
    }
    return Combined;
  }
  case LayerKind::InnerProduct:
    return identitySelection(L.NumOutput);
  }
  reportFatalError("unhandled layer kind in outputChannelSelection");
}

/// Slices a conv weight OIHW along output and input channels.
static Tensor sliceConvWeight(const Tensor &Full,
                              const std::vector<int> &OutSel,
                              const std::vector<int> &InSel) {
  const int Kernel = Full.shape()[2];
  assert(Full.shape()[3] == Kernel && "square kernels expected");
  Tensor Out(Shape{static_cast<int>(OutSel.size()),
                   static_cast<int>(InSel.size()), Kernel, Kernel});
  for (size_t O = 0; O < OutSel.size(); ++O)
    for (size_t I = 0; I < InSel.size(); ++I)
      for (int H = 0; H < Kernel; ++H)
        for (int W = 0; W < Kernel; ++W)
          Out.at(static_cast<int>(O), static_cast<int>(I), H, W) =
              Full.at(OutSel[O], InSel[I], H, W);
  return Out;
}

/// Slices a rank-1 per-channel tensor.
static Tensor sliceChannels(const Tensor &Full,
                            const std::vector<int> &Sel) {
  Tensor Out(Shape{static_cast<int>(Sel.size())});
  for (size_t I = 0; I < Sel.size(); ++I)
    Out[I] = Full[Sel[I]];
  return Out;
}

/// Slices a dense weight [Out, C*H*W] along the input-channel dimension.
static Tensor sliceDenseWeight(const Tensor &Full,
                               const std::vector<int> &InSel, int Height,
                               int Width) {
  const int OutFeatures = Full.shape()[0];
  const int Spatial = Height * Width;
  Tensor Out(Shape{OutFeatures,
                   static_cast<int>(InSel.size()) * Spatial});
  for (int O = 0; O < OutFeatures; ++O)
    for (size_t C = 0; C < InSel.size(); ++C)
      for (int S = 0; S < Spatial; ++S)
        Out.at(O, static_cast<int>(C) * Spatial + S) =
            Full.at(O, InSel[C] * Spatial + S);
  return Out;
}

static void assignState(Param &Target, Tensor Value) {
  assert(Target.Value.shape() == Value.shape() &&
         "transfer shape mismatch; was the target built for this config?");
  Target.Value = std::move(Value);
}

void wootz::transferWeights(const ModelSpec &Spec,
                            const FilterSelections &Selections,
                            Graph &Source, const std::string &SourcePrefix,
                            Graph &Target, const std::string &TargetPrefix,
                            const std::vector<std::string> *OnlyLayers) {
  // The full-model plan gives spatial extents for dense-feature slicing.
  Result<ChannelPlan> FullPlan = planChannels(Spec, unprunedConfig(Spec));
  assert(FullPlan && "spec must plan cleanly");

  auto wanted = [&](const std::string &Name) {
    if (!OnlyLayers)
      return true;
    return std::find(OnlyLayers->begin(), OnlyLayers->end(), Name) !=
           OnlyLayers->end();
  };

  for (size_t I = 0; I < Spec.Layers.size(); ++I) {
    const LayerSpec &L = Spec.Layers[I];
    if (!wanted(L.Name))
      continue;
    const std::string TargetName = TargetPrefix + "/" + L.Name;
    if (!Target.hasNode(TargetName))
      continue;
    switch (L.Kind) {
    case LayerKind::Convolution: {
      Layer &From = Source.layer(SourcePrefix + "/" + L.Name);
      Layer &To = Target.layer(TargetName);
      const std::vector<int> OutSel =
          outputChannelSelection(Spec, Selections, L.Name);
      const std::vector<int> InSel =
          outputChannelSelection(Spec, Selections, L.Bottoms[0]);
      assignState(*To.state()[0],
                  sliceConvWeight(From.state()[0]->Value, OutSel, InSel));
      if (L.BiasTerm)
        assignState(*To.state()[1],
                    sliceChannels(From.state()[1]->Value, OutSel));
      break;
    }
    case LayerKind::BatchNorm: {
      Layer &From = Source.layer(SourcePrefix + "/" + L.Name);
      Layer &To = Target.layer(TargetName);
      const std::vector<int> Sel =
          outputChannelSelection(Spec, Selections, L.Bottoms[0]);
      // State order: gamma, beta, running mean, running var.
      for (int S = 0; S < 4; ++S)
        assignState(*To.state()[S],
                    sliceChannels(From.state()[S]->Value, Sel));
      break;
    }
    case LayerKind::InnerProduct: {
      Layer &From = Source.layer(SourcePrefix + "/" + L.Name);
      Layer &To = Target.layer(TargetName);
      const std::vector<int> InSel =
          outputChannelSelection(Spec, Selections, L.Bottoms[0]);
      const int BottomIndex = Spec.layerIndex(L.Bottoms[0]);
      assert(BottomIndex >= 0 && "inner product cannot consume the input");
      const LayerExtents In = FullPlan->Extents[BottomIndex];
      assignState(*To.state()[0],
                  sliceDenseWeight(From.state()[0]->Value, InSel, In.Height,
                                   In.Width));
      assignState(*To.state()[1], From.state()[1]->Value);
      break;
    }
    case LayerKind::ReLU:
    case LayerKind::Pooling:
    case LayerKind::Concat:
    case LayerKind::Eltwise:
      break; // Stateless.
    }
  }
}
