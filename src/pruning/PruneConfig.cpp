//===- pruning/PruneConfig.cpp ----------------------------------------------===//

#include "src/pruning/PruneConfig.h"

#include "src/support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

using namespace wootz;

std::vector<float> wootz::standardRates() { return {0.0f, 0.3f, 0.5f, 0.7f}; }

std::vector<float>
wootz::subspaceRateAlphabet(const std::vector<PruneConfig> &Configs) {
  std::vector<float> Rates{0.0f};
  for (const PruneConfig &Config : Configs)
    for (float Rate : Config)
      if (std::find(Rates.begin(), Rates.end(), Rate) == Rates.end())
        Rates.push_back(Rate);
  std::sort(Rates.begin(), Rates.end());
  return Rates;
}

int wootz::keptFilters(int FullCount, float Rate) {
  assert(FullCount > 0 && "keptFilters on an empty layer");
  assert(Rate >= 0.0f && Rate < 1.0f && "pruning rate out of [0, 1)");
  const int Kept =
      static_cast<int>(std::lround((1.0f - Rate) * FullCount));
  return Kept < 1 ? 1 : Kept;
}

std::string wootz::formatConfig(const PruneConfig &Config) {
  std::string Out = "[";
  for (size_t I = 0; I < Config.size(); ++I) {
    if (I != 0)
      Out += ", ";
    // Keep the compact "0"/"0.3" style of the paper's Figure 3(a).
    if (Config[I] == 0.0f)
      Out += "0";
    else
      Out += formatDouble(Config[I], 1);
  }
  return Out + "]";
}

std::vector<PruneConfig>
wootz::sampleSubspace(int ModuleCount, int Count,
                      const std::vector<float> &Rates, Rng &Generator) {
  assert(ModuleCount > 0 && Count > 0 && !Rates.empty() &&
         "invalid subspace request");
  std::set<PruneConfig> Seen;
  std::vector<PruneConfig> Subspace;
  // Bound the attempts so a tiny configuration space cannot loop forever.
  const int MaxAttempts = Count * 64;
  for (int Attempt = 0; Attempt < MaxAttempts &&
                        static_cast<int>(Subspace.size()) < Count;
       ++Attempt) {
    PruneConfig Config(ModuleCount);
    bool AnyPruned = false;
    for (float &Rate : Config) {
      Rate = Generator.choice(Rates);
      AnyPruned = AnyPruned || Rate != 0.0f;
    }
    // The all-zero configuration is the full model itself, not a pruned
    // network; exploring it would be pointless.
    if (AnyPruned && Seen.insert(Config).second)
      Subspace.push_back(std::move(Config));
  }
  return Subspace;
}

std::vector<PruneConfig>
wootz::sampleRunSubspace(int ModuleCount, int Count, int MaxRuns,
                         const std::vector<float> &Rates, Rng &Generator) {
  assert(MaxRuns >= 1 && "at least one run required");
  std::set<PruneConfig> Seen;
  std::vector<PruneConfig> Subspace;
  const int MaxAttempts = Count * 64;
  for (int Attempt = 0; Attempt < MaxAttempts &&
                        static_cast<int>(Subspace.size()) < Count;
       ++Attempt) {
    const int Runs = static_cast<int>(Generator.nextInRange(
        1, MaxRuns < ModuleCount ? MaxRuns : ModuleCount));
    // Choose Runs-1 distinct interior breakpoints.
    std::vector<int> Breaks;
    for (int I = 1; I < ModuleCount; ++I)
      Breaks.push_back(I);
    Generator.shuffle(Breaks);
    Breaks.resize(Runs - 1);
    std::sort(Breaks.begin(), Breaks.end());
    Breaks.push_back(ModuleCount);

    PruneConfig Config(ModuleCount);
    int Module = 0;
    bool AnyPruned = false;
    for (int Break : Breaks) {
      const float Rate = Generator.choice(Rates);
      AnyPruned = AnyPruned || Rate != 0.0f;
      for (; Module < Break; ++Module)
        Config[Module] = Rate;
    }
    if (AnyPruned && Seen.insert(Config).second)
      Subspace.push_back(std::move(Config));
  }
  return Subspace;
}

Result<std::vector<PruneConfig>>
wootz::parseSubspaceSpec(const std::string &Text) {
  // Strip comments, then everything before an optional '='.
  std::string Cleaned;
  for (const std::string &Line : splitLines(Text)) {
    const size_t Hash = Line.find('#');
    Cleaned += Line.substr(0, Hash == std::string::npos ? Line.size() : Hash);
    Cleaned += ' ';
  }
  std::string_view Body = trim(Cleaned);
  if (const size_t Equals = Body.find('=');
      Equals != std::string_view::npos) {
    const std::string_view Head = trim(Body.substr(0, Equals));
    if (Head != "configs")
      return Error::failure("expected 'configs =', found '" +
                            std::string(Head) + " ='");
    Body = trim(Body.substr(Equals + 1));
  }
  if (!Body.empty() && Body.back() == ';')
    Body = trim(Body.substr(0, Body.size() - 1));
  if (Body.size() < 2 || Body.front() != '[' || Body.back() != ']')
    return Error::failure("subspace spec must be a bracketed list");
  Body = trim(Body.substr(1, Body.size() - 2));

  std::vector<PruneConfig> Configs;
  size_t Cursor = 0;
  while (Cursor < Body.size()) {
    if (Body[Cursor] == ',' ||
        std::isspace(static_cast<unsigned char>(Body[Cursor]))) {
      ++Cursor;
      continue;
    }
    if (Body[Cursor] != '[')
      return Error::failure("expected '[' starting a configuration");
    const size_t Close = Body.find(']', Cursor);
    if (Close == std::string_view::npos)
      return Error::failure("unterminated configuration list");
    PruneConfig Config;
    for (const std::string &Piece :
         split(Body.substr(Cursor + 1, Close - Cursor - 1), ',')) {
      const std::string_view Trimmed = trim(Piece);
      if (Trimmed.empty())
        continue;
      Result<double> Rate = parseDouble(Trimmed);
      if (!Rate)
        return Rate.takeError();
      if (*Rate < 0.0 || *Rate >= 1.0)
        return Error::failure("pruning rate " + std::string(Trimmed) +
                              " out of [0, 1)");
      Config.push_back(static_cast<float>(*Rate));
    }
    if (Config.empty())
      return Error::failure("empty configuration in subspace spec");
    if (!Configs.empty() && Configs[0].size() != Config.size())
      return Error::failure("configurations disagree on module count");
    Configs.push_back(std::move(Config));
    Cursor = Close + 1;
  }
  if (Configs.empty())
    return Error::failure("subspace spec contains no configurations");
  return Configs;
}

std::string wootz::printSubspaceSpec(const std::vector<PruneConfig> &Configs) {
  std::string Out = "configs = [";
  for (size_t I = 0; I < Configs.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += formatConfig(Configs[I]);
  }
  return Out + "]";
}
