//===- pruning/PruneConfig.h - Pruning configurations -----------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pruning configuration assigns one pruning rate to every convolution
/// module of a model (the paper's "typical practice is to use the same
/// pruning rate for the convolutional layers in one convolution module").
/// This file also provides the promising-subspace machinery: random
/// sampling (the paper's §7.1 experimental setup), the rate-run sampling
/// used by Table 5's "collection-2", and the textual subspace
/// specification format of Figure 3(a).
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_PRUNING_PRUNECONFIG_H
#define WOOTZ_PRUNING_PRUNECONFIG_H

#include "src/support/Error.h"
#include "src/support/Rng.h"

#include <string>
#include <vector>

namespace wootz {

/// One pruning rate per convolution module; 0 means unpruned.
using PruneConfig = std::vector<float>;

/// The paper's rate alphabet T = {30%, 50%, 70%} plus the unpruned 0%.
std::vector<float> standardRates();

/// The distinct rates \p Configs use, ascending and always including 0 —
/// the rate alphabet handed to the hierarchical identifier and to the
/// on-the-fly exploration strategies (explore/strategy/).
std::vector<float>
subspaceRateAlphabet(const std::vector<PruneConfig> &Configs);

/// Number of filters kept when pruning \p FullCount filters at \p Rate;
/// never below one.
int keptFilters(int FullCount, float Rate);

/// Renders a config as "[0.3, 0, 0.5]".
std::string formatConfig(const PruneConfig &Config);

/// Samples \p Count distinct configurations over \p ModuleCount modules,
/// drawing each module's rate uniformly from \p Rates. Sizes come out
/// close to uniformly spread, matching the paper's subspace construction.
std::vector<PruneConfig> sampleSubspace(int ModuleCount, int Count,
                                        const std::vector<float> &Rates,
                                        Rng &Generator);

/// Samples configurations that use one rate per *run* of consecutive
/// modules (at most \p MaxRuns runs) — the "collection-2" style of
/// Table 5, which mirrors prior work's module-sequence-wise rates and
/// creates longer repeated layer sequences for the identifier to exploit.
std::vector<PruneConfig> sampleRunSubspace(int ModuleCount, int Count,
                                           int MaxRuns,
                                           const std::vector<float> &Rates,
                                           Rng &Generator);

/// Parses the Figure 3(a) subspace specification:
///   configs = [[0.3, 0, 0.3, 0], [0.5, 0, 0.3, 0]]
/// Whitespace, a trailing semicolon and '#' comments are tolerated; the
/// "configs =" prefix is optional.
Result<std::vector<PruneConfig>>
parseSubspaceSpec(const std::string &Text);

/// Prints a subspace in the same format parseSubspaceSpec() accepts.
std::string printSubspaceSpec(const std::vector<PruneConfig> &Configs);

} // namespace wootz

#endif // WOOTZ_PRUNING_PRUNECONFIG_H
