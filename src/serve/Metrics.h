//===- serve/Metrics.h - Prometheus-style operational metrics --------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve daemon's operational surface: thread-safe latency histograms
/// with quantile estimation, plus renderers for the Prometheus text
/// exposition format (the `GET /metrics` payload). RunLog counters —
/// both the server's own `http.*`/`serve.*` counters and the per-job
/// pipeline counters (`cache.*`, `tasks_*`) sampled live via
/// RunLog::counters() — are exposed as labelled series so external
/// scrapers and bench_serve_throughput consume one format.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_METRICS_H
#define WOOTZ_SERVE_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace wootz {
namespace serve {

/// A fixed-bucket latency histogram (seconds). Buckets follow the usual
/// Prometheus 1-2.5-5 decade ladder from 500µs to 10s plus +Inf, which
/// spans both micro-batched inference (sub-millisecond) and full
/// exploration jobs (seconds).
class LatencyHistogram {
public:
  LatencyHistogram();

  void record(double Seconds);

  int64_t count() const;
  double sum() const;

  /// Interpolated quantile estimate (\p Q in [0,1]) from the bucket
  /// counts; 0 when empty. Good to bucket resolution, which is what a
  /// p50/p99 operational readout needs.
  double quantile(double Q) const;

  /// Renders `<name>_bucket{...,le="..."}`, `<name>_sum`, `<name>_count`
  /// lines. \p Labels is either empty or a `key="value",...` fragment
  /// without braces.
  std::string prometheus(const std::string &Name,
                         const std::string &Labels) const;

private:
  mutable std::mutex Mutex;
  std::vector<double> Bounds; ///< Upper bounds; implicit +Inf at the end.
  std::vector<int64_t> Counts;
  int64_t Total = 0;
  double Accumulated = 0.0;
};

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string prometheusEscapeLabel(const std::string &Value);

/// Renders one `# TYPE` header plus a `name{labels} value` sample line.
std::string prometheusSample(const std::string &Name,
                             const std::string &Labels, double Value,
                             const std::string &Type, bool &TypeEmitted);

/// Renders a counter map as one labelled series:
/// `<series>{scope="<scope>",name="<counter>"} <value>` — dots in
/// counter names stay in the label where Prometheus allows them.
std::string prometheusCounterMap(
    const std::string &Series, const std::string &Scope,
    const std::map<std::string, int64_t> &Counters, bool &TypeEmitted);

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_METRICS_H
