//===- serve/ModelStore.h - Uploaded-model ingestion and persistence -------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ingestion front of the serve daemon: accepts user CNNs over
/// `POST /v1/models` (one JSON body: Prototxt text plus an optional
/// base64 WOOTZCK2 weight bundle), validates them through every layer of
/// the pipeline (size caps -> Prototxt parse -> spec analysis -> graph
/// build -> strict weight import), registers the result with the
/// ModelRegistry so it is immediately predictable and targetable by
/// pruning jobs, and persists it under the server state directory so a
/// restarted daemon re-registers every uploaded model.
///
/// On-disk layout (one directory per model, written atomically):
///
///   <Dir>/<id>/model.prototxt   the spec, exactly as validated
///   <Dir>/<id>/weights.ck       WOOTZCK2 bundle ("<layer>/s<K>" keys)
///
/// Every rejected upload bumps `serve.models.upload_rejected`.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_MODELSTORE_H
#define WOOTZ_SERVE_MODELSTORE_H

#include "src/serve/Batcher.h"

#include <map>
#include <mutex>
#include <string>

namespace wootz {
namespace serve {

class ArtifactStore;

/// Ingestion knobs. The byte caps are per-field application-level limits
/// under the transport-level HttpLimits::MaxBodyBytes.
struct ModelStoreOptions {
  /// Persistence root; empty keeps uploads in memory only.
  std::string Dir;
  /// Largest accepted Prototxt, in bytes.
  size_t MaxPrototxtBytes = 256 * 1024;
  /// Largest accepted *decoded* weight bundle, in bytes.
  size_t MaxWeightBytes = 16 * 1024 * 1024;
  /// Cap on concurrently stored uploaded models.
  size_t MaxModels = 32;
};

/// How an upload resolved, with the HTTP status to answer.
struct UploadOutcome {
  int Status = 201;  ///< 201 created / 400 / 409 / 413 / 429.
  std::string Id;    ///< Set on success.
  std::string Error; ///< Set on failure.
};

/// Uploaded-model table: validation, registration, persistence.
class ModelStore {
public:
  /// \p Registry receives validated models; \p Log (optional) gets
  /// `serve.models.upload*` counters.
  ModelStore(ModelStoreOptions Options, ModelRegistry *Registry,
             RunLog *Log);

  ModelStore(const ModelStore &) = delete;
  ModelStore &operator=(const ModelStore &) = delete;

  /// Handles one POST /v1/models body. Fields: "model" (required,
  /// Prototxt text), "weights_b64" (optional, base64 WOOTZCK2; absent
  /// means seeded random initialization), "id" (optional, [A-Za-z0-9_-],
  /// generated when absent), "seed" (optional integer).
  UploadOutcome upload(const std::map<std::string, std::string> &Body);

  /// Handles DELETE /v1/models/:id: unregisters the model, forgets it,
  /// and removes its on-disk directory. Only uploaded models can be
  /// removed (job winners and preloads are not the store's to delete).
  Error remove(const std::string &Id);

  /// The stored Prototxt of uploaded model \p Id — what a pruning job
  /// with "model": "<id>" targets. Falls back to the on-disk copy when
  /// the id is not in memory: in a shared artifact store another
  /// process may have uploaded it.
  Result<std::string> prototxtFor(const std::string &Id) const;

  /// True if \p Id names an uploaded model.
  bool has(const std::string &Id) const;

  /// Number of uploaded models currently stored.
  size_t count() const;

  /// Scans Options.Dir and re-registers every persisted model (server
  /// restart). Returns how many came back; corrupt entries are skipped
  /// with a `serve.models.restore_failed` bump, never a crash. With
  /// \p Placement, only models this process places (rendezvous hash
  /// over the registered daemons) are restored eagerly — the rest stay
  /// on disk until a request pulls them in via tryRestore().
  size_t loadFromDisk(const ArtifactStore *Placement = nullptr);

  /// On-demand restore of one persisted model that is not (yet) in
  /// memory — the lazy half of shared-store serving: any daemon can
  /// serve any uploaded model the moment it is asked to, regardless of
  /// which daemon took the upload or what placement says. Returns true
  /// when \p Id is registered afterwards.
  bool tryRestore(const std::string &Id);

private:
  /// upload() body; the wrapper adds the uploaded / upload_rejected
  /// counter bump.
  UploadOutcome
  uploadChecked(const std::map<std::string, std::string> &Body);
  /// Shared validate-build-register path behind upload() and
  /// loadFromDisk(). \p WeightBytes empty means random initialization
  /// from \p Seed. On success the model is in the registry and in Known.
  UploadOutcome ingest(const std::string &Id, const std::string &Prototxt,
                       const std::string &WeightBytes, uint64_t Seed,
                       const std::string &Origin);
  UploadOutcome reject(int Status, std::string Message);
  std::string modelDir(const std::string &Id) const;

  ModelStoreOptions Options;
  ModelRegistry *Registry = nullptr;
  RunLog *Log = nullptr;

  mutable std::mutex Mutex;
  /// id -> validated Prototxt text of every uploaded model.
  std::map<std::string, std::string> Known;
  uint64_t NextId = 1;
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_MODELSTORE_H
