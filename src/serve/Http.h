//===- serve/Http.h - Minimal HTTP/1.1 server ------------------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free HTTP/1.1 layer for the pruning-as-a-service daemon:
/// an incremental request parser with hard limits (every limit violation
/// maps to a definite 4xx, never a crash — the parser is fed untrusted
/// bytes), a response serializer, and a blocking-socket server that runs
/// handlers on the existing ThreadPool.
///
/// The server is deliberately simple where simplicity is safe:
///  - one request per connection (`Connection: close`) — clients that
///    want throughput open concurrent connections, which is also what
///    drives the prediction micro-batcher;
///  - a bounded admission gate instead of an unbounded task queue: when
///    more than MaxQueuedConnections requests are admitted-but-unfinished
///    the accept loop answers 503 immediately (backpressure, not OOM);
///  - per-request deadlines: socket reads/writes time out, and a request
///    that waited in the queue past RequestDeadlineMillis is answered 503
///    without running its handler.
///
/// Graceful drain is split in two so the owner can sequence it around the
/// job manager: beginDrain() stops accepting (new connections get an
/// immediate 503), finishDrain() waits for every admitted request to
/// finish and joins the threads.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_HTTP_H
#define WOOTZ_SERVE_HTTP_H

#include "src/runtime/RunLog.h"
#include "src/support/Error.h"
#include "src/support/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace wootz {
namespace serve {

/// Hard limits applied while parsing untrusted request bytes.
struct HttpLimits {
  /// Request line plus all header lines, including terminators.
  size_t MaxHeaderBytes = 32 * 1024;
  size_t MaxHeaderCount = 100;
  size_t MaxBodyBytes = 8 * 1024 * 1024;
};

/// One parsed request. Header names are lowercased.
struct HttpRequest {
  std::string Method;
  std::string Target; ///< Origin-form target, query string included.
  std::string Version;
  std::map<std::string, std::string> Headers;
  std::string Body;

  /// The path part of Target (everything before '?').
  std::string path() const;

  /// Header value (name given lowercased), or \p Default.
  const std::string &header(const std::string &Name,
                            const std::string &Default = EmptyValue) const;

private:
  static const std::string EmptyValue;
};

/// One response to serialize.
struct HttpResponse {
  int Status = 200;
  std::string ContentType = "application/json";
  std::string Body;
  /// Extra headers beyond Content-Type/Content-Length/Connection.
  std::vector<std::pair<std::string, std::string>> ExtraHeaders;
};

/// The canonical reason phrase for \p Status ("OK", "Too Many
/// Requests", ...); "Unknown" for codes the server never emits.
const char *httpStatusReason(int Status);

/// Convenience: a JSON error body `{"error":...}` with the given status.
HttpResponse errorResponse(int Status, const std::string &Message);

/// Serializes \p Response as an HTTP/1.1 message with Content-Length and
/// `Connection: close`.
std::string serializeResponse(const HttpResponse &Response);

/// Incremental HTTP/1.1 request parser. Feed bytes as they arrive;
/// the parser never reads past the limits and reports every malformed
/// input as a 4xx/5xx status instead of asserting.
class HttpRequestParser {
public:
  enum class State {
    Headers,  ///< Still collecting the request line + headers.
    Body,     ///< Headers done; waiting for Content-Length body bytes.
    Complete, ///< A full request is available via take().
    Failed,   ///< Malformed; see errorStatus()/errorDetail().
  };

  explicit HttpRequestParser(HttpLimits Limits = HttpLimits())
      : Limits(Limits) {}

  /// Appends \p Bytes and advances the state machine.
  State consume(std::string_view Bytes);

  State state() const { return Current; }

  /// The HTTP status a Failed parse should be answered with.
  int errorStatus() const { return ErrorStatus; }
  const std::string &errorDetail() const { return ErrorDetail; }

  /// Moves the completed request out. Only valid in State::Complete.
  HttpRequest take();

private:
  State fail(int Status, std::string Detail);
  State parseHead();

  HttpLimits Limits;
  State Current = State::Headers;
  std::string Buffer;
  HttpRequest Request;
  size_t BodyExpected = 0;
  int ErrorStatus = 400;
  std::string ErrorDetail;
};

/// One-shot parse of a complete request held in memory (tests, tools).
Result<HttpRequest> parseHttpRequest(std::string_view Raw,
                                     HttpLimits Limits = HttpLimits());

/// Server knobs.
struct HttpServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  int Port = 0;
  /// Connection-handler threads (the request-level parallelism, and the
  /// upper bound on how many predictions can wait in one micro-batch).
  int Workers = 8;
  /// Admitted-but-unfinished request cap; beyond it new connections get
  /// an immediate 503.
  size_t MaxQueuedConnections = 64;
  /// Queue-wait deadline: a request not started within this many
  /// milliseconds of admission is answered 503 without its handler.
  int RequestDeadlineMillis = 30000;
  /// Socket receive/send timeout per operation.
  int SocketTimeoutMillis = 5000;
  HttpLimits Limits;
};

/// A blocking-socket HTTP/1.1 server: accept thread + ThreadPool workers.
class HttpServer {
public:
  using Handler = std::function<HttpResponse(const HttpRequest &)>;

  /// \p Log (optional) receives `http.*` counters.
  HttpServer(HttpServerOptions Options, Handler Handle, RunLog *Log);
  ~HttpServer();

  HttpServer(const HttpServer &) = delete;
  HttpServer &operator=(const HttpServer &) = delete;

  /// Binds and starts accepting. Fails if the port is taken.
  Error start();

  /// The bound port (after start()); useful with Port = 0.
  int port() const { return BoundPort; }

  /// Stops accepting new connections; already-admitted requests keep
  /// running. New connections are refused at the TCP level.
  void beginDrain();

  /// Waits for every admitted request to finish and joins all threads.
  /// Implies beginDrain(). Idempotent.
  void finishDrain();

  /// Admitted-but-unfinished request count (the backpressure gauge).
  size_t queueDepth() const { return Depth.load(); }

  bool draining() const { return Draining.load(); }

private:
  void acceptLoop();
  void handleConnection(int Fd, std::chrono::steady_clock::time_point At);
  void bump(const std::string &Name);

  HttpServerOptions Options;
  Handler Handle;
  RunLog *Log = nullptr;
  /// Written by start() and beginDrain(), read by the accept thread.
  std::atomic<int> ListenFd{-1};
  int BoundPort = 0;
  std::atomic<size_t> Depth{0};
  std::atomic<bool> Draining{false};
  std::atomic<bool> Finished{false};
  std::thread Acceptor;
  std::unique_ptr<ThreadPool> Pool;
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_HTTP_H
