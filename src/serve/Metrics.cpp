//===- serve/Metrics.cpp ---------------------------------------------------===//

#include "src/serve/Metrics.h"

#include "src/support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace wootz;
using namespace wootz::serve;

LatencyHistogram::LatencyHistogram()
    : Bounds{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
             0.25,   0.5,   1.0,    2.5,   5.0,  10.0},
      Counts(Bounds.size() + 1, 0) {}

void LatencyHistogram::record(double Seconds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  const size_t Bucket =
      std::lower_bound(Bounds.begin(), Bounds.end(), Seconds) -
      Bounds.begin();
  ++Counts[Bucket];
  ++Total;
  Accumulated += Seconds;
}

int64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Total;
}

double LatencyHistogram::sum() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Accumulated;
}

double LatencyHistogram::quantile(double Q) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Total == 0)
    return 0.0;
  Q = std::min(1.0, std::max(0.0, Q));
  const double Rank = Q * static_cast<double>(Total);
  int64_t Cumulative = 0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    if (Counts[I] == 0)
      continue;
    const int64_t Before = Cumulative;
    Cumulative += Counts[I];
    if (static_cast<double>(Cumulative) < Rank)
      continue;
    // Linear interpolation inside the bucket [Lower, Upper].
    const double Lower = I == 0 ? 0.0 : Bounds[I - 1];
    const double Upper =
        I < Bounds.size() ? Bounds[I] : Bounds.back() * 2.0;
    const double Fraction =
        Counts[I] > 0
            ? (Rank - static_cast<double>(Before)) /
                  static_cast<double>(Counts[I])
            : 0.0;
    return Lower + (Upper - Lower) * std::min(1.0, std::max(0.0, Fraction));
  }
  return Bounds.back() * 2.0;
}

std::string
LatencyHistogram::prometheus(const std::string &Name,
                             const std::string &Labels) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const std::string Prefix = Labels.empty() ? "" : Labels + ",";
  std::string Out = "# TYPE " + Name + " histogram\n";
  int64_t Cumulative = 0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    Cumulative += Counts[I];
    const std::string Le =
        I < Bounds.size() ? formatDouble(Bounds[I], 4) : "+Inf";
    Out += Name + "_bucket{" + Prefix + "le=\"" + Le + "\"} " +
           std::to_string(Cumulative) + "\n";
  }
  const std::string Brace = Labels.empty() ? "" : "{" + Labels + "}";
  Out += Name + "_sum" + Brace + " " + formatDouble(Accumulated, 6) + "\n";
  Out += Name + "_count" + Brace + " " + std::to_string(Total) + "\n";
  return Out;
}

std::string wootz::serve::prometheusEscapeLabel(const std::string &Value) {
  std::string Out;
  Out.reserve(Value.size());
  for (char C : Value) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string wootz::serve::prometheusSample(const std::string &Name,
                                           const std::string &Labels,
                                           double Value,
                                           const std::string &Type,
                                           bool &TypeEmitted) {
  std::string Out;
  if (!TypeEmitted) {
    Out += "# TYPE " + Name + " " + Type + "\n";
    TypeEmitted = true;
  }
  const std::string Brace = Labels.empty() ? "" : "{" + Labels + "}";
  const double Rounded = std::round(Value);
  Out += Name + Brace + " " +
         (Value == Rounded && std::abs(Value) < 1e15
              ? std::to_string(static_cast<long long>(Rounded))
              : formatDouble(Value, 6)) +
         "\n";
  return Out;
}

std::string wootz::serve::prometheusCounterMap(
    const std::string &Series, const std::string &Scope,
    const std::map<std::string, int64_t> &Counters, bool &TypeEmitted) {
  std::string Out;
  for (const auto &[Name, Value] : Counters)
    Out += prometheusSample(
        Series,
        "scope=\"" + prometheusEscapeLabel(Scope) + "\",name=\"" +
            prometheusEscapeLabel(Name) + "\"",
        static_cast<double>(Value), "counter", TypeEmitted);
  return Out;
}
