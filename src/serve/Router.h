//===- serve/Router.h - Method + path-pattern dispatch ---------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Routes (method, path) pairs to handlers. Patterns are literal
/// segments plus `:name` parameter segments (`/v1/jobs/:id`); matched
/// parameter values are handed to the handler in pattern order. Dispatch
/// distinguishes "no such path" (404) from "path exists, wrong method"
/// (405 with an Allow header), which clients probing the API deserve.
///
/// Routes are registered once at server construction and never mutated
/// afterwards, so dispatch is lock-free by construction.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_ROUTER_H
#define WOOTZ_SERVE_ROUTER_H

#include "src/serve/Http.h"

#include <functional>
#include <string>
#include <vector>

namespace wootz {
namespace serve {

/// A registered handler: the request plus the values of the pattern's
/// `:param` segments, in order.
using RouteHandler = std::function<HttpResponse(
    const HttpRequest &, const std::vector<std::string> &)>;

/// Immutable-after-setup route table.
class Router {
public:
  /// Registers \p Pattern (e.g. "/v1/models/:id/predict") for \p Method.
  void add(const std::string &Method, const std::string &Pattern,
           RouteHandler Handle);

  /// Finds the matching route and runs its handler; 404/405 otherwise.
  HttpResponse dispatch(const HttpRequest &Request) const;

private:
  struct Route {
    std::string Method;
    /// Pattern split on '/'; segments starting with ':' bind parameters.
    std::vector<std::string> Segments;
    RouteHandler Handle;
  };

  static std::vector<std::string> splitPath(const std::string &Path);
  static bool match(const Route &R, const std::vector<std::string> &Parts,
                    std::vector<std::string> &Params);

  std::vector<Route> Routes;
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_ROUTER_H
