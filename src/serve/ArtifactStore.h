//===- serve/ArtifactStore.h - Shared multi-process artifact tier ----------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared state tier that lets N serve daemons behave like one
/// deployment: a single rooted directory layout holding everything that
/// used to be scattered across per-daemon options (the cross-run tuning
/// BlockCache, the trained-full-model cache, per-job artifacts, the
/// durable job queue, and uploaded models), plus a process registry with
/// heartbeat files and consistent-hash model placement.
///
/// Layout under one Root:
///
///   <Root>/block_cache/   cross-run tuning blocks (train/BlockCache)
///   <Root>/cache/         trained-full-model checkpoints
///   <Root>/jobs/          JobQueue journals, leases, cancel markers
///   <Root>/artifacts/     per-job result.json / telemetry.jsonl / plan.json
///   <Root>/models/        uploaded models (serve/ModelStore)
///   <Root>/registry/      one heartbeat file per live process
///
/// Every layer underneath already writes atomically (temp+rename) and
/// validates contents (WOOTZCK2 CRC), which is what makes the same
/// directory safe for concurrent daemons: a reader observes complete
/// files or none, and corrupt entries degrade to cache misses.
///
/// Placement is rendezvous (highest-random-weight) hashing over the
/// *registered, unexpired* processes: every process computes the same
/// owner for a key from the registry directory alone, no coordinator,
/// and a process death only moves the keys it owned. ownerOf() steers
/// eager work (which daemon restores/compiles a model at startup);
/// correctness never depends on it — any process can lazily restore any
/// model and claim any job.
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_ARTIFACTSTORE_H
#define WOOTZ_SERVE_ARTIFACTSTORE_H

#include "src/runtime/RunLog.h"
#include "src/support/Error.h"
#include "src/train/BlockCache.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wootz {
namespace serve {

/// Shared-tier knobs.
struct ArtifactStoreOptions {
  /// Root directory; empty disables the store (all paths empty).
  std::string Root;
  /// This process's registered identity; empty generates
  /// "proc-<pid>-<n>" (unique per store instance, so tests and benches
  /// can run several "daemons" inside one OS process).
  std::string ProcessName;
  /// Registration heartbeat TTL: a process whose heartbeat file is
  /// older than this drops out of placement.
  double ProcessTtlSeconds = 15.0;
  /// Size cap handed to the shared BlockCache (0 = unlimited).
  uint64_t BlockCacheMaxBytes = 0;
};

/// Cumulative on-disk usage of one tier directory.
struct ArtifactUsage {
  uint64_t Entries = 0;
  uint64_t Bytes = 0;
};

/// The rooted layout + process registry. Thread-safe; one instance per
/// daemon, shared by JobManager/ModelStore/metrics.
class ArtifactStore {
public:
  /// A disabled store: every path accessor returns "".
  ArtifactStore() = default;

  explicit ArtifactStore(ArtifactStoreOptions Options,
                         RunLog *Log = nullptr);
  ~ArtifactStore();

  ArtifactStore(const ArtifactStore &) = delete;
  ArtifactStore &operator=(const ArtifactStore &) = delete;

  bool enabled() const { return !Options.Root.empty(); }
  const std::string &root() const { return Options.Root; }
  const std::string &processName() const { return Options.ProcessName; }

  // The rooted layout ("" when disabled).
  std::string blockCacheDir() const { return sub("block_cache"); }
  std::string modelCacheDir() const { return sub("cache"); }
  std::string jobsDir() const { return sub("jobs"); }
  std::string artifactsDir() const { return sub("artifacts"); }
  std::string modelsDir() const { return sub("models"); }
  std::string registryDir() const { return sub("registry"); }

  /// The BlockCache configuration of the shared tier.
  CacheConfig blockCacheConfig() const;

  /// Writes this process's heartbeat file (registration is just the
  /// first heartbeat). Call periodically — at least once per
  /// ProcessTtlSeconds — to stay in placement.
  Error heartbeat();

  /// Removes this process from the registry (destructor does too).
  void unregisterProcess();

  /// Registered processes whose heartbeat has not expired, sorted.
  std::vector<std::string> activeProcesses() const;

  /// The active process that places \p Key, by rendezvous hashing; ""
  /// when the store is disabled or no process is registered. Every
  /// process sharing the root computes the same answer.
  std::string ownerOf(const std::string &Key) const;

  /// True when this process should do eager work for \p Key: the store
  /// is disabled, this process is unregistered, or ownerOf() names it.
  bool ownsLocally(const std::string &Key) const;

  /// Entry count and byte total under \p Dir (one level, regular files)
  /// — the /metrics feed for the shared cache directories.
  static ArtifactUsage usage(const std::string &Dir);

private:
  std::string sub(const char *Name) const {
    return Options.Root.empty() ? std::string()
                                : Options.Root + "/" + Name;
  }
  std::string heartbeatPath() const {
    return registryDir() + "/" + Options.ProcessName + ".json";
  }

  ArtifactStoreOptions Options;
  RunLog *Log = nullptr;
  bool Registered = false;
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_ARTIFACTSTORE_H
