//===- serve/JobQueue.cpp --------------------------------------------------===//

#include "src/serve/JobQueue.h"

#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/support/Lease.h"
#include "src/support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <filesystem>

#include <unistd.h>

using namespace wootz;
using namespace wootz::serve;

namespace fs = std::filesystem;

const char *wootz::serve::jobStateName(JobState State) {
  switch (State) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Done:
    return "done";
  case JobState::Failed:
    return "failed";
  case JobState::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

namespace {

Result<JobState> parseJobState(const std::string &Name) {
  for (JobState S : {JobState::Queued, JobState::Running, JobState::Done,
                     JobState::Failed, JobState::Cancelled})
    if (Name == jobStateName(S))
      return S;
  return Error::failure("unknown job state '" + Name + "'");
}

std::string lookup(const std::map<std::string, std::string> &Fields,
                   const char *Key) {
  auto It = Fields.find(Key);
  return It == Fields.end() ? std::string() : It->second;
}

int64_t lookupInt(const std::map<std::string, std::string> &Fields,
                  const char *Key, int64_t Default = 0) {
  auto It = Fields.find(Key);
  if (It == Fields.end())
    return Default;
  Result<long long> Parsed = parseInteger(It->second);
  return Parsed ? static_cast<int64_t>(*Parsed) : Default;
}

double lookupDouble(const std::map<std::string, std::string> &Fields,
                    const char *Key, double Default = 0.0) {
  auto It = Fields.find(Key);
  if (It == Fields.end())
    return Default;
  Result<double> Parsed = parseDouble(It->second);
  return Parsed ? *Parsed : Default;
}

} // namespace

JobQueue::JobQueue(JobQueueOptions Options, RunLog *Log)
    : Options(std::move(Options)), Log(Log) {
  if (this->Options.Owner.empty()) {
    // Unique per queue *instance*: tests and benches run several
    // daemons inside one OS process.
    static std::atomic<uint64_t> Serial{0};
    this->Options.Owner = "exec-" + std::to_string(::getpid()) + "-" +
                          std::to_string(Serial.fetch_add(1));
  }
  if (durable()) {
    std::error_code Ignored;
    fs::create_directories(this->Options.Dir, Ignored);
    poll(); // Pick up journals left by earlier or concurrent processes.
  }
}

void JobQueue::setNotifier(std::function<void()> Fn) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Notifier = std::move(Fn);
}

void JobQueue::notify() {
  std::function<void()> Fn;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    Fn = Notifier;
  }
  if (Fn)
    Fn();
}

std::string JobQueue::journalPath(const std::string &Id) const {
  return Options.Dir + "/" + Id + ".jsonl";
}

std::string JobQueue::leasePath(const std::string &Id) const {
  return Options.Dir + "/" + Id + ".lease";
}

std::string JobQueue::cancelPath(const std::string &Id) const {
  return Options.Dir + "/" + Id + ".cancel";
}

std::string JobQueue::specLineLocked(const Entry &E) const {
  JsonObject Spec;
  Spec.field("type", "spec")
      .field("id", E.Record.Id)
      .field("model_name", E.Record.ModelName)
      .field("strategy", E.Record.StrategyName)
      .field("criterion", E.Record.CriterionName)
      .field("configs", E.Record.SubspaceConfigs)
      .field("submitted_unix_ms", unixMillisNow());
  // The submission body rides along with a "b." prefix per key, so a
  // foreign process can re-validate and execute the exact request.
  for (const auto &KV : E.Record.Body)
    Spec.field("b." + KV.first, KV.second);
  return Spec.str();
}

std::string JobQueue::stateLineLocked(const Entry &E) const {
  JsonObject Line;
  Line.field("type", "state")
      .field("state", jobStateName(E.Record.State))
      .field("owner", E.Record.Owner)
      .field("at_unix_ms", unixMillisNow());
  if (!E.Record.Message.empty())
    Line.field("message", E.Record.Message);
  if (E.Record.terminal()) {
    Line.field("configs_evaluated", E.Record.ConfigsEvaluated)
        .field("rounds", E.Record.Rounds)
        .field("proposals", E.Record.Proposals)
        .field("winner_index", E.Record.WinnerIndex)
        .field("winner_accuracy", E.Record.WinnerAccuracy, 6)
        .field("winner_size_fraction", E.Record.WinnerSizeFraction, 6)
        .field("full_accuracy", E.Record.FullAccuracy, 6);
    if (!E.Record.ModelId.empty())
      Line.field("model_id", E.Record.ModelId);
  }
  return Line.str();
}

void JobQueue::appendJournalLocked(Entry &E, const std::string &Line) {
  E.Journal.push_back(Line);
  if (!durable())
    return;
  std::string Text;
  for (const std::string &L : E.Journal)
    Text += L + "\n";
  // Whole-file atomic rewrite: a concurrent reader sees a complete
  // journal at some prefix of history, never a torn line. Best-effort —
  // an unwritable disk degrades this queue to in-memory behavior.
  if (writeFileAtomic(journalPath(E.Record.Id), Text) && Log)
    Log->bump("serve.jobs.journal_write_failed");
}

Result<JobRecord> JobQueue::parseJournal(const std::string &Id,
                                         const std::string &Text) {
  JobRecord Out;
  Out.Id = Id;
  Out.Local = false;
  bool SawSpec = false;
  for (const std::string &Line : splitLines(Text)) {
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty())
      continue;
    Result<std::map<std::string, std::string>> Fields =
        parseFlatJsonObject(Trimmed);
    if (!Fields)
      return Error::failure("journal '" + Id + "': " + Fields.message());
    const std::string Type = lookup(*Fields, "type");
    if (Type == "spec") {
      SawSpec = true;
      Out.SubmittedUnixMs = lookupInt(*Fields, "submitted_unix_ms");
      Out.ModelName = lookup(*Fields, "model_name");
      Out.StrategyName = lookup(*Fields, "strategy");
      Out.CriterionName = lookup(*Fields, "criterion");
      Out.SubspaceConfigs =
          static_cast<size_t>(lookupInt(*Fields, "configs"));
      for (const auto &KV : *Fields)
        if (startsWith(KV.first, "b."))
          Out.Body[KV.first.substr(2)] = KV.second;
    } else if (Type == "state") {
      Result<JobState> State = parseJobState(lookup(*Fields, "state"));
      if (!State)
        return Error::failure("journal '" + Id + "': " + State.message());
      Out.State = *State;
      Out.Owner = lookup(*Fields, "owner");
      Out.Message = lookup(*Fields, "message");
      if (Out.State == JobState::Running)
        Out.StartedUnixMs = lookupInt(*Fields, "at_unix_ms");
      if (Out.terminal()) {
        Out.FinishedUnixMs = lookupInt(*Fields, "at_unix_ms");
        Out.ConfigsEvaluated =
            static_cast<int>(lookupInt(*Fields, "configs_evaluated"));
        Out.Rounds = static_cast<int>(lookupInt(*Fields, "rounds"));
        Out.Proposals = static_cast<int>(lookupInt(*Fields, "proposals"));
        Out.WinnerIndex =
            static_cast<int>(lookupInt(*Fields, "winner_index", -1));
        Out.WinnerAccuracy = lookupDouble(*Fields, "winner_accuracy");
        Out.WinnerSizeFraction =
            lookupDouble(*Fields, "winner_size_fraction");
        Out.FullAccuracy = lookupDouble(*Fields, "full_accuracy");
        Out.ModelId = lookup(*Fields, "model_id");
      }
    } else {
      return Error::failure("journal '" + Id +
                            "': unknown record type '" + Type + "'");
    }
  }
  if (!SawSpec)
    return Error::failure("journal '" + Id + "': no spec record");
  return Out;
}

Result<std::string> JobQueue::submit(
    std::map<std::string, std::string> Body, std::string ModelName,
    std::string StrategyName, std::string CriterionName,
    size_t SubspaceConfigs) {
  std::unique_lock<std::mutex> Guard(Mutex);
  if (queuedCountLocked() >= Options.MaxQueuedJobs)
    return Error::failure("job queue is full (" +
                          std::to_string(Options.MaxQueuedJobs) +
                          " queued)");
  // Plain "job-N" matches the old single-daemon ids; durable queues
  // prefix the owner so ids from concurrent submitters cannot collide.
  std::string Id = durable()
                       ? Options.Owner + "-job-" + std::to_string(NextId++)
                       : "job-" + std::to_string(NextId++);
  auto E = std::make_unique<Entry>();
  E->Record.Id = Id;
  E->Record.Body = std::move(Body);
  E->Record.ModelName = std::move(ModelName);
  E->Record.StrategyName = std::move(StrategyName);
  E->Record.CriterionName = std::move(CriterionName);
  E->Record.SubspaceConfigs = SubspaceConfigs;
  E->Record.SubmitAt = Clock.now();
  appendJournalLocked(*E, specLineLocked(*E));
  appendJournalLocked(*E, stateLineLocked(*E));
  Jobs[Id] = std::move(E);
  Order.push_back(Id);
  if (Log)
    Log->bump("serve.jobs.submitted");
  Guard.unlock();
  notify();
  return Id;
}

std::optional<JobRecord> JobQueue::claim() {
  std::lock_guard<std::mutex> Guard(Mutex);
  for (const std::string &Id : Order) {
    Entry *E = Jobs[Id].get();
    if (E->Record.State != JobState::Queued)
      continue;
    if (durable()) {
      Result<bool> Acquired = tryAcquireLease(
          leasePath(Id), Options.Owner,
          static_cast<int64_t>(Options.LeaseSeconds * 1e3));
      if (!Acquired || !*Acquired)
        continue; // Another process claimed it; poll() will catch up.
    }
    E->Record.State = JobState::Running;
    E->Record.Owner = Options.Owner;
    E->Record.StartAt = Clock.now();
    appendJournalLocked(*E, stateLineLocked(*E));
    if (Log)
      Log->bump("serve.jobs.claimed");
    return E->Record;
  }
  return std::nullopt;
}

void JobQueue::renewLeases() {
  if (!durable())
    return;
  std::vector<std::string> Mine;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    for (const auto &KV : Jobs)
      if (KV.second->Record.State == JobState::Running &&
          KV.second->Record.Owner == Options.Owner)
        Mine.push_back(KV.first);
  }
  for (const std::string &Id : Mine)
    if (renewLease(leasePath(Id), Options.Owner,
                   static_cast<int64_t>(Options.LeaseSeconds * 1e3)) &&
        Log)
      Log->bump("serve.jobs.lease_lost");
}

void JobQueue::finish(const JobRecord &R, JobState Terminal,
                      std::string Message) {
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    auto It = Jobs.find(R.Id);
    if (It == Jobs.end())
      return;
    Entry &E = *It->second;
    if (E.Record.terminal())
      return; // Lost a cancel/reclaim race; the first writer wins.
    // Copy the executor's result summary over, keep queue bookkeeping.
    const double SubmitAt = E.Record.SubmitAt;
    const double StartAt = E.Record.StartAt;
    const bool Local = E.Record.Local;
    const int Reclaims = E.Record.Reclaims;
    E.Record = R;
    E.Record.SubmitAt = SubmitAt;
    E.Record.StartAt = StartAt;
    E.Record.Local = Local;
    E.Record.Reclaims = Reclaims;
    E.Record.State = Terminal;
    E.Record.Message = std::move(Message);
    E.Record.EndAt = Clock.now();
    appendJournalLocked(E, stateLineLocked(E));
  }
  if (durable()) {
    releaseLease(leasePath(R.Id), Options.Owner);
    std::error_code Ignored;
    fs::remove(cancelPath(R.Id), Ignored);
  }
  if (Log)
    Log->bump(Terminal == JobState::Done
                  ? "serve.jobs.completed"
                  : (Terminal == JobState::Cancelled
                         ? "serve.jobs.cancelled"
                         : "serve.jobs.failed"));
  notify();
}

Result<JobState> JobQueue::requestCancel(const std::string &Id) {
  bool Marker = false;
  JobState After;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    auto It = Jobs.find(Id);
    if (It == Jobs.end())
      return Error::failure("no such job '" + Id + "'");
    Entry &E = *It->second;
    if (E.Record.State == JobState::Queued) {
      E.Record.State = JobState::Cancelled;
      E.Record.Message = "cancelled while queued";
      E.Record.EndAt = Clock.now();
      appendJournalLocked(E, stateLineLocked(E));
      if (Log)
        Log->bump("serve.jobs.cancelled");
    } else if (E.Record.State == JobState::Running) {
      // The owning executor observes the marker (or, in-process, is
      // told directly by the facade) and stops at the next check.
      Marker = durable();
    }
    After = E.Record.State;
  }
  if (Marker)
    writeFileAtomic(cancelPath(Id), "cancel\n");
  return After;
}

bool JobQueue::cancelRequested(const std::string &Id) const {
  if (!durable())
    return false;
  std::error_code Ignored;
  return fs::exists(cancelPath(Id), Ignored);
}

bool JobQueue::poll() {
  if (!durable())
    return false;
  bool Claimable = false;
  std::error_code FsError;
  std::vector<std::string> Ids;
  for (const auto &DirEntry :
       fs::directory_iterator(Options.Dir, FsError)) {
    if (!DirEntry.is_regular_file())
      continue;
    if (DirEntry.path().extension() != ".jsonl")
      continue;
    Ids.push_back(DirEntry.path().stem().string());
  }
  std::sort(Ids.begin(), Ids.end());

  std::unique_lock<std::mutex> Guard(Mutex);
  for (const std::string &Id : Ids) {
    auto It = Jobs.find(Id);
    const bool Known = It != Jobs.end();
    if (Known) {
      Entry &E = *It->second;
      // Nothing to refresh for jobs we own or that already finished.
      if (E.Record.terminal() || E.Record.Owner == Options.Owner)
        continue;
    }
    Result<std::string> Text = readFile(journalPath(Id));
    if (!Text)
      continue;
    Result<JobRecord> Parsed = parseJournal(Id, *Text);
    if (!Parsed) {
      if (Log)
        Log->bump("serve.jobs.journal_corrupt");
      continue;
    }
    // Journal records carry wall-clock stamps; project them onto this
    // queue's clock so an observer reports the job's real timings (a
    // peer-run job that finished in 0.1s must not read as "seconds":
    // <importer uptime>). Missing stamps fall back to import time.
    const auto ToLocal = [this](int64_t UnixMs) {
      const double Ago =
          static_cast<double>(unixMillisNow() - UnixMs) / 1e3;
      return std::max(0.0, Clock.now() - std::max(0.0, Ago));
    };
    if (!Known) {
      auto E = std::make_unique<Entry>();
      E->Record = *Parsed;
      E->Record.SubmitAt = Parsed->SubmittedUnixMs
                               ? ToLocal(Parsed->SubmittedUnixMs)
                               : Clock.now();
      if (Parsed->StartedUnixMs)
        E->Record.StartAt = ToLocal(Parsed->StartedUnixMs);
      else if (Parsed->State == JobState::Running)
        E->Record.StartAt = Clock.now();
      if (Parsed->terminal())
        E->Record.EndAt = Parsed->FinishedUnixMs
                              ? ToLocal(Parsed->FinishedUnixMs)
                              : Clock.now();
      for (const std::string &Line : splitLines(*Text))
        if (!trim(Line).empty())
          E->Journal.push_back(std::string(trim(Line)));
      Jobs[Id] = std::move(E);
      Order.push_back(Id);
      It = Jobs.find(Id);
      if (Log)
        Log->bump("serve.jobs.imported");
    } else {
      Entry &E = *It->second;
      const JobState Before = E.Record.State;
      const std::vector<std::string> Lines = splitLines(*Text);
      E.Journal.clear();
      for (const std::string &Line : Lines)
        if (!trim(Line).empty())
          E.Journal.push_back(std::string(trim(Line)));
      const double SubmitAt = E.Record.SubmitAt;
      const double StartAt = E.Record.StartAt;
      const bool Local = E.Record.Local;
      const int Reclaims = E.Record.Reclaims;
      E.Record = *Parsed;
      E.Record.Local = Local;
      E.Record.Reclaims = Reclaims;
      E.Record.SubmitAt = SubmitAt;
      E.Record.StartAt = StartAt;
      if (Before != JobState::Running &&
          E.Record.State == JobState::Running)
        E.Record.StartAt = Parsed->StartedUnixMs
                               ? ToLocal(Parsed->StartedUnixMs)
                               : Clock.now();
      if (E.Record.terminal()) {
        // A job can go Queued -> Running -> terminal entirely between
        // two polls; recover the start it never observed live.
        if (Before == JobState::Queued && Parsed->StartedUnixMs)
          E.Record.StartAt = ToLocal(Parsed->StartedUnixMs);
        E.Record.EndAt = Parsed->FinishedUnixMs
                             ? ToLocal(Parsed->FinishedUnixMs)
                             : Clock.now();
      }
    }

    Entry &E = *It->second;
    if (E.Record.State == JobState::Queued) {
      // A queued job may have a pending cancel marker from any process.
      std::error_code Ignored;
      if (fs::exists(cancelPath(Id), Ignored)) {
        E.Record.State = JobState::Cancelled;
        E.Record.Message = "cancelled while queued";
        E.Record.EndAt = Clock.now();
        appendJournalLocked(E, stateLineLocked(E));
        fs::remove(cancelPath(Id), Ignored);
        if (Log)
          Log->bump("serve.jobs.cancelled");
      } else {
        Claimable = true;
      }
      continue;
    }
    if (E.Record.State != JobState::Running ||
        E.Record.Owner == Options.Owner)
      continue;
    // Running under another owner: reclaim when its lease has expired —
    // the owner stopped heartbeating a full TTL ago, so it is dead.
    Result<LeaseInfo> Held = readLease(leasePath(Id));
    if (Held && !Held->expired(unixMillisNow()))
      continue;
    Result<bool> Stolen = tryAcquireLease(
        leasePath(Id), Options.Owner,
        static_cast<int64_t>(Options.LeaseSeconds * 1e3));
    if (!Stolen || !*Stolen)
      continue; // A peer is reclaiming it; their journal write follows.
    E.Record.State = JobState::Queued;
    E.Record.Owner.clear();
    E.Record.Message =
        "reclaimed after lease expiry (owner '" + Parsed->Owner + "')";
    E.Record.Reclaims += 1;
    appendJournalLocked(E, stateLineLocked(E));
    releaseLease(leasePath(Id), Options.Owner);
    Claimable = true;
    if (Log)
      Log->bump("serve.jobs.reclaimed");
  }
  Guard.unlock();
  if (Claimable)
    notify();
  return Claimable;
}

std::vector<JobRecord> JobQueue::snapshot() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::vector<JobRecord> Out;
  Out.reserve(Order.size());
  for (const std::string &Id : Order)
    Out.push_back(Jobs.at(Id)->Record);
  return Out;
}

Result<JobRecord> JobQueue::get(const std::string &Id) const {
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return Error::failure("no such job '" + Id + "'");
  return It->second->Record;
}

size_t JobQueue::queuedCountLocked() const {
  size_t Count = 0;
  for (const auto &KV : Jobs)
    if (KV.second->Record.State == JobState::Queued)
      ++Count;
  return Count;
}

size_t JobQueue::queuedCount() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return queuedCountLocked();
}

size_t JobQueue::runningCount() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  size_t Count = 0;
  for (const auto &KV : Jobs)
    if (KV.second->Record.State == JobState::Running)
      ++Count;
  return Count;
}

std::map<std::string, int64_t> JobQueue::stateCounts() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::map<std::string, int64_t> Out;
  for (JobState S : {JobState::Queued, JobState::Running, JobState::Done,
                     JobState::Failed, JobState::Cancelled})
    Out[jobStateName(S)] = 0;
  for (const auto &KV : Jobs)
    Out[jobStateName(KV.second->Record.State)] += 1;
  return Out;
}

bool JobQueue::allSettled() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  for (const auto &KV : Jobs)
    if (!KV.second->Record.terminal())
      return false;
  return true;
}
