//===- serve/ModelStore.cpp ------------------------------------------------===//

#include "src/serve/ModelStore.h"

#include "src/compiler/GraphBuilder.h"
#include "src/nn/Serialize.h"
#include "src/serve/ArtifactStore.h"
#include "src/support/File.h"
#include "src/support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <filesystem>

using namespace wootz;
using namespace wootz::serve;

ModelStore::ModelStore(ModelStoreOptions Options, ModelRegistry *Registry,
                       RunLog *Log)
    : Options(std::move(Options)), Registry(Registry), Log(Log) {}

/// Uploaded ids become directory names and URL path segments, so only a
/// conservative charset is allowed — this is also what rules out path
/// traversal in the persistence layer.
static bool isValidModelId(const std::string &Id) {
  if (Id.empty() || Id.size() > 64)
    return false;
  for (char C : Id)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' &&
        C != '-')
      return false;
  return true;
}

UploadOutcome ModelStore::reject(int Status, std::string Message) {
  UploadOutcome Out;
  Out.Status = Status;
  Out.Error = std::move(Message);
  return Out;
}

std::string ModelStore::modelDir(const std::string &Id) const {
  return Options.Dir + "/" + Id;
}

UploadOutcome
ModelStore::upload(const std::map<std::string, std::string> &Body) {
  UploadOutcome Out = uploadChecked(Body);
  if (Log) {
    if (Out.Status == 201)
      Log->bump("serve.models.uploaded");
    else
      Log->bump("serve.models.upload_rejected");
  }
  return Out;
}

UploadOutcome
ModelStore::uploadChecked(const std::map<std::string, std::string> &Body) {
  auto ModelIt = Body.find("model");
  if (ModelIt == Body.end())
    return reject(400, "missing required field 'model' (Prototxt text)");
  const std::string &Prototxt = ModelIt->second;
  if (Prototxt.size() > Options.MaxPrototxtBytes)
    return reject(413, "model text is " + std::to_string(Prototxt.size()) +
                           " bytes; the limit is " +
                           std::to_string(Options.MaxPrototxtBytes));

  std::string WeightBytes;
  if (auto It = Body.find("weights_b64"); It != Body.end()) {
    // Cheap pre-decode cap: base64 inflates 3 bytes to 4 characters, so
    // the character count bounds the decoded size before any allocation.
    if (It->second.size() / 4 * 3 > Options.MaxWeightBytes)
      return reject(413, "weights decode to more than the limit of " +
                             std::to_string(Options.MaxWeightBytes) +
                             " bytes");
    Result<std::string> Decoded = base64Decode(It->second);
    if (!Decoded)
      return reject(400, "weights_b64: " + Decoded.message());
    WeightBytes = Decoded.take();
  }

  uint64_t Seed = 7;
  if (auto It = Body.find("seed"); It != Body.end()) {
    Result<long long> Parsed = parseInteger(It->second);
    if (!Parsed)
      return reject(400, "seed: " + Parsed.message());
    Seed = static_cast<uint64_t>(*Parsed);
  }

  std::string Id;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Known.size() >= Options.MaxModels)
      return reject(429, "the store holds the maximum of " +
                             std::to_string(Options.MaxModels) +
                             " uploaded models; DELETE one first");
    if (auto It = Body.find("id"); It != Body.end()) {
      if (!isValidModelId(It->second))
        return reject(400, "id must be 1-64 characters of [A-Za-z0-9_-]");
      Id = It->second;
    } else {
      // Generated ids must also dodge ids persisted by *other* daemons
      // sharing the directory, which this process has never loaded.
      std::error_code FsError;
      do
        Id = "model-" + std::to_string(NextId++);
      while (Known.count(Id) ||
             (!Options.Dir.empty() &&
              std::filesystem::exists(modelDir(Id), FsError)));
    }
    if (Known.count(Id))
      return reject(409, "model id '" + Id + "' is already uploaded");
    if (!Options.Dir.empty()) {
      std::error_code FsError;
      if (std::filesystem::exists(modelDir(Id), FsError))
        return reject(409, "model id '" + Id + "' is already uploaded");
    }
  }
  // The registry also holds job winners and preloads; their ids are taken
  // too (answered before the expensive build below).
  if (Registry && Registry->find(Id))
    return reject(409, "model id '" + Id + "' is already registered");

  const std::string Origin =
      WeightBytes.empty() ? "uploaded (random init)"
                          : "uploaded (imported weights)";
  return ingest(Id, Prototxt, WeightBytes, Seed, Origin);
}

UploadOutcome ModelStore::ingest(const std::string &Id,
                                 const std::string &Prototxt,
                                 const std::string &WeightBytes,
                                 uint64_t Seed, const std::string &Origin) {
  Result<ModelSpec> Spec = parseModelSpec(Prototxt);
  if (!Spec)
    return reject(400, "model: " + Spec.message());
  Result<BuiltNetwork> Built = buildFullNetwork(*Spec, Seed);
  if (!Built)
    return reject(400, "model: " + Built.message());

  if (!WeightBytes.empty()) {
    Result<TensorBundle> Bundle = deserializeTensors(WeightBytes);
    if (!Bundle)
      return reject(400, "weights: " + Bundle.message());
    if (Error E = importWeights(Built->Network, FullNetworkPrefix,
                                *Bundle))
      return reject(400, "weights: " + E.message());
  }

  // Persist before registering: the bundle always comes from the built
  // network, so random-initialized uploads restore bit-identically too.
  if (!Options.Dir.empty()) {
    const std::string Bytes =
        serializeTensors(exportWeights(Built->Network, FullNetworkPrefix));
    Error Write = writeFileAtomic(modelDir(Id) + "/model.prototxt",
                                  Prototxt);
    if (!Write)
      Write = writeFileAtomic(modelDir(Id) + "/weights.ck", Bytes);
    if (Write) {
      if (Log)
        Log->bump("serve.models.persist_failed");
      return reject(500, "persisting model '" + Id +
                             "': " + Write.message());
    }
  }

  auto Network = std::make_shared<AssembledNetwork>();
  Network->InputNode = Built->InputNode;
  Network->LogitsNode = Built->LogitsNode;
  const int Channels = Spec->InputChannels;
  const int Height = Spec->InputHeight;
  const int Width = Spec->InputWidth;
  const int Classes = Built->Classes;
  Network->Network = std::move(Built->Network);

  if (Registry)
    if (Error E = Registry->add(Id, std::move(Network), Channels, Height,
                                Width, Classes, Origin))
      return reject(409, E.message());

  std::lock_guard<std::mutex> Lock(Mutex);
  Known[Id] = Prototxt;
  UploadOutcome Out;
  Out.Status = 201;
  Out.Id = Id;
  return Out;
}

Error ModelStore::remove(const std::string &Id) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Known.find(Id);
    if (It == Known.end())
      return Error::failure("no uploaded model '" + Id + "'");
    Known.erase(It);
  }
  Error Removed = Registry ? Registry->remove(Id) : Error::success();
  if (!Options.Dir.empty()) {
    std::error_code FsError;
    std::filesystem::remove_all(modelDir(Id), FsError);
  }
  if (Log)
    Log->bump("serve.models.deleted");
  return Removed;
}

Result<std::string> ModelStore::prototxtFor(const std::string &Id) const {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Known.find(Id);
    if (It != Known.end())
      return It->second;
  }
  // Shared-store fallback: a peer daemon may have persisted the model.
  // Read-only — registration (if wanted) is tryRestore()'s job.
  if (!Options.Dir.empty() && isValidModelId(Id)) {
    Result<std::string> Text = readFile(modelDir(Id) + "/model.prototxt");
    if (Text)
      return Text.take();
  }
  return Error::failure("no uploaded model '" + Id + "'");
}

bool ModelStore::has(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Known.count(Id) != 0;
}

size_t ModelStore::count() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Known.size();
}

size_t ModelStore::loadFromDisk(const ArtifactStore *Placement) {
  if (Options.Dir.empty())
    return 0;
  std::error_code FsError;
  if (!std::filesystem::is_directory(Options.Dir, FsError))
    return 0;

  // Deterministic registration order (directory iteration order is not).
  std::vector<std::string> Ids;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Options.Dir, FsError)) {
    if (!Entry.is_directory())
      continue;
    const std::string Id = Entry.path().filename().string();
    if (isValidModelId(Id))
      Ids.push_back(Id);
  }
  std::sort(Ids.begin(), Ids.end());

  size_t Restored = 0;
  for (const std::string &Id : Ids) {
    // Placement-aware startup: in a shared store each daemon eagerly
    // restores (and compiles/warms) only the models rendezvous hashing
    // assigns to it; everything else loads lazily on first use. Any
    // single daemon — or one whose peers all died — still owns every
    // key, so nothing is ever unreachable.
    if (Placement && Placement->enabled() &&
        !Placement->ownsLocally("model/" + Id)) {
      if (Log)
        Log->bump("serve.models.restore_deferred");
      continue;
    }
    Result<std::string> Prototxt =
        readFile(modelDir(Id) + "/model.prototxt");
    Result<std::string> Weights = readFile(modelDir(Id) + "/weights.ck");
    UploadOutcome Out =
        !Prototxt ? reject(400, Prototxt.message())
        : !Weights
            ? reject(400, Weights.message())
            : ingest(Id, *Prototxt, *Weights, 7, "restored upload");
    if (Out.Status == 201) {
      ++Restored;
      if (Log)
        Log->bump("serve.models.restored");
    } else if (Log) {
      // A corrupt entry is skipped, never fatal: the daemon still comes
      // up with every healthy model.
      Log->bump("serve.models.restore_failed");
    }
  }
  return Restored;
}

bool ModelStore::tryRestore(const std::string &Id) {
  if (Options.Dir.empty() || !isValidModelId(Id))
    return false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Known.count(Id))
      return true;
  }
  Result<std::string> Prototxt = readFile(modelDir(Id) + "/model.prototxt");
  Result<std::string> Weights = readFile(modelDir(Id) + "/weights.ck");
  if (!Prototxt || !Weights)
    return false;
  UploadOutcome Out = ingest(Id, *Prototxt, *Weights, 7, "restored upload");
  if (Out.Status == 201) {
    if (Log)
      Log->bump("serve.models.restored");
    return true;
  }
  // Two request threads can race to restore the same model; the loser's
  // registry add comes back 409, and "already registered" is a success
  // for the caller's purposes.
  if (Registry && Registry->find(Id)) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Known.count(Id))
      Known[Id] = *Prototxt;
    return true;
  }
  if (Log)
    Log->bump("serve.models.restore_failed");
  return false;
}
