//===- serve/ArtifactStore.cpp ---------------------------------------------===//

#include "src/serve/ArtifactStore.h"

#include "src/support/File.h"
#include "src/support/Hash.h"
#include "src/support/Json.h"
#include "src/support/Lease.h"
#include "src/support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <filesystem>

#include <unistd.h>

using namespace wootz;
using namespace wootz::serve;

namespace fs = std::filesystem;

ArtifactStore::ArtifactStore(ArtifactStoreOptions Options, RunLog *Log)
    : Options(std::move(Options)), Log(Log) {
  if (!enabled())
    return;
  if (this->Options.ProcessName.empty()) {
    // Unique per store *instance*, not just per OS process: benches and
    // tests run several daemons inside one process.
    static std::atomic<uint64_t> Serial{0};
    this->Options.ProcessName = "proc-" + std::to_string(::getpid()) +
                                "-" +
                                std::to_string(Serial.fetch_add(1));
  }
  std::error_code Ignored;
  fs::create_directories(this->Options.Root, Ignored);
}

ArtifactStore::~ArtifactStore() { unregisterProcess(); }

CacheConfig ArtifactStore::blockCacheConfig() const {
  CacheConfig Out;
  Out.Directory = blockCacheDir();
  Out.MaxBytes = Options.BlockCacheMaxBytes;
  return Out;
}

Error ArtifactStore::heartbeat() {
  if (!enabled())
    return Error::success();
  JsonObject Beat;
  Beat.field("name", Options.ProcessName)
      .field("expires_unix_ms",
             static_cast<int64_t>(
                 unixMillisNow() +
                 static_cast<int64_t>(Options.ProcessTtlSeconds * 1e3)));
  Error Written = writeFileAtomic(heartbeatPath(), Beat.str() + "\n");
  if (!Written)
    Registered = true;
  return Written;
}

void ArtifactStore::unregisterProcess() {
  if (!enabled() || !Registered)
    return;
  std::error_code Ignored;
  fs::remove(heartbeatPath(), Ignored);
  Registered = false;
}

std::vector<std::string> ArtifactStore::activeProcesses() const {
  std::vector<std::string> Out;
  if (!enabled())
    return Out;
  const int64_t NowMs = unixMillisNow();
  std::error_code FsError;
  for (const auto &Entry :
       fs::directory_iterator(registryDir(), FsError)) {
    if (!Entry.is_regular_file())
      continue;
    if (Entry.path().extension() != ".json")
      continue;
    Result<std::string> Text = readFile(Entry.path().string());
    if (!Text)
      continue;
    Result<std::map<std::string, std::string>> Beat =
        parseFlatJsonObject(trim(*Text));
    if (!Beat)
      continue;
    auto NameIt = Beat->find("name");
    auto ExpiresIt = Beat->find("expires_unix_ms");
    if (NameIt == Beat->end() || ExpiresIt == Beat->end())
      continue;
    Result<long long> Expires = parseInteger(ExpiresIt->second);
    if (!Expires || *Expires <= NowMs)
      continue; // Expired heartbeat: the process is presumed dead.
    Out.push_back(NameIt->second);
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::string ArtifactStore::ownerOf(const std::string &Key) const {
  const std::vector<std::string> Active = activeProcesses();
  if (Active.empty())
    return std::string();
  // Rendezvous hashing: score every (key, process) pair with the same
  // deterministic hash everywhere; the highest score wins, ties broken
  // by name order (Active is sorted, and > keeps the first maximum).
  std::string Winner;
  uint64_t Best = 0;
  for (const std::string &Name : Active) {
    const uint64_t Score =
        Fnv1a().mix(std::string_view(Key)).mix(uint64_t(0x9e3779b9u))
            .mix(std::string_view(Name))
            .digest();
    if (Winner.empty() || Score > Best) {
      Winner = Name;
      Best = Score;
    }
  }
  return Winner;
}

bool ArtifactStore::ownsLocally(const std::string &Key) const {
  if (!enabled() || !Registered)
    return true;
  const std::string Owner = ownerOf(Key);
  return Owner.empty() || Owner == Options.ProcessName;
}

ArtifactUsage ArtifactStore::usage(const std::string &Dir) {
  ArtifactUsage Out;
  if (Dir.empty())
    return Out;
  std::error_code FsError;
  for (const auto &Entry : fs::directory_iterator(Dir, FsError)) {
    if (!Entry.is_regular_file(FsError))
      continue;
    ++Out.Entries;
    Out.Bytes += static_cast<uint64_t>(Entry.file_size(FsError));
  }
  return Out;
}
