//===- serve/JobQueue.h - Durable, claimable job store ---------------------===//
//
// Part of the Wootz reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The queueing half of the serve job path, split out of JobManager so a
/// job can run on any process that can see the store. A JobQueue is a
/// table of JobRecords — the validated submission body plus the job's
/// life-cycle state and result summary — with two backing modes:
///
///  - In-memory (Options.Dir empty): exactly the old single-daemon
///    behavior. Submissions queue FIFO, one process claims and runs.
///
///  - Durable (Options.Dir set, normally ArtifactStore::jobsDir()): every
///    job also lives on disk as an atomic-rename JSONL *journal*
///    ("<id>.jsonl": one spec record, then one record per state
///    transition), an *owner lease* ("<id>.lease", see support/Lease.h)
///    acquired by the claiming executor and renewed by heartbeat, and an
///    optional *cancel marker* ("<id>.cancel"). Any process sharing the
///    directory can submit, claim, observe, or cancel; a claim is
///    exclusive via the lease, and a job whose owner died (journal says
///    running, lease expired) is reclaimed back to queued by whichever
///    live process polls it first.
///
/// The queue holds no execution state — no threads, tokens, or RunLogs;
/// that is serve/JobExecutor.h. It is the single source of truth for
/// "what jobs exist and where they are in their life cycle".
///
//===----------------------------------------------------------------------===//

#ifndef WOOTZ_SERVE_JOBQUEUE_H
#define WOOTZ_SERVE_JOBQUEUE_H

#include "src/runtime/RunLog.h"
#include "src/support/Error.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace wootz {
namespace serve {

/// Job life cycle. Queued -> Running -> {Done, Failed, Cancelled};
/// Queued -> Cancelled directly when cancelled before starting; a
/// Running job whose owner's lease expires goes back to Queued
/// (reclaim) and is re-run by a live process.
enum class JobState { Queued, Running, Done, Failed, Cancelled };

const char *jobStateName(JobState State);

/// Queue knobs.
struct JobQueueOptions {
  /// Journal directory (durable mode); empty keeps the queue in memory.
  std::string Dir;
  /// Queued-job cap; submissions beyond it fail (the facade's 429).
  size_t MaxQueuedJobs = 8;
  /// Claim-lease TTL. An executor heartbeats at a fraction of this; a
  /// running job whose lease is this stale is presumed orphaned.
  double LeaseSeconds = 30.0;
  /// Claim identity; empty generates a per-instance unique name.
  std::string Owner;
};

/// One job as the queue sees it: submission body, life-cycle state, and
/// the result summary the HTTP surface renders.
struct JobRecord {
  std::string Id;
  /// The validated flat-JSON submission fields, verbatim. Execution
  /// re-parses them (parseJobSpec), which is what lets a *different
  /// process* run a job it never saw submitted.
  std::map<std::string, std::string> Body;

  JobState State = JobState::Queued;
  std::string Message;
  std::string Owner;  ///< Executor running it ("" while queued).
  bool Local = true;  ///< Submitted through this queue instance.
  int Reclaims = 0;   ///< Times the job was reclaimed from a dead owner.

  // Queue-clock seconds (JobQueue::now()), matching the old JSON shape.
  double SubmitAt = 0.0, StartAt = 0.0, EndAt = 0.0;

  // Wall-clock stamps recovered from the journal (0 = not recorded).
  // Imports map them into the local queue clock so an observer daemon
  // reports a peer-run job's real timings, not its own import times.
  int64_t SubmittedUnixMs = 0, StartedUnixMs = 0, FinishedUnixMs = 0;

  // Listing surface, known at submit time.
  std::string StrategyName = "fixed";
  std::string CriterionName = "l1";
  std::string ModelName;
  size_t SubspaceConfigs = 0;

  // Result summary, set by the finishing executor.
  int ConfigsEvaluated = 0;
  int Rounds = 0;
  int Proposals = 0;
  int WinnerIndex = -1;
  double WinnerAccuracy = 0.0;
  double WinnerSizeFraction = 0.0;
  double FullAccuracy = 0.0;
  std::string ModelId;

  bool terminal() const {
    return State == JobState::Done || State == JobState::Failed ||
           State == JobState::Cancelled;
  }
};

/// The job table. Thread-safe; in durable mode also multi-process-safe
/// (atomic journal writes, lease-gated claims).
class JobQueue {
public:
  explicit JobQueue(JobQueueOptions Options, RunLog *Log = nullptr);

  JobQueue(const JobQueue &) = delete;
  JobQueue &operator=(const JobQueue &) = delete;

  bool durable() const { return !Options.Dir.empty(); }
  const std::string &owner() const { return Options.Owner; }
  const std::string &dir() const { return Options.Dir; }
  double leaseMillis() const { return Options.LeaseSeconds * 1e3; }

  /// Seconds on the queue's clock (what the JSON timestamps use).
  double now() const { return Clock.now(); }

  /// Called (outside the queue lock) whenever work may have become
  /// claimable — the executor parks its workers on this.
  void setNotifier(std::function<void()> Fn);

  /// Admits one validated job. Fails when the queued count is at the
  /// cap ("job queue is full ..."). \p ModelName / \p StrategyName /
  /// \p CriterionName / \p SubspaceConfigs fill the listing surface.
  Result<std::string> submit(std::map<std::string, std::string> Body,
                             std::string ModelName,
                             std::string StrategyName,
                             std::string CriterionName,
                             size_t SubspaceConfigs);

  /// Claims the oldest claimable job: flips it Queued -> Running under
  /// this queue's owner (acquiring the on-disk lease in durable mode)
  /// and returns a copy for execution. nullopt when nothing claimable.
  std::optional<JobRecord> claim();

  /// Renews the lease of every job this owner is running (heartbeat).
  void renewLeases();

  /// Terminal transition for a job this owner ran. \p R carries the
  /// result summary fields; the journal gets the terminal record and
  /// the lease is released.
  void finish(const JobRecord &R, JobState Terminal, std::string Message);

  /// Cancels \p Id: a still-queued job terminates immediately; a
  /// running one gets a durable cancel marker (its executor observes it
  /// via cancelRequested() — in-process executors are told directly by
  /// the facade). Returns the post-request state.
  Result<JobState> requestCancel(const std::string &Id);

  /// True when a durable cancel marker exists for \p Id.
  bool cancelRequested(const std::string &Id) const;

  /// Durable-mode maintenance (the executor's poll thread): imports
  /// journals other processes wrote, refreshes the state of jobs other
  /// owners are running, applies cancel markers to queued jobs, and
  /// reclaims running jobs whose lease expired. Returns true when new
  /// work became claimable.
  bool poll();

  // Introspection (copies, submission-/discovery-ordered).
  std::vector<JobRecord> snapshot() const;
  Result<JobRecord> get(const std::string &Id) const;
  size_t queuedCount() const;
  size_t runningCount() const;
  std::map<std::string, int64_t> stateCounts() const;
  /// True when no job is queued or running (the drain condition).
  bool allSettled() const;

private:
  struct Entry {
    JobRecord Record;
    std::vector<std::string> Journal; ///< Rendered JSONL lines.
  };

  std::string journalPath(const std::string &Id) const;
  std::string leasePath(const std::string &Id) const;
  std::string cancelPath(const std::string &Id) const;
  /// Appends \p Line to the entry's journal and atomically rewrites the
  /// file (durable mode only). Best-effort: a full disk degrades to an
  /// in-memory queue, never a crash.
  void appendJournalLocked(Entry &E, const std::string &Line);
  std::string specLineLocked(const Entry &E) const;
  std::string stateLineLocked(const Entry &E) const;
  /// Parses a journal's lines into an Entry (foreign import / refresh).
  static Result<JobRecord> parseJournal(const std::string &Id,
                                        const std::string &Text);
  size_t queuedCountLocked() const;
  void notify();

  JobQueueOptions Options;
  RunLog *Log = nullptr;
  RunLog Clock; ///< Timestamps only (now()).

  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Entry>> Jobs;
  std::vector<std::string> Order; ///< Submission/discovery order.
  uint64_t NextId = 1;
  std::function<void()> Notifier;
};

} // namespace serve
} // namespace wootz

#endif // WOOTZ_SERVE_JOBQUEUE_H
