//===- serve/JobManager.cpp ------------------------------------------------===//

#include "src/serve/JobManager.h"

#include "src/data/Synthetic.h"
#include "src/explore/strategy/Driver.h"
#include "src/plan/Plan.h"
#include "src/serve/ModelStore.h"
#include "src/support/File.h"
#include "src/support/Json.h"
#include "src/support/StringUtils.h"

#include <algorithm>

using namespace wootz;
using namespace wootz::serve;

const char *wootz::serve::jobStateName(JobState State) {
  switch (State) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Done:
    return "done";
  case JobState::Failed:
    return "failed";
  case JobState::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

JobManager::JobManager(JobManagerOptions Options, ModelRegistry *Registry,
                       RunLog *Log, const ModelStore *Store)
    : Options(Options), Registry(Registry), Log(Log), Store(Store) {
  const int Count = std::max(1, Options.Workers);
  Workers.reserve(static_cast<size_t>(Count));
  for (int I = 0; I < Count; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

JobManager::~JobManager() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
    WorkReady.notify_all();
  }
  for (std::thread &T : Workers)
    T.join();
}

//===----------------------------------------------------------------------===//
// Submission
//===----------------------------------------------------------------------===//

namespace {

/// "true"/"false" (the tokens the flat parser hands back for JSON
/// booleans) with a default for absent keys.
Result<bool> boolField(const std::map<std::string, std::string> &Body,
                       const std::string &Key, bool Default) {
  auto It = Body.find(Key);
  if (It == Body.end())
    return Default;
  if (It->second == "true")
    return true;
  if (It->second == "false")
    return false;
  return Error::failure("field '" + Key + "' must be true or false");
}

Result<long long>
integerField(const std::map<std::string, std::string> &Body,
             const std::string &Key, long long Default) {
  auto It = Body.find(Key);
  if (It == Body.end())
    return Default;
  Result<long long> Value = parseInteger(It->second);
  if (!Value)
    return Error::failure("field '" + Key + "' must be an integer");
  return *Value;
}

Result<double> doubleField(const std::map<std::string, std::string> &Body,
                           const std::string &Key, double Default) {
  auto It = Body.find(Key);
  if (It == Body.end())
    return Default;
  Result<double> Value = parseDouble(It->second);
  if (!Value)
    return Error::failure("field '" + Key + "' must be a number");
  return *Value;
}

SubmitOutcome badRequest(std::string Message) {
  SubmitOutcome Out;
  Out.Status = 400;
  Out.Error = std::move(Message);
  return Out;
}

} // namespace

SubmitOutcome
JobManager::submit(const std::map<std::string, std::string> &Body) {
  auto J = std::make_unique<Job>();

  for (const char *Key : {"model", "subspace", "meta", "objective"})
    if (!Body.count(Key))
      return badRequest(std::string("missing required field '") + Key +
                        "'");

  // "model" is either inline Prototxt or the id of an uploaded model;
  // ids are checked first (a bare id is never valid Prototxt, so the two
  // cannot collide).
  std::string ModelText = Body.at("model");
  if (Store) {
    Result<std::string> Stored = Store->prototxtFor(ModelText);
    if (Stored)
      ModelText = Stored.take();
  }
  Result<ModelSpec> Spec = parseModelSpec(ModelText);
  if (!Spec)
    return badRequest("model: " + Spec.message());
  J->Spec = Spec.take();
  Result<std::vector<PruneConfig>> Subspace =
      parseSubspaceSpec(Body.at("subspace"));
  if (!Subspace)
    return badRequest("subspace: " + Subspace.message());
  J->Subspace = Subspace.take();
  Result<TrainMeta> Meta = parseTrainMeta(Body.at("meta"));
  if (!Meta)
    return badRequest("meta: " + Meta.message());
  J->Meta = Meta.take();
  Result<PruningObjective> Objective =
      parseObjective(Body.at("objective"));
  if (!Objective)
    return badRequest("objective: " + Objective.message());
  J->Objective = Objective.take();

  // Subspace rates must fit the model: every configuration carries one
  // rate per convolution module.
  for (const PruneConfig &Config : J->Subspace)
    if (static_cast<int>(Config.size()) != J->Spec.moduleCount())
      return badRequest(
          "subspace configurations carry " +
          std::to_string(Config.size()) + " rates but the model has " +
          std::to_string(J->Spec.moduleCount()) + " modules");

  Result<bool> Composability = boolField(Body, "composability", true);
  if (!Composability)
    return badRequest(Composability.message());
  J->UseComposability = *Composability;
  Result<bool> Identifier = boolField(Body, "identifier", true);
  if (!Identifier)
    return badRequest(Identifier.message());
  J->UseIdentifier = *Identifier;

  if (auto It = Body.find("schedule"); It != Body.end()) {
    if (It->second == "overlap")
      J->Schedule = PipelineSchedule::Overlap;
    else if (It->second == "evalonly")
      J->Schedule = PipelineSchedule::EvalOnly;
    else
      return badRequest("schedule must be \"overlap\" or \"evalonly\"");
  }

  Result<long long> PipelineWorkers = integerField(Body, "workers", 2);
  if (!PipelineWorkers)
    return badRequest(PipelineWorkers.message());
  if (*PipelineWorkers < 0 || *PipelineWorkers > 64)
    return badRequest("workers must be in [0, 64]");
  J->PipelineWorkers = static_cast<int>(*PipelineWorkers);

  Result<double> DistillAlpha = doubleField(Body, "distill_alpha", 0.0);
  if (!DistillAlpha)
    return badRequest(DistillAlpha.message());
  J->DistillAlpha = static_cast<float>(*DistillAlpha);
  // Any schedule composes with distillation (concurrent fine-tunes give
  // the shared teacher private execution contexts); only the weight's
  // range needs validating.
  if (J->DistillAlpha < 0.0f || J->DistillAlpha > 1.0f)
    return badRequest("distill_alpha must be in [0, 1]");

  // Unknown strategy/criterion names are a 400 listing the valid names,
  // never a silent fallback to the default.
  if (auto It = Body.find("strategy"); It != Body.end()) {
    Result<StrategyKind> Kind = parseStrategyKind(It->second);
    if (!Kind)
      return badRequest("strategy: " + Kind.message());
    J->Strategy = *Kind;
  }
  if (auto It = Body.find("criterion"); It != Body.end()) {
    Result<ImportanceCriterion> Criterion =
        parseImportanceCriterion(It->second);
    if (!Criterion)
      return badRequest("criterion: " + Criterion.message());
    J->Criterion = *Criterion;
  }

  Result<long long> MaxRounds = integerField(Body, "max_rounds", 24);
  if (!MaxRounds)
    return badRequest(MaxRounds.message());
  if (*MaxRounds < 1 || *MaxRounds > 256)
    return badRequest("max_rounds must be in [1, 256]");
  J->MaxRounds = static_cast<int>(*MaxRounds);

  Result<double> Margin = doubleField(Body, "accuracy_margin", 0.02);
  if (!Margin)
    return badRequest(Margin.message());
  if (*Margin < 0.0 || *Margin > 0.5)
    return badRequest("accuracy_margin must be in [0, 0.5]");
  J->AccuracyMargin = *Margin;

  Result<long long> Seed = integerField(Body, "seed", 7);
  if (!Seed)
    return badRequest(Seed.message());
  J->Seed = static_cast<uint64_t>(*Seed);

  Result<double> Scale =
      doubleField(Body, "dataset_scale", Options.DatasetScale);
  if (!Scale)
    return badRequest(Scale.message());
  if (*Scale <= 0.0 || *Scale > 4.0)
    return badRequest("dataset_scale must be in (0, 4]");
  J->DatasetScale = *Scale;

  std::lock_guard<std::mutex> Lock(Mutex);
  if (Draining || Stopping) {
    SubmitOutcome Out;
    Out.Status = 503;
    Out.Error = "server is draining";
    return Out;
  }
  if (Queue.size() >= Options.MaxQueuedJobs) {
    SubmitOutcome Out;
    Out.Status = 429;
    Out.Error = "job queue is full (" +
                std::to_string(Options.MaxQueuedJobs) + " queued)";
    if (Log)
      Log->bump("serve.jobs.rejected");
    return Out;
  }
  J->Id = "job-" + std::to_string(NextId++);
  J->SubmitAt = Clock.now();
  Job *Raw = J.get();
  Order.push_back(J->Id);
  Jobs.emplace(J->Id, std::move(J));
  Queue.push_back(Raw);
  WorkReady.notify_one();
  if (Log)
    Log->bump("serve.jobs.submitted");

  SubmitOutcome Out;
  Out.Status = 202;
  Out.Id = Raw->Id;
  return Out;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void JobManager::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [&] { return Stopping || !Queue.empty(); });
    if (Queue.empty()) {
      if (Stopping)
        return;
      continue;
    }
    Job *J = Queue.front();
    Queue.pop_front();
    if (J->Token.cancelled()) {
      J->State = JobState::Cancelled;
      J->Message = "cancelled while queued";
      J->EndAt = Clock.now();
      JobSettled.notify_all();
      if (Log)
        Log->bump("serve.jobs.cancelled");
      continue;
    }
    J->State = JobState::Running;
    J->StartAt = Clock.now();
    ++Running;
    Lock.unlock();
    runJob(*J);
    Lock.lock();
  }
}

void JobManager::finishJob(Job &J, JobState Terminal, std::string Message) {
  // Persist the run artifacts before flipping the state, so a poller
  // that sees "done" can already read them.
  if (!Options.ArtifactDir.empty()) {
    const std::string Dir = Options.ArtifactDir + "/" + J.Id;
    Error TelemetryError = writeFileAtomic(
        Dir + "/telemetry.jsonl", telemetryJsonl(J.Log.snapshot()));
    // Artifacts are best-effort: a full disk must not fail the job.
    (void)static_cast<bool>(TelemetryError);
    JsonObject Summary;
    Summary.field("id", J.Id)
        .field("state", jobStateName(Terminal))
        .field("message", Message)
        .field("strategy", strategyKindName(J.Strategy))
        .field("criterion", importanceCriterionName(J.Criterion))
        .field("configs_evaluated", J.ConfigsEvaluated)
        .field("winner_index", J.WinnerIndex)
        .field("winner_accuracy", J.WinnerAccuracy, 6)
        .field("winner_size_fraction", J.WinnerSizeFraction, 6)
        .field("full_accuracy", J.FullAccuracy, 6)
        .field("model", J.ModelId);
    Error SummaryError =
        writeFileAtomic(Dir + "/result.json", Summary.str() + "\n");
    (void)static_cast<bool>(SummaryError);
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  J.State = Terminal;
  J.Message = std::move(Message);
  J.EndAt = Clock.now();
  --Running;
  JobSettled.notify_all();
  if (Log)
    Log->bump(Terminal == JobState::Done
                  ? "serve.jobs.completed"
                  : (Terminal == JobState::Cancelled
                         ? "serve.jobs.cancelled"
                         : "serve.jobs.failed"));
}

void JobManager::runJob(Job &J) {
  // The dataset: the CUB200 analogue sized to the model's class count,
  // deterministic in the job seed.
  const Dataset Data = generateSynthetic([&] {
    SyntheticSpec DataSpec = standardDatasetSpecs(J.DatasetScale)[1];
    DataSpec.Classes = J.Spec.Layers.back().NumOutput;
    DataSpec.Height = J.Spec.InputHeight;
    DataSpec.Width = J.Spec.InputWidth;
    DataSpec.Seed = J.Seed * 2654435761u + 1;
    return DataSpec;
  }());

  PipelineOptions Options;
  Options.UseComposability = J.UseComposability;
  Options.UseIdentifier = J.UseIdentifier;
  Options.Schedule = J.Schedule;
  Options.Workers = J.PipelineWorkers;
  Options.DistillAlpha = J.DistillAlpha;
  Options.CacheDir = this->Options.CacheDir;
  Options.BlockCacheConfig.Directory = this->Options.BlockCacheDir;
  Options.CancelObjective =
      J.Schedule == PipelineSchedule::Overlap ? &J.Objective : nullptr;
  Options.Cancel = &J.Token;
  Options.Log = &J.Log;
  Options.KeepNetworks = true;
  Options.Criterion = J.Criterion;

  Rng Generator(J.Seed);

  // Either the classic fixed-subspace sweep or a strategy-driven round
  // loop; both land in Outcome plus a winner storage index.
  PipelineResult Outcome;
  int WinnerStorage = -1;  ///< Index into Outcome.Evaluations.
  int WinnerPosition = -1; ///< Exploration position reported to clients.
  if (J.Strategy == StrategyKind::Fixed) {
    Result<PipelineResult> Run = runPruningPipeline(
        J.Spec, Data, J.Subspace, J.Meta, Options, Generator);
    if (!Run) {
      if (J.Token.cancelled()) {
        finishJob(J, JobState::Cancelled, "cancelled while running");
        return;
      }
      finishJob(J, JobState::Failed, Run.message());
      return;
    }
    Outcome = Run.take();
    const ExplorationSummary Summary =
        summarizeMeasuredRun(Outcome, J.Objective);
    J.ConfigsEvaluated = Summary.ConfigsEvaluated;
    J.WinnerSizeFraction = Summary.WinnerSizeFraction;
    WinnerPosition = Summary.WinnerIndex;
    if (Summary.WinnerIndex >= 0) {
      // Exploration position -> storage index (storage ascends model
      // size; a max-Accuracy objective walks it backwards).
      const size_t Count = Outcome.Evaluations.size();
      WinnerStorage = static_cast<int>(
          J.Objective.exploreSmallestFirst()
              ? static_cast<size_t>(Summary.WinnerIndex)
              : Count - 1 - static_cast<size_t>(Summary.WinnerIndex));
    }
  } else {
    StrategyKnobs Knobs;
    Knobs.Rates = subspaceRateAlphabet(J.Subspace);
    Knobs.MaxRounds = J.MaxRounds;
    Knobs.AccuracyMargin = J.AccuracyMargin;
    Result<std::unique_ptr<ExplorationStrategy>> Strategy =
        makeStrategy(J.Strategy, J.Spec, J.Subspace, J.Objective, Knobs);
    if (!Strategy) {
      finishJob(J, JobState::Failed, Strategy.message());
      return;
    }
    Result<StrategyRunResult> Run = runStrategyExploration(
        J.Spec, Data, **Strategy, J.Meta, Options, J.Objective, Generator);
    if (!Run) {
      if (J.Token.cancelled()) {
        finishJob(J, JobState::Cancelled, "cancelled while running");
        return;
      }
      finishJob(J, JobState::Failed, Run.message());
      return;
    }
    J.Rounds = Run->Rounds;
    J.Proposals = Run->Proposals;
    Outcome = std::move(Run->Run);
    for (const EvaluatedConfig &E : Outcome.Evaluations)
      if (!E.Cancelled)
        ++J.ConfigsEvaluated;
    // Strategy results are stored in proposal order, so the storage
    // index is also the position clients see.
    WinnerStorage = Run->WinnerIndex;
    WinnerPosition = Run->WinnerIndex;
    if (WinnerStorage >= 0)
      J.WinnerSizeFraction =
          Outcome.Evaluations[static_cast<size_t>(WinnerStorage)]
              .SizeFraction;
  }

  J.FullAccuracy = Outcome.FullAccuracy;
  J.WinnerIndex = WinnerPosition;

  if (WinnerStorage >= 0) {
    const EvaluatedConfig &Winner =
        Outcome.Evaluations[static_cast<size_t>(WinnerStorage)];
    J.WinnerAccuracy = Winner.FinalAccuracy;
    // Freeze the winner into a static inference plan and persist the
    // compiler's decisions (step list, fusions, arena layout) next to
    // result.json. Best-effort like every other artifact; a graph the
    // plan compiler cannot lower simply skips the file.
    if (!this->Options.ArtifactDir.empty() && Winner.Network) {
      Result<ExecPlan> Frozen = ExecPlan::compile(
          Winner.Network->Network, Winner.Network->InputNode,
          Winner.Network->LogitsNode, J.Spec.InputChannels,
          J.Spec.InputHeight, J.Spec.InputWidth);
      if (Frozen) {
        Error PlanError = writeFileAtomic(
            this->Options.ArtifactDir + "/" + J.Id + "/plan.json",
            Frozen->describeJson() + "\n");
        (void)static_cast<bool>(PlanError);
        J.Log.bump("serve.jobs.plan_frozen");
      }
    }
    if (Registry && Winner.Network) {
      Error AddError = Registry->add(
          J.Id, Winner.Network, J.Spec.InputChannels, J.Spec.InputHeight,
          J.Spec.InputWidth, J.Spec.Layers.back().NumOutput,
          "job " + J.Id + " winner (size " +
              formatDouble(100.0 * Winner.SizeFraction, 1) + "%, acc " +
              formatDouble(Winner.FinalAccuracy, 3) + ")");
      if (!AddError)
        J.ModelId = J.Id;
    }
    finishJob(J, JobState::Done,
              "winner at exploration position " +
                  std::to_string(WinnerPosition));
    return;
  }
  finishJob(J, JobState::Done, "no configuration met the objective");
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

std::string JobManager::jobJsonLocked(const Job &J,
                                      bool WithCounters) const {
  JsonObject Out;
  Out.field("id", J.Id)
      .field("state", jobStateName(J.State))
      .field("configs", J.Subspace.size())
      .field("strategy", strategyKindName(J.Strategy))
      .field("criterion", importanceCriterionName(J.Criterion))
      .field("model_name", J.Spec.Name)
      .field("submitted_at", J.SubmitAt, 3);
  if (J.State != JobState::Queued)
    Out.field("started_at", J.StartAt, 3);
  const bool Terminal = J.State == JobState::Done ||
                        J.State == JobState::Failed ||
                        J.State == JobState::Cancelled;
  if (Terminal) {
    Out.field("finished_at", J.EndAt, 3)
        .field("seconds", J.EndAt - J.StartAt, 3);
  }
  if (!J.Message.empty())
    Out.field("message", J.Message);
  if (J.State == JobState::Done) {
    if (J.Strategy != StrategyKind::Fixed)
      Out.field("rounds", J.Rounds).field("proposals", J.Proposals);
    Out.field("configs_evaluated", J.ConfigsEvaluated)
        .field("winner_index", J.WinnerIndex)
        .field("winner_accuracy", J.WinnerAccuracy, 6)
        .field("winner_size_fraction", J.WinnerSizeFraction, 6)
        .field("full_accuracy", J.FullAccuracy, 6)
        .field("model", J.ModelId);
  }
  if (WithCounters) {
    JsonObject Counters;
    for (const auto &[Name, Value] : J.Log.counters())
      Counters.field(Name, Value);
    Out.fieldRaw("counters", Counters.str());
  }
  return Out.str();
}

Result<std::string> JobManager::statusJson(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return Error::failure("no such job '" + Id + "'");
  return jobJsonLocked(*It->second, /*WithCounters=*/true) + "\n";
}

std::string JobManager::listJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Items;
  for (const std::string &Id : Order) {
    if (!Items.empty())
      Items += ",";
    Items += jobJsonLocked(*Jobs.at(Id), /*WithCounters=*/false);
  }
  JsonObject Out;
  Out.fieldRaw("jobs", "[" + Items + "]")
      .field("queued", Queue.size())
      .field("running", Running);
  return Out.str() + "\n";
}

Result<std::string> JobManager::cancel(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Jobs.find(Id);
  if (It == Jobs.end())
    return Error::failure("no such job '" + Id + "'");
  Job &J = *It->second;
  J.Token.cancel();
  if (J.State == JobState::Queued) {
    // Remove from the queue so a worker never picks it up.
    Queue.erase(std::remove(Queue.begin(), Queue.end(), &J), Queue.end());
    J.State = JobState::Cancelled;
    J.Message = "cancelled while queued";
    J.EndAt = Clock.now();
    JobSettled.notify_all();
    if (Log)
      Log->bump("serve.jobs.cancelled");
  }
  // Running jobs flip to Cancelled at their next task boundary; terminal
  // jobs stay terminal (cancel is then a no-op).
  return std::string(jobStateName(J.State));
}

void JobManager::drain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Draining = true;
  JobSettled.wait(Lock, [&] { return Queue.empty() && Running == 0; });
}

std::map<std::string, int64_t> JobManager::jobCounters() const {
  std::vector<const RunLog *> Logs;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const std::string &Id : Order)
      Logs.push_back(&Jobs.at(Id)->Log);
  }
  std::map<std::string, int64_t> Out;
  for (const RunLog *JobLog : Logs)
    for (const auto &[Name, Value] : JobLog->counters())
      Out[Name] += Value;
  return Out;
}

size_t JobManager::queuedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queue.size();
}

size_t JobManager::runningCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Running;
}

std::map<std::string, int64_t> JobManager::stateCounts() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<std::string, int64_t> Out;
  for (const auto &[Id, J] : Jobs)
    ++Out[jobStateName(J->State)];
  return Out;
}
