//===- serve/JobManager.cpp ------------------------------------------------===//

#include "src/serve/JobManager.h"

#include "src/serve/ArtifactStore.h"
#include "src/serve/ModelStore.h"
#include "src/support/Json.h"

#include <algorithm>
#include <thread>

using namespace wootz;
using namespace wootz::serve;

namespace {

JobQueueOptions queueOptionsFor(const JobManagerOptions &Options) {
  JobQueueOptions Out;
  Out.Dir = Options.QueueDir;
  Out.MaxQueuedJobs = Options.MaxQueuedJobs;
  Out.LeaseSeconds = Options.LeaseSeconds;
  Out.Owner = Options.Owner;
  return Out;
}

} // namespace

JobManager::JobManager(JobManagerOptions Options, ModelRegistry *Registry,
                       RunLog *Log, const ModelStore *Store,
                       ArtifactStore *Artifacts)
    : Options(Options), Log(Log), Store(Store),
      Queue(queueOptionsFor(Options), Log) {
  // Worker validation mirrors the runtime convention: 0 means one
  // executor per hardware thread, negative is a configuration error
  // (reported via optionsError(); construction degrades to one worker
  // so the object stays usable in tests that probe the error).
  int Workers = Options.Workers;
  if (Workers < 0) {
    OptionsError = "JobManagerOptions::Workers must be non-negative "
                   "(0 means one worker per hardware thread)";
    Workers = 1;
  } else if (Workers == 0) {
    Workers =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }

  JobExecutorOptions ExecOptions;
  ExecOptions.Workers = Workers;
  ExecOptions.BlockCacheDir = Options.BlockCacheDir;
  ExecOptions.BlockCacheMaxBytes = Options.BlockCacheMaxBytes;
  ExecOptions.CacheDir = Options.CacheDir;
  ExecOptions.ArtifactDir = Options.ArtifactDir;
  ExecOptions.DatasetScale = Options.DatasetScale;
  ExecOptions.ExecuteJobs = Options.ExecuteJobs;
  ExecOptions.PollSeconds = Options.PollSeconds;
  Executor = std::make_unique<JobExecutor>(ExecOptions, Queue, Registry,
                                           Log, Store, Artifacts);
}

JobManager::~JobManager() = default;

SubmitOutcome
JobManager::submit(const std::map<std::string, std::string> &Body) {
  Result<JobSpec> Parsed = parseJobSpec(Body, Store, Options.DatasetScale);
  if (!Parsed) {
    SubmitOutcome Out;
    Out.Status = 400;
    Out.Error = Parsed.message();
    return Out;
  }
  if (Draining.load()) {
    SubmitOutcome Out;
    Out.Status = 503;
    Out.Error = "server is draining";
    return Out;
  }
  Result<std::string> Id = Queue.submit(
      Body, Parsed->Spec.Name, strategyKindName(Parsed->Strategy),
      importanceCriterionName(Parsed->Criterion), Parsed->Subspace.size());
  if (!Id) {
    SubmitOutcome Out;
    Out.Status = 429;
    Out.Error = Id.message();
    if (Log)
      Log->bump("serve.jobs.rejected");
    return Out;
  }
  SubmitOutcome Out;
  Out.Status = 202;
  Out.Id = Id.take();
  return Out;
}

std::string JobManager::jobJson(const JobRecord &R,
                                bool WithCounters) const {
  JsonObject Out;
  Out.field("id", R.Id)
      .field("state", jobStateName(R.State))
      .field("configs", R.SubspaceConfigs)
      .field("strategy", R.StrategyName)
      .field("criterion", R.CriterionName)
      .field("model_name", R.ModelName)
      .field("submitted_at", R.SubmitAt, 3);
  if (R.State != JobState::Queued)
    Out.field("started_at", R.StartAt, 3);
  if (R.terminal()) {
    Out.field("finished_at", R.EndAt, 3)
        .field("seconds", R.EndAt - R.StartAt, 3);
  }
  if (!R.Message.empty())
    Out.field("message", R.Message);
  if (R.State == JobState::Done) {
    if (R.StrategyName != "fixed")
      Out.field("rounds", R.Rounds).field("proposals", R.Proposals);
    Out.field("configs_evaluated", R.ConfigsEvaluated)
        .field("winner_index", R.WinnerIndex)
        .field("winner_accuracy", R.WinnerAccuracy, 6)
        .field("winner_size_fraction", R.WinnerSizeFraction, 6)
        .field("full_accuracy", R.FullAccuracy, 6)
        .field("model", R.ModelId);
  }
  if (WithCounters) {
    JsonObject Counters;
    for (const auto &[Name, Value] : Executor->countersFor(R.Id))
      Counters.field(Name, Value);
    Out.fieldRaw("counters", Counters.str());
  }
  return Out.str();
}

Result<std::string> JobManager::statusJson(const std::string &Id) const {
  Result<JobRecord> R = Queue.get(Id);
  if (!R)
    return Error::failure(R.message());
  return jobJson(*R, /*WithCounters=*/true) + "\n";
}

std::string JobManager::listJson() const {
  std::string Items;
  size_t Queued = 0, Running = 0;
  for (const JobRecord &R : Queue.snapshot()) {
    if (R.State == JobState::Queued)
      ++Queued;
    if (R.State == JobState::Running)
      ++Running;
    if (!Items.empty())
      Items += ",";
    Items += jobJson(R, /*WithCounters=*/false);
  }
  JsonObject Out;
  Out.fieldRaw("jobs", "[" + Items + "]")
      .field("queued", Queued)
      .field("running", Running);
  return Out.str() + "\n";
}

Result<std::string> JobManager::cancel(const std::string &Id) {
  // Flip the local token first (covers jobs this process is running),
  // then mark the queue — which flips still-queued jobs immediately and
  // leaves a durable marker for a remote owner.
  Executor->cancelLocal(Id);
  Result<JobState> After = Queue.requestCancel(Id);
  if (!After)
    return Error::failure(After.message());
  return std::string(jobStateName(*After));
}

void JobManager::drain() {
  Draining.store(true);
  Executor->waitSettled();
}

std::map<std::string, int64_t> JobManager::jobCounters() const {
  return Executor->aggregateCounters();
}

size_t JobManager::queuedCount() const { return Queue.queuedCount(); }

size_t JobManager::runningCount() const { return Queue.runningCount(); }

std::map<std::string, int64_t> JobManager::stateCounts() const {
  std::map<std::string, int64_t> Out;
  for (const auto &[Name, Count] : Queue.stateCounts())
    if (Count > 0)
      Out[Name] = Count;
  return Out;
}
