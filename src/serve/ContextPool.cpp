//===- serve/ContextPool.cpp -----------------------------------------------===//

#include "src/serve/ContextPool.h"

#include <algorithm>

using namespace wootz;
using namespace wootz::serve;

ContextPool::Lease
ContextPool::acquire(const std::shared_ptr<AssembledNetwork> &Model,
                     const ExecPlan *Plan) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t I = 0; I < Idle.size(); ++I) {
      if (Idle[I]->Key != Model.get())
        continue;
      std::unique_ptr<Entry> E = std::move(Idle[I]);
      Idle.erase(Idle.begin() + static_cast<long>(I));
      ++Reused;
      return Lease(this, std::move(E));
    }
  }
  auto E = std::make_unique<Entry>();
  E->Key = Model.get();
  // Plan-served models never touch the graph interpreter path, so the
  // exec context stays unbound (no activation slots allocated) and only
  // the cheap plan binding happens; interpreter-served models vice
  // versa.
  if (Plan)
    E->Plan.bind(*Plan);
  else
    E->Exec.bind(Model->Network);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Created;
  }
  return Lease(this, std::move(E));
}

void ContextPool::release(std::unique_ptr<Entry> E) {
  E->ReleasedAt = Clock.now();
  const double Now = E->ReleasedAt;
  std::lock_guard<std::mutex> Lock(Mutex);
  Idle.push_back(std::move(E));
  // Lazy trim: contexts idle past the threshold die now, and the pool
  // never parks more than MaxIdle (oldest evicted first). No timer
  // thread — a pool nobody touches holds its contexts, which is fine
  // because nobody is allocating either.
  auto Dead = std::remove_if(
      Idle.begin(), Idle.end() - 1, [&](const std::unique_ptr<Entry> &P) {
        return Now - P->ReleasedAt > Options.IdleTrimSeconds;
      });
  Trimmed += Idle.end() - 1 - Dead;
  Idle.erase(Dead, Idle.end() - 1);
  while (Idle.size() > Options.MaxIdle) {
    size_t Oldest = 0;
    for (size_t I = 1; I < Idle.size(); ++I)
      if (Idle[I]->ReleasedAt < Idle[Oldest]->ReleasedAt)
        Oldest = I;
    Idle.erase(Idle.begin() + static_cast<long>(Oldest));
    ++Trimmed;
  }
}

void ContextPool::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Idle.clear();
}

std::map<std::string, int64_t> ContextPool::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<std::string, int64_t> Out;
  Out["serve.contexts.pooled"] = static_cast<int64_t>(Idle.size());
  Out["serve.contexts.created"] = Created;
  Out["serve.contexts.reused"] = Reused;
  Out["serve.contexts.trimmed"] = Trimmed;
  return Out;
}
