//===- serve/Server.cpp ----------------------------------------------------===//

#include "src/serve/Server.h"

#include "src/support/Json.h"
#include "src/support/StringUtils.h"
#include "src/tensor/PackedWeights.h"

#include <cctype>
#include <chrono>
#include <cstring>

using namespace wootz;
using namespace wootz::serve;

/// With a shared artifact tier configured, the rooted layout overrides
/// the per-daemon directory knobs so every daemon pointed at the root
/// reads and writes the same state.
static ModelStoreOptions resolvedUploads(const ServerOptions &Options,
                                         const ArtifactStore &Artifacts) {
  ModelStoreOptions Out = Options.Uploads;
  if (Artifacts.enabled())
    Out.Dir = Artifacts.modelsDir();
  return Out;
}

static JobManagerOptions resolvedJobs(const ServerOptions &Options,
                                      const ArtifactStore &Artifacts) {
  JobManagerOptions Out = Options.Jobs;
  if (Artifacts.enabled()) {
    const CacheConfig Blocks = Artifacts.blockCacheConfig();
    Out.BlockCacheDir = Blocks.Directory;
    Out.BlockCacheMaxBytes = Blocks.MaxBytes;
    Out.CacheDir = Artifacts.modelCacheDir();
    Out.ArtifactDir = Artifacts.artifactsDir();
    Out.QueueDir = Artifacts.jobsDir();
    Out.Owner = Artifacts.processName();
  }
  return Out;
}

WootzServer::WootzServer(ServerOptions Options)
    : Options(Options), Artifacts(Options.Artifacts, &Log),
      Registry(Options.Batching, &Log, &PredictLatency),
      Store(resolvedUploads(Options, Artifacts), &Registry, &Log),
      Jobs(resolvedJobs(Options, Artifacts), &Registry, &Log, &Store,
           &Artifacts) {
  // Register with the shared tier before restoring models, so placement
  // (which daemons eagerly restore which models) sees this process.
  if (Artifacts.enabled())
    (void)static_cast<bool>(Artifacts.heartbeat());
  // Re-register persisted uploads before the listener exists: a client
  // that connects never sees a partially restored model list.
  Store.loadFromDisk(Artifacts.enabled() ? &Artifacts : nullptr);
  buildRoutes();
  Http = std::make_unique<HttpServer>(
      Options.Http,
      [this](const HttpRequest &Request) { return handle(Request); },
      &Log);
}

WootzServer::~WootzServer() { drain(); }

Error WootzServer::start() {
  // Option validation surfaces here rather than aborting the ctor, so a
  // misconfigured daemon fails its launch with a message, not a crash.
  if (!Jobs.optionsError().empty())
    return Error::failure(Jobs.optionsError());
  return Http->start();
}

int WootzServer::port() const { return Http->port(); }

void WootzServer::drain() {
  std::lock_guard<std::mutex> Lock(DrainMutex);
  if (Drained.load())
    return;
  // Sequence: no new connections; let in-flight requests finish (after
  // which nothing can submit jobs or call predict); run accepted jobs to
  // completion; only then stop the batchers.
  Http->beginDrain();
  Http->finishDrain();
  Jobs.drain();
  Registry.stopAll();
  Drained.store(true);
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

void WootzServer::buildRoutes() {
  Routes.add("GET", "/",
             [this](const HttpRequest &, const std::vector<std::string> &) {
               return indexResponse();
             });
  Routes.add("GET", "/healthz",
             [this](const HttpRequest &, const std::vector<std::string> &) {
               HttpResponse Out;
               JsonObject Body;
               Body.field("status",
                          Http->draining() ? "draining" : "ok")
                   .field("models", Registry.count())
                   .field("jobs_running", Jobs.runningCount());
               Out.Body = Body.str() + "\n";
               return Out;
             });
  Routes.add("POST", "/v1/jobs",
             [this](const HttpRequest &Request,
                    const std::vector<std::string> &) {
               return submitJob(Request);
             });
  Routes.add("GET", "/v1/jobs",
             [this](const HttpRequest &, const std::vector<std::string> &) {
               HttpResponse Out;
               Out.Body = Jobs.listJson();
               return Out;
             });
  Routes.add("GET", "/v1/jobs/:id",
             [this](const HttpRequest &,
                    const std::vector<std::string> &Params) {
               Result<std::string> Status = Jobs.statusJson(Params[0]);
               if (!Status)
                 return errorResponse(404, Status.message());
               HttpResponse Out;
               Out.Body = Status.take();
               return Out;
             });
  Routes.add("DELETE", "/v1/jobs/:id",
             [this](const HttpRequest &,
                    const std::vector<std::string> &Params) {
               Result<std::string> State = Jobs.cancel(Params[0]);
               if (!State)
                 return errorResponse(404, State.message());
               HttpResponse Out;
               JsonObject Body;
               Body.field("id", Params[0]).field("state", State.take());
               Out.Body = Body.str() + "\n";
               return Out;
             });
  Routes.add("GET", "/v1/models",
             [this](const HttpRequest &, const std::vector<std::string> &) {
               std::string Items;
               for (const std::string &Id : Registry.ids()) {
                 ServableModel *Model = Registry.find(Id);
                 if (!Model)
                   continue;
                 JsonObject Item;
                 Item.field("id", Model->Id)
                     .field("channels", Model->Channels)
                     .field("height", Model->Height)
                     .field("width", Model->Width)
                     .field("classes", Model->Classes)
                     .field("origin", Model->Origin)
                     .field("engine",
                            Model->Plan ? "plan" : "interpreter");
                 if (!Items.empty())
                   Items += ",";
                 Items += Item.str();
               }
               HttpResponse Out;
               JsonObject Body;
               Body.fieldRaw("models", "[" + Items + "]");
               Out.Body = Body.str() + "\n";
               return Out;
             });
  Routes.add("POST", "/v1/models",
             [this](const HttpRequest &Request,
                    const std::vector<std::string> &) {
               return uploadModel(Request);
             });
  Routes.add("DELETE", "/v1/models/:id",
             [this](const HttpRequest &,
                    const std::vector<std::string> &Params) {
               if (Error E = Store.remove(Params[0]))
                 return errorResponse(404, E.message());
               HttpResponse Out;
               JsonObject Body;
               Body.field("id", Params[0]).field("state", "deleted");
               Out.Body = Body.str() + "\n";
               return Out;
             });
  Routes.add("POST", "/v1/models/:id/predict",
             [this](const HttpRequest &Request,
                    const std::vector<std::string> &Params) {
               return predict(Request, Params[0]);
             });
  Routes.add("GET", "/metrics",
             [this](const HttpRequest &, const std::vector<std::string> &) {
               HttpResponse Out;
               Out.ContentType = "text/plain; version=0.0.4";
               Out.Body = metricsText();
               return Out;
             });
}

HttpResponse WootzServer::handle(const HttpRequest &Request) {
  const auto Start = std::chrono::steady_clock::now();
  HttpResponse Out = Routes.dispatch(Request);
  RequestLatency.record(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - Start)
                            .count());
  Log.bump("http.responses." + std::to_string(Out.Status / 100) + "xx");
  return Out;
}

HttpResponse WootzServer::indexResponse() const {
  JsonObject Body;
  Body.field("service", "wootz-serve")
      .fieldRaw("endpoints",
                "[\"GET /healthz\",\"POST /v1/jobs\",\"GET /v1/jobs\","
                "\"GET /v1/jobs/:id\",\"DELETE /v1/jobs/:id\","
                "\"GET /v1/models\",\"POST /v1/models\","
                "\"DELETE /v1/models/:id\","
                "\"POST /v1/models/:id/predict\",\"GET /metrics\"]");
  HttpResponse Out;
  Out.Body = Body.str() + "\n";
  return Out;
}

HttpResponse WootzServer::submitJob(const HttpRequest &Request) {
  Result<std::map<std::string, std::string>> Body =
      parseFlatJsonObject(Request.Body);
  if (!Body)
    return errorResponse(400, "request body: " + Body.message());
  const SubmitOutcome Outcome = Jobs.submit(*Body);
  if (Outcome.Status != 202) {
    HttpResponse Out = errorResponse(Outcome.Status, Outcome.Error);
    if (Outcome.Status == 429 || Outcome.Status == 503)
      Out.ExtraHeaders.emplace_back("Retry-After", "5");
    return Out;
  }
  HttpResponse Out;
  Out.Status = 202;
  JsonObject Accepted;
  Accepted.field("id", Outcome.Id)
      .field("status_url", "/v1/jobs/" + Outcome.Id);
  Out.Body = Accepted.str() + "\n";
  return Out;
}

HttpResponse WootzServer::uploadModel(const HttpRequest &Request) {
  Result<std::map<std::string, std::string>> Body =
      parseFlatJsonObject(Request.Body);
  if (!Body)
    return errorResponse(400, "request body: " + Body.message());
  const UploadOutcome Outcome = Store.upload(*Body);
  if (Outcome.Status != 201) {
    HttpResponse Out = errorResponse(Outcome.Status, Outcome.Error);
    if (Outcome.Status == 429)
      Out.ExtraHeaders.emplace_back("Retry-After", "5");
    return Out;
  }
  HttpResponse Out;
  Out.Status = 201;
  JsonObject Created;
  Created.field("id", Outcome.Id)
      .field("predict_url", "/v1/models/" + Outcome.Id + "/predict");
  Out.Body = Created.str() + "\n";
  return Out;
}

HttpResponse WootzServer::predict(const HttpRequest &Request,
                                  const std::string &Id) {
  ServableModel *Model = Registry.find(Id);
  // Shared-tier lazy restore: a peer daemon may have taken the upload,
  // or placement may have deferred this model at startup. Either way the
  // persisted copy makes it servable here on first request.
  if (!Model && Store.tryRestore(Id))
    Model = Registry.find(Id);
  if (!Model)
    return errorResponse(404, "no such model '" + Id + "'");

  Result<std::map<std::string, std::string>> Body =
      parseFlatJsonObject(Request.Body);
  if (!Body)
    return errorResponse(400, "request body: " + Body.message());
  auto It = Body->find("input");
  if (It == Body->end())
    return errorResponse(400, "missing required field 'input' "
                              "(whitespace-separated CHW floats)");

  const size_t Expected = static_cast<size_t>(Model->Channels) *
                          Model->Height * Model->Width;
  std::vector<float> Values;
  Values.reserve(Expected);
  std::string_view Text = It->second;
  while (true) {
    Text = trim(Text);
    if (Text.empty())
      break;
    size_t End = 0;
    while (End < Text.size() && !std::isspace(
                                    static_cast<unsigned char>(Text[End])))
      ++End;
    Result<double> Value = parseDouble(Text.substr(0, End));
    if (!Value)
      return errorResponse(400, "input value " +
                                    std::to_string(Values.size()) + ": " +
                                    Value.message());
    Values.push_back(static_cast<float>(*Value));
    if (Values.size() > Expected)
      return errorResponse(400, "input carries more than the expected " +
                                    std::to_string(Expected) + " values");
    Text = Text.substr(End);
  }
  if (Values.size() != Expected)
    return errorResponse(
        400, "input carries " + std::to_string(Values.size()) +
                 " values but the model expects " +
                 std::to_string(Expected) + " (" +
                 std::to_string(Model->Channels) + "x" +
                 std::to_string(Model->Height) + "x" +
                 std::to_string(Model->Width) + ")");

  Tensor Sample(
      Shape{1, Model->Channels, Model->Height, Model->Width});
  std::memcpy(Sample.data(), Values.data(),
              Values.size() * sizeof(float));

  Result<Prediction> Predicted = Model->Engine->predict(Sample);
  if (!Predicted) {
    if (Predicted.message() == "model overloaded")
      return errorResponse(429, Predicted.message());
    if (Predicted.message() == "model is draining")
      return errorResponse(503, Predicted.message());
    return errorResponse(500, Predicted.message());
  }

  std::string Logits;
  for (size_t I = 0; I < Predicted->Logits.size(); ++I) {
    if (!Logits.empty())
      Logits += ",";
    Logits += formatDouble(Predicted->Logits.data()[I], 6);
  }
  JsonObject Out;
  Out.field("model", Id)
      .field("argmax", Predicted->ArgMax)
      .field("batch_size", Predicted->BatchSize)
      .fieldRaw("logits", "[" + Logits + "]");
  HttpResponse Response;
  Response.Body = Out.str() + "\n";
  return Response;
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

std::string WootzServer::metricsText() const {
  std::string Out;

  // Counters: the server's own (http.*, serve.*) and the aggregate over
  // every job's pipeline log (cache.*, tasks_*, ...).
  bool CountersType = false;
  Out += prometheusCounterMap("wootz_counter", "server", Log.counters(),
                              CountersType);
  Out += prometheusCounterMap("wootz_counter", "jobs", Jobs.jobCounters(),
                              CountersType);
  // Context-pool traffic (serve.contexts.pooled/created/reused/trimmed).
  Out += prometheusCounterMap("wootz_counter", "contexts",
                              Registry.contextCounters(), CountersType);

  // Gauges.
  bool GaugeType = false;
  Out += prometheusSample("wootz_http_queue_depth", "",
                          static_cast<double>(Http->queueDepth()), "gauge",
                          GaugeType);
  GaugeType = false;
  Out += prometheusSample("wootz_jobs_queued", "",
                          static_cast<double>(Jobs.queuedCount()), "gauge",
                          GaugeType);
  GaugeType = false;
  Out += prometheusSample("wootz_jobs_running", "",
                          static_cast<double>(Jobs.runningCount()),
                          "gauge", GaugeType);
  GaugeType = false;
  Out += prometheusSample("wootz_models", "",
                          static_cast<double>(Registry.count()), "gauge",
                          GaugeType);
  // Weight-panel cache: resident footprint plus lookup traffic, so an
  // operator can tell from /metrics whether serving models are hitting
  // pre-packed panels (hits climbing, repacks flat) or churning.
  const PackedWeightsCache::Stats Panels =
      PackedWeightsCache::instance().stats();
  GaugeType = false;
  Out += prometheusSample("wootz_packed_weights_entries", "",
                          static_cast<double>(Panels.Entries), "gauge",
                          GaugeType);
  GaugeType = false;
  Out += prometheusSample("wootz_packed_weights_bytes", "",
                          static_cast<double>(Panels.Bytes), "gauge",
                          GaugeType);
  GaugeType = false;
  for (const auto &[Event, Count] :
       {std::pair<const char *, uint64_t>{"hit", Panels.Hits},
        std::pair<const char *, uint64_t>{"miss", Panels.Misses},
        std::pair<const char *, uint64_t>{"repack", Panels.Repacks},
        std::pair<const char *, uint64_t>{"eviction", Panels.Evictions}})
    Out += prometheusSample("wootz_packed_weights_lookups",
                            "event=\"" + std::string(Event) + "\"",
                            static_cast<double>(Count), "gauge",
                            GaugeType);
  GaugeType = false;
  for (const auto &[State, Count] : Jobs.stateCounts())
    Out += prometheusSample("wootz_jobs_state",
                            "state=\"" + prometheusEscapeLabel(State) +
                                "\"",
                            static_cast<double>(Count), "gauge",
                            GaugeType);
  // Shared artifact tier: how much each directory holds and how many
  // daemons are currently registered against the root.
  if (Artifacts.enabled()) {
    bool EntriesType = false, BytesType = false;
    for (const auto &[Tier, Dir] :
         {std::pair<const char *, std::string>{"block_cache",
                                               Artifacts.blockCacheDir()},
          std::pair<const char *, std::string>{"cache",
                                               Artifacts.modelCacheDir()},
          std::pair<const char *, std::string>{"models",
                                               Artifacts.modelsDir()}}) {
      const ArtifactUsage Usage = ArtifactStore::usage(Dir);
      const std::string Labels =
          "tier=\"" + std::string(Tier) + "\"";
      Out += prometheusSample("wootz_artifact_entries", Labels,
                              static_cast<double>(Usage.Entries), "gauge",
                              EntriesType);
      Out += prometheusSample("wootz_artifact_bytes", Labels,
                              static_cast<double>(Usage.Bytes), "gauge",
                              BytesType);
    }
    GaugeType = false;
    Out += prometheusSample(
        "wootz_artifact_processes", "",
        static_cast<double>(Artifacts.activeProcesses().size()), "gauge",
        GaugeType);
  }

  // Latency histograms plus interpolated p50/p99 convenience gauges.
  Out += RequestLatency.prometheus("wootz_request_latency_seconds", "");
  Out += PredictLatency.prometheus("wootz_predict_latency_seconds",
                                   "path=\"predict\"");
  bool QuantileType = false;
  for (const auto &[Name, Histogram] :
       {std::pair<const char *, const LatencyHistogram *>{
            "request", &RequestLatency},
        std::pair<const char *, const LatencyHistogram *>{
            "predict", &PredictLatency}}) {
    for (double Q : {0.5, 0.99})
      Out += prometheusSample(
          "wootz_latency_quantile_seconds",
          "path=\"" + std::string(Name) + "\",q=\"" +
              formatDouble(Q, 2) + "\"",
          Histogram->quantile(Q), "gauge", QuantileType);
  }
  return Out;
}
