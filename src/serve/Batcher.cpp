//===- serve/Batcher.cpp ---------------------------------------------------===//

#include "src/serve/Batcher.h"

#include "src/nn/Layers.h"
#include "src/tensor/Ops.h"
#include "src/tensor/PackedWeights.h"

#include <algorithm>
#include <chrono>
#include <cstring>

using namespace wootz;
using namespace wootz::serve;

Batcher::Batcher(std::shared_ptr<AssembledNetwork> Network,
                 BatcherOptions Options, RunLog *Log,
                 LatencyHistogram *Latency,
                 std::shared_ptr<const ExecPlan> Plan, ContextPool *Pool)
    : Network(std::move(Network)), Plan(std::move(Plan)), Options(Options),
      Log(Log), Latency(Latency), Pool(Pool) {
  assert(this->Network && "batcher needs a network");
  const int Count = std::max(1, Options.Workers);
  Workers.reserve(static_cast<size_t>(Count));
  for (int I = 0; I < Count; ++I)
    Workers.emplace_back([this] { loop(); });
}

Batcher::~Batcher() { stop(); }

Result<Prediction> Batcher::predict(const Tensor &Sample) {
  assert(Sample.shape().rank() == 4 && Sample.shape()[0] == 1 &&
         "predict takes a single [1,C,H,W] sample");
  const auto Start = std::chrono::steady_clock::now();
  Pending Mine;
  Mine.Sample = &Sample;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (Stopping)
      return Error::failure("model is draining");
    if (Queue.size() >= Options.MaxQueuedRequests)
      return Error::failure("model overloaded");
    Queue.push_back(&Mine);
    WorkReady.notify_one();
    BatchDone.wait(Lock, [&] { return Mine.Done; });
  }
  if (!Mine.Error.empty())
    return Error::failure(Mine.Error);

  Prediction Out;
  Out.Logits = std::move(Mine.Logits);
  Out.BatchSize = Mine.BatchSize;
  for (size_t I = 1; I < Out.Logits.size(); ++I)
    if (Out.Logits[I] > Out.Logits[Out.ArgMax])
      Out.ArgMax = static_cast<int>(I);
  if (Latency)
    Latency->record(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count());
  if (Log)
    Log->bump("serve.predict.requests");
  return Out;
}

void Batcher::loop() {
  // Each worker forwards through a private execution context over the
  // shared model: the Graph's parameters are read-only during serving,
  // so workers run concurrent forwards without copying a single weight.
  // When the model was frozen into a static plan the same pattern holds
  // with a private PlanContext over the shared immutable ExecPlan. With
  // a registry pool the contexts are borrowed per batch instead of
  // pinned per thread, so idle models release their buffers.
  ExecContext Ctx;
  PlanContext PlanCtx;
  if (!Pool) {
    Ctx.bind(Network->Network);
    if (Plan)
      PlanCtx.bind(*Plan);
  }
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [&] { return Stopping || !Queue.empty(); });
    if (Queue.empty()) {
      if (Stopping)
        return;
      continue;
    }
    // Bounded coalescing wait: the first sample is already here; give
    // companions MaxWaitMicros to arrive, but never more, and cut at
    // MaxBatch. A full batch skips the wait entirely.
    const auto Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(Options.MaxWaitMicros);
    while (Queue.size() < static_cast<size_t>(Options.MaxBatch) &&
           !Stopping) {
      if (WorkReady.wait_until(Lock, Deadline) ==
          std::cv_status::timeout)
        break;
    }
    // The wait releases the lock, so a companion worker may have drained
    // the queue in the meantime: go back to waiting instead of cutting
    // an empty batch.
    if (Queue.empty()) {
      if (Stopping)
        return;
      continue;
    }
    std::vector<Pending *> Batch;
    const size_t Take =
        std::min(Queue.size(), static_cast<size_t>(Options.MaxBatch));
    for (size_t I = 0; I < Take; ++I) {
      Batch.push_back(Queue.front());
      Queue.pop_front();
    }
    Lock.unlock();
    if (Pool) {
      ContextPool::Lease Lease = Pool->acquire(Network, Plan.get());
      if (Plan)
        runBatch(Lease.plan(), Batch);
      else
        runBatch(Lease.exec(), Batch);
    } else if (Plan) {
      runBatch(PlanCtx, Batch);
    } else {
      runBatch(Ctx, Batch);
    }
    Lock.lock();
    for (Pending *P : Batch)
      P->Done = true;
    BatchDone.notify_all();
    if (Stopping && Queue.empty())
      return;
  }
}

Tensor Batcher::assembleBatch(const std::vector<Pending *> &Batch) {
  const Shape &One = Batch.front()->Sample->shape();
  Tensor Input(
      Shape{static_cast<int>(Batch.size()), One[1], One[2], One[3]});
  const size_t SampleSize = Batch.front()->Sample->size();
  for (size_t I = 0; I < Batch.size(); ++I)
    std::memcpy(Input.data() + I * SampleSize, Batch[I]->Sample->data(),
                SampleSize * sizeof(float));
  return Input;
}

void Batcher::fanOut(const Tensor &Logits, std::vector<Pending *> &Batch) {
  const int Count = static_cast<int>(Batch.size());
  if (Logits.shape().rank() != 2 || Logits.shape()[0] != Count) {
    for (Pending *P : Batch)
      P->Error = "model produced logits of unexpected shape " +
                 Logits.shape().str();
    return;
  }
  const int Classes = Logits.shape()[1];
  for (int I = 0; I < Count; ++I) {
    Pending &P = *Batch[static_cast<size_t>(I)];
    P.Logits = Tensor(Shape{Classes});
    std::memcpy(P.Logits.data(),
                Logits.data() + static_cast<size_t>(I) * Classes,
                static_cast<size_t>(Classes) * sizeof(float));
    P.BatchSize = Count;
  }
  if (Log) {
    Log->bump("serve.predict.batches");
    Log->bump("serve.predict.batched_samples", Count);
    if (Count > 1)
      Log->bump("serve.predict.coalesced", Count - 1);
  }
}

void Batcher::runBatch(ExecContext &Ctx, std::vector<Pending *> &Batch) {
  Tensor Input = assembleBatch(Batch);

  const Graph &Net = Network->Network;
  Ctx.setInput(Network->InputNode, std::move(Input));
  Ctx.forward(Net, /*Training=*/false);
  // User-named logits node: resolve through the checked accessor so a
  // bad name surfaces as a clean per-request error, never an abort.
  Result<const Tensor *> Found = Ctx.findActivation(Network->LogitsNode);
  if (!Found) {
    for (Pending *P : Batch)
      P->Error = Found.message();
    return;
  }
  fanOut(**Found, Batch);
}

void Batcher::runBatch(PlanContext &Ctx, std::vector<Pending *> &Batch) {
  const Tensor Input = assembleBatch(Batch);
  // The plan was compiled against the model's registered input extents,
  // so the only surprise a request can spring is a mismatched sample
  // shape; fail the batch cleanly rather than tripping the assertion.
  const Shape &S = Input.shape();
  const ExecPlan &P = *Ctx.plan();
  if (S[1] != P.inputChannels() || S[2] != P.inputHeight() ||
      S[3] != P.inputWidth()) {
    for (Pending *Req : Batch)
      Req->Error = "sample shape " + S.str() +
                   " does not match the compiled plan's input extents";
    return;
  }
  fanOut(Ctx.run(Input), Batch);
  if (Log)
    Log->bump("serve.predict.plan_batches");
}

void Batcher::stop() {
  bool FirstStop = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (!Stopping) {
      Stopping = true;
      FirstStop = true;
      // Everything still queued fails fast: drain means "finish what is
      // running, refuse the rest", and these have not started.
      for (Pending *P : Queue) {
        P->Error = "model is draining";
        P->Done = true;
      }
      Queue.clear();
      WorkReady.notify_all();
      BatchDone.notify_all();
    }
  }
  if (FirstStop)
    for (std::thread &W : Workers)
      if (W.joinable())
        W.join();
}

//===----------------------------------------------------------------------===//
// ModelRegistry
//===----------------------------------------------------------------------===//

Error ModelRegistry::add(const std::string &Id,
                         std::shared_ptr<AssembledNetwork> Network,
                         int Channels, int Height, int Width, int Classes,
                         std::string Origin) {
  if (!Network)
    return Error::failure("cannot register a null network");
  auto Model = std::make_unique<ServableModel>();
  Model->Id = Id;
  Model->Channels = Channels;
  Model->Height = Height;
  Model->Width = Width;
  Model->Classes = Classes;
  Model->Origin = std::move(Origin);
  if (Batching.UsePlans) {
    // Freeze the model once, at registration: every batcher worker then
    // executes the shared immutable plan through a private PlanContext.
    // A graph the plan compiler cannot lower (exotic layer kinds) is not
    // an error — it just serves through the interpreter.
    Result<ExecPlan> Compiled = ExecPlan::compile(
        Network->Network, Network->InputNode, Network->LogitsNode,
        Channels, Height, Width);
    if (Compiled)
      Model->Plan = std::make_shared<const ExecPlan>(Compiled.take());
    else if (Log)
      Log->bump("serve.models.plan_fallback");
    if (Model->Plan && Log)
      Log->bump("serve.models.plans_compiled");
  }
  if (!Model->Plan) {
    // Interpreter-served models warm the process-wide weight-panel
    // cache at registration, so the first predict request does not pay
    // for packing: every conv and dense weight is packed exactly once
    // per process here and shared read-only by all batcher workers.
    // (Plan-served models carry their own panels, packed at freeze.)
    PackedWeightsCache &Cache = PackedWeightsCache::instance();
    size_t Warmed = 0;
    for (const std::string &Name : Network->Network.nodeNames()) {
      const Layer *L = Network->Network.findLayer(Name);
      if (!L)
        continue;
      if (L->kind() == "conv") {
        const auto &Conv = static_cast<const Conv2D &>(*L);
        const ConvGeometry &G = Conv.geometry();
        Cache.convWeights(Conv.weight().Value.data(), G.OutChannels,
                          G.InChannels * G.KernelSize * G.KernelSize);
        ++Warmed;
      } else if (L->kind() == "dense") {
        const auto &Fc = static_cast<const Dense &>(*L);
        if (gemmUsesBlockedEngine(Batching.MaxBatch, Fc.inFeatures(),
                                  Fc.outFeatures())) {
          Cache.denseWeights(Fc.weight().Value.data(), Fc.outFeatures(),
                             Fc.inFeatures());
          ++Warmed;
        }
      }
    }
    if (Log && Warmed > 0)
      Log->bump("serve.models.weights_packed",
                static_cast<int64_t>(Warmed));
  }
  Model->Engine = std::make_unique<Batcher>(
      std::move(Network), Batching, Log, Latency, Model->Plan,
      Batching.PoolContexts ? &Contexts : nullptr);
  std::lock_guard<std::mutex> Lock(Mutex);
  auto [It, Inserted] = Models.emplace(Id, std::move(Model));
  (void)It;
  if (!Inserted)
    return Error::failure("model id '" + Id + "' is already registered");
  Order.push_back(Id);
  if (Log)
    Log->bump("serve.models.registered");
  return Error::success();
}

Error ModelRegistry::remove(const std::string &Id) {
  std::unique_ptr<ServableModel> Victim;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Models.find(Id);
    if (It == Models.end())
      return Error::failure("unknown model '" + Id + "'");
    Victim = std::move(It->second);
    Models.erase(It);
    Order.erase(std::remove(Order.begin(), Order.end(), Id), Order.end());
  }
  // Stop outside the lock: predict() callers inside the engine must be
  // able to finish while we wait for the workers to join.
  Victim->Engine->stop();
  std::lock_guard<std::mutex> Lock(Mutex);
  Retired.push_back(std::move(Victim));
  if (Log)
    Log->bump("serve.models.removed");
  return Error::success();
}

ServableModel *ModelRegistry::find(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Models.find(Id);
  return It == Models.end() ? nullptr : It->second.get();
}

std::vector<std::string> ModelRegistry::ids() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Order;
}

size_t ModelRegistry::count() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Models.size();
}

void ModelRegistry::stopAll() {
  std::vector<ServableModel *> All;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (auto &[Id, Model] : Models)
      All.push_back(Model.get());
  }
  for (ServableModel *Model : All)
    Model->Engine->stop();
}
